#!/usr/bin/env bash
# Line-coverage driver for the `coverage` CMake preset.
#
# Configures/builds the preset if needed, runs the test suite, aggregates
# per-line counters with `gcov --json-format` (no gcovr/lcov install
# required), writes an lcov-format tracefile (coverage.info) suitable for
# genhtml/Coveralls, prints a per-file summary for src/, and optionally
# enforces a line-coverage floor over src/runtime/ — the lock-free code the
# interleave explorer exists to keep honest.
#
# Usage:
#   tools/coverage.sh                          # build, test, summarize
#   tools/coverage.sh --min-runtime 80         # fail below 80% in src/runtime/
#   tools/coverage.sh --no-tests               # just re-aggregate counters
#   tools/coverage.sh --build-dir DIR --out FILE
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build-coverage
MIN_RUNTIME=""
RUN_TESTS=1
OUT=""

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir)   BUILD_DIR="$2"; shift 2 ;;
    --min-runtime) MIN_RUNTIME="$2"; shift 2 ;;
    --no-tests)    RUN_TESTS=0; shift ;;
    --out)         OUT="$2"; shift 2 ;;
    -h|--help)     grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done
OUT="${OUT:-${BUILD_DIR}/coverage.info}"

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Debug \
    -DSTATESLICE_COVERAGE=ON -DSTATESLICE_BUILD_BENCHES=OFF \
    -DSTATESLICE_BUILD_EXAMPLES=OFF
fi
cmake --build "${BUILD_DIR}" -j "$(nproc)"

if [[ "${RUN_TESTS}" == 1 ]]; then
  find "${BUILD_DIR}" -name '*.gcda' -delete
  ctest --test-dir "${BUILD_DIR}" --output-on-failure
fi

GCOV="${GCOV:-gcov}"
export BUILD_DIR OUT GCOV MIN_RUNTIME

python3 - <<'PYEOF'
"""Aggregates gcov JSON over every .gcda, emits lcov + a summary table."""
import collections
import gzip
import json
import os
import subprocess
import sys
from pathlib import Path

build_dir = Path(os.environ["BUILD_DIR"]).resolve()
out_path = Path(os.environ["OUT"])
gcov = os.environ["GCOV"]
min_runtime = os.environ.get("MIN_RUNTIME") or None
repo = Path.cwd().resolve()

gcdas = sorted(build_dir.rglob("*.gcda"))
if not gcdas:
    sys.exit(f"no .gcda counters under {build_dir}; run the tests first")

# file -> line -> hit count (summed across the TUs that include the file,
# matching lcov's merge semantics for headers).
counts = collections.defaultdict(collections.Counter)
for gcda in gcdas:
    proc = subprocess.run(
        [gcov, "--json-format", "--stdout", "--branch-probabilities",
         str(gcda)],
        capture_output=True, cwd=gcda.parent, check=False)
    if proc.returncode != 0:
        print(f"warning: gcov failed on {gcda.name}: "
              f"{proc.stderr.decode().strip()}", file=sys.stderr)
        continue
    # --stdout may concatenate one JSON document per .gcno; gcov emits them
    # newline-separated.
    for doc in proc.stdout.splitlines():
        if not doc.strip():
            continue
        data = json.loads(gzip.decompress(doc) if doc[:2] == b"\x1f\x8b"
                          else doc)
        for f in data.get("files", []):
            src = Path(f["file"])
            if not src.is_absolute():
                src = (gcda.parent / src).resolve()
            try:
                rel = src.resolve().relative_to(repo).as_posix()
            except ValueError:
                continue  # system/toolchain header
            if not rel.startswith("src/"):
                continue
            for line in f.get("lines", []):
                counts[rel][line["line_number"]] += line["count"]

out_path.parent.mkdir(parents=True, exist_ok=True)
with open(out_path, "w") as f:
    f.write("TN:stateslice\n")
    for rel in sorted(counts):
        lines = counts[rel]
        f.write(f"SF:{repo / rel}\n")
        for ln in sorted(lines):
            f.write(f"DA:{ln},{lines[ln]}\n")
        f.write(f"LH:{sum(1 for c in lines.values() if c)}\n")
        f.write(f"LF:{len(lines)}\n")
        f.write("end_of_record\n")

print(f"\nlcov tracefile: {out_path}")
print(f"{'file':<44} {'lines':>7} {'hit':>7} {'cover':>8}")
totals = collections.Counter()
for rel in sorted(counts):
    lf = len(counts[rel])
    lh = sum(1 for c in counts[rel].values() if c)
    totals["lf"] += lf
    totals["lh"] += lh
    if rel.startswith("src/runtime/"):
        totals["rt_lf"] += lf
        totals["rt_lh"] += lh
    print(f"{rel:<44} {lf:>7} {lh:>7} {100.0 * lh / lf:>7.1f}%")
pct = 100.0 * totals["lh"] / totals["lf"] if totals["lf"] else 0.0
print(f"{'TOTAL src/':<44} {totals['lf']:>7} {totals['lh']:>7} "
      f"{pct:>7.1f}%")
rt_pct = (100.0 * totals["rt_lh"] / totals["rt_lf"]
          if totals["rt_lf"] else 0.0)
print(f"{'TOTAL src/runtime/':<44} {totals['rt_lf']:>7} "
      f"{totals['rt_lh']:>7} {rt_pct:>7.1f}%")

if min_runtime is not None:
    floor = float(min_runtime)
    if rt_pct < floor:
        sys.exit(f"\ncoverage gate FAILED: src/runtime/ line coverage "
                 f"{rt_pct:.1f}% is below the {floor:.1f}% floor")
    print(f"\ncoverage gate passed: src/runtime/ {rt_pct:.1f}% >= "
          f"{floor:.1f}% floor")
PYEOF
