"""Rule: hot-path-alloc.

The per-event hot path — join-state probes/purges, the slot ring, the event
and SPSC rings, the schedulers' run loops, the arena, the tuple tail, and
the window-join Process paths — must not heap-allocate per event:
ad-hoc new/make_unique there turns the O(matches) probe work into allocator
traffic and wrecks the parallel pipeline's latency. Amortized container
growth (vector::push_back into pre-sized storage) is the sanctioned
mechanism and is not flagged. Genuinely needed allocations take an explicit
`// lint: allow(hot-path-alloc) -- <reason>` suppression.
"""

import re

from . import common

NAME = "hot-path-alloc"
FIXTURE_RELPATH = "src/operators/join_state.h"

HOT_FILES = {
    "src/operators/join_state.h",
    "src/common/arena.cc",
    "src/common/arena.h",
    "src/common/slot_ring.h",
    "src/common/tuple.cc",
    "src/common/tuple.h",
    "src/runtime/queue.cc",
    "src/runtime/queue.h",
    "src/runtime/scheduler.cc",
    "src/runtime/parallel_scheduler.cc",
    "src/runtime/spsc_queue.h",
    "src/runtime/steal_deque.h",
    "src/runtime/shard_router.h",
    "src/runtime/shard_router.cc",
    "src/runtime/sharded_scheduler.cc",
    "src/operators/sliced_window_join.cc",
    "src/operators/sliding_window_join.cc",
}

_PATTERNS = [
    (re.compile(r"\bnew\s+[A-Za-z_:<(]"), "operator new"),
    (re.compile(r"\bstd::make_unique\b"), "std::make_unique"),
    (re.compile(r"\bstd::make_shared\b"), "std::make_shared"),
    (re.compile(r"\b(?:malloc|calloc|realloc)\s*\("), "C allocation"),
]


def applies(relpath):
    return relpath in HOT_FILES


def check(relpath, text):
    findings = []
    stripped = common.strip_comments_and_strings(text)
    original_lines = text.splitlines()
    for i, line in enumerate(stripped.splitlines()):
        for pattern, what in _PATTERNS:
            if pattern.search(line) and not common.allowed(
                    original_lines, i, NAME):
                findings.append(common.Finding(
                    NAME, relpath, i + 1,
                    f"{what} in a per-event hot-path file; allocate at "
                    "setup time or justify with a lint: allow comment"))
    return findings
