// Fixture: pure-read SLICE_CHECK expressions are fine, including
// comparison operators that embed '=' (==, <=, >=, !=).
#include "src/common/check.h"

void Drain(const Queue& q, int count) {
  SLICE_CHECK(!q.empty());
  SLICE_CHECK_EQ(static_cast<size_t>(count), q.size());
  SLICE_CHECK(count >= 0 && count <= 100);
  SLICE_CHECK_NE(q.name(), nullptr);
}
