// Fixture: side effects inside SLICE_CHECK must be flagged (the
// expression compiles unevaluated under STATESLICE_STRIP_CHECKS).
#include "src/common/check.h"

void Drain(Queue* q, int* count) {
  SLICE_CHECK(q->Pop());
  SLICE_CHECK_GT((*count)++, 0);
}
