// Fixture: a non-canonical include guard must be flagged.
#ifndef EXAMPLE_H
#define EXAMPLE_H

void Declared();

#endif  // EXAMPLE_H
