// Fixture: the canonical guard for src/runtime/example.h.
#ifndef STATESLICE_RUNTIME_EXAMPLE_H_
#define STATESLICE_RUNTIME_EXAMPLE_H_

void Declared();

#endif  // STATESLICE_RUNTIME_EXAMPLE_H_
