// Fixture: a state probe whose stats are dropped must be flagged — the
// cost-model figures silently lose this operator's comparisons.
void Op::ProcessTuple(const Tuple& t) {
  std::vector<Entry> matches;
  const ProbeStats stats = state_b_.Probe(
      t, options_.condition, [&](const Entry& e) { matches.push_back(e); });
  for (const Entry& e : matches) Emit(e);
}
