// Fixture: probes followed by ChargeProbe (same statement or within the
// window), or carrying a justified suppression, are clean.
void Op::ProcessTuple(const Tuple& t) {
  std::vector<Entry> matches;
  const ProbeStats stats = state_b_.Probe(
      t, options_.condition, [&](const Entry& e) { matches.push_back(e); });
  ChargeProbe(stats, &state_b_);
  for (const Entry& e : matches) Emit(e);
}

void Op::ProcessOther(const Tuple& t) {
  ChargeProbe(state_a_.Probe(t, options_.condition, [](const Entry&) {}),
              &state_a_);
}

void Op::DryRun(const Tuple& t) {
  // lint: allow(probe-charges-cost) -- dry-run probe; caller charges stats
  state_b_.Probe(t, options_.condition, [](const Entry&) {});
}
