// Fixture: defaulted (seq_cst) atomic ops and an unjustified relaxed in a
// lock-free file must each produce a finding.
#include <atomic>

struct Ring {
  std::atomic<unsigned> tail{0};
  std::atomic<unsigned> head{0};

  void Publish(unsigned t) {
    tail.store(t);  // no explicit order: finding
  }

  unsigned Observe() {
    return head.load();  // no explicit order: finding
  }

  unsigned Peek() {
    return tail.load(std::memory_order_relaxed);  // unjustified: finding
  }
};
