// Fixture: explicit orders, named order constants, and justified relaxed
// uses are all clean.
#include <atomic>

inline constexpr auto kTailPublishOrder = std::memory_order_release;

struct Ring {
  std::atomic<unsigned> tail{0};
  std::atomic<unsigned> head{0};

  void Publish(unsigned t) { tail.store(t, kTailPublishOrder); }

  unsigned Observe() { return head.load(std::memory_order_acquire); }

  unsigned Peek() {
    // lint: allow(atomic-memory-order) -- single-writer self-read
    return tail.load(std::memory_order_relaxed);
  }

  unsigned PeekMultiline() {
    // lint: allow(atomic-memory-order) -- self-read; spans lines like macros
    return tail.load(
        std::memory_order_relaxed);
  }
};
