// Fixture: raw assert and iostream in src/ must be flagged.
#include <cassert>
#include <iostream>

void Validate(int n) {
  assert(n > 0);
  if (n > 100) std::cerr << "suspicious\n";
  if (n > 1000) abort();
}
