// Fixture: SLICE_CHECK and static_assert are the sanctioned forms; tokens
// in comments (assert( abort( ) or strings must not trigger.
#include "src/common/check.h"

static_assert(sizeof(int) >= 4, "platform assumption");

void Validate(int n) {
  SLICE_CHECK_GT(n, 0);
  const char* label = "assert(x) has no effect here";
  (void)label;
}
