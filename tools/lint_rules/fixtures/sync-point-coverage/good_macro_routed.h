// Fixture: atomic sites routed through the STATESLICE_ATOMIC_* sync-point
// macros (or explicitly justified) are clean. The macros expand to the raw
// op only in their own definition (sync_point.h, not a linted file), so a
// macro-routed call site contains no literal .load()/.store() token.
#include <atomic>

#include "src/runtime/sync_point.h"

struct Ring {
  std::atomic<unsigned> tail{0};

  void Publish(unsigned t) {
    STATESLICE_ATOMIC_STORE("ring.publish", tail, t,
                            std::memory_order_release);
  }

  unsigned Observe() {
    return STATESLICE_ATOMIC_LOAD("ring.observe", tail,
                                  std::memory_order_acquire);
  }

  unsigned DebugPeek() {
    // lint: allow(sync-point-coverage) -- debug-only probe, never raced
    return tail.load(std::memory_order_acquire);
  }
};
