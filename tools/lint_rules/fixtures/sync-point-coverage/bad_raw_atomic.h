// Fixture: a raw atomic op in a lock-free runtime file bypasses the
// interleave explorer's instrumentation and must produce a finding.
#include <atomic>

struct Ring {
  std::atomic<unsigned> tail{0};

  void Publish(unsigned t) {
    tail.store(t, std::memory_order_release);  // raw: finding
  }
};
