// Fixture: amortized container growth is the sanctioned mechanism, and a
// justified suppression covers setup-time allocation; "new" in comments
// (a new tuple arrives) must not trigger.
void Insert(const Tuple& t) {
  entries_.push_back(t);
}

void Setup(size_t capacity) {
  // lint: allow(hot-path-alloc) -- one-time construction, not per-event
  slots_ = std::make_unique<Entry[]>(capacity);
}
