// Fixture: per-event heap allocation in a hot-path file must be flagged.
void Insert(const Tuple& t) {
  auto* copy = new Tuple(t);
  entries_.push_back(*copy);
  auto box = std::make_unique<Entry>(t);
}
