"""Shared helpers for the stateslice project lint rules.

Rules operate on *comment- and string-stripped* source text so tokens in
comments or string literals never trigger findings. Stripping preserves the
line structure (every removed character becomes a space), so reported line
numbers match the original file.
"""

import re
from dataclasses import dataclass


@dataclass
class Finding:
    rule: str
    path: str
    line: int  # 1-based
    message: str

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


_STRIP_RE = re.compile(
    r"""
      //[^\n]*                  # line comment
    | /\*.*?\*/                 # block comment
    | "(?:\\.|[^"\\\n])*"       # string literal
    | '(?:\\.|[^'\\\n])*'       # char literal
    """,
    re.VERBOSE | re.DOTALL,
)


def strip_comments_and_strings(text):
    """Blanks out comments and literals, preserving newlines and columns."""

    def blank(match):
        return re.sub(r"[^\n]", " ", match.group(0))

    return _STRIP_RE.sub(blank, text)


_ALLOW_RE = re.compile(r"lint:\s*allow\(([a-z0-9-]+)\)\s*--\s*\S")


def allowed(original_lines, line_index, rule):
    """True when line `line_index` (0-based) carries or follows a
    `// lint: allow(<rule>) -- <justification>` suppression comment."""
    candidates = [original_lines[line_index]]
    if line_index > 0:
        candidates.append(original_lines[line_index - 1])
    for text in candidates:
        m = _ALLOW_RE.search(text)
        if m and m.group(1) == rule:
            return True
    return False


def statement_start_line(stripped_text, match_pos):
    """0-based line of the statement containing `match_pos`: scans the
    stripped text backwards to the previous ';', '{' or '}' so findings on
    (and suppressions above) multi-line statements anchor to the line a
    human reads as the site."""
    boundary = max(stripped_text.rfind(c, 0, match_pos)
                   for c in (";", "{", "}"))
    start = boundary + 1
    while start < match_pos and stripped_text[start] in " \t\n":
        start += 1
    return stripped_text.count("\n", 0, start)


def allowed_statement(original_lines, stripped_text, match_pos, rule):
    """True when the statement containing `match_pos`, or the line above
    it, carries an allow(<rule>) suppression. For single-line statements
    this degenerates to allowed()."""
    first = statement_start_line(stripped_text, match_pos)
    last = stripped_text.count("\n", 0, match_pos)
    for i in range(max(first - 1, 0), min(last, len(original_lines) - 1) + 1):
        m = _ALLOW_RE.search(original_lines[i])
        if m and m.group(1) == rule:
            return True
    return False


def balanced_argument(text, open_paren_index):
    """Returns (argument_text, end_index) for the parenthesized region
    starting at `open_paren_index` (which must be '('), or (None, -1) when
    unbalanced (e.g. a truncated fixture)."""
    depth = 0
    for i in range(open_paren_index, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren_index + 1 : i], i
    return None, -1
