"""Rule: check-side-effects.

SLICE_CHECK expressions must be side-effect-free: the STATESLICE_STRIP_CHECKS
build compiles the expression unevaluated (src/common/check.h), so a check
like SLICE_CHECK(q.Pop()) would silently change program behaviour between
checked and stripped builds. Flags increments/decrements, assignments, and
calls to known mutating members inside any SLICE_CHECK* argument list.
"""

import re

from . import common

NAME = "check-side-effects"
FIXTURE_RELPATH = "src/runtime/example.cc"

_EXEMPT = {"src/common/check.h"}

_CHECK_RE = re.compile(r"\bSLICE_CHECK(?:_EQ|_NE|_LT|_LE|_GT|_GE)?\s*\(")

# Assignment: '=' not preceded by a comparison/compound-operator character
# and not followed by '=' (so ==, !=, <=, >=, +=, ... don't match).
_SIDE_EFFECTS = [
    (re.compile(r"\+\+|--"), "increment/decrement"),
    (re.compile(r"(?<![=!<>+\-*/%&|^])=(?!=)"), "assignment"),
    (re.compile(
        r"(?:\.|->)(?:push_back|push_front|pop_back|pop_front|emplace\w*|"
        r"insert|erase|clear|reset|release|Push|Pop|Take\w*)\s*\("),
     "mutating call"),
]


def applies(relpath):
    return (relpath.startswith(("src/", "tests/", "examples/", "bench/"))
            and relpath.endswith((".h", ".cc"))
            and relpath not in _EXEMPT)


def check(relpath, text):
    findings = []
    stripped = common.strip_comments_and_strings(text)
    original_lines = text.splitlines()
    for match in _CHECK_RE.finditer(stripped):
        open_paren = match.end() - 1
        arg, _ = common.balanced_argument(stripped, open_paren)
        if arg is None:
            continue
        line_index = stripped.count("\n", 0, match.start())
        if common.allowed(original_lines, line_index, NAME):
            continue
        for pattern, what in _SIDE_EFFECTS:
            if pattern.search(arg):
                findings.append(common.Finding(
                    NAME, relpath, line_index + 1,
                    f"{what} inside SLICE_CHECK; the expression is "
                    "unevaluated under STATESLICE_STRIP_CHECKS"))
                break
    return findings
