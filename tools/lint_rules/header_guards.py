"""Rule: header-guards.

Every header under src/ carries the canonical include guard derived from
its path (src/runtime/plan.h -> STATESLICE_RUNTIME_PLAN_H_). Non-canonical
guards collide silently when files move; #pragma once is not used because
the guard name doubles as the file's identity in error output. This
complements the CMake-generated per-header include-cleanliness TUs
(STATESLICE_HEADER_CHECKS), which prove each header compiles standalone.
"""

import re

from . import common

NAME = "header-guards"
FIXTURE_RELPATH = "src/runtime/example.h"


def applies(relpath):
    return relpath.startswith("src/") and relpath.endswith(".h")


def expected_guard(relpath):
    stem = relpath[len("src/"):]
    return "STATESLICE_" + re.sub(r"[/.]", "_", stem).upper() + "_"


def check(relpath, text):
    guard = expected_guard(relpath)
    ifndef = re.search(r"#\s*ifndef\s+(\S+)", text)
    define = re.search(r"#\s*define\s+(\S+)", text)
    if (ifndef and define
            and ifndef.group(1) == guard and define.group(1) == guard):
        return []
    found = ifndef.group(1) if ifndef else "<missing>"
    line = (text.count("\n", 0, ifndef.start()) + 1) if ifndef else 1
    return [common.Finding(
        NAME, relpath, line,
        f"include guard is {found}, expected {guard}")]
