"""Rule: atomic-memory-order.

In the lock-free runtime files every std::atomic operation must name an
explicit memory order — a defaulted seq_cst hides the author's intent and
silently overpays, and an accidental default is indistinguishable from a
considered one. Conversely, every memory_order_relaxed is a claim that the
operation carries no synchronization, which must be justified with a
`// lint: allow(atomic-memory-order) -- <why>` comment on the statement
(single-writer self-reads, commutative accounting, seeded-bug constants).

Order arguments are accepted either as a std::memory_order_* literal or as
a named constant ending in `Order` (the spsc_internal publication-order
constants that the seeded-violation builds weaken).
"""

import re

from . import common

NAME = "atomic-memory-order"
FIXTURE_RELPATH = "src/runtime/spsc_queue.h"

LOCKFREE_FILES = {
    "src/common/fault_point.h",
    "src/runtime/spsc_queue.h",
    "src/runtime/parallel_scheduler.h",
    "src/runtime/parallel_scheduler.cc",
    "src/runtime/steal_deque.h",
    "src/runtime/shard_router.h",
    "src/runtime/shard_router.cc",
    "src/runtime/sharded_scheduler.h",
    "src/runtime/sharded_scheduler.cc",
}

_ATOMIC_OP_RE = re.compile(
    r"[.>]\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong|"
    r"test_and_set)\s*\(")

_EXPLICIT_ORDER_RE = re.compile(r"\bstd::memory_order_\w+|\b\w*Order\b")

_RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")


def applies(relpath):
    return relpath in LOCKFREE_FILES


def check(relpath, text):
    findings = []
    stripped = common.strip_comments_and_strings(text)
    original_lines = text.splitlines()

    for m in _ATOMIC_OP_RE.finditer(stripped):
        op = m.group(1)
        arg, _ = common.balanced_argument(stripped, m.end() - 1)
        if arg is None or _EXPLICIT_ORDER_RE.search(arg):
            continue
        if common.allowed_statement(original_lines, stripped, m.start(),
                                    NAME):
            continue
        line = common.statement_start_line(stripped, m.start())
        findings.append(common.Finding(
            NAME, relpath, line + 1,
            f"atomic {op}() without an explicit memory order in a "
            "lock-free file; spell out the order (or justify with a "
            "lint: allow comment)"))

    for m in _RELAXED_RE.finditer(stripped):
        if common.allowed_statement(original_lines, stripped, m.start(),
                                    NAME):
            continue
        line = common.statement_start_line(stripped, m.start())
        findings.append(common.Finding(
            NAME, relpath, line + 1,
            "memory_order_relaxed without a justification; relaxed claims "
            "the op carries no synchronization — say why with "
            "// lint: allow(atomic-memory-order) -- <reason>"))
    return findings
