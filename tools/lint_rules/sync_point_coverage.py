"""Rule: sync-point-coverage.

The interleave explorer (tests/interleave/) can only verify atomic sites it
can see: every cross-thread atomic operation in the lock-free runtime
files must be routed through a STATESLICE_ATOMIC_* macro from
src/runtime/sync_point.h (each of which IS a schedule/sync point and
carries a stable trace tag). A raw .load()/.store()/RMW call in these
files is invisible to the model checker — the schedules it explores no
longer cover the real protocol, which is precisely how ordering bugs slip
back in. Sites that are deliberately unmodeled still go through the
_OWNER/_ACCOUNTING macro variants, so a literal raw call is always a
finding unless justified with
`// lint: allow(sync-point-coverage) -- <why>`.
"""

import re

from . import common

NAME = "sync-point-coverage"
FIXTURE_RELPATH = "src/runtime/spsc_queue.h"

LOCKFREE_FILES = {
    "src/common/fault_point.h",
    "src/runtime/spsc_queue.h",
    "src/runtime/parallel_scheduler.h",
    "src/runtime/parallel_scheduler.cc",
    "src/runtime/steal_deque.h",
    "src/runtime/shard_router.h",
    "src/runtime/shard_router.cc",
    "src/runtime/sharded_scheduler.h",
    "src/runtime/sharded_scheduler.cc",
}

_ATOMIC_OP_RE = re.compile(
    r"[.>]\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong|"
    r"test_and_set)\s*\(")


def applies(relpath):
    return relpath in LOCKFREE_FILES


def check(relpath, text):
    findings = []
    stripped = common.strip_comments_and_strings(text)
    original_lines = text.splitlines()
    for m in _ATOMIC_OP_RE.finditer(stripped):
        if common.allowed_statement(original_lines, stripped, m.start(),
                                    NAME):
            continue
        line = common.statement_start_line(stripped, m.start())
        findings.append(common.Finding(
            NAME, relpath, line + 1,
            f"raw atomic {m.group(1)}() bypasses the sync-point "
            "instrumentation; use the STATESLICE_ATOMIC_* macros "
            "(src/runtime/sync_point.h) so the interleave explorer can "
            "drive this site"))
    return findings
