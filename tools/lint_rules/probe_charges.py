"""Rule: probe-charges-cost.

Every operator that probes join state must charge the probe's outcome —
both the logical paper-unit comparisons and the physical lookup/visit work
— through Operator::ChargeProbe (src/runtime/operator.h), which covers
both axes and drains the index-upkeep counter. A probe whose stats are
dropped silently corrupts the cost-model figures (Eqs. 1-3) that the
benches reproduce.

Mechanically: in src/operators/*.cc, every `.Probe(` call site must have a
`ChargeProbe` within the same statement or the following window of lines.
"""

import re

from . import common

NAME = "probe-charges-cost"
FIXTURE_RELPATH = "src/operators/example.cc"

_PROBE_RE = re.compile(r"\.Probe\s*\(")
_WINDOW = 15  # lines after the probe in which the charge must appear


def applies(relpath):
    return relpath.startswith("src/operators/") and relpath.endswith(".cc")


def check(relpath, text):
    findings = []
    stripped_lines = common.strip_comments_and_strings(text).splitlines()
    original_lines = text.splitlines()
    for i, line in enumerate(stripped_lines):
        if not _PROBE_RE.search(line):
            continue
        if common.allowed(original_lines, i, NAME):
            continue
        window = stripped_lines[i : i + _WINDOW + 1]
        if not any("ChargeProbe" in w for w in window):
            findings.append(common.Finding(
                NAME, relpath, i + 1,
                "state probe without a ChargeProbe within "
                f"{_WINDOW} lines; probe stats must be charged to the "
                "logical and physical cost counters"))
    return findings
