"""Rule: no-raw-checks.

Production code under src/ reports invariant violations through SLICE_CHECK
(src/common/check.h) only: raw assert() vanishes in NDEBUG builds, abort()
loses the failing expression, and iostream drags in static initializers and
unsynchronized global streams. check.h itself (the one place allowed to
call the terminating primitives) is exempt.
"""

import re

from . import common

NAME = "no-raw-checks"
FIXTURE_RELPATH = "src/runtime/example.cc"

_EXEMPT = {"src/common/check.h"}

_PATTERNS = [
    (re.compile(r"(?<!static_)(?<!_)\bassert\s*\("),
     "raw assert(); use SLICE_CHECK (src/common/check.h)"),
    (re.compile(r"(?<!::)\babort\s*\("),
     "raw abort(); use SLICE_CHECK (src/common/check.h)"),
    (re.compile(r"#\s*include\s*<(?:iostream|cassert|assert\.h)>"),
     "iostream/cassert include; src/ uses SLICE_CHECK and cstdio"),
    (re.compile(r"\bstd::(?:cout|cerr)\b"),
     "std::cout/cerr in src/; report through return values or SLICE_CHECK"),
]


def applies(relpath):
    return (relpath.startswith("src/")
            and relpath.endswith((".h", ".cc"))
            and relpath not in _EXEMPT)


def check(relpath, text):
    findings = []
    stripped = common.strip_comments_and_strings(text)
    original_lines = text.splitlines()
    for i, line in enumerate(stripped.splitlines()):
        for pattern, message in _PATTERNS:
            if pattern.search(line) and not common.allowed(
                    original_lines, i, NAME):
                findings.append(
                    common.Finding(NAME, relpath, i + 1, message))
    return findings
