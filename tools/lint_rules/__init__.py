"""Project-specific lint rules for the stateslice repo (see tools/lint.py).

Each rule module exposes:
  NAME             -- the rule id used in findings and allow() suppressions
  FIXTURE_RELPATH  -- the pseudo-path fixtures are checked under
  applies(relpath) -- whether the rule runs on a repo-relative path
  check(relpath, text) -> [common.Finding]
"""

from . import atomic_memory_order
from . import check_side_effects
from . import header_guards
from . import hot_path_alloc
from . import no_raw_checks
from . import probe_charges
from . import sync_point_coverage

ALL_RULES = [
    no_raw_checks,
    check_side_effects,
    probe_charges,
    hot_path_alloc,
    header_guards,
    atomic_memory_order,
    sync_point_coverage,
]
