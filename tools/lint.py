#!/usr/bin/env python3
"""stateslice project linter: invariants generic tools can't check.

Rules (tools/lint_rules/):
  no-raw-checks       src/ reports failures through SLICE_CHECK only
                      (no assert/abort/iostream).
  check-side-effects  SLICE_CHECK expressions are side-effect-free (they
                      compile unevaluated under STATESLICE_STRIP_CHECKS).
  probe-charges-cost  every join-state probe charges logical + physical
                      cost counters via ChargeProbe.
  hot-path-alloc      per-event hot-path files don't heap-allocate.
  header-guards       src/ headers carry canonical include guards.
  atomic-memory-order lock-free files spell out an explicit memory order on
                      every std::atomic op; memory_order_relaxed needs a
                      justification comment.
  sync-point-coverage atomic sites in lock-free files route through the
                      STATESLICE_ATOMIC_* sync-point macros so the
                      interleave explorer (tests/interleave/) sees them.

Usage:
  tools/lint.py [--root DIR]      lint the repo; exit 1 on findings
  tools/lint.py --self-test       run the rule fixtures; exit 1 on failure

Suppress a finding with a justification comment on (or right above) the
flagged line:   // lint: allow(<rule>) -- <why this is safe>
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from lint_rules import ALL_RULES  # noqa: E402

LINT_DIRS = ("src",)


def iter_source_files(root):
    for top in LINT_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in (".h", ".cc") and path.is_file():
                yield path


def lint_tree(root):
    findings = []
    for path in iter_source_files(root):
        relpath = path.relative_to(root).as_posix()
        text = path.read_text(encoding="utf-8")
        for rule in ALL_RULES:
            if rule.applies(relpath):
                findings.extend(rule.check(relpath, text))
    return findings


def self_test(root):
    """Checks every fixture: bad_* must trigger its rule, good_* must not."""
    fixtures_dir = Path(__file__).resolve().parent / "lint_rules" / "fixtures"
    failures = []
    total = 0
    for rule in ALL_RULES:
        rule_dir = fixtures_dir / rule.NAME
        fixtures = sorted(rule_dir.iterdir()) if rule_dir.is_dir() else []
        bad = [f for f in fixtures if f.name.startswith("bad")]
        good = [f for f in fixtures if f.name.startswith("good")]
        if not bad or not good:
            failures.append(f"{rule.NAME}: missing bad/good fixtures")
            continue
        if not rule.applies(rule.FIXTURE_RELPATH):
            failures.append(
                f"{rule.NAME}: rule does not apply to its own "
                f"FIXTURE_RELPATH {rule.FIXTURE_RELPATH}")
        for fixture in bad + good:
            total += 1
            text = fixture.read_text(encoding="utf-8")
            got = [f for f in rule.check(rule.FIXTURE_RELPATH, text)
                   if f.rule == rule.NAME]
            if fixture.name.startswith("bad") and not got:
                failures.append(
                    f"{rule.NAME}: {fixture.name} produced no finding")
            if fixture.name.startswith("good") and got:
                failures.append(
                    f"{rule.NAME}: {fixture.name} produced unexpected "
                    f"findings: {[str(f) for f in got]}")
    for failure in failures:
        print(f"SELF-TEST FAIL: {failure}", file=sys.stderr)
    print(f"lint self-test: {total} fixtures, "
          f"{len(failures)} failures, {len(ALL_RULES)} rules")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the rule fixtures instead of linting")
    args = parser.parse_args()

    if args.self_test:
        return self_test(None)

    root = Path(args.root).resolve() if args.root else \
        Path(__file__).resolve().parent.parent
    findings = lint_tree(root)
    for finding in findings:
        print(str(finding), file=sys.stderr)
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
