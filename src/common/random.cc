#include "src/common/random.h"

#include <cmath>

namespace stateslice {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // Avoid the all-zero state (cannot happen with splitmix64, but be safe).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's multiply-shift; slight modulo bias is irrelevant for workloads.
  const unsigned __int128 product =
      static_cast<unsigned __int128>(NextU64()) * bound;
  return static_cast<uint64_t>(product >> 64);
}

double Rng::NextExponential(double rate) {
  // Inverse-CDF; (1 - u) avoids log(0).
  return -std::log(1.0 - NextDouble()) / rate;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace stateslice
