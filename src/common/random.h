// Deterministic pseudo-random generators for the synthetic workloads.
//
// Every experiment in this repository is seeded; two runs with the same seed
// produce identical streams, so the equivalence property tests can compare
// result multisets across plan shapes bit-for-bit.
#ifndef STATESLICE_COMMON_RANDOM_H_
#define STATESLICE_COMMON_RANDOM_H_

#include <cstdint>

namespace stateslice {

// xoshiro256**-based generator with a splitmix64 seeding routine. We roll our
// own (tiny) generator instead of <random> engines so that streams are
// reproducible across standard-library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [0, bound) using rejection-free Lemire reduction.
  // `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Exponentially distributed value with the given rate (events per tick
  // unit of `scale`); used for Poisson inter-arrival times.
  double NextExponential(double rate);

  // Forks an independent generator; the child is seeded from this stream so
  // that adding consumers does not perturb existing sequences.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace stateslice

#endif  // STATESLICE_COMMON_RANDOM_H_
