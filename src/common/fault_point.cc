#include "src/common/fault_point.h"

#if defined(STATESLICE_FAULT_TEST)

namespace stateslice::faulttest {
namespace {

// Plain pointer, not atomic: tests install the injector before starting
// the engine's worker threads and uninstall after quiescing them, so
// every access from an instrumented thread is ordered by the spawn/join
// edges (same reasoning as sync_point.cc).
FaultInjector* g_injector = nullptr;

}  // namespace

FaultInjector* Injector() { return g_injector; }

void InstallInjector(FaultInjector* injector) { g_injector = injector; }

}  // namespace stateslice::faulttest

#endif  // STATESLICE_FAULT_TEST
