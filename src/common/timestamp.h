// Virtual-time primitives used throughout the stateslice library.
//
// The paper (Section 2) assumes tuple timestamps have a global ordering based
// on the system clock. We simulate that clock: all timestamps and window
// lengths are expressed in integer *ticks*. One second of paper time equals
// `kTicksPerSecond` ticks, which gives sub-millisecond resolution for the
// Poisson arrival processes used by the workload generator while keeping the
// arithmetic exact (no floating-point timestamps anywhere in the runtime).
#ifndef STATESLICE_COMMON_TIMESTAMP_H_
#define STATESLICE_COMMON_TIMESTAMP_H_

#include <cstdint>

namespace stateslice {

// A point in virtual time, in ticks since the start of the run.
using TimePoint = int64_t;

// A span of virtual time, in ticks. Window sizes are Durations.
using Duration = int64_t;

// Resolution of the virtual clock. 10^6 ticks per second = microseconds.
inline constexpr int64_t kTicksPerSecond = 1'000'000;

// Converts seconds of paper time (e.g. "WINDOW 60 min" = 3600 s) to ticks.
constexpr Duration SecondsToTicks(double seconds) {
  return static_cast<Duration>(seconds * kTicksPerSecond);
}

// Converts ticks back to (fractional) seconds, for reporting only.
constexpr double TicksToSeconds(Duration ticks) {
  return static_cast<double>(ticks) / kTicksPerSecond;
}

// Sentinel meaning "no timestamp yet" / "minus infinity" for watermarks.
inline constexpr TimePoint kMinTime = INT64_MIN;

// Sentinel meaning "plus infinity"; used as the end window of an unbounded
// slice and as the final punctuation that flushes downstream merges.
inline constexpr TimePoint kMaxTime = INT64_MAX;

}  // namespace stateslice

#endif  // STATESLICE_COMMON_TIMESTAMP_H_
