#include "src/common/cost_counters.h"

#include <sstream>

namespace stateslice {

uint64_t CostCounters::Total() const {
  uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

uint64_t CostCounters::PhysicalTotal() const {
  uint64_t total = 0;
  for (const auto& c : phys_) total += c.load(std::memory_order_relaxed);
  return total;
}

void CostCounters::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  for (auto& c : phys_) c.store(0, std::memory_order_relaxed);
}

const char* CostCounters::Name(CostCategory category) {
  switch (category) {
    case CostCategory::kProbe:
      return "probe";
    case CostCategory::kPurge:
      return "purge";
    case CostCategory::kRoute:
      return "route";
    case CostCategory::kFilter:
      return "filter";
    case CostCategory::kUnion:
      return "union";
    case CostCategory::kSplit:
      return "split";
    case CostCategory::kGate:
      return "gate";
    default:
      return "?";
  }
}

const char* CostCounters::Name(PhysCategory category) {
  switch (category) {
    case PhysCategory::kKeyLookup:
      return "key_lookup";
    case PhysCategory::kEntryVisit:
      return "entry_visit";
    case PhysCategory::kIndexUpkeep:
      return "index_upkeep";
    default:
      return "?";
  }
}

std::string CostCounters::DebugString() const {
  std::ostringstream out;
  for (int i = 0; i < static_cast<int>(CostCategory::kCategoryCount); ++i) {
    if (i > 0) out << " ";
    out << Name(static_cast<CostCategory>(i)) << "="
        << counts_[i].load(std::memory_order_relaxed);
  }
  out << " total=" << Total();
  for (int i = 0; i < static_cast<int>(PhysCategory::kPhysCategoryCount);
       ++i) {
    out << " " << Name(static_cast<PhysCategory>(i)) << "="
        << phys_[i].load(std::memory_order_relaxed);
  }
  return out.str();
}

}  // namespace stateslice
