// Per-plan epoch arena backing composite-tuple tails.
//
// The run-at-a-time hot path must not touch the global heap per event
// (ISSUE 7 / ROADMAP "vectorized batch execution with arena tuple storage").
// Composite tails that spill past the inline capacity of
// CompositeTuple::tail draw storage from the plan's Arena instead: a chunked
// bump allocator with per-power-of-two size-class freelists, so a tail block
// freed when a composite dies is recycled by the next spill of the same
// class. Memory is only returned to the OS when the Arena itself is
// destroyed — the "epoch" is the lifetime of the owning QueryPlan, which the
// plan guarantees outlives every operator, queue, and scheduler that might
// hold arena-backed tuples (the Arena is the plan's first-declared member).
//
// Allocation is mutex-protected: spills are rare (N-way composites beyond 4
// constituents) and the parallel scheduler's stage workers share the plan
// arena, so a lock beats per-thread arenas that would strand freelist blocks
// on the wrong thread. The steady-state path (<= 4 constituents) never calls
// into the arena at all.
//
// Which arena a copy draws from is ambient: schedulers install the plan's
// arena for the duration of a run via ArenaScope, and copy construction of a
// spilled tail asks CurrentArena(). Code that hands tuples to user callbacks
// (CallbackSink) installs a null scope so user-side copies fall back to the
// global heap and may safely outlive the plan.
#ifndef STATESLICE_COMMON_ARENA_H_
#define STATESLICE_COMMON_ARENA_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace stateslice {

// A chunked allocator with size-class freelists and epoch (whole-arena)
// reclamation. Thread-safe; see file comment for the locking rationale.
class Arena {
 public:
  // Smallest serviced block. Must hold a freelist next-pointer and keep
  // 8-byte alignment for Tuple arrays.
  static constexpr size_t kMinBlockBytes = 32;
  // Largest size class: 32 << 15 = 1 MiB per block, far beyond any
  // kMaxStreams-bounded tail. Larger requests CHECK-fail.
  static constexpr int kNumClasses = 16;

  Arena() = default;
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns a block of at least `bytes` bytes, 8-byte aligned. The block
  // stays owned by the arena; return it with Deallocate to recycle it.
  void* Allocate(size_t bytes);

  // Returns a block obtained from Allocate(bytes) to its size-class
  // freelist. `bytes` must be the size originally requested (callers — the
  // CompositeTuple tail vector — track their capacity anyway).
  void Deallocate(void* block, size_t bytes);

  // Observability for tests and memory accounting.
  size_t bytes_reserved() const;    // total chunk bytes obtained from the OS
  size_t blocks_outstanding() const;  // Allocate calls minus Deallocate calls
  uint64_t total_allocations() const;  // lifetime Allocate count

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  // Maps a request size to its size class (blocks of kMinBlockBytes << c).
  static int ClassFor(size_t bytes);

  // Bump-allocates `bytes` from the open chunk, growing if needed.
  void* AllocateFromChunk(size_t bytes);

  mutable std::mutex mu_;
  std::vector<Chunk> chunks_;
  // Intrusive freelists: a free block's first 8 bytes store the next
  // pointer. Index = size class.
  std::array<void*, kNumClasses> free_lists_{};
  size_t bytes_reserved_ = 0;
  size_t blocks_outstanding_ = 0;
  uint64_t total_allocations_ = 0;
};

// Returns the thread's ambient arena, or nullptr when copies must use the
// global heap. Installed by ArenaScope; null outside any scope.
Arena* CurrentArena();

// RAII install of an ambient arena for the current thread. Scopes nest; the
// destructor restores the previous arena. Passing nullptr *suspends* any
// outer scope — used around user callbacks so their copies never land in a
// plan-lifetime arena.
class ArenaScope {
 public:
  explicit ArenaScope(Arena* arena);
  ~ArenaScope();

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* previous_;
};

}  // namespace stateslice

#endif  // STATESLICE_COMMON_ARENA_H_
