// Selection predicates over tuples.
//
// The paper's example predicate is `A.Value > Threshold` with a tunable
// selectivity Sσ. We model predicates as closed value-range tests plus
// composable AND/OR/NOT combinators; a predicate knows its analytic
// selectivity under the workload generator's Uniform(0,1) value model, which
// the cost model (Eqs. 1-3) consumes.
#ifndef STATESLICE_COMMON_PREDICATE_H_
#define STATESLICE_COMMON_PREDICATE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/tuple.h"

namespace stateslice {

// An immutable, shareable predicate on a tuple's `value` attribute.
//
// Predicates are cheap to copy (shared_ptr payload). The default predicate
// is "true" (selectivity 1.0). Example:
//   Predicate p = Predicate::GreaterThan(0.7);   // Sσ = 0.3 under U(0,1)
//   if (p.Eval(tuple)) ...
class Predicate {
 public:
  // Always-true predicate, selectivity 1.
  Predicate();

  // value > threshold. Under values ~ U(0,1): selectivity = 1 - threshold.
  static Predicate GreaterThan(double threshold);

  // value < threshold. Under values ~ U(0,1): selectivity = threshold.
  static Predicate LessThan(double threshold);

  // lo <= value < hi. Under values ~ U(0,1): selectivity = hi - lo.
  static Predicate Range(double lo, double hi);

  // Predicate with the given target selectivity under U(0,1) values,
  // implemented as value < selectivity. `selectivity` must be in [0, 1].
  static Predicate WithSelectivity(double selectivity);

  // Arbitrary test with caller-supplied analytic selectivity (for tests).
  static Predicate Custom(std::function<bool(const Tuple&)> fn,
                          double selectivity, std::string description);

  // Logical combinators. Selectivity estimates assume independence for And
  // and disjointness-free inclusion/exclusion for Or, capped to [0,1].
  static Predicate And(const Predicate& x, const Predicate& y);
  static Predicate Or(const Predicate& x, const Predicate& y);
  static Predicate Not(const Predicate& x);

  // Disjunction of many predicates; identity element is "false" when the
  // list is empty. Used for the chain-input filters of Section 6.1 whose
  // condition is cond_i OR cond_{i+1} OR ... OR cond_N.
  static Predicate AnyOf(const std::vector<Predicate>& preds);

  // Evaluates the predicate on `t`.
  bool Eval(const Tuple& t) const { return impl_->fn(t); }

  // Evaluates the predicate and reports how many member-predicate
  // evaluations it took: 1 for simple predicates, the short-circuit OR
  // count for AnyOf disjunctions. This is the unit the σ'_i inter-slice
  // filters charge (Section 6.1's lineage optimization exists precisely to
  // avoid repeating these evaluations).
  bool EvalCounted(const Tuple& t, uint64_t* evaluations) const;

  // Analytic selectivity under the workload's U(0,1) value model.
  double selectivity() const { return impl_->selectivity; }

  // True if this is the trivial always-true predicate.
  bool IsTrue() const { return impl_->is_true; }

  // Human-readable form, e.g. "(value > 0.7)".
  const std::string& description() const { return impl_->description; }

 private:
  struct Impl {
    std::function<bool(const Tuple&)> fn;
    double selectivity = 1.0;
    bool is_true = false;
    std::string description;
    // Flat member list for AnyOf disjunctions (empty for simple
    // predicates); EvalCounted short-circuits over it.
    std::vector<Predicate> disjuncts;
  };
  explicit Predicate(std::shared_ptr<const Impl> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<const Impl> impl_;
};

}  // namespace stateslice

#endif  // STATESLICE_COMMON_PREDICATE_H_
