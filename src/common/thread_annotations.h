// Portable Clang Thread Safety Analysis annotations.
//
// The parallel runtime shares mutable state across threads without locks:
// SPSC rings partition access by *role* (one producer thread, one consumer
// thread), pipeline stages partition operators by *owning worker*, and the
// Engine serializes plan surgery against ingestion by *quiescing* the
// pipeline first. Those contracts used to live in comments and runtime
// CHECKs only; the macros below make them machine-checked when compiling
// with Clang's -Wthread-safety (enabled automatically for Clang builds, and
// fatal under STATESLICE_WERROR). Off Clang every macro expands to nothing,
// so GCC/MSVC builds are unaffected.
//
// Vocabulary (mirrors the LLVM thread-safety annotation reference):
//  - STATESLICE_CAPABILITY marks a class as a capability (a lock, or here
//    more often a *thread role* — see ThreadRole below).
//  - STATESLICE_GUARDED_BY(cap) on a member means reads/writes require
//    holding `cap`.
//  - STATESLICE_REQUIRES(cap) on a function means callers must hold `cap`.
//  - STATESLICE_ASSERT_CAPABILITY(cap) on a function tells the analysis the
//    capability is held from the call onward (the role-assertion pattern:
//    the runtime fact "this thread plays that role" cannot be proven by the
//    compiler, so code asserts it at the point the role is established, and
//    the analysis checks everything downstream of the assertion).
//  - STATESLICE_ACQUIRE/RELEASE/EXCLUDES follow the usual lock meanings for
//    any future real mutexes.
//
// Every assertion call site must carry a comment justifying *why* the role
// holds there (see README "Static analysis & correctness tooling").
#ifndef STATESLICE_COMMON_THREAD_ANNOTATIONS_H_
#define STATESLICE_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define STATESLICE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define STATESLICE_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

// Class-level: the annotated type is a capability (lock or thread role).
#define STATESLICE_CAPABILITY(x) \
  STATESLICE_THREAD_ANNOTATION_(capability(x))
#define STATESLICE_SCOPED_CAPABILITY \
  STATESLICE_THREAD_ANNOTATION_(scoped_lockable)

// Data members: access requires the named capability (by value / by
// pointee).
#define STATESLICE_GUARDED_BY(x) STATESLICE_THREAD_ANNOTATION_(guarded_by(x))
#define STATESLICE_PT_GUARDED_BY(x) \
  STATESLICE_THREAD_ANNOTATION_(pt_guarded_by(x))

// Functions: caller-side contracts.
#define STATESLICE_REQUIRES(...) \
  STATESLICE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define STATESLICE_REQUIRES_SHARED(...) \
  STATESLICE_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define STATESLICE_ACQUIRE(...) \
  STATESLICE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define STATESLICE_RELEASE(...) \
  STATESLICE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define STATESLICE_EXCLUDES(...) \
  STATESLICE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define STATESLICE_RETURN_CAPABILITY(x) \
  STATESLICE_THREAD_ANNOTATION_(lock_returned(x))

// The role-assertion primitive: after a call to a function annotated with
// this, the analysis treats the capability as held for the rest of the
// caller's scope. No release is expected (asserted capabilities are exempt
// from end-of-scope checking).
#define STATESLICE_ASSERT_CAPABILITY(x) \
  STATESLICE_THREAD_ANNOTATION_(assert_capability(x))

// Escape hatch; every use must carry a justification comment and shows up
// in review. Prefer annotating correctly over suppressing.
#define STATESLICE_NO_THREAD_SAFETY_ANALYSIS \
  STATESLICE_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace stateslice {

// A *thread role*: a capability that is conferred by the threading design
// rather than by a lock — "the producer side of this ring", "the worker
// owning this stage", "the (single) API caller thread, with the pipeline
// quiescent". Code that establishes a role at runtime calls Assert() once,
// with a comment saying why the role holds; the analysis then checks that
// all role-guarded state is only touched downstream of such an assertion.
//
// The class is an empty tag — Assert() compiles to nothing — so roles can
// live inside hot lock-free structures (SpscQueue) at zero cost. Roles are
// copyable so value types carrying one (CostCounters) stay copyable; a
// copied role is a fresh tag for the new object, not a shared capability.
class STATESLICE_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) {}
  ThreadRole& operator=(const ThreadRole&) { return *this; }

  // Declares that the calling thread holds this role from here to the end
  // of the enclosing scope. Call sites must justify the claim in a comment.
  void Assert() const STATESLICE_ASSERT_CAPABILITY(this) {}
};

}  // namespace stateslice

#endif  // STATESLICE_COMMON_THREAD_ANNOTATIONS_H_
