// Stream tuples, joined results, punctuations, and the Event variant that
// flows through operator queues.
//
// Tuples are small value types: the runtime copies them freely. A tuple's
// identity for testing/trace purposes is (stream_id, seq). The `lineage`
// bitmask implements the tuple-lineage idea of Section 6.1 of the paper:
// bit q is set iff the tuple satisfies the selection predicate of query q,
// so downstream routing never re-evaluates predicates.
#ifndef STATESLICE_COMMON_TUPLE_H_
#define STATESLICE_COMMON_TUPLE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "src/common/timestamp.h"

namespace stateslice {

// Identifies which input stream a tuple belongs to. A binary join has
// streams A and B; the ids generalize to more streams for future use.
enum class StreamSide : uint8_t { kA = 0, kB = 1 };

// Returns the opposite side (A<->B).
constexpr StreamSide Opposite(StreamSide side) {
  return side == StreamSide::kA ? StreamSide::kB : StreamSide::kA;
}

// Role tag for the male/female reference-copy discipline of the sliced
// binary window join (paper Fig. 9):
//  - kMale tuples perform cross-purge + probe and then propagate down the
//    chain;
//  - kFemale tuples only insert into the slice state, and move down the
//    chain when purged.
// Regular (non-sliced) operators ignore the role and treat every tuple as
// kBoth (a single arrival performing purge+probe+insert, paper Fig. 1).
enum class TupleRole : uint8_t { kBoth = 0, kMale = 1, kFemale = 2 };

// Maximum number of queries whose predicate satisfaction can be tracked in
// the lineage bitmask of a tuple.
inline constexpr int kMaxQueries = 64;

// A single stream tuple.
struct Tuple {
  TimePoint timestamp = 0;   // arrival time at the system (global order)
  int64_t key = 0;           // equi-join attribute (e.g. LocationId)
  double value = 0.0;        // attribute referenced by selections (A.Value)
  uint32_t seq = 0;          // per-stream sequence number (identity/testing)
  StreamSide side = StreamSide::kA;
  TupleRole role = TupleRole::kBoth;
  // Query-satisfaction bitmask (Section 6.1 lineage): bit q set iff this
  // tuple passes query q's selection on its stream. Sources set all bits;
  // chain-input filters narrow it. Tuples with lineage == 0 are dropped.
  uint64_t lineage = ~uint64_t{0};

  // Human-readable id like "a3" / "b1" used by traces and test failures.
  std::string DebugId() const;
  std::string DebugString() const;
};

// The output of joining one tuple from A with one from B. Per the paper's
// semantics (Section 2) the result timestamp is max(Ta, Tb).
struct JoinResult {
  Tuple a;
  Tuple b;

  TimePoint timestamp() const {
    return a.timestamp > b.timestamp ? a.timestamp : b.timestamp;
  }
  // Lineage of a joined tuple: queries that accept both constituents.
  uint64_t lineage() const { return a.lineage & b.lineage; }
  std::string DebugString() const;
};

// A punctuation [26] asserting that no event with timestamp < `watermark`
// will follow on this queue. The union operator uses punctuations emitted by
// the last slice's male tuples to perform its order-preserving merge
// (paper Section 4.3).
struct Punctuation {
  TimePoint watermark = kMinTime;
};

// Everything that can travel through an operator queue.
using Event = std::variant<Tuple, JoinResult, Punctuation>;

// Returns the timestamp carried by any event kind.
TimePoint EventTime(const Event& event);

// Convenience predicates for tests and operators.
inline bool IsTuple(const Event& e) { return std::holds_alternative<Tuple>(e); }
inline bool IsJoinResult(const Event& e) {
  return std::holds_alternative<JoinResult>(e);
}
inline bool IsPunctuation(const Event& e) {
  return std::holds_alternative<Punctuation>(e);
}

// Equality on tuple identity (stream, seq) — used by equivalence tests.
bool SameTuple(const Tuple& x, const Tuple& y);

// Canonical string key "a3|b7" identifying a join pair regardless of the
// processing order; equivalence tests compare result multisets with it.
std::string JoinPairKey(const JoinResult& r);

}  // namespace stateslice

#endif  // STATESLICE_COMMON_TUPLE_H_
