// Stream tuples, composite (joined) tuples, punctuations, and the Event
// variant that flows through operator queues.
//
// Tuples are small value types: the runtime copies them freely. A tuple's
// identity for testing/trace purposes is (stream_id, seq). The `lineage`
// bitmask implements the tuple-lineage idea of Section 6.1 of the paper:
// bit q is set iff the tuple satisfies the selection predicate of query q,
// so downstream routing never re-evaluates predicates. Lineage is indexed
// by *query*, never by stream: an N-way workload still consumes one bit per
// registered query, so kMaxQueries bounds queries only — the stream count
// is bounded separately by kMaxStreams.
#ifndef STATESLICE_COMMON_TUPLE_H_
#define STATESLICE_COMMON_TUPLE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>

#include "src/common/timestamp.h"

namespace stateslice {

class Arena;

// Identifies which input stream a tuple belongs to: the 0-based position of
// the stream in a query's ordered FROM list. A binary join reads streams 0
// and 1; an N-way join tree reads streams 0..N-1. A narrow integer: the id
// lives in every Tuple, and keeping the tuple at 40 bytes matters to the
// queue-bound parallel runtime.
using StreamId = int16_t;

// Maximum number of streams a single query (and hence a shared join tree)
// may read. This bounds the fan-out of the StreamDispatch operator that
// routes raw arrivals to tree levels; ValidateQueries CHECKs it and the
// parser rejects longer FROM lists with ok=false. Independent of
// kMaxQueries (lineage is per-query, not per-stream).
inline constexpr int kMaxStreams = 16;

// Compile-time validation of a stream count: code templated on the number
// of joined streams (fixed-shape test workloads, generated join trees)
// instantiates StreamCountBound<N> so an out-of-range N fails to compile
// instead of CHECK-failing at run time. tests/compile_fail proves the
// bound fires.
template <int N>
struct StreamCountBound {
  static_assert(N >= 2, "a join reads at least two streams");
  static_assert(N <= kMaxStreams,
                "stream count exceeds kMaxStreams (src/common/tuple.h)");
  static constexpr int value = N;
};

// Legacy named ids for the binary case. StreamSide used to be a scoped
// enum when the whole system was binary-join-shaped; it survives as plain
// StreamId constants so `StreamSide::kA` / `StreamSide::kB` keep reading
// naturally at binary call sites. (Unscoped enum: converts to StreamId.)
enum StreamSide : StreamId { kA = 0, kB = 1 };

// Returns the opposite side of a *binary* stream pair (0 <-> 1). Only
// meaningful inside one binary join level, where the two inputs are the
// level's left (composite or stream k) and right (stream k+1) feeds; it
// does not generalize to the N-stream id space, so tree-level code tracks
// explicit left/right stream ids instead of calling this.
constexpr StreamId Opposite(StreamId side) {
  return side == StreamSide::kA ? StreamSide::kB : StreamSide::kA;
}

// Role tag for the male/female reference-copy discipline of the sliced
// binary window join (paper Fig. 9):
//  - kMale tuples perform cross-purge + probe and then propagate down the
//    chain;
//  - kFemale tuples only insert into the slice state, and move down the
//    chain when purged.
// Regular (non-sliced) operators ignore the role and treat every tuple as
// kBoth (a single arrival performing purge+probe+insert, paper Fig. 1).
// Composite tuples flowing through the higher levels of an N-way join tree
// carry the same roles: a chain level treats an incoming composite exactly
// like a raw left-stream tuple (the binary discipline is the degenerate
// case where every constituent list has length one).
enum class TupleRole : uint8_t { kBoth = 0, kMale = 1, kFemale = 2 };

// Maximum number of queries whose predicate satisfaction can be tracked in
// the lineage bitmask of a tuple. One bit per *query* (regardless of how
// many streams each query reads); enforced by ValidateQueries.
inline constexpr int kMaxQueries = 64;

// A single stream tuple.
struct Tuple {
  TimePoint timestamp = 0;   // arrival time at the system (global order)
  int64_t key = 0;           // equi-join attribute (e.g. LocationId)
  double value = 0.0;        // attribute referenced by selections (A.Value)
  uint32_t seq = 0;          // per-stream sequence number (identity/testing)
  StreamId side = StreamSide::kA;  // 0-based FROM-list position
  TupleRole role = TupleRole::kBoth;
  // Query-satisfaction bitmask (Section 6.1 lineage): bit q set iff this
  // tuple passes query q's selection on its stream. Sources set all bits;
  // chain-input filters narrow it. Tuples with lineage == 0 are dropped.
  uint64_t lineage = ~uint64_t{0};

  // Human-readable id like "a3" / "b1" / "c7" used by traces and test
  // failures ('a' + stream id).
  std::string DebugId() const;
  std::string DebugString() const;
};

// TailVec's flat copies and destructor-free clear() lean on this.
static_assert(std::is_trivially_copyable_v<Tuple>,
              "Tuple must stay trivially copyable (flat TailVec storage)");

// Inline small-vector holding the constituents of streams 2..N-1 of a
// composite tuple. Up to kInlineCapacity constituents live inside the
// object (so composites of <= 4 total constituents never allocate); longer
// tails spill to the thread's ambient Arena (see src/common/arena.h) when
// one is installed, or to the global heap otherwise. A spilled TailVec
// remembers its owning arena so the block is returned to the right
// freelist no matter which thread destroys it. The epoch contract — the
// plan's arena outlives everything that can hold arena-backed tails — is
// what makes the raw pointer safe.
//
// Deliberately minimal: just the std::vector surface the tuple code uses.
// Tuple is trivially copyable, so growth is a flat copy and clear() needs
// no element destruction.
class TailVec {
 public:
  static constexpr uint32_t kInlineCapacity = 2;

  TailVec() = default;
  ~TailVec() { ReleaseStorage(); }

  TailVec(const TailVec& other) { CopyFrom(other); }
  TailVec& operator=(const TailVec& other) {
    if (this != &other) {
      ReleaseStorage();
      capacity_ = kInlineCapacity;
      CopyFrom(other);
    }
    return *this;
  }

  TailVec(TailVec&& other) noexcept { MoveFrom(std::move(other)); }
  TailVec& operator=(TailVec&& other) noexcept {
    if (this != &other) {
      ReleaseStorage();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  // True iff the tail spilled out of the inline buffer.
  bool spilled() const { return capacity_ > kInlineCapacity; }

  Tuple* data() { return spilled() ? spill_.heap : inline_; }
  const Tuple* data() const { return spilled() ? spill_.heap : inline_; }

  Tuple& operator[](size_t i) { return data()[i]; }
  const Tuple& operator[](size_t i) const { return data()[i]; }
  Tuple& back() { return data()[size_ - 1]; }
  const Tuple& back() const { return data()[size_ - 1]; }

  Tuple* begin() { return data(); }
  Tuple* end() { return data() + size_; }
  const Tuple* begin() const { return data(); }
  const Tuple* end() const { return data() + size_; }

  void push_back(const Tuple& t) {
    if (size_ == capacity_) Grow(size_ + 1);
    data()[size_++] = t;
  }

  void reserve(size_t n) {
    if (n > capacity_) Grow(static_cast<uint32_t>(n));
  }

  // Keeps storage (inline or spilled) for reuse.
  void clear() { size_ = 0; }

 private:
  // Moves storage to a buffer of at least min_capacity tuples (rounded up
  // to a power of two >= 4). Defined in tuple.cc: needs Arena.
  void Grow(uint32_t min_capacity);
  // Returns a spilled buffer to its arena or the heap. Defined in tuple.cc.
  void ReleaseStorage();

  void CopyFrom(const TailVec& other) {
    reserve(other.size_);
    for (uint32_t i = 0; i < other.size_; ++i) data()[i] = other.data()[i];
    size_ = other.size_;
  }

  void MoveFrom(TailVec&& other) noexcept {
    size_ = other.size_;
    capacity_ = other.capacity_;
    if (other.spilled()) {
      spill_ = other.spill_;
    } else {
      for (uint32_t i = 0; i < size_; ++i) inline_[i] = other.inline_[i];
    }
    other.size_ = 0;
    other.capacity_ = kInlineCapacity;
  }

  // Spill bookkeeping, live only while capacity_ > kInlineCapacity.
  struct Spill {
    Tuple* heap;   // the spilled buffer
    Arena* arena;  // owner of `heap` when arena-backed, else global heap
  };

  uint32_t size_ = 0;
  uint32_t capacity_ = kInlineCapacity;
  // The spill pointers overlay the inline slots: a spilled tail never uses
  // inline storage, capacity_ alone discriminates the two states, and both
  // members are trivially copyable — so the overlap costs nothing and
  // keeps sizeof(Event) (hence every queue/ring slot) 16 bytes smaller.
  union {
    // The initializer keeps the defaulted default constructor alive (and
    // costs what the plain member cost before the overlay: two Tuple
    // constructions).
    Tuple inline_[kInlineCapacity] = {};
    Spill spill_;
  };
};

// A composite tuple: the output of joining 2..N constituent stream tuples,
// ordered by FROM-list position. Per the paper's semantics (Section 2) the
// composite timestamp is the max over constituents and the lineage is the
// AND over constituents (queries that accept every part). The binary join
// result is the degenerate two-constituent case, aliased as JoinResult:
// `a` and `b` are the first two constituents and `tail` holds any further
// streams an N-way tree appended.
struct CompositeTuple {
  Tuple a;
  Tuple b;
  TailVec tail{};  // constituents of streams 2..N-1 (FROM order)
  // Chain-propagation role for composites flowing through a sliced chain
  // at tree levels >= 1 (same discipline as Tuple::role). Final results
  // keep the default.
  TupleRole role = TupleRole::kBoth;

  int size() const { return 2 + static_cast<int>(tail.size()); }
  const Tuple& part(int i) const {
    return i == 0 ? a : (i == 1 ? b : tail[static_cast<size_t>(i) - 2]);
  }
  // The latest constituent arrival: the composite's event time.
  TimePoint timestamp() const;
  // Queries that accept every constituent.
  uint64_t lineage() const;

  // Returns a copy with `t` appended as the next constituent (the next
  // tree level's output), role reset to kBoth. The copy's tail is reserved
  // at its final size (no realloc per level); the rvalue overload reuses
  // this composite's tail storage instead of cloning it (a spilled tail
  // keeps its arena/heap block; an inline tail is a flat copy).
  CompositeTuple WithAppended(const Tuple& t) const&;
  CompositeTuple WithAppended(const Tuple& t) &&;

  // |max(t_0..t_{n-2}) - t_{n-1}|: the timestamp gap introduced by the
  // *last* join level. For a binary result this is |Ta - Tb| — the routing
  // distance of the paper's Fig. 3 / Fig. 13 routers.
  Duration LastGap() const;
  // Max over k >= 1 of |max(t_0..t_{k-1}) - t_k|: the largest gap any
  // level introduced. A composite satisfies a query window w iff
  // MaxGap() < w (the left-deep prefix window semantics; see
  // src/operators/multiway.h).
  Duration MaxGap() const;

  std::string DebugString() const;
};

// The binary spelling: a CompositeTuple with (usually) two constituents.
using JoinResult = CompositeTuple;

// A punctuation [26] asserting that no event with timestamp < `watermark`
// will follow on this queue. The union operator uses punctuations emitted by
// the last slice's male tuples to perform its order-preserving merge
// (paper Section 4.3); in an N-way tree the same punctuations also gate the
// per-level input merges, cascading across levels.
struct Punctuation {
  TimePoint watermark = kMinTime;
};

// Everything that can travel through an operator queue.
using Event = std::variant<Tuple, JoinResult, Punctuation>;

// Returns the timestamp carried by any event kind.
TimePoint EventTime(const Event& event);

// Convenience predicates for tests and operators.
inline bool IsTuple(const Event& e) { return std::holds_alternative<Tuple>(e); }
inline bool IsJoinResult(const Event& e) {
  return std::holds_alternative<JoinResult>(e);
}
inline bool IsPunctuation(const Event& e) {
  return std::holds_alternative<Punctuation>(e);
}

// Equality on tuple identity (stream, seq) — used by equivalence tests.
bool SameTuple(const Tuple& x, const Tuple& y);

// Canonical string key "a3|b7" (binary) or "a3|b7|c2|..." (N-way)
// identifying a join result regardless of the processing order;
// equivalence tests compare result multisets with it.
std::string JoinPairKey(const JoinResult& r);

}  // namespace stateslice

#endif  // STATESLICE_COMMON_TUPLE_H_
