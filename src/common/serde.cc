#include "src/common/serde.h"

namespace stateslice {

void StateWriter::AppendLe(const void* src, size_t n) {
  // Serialize byte-by-byte from the least-significant end so the wire
  // format is little-endian regardless of host order.
  uint64_t v = 0;
  std::memcpy(&v, src, n);
  for (size_t i = 0; i < n; ++i) {
    data_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

bool StateReader::ReadLe(void* dst, size_t n) {
  if (!Require(n)) return false;
  uint64_t v = 0;
  for (size_t i = 0; i < n; ++i) {
    v |= static_cast<uint64_t>(
             static_cast<uint8_t>(data_[offset_ + i]))
         << (8 * i);
  }
  offset_ += n;
  std::memcpy(dst, &v, n);
  return true;
}

namespace {

// Table-driven reflected CRC-32; the table is built once on first use.
const uint32_t* CrcTable() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  const uint32_t* table = CrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : data) {
    crc = table[(crc ^ static_cast<uint8_t>(ch)) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace stateslice
