// Lightweight invariant-checking macros.
//
// Library code does not use exceptions (see DESIGN.md / style guide); broken
// invariants are programming errors and abort with a message. These checks
// stay enabled in release builds: the runtime is a correctness-critical
// reference implementation and the cost of the branches is negligible next
// to join probing.
#ifndef STATESLICE_COMMON_CHECK_H_
#define STATESLICE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace stateslice::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace stateslice::internal

// Aborts the process when `expr` is false.
#define SLICE_CHECK(expr)                                            \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::stateslice::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                \
  } while (0)

// Binary comparison checks with slightly better failure messages.
#define SLICE_CHECK_OP(lhs, op, rhs) SLICE_CHECK((lhs)op(rhs))
#define SLICE_CHECK_EQ(lhs, rhs) SLICE_CHECK_OP(lhs, ==, rhs)
#define SLICE_CHECK_NE(lhs, rhs) SLICE_CHECK_OP(lhs, !=, rhs)
#define SLICE_CHECK_LT(lhs, rhs) SLICE_CHECK_OP(lhs, <, rhs)
#define SLICE_CHECK_LE(lhs, rhs) SLICE_CHECK_OP(lhs, <=, rhs)
#define SLICE_CHECK_GT(lhs, rhs) SLICE_CHECK_OP(lhs, >, rhs)
#define SLICE_CHECK_GE(lhs, rhs) SLICE_CHECK_OP(lhs, >=, rhs)

#endif  // STATESLICE_COMMON_CHECK_H_
