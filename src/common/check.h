// Lightweight invariant-checking macros.
//
// Library code does not use exceptions (see DESIGN.md / style guide); broken
// invariants are programming errors and abort with a message. These checks
// stay enabled in release builds: the runtime is a correctness-critical
// reference implementation and the cost of the branches is negligible next
// to join probing.
//
// Defining STATESLICE_STRIP_CHECKS (the STATESLICE_STRIP_CHECKS CMake
// option) compiles the checks out for allocation-free profiling builds.
// The stripped form still *type-checks* the expression but never evaluates
// it — which is why check expressions must be side-effect-free, a contract
// enforced by tools/lint.py (rule check-side-effects).
#ifndef STATESLICE_COMMON_CHECK_H_
#define STATESLICE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace stateslice::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace stateslice::internal

#ifdef STATESLICE_STRIP_CHECKS
// Unevaluated-operand form: the expression is parsed and type-checked, so
// stripped builds cannot drift out of sync with checked ones, but no code
// is generated and no side effects can run.
#define SLICE_CHECK(expr)                 \
  do {                                    \
    (void)sizeof((expr) ? 1 : 0);         \
  } while (0)
#else
// Aborts the process when `expr` is false.
#define SLICE_CHECK(expr)                                            \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::stateslice::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                \
  } while (0)
#endif  // STATESLICE_STRIP_CHECKS

// Binary comparison checks with slightly better failure messages.
#define SLICE_CHECK_OP(lhs, op, rhs) SLICE_CHECK((lhs)op(rhs))
#define SLICE_CHECK_EQ(lhs, rhs) SLICE_CHECK_OP(lhs, ==, rhs)
#define SLICE_CHECK_NE(lhs, rhs) SLICE_CHECK_OP(lhs, !=, rhs)
#define SLICE_CHECK_LT(lhs, rhs) SLICE_CHECK_OP(lhs, <, rhs)
#define SLICE_CHECK_LE(lhs, rhs) SLICE_CHECK_OP(lhs, <=, rhs)
#define SLICE_CHECK_GT(lhs, rhs) SLICE_CHECK_OP(lhs, >, rhs)
#define SLICE_CHECK_GE(lhs, rhs) SLICE_CHECK_OP(lhs, >=, rhs)

#endif  // STATESLICE_COMMON_CHECK_H_
