#include "src/common/tuple.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "src/common/arena.h"

namespace stateslice {

void TailVec::Grow(uint32_t min_capacity) {
  uint32_t new_capacity = 4;
  while (new_capacity < min_capacity) new_capacity *= 2;
  const size_t bytes = new_capacity * sizeof(Tuple);
  Arena* arena = CurrentArena();
  Tuple* fresh = arena != nullptr
                     ? static_cast<Tuple*>(arena->Allocate(bytes))
                     // lint: allow(hot-path-alloc) -- heap fallback for
                     // tails copied outside any plan arena scope (user
                     // callbacks, tests); the scheduled hot path always
                     // has an ArenaScope installed.
                     : static_cast<Tuple*>(::operator new(bytes));
  std::copy(data(), data() + size_, fresh);
  ReleaseStorage();
  spill_.heap = fresh;
  spill_.arena = arena;
  capacity_ = new_capacity;
}

void TailVec::ReleaseStorage() {
  if (!spilled()) return;
  if (spill_.arena != nullptr) {
    spill_.arena->Deallocate(spill_.heap, capacity_ * sizeof(Tuple));
  } else {
    ::operator delete(spill_.heap);
  }
}

std::string Tuple::DebugId() const {
  std::ostringstream out;
  // Streams 0..25 print as 'a'..'z'; beyond that fall back to "s<N>_".
  if (side >= 0 && side < 26) {
    out << static_cast<char>('a' + side) << seq;
  } else {
    out << 's' << side << '_' << seq;
  }
  return out.str();
}

std::string Tuple::DebugString() const {
  std::ostringstream out;
  out << DebugId() << "(t=" << timestamp << ",k=" << key << ",v=" << value;
  if (role == TupleRole::kMale) out << ",m";
  if (role == TupleRole::kFemale) out << ",f";
  out << ")";
  return out.str();
}

TimePoint CompositeTuple::timestamp() const {
  TimePoint max = a.timestamp > b.timestamp ? a.timestamp : b.timestamp;
  for (const Tuple& t : tail) {
    if (t.timestamp > max) max = t.timestamp;
  }
  return max;
}

uint64_t CompositeTuple::lineage() const {
  uint64_t mask = a.lineage & b.lineage;
  for (const Tuple& t : tail) mask &= t.lineage;
  return mask;
}

CompositeTuple CompositeTuple::WithAppended(const Tuple& t) const& {
  CompositeTuple extended;
  extended.a = a;
  extended.b = b;
  extended.tail.reserve(tail.size() + 1);
  for (const Tuple& part : tail) extended.tail.push_back(part);
  extended.tail.push_back(t);
  extended.role = TupleRole::kBoth;
  return extended;
}

CompositeTuple CompositeTuple::WithAppended(const Tuple& t) && {
  CompositeTuple extended = std::move(*this);
  extended.tail.push_back(t);
  extended.role = TupleRole::kBoth;
  return extended;
}

Duration CompositeTuple::LastGap() const {
  const int n = size();
  TimePoint prefix_max = kMinTime;
  for (int i = 0; i < n - 1; ++i) {
    if (part(i).timestamp > prefix_max) prefix_max = part(i).timestamp;
  }
  return std::llabs(prefix_max - part(n - 1).timestamp);
}

Duration CompositeTuple::MaxGap() const {
  const int n = size();
  TimePoint prefix_max = a.timestamp;
  Duration max_gap = 0;
  for (int i = 1; i < n; ++i) {
    const Duration gap = std::llabs(prefix_max - part(i).timestamp);
    if (gap > max_gap) max_gap = gap;
    if (part(i).timestamp > prefix_max) prefix_max = part(i).timestamp;
  }
  return max_gap;
}

std::string CompositeTuple::DebugString() const {
  std::ostringstream out;
  out << "(" << a.DebugId();
  for (int i = 1; i < size(); ++i) out << "," << part(i).DebugId();
  out << ")@" << timestamp();
  return out.str();
}

TimePoint EventTime(const Event& event) {
  if (const Tuple* t = std::get_if<Tuple>(&event)) return t->timestamp;
  if (const JoinResult* r = std::get_if<JoinResult>(&event)) {
    return r->timestamp();
  }
  return std::get<Punctuation>(event).watermark;
}

bool SameTuple(const Tuple& x, const Tuple& y) {
  return x.side == y.side && x.seq == y.seq;
}

std::string JoinPairKey(const JoinResult& r) {
  std::ostringstream out;
  out << r.a.DebugId();
  for (int i = 1; i < r.size(); ++i) out << "|" << r.part(i).DebugId();
  return out.str();
}

}  // namespace stateslice
