#include "src/common/tuple.h"

#include <sstream>

namespace stateslice {

std::string Tuple::DebugId() const {
  std::ostringstream out;
  out << (side == StreamSide::kA ? 'a' : 'b') << seq;
  return out.str();
}

std::string Tuple::DebugString() const {
  std::ostringstream out;
  out << DebugId() << "(t=" << timestamp << ",k=" << key << ",v=" << value;
  if (role == TupleRole::kMale) out << ",m";
  if (role == TupleRole::kFemale) out << ",f";
  out << ")";
  return out.str();
}

std::string JoinResult::DebugString() const {
  std::ostringstream out;
  out << "(" << a.DebugId() << "," << b.DebugId() << ")@" << timestamp();
  return out.str();
}

TimePoint EventTime(const Event& event) {
  if (const Tuple* t = std::get_if<Tuple>(&event)) return t->timestamp;
  if (const JoinResult* r = std::get_if<JoinResult>(&event)) {
    return r->timestamp();
  }
  return std::get<Punctuation>(event).watermark;
}

bool SameTuple(const Tuple& x, const Tuple& y) {
  return x.side == y.side && x.seq == y.seq;
}

std::string JoinPairKey(const JoinResult& r) {
  std::ostringstream out;
  out << r.a.DebugId() << "|" << r.b.DebugId();
  return out.str();
}

}  // namespace stateslice
