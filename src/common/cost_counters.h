// CPU-cost accounting in the paper's own unit: tuple comparisons.
//
// Section 3 of the paper estimates CPU cost as "the count of comparisons per
// time unit", split into probe / purge / route / filter / union categories
// (Eqs. 1-3). Every operator charges its comparisons to a CostCounters
// instance owned by the plan, so benchmark binaries can report the measured
// analogue of the analytic formulas next to wall-clock service rates.
#ifndef STATESLICE_COMMON_COST_COUNTERS_H_
#define STATESLICE_COMMON_COST_COUNTERS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/common/thread_annotations.h"

namespace stateslice {

// Comparison categories matching the cost items of Eqs. 1-3.
//
// These are *logical* units: a probe is charged one comparison per stored
// tuple regardless of how the runtime executes it, so the figure benches
// reproduce the paper's analytic counts even when the hash-indexed probe
// path (src/operators/join_state.h) touches far fewer entries. The actual
// work of the indexed path is tracked separately in PhysCategory.
enum class CostCategory : int {
  kProbe = 0,    // value comparisons while probing join states
  kPurge = 1,    // timestamp comparisons during cross-purge
  kRoute = 2,    // router timestamp checks per joined tuple
  kFilter = 3,   // tuple-side selection predicate evaluations
  kUnion = 4,    // merge comparisons in the order-preserving union
  kSplit = 5,    // split-operator predicate evaluations
  kGate = 6,     // result-side σ' checks on joined tuples (Fig. 10)
  kCategoryCount = 7,
};

// Physical probe-execution counters: what the runtime *actually did*, as
// opposed to the paper-unit logical comparisons above. Kept on a separate
// axis (never mixed into Total()) so the fig11/17/18/19 cost-model numbers
// stay paper-faithful while bench_probe_index can report the real
// O(matches) behaviour of indexed probes.
enum class PhysCategory : int {
  kKeyLookup = 0,    // hash-bucket lookups performed by indexed probes
  kEntryVisit = 1,   // state entries actually examined while probing
  kIndexUpkeep = 2,  // index appends, stale-id prunes, and rebuild visits
  kPhysCategoryCount = 3,
};

// Additive counters shared by every operator of a plan. The parallel
// scheduler (src/runtime/parallel_scheduler.h) runs operators of one plan
// on several threads, so the per-category counts are relaxed atomics:
// charges are commutative sums with no ordering requirement, and the
// uncontended fetch_add is negligible next to the probe loops that
// produce the counts. Copies (RunStats snapshots) are plain value copies
// and may be torn only in the harmless sense of mixing adjacent charges.
class CostCounters {
 public:
  CostCounters() = default;

  CostCounters(const CostCounters& other) { CopyFrom(other); }
  CostCounters& operator=(const CostCounters& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  // Charges `n` comparisons to `category`. Safe from any thread.
  void Add(CostCategory category, uint64_t n) {
    counts_[static_cast<int>(category)].fetch_add(n,
                                                  std::memory_order_relaxed);
  }

  uint64_t Get(CostCategory category) const {
    return counts_[static_cast<int>(category)].load(
        std::memory_order_relaxed);
  }

  // Charges `n` units of physical probe work. Kept out of Total().
  void AddPhysical(PhysCategory category, uint64_t n) {
    phys_[static_cast<int>(category)].fetch_add(n,
                                                std::memory_order_relaxed);
  }

  uint64_t GetPhysical(PhysCategory category) const {
    return phys_[static_cast<int>(category)].load(std::memory_order_relaxed);
  }

  // Sum across all *logical* categories (the paper's cost-model total;
  // physical counters are excluded by design).
  uint64_t Total() const;

  // Sum across the physical categories.
  uint64_t PhysicalTotal() const;

  // Declares that no operator is concurrently charging this instance (the
  // plan is quiescent, or the counters are caller-local). Justify at each
  // call site; required by Reset.
  void AssertQuiescent() const STATESLICE_ASSERT_CAPABILITY(reset_role_) {}

  // Resets all categories (logical and physical) to zero. Unlike Add, a
  // reset racing concurrent charges loses them — callers must hold the
  // quiescence role (see AssertQuiescent).
  void Reset() STATESLICE_REQUIRES(reset_role_);

  // One-line summary like "probe=123 purge=4 ...".
  std::string DebugString() const;

  // Stable short name of a category (for table headers).
  static const char* Name(CostCategory category);
  static const char* Name(PhysCategory category);

 private:
  void CopyFrom(const CostCounters& other) {
    for (int i = 0; i < static_cast<int>(CostCategory::kCategoryCount); ++i) {
      counts_[i].store(other.counts_[i].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    }
    for (int i = 0; i < static_cast<int>(PhysCategory::kPhysCategoryCount);
         ++i) {
      phys_[i].store(other.phys_[i].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    }
  }

  std::atomic<uint64_t> counts_[static_cast<int>(
      CostCategory::kCategoryCount)] = {};
  std::atomic<uint64_t> phys_[static_cast<int>(
      PhysCategory::kPhysCategoryCount)] = {};
  // "No concurrent chargers" role gating Reset (copyable with the value).
  ThreadRole reset_role_;
};

}  // namespace stateslice

#endif  // STATESLICE_COMMON_COST_COUNTERS_H_
