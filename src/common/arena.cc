#include "src/common/arena.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"

namespace stateslice {
namespace {

// Chunks double from 4 KiB up to a cap; the cap keeps a pathological burst
// of spills from reserving unbounded slabs in one request.
constexpr size_t kFirstChunkBytes = 4096;
constexpr size_t kMaxChunkBytes = 1 << 20;

thread_local Arena* g_current_arena = nullptr;

}  // namespace

int Arena::ClassFor(size_t bytes) {
  size_t block = kMinBlockBytes;
  int cls = 0;
  while (block < bytes) {
    block <<= 1;
    ++cls;
  }
  SLICE_CHECK_LT(cls, kNumClasses);
  return cls;
}

void* Arena::AllocateFromChunk(size_t bytes) {
  if (chunks_.empty() || chunks_.back().size - chunks_.back().used < bytes) {
    size_t next = chunks_.empty() ? kFirstChunkBytes
                                  : std::min(chunks_.back().size * 2,
                                             kMaxChunkBytes);
    if (next < bytes) next = bytes;
    Chunk chunk;
    // Epoch chunk reservation: amortized across every block the chunk
    // will ever serve, and spills themselves are off the
    // <=4-constituent steady-state path.
    // lint: allow(hot-path-alloc) -- amortized epoch chunk reservation
    chunk.data = std::make_unique<char[]>(next);
    chunk.size = next;
    bytes_reserved_ += next;
    chunks_.push_back(std::move(chunk));
  }
  Chunk& open = chunks_.back();
  void* block = open.data.get() + open.used;
  open.used += bytes;
  return block;
}

void* Arena::Allocate(size_t bytes) {
  const int cls = ClassFor(bytes);
  const size_t block_bytes = kMinBlockBytes << cls;
  std::lock_guard<std::mutex> lock(mu_);
  ++total_allocations_;
  ++blocks_outstanding_;
  void* head = free_lists_[static_cast<size_t>(cls)];
  if (head != nullptr) {
    void* next = nullptr;
    std::memcpy(&next, head, sizeof(next));
    free_lists_[static_cast<size_t>(cls)] = next;
    return head;
  }
  return AllocateFromChunk(block_bytes);
}

void Arena::Deallocate(void* block, size_t bytes) {
  const int cls = ClassFor(bytes);
  std::lock_guard<std::mutex> lock(mu_);
  SLICE_CHECK_GT(blocks_outstanding_, 0u);
  --blocks_outstanding_;
  void* head = free_lists_[static_cast<size_t>(cls)];
  std::memcpy(block, &head, sizeof(head));
  free_lists_[static_cast<size_t>(cls)] = block;
}

size_t Arena::bytes_reserved() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_reserved_;
}

size_t Arena::blocks_outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_outstanding_;
}

uint64_t Arena::total_allocations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_allocations_;
}

Arena* CurrentArena() { return g_current_arena; }

ArenaScope::ArenaScope(Arena* arena) : previous_(g_current_arena) {
  g_current_arena = arena;
}

ArenaScope::~ArenaScope() { g_current_arena = previous_; }

}  // namespace stateslice
