// Fault-injection instrumentation, in the style of sync_point.h.
//
// Crash-recovery correctness (checkpoint → kill → restore → replay) can
// only be proven if tests can die *at* the failure-prone seams, not just
// between API calls. STATESLICE_FAULT_POINT(site) marks those seams —
// ingestion, ring-full backpressure, the middle of a checkpoint write,
// migration surgery, shard token handoff — with a stable site name.
//
// In normal builds the macro expands to nothing: zero overhead,
// byte-identical codegen (bench_checkpoint gates this against
// baseline.json). Under the STATESLICE_FAULT_TEST CMake option it routes
// to a test-owned FaultInjector; with no injector installed it is a null
// check and a fall-through, so ordinary tests still pass in a fault-test
// build.
//
// Crash model: the injector may throw from OnFaultPoint to simulate
// process death at the site — but only at sites reached on the *caller's*
// thread (Push/Checkpoint/surgery paths). Sites reached on runtime worker
// threads must only be counted (throwing through a worker's run loop is
// std::terminate); tests kill at caller-thread sites and use worker-site
// counts to steer scheduling.
#ifndef STATESLICE_COMMON_FAULT_POINT_H_
#define STATESLICE_COMMON_FAULT_POINT_H_

#if defined(STATESLICE_FAULT_TEST)

namespace stateslice::faulttest {

// Test-owned callback. Invoked from the instrumented thread at the
// instrumented site; `site` is a stable label (string literal).
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual void OnFaultPoint(const char* site) = 0;
};

// Installed injector, or nullptr (passthrough). Tests install before
// driving the engine and uninstall after quiescing it, so the pointer is
// stable for the lifetime of any instrumented operation.
FaultInjector* Injector();
void InstallInjector(FaultInjector* injector);

inline void ModelFaultPoint(const char* site) {
  if (FaultInjector* injector = Injector()) injector->OnFaultPoint(site);
}

}  // namespace stateslice::faulttest

#define STATESLICE_FAULT_POINT(site) \
  ::stateslice::faulttest::ModelFaultPoint(site)

#else  // !STATESLICE_FAULT_TEST

#define STATESLICE_FAULT_POINT(site) ((void)0)

#endif  // STATESLICE_FAULT_TEST

#endif  // STATESLICE_COMMON_FAULT_POINT_H_
