// Binary serialization primitives for engine checkpoints.
//
// StateWriter appends fixed-width little-endian scalars and
// length-prefixed byte strings to a growable buffer; StateReader is the
// bounds-checked inverse. Every Read returns false instead of crashing
// when the buffer runs out, so a torn or truncated checkpoint surfaces as
// a clean diagnostic at the call site rather than UB deep in a decode.
// Crc32 computes the reflected CRC-32 (IEEE 802.3 polynomial) in
// software; Engine::Checkpoint appends it as a trailing checksum over
// everything before it, which is how partial writes are detected.
//
// The encoding is deliberately dumb: no varints, no field tags, no
// alignment. The checkpoint format gets its versioning from a single
// format-version integer in the header (see engine.cc), and both ends of
// the wire are this codebase, so schema evolution happens by bumping that
// version — not by making the primitive layer clever.
#ifndef STATESLICE_COMMON_SERDE_H_
#define STATESLICE_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace stateslice {

// Appends little-endian fixed-width values to an owned byte buffer.
class StateWriter {
 public:
  void U8(uint8_t v) { data_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { AppendLe(&v, sizeof(v)); }
  void U64(uint64_t v) { AppendLe(&v, sizeof(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Double(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  // Length-prefixed byte string (u32 length + raw bytes).
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    data_.append(s.data(), s.size());
  }

  const std::string& data() const { return data_; }
  std::string Take() { return std::move(data_); }

 private:
  void AppendLe(const void* src, size_t n);

  std::string data_;
};

// Bounds-checked reader over an immutable byte buffer. Reads advance an
// offset; any read past the end returns false and leaves the output
// untouched. Once a read fails the reader stays failed (ok() == false) so
// callers can decode a whole section and check once.
class StateReader {
 public:
  explicit StateReader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* out) {
    if (!Require(1)) return false;
    *out = static_cast<uint8_t>(data_[offset_++]);
    return true;
  }
  bool U32(uint32_t* out) { return ReadLe(out, sizeof(*out)); }
  bool U64(uint64_t* out) { return ReadLe(out, sizeof(*out)); }
  bool I64(int64_t* out) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    *out = static_cast<int64_t>(bits);
    return true;
  }
  bool Double(double* out) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(out, &bits, sizeof(*out));
    return true;
  }
  bool Str(std::string* out) {
    uint32_t len;
    if (!U32(&len) || !Require(len)) return false;
    out->assign(data_.data() + offset_, len);
    offset_ += len;
    return true;
  }

  bool ok() const { return ok_; }
  size_t offset() const { return offset_; }
  size_t remaining() const { return data_.size() - offset_; }
  bool AtEnd() const { return offset_ == data_.size(); }

 private:
  bool Require(size_t n) {
    if (!ok_ || data_.size() - offset_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }
  bool ReadLe(void* dst, size_t n);

  std::string_view data_;
  size_t offset_ = 0;
  bool ok_ = true;
};

// Reflected CRC-32 (polynomial 0xEDB88320) over the given bytes.
uint32_t Crc32(std::string_view data);

}  // namespace stateslice

#endif  // STATESLICE_COMMON_SERDE_H_
