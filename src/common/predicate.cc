#include "src/common/predicate.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace stateslice {

Predicate::Predicate() : impl_(nullptr) {
  static const std::shared_ptr<const Impl> kTrue = [] {
    auto impl = std::make_shared<Impl>();
    impl->fn = [](const Tuple&) { return true; };
    impl->selectivity = 1.0;
    impl->is_true = true;
    impl->description = "true";
    return impl;
  }();
  impl_ = kTrue;
}

Predicate Predicate::GreaterThan(double threshold) {
  auto impl = std::make_shared<Impl>();
  impl->fn = [threshold](const Tuple& t) { return t.value > threshold; };
  impl->selectivity = std::clamp(1.0 - threshold, 0.0, 1.0);
  std::ostringstream d;
  d << "(value > " << threshold << ")";
  impl->description = d.str();
  return Predicate(std::move(impl));
}

Predicate Predicate::LessThan(double threshold) {
  auto impl = std::make_shared<Impl>();
  impl->fn = [threshold](const Tuple& t) { return t.value < threshold; };
  impl->selectivity = std::clamp(threshold, 0.0, 1.0);
  std::ostringstream d;
  d << "(value < " << threshold << ")";
  impl->description = d.str();
  return Predicate(std::move(impl));
}

Predicate Predicate::Range(double lo, double hi) {
  auto impl = std::make_shared<Impl>();
  impl->fn = [lo, hi](const Tuple& t) { return t.value >= lo && t.value < hi; };
  impl->selectivity = std::clamp(hi - lo, 0.0, 1.0);
  std::ostringstream d;
  d << "(" << lo << " <= value < " << hi << ")";
  impl->description = d.str();
  return Predicate(std::move(impl));
}

Predicate Predicate::WithSelectivity(double selectivity) {
  return LessThan(std::clamp(selectivity, 0.0, 1.0));
}

Predicate Predicate::Custom(std::function<bool(const Tuple&)> fn,
                            double selectivity, std::string description) {
  auto impl = std::make_shared<Impl>();
  impl->fn = std::move(fn);
  impl->selectivity = std::clamp(selectivity, 0.0, 1.0);
  impl->description = std::move(description);
  return Predicate(std::move(impl));
}

Predicate Predicate::And(const Predicate& x, const Predicate& y) {
  if (x.IsTrue()) return y;
  if (y.IsTrue()) return x;
  auto impl = std::make_shared<Impl>();
  impl->fn = [x, y](const Tuple& t) { return x.Eval(t) && y.Eval(t); };
  impl->selectivity = std::clamp(x.selectivity() * y.selectivity(), 0.0, 1.0);
  impl->description = "(" + x.description() + " AND " + y.description() + ")";
  return Predicate(std::move(impl));
}

Predicate Predicate::Or(const Predicate& x, const Predicate& y) {
  if (x.IsTrue()) return x;
  if (y.IsTrue()) return y;
  auto impl = std::make_shared<Impl>();
  impl->fn = [x, y](const Tuple& t) { return x.Eval(t) || y.Eval(t); };
  // Inclusion-exclusion under independence.
  const double sx = x.selectivity();
  const double sy = y.selectivity();
  impl->selectivity = std::clamp(sx + sy - sx * sy, 0.0, 1.0);
  impl->description = "(" + x.description() + " OR " + y.description() + ")";
  return Predicate(std::move(impl));
}

Predicate Predicate::Not(const Predicate& x) {
  auto impl = std::make_shared<Impl>();
  impl->fn = [x](const Tuple& t) { return !x.Eval(t); };
  impl->selectivity = std::clamp(1.0 - x.selectivity(), 0.0, 1.0);
  impl->description = "(NOT " + x.description() + ")";
  return Predicate(std::move(impl));
}

Predicate Predicate::AnyOf(const std::vector<Predicate>& preds) {
  if (preds.empty()) {
    return Custom([](const Tuple&) { return false; }, 0.0, "false");
  }
  if (preds.size() == 1) return preds.front();
  double fail = 1.0;
  std::string description = "(";
  for (size_t i = 0; i < preds.size(); ++i) {
    if (preds[i].IsTrue()) return preds[i];
    fail *= 1.0 - preds[i].selectivity();
    if (i > 0) description += " OR ";
    description += preds[i].description();
  }
  description += ")";
  auto impl = std::make_shared<Impl>();
  impl->disjuncts = preds;
  impl->fn = [preds](const Tuple& t) {
    for (const Predicate& p : preds) {
      if (p.Eval(t)) return true;
    }
    return false;
  };
  impl->selectivity = std::clamp(1.0 - fail, 0.0, 1.0);
  impl->description = std::move(description);
  return Predicate(std::move(impl));
}

bool Predicate::EvalCounted(const Tuple& t, uint64_t* evaluations) const {
  if (impl_->disjuncts.empty()) {
    *evaluations = 1;
    return impl_->fn(t);
  }
  uint64_t count = 0;
  for (const Predicate& p : impl_->disjuncts) {
    ++count;
    if (p.Eval(t)) {
      *evaluations = count;
      return true;
    }
  }
  *evaluations = count;
  return false;
}

}  // namespace stateslice
