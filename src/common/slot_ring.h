// SlotRing: a deque-like ring buffer with *stable monotone slot ids*.
//
// Entries are held in arrival order. Every entry is addressed by a signed
// 64-bit slot id that never changes for the lifetime of the entry: ids grow
// by one per push_back and shrink below the current head per push_front, so
// the live id range is always the contiguous half-open interval
// [first_id(), end_id()). Popping the front advances first_id() without
// disturbing any other id.
//
// This is the storage layer of the hash-indexed join states
// (src/operators/join_state.h): the per-key index stores slot ids, and
// because purge only ever removes the oldest entries, an indexed id is live
// iff id >= first_id() — a single comparison, no per-purge index
// maintenance. The ring grows by doubling (amortized O(1) push) and indexes
// slots with a power-of-two mask.
#ifndef STATESLICE_COMMON_SLOT_RING_H_
#define STATESLICE_COMMON_SLOT_RING_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace stateslice {

template <typename T>
class SlotRing {
 public:
  SlotRing() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Live ids form [first_id(), end_id()); both advance monotonically except
  // that push_front extends the range downward (migration prepends).
  int64_t first_id() const { return head_id_; }
  int64_t end_id() const { return head_id_ + static_cast<int64_t>(size_); }

  // Entry with slot id `id`; must be live.
  const T& at_id(int64_t id) const {
    SLICE_CHECK_GE(id, first_id());
    SLICE_CHECK_LT(id, end_id());
    return buf_[Pos(id)];
  }
  T& at_id(int64_t id) {
    return const_cast<T&>(std::as_const(*this).at_id(id));
  }

  const T& front() const { return at_id(first_id()); }
  const T& back() const { return at_id(end_id() - 1); }

  // Applies fn(slot_id, entry) to every live entry, oldest first. The hot
  // iteration path: no per-entry bounds checks (the loop is bounded by
  // construction), unlike repeated at_id() calls.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    size_t pos = head_pos_;
    for (size_t i = 0; i < size_; ++i) {
      fn(head_id_ + static_cast<int64_t>(i), buf_[pos]);
      pos = (pos + 1) & mask_;
    }
  }

  // Appends at the tail; returns the new entry's slot id (== old end_id()).
  int64_t push_back(T value) {
    if (size_ == buf_.size()) Grow();
    const int64_t id = end_id();
    buf_[Pos(id)] = std::move(value);
    ++size_;
    return id;
  }

  // Prepends before the head; returns the new entry's slot id
  // (== old first_id() - 1). Used by slice-merge migration.
  int64_t push_front(T value) {
    if (size_ == buf_.size()) Grow();
    const int64_t id = head_id_ - 1;
    head_pos_ = (head_pos_ + buf_.size() - 1) & mask_;
    head_id_ = id;
    buf_[head_pos_] = std::move(value);
    ++size_;
    return id;
  }

  // Removes the oldest entry (id first_id()). Ids are unique only within
  // the live range [first_id, end_id): a later push_front re-issues the
  // popped id, so holders of retired ids must treat id < first_id() as
  // dead *before* any push_front (BasicJoinState rebuilds its index on
  // PrependOlder for exactly this reason).
  void pop_front() {
    SLICE_CHECK_GT(size_, size_t{0});
    if constexpr (!std::is_trivially_destructible_v<T>) {
      buf_[head_pos_] = T{};  // release heap-owned payload promptly
    }
    head_pos_ = (head_pos_ + 1) & mask_;
    ++head_id_;
    --size_;
  }

  void clear() {
    if constexpr (!std::is_trivially_destructible_v<T>) {
      for (int64_t id = first_id(); id < end_id(); ++id) buf_[Pos(id)] = T{};
    }
    head_id_ = end_id();  // ids stay monotone across a clear
    head_pos_ = 0;
    size_ = 0;
  }

 private:
  size_t Pos(int64_t id) const {
    return (head_pos_ + static_cast<size_t>(id - head_id_)) & mask_;
  }

  void Grow() {
    const size_t new_cap = buf_.empty() ? kInitialCapacity : buf_.size() * 2;
    std::vector<T> grown(new_cap);
    for (size_t i = 0; i < size_; ++i) {
      grown[i] = std::move(buf_[(head_pos_ + i) & mask_]);
    }
    buf_ = std::move(grown);
    head_pos_ = 0;
    mask_ = new_cap - 1;
  }

  static constexpr size_t kInitialCapacity = 16;  // power of two

  std::vector<T> buf_;
  size_t mask_ = 0;      // buf_.size() - 1 (power-of-two capacity)
  size_t head_pos_ = 0;  // physical slot of the oldest entry
  size_t size_ = 0;
  int64_t head_id_ = 0;  // slot id of the oldest entry
};

}  // namespace stateslice

#endif  // STATESLICE_COMMON_SLOT_RING_H_
