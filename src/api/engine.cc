#include "src/api/engine.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <utility>

#include "src/common/check.h"
#include "src/common/fault_point.h"
#include "src/query/parser.h"

namespace stateslice {
namespace {

// Folds `from` into `into` category by category (CostCounters are atomic
// sums, not directly addable).
void AddCost(const CostCounters& from, CostCounters* into) {
  for (int c = 0; c < static_cast<int>(CostCategory::kCategoryCount); ++c) {
    const auto category = static_cast<CostCategory>(c);
    into->Add(category, from.Get(category));
  }
}

void MergeMultiset(const std::map<std::string, int>& from,
                   std::map<std::string, int>* into) {
  for (const auto& [key, count] : from) (*into)[key] += count;
}

}  // namespace

Engine::Engine() : Engine(Options{}) {}

Engine::Engine(Options options)
    : options_(std::move(options)),
      created_(std::chrono::steady_clock::now()) {}

Engine::~Engine() {
  if (par_scheduler_ != nullptr) PauseParallel();
  if (shard_scheduler_ != nullptr) PauseSharded();
}

// ------------------------------------------------------------ query churn

Engine::QueryRecord* Engine::FindRecord(uint64_t token) {
  for (QueryRecord& r : records_) {
    if (r.token == token) return &r;
  }
  return nullptr;
}

const Engine::QueryRecord* Engine::FindRecord(uint64_t token) const {
  for (const QueryRecord& r : records_) {
    if (r.token == token) return &r;
  }
  return nullptr;
}

size_t Engine::active_queries() const { return active_count_; }

void Engine::RecomputeMaxStreams() {
  int n = 0;
  for (const QueryRecord& r : records_) {
    if (r.active) n = std::max(n, r.query.num_streams());
  }
  max_streams_ = n;
}

bool Engine::ValidateNewQuery(const ContinuousQuery& query,
                              std::string* error) const {
  if (finished_) {
    *error = "engine already finished";
    return false;
  }
  if (poisoned_) {
    *error = "engine poisoned by a failed Restore";
    return false;
  }
  if (query.window.extent <= 0) {
    *error = "window must be positive";
    return false;
  }
  if (options_.mode == ExecutionMode::kSharded) {
    // Key partitioning only covers predicates that pair equal keys (so a
    // key's matches all live in one shard) over time windows (count
    // windows depend on the global arrival sequence).
    if (options_.condition.kind != JoinCondition::Kind::kEquiKey) {
      *error = "sharded execution requires the equi-key join condition";
      return false;
    }
    if (query.window.kind != WindowKind::kTime) {
      *error = "sharded execution requires time-based windows";
      return false;
    }
  }
  if (active_queries() >= static_cast<size_t>(kMaxQueries)) {
    // Lineage tracks one bit per query; the stream count of each query
    // does not consume capacity.
    *error = "query capacity reached";
    return false;
  }
  const int n = query.num_streams();
  if (n < 2) {
    // A non-empty stream_names list must name every stream (a 1-entry
    // list is a malformed spec, not a binary default).
    *error = "a query needs at least two streams";
    return false;
  }
  if (n > kMaxStreams) {
    *error = "query exceeds the " + std::to_string(kMaxStreams) +
             "-stream limit";
    return false;
  }
  if (!query.join_anchors.empty()) {
    if (static_cast<int>(query.join_anchors.size()) != n - 1) {
      *error = "join_anchors must have one entry per stream after the first";
      return false;
    }
    for (int k = 0; k < n - 1; ++k) {
      if (query.join_anchors[k] < 0 || query.join_anchors[k] > k) {
        *error = "join anchor must reference an earlier stream";
        return false;
      }
    }
  }
  if (query.extra_selections.size() >
      static_cast<size_t>(n > 2 ? n - 2 : 0)) {
    *error = "more selections than streams beyond the binary pair";
    return false;
  }
  if (n > 2) {
    if (options_.strategy != SharingStrategy::kStateSlice) {
      *error = "multi-way queries require the state-slice strategy";
      return false;
    }
    if (options_.use_lineage) {
      *error = "lineage mode is binary-only";
      return false;
    }
    if (query.window.kind != WindowKind::kTime) {
      *error = "multi-way queries require time-based windows";
      return false;
    }
  }
  for (const QueryRecord& r : records_) {
    if (!r.active) continue;
    if (r.query.window.kind != query.window.kind) {
      *error = "mixed time- and count-based windows are unsupported";
      return false;
    }
    break;
  }
  // Join-tree-prefix compatibility: streams are positional, so the shared
  // tree serves the new query iff its anchors agree with every active
  // query on the common prefix.
  for (const QueryRecord& r : records_) {
    if (!r.active) continue;
    const int shared = std::min(n, r.query.num_streams()) - 1;
    for (int k = 0; k < shared; ++k) {
      if (query.anchor(k) != r.query.anchor(k)) {
        *error = "join-tree prefix is incompatible with registered queries";
        return false;
      }
    }
  }
  if ((options_.strategy == SharingStrategy::kStateSlice ||
       options_.strategy == SharingStrategy::kPushDown) &&
      n == 2 && !query.selection_b.IsTrue()) {
    // Binary chains push σ down on stream 0 only. Multi-way terminals
    // gate every stream's σ at their tree level instead, so the
    // restriction applies to the binary (level-0) queries alone.
    *error = "B-side selections are unsupported by this sharing strategy";
    return false;
  }
  if (options_.strategy == SharingStrategy::kPushDown &&
      !query.selection_a.IsTrue()) {
    for (const QueryRecord& r : records_) {
      if (!r.active || r.query.selection_a.IsTrue()) continue;
      if (r.query.selection_a.description() !=
          query.selection_a.description()) {
        *error = "push-down sharing requires one shared selection predicate";
        return false;
      }
    }
  }
  return true;
}

QueryHandle Engine::RegisterQuery(const ContinuousQuery& query) {
  std::string error;
  if (!ValidateNewQuery(query, &error)) {
    last_error_ = std::move(error);
    return {};
  }
  QueryRecord rec;
  rec.token = next_token_++;
  rec.query = query;
  rec.query.id = 0;  // dense id assigned at (re)build / migration
  if (rec.query.name.empty()) {
    rec.query.name = "Q" + std::to_string(rec.token);
  }
  const uint64_t token = rec.token;

  // Until the first arrival there is nothing to cut off — whether or not
  // a plan was already built lazily (e.g. by PlanDot).
  const bool saw_input = (input_tuples_ + dropped_tuples_) > 0;
  const TimePoint cutoff = saw_input ? Cutoff() : 0;
  rec.results_from = cutoff;

  if (!running()) {
    // Idle (or lazy pre-build): the query joins the next plan. Tuples
    // seen so far were either dropped or belong to a torn-down plan, so
    // the query observes arrivals from here on.
    records_.push_back(std::move(rec));
    ++active_count_;
    RecomputeMaxStreams();
    watermark_ = std::max(watermark_, cutoff);
    return {token};
  }

  QuiesceForSurgery();
  STATESLICE_FAULT_POINT("engine.migrate_add");
  if (CanMigrateAdd(rec.query)) {
    // In-place registration (Section 5.3): the shared slice states keep
    // serving the existing queries; a ResultTimeGate gives the newcomer
    // fresh-start semantics.
    ChainMigrator migrator(&built_);
    rec.query.id =
        migrator.AddQuery(rec.query.window, rec.query.name, cutoff);
    ValidateBuiltChain(built_);
    ++migrations_;
    records_.push_back(std::move(rec));
  } else {
    // Drain-rebuild: flush and retire the current plan, then stand up a
    // fresh shared plan over the updated query set. Works for every
    // strategy; operator state resets at `cutoff`.
    TearDownPlan();
    records_.push_back(std::move(rec));
    if (cutoff > 0) rebuild_cutoffs_.push_back(cutoff);
    ++rebuilds_;
    BuildPlan();
  }
  ++active_count_;
  RecomputeMaxStreams();
  // Registration advances the session watermark to the cutoff: arrivals
  // after the registration cannot tie with arrivals before it, so both
  // churn paths deliver exactly the post-cutoff join to the newcomer.
  watermark_ = std::max(watermark_, cutoff);
  ResumeAfterSurgery();
  return {token};
}

QueryHandle Engine::RegisterQuery(std::string_view cql) {
  const ParseResult parsed = ParseQuery(std::string(cql));
  if (!parsed.ok) {
    last_error_ = "parse error: " + parsed.error;
    return {};
  }
  return RegisterQuery(parsed.query);
}

bool Engine::UnregisterQuery(QueryHandle handle) {
  if (poisoned_) {
    last_error_ = "engine poisoned by a failed Restore";
    return false;
  }
  QueryRecord* rec = FindRecord(handle.token);
  if (rec == nullptr || !rec->active) {
    last_error_ = "unknown or inactive query handle";
    return false;
  }
  if (!running()) {
    rec->active = false;
    --active_count_;
  } else {
    QuiesceForSurgery();
    STATESLICE_FAULT_POINT("engine.migrate_remove");
    if (active_queries() == 1) {
      // Last query out: flush and idle the engine.
      TearDownPlan();
      rec->active = false;
    } else if (CanMigrateRemove()) {
      const int qid = rec->query.id;
      rec->delivered += built_.sinks[qid]->result_count();
      if (built_.collectors[qid] != nullptr) {
        MergeMultiset(built_.collectors[qid]->ResultMultiset(),
                      &rec->collected);
      }
      ChainMigrator migrator(&built_);
      migrator.RemoveQuery(qid);
      ValidateBuiltChain(built_);
      ++migrations_;
      rec->active = false;
    } else {
      TearDownPlan();  // harvests every query, including this one
      rec->active = false;
      if ((input_tuples_ + dropped_tuples_) > 0) {
        const TimePoint cutoff = Cutoff();
        rebuild_cutoffs_.push_back(cutoff);
        // The rebuild advances the watermark so post-rebuild arrivals
        // cannot tie with pre-rebuild state (see RegisterQuery).
        watermark_ = cutoff;
      }
      ++rebuilds_;
      BuildPlan();
    }
    --active_count_;
    ResumeAfterSurgery();
  }
  RecomputeMaxStreams();
  // The query's callback sinks died with its output path.
  subscriptions_.erase(
      std::remove_if(subscriptions_.begin(), subscriptions_.end(),
                     [&](const SubscriptionRecord& s) {
                       return s.query_token == handle.token;
                     }),
      subscriptions_.end());
  return true;
}

bool Engine::CanMigrateAdd(const ContinuousQuery& query) const {
  if (options_.strategy != SharingStrategy::kStateSlice ||
      options_.use_lineage) {
    return false;
  }
  // Sharded churn always drains and rebuilds: ChainMigrator would have to
  // mutate every replica plus the merge plan in lock-step.
  if (options_.mode == ExecutionMode::kSharded) return false;
  // In-place migration is binary-chain-only: a multi-way newcomer, or any
  // running multi-level tree, rebuilds (cutoff recorded in
  // rebuild_cutoffs).
  if (query.num_streams() > 2 || built_.num_levels != 1) {
    return false;
  }
  if (!query.Unfiltered() || query.window.kind != WindowKind::kTime) {
    return false;
  }
  for (const QueryRecord& r : records_) {
    if (r.active && !r.query.Unfiltered()) return false;
  }
  if (built_.slices.empty() ||
      built_.queries.size() >= static_cast<size_t>(kMaxQueries)) {
    return false;
  }
  // The window must land inside the chain span, and if it splits a slice,
  // that slice must be router-free (merged slices re-split via rebuild).
  for (const BuiltSlice& slice : built_.slices) {
    const SliceRange r = slice.join->range();
    if (r.kind != WindowKind::kTime) return false;
    if (query.window.extent == r.end) return true;
    if (query.window.extent > r.start && query.window.extent < r.end) {
      return slice.result_producer == static_cast<Operator*>(slice.join);
    }
  }
  return false;  // window exceeds the chain span
}

bool Engine::CanMigrateRemove() const {
  if (options_.strategy != SharingStrategy::kStateSlice ||
      options_.use_lineage || built_.slices.empty() ||
      built_.num_levels != 1) {
    return false;
  }
  if (options_.mode == ExecutionMode::kSharded) return false;  // see Add
  for (const QueryRecord& r : records_) {
    if (r.active && !r.query.Unfiltered()) return false;
  }
  return true;
}

// -------------------------------------------------------------- lifecycle

void Engine::BuildPlan() {
  SLICE_CHECK(!running());
  std::vector<ContinuousQuery> queries;
  for (QueryRecord& r : records_) {
    if (!r.active) continue;
    r.query.id = static_cast<int>(queries.size());
    queries.push_back(r.query);
  }
  SLICE_CHECK(!queries.empty());

  BuildOptions bopt;
  bopt.condition = options_.condition;
  bopt.collect_results = options_.collect_results;
  bopt.use_lineage = options_.use_lineage &&
                     options_.strategy == SharingStrategy::kStateSlice;
  // Resolve the state-slice tree once; sharded mode builds one plan per
  // replica from the same tree. The tree builders yield a single-level
  // tree for binary workloads, which BuildStateSlicePlan wires exactly as
  // the historical chain.
  JoinTreePlan tree;
  if (options_.strategy == SharingStrategy::kStateSlice) {
    tree = options_.objective == ChainObjective::kMemOpt
               ? BuildMemOptTree(queries)
               : BuildCpuOptTree(queries, options_.cost_params);
  }
  const auto build_one = [&](const BuildOptions& opt) -> BuiltPlan {
    switch (options_.strategy) {
      case SharingStrategy::kStateSlice:
        return BuildStateSlicePlan(queries, tree, opt);
      case SharingStrategy::kPullUp:
        return BuildPullUpPlan(queries, opt);
      case SharingStrategy::kPushDown:
        return BuildPushDownPlan(queries, opt);
      case SharingStrategy::kUnshared:
        return BuildUnsharedPlans(queries, opt);
    }
    SLICE_CHECK(false);  // unreachable: exhaustive switch
    return BuiltPlan{};
  };
  if (options_.mode == ExecutionMode::kSharded) {
    // Key-partitioned replicas; the merge plan carries the authoritative
    // sinks (and the CollectingSinks, when enabled), so replicas skip
    // result collection.
    BuildOptions shard_opt = bopt;
    shard_opt.collect_results = false;
    const int shards = ShardCount();
    last_shard_count_ = shards;
    sharded_ = std::make_unique<ShardedPlanSet>(BuildShardedPlanSet(
        shards, queries, bopt, [&] { return build_one(shard_opt); }));
  } else {
    built_ = build_one(bopt);
    if (options_.mode == ExecutionMode::kDeterministic) {
      // run_length == 0 keeps the paper-faithful default quantum of 8.
      det_scheduler_ = std::make_unique<RoundRobinScheduler>(
          built_.plan.get(),
          options_.run_length > 0 ? options_.run_length : 8);
    }
  }
  for (SubscriptionRecord& sub : subscriptions_) {
    const QueryRecord* rec = FindRecord(sub.query_token);
    if (rec != nullptr && rec->active) WireSubscription(&sub);
  }
  if (options_.mode == ExecutionMode::kParallel && !finished_) {
    StartParallel();
  }
  if (options_.mode == ExecutionMode::kSharded && !finished_) {
    StartSharded();
  }
}

void Engine::EnsureBuilt() {
  // Idle engine: no plan, hence no scheduler and no worker threads — the
  // (single) caller thread trivially has the engine to itself.
  surgery_cap_.Assert();
  if (!running() && !finished_ && active_queries() > 0) BuildPlan();
}

void Engine::HarvestSinks() {
  // In sharded mode the authoritative sinks live on the merge plan.
  BuiltPlan& rp = result_plan();
  for (QueryRecord& r : records_) {
    if (!r.active) continue;
    const int qid = r.query.id;
    if (rp.sinks[qid] != nullptr) {
      r.delivered += rp.sinks[qid]->result_count();
    }
    if (qid < static_cast<int>(rp.collectors.size()) &&
        rp.collectors[qid] != nullptr) {
      MergeMultiset(rp.collectors[qid]->ResultMultiset(), &r.collected);
    }
  }
}

void Engine::FoldPlanCost() {
  if (sharded_ != nullptr) {
    for (const BuiltPlan& shard : sharded_->shards) {
      AddCost(shard.plan->cost_counters(), &cost_accum_);
    }
    AddCost(sharded_->merge.plan->cost_counters(), &cost_accum_);
    return;
  }
  AddCost(built_.plan->cost_counters(), &cost_accum_);
}

void Engine::TearDownPlan() {
  SLICE_CHECK(running());
  if (par_scheduler_ != nullptr) PauseParallel();
  if (sharded_ != nullptr) {
    PauseSharded();  // no-op if already paused
    // Flush each replica: drain, Finish (emits the kMaxTime punctuations
    // the merge unions need to release everything), drain again, then
    // relay the exit-tap tails into the merge plan.
    size_t state_tuples = 0;
    size_t queue_events = 0;
    const int nq = sharded_->num_queries();
    for (int s = 0; s < sharded_->num_shards(); ++s) {
      BuiltPlan& shard = sharded_->shards[s];
      RoundRobinScheduler drain(shard.plan.get());
      drain.RunUntilQuiescent();
      state_tuples += shard.plan->TotalStateSize();
      queue_events += shard.plan->TotalQueueSize();
      shard.plan->FinishAll();
      drain.RunUntilQuiescent();
      events_accum_ += drain.total_processed();
      EventRun relay;
      for (int q = 0; q < nq; ++q) {
        while (sharded_->exits[s][q]->DrainRun(&relay, 256) > 0) {
          sharded_->merge_entries[s][q]->PushRun(&relay);
        }
      }
    }
    RoundRobinScheduler mdrain(sharded_->merge.plan.get());
    mdrain.RunUntilQuiescent();
    memory_samples_.push_back(MemorySample{
        .time = watermark_,
        .state_tuples = state_tuples + sharded_->merge.plan->TotalStateSize(),
        .queue_events = queue_events + sharded_->merge.plan->TotalQueueSize(),
    });
    sharded_->merge.plan->FinishAll();
    mdrain.RunUntilQuiescent();
    events_accum_ += mdrain.total_processed();
    HarvestSinks();
    FoldPlanCost();
    sharded_.reset();
    for (SubscriptionRecord& sub : subscriptions_) sub.sink = nullptr;
    return;
  }
  RoundRobinScheduler drain(built_.plan.get());
  drain.RunUntilQuiescent();
  memory_samples_.push_back(MemorySample{
      .time = watermark_,
      .state_tuples = built_.plan->TotalStateSize(),
      .queue_events = built_.plan->TotalQueueSize(),
  });
  // Flush end-of-stream punctuations so order-preserving unions release
  // every held result before the plan goes away.
  built_.plan->FinishAll();
  drain.RunUntilQuiescent();
  events_accum_ += drain.total_processed();
  if (det_scheduler_ != nullptr) {
    events_accum_ += det_scheduler_->total_processed();
    det_scheduler_.reset();
  }
  HarvestSinks();
  FoldPlanCost();
  built_ = BuiltPlan{};
  for (SubscriptionRecord& sub : subscriptions_) sub.sink = nullptr;
}

void Engine::StartParallel() {
  SLICE_CHECK(running());
  SLICE_CHECK(par_scheduler_ == nullptr);
  ParallelSchedulerOptions popt;
  const unsigned hw = std::thread::hardware_concurrency();  // may be 0
  popt.num_workers = options_.worker_threads > 0
                         ? options_.worker_threads
                         : static_cast<int>(hw > 1 ? hw - 1 : 1);
  popt.edge_capacity = options_.parallel_edge_capacity;
  if (options_.run_length > 0) popt.quantum = options_.run_length;
  popt.finish_at_end = false;  // the engine flushes explicitly at teardown
  par_scheduler_ =
      std::make_unique<ParallelScheduler>(built_.plan.get(), popt);
  par_scheduler_->Start();
  last_parallel_stages_ = par_scheduler_->num_stages();
}

void Engine::PauseParallel() {
  if (par_scheduler_ == nullptr) return;
  par_scheduler_->FinishInput();
  par_scheduler_->Join();
  // Hand the segment's unreported progress to Poll before the scheduler
  // (and its counter) goes away.
  poll_pending_ +=
      par_scheduler_->total_processed() - poll_segment_reported_;
  poll_segment_reported_ = 0;
  events_accum_ += par_scheduler_->total_processed();
  parallel_edge_events_accum_ += par_scheduler_->edges_total_pushed();
  parallel_edge_hwm_ =
      std::max(parallel_edge_hwm_, par_scheduler_->edges_high_water_mark());
  // Occupancy is a per-segment ratio, not a sum: keep the latest segment's
  // fractions (benches pause exactly once, after the measured feed).
  parallel_stage_busy_ = par_scheduler_->stage_busy_fractions();
  par_scheduler_.reset();
}

int Engine::ShardCount() const {
  if (options_.shard_count > 0) return options_.shard_count;
  if (options_.worker_threads > 0) return options_.worker_threads;
  const unsigned hw = std::thread::hardware_concurrency();  // may be 0
  return static_cast<int>(hw > 1 ? hw - 1 : 1);
}

void Engine::StartSharded() {
  SLICE_CHECK(sharded_ != nullptr);
  SLICE_CHECK(shard_scheduler_ == nullptr);
  ShardedSchedulerOptions sopt;
  sopt.ring_capacity = options_.parallel_edge_capacity;
  if (options_.run_length > 0) sopt.quantum = options_.run_length;
  shard_scheduler_ =
      std::make_unique<ShardedScheduler>(sharded_.get(), sopt);
  shard_scheduler_->Start();
}

void Engine::PauseSharded() {
  if (shard_scheduler_ == nullptr) return;
  shard_scheduler_->FinishInput();
  shard_scheduler_->Join();
  poll_pending_ +=
      shard_scheduler_->total_processed() - poll_segment_reported_;
  poll_segment_reported_ = 0;
  events_accum_ += shard_scheduler_->total_processed();
  parallel_edge_events_accum_ += shard_scheduler_->edges_total_pushed();
  parallel_edge_hwm_ = std::max(parallel_edge_hwm_,
                                shard_scheduler_->edges_high_water_mark());
  shard_steals_accum_ += shard_scheduler_->steals();
  shard_spilled_accum_ += shard_scheduler_->spilled_runs();
  shard_scheduler_.reset();
}

void Engine::QuiesceForSurgery() {
  if (par_scheduler_ != nullptr) {
    PauseParallel();
  } else if (shard_scheduler_ != nullptr) {
    PauseSharded();
  } else if (det_scheduler_ != nullptr) {
    det_scheduler_->RunUntilQuiescent();
  }
}

void Engine::ResumeAfterSurgery() {
  if (running() && !finished_ &&
      options_.mode == ExecutionMode::kParallel &&
      par_scheduler_ == nullptr) {
    StartParallel();
  }
  if (running() && !finished_ &&
      options_.mode == ExecutionMode::kSharded &&
      shard_scheduler_ == nullptr) {
    StartSharded();
  }
}

// --------------------------------------------------------------- ingestion

void Engine::SampleMemory() {
  memory_samples_.push_back(MemorySample{
      .time = next_sample_,
      .state_tuples = built_.plan->TotalStateSize(),
      .queue_events = built_.plan->TotalQueueSize(),
  });
}

void Engine::Push(StreamId stream, const Tuple& tuple) {
  Push(stream, Tuple(tuple));
}

void Engine::RejectPush(StreamId stream, uint64_t count,
                        std::string reason) {
  rejected_tuples_ += count;
  if (stream >= 0 && stream < static_cast<StreamId>(kMaxStreams)) {
    rejected_by_stream_[stream] += count;
  }
  last_error_ = std::move(reason);
}

void Engine::Push(StreamId stream, Tuple&& tuple) {
  SLICE_CHECK(!finished_);
  STATESLICE_FAULT_POINT("engine.push");
  if (poisoned_) {
    RejectPush(stream, 1, "push rejected: engine poisoned by failed Restore");
    return;
  }
  if (stream < 0) {
    RejectPush(stream, 1,
               "push rejected: negative stream id " + std::to_string(stream));
    return;
  }
  if (std::isnan(tuple.value)) {
    RejectPush(stream, 1,
               "push rejected: NaN value on stream " + std::to_string(stream));
    return;
  }
  // The paper's Section 2 assumption: globally ordered arrivals. Sentinel
  // times are reserved (kMinTime parks restored union buffers, kMaxTime is
  // the end-of-stream punctuation).
  if (tuple.timestamp <= kMinTime || tuple.timestamp >= kMaxTime ||
      tuple.timestamp < watermark_) {
    RejectPush(stream, 1,
               "push rejected: out-of-order or out-of-range timestamp " +
                   std::to_string(tuple.timestamp) + " on stream " +
                   std::to_string(stream) + " (watermark " +
                   std::to_string(watermark_) + ")");
    return;
  }
  tuple.side = stream;
  if (active_queries() == 0) {
    // Well-formed arrival with nobody registered: a drop, not a reject.
    ++dropped_tuples_;
    watermark_ = tuple.timestamp;
    return;
  }
  if (stream >= max_streams_) {
    // The arrival is real (watermark advances) but no active query reads
    // this stream id, so its payload is unreadable.
    RejectPush(stream, 1,
               "push rejected: stream " + std::to_string(stream) +
                   " is not read by any active query");
    watermark_ = tuple.timestamp;
    return;
  }
  EnsureBuilt();
  if (options_.mode == ExecutionMode::kDeterministic) {
    // Deterministic mode: no worker threads exist, so the caller thread is
    // trivially exclusive (memory sampling touches guarded accumulators).
    surgery_cap_.Assert();
    while (tuple.timestamp >= next_sample_) {
      SampleMemory();
      next_sample_ += options_.sample_interval;
    }
  }
  watermark_ = tuple.timestamp;
  ++input_tuples_;
  if (par_scheduler_ != nullptr) {
    par_scheduler_->PushEntry(built_.entry, std::move(tuple));
  } else if (shard_scheduler_ != nullptr) {
    shard_scheduler_->PushEntry(Event(std::move(tuple)));
  } else {
    built_.entry->Push(std::move(tuple));
    if (options_.auto_drain && det_scheduler_ != nullptr) {
      det_scheduler_->RunUntilQuiescent();
    }
  }
}

void Engine::PushBatch(StreamId stream, std::span<const Tuple> tuples) {
  SLICE_CHECK(!finished_);
  STATESLICE_FAULT_POINT("engine.push_batch");
  if (tuples.empty()) return;
  if (poisoned_) {
    RejectPush(stream, tuples.size(),
               "batch rejected: engine poisoned by failed Restore");
    return;
  }
  if (stream < 0) {
    RejectPush(stream, tuples.size(),
               "batch rejected: negative stream id " +
                   std::to_string(stream));
    return;
  }
  // Validate the whole batch up front (well-formed values, ordered within
  // the batch, first at or beyond the session watermark) so a rejection
  // never leaves a half-ingested batch behind: the batch bounces as a
  // unit, naming the first offending index.
  TimePoint prev = watermark_;
  for (size_t i = 0; i < tuples.size(); ++i) {
    const Tuple& t = tuples[i];
    if (std::isnan(t.value)) {
      RejectPush(stream, tuples.size(),
                 "batch rejected: NaN value at index " + std::to_string(i) +
                     " on stream " + std::to_string(stream));
      return;
    }
    if (t.timestamp <= kMinTime || t.timestamp >= kMaxTime ||
        t.timestamp < prev) {
      RejectPush(stream, tuples.size(),
                 "batch rejected: out-of-order or out-of-range timestamp " +
                     std::to_string(t.timestamp) + " at index " +
                     std::to_string(i) + " on stream " +
                     std::to_string(stream));
      return;
    }
    prev = t.timestamp;
  }
  const TimePoint last = tuples.back().timestamp;
  if (active_queries() == 0) {
    dropped_tuples_ += tuples.size();
    watermark_ = last;
    return;
  }
  if (stream >= max_streams_) {
    RejectPush(stream, tuples.size(),
               "batch rejected: stream " + std::to_string(stream) +
                   " is not read by any active query");
    watermark_ = last;
    return;
  }
  EnsureBuilt();
  if (options_.mode == ExecutionMode::kDeterministic) {
    // Same exclusivity argument as Push. Sampling is batch-granular: all
    // samples due within the batch observe the pre-batch state.
    surgery_cap_.Assert();
    while (last >= next_sample_) {
      SampleMemory();
      next_sample_ += options_.sample_interval;
    }
  }
  watermark_ = last;
  input_tuples_ += tuples.size();
  if (par_scheduler_ != nullptr) {
    // The SPSC entry handoff wants a run it can publish with one
    // release-store per ring segment, so stage the batch in the reused
    // run buffer.
    batch_run_.clear();
    batch_run_.reserve(tuples.size());
    for (const Tuple& t : tuples) {
      Tuple staged = t;
      staged.side = stream;
      batch_run_.push_back(Event(std::move(staged)));
    }
    par_scheduler_->PushEntryRun(built_.entry, &batch_run_);
  } else if (shard_scheduler_ != nullptr) {
    // Same staging as parallel mode; the router partitions the run. A
    // flush at the batch boundary bounds how long a partial spill run can
    // sit staged in the router (batch-granular visibility).
    batch_run_.clear();
    batch_run_.reserve(tuples.size());
    for (const Tuple& t : tuples) {
      Tuple staged = t;
      staged.side = stream;
      batch_run_.push_back(Event(std::move(staged)));
    }
    shard_scheduler_->PushEntryRun(&batch_run_);
    shard_scheduler_->FlushInput();
  } else {
    // Deterministic mode owns the entry queue outright: write each event
    // straight into the ring (no staging round trip), then drain once for
    // the whole batch — the amortization PushBatch exists for.
    for (const Tuple& t : tuples) {
      Tuple staged = t;
      staged.side = stream;
      built_.entry->Push(Event(std::move(staged)));
    }
    if (options_.auto_drain && det_scheduler_ != nullptr) {
      det_scheduler_->RunUntilQuiescent();
    }
  }
}

void Engine::PushBatch(StreamId stream, std::vector<Tuple>&& tuples) {
  // Tuple is trivially copyable, so consuming the vector buys nothing
  // today; the overload fixes the API shape for non-trivial payloads.
  PushBatch(stream, std::span<const Tuple>(tuples));
  tuples.clear();
}

uint64_t Engine::Poll(uint64_t max_events) {
  if (par_scheduler_ != nullptr) {
    // Parallel mode: report pipeline progress since the last Poll. The
    // engine is single-caller, so plain counters suffice; PauseParallel
    // folds a finishing segment's remainder into poll_pending_.
    const uint64_t current = par_scheduler_->total_processed();
    const uint64_t delta = poll_pending_ + (current - poll_segment_reported_);
    poll_segment_reported_ = current;
    poll_pending_ = 0;
    return delta;
  }
  if (shard_scheduler_ != nullptr) {
    // Flush the router's staged spill runs so single-Push feeds make
    // progress even below the spill-run granule, then report as above.
    shard_scheduler_->FlushInput();
    const uint64_t current = shard_scheduler_->total_processed();
    const uint64_t delta = poll_pending_ + (current - poll_segment_reported_);
    poll_segment_reported_ = current;
    poll_pending_ = 0;
    return delta;
  }
  // A paused or finished parallel engine still owes the remainder folded
  // in at the last pause; deterministic engines keep poll_pending_ at 0.
  const uint64_t carried = poll_pending_;
  poll_pending_ = 0;
  if (!running() || det_scheduler_ == nullptr) return carried;
  return carried + det_scheduler_->RunSome(max_events);
}

void Engine::Drain() {
  if (!running()) return;
  if (par_scheduler_ != nullptr) {
    PauseParallel();  // pipeline barrier: workers drain everything
    ResumeAfterSurgery();
  } else if (shard_scheduler_ != nullptr) {
    PauseSharded();  // shard barrier: all routed input reaches the sinks
    ResumeAfterSurgery();
  } else if (det_scheduler_ != nullptr) {
    det_scheduler_->RunUntilQuiescent();
  }
}

void Engine::Finish() {
  if (finished_) return;
  if (running()) {
    // Establishes the surgery capability TearDownPlan requires (a no-op
    // when already deterministic and quiescent: TearDownPlan re-drains).
    QuiesceForSurgery();
    TearDownPlan();
  }
  finished_ = true;
}

// ----------------------------------------------------------------- results

SubscriptionId Engine::Subscribe(QueryHandle handle,
                                 ResultCallback callback) {
  QueryRecord* rec = FindRecord(handle.token);
  if (rec == nullptr || !rec->active) {
    last_error_ = "unknown or inactive query handle";
    return {};
  }
  if (callback == nullptr) {
    last_error_ = "null callback";
    return {};
  }
  SubscriptionRecord sub;
  sub.token = next_token_++;
  sub.query_token = handle.token;
  sub.callback = std::move(callback);
  const uint64_t token = sub.token;
  subscriptions_.push_back(std::move(sub));
  if (running()) {
    QuiesceForSurgery();
    WireSubscription(&subscriptions_.back());
    ResumeAfterSurgery();
  }
  return {token};
}

bool Engine::Unsubscribe(SubscriptionId id) {
  auto it = std::find_if(subscriptions_.begin(), subscriptions_.end(),
                         [&](const SubscriptionRecord& s) {
                           return s.token == id.token;
                         });
  if (it == subscriptions_.end()) {
    last_error_ = "unknown subscription";
    return false;
  }
  if (it->sink != nullptr && running()) {
    QuiesceForSurgery();
    // Quiesced above: workers joined (or never started), queues drained.
    // Callback sinks hang off the result plan (merge plan when sharded).
    BuiltPlan& rp = result_plan();
    rp.plan->AssertSurgeryExclusive();
    const QueryRecord* rec = FindRecord(it->query_token);
    SLICE_CHECK(rec != nullptr);
    std::vector<SinkEdge>& edges = rp.sink_edges[rec->query.id];
    for (size_t e = 0; e < edges.size(); ++e) {
      if (edges[e].sink != it->sink) continue;
      edges[e].producer->DetachOutput(edges[e].producer_port,
                                      edges[e].queue);
      rp.plan->RetireQueue(edges[e].queue);
      rp.plan->RemoveOperatorWhileRunning(edges[e].sink);
      edges.erase(edges.begin() + e);
      break;
    }
    ResumeAfterSurgery();
  }
  subscriptions_.erase(it);
  return true;
}

void Engine::WireSubscription(SubscriptionRecord* sub) {
  // Callers hold surgery_cap_ (REQUIRES), so the pipeline is quiescent and
  // the plan structure is this thread's to mutate. Sharded mode taps the
  // merge plan (the only stream carrying globally ordered results), so
  // callbacks fire on the merge worker thread.
  BuiltPlan& rp = result_plan();
  rp.plan->AssertSurgeryExclusive();
  const QueryRecord* rec = FindRecord(sub->query_token);
  SLICE_CHECK(rec != nullptr && rec->active);
  const int qid = rec->query.id;
  SLICE_CHECK(!rp.sink_edges[qid].empty());
  // Tap the same producer that feeds the query's counting sink (the gate,
  // union, router branch, or slice — whichever terminates this query).
  const SinkEdge proto = rp.sink_edges[qid].front();
  auto* sink = rp.plan->InsertOperatorWhileRunning(
      std::make_unique<CallbackSink>(
          rec->query.name + ".cb" + std::to_string(sub->token),
          sub->callback));
  EventQueue* queue = rp.plan->ConnectWhileRunning(
      proto.producer, proto.producer_port, sink, 0);
  rp.sink_edges[qid].push_back(
      SinkEdge{proto.producer, proto.producer_port, queue, sink});
  sub->sink = sink;
}

uint64_t Engine::ResultCount(QueryHandle handle) {
  const QueryRecord* rec = FindRecord(handle.token);
  if (rec == nullptr) return 0;
  uint64_t total = rec->delivered;
  if (rec->active && running() &&
      result_plan().sinks[rec->query.id] != nullptr) {
    // Pause workers (if any) for a quiescent, synchronized read; a
    // deterministic engine stays lazy (Poll/auto_drain drive progress).
    const bool had_workers =
        par_scheduler_ != nullptr || shard_scheduler_ != nullptr;
    if (par_scheduler_ != nullptr) PauseParallel();
    if (shard_scheduler_ != nullptr) PauseSharded();
    total += result_plan().sinks[rec->query.id]->result_count();
    if (had_workers) ResumeAfterSurgery();
  }
  return total;
}

std::map<std::string, int> Engine::CollectedResults(QueryHandle handle) {
  const QueryRecord* rec = FindRecord(handle.token);
  if (rec == nullptr) return {};
  std::map<std::string, int> results = rec->collected;
  if (rec->active && running() &&
      result_plan().collectors[rec->query.id] != nullptr) {
    const bool had_workers =
        par_scheduler_ != nullptr || shard_scheduler_ != nullptr;
    if (par_scheduler_ != nullptr) PauseParallel();
    if (shard_scheduler_ != nullptr) PauseSharded();
    MergeMultiset(result_plan().collectors[rec->query.id]->ResultMultiset(),
                  &results);
    if (had_workers) ResumeAfterSurgery();
  }
  return results;
}

TimePoint Engine::ResultsFrom(QueryHandle handle) const {
  const QueryRecord* rec = FindRecord(handle.token);
  return rec != nullptr ? rec->results_from : 0;
}

bool Engine::IsActive(QueryHandle handle) const {
  const QueryRecord* rec = FindRecord(handle.token);
  return rec != nullptr && rec->active;
}

// ------------------------------------------------------------- maintenance

int Engine::CompactChain() {
  if (!running() || built_.slices.size() < 2 || !CanMigrateRemove()) {
    return 0;
  }
  QuiesceForSurgery();
  ChainMigrator migrator(&built_);
  int merges = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t s = 0; s + 1 < built_.slices.size(); ++s) {
      const BuiltSlice& left = built_.slices[s];
      const BuiltSlice& right = built_.slices[s + 1];
      // MergeSlices needs router-free operands, and the shared boundary
      // must carry no registered query anymore.
      if (left.result_producer != static_cast<Operator*>(left.join) ||
          right.result_producer != static_cast<Operator*>(right.join)) {
        continue;
      }
      if (!built_.chain.spec.queries_at_boundary[left.end_boundary]
               .empty()) {
        continue;
      }
      migrator.MergeSlices(static_cast<int>(s));
      ++merges;
      progress = true;
      break;
    }
  }
  if (merges > 0) {
    ValidateBuiltChain(built_);
    ++migrations_;
  }
  ResumeAfterSurgery();
  return merges;
}

// ----------------------------------------------------------- introspection

RunStats Engine::Snapshot() {
  RunStats stats;
  stats.mode = options_.mode;
  stats.worker_threads =
      options_.mode == ExecutionMode::kParallel
          ? std::max(last_parallel_stages_, 1)
          : (options_.mode == ExecutionMode::kSharded
                 ? std::max(last_shard_count_, 1)
                 : 1);
  const bool had_workers =
      par_scheduler_ != nullptr || shard_scheduler_ != nullptr;
  if (par_scheduler_ != nullptr) PauseParallel();  // quiescent snapshot
  if (shard_scheduler_ != nullptr) PauseSharded();
  // Either the pause above joined the workers, or none existed
  // (deterministic mode / idle): the accumulators are this thread's.
  surgery_cap_.Assert();

  stats.input_tuples = input_tuples_;
  stats.rejected_tuples = rejected_tuples_;
  stats.rejected_by_stream = rejected_by_stream_;
  stats.events_processed = events_accum_;
  if (det_scheduler_ != nullptr) {
    stats.events_processed += det_scheduler_->total_processed();
  }
  for (const QueryRecord& r : records_) {
    stats.results_delivered += r.delivered;
    if (r.active && running() &&
        result_plan().sinks[r.query.id] != nullptr) {
      stats.results_delivered +=
          result_plan().sinks[r.query.id]->result_count();
    }
  }
  stats.virtual_end_time = watermark_;
  stats.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - created_)
                           .count();
  CostCounters cost = cost_accum_;
  if (running()) {
    if (sharded_ != nullptr) {
      for (const BuiltPlan& shard : sharded_->shards) {
        AddCost(shard.plan->cost_counters(), &cost);
      }
      AddCost(sharded_->merge.plan->cost_counters(), &cost);
    } else {
      AddCost(built_.plan->cost_counters(), &cost);
    }
  }
  stats.cost = cost;
  stats.memory_samples = memory_samples_;
  if (running()) {
    MemorySample sample{.time = watermark_};
    if (sharded_ != nullptr) {
      for (const BuiltPlan& shard : sharded_->shards) {
        sample.state_tuples += shard.plan->TotalStateSize();
        sample.queue_events += shard.plan->TotalQueueSize();
      }
      sample.state_tuples += sharded_->merge.plan->TotalStateSize();
      sample.queue_events += sharded_->merge.plan->TotalQueueSize();
    } else {
      sample.state_tuples = built_.plan->TotalStateSize();
      sample.queue_events = built_.plan->TotalQueueSize();
    }
    stats.memory_samples.push_back(sample);
  }
  stats.parallel_edge_events = parallel_edge_events_accum_;
  stats.parallel_edge_high_water_mark = parallel_edge_hwm_;
  stats.stage_busy_fraction = parallel_stage_busy_;
  stats.shard_steals = shard_steals_accum_;
  stats.shard_spilled_runs = shard_spilled_accum_;

  if (had_workers) ResumeAfterSurgery();
  return stats;
}

std::vector<Engine::SliceInfo> Engine::ChainSlices() {
  if (!running() || built_.slices.empty()) return {};
  const bool was_parallel = par_scheduler_ != nullptr;
  if (was_parallel) PauseParallel();
  std::vector<SliceInfo> info;
  for (const BuiltSlice& slice : built_.slices) {
    info.push_back(SliceInfo{slice.join->range(), slice.join->StateSize()});
  }
  if (was_parallel) ResumeAfterSurgery();
  return info;
}

std::string Engine::PlanDot() {
  EnsureBuilt();
  if (!running()) return "";
  // Structure (operators/edges) is only mutated from this thread at
  // surgery points, so rendering it does not race the workers. Sharded
  // mode renders shard replica 0 — the actual shared sliced chain (the
  // other replicas are wiring-identical; the merge plan is just unions).
  if (sharded_ != nullptr) return sharded_->shards[0].plan->ToDot();
  return built_.plan->ToDot();
}

}  // namespace stateslice
