// Opaque handle to a continuous query registered with a stateslice::Engine.
//
// Handles are engine-scoped tokens, stable across online migrations and
// plan rebuilds (unlike the dense plan-internal query ids, which the engine
// remaps freely as queries come and go). A default-constructed handle is
// invalid; Engine::RegisterQuery returns an invalid handle on rejected
// input (see Engine::last_error).
#ifndef STATESLICE_API_QUERY_HANDLE_H_
#define STATESLICE_API_QUERY_HANDLE_H_

#include <cstdint>

namespace stateslice {

// Identifies one registered query for the lifetime of its Engine.
struct QueryHandle {
  uint64_t token = 0;  // 0 = invalid

  bool valid() const { return token != 0; }
  explicit operator bool() const { return valid(); }

  friend bool operator==(const QueryHandle&, const QueryHandle&) = default;
};

}  // namespace stateslice

#endif  // STATESLICE_API_QUERY_HANDLE_H_
