// Engine: the long-lived streaming facade over the stateslice library.
//
// The low-level layer (chain builders + shared-plan builders + Executor) is
// batch-shaped: callers pre-materialize tuple vectors, wire sources and
// sinks by hand, and drive ChainMigrator between feed steps. The paper's
// setting, however, is a *continuously running* multi-query system where
// subscriptions enter and leave while the shared sliced chain keeps serving
// results (Section 5.3, Section 7). Engine packages that lifecycle:
//
//   Engine engine({.strategy = SharingStrategy::kStateSlice});
//   QueryHandle q1 = engine.RegisterQuery(
//       "SELECT A.* FROM A A, B B WHERE A.key = B.key WINDOW 10 s");
//   engine.Subscribe(q1, [](const JoinResult& r) { ... });
//   engine.Push(StreamSide::kA, tuple);       // push-based ingestion
//   QueryHandle q2 = engine.RegisterQuery(...);  // online, mid-stream
//   engine.Push(StreamSide::kB, tuple);
//   engine.Finish();
//   RunStats stats = engine.Snapshot();
//
// Multi-way queries (FROM S1, S2, S3, ...) are served by the kStateSlice
// strategy as a left-deep tree of sliced chains shared across queries with
// compatible join-tree prefixes (binary queries share the tree's level 0).
// Registering or removing queries on a multi-level tree always takes the
// drain-flush-rebuild path: in-place ChainMigrator migration is defined
// for single binary chains only, and the rebuild's cutoff is recorded in
// rebuild_cutoffs() exactly like any other rebuild.
//
// Online registration semantics (fresh start): a query registered while
// the engine is running delivers exactly the join over tuples pushed at or
// after its registration (Engine::ResultsFrom). On a selection-free
// state-slice chain the engine routes registration through ChainMigrator —
// the shared slice states keep serving the existing queries with zero
// downtime, and a ResultTimeGate suppresses pairs that join
// pre-registration state. For every other configuration (pull-up,
// push-down, unshared, lineage mode, selections, count windows) the engine
// falls back to a drain-rebuild path: the current plan is flushed (all
// held results are delivered) and a fresh shared plan over the updated
// query set takes over, so churn works for *every* sharing strategy. Each
// rebuild resets operator state at a cutoff recorded in rebuild_cutoffs():
// result pairs whose constituents straddle a rebuild cutoff are not
// produced, so a query's cumulative delivery is exactly the windowed join
// over its post-ResultsFrom suffix, segmented by the later cutoffs.
//
// Threading: the Engine itself is single-caller (one thread invokes its
// methods). In ExecutionMode::kParallel it runs the multi-threaded pipeline
// scheduler underneath; Push hands tuples to the workers, and surgery
// points (register/unregister/subscribe/snapshot/drain) briefly pause the
// pipeline (workers are joined, the plan is mutated in deterministic mode,
// and a fresh pipeline resumes). Subscription callbacks fire on worker
// threads in parallel mode.
//
// ExecutionMode::kSharded replaces the stage pipeline with key-partitioned
// data parallelism: arrivals are hash-routed by join key into
// Options::shard_count independent replicas of the shared plan (one worker
// each, work-stealing between them for skewed key distributions), and a
// merge plan re-establishes global timestamp order before the sinks — see
// src/runtime/sharded_scheduler.h. Sharded mode requires the equi-key join
// condition (so equal keys meet in one replica) and time-based windows
// (count windows depend on the global arrival sequence). Query churn on a
// running sharded engine always takes the drain-rebuild path, and the
// authoritative sinks — what Subscribe/ResultCount/CollectedResults
// observe — live on the merge plan. The merge releases results as the
// slowest shard's watermark advances, so a mid-stream ResultCount can
// trail the deterministic engine; after Finish() (or any drain-rebuild)
// the delivered results are multiset- and order-identical. Subscription
// callbacks fire on the merge worker thread.
#ifndef STATESLICE_API_ENGINE_H_
#define STATESLICE_API_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/api/query_handle.h"
#include "src/api/subscription.h"
#include "src/common/thread_annotations.h"
#include "src/core/chain_builder.h"
#include "src/core/cost_model.h"
#include "src/core/migration.h"
#include "src/core/shared_plan_builder.h"
#include "src/core/sharded_plan.h"
#include "src/operators/sliced_window_join.h"
#include "src/query/query.h"
#include "src/runtime/execution_mode.h"
#include "src/runtime/metrics.h"
#include "src/runtime/parallel_scheduler.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/sharded_scheduler.h"

namespace stateslice {

// Multi-query sharing strategies the engine can serve a workload with
// (the paper's Section 3 baselines plus its Section 4-6 contribution).
enum class SharingStrategy {
  kStateSlice,  // sliced chain (Sections 4-6); see ChainObjective
  kPullUp,      // naive sharing with selection pull-up (Fig. 3)
  kPushDown,    // stream partition with selection push-down (Fig. 4)
  kUnshared,    // one join per query (no sharing baseline)
};

// Which chain the state-slice strategy builds (Section 5).
enum class ChainObjective {
  kMemOpt,  // one slice per distinct window — minimal state memory
  kCpuOpt,  // Dijkstra-optimal merge pattern under the CPU cost model
};

// Streams are identified by their 0-based FROM-list position (StreamId,
// src/common/tuple.h): binary joins ingest streams 0 and 1 (the
// StreamSide::kA / kB constants), an N-way workload ingests 0..N-1.
// Tuples pushed into streams no active query reads are dropped (counted
// in dropped_tuples).

// A long-lived multi-query streaming session.
class Engine {
 public:
  struct Options {
    SharingStrategy strategy = SharingStrategy::kStateSlice;
    ChainObjective objective = ChainObjective::kMemOpt;
    // State-slice only: lineage bitmask filtering (Section 6.1).
    bool use_lineage = false;
    // Keep per-query result multisets (CollectedResults); costs memory.
    bool collect_results = false;
    ExecutionMode mode = ExecutionMode::kDeterministic;
    // kParallel: pipeline stages; 0 = hardware_concurrency() - 1.
    int worker_threads = 0;
    // kSharded: key-partitioned plan replicas (one worker each);
    // 0 = worker_threads (or its hardware default). Clamped to >= 1.
    int shard_count = 0;
    // kParallel: per-edge SPSC ring capacity, in events. kSharded reuses
    // it for the per-shard ingress rings.
    size_t parallel_edge_capacity = 256;
    JoinCondition condition = JoinCondition::EquiKey();
    // CPU-Opt objective inputs (stream rates, S1, C_sys).
    ChainCostParams cost_params;
    // Virtual-time spacing of memory samples (deterministic mode).
    Duration sample_interval = kTicksPerSecond;
    // Deterministic mode: process each pushed tuple to quiescence (the
    // executor's feed_batch=1 discipline). When false, Push only enqueues
    // and the caller drives processing with Poll()/Drain().
    bool auto_drain = true;
    // Run length: max events a scheduler visit drains from one queue into
    // an Operator::OnRun call. 0 keeps the per-mode defaults (8 for the
    // deterministic round-robin quantum — the paper-faithful CAPE setting
    // the figure benches assume — and 64 for the parallel per-ring
    // quantum). Larger runs amortize dispatch at the cost of per-queue
    // latency; event order within a queue is unaffected.
    int run_length = 0;
  };

  Engine();  // default options
  explicit Engine(Options options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- query churn ------------------------------------------------------
  // Registers a continuous query (id is assigned by the engine; an empty
  // name gets a generated one). Returns an invalid handle and sets
  // last_error() when the query is rejected (bad window, mixed window
  // kinds, a selection the chosen strategy cannot serve, capacity).
  // Registering on a running engine advances the session watermark one
  // tick past the last arrival (see Push), which pins ResultsFrom exactly
  // between the pre- and post-registration arrivals.
  QueryHandle RegisterQuery(const ContinuousQuery& query);

  // Parses `cql` with ParseQuery and registers the result. Parse errors
  // surface through last_error().
  QueryHandle RegisterQuery(std::string_view cql);

  // Removes a query: its results stop, its totals stay readable. Returns
  // false (with last_error) for unknown/inactive handles.
  bool UnregisterQuery(QueryHandle handle);

  // Message for the most recent rejected call.
  const std::string& last_error() const { return last_error_; }

  // --- ingestion --------------------------------------------------------
  // Pushes one tuple into `stream`. Tuples must arrive in global
  // non-decreasing timestamp order (the paper's Section 2 assumption).
  // A malformed arrival — negative stream id, NaN value, a timestamp
  // before watermark() or outside [kMinTime+1, kMaxTime) — is rejected,
  // not ingested: it is counted in rejected_tuples(), a one-line reason
  // lands in last_error(), and the watermark does not advance. Note that
  // churn operations advance the watermark one tick past the last
  // arrival, so a tuple pushed after a registration must not tie with
  // pre-registration arrivals. A well-formed tuple pushed while no query
  // is registered is dropped (counted in dropped_tuples); one pushed into
  // a stream id no active query reads is rejected, with the watermark
  // advancing in both cases (the arrival is real — only its payload is
  // unreadable). Must not be called after Finish (CHECK) or on a
  // poisoned() engine (rejected).
  void Push(StreamId stream, const Tuple& tuple);
  // Move spelling. Tuple is trivially copyable today, so this costs the
  // same as the const& overload; it exists so call sites that hand over
  // ownership (and any future non-trivial tuple payload) take the move
  // path: `engine.Push(side, std::move(t))`.
  void Push(StreamId stream, Tuple&& tuple);

  // Pushes a timestamp-ordered batch into `stream` as one run: the batch
  // is validated (non-decreasing timestamps, first >= watermark()),
  // converted to events, and fed to the scheduler in a single visit —
  // auto_drain drains once per batch, not per tuple, which is where the
  // batched ingest throughput comes from (bench_batch_throughput).
  // Any contiguous range binds: `PushBatch(s, vec)`, a subspan, a C array.
  // Deterministic-mode memory sampling is batch-granular: samples due
  // within the batch are taken against the pre-batch state.
  void PushBatch(StreamId stream, std::span<const Tuple> tuples);
  // Move overload (API parity with Push; see the Push(Tuple&&) note). The
  // vector is consumed and left empty.
  void PushBatch(StreamId stream, std::vector<Tuple>&& tuples);

  // Deterministic mode with auto_drain=false: processes up to `max_events`
  // pending events and returns how many ran (< max_events implies
  // quiescence). In parallel mode the worker pipeline processes
  // continuously; Poll never runs work itself and instead returns the
  // number of events the pipeline processed since the last Poll (a relaxed
  // snapshot; `max_events` is ignored). Returns 0 on an idle engine.
  uint64_t Poll(uint64_t max_events = 4096);

  // Processes everything in flight. In deterministic mode this drains the
  // plan to quiescence on the calling thread. In parallel mode it is a
  // pipeline barrier: workers are joined (draining all in-flight events),
  // their counters fold into the engine totals, and a fresh pipeline
  // resumes — expensive, so prefer Poll for progress monitoring.
  void Drain();

  // Declares end of input: flushes end-of-stream punctuations, delivers
  // all held results, and retires the plan. Terminal — no further Push or
  // churn; counts and Snapshot stay readable.
  void Finish();

  // --- results ----------------------------------------------------------
  // Attaches `callback` to the query's output path; fires once per
  // delivered JoinResult, surviving migrations and plan rebuilds.
  SubscriptionId Subscribe(QueryHandle handle, ResultCallback callback);
  bool Unsubscribe(SubscriptionId id);

  // Results delivered to the query so far (across all plan epochs). On a
  // running parallel engine this briefly pauses the pipeline for a
  // consistent read — prefer one Snapshot() over per-handle loops there.
  uint64_t ResultCount(QueryHandle handle);

  // Result multiset (JoinPairKey -> count) delivered to the query, across
  // all plan epochs. Requires Options::collect_results. Same parallel-mode
  // pause note as ResultCount.
  std::map<std::string, int> CollectedResults(QueryHandle handle);

  // The query observes tuples with timestamp >= this cutoff (set once, at
  // registration): its cumulative delivered results are exactly the
  // windowed join over that suffix, minus pairs split by a later rebuild
  // cutoff (see rebuild_cutoffs). 0 for queries registered before the
  // first push.
  TimePoint ResultsFrom(QueryHandle handle) const;

  bool IsActive(QueryHandle handle) const;

  // --- maintenance ------------------------------------------------------
  // State-slice chains only: merges adjacent slices whose shared boundary
  // no longer carries a registered query (Section 5.3's compaction).
  // Returns the number of merges performed (0 when not applicable).
  int CompactChain();

  // --- fault tolerance (checkpoint/restore) -----------------------------
  // Serializes the engine's complete logical state — registered queries,
  // the live chain/tree structure (including migration-created boundaries),
  // every slice's join-state contents, buffered union events, watermarks,
  // and accumulated counters — into a versioned, checksummed binary
  // snapshot. The engine is quiesced first (in-flight events are drained;
  // this only advances work an uninterrupted run performs anyway) and
  // keeps running afterwards. Returns false with last_error() when the
  // state is not serializable (a selection outside the CQL dialect, a
  // poisoned engine). A torn write is detectable: Restore verifies a
  // trailing CRC-32 over the whole snapshot.
  bool Checkpoint(std::string* out);

  // Rebuilds the serialized engine into *this*, which must be freshly
  // constructed with the same Options (a fingerprint in the snapshot is
  // verified field by field). Query handles from the checkpointed engine
  // remain valid against the restored one; subscriptions are not part of
  // the snapshot and must be re-established with Subscribe. After a
  // successful restore, subsequent pushes yield results byte-identical to
  // an uninterrupted run. On any failure — bad magic, version or options
  // mismatch, checksum mismatch, truncation, structural inconsistency —
  // the engine reports a diagnostic through last_error(), never crashes,
  // and becomes poisoned(): ingestion and churn are rejected, while
  // Snapshot/Finish/Drain/Poll stay safe and idempotent.
  bool Restore(std::string_view snapshot);

  // True after a failed Restore: the engine holds no usable state and
  // rejects ingestion/churn, but introspection stays available.
  bool poisoned() const { return poisoned_; }

  // Asserts (CHECK-fails on violation) the structural invariants of the
  // current plan: chain spec/partition/slice consistency and per-state
  // key-index consistency, on every shard replica in sharded mode. No-op
  // for non-chain strategies or an idle engine. Briefly pauses workers.
  void CheckPlanInvariants();

  // --- introspection ----------------------------------------------------
  // Unified run metrics across all plan epochs: volumes, cost counters,
  // memory samples, wall/virtual time. Briefly pauses the pipeline in
  // parallel mode so the numbers are a consistent quiescent snapshot.
  RunStats Snapshot();

  // Live slice ranges and state sizes of the current chain (empty for
  // non-chain strategies or an idle engine).
  struct SliceInfo {
    SliceRange range;
    size_t state_tuples = 0;
  };
  std::vector<SliceInfo> ChainSlices();

  // Graphviz DOT of the current shared plan (builds the plan if queries
  // are registered but nothing was pushed yet; empty string when idle).
  std::string PlanDot();

  size_t active_queries() const;
  TimePoint watermark() const { return watermark_; }
  bool running() const {
    return built_.plan != nullptr || sharded_ != nullptr;
  }
  bool finished() const { return finished_; }
  uint64_t input_tuples() const { return input_tuples_; }
  uint64_t dropped_tuples() const { return dropped_tuples_; }
  // Arrivals bounced at ingestion with a one-line reason in last_error():
  // NaN values, out-of-order or out-of-range timestamps, streams no active
  // query reads (see Push). Per-stream counts index by stream id; pushes
  // with an invalid id count in the total only.
  uint64_t rejected_tuples() const { return rejected_tuples_; }
  const std::vector<uint64_t>& rejected_by_stream() const {
    return rejected_by_stream_;
  }
  // Churn operations served in place by ChainMigrator — registrations,
  // removals, and CompactChain passes — without a plan rebuild.
  uint64_t migrations() const { return migrations_; }
  // Drain-rebuild transitions; each entry of rebuild_cutoffs() is the
  // cutoff timestamp of one rebuild (operator state reset at that point).
  uint64_t rebuilds() const { return rebuilds_; }
  const std::vector<TimePoint>& rebuild_cutoffs() const {
    return rebuild_cutoffs_;
  }
  const Options& options() const { return options_; }

 private:
  struct QueryRecord {
    uint64_t token = 0;
    ContinuousQuery query;  // id = dense id in the current plan epoch
    TimePoint results_from = 0;
    bool active = true;
    uint64_t delivered = 0;                 // finalized plan epochs
    std::map<std::string, int> collected;   // finalized plan epochs
  };
  struct SubscriptionRecord {
    uint64_t token = 0;
    uint64_t query_token = 0;
    ResultCallback callback;
    CallbackSink* sink = nullptr;  // current epoch's operator (if wired)
  };

  QueryRecord* FindRecord(uint64_t token);
  const QueryRecord* FindRecord(uint64_t token) const;
  bool ValidateNewQuery(const ContinuousQuery& query, std::string* error)
      const;
  void RecomputeMaxStreams();

  // Bounces `count` arrivals attributed to `stream` (invalid ids count in
  // the total only) and records `reason` in last_error_.
  void RejectPush(StreamId stream, uint64_t count, std::string reason);

  // Plan-surgery exclusion (checked under Clang -Wthread-safety): the
  // methods below mutate plan structure or the fold-in metric accumulators,
  // which in parallel mode are also touched when workers are joined. They
  // require surgery_cap_ — the "pipeline is quiescent and this thread has
  // the engine to itself" capability. QuiesceForSurgery (and PauseParallel,
  // which joins the workers) establish it; surgery entry points that are
  // trivially exclusive (idle engine, deterministic mode) assert it with a
  // justification comment.

  // Builds the shared plan over the active queries and starts execution.
  void BuildPlan() STATESLICE_REQUIRES(surgery_cap_);
  void EnsureBuilt();
  // Harvests sinks, folds metrics, flushes (FinishAll) and destroys the
  // current plan. The engine is idle afterwards.
  void TearDownPlan() STATESLICE_REQUIRES(surgery_cap_);
  void HarvestSinks() STATESLICE_REQUIRES(surgery_cap_);
  void FoldPlanCost() STATESLICE_REQUIRES(surgery_cap_);

  void StartParallel();
  // Joins the workers and folds their counters; after it returns no other
  // thread touches engine state, which is exactly surgery_cap_.
  void PauseParallel() STATESLICE_ASSERT_CAPABILITY(surgery_cap_);
  // kSharded analogues of StartParallel/PauseParallel: launch / join the
  // shard workers + merge worker over sharded_.
  void StartSharded();
  void PauseSharded() STATESLICE_ASSERT_CAPABILITY(surgery_cap_);
  int ShardCount() const;
  // The plan carrying the authoritative per-query sinks: the merge plan in
  // sharded mode, built_ otherwise. Valid only while running().
  BuiltPlan& result_plan() {
    return sharded_ != nullptr ? sharded_->merge : built_;
  }
  // Brings the plan to a quiescent, deterministic-mode state so plan
  // surgery is legal; ResumeAfterSurgery restarts the pipeline if needed.
  void QuiesceForSurgery() STATESLICE_ASSERT_CAPABILITY(surgery_cap_);
  void ResumeAfterSurgery();

  bool CanMigrateAdd(const ContinuousQuery& query) const;
  bool CanMigrateRemove() const;
  // The cutoff new arrivals are guaranteed to be at or beyond.
  TimePoint Cutoff() const { return watermark_ + 1; }

  void WireSubscription(SubscriptionRecord* sub)
      STATESLICE_REQUIRES(surgery_cap_);
  void SampleMemory() STATESLICE_REQUIRES(surgery_cap_);

  Options options_;
  std::string last_error_;
  uint64_t next_token_ = 1;
  std::vector<QueryRecord> records_;             // registration order
  size_t active_count_ = 0;  // records_ with active=true (Push hot path)
  std::vector<SubscriptionRecord> subscriptions_;

  BuiltPlan built_;  // built_.plan == nullptr while idle
  std::unique_ptr<RoundRobinScheduler> det_scheduler_;
  std::unique_ptr<ParallelScheduler> par_scheduler_;
  int last_parallel_stages_ = 0;
  // kSharded: the shard replicas + merge plan (built_ stays empty), and
  // the scheduler threading them while running.
  std::unique_ptr<ShardedPlanSet> sharded_;
  std::unique_ptr<ShardedScheduler> shard_scheduler_;
  int last_shard_count_ = 0;

  TimePoint watermark_ = 0;
  int max_streams_ = 0;  // streams read by active queries (Push drop check)
  // Reused PushBatch staging run (single-caller engine: one suffices).
  EventRun batch_run_;
  // Parallel-mode Poll bookkeeping (single-caller thread): events reported
  // from finished pipeline segments not yet returned by Poll, and how much
  // of the *current* segment's total_processed() Poll already reported.
  uint64_t poll_pending_ = 0;
  uint64_t poll_segment_reported_ = 0;
  TimePoint next_sample_ = 0;
  bool finished_ = false;
  // Set when a Restore failed partway: the engine rejects ingestion and
  // registration but keeps answering snapshots (see poisoned()).
  bool poisoned_ = false;
  uint64_t input_tuples_ = 0;
  uint64_t dropped_tuples_ = 0;
  uint64_t rejected_tuples_ = 0;
  std::vector<uint64_t> rejected_by_stream_ =
      std::vector<uint64_t>(kMaxStreams, 0);
  uint64_t migrations_ = 0;
  uint64_t rebuilds_ = 0;
  std::vector<TimePoint> rebuild_cutoffs_;

  // Metrics folded in from finished plan epochs / scheduler segments.
  // Guarded by the surgery capability: folds happen at pause/teardown
  // points, reads at quiescent snapshots.
  uint64_t events_accum_ STATESLICE_GUARDED_BY(surgery_cap_) = 0;
  uint64_t parallel_edge_events_accum_ STATESLICE_GUARDED_BY(surgery_cap_) =
      0;
  size_t parallel_edge_hwm_ STATESLICE_GUARDED_BY(surgery_cap_) = 0;
  std::vector<double> parallel_stage_busy_
      STATESLICE_GUARDED_BY(surgery_cap_);
  uint64_t shard_steals_accum_ STATESLICE_GUARDED_BY(surgery_cap_) = 0;
  uint64_t shard_spilled_accum_ STATESLICE_GUARDED_BY(surgery_cap_) = 0;
  CostCounters cost_accum_ STATESLICE_GUARDED_BY(surgery_cap_);
  std::vector<MemorySample> memory_samples_
      STATESLICE_GUARDED_BY(surgery_cap_);
  std::chrono::steady_clock::time_point created_;

  // "Pipeline quiescent, this thread owns the engine" (see the surgery
  // section above).
  ThreadRole surgery_cap_;
};

}  // namespace stateslice

#endif  // STATESLICE_API_ENGINE_H_
