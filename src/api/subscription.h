// Push-based result delivery for Engine queries.
//
// Engine::Subscribe(handle, callback) attaches a CallbackSink to the
// query's output path, next to its counting (and optional collecting)
// sinks. The callback fires once per delivered JoinResult, in the query's
// delivery order. In ExecutionMode::kParallel the callback runs on an
// engine worker thread — callbacks must be thread-compatible and cheap, or
// they become pipeline backpressure.
#ifndef STATESLICE_API_SUBSCRIPTION_H_
#define STATESLICE_API_SUBSCRIPTION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "src/api/query_handle.h"
#include "src/common/arena.h"
#include "src/common/check.h"
#include "src/runtime/operator.h"

namespace stateslice {

// Invoked for every JoinResult delivered to a subscribed query.
using ResultCallback = std::function<void(const JoinResult&)>;

// Identifies one subscription for Engine::Unsubscribe. Default = invalid.
struct SubscriptionId {
  uint64_t token = 0;

  bool valid() const { return token != 0; }
  explicit operator bool() const { return valid(); }

  friend bool operator==(const SubscriptionId&,
                         const SubscriptionId&) = default;
};

// Terminal operator that forwards each JoinResult to a user callback.
// Punctuations and bare tuples are absorbed (they carry no result payload).
// The engine wires one per subscription and rewires it across plan
// rebuilds, so the callback outlives any single shared plan.
class CallbackSink : public Operator {
 public:
  CallbackSink(std::string name, ResultCallback callback)
      : Operator(std::move(name)), callback_(std::move(callback)) {
    SLICE_CHECK(callback_ != nullptr);
  }

  void Process(Event event, int input_port) override {
    SLICE_CHECK_EQ(input_port, 0);
    if (IsJoinResult(event)) {
      ++delivered_;
      // Suspend the scheduler's plan-arena scope for the user callback:
      // composite copies the callback makes must go to the global heap so
      // they may outlive the plan epoch.
      ArenaScope suspend(nullptr);
      callback_(std::get<JoinResult>(event));
    }
  }

  // Results delivered through this sink instance (one plan epoch).
  uint64_t delivered() const { return delivered_; }

 private:
  ResultCallback callback_;
  uint64_t delivered_ = 0;
};

}  // namespace stateslice

#endif  // STATESLICE_API_SUBSCRIPTION_H_
