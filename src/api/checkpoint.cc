// Engine checkpoint/restore: versioned binary snapshots of a streaming
// session (fault tolerance for the paper's continuously running multi-query
// setting).
//
// Format v1 (little-endian fixed-width fields; see src/common/serde.h):
//
//   "SSCP" magic (4 raw bytes), u32 format version,
//   fingerprint   — every Engine::Options field that shapes plan structure
//                   (strategy, objective, mode, condition, capacities, cost
//                   params); Restore verifies it field by field,
//   scalars       — token counter, watermark, volume counters, churn
//                   history (rebuild cutoffs),
//   accumulators  — folded run metrics with the live scheduler/plan
//                   counters folded in (the restored plan restarts its own
//                   counters at zero),
//   records       — every query ever registered, in registration order:
//                   token, name, CQL text (ToCql round-trip; active queries
//                   only), results_from, delivered/collected totals with
//                   the live sink counts folded in, and the fresh-start
//                   gate cutoff if a migration installed one,
//   plan          — present iff the engine was running: the live chain
//                   spec/partition (single-level non-sharded chains carry
//                   migration-created boundaries that a recompute would not
//                   reproduce) and one state section per plan (each shard
//                   replica then the merge plan in sharded mode): every
//                   join's window contents oldest-first plus each union's
//                   buffered events in release order,
//   u32 CRC-32 over everything above — torn-write detection.
//
// Restore rebuilds the plan through the normal builders (key indexes are
// reconstructed by Insert, never serialized), injects the serialized
// states positionally, and re-wires fresh-start gates with the migration
// recipe. Dense query ids are assigned in records order, which provably
// matches the checkpointed plan: BuildPlan numbers active records in
// order, ChainMigrator::AddQuery appends the next id to the newest
// record, and RemoveQuery frees no id — so active records always carry
// strictly ascending plan ids. Unions and gates are nevertheless keyed by
// the stable record token, not the dense id.
//
// Failure discipline: Checkpoint failures never modify the engine. A
// Restore that fails after the fresh-engine precondition poisons the
// engine (poisoned()): whatever was half-rebuilt is destroyed, ingestion
// and churn are rejected, introspection stays safe. Every decode is
// bounds-checked (StateReader) and every count is bounded by the bytes
// remaining, so a corrupt snapshot yields a diagnostic, not UB.
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/api/engine.h"
#include "src/common/check.h"
#include "src/common/fault_point.h"
#include "src/common/serde.h"
#include "src/core/migration.h"
#include "src/operators/selection.h"
#include "src/operators/sliding_window_join.h"
#include "src/query/parser.h"

namespace stateslice {
namespace {

constexpr uint32_t kCheckpointVersion = 1;
const char kCheckpointMagic[4] = {'S', 'S', 'C', 'P'};

// ---------------------------------------------------------------- encoding

void WriteTuple(StateWriter* w, const Tuple& t) {
  w->I64(t.timestamp);
  w->I64(t.key);
  w->Double(t.value);
  w->U32(t.seq);
  w->I64(t.side);
  w->U8(static_cast<uint8_t>(t.role));
  w->U64(t.lineage);
}

bool ReadTuple(StateReader* r, Tuple* t) {
  int64_t side = 0;
  uint8_t role = 0;
  if (!r->I64(&t->timestamp) || !r->I64(&t->key) || !r->Double(&t->value) ||
      !r->U32(&t->seq) || !r->I64(&side) || !r->U8(&role) ||
      !r->U64(&t->lineage)) {
    return false;
  }
  if (side < INT16_MIN || side > INT16_MAX || role > 2) return false;
  t->side = static_cast<StreamId>(side);
  t->role = static_cast<TupleRole>(role);
  return true;
}

// Bounded element count: every serialized element is at least one byte, so
// a count beyond the bytes remaining is corrupt (and would otherwise drive
// a huge reserve/loop before the per-element reads failed).
bool ReadCount(StateReader* r, uint32_t* n) {
  return r->U32(n) && *n <= r->remaining();
}

void WriteComposite(StateWriter* w, const CompositeTuple& c) {
  WriteTuple(w, c.a);
  WriteTuple(w, c.b);
  w->U32(static_cast<uint32_t>(c.tail.size()));
  for (size_t i = 0; i < c.tail.size(); ++i) WriteTuple(w, c.tail[i]);
  w->U8(static_cast<uint8_t>(c.role));
}

bool ReadComposite(StateReader* r, CompositeTuple* c) {
  uint32_t tail = 0;
  if (!ReadTuple(r, &c->a) || !ReadTuple(r, &c->b) || !ReadCount(r, &tail)) {
    return false;
  }
  if (tail > static_cast<uint32_t>(kMaxStreams)) return false;
  for (uint32_t i = 0; i < tail; ++i) {
    Tuple t;
    if (!ReadTuple(r, &t)) return false;
    c->tail.push_back(t);
  }
  uint8_t role = 0;
  if (!r->U8(&role) || role > 2) return false;
  c->role = static_cast<TupleRole>(role);
  return true;
}

// Entry overloads so the join-state codec below is one template.
void WriteEntry(StateWriter* w, const Tuple& t) { WriteTuple(w, t); }
void WriteEntry(StateWriter* w, const CompositeTuple& c) {
  WriteComposite(w, c);
}
bool ReadEntry(StateReader* r, Tuple* t) { return ReadTuple(r, t); }
bool ReadEntry(StateReader* r, CompositeTuple* c) {
  return ReadComposite(r, c);
}

template <typename EntryT>
void WriteState(StateWriter* w, const BasicJoinState<EntryT>& state) {
  const std::vector<EntryT> entries = state.tuples();  // oldest first
  w->U32(static_cast<uint32_t>(entries.size()));
  for (const EntryT& e : entries) WriteEntry(w, e);
}

// Decodes one join-state section into a freshly built (empty) state.
// Entry times must be non-decreasing (Insert CHECK-crashes otherwise, so
// the guard keeps corrupt snapshots on the graceful path) and at or before
// the snapshot watermark. Insert rebuilds the key index incrementally; a
// count-window eviction during injection means the serialized count
// exceeded the window extent, i.e. the snapshot is corrupt.
template <typename EntryT>
bool ReadState(StateReader* r, TimePoint watermark,
               BasicJoinState<EntryT>* state) {
  uint32_t n = 0;
  if (!ReadCount(r, &n)) return false;
  if (!state->empty()) return false;
  TimePoint prev = kMinTime;
  for (uint32_t i = 0; i < n; ++i) {
    EntryT e;
    if (!ReadEntry(r, &e)) return false;
    const TimePoint t = EntryTime(e);
    if (t < prev || t > watermark) return false;
    prev = t;
    state->Insert(e);
  }
  return state->size() == n;
}

// Union-buffer events are data only: tag 0 = Tuple, 1 = JoinResult. A
// buffered punctuation would mean the union mis-buffered (punctuations
// advance watermarks and are never queued), so both directions treat one
// as an error.
bool WriteEvent(StateWriter* w, const Event& event) {
  if (const Tuple* t = std::get_if<Tuple>(&event)) {
    w->U8(0);
    WriteTuple(w, *t);
    return true;
  }
  if (const JoinResult* jr = std::get_if<JoinResult>(&event)) {
    w->U8(1);
    WriteComposite(w, *jr);
    return true;
  }
  return false;
}

bool ReadEvent(StateReader* r, TimePoint watermark, Event* event) {
  uint8_t tag = 0;
  if (!r->U8(&tag)) return false;
  if (tag == 0) {
    Tuple t;
    if (!ReadTuple(r, &t) || t.timestamp > watermark) return false;
    *event = Event(std::move(t));
    return true;
  }
  if (tag == 1) {
    JoinResult jr;
    if (!ReadComposite(r, &jr) || jr.timestamp() > watermark) return false;
    *event = Event(std::move(jr));
    return true;
  }
  return false;
}

void WriteCost(StateWriter* w, const CostCounters& cost) {
  for (int c = 0; c < static_cast<int>(CostCategory::kCategoryCount); ++c) {
    w->U64(cost.Get(static_cast<CostCategory>(c)));
  }
  for (int c = 0; c < static_cast<int>(PhysCategory::kPhysCategoryCount);
       ++c) {
    w->U64(cost.GetPhysical(static_cast<PhysCategory>(c)));
  }
}

bool ReadCost(StateReader* r, CostCounters* cost) {
  for (int c = 0; c < static_cast<int>(CostCategory::kCategoryCount); ++c) {
    uint64_t v = 0;
    if (!r->U64(&v)) return false;
    cost->Add(static_cast<CostCategory>(c), v);
  }
  for (int c = 0; c < static_cast<int>(PhysCategory::kPhysCategoryCount);
       ++c) {
    uint64_t v = 0;
    if (!r->U64(&v)) return false;
    cost->AddPhysical(static_cast<PhysCategory>(c), v);
  }
  return true;
}

// ------------------------------------------------------- plan enumeration

// One stateful join of a plan: exactly one pointer is set.
struct JoinRef {
  SlicedWindowJoin* sliced = nullptr;
  SlidingWindowJoin* sliding = nullptr;
};

// The plan's stateful joins in a deterministic order both ends agree on.
// State-slice plans enumerate chain order (built.slices; operator insertion
// order diverges after a migration split appends the new slice), every
// other strategy — never migrated, rebuilt identically — enumerates
// operator insertion order.
std::vector<JoinRef> PlanJoins(const BuiltPlan& built) {
  std::vector<JoinRef> joins;
  if (!built.slices.empty()) {
    joins.reserve(built.slices.size());
    for (const BuiltSlice& slice : built.slices) {
      joins.push_back(JoinRef{.sliced = slice.join});
    }
    return joins;
  }
  for (const std::unique_ptr<Operator>& op : built.plan->operators()) {
    if (auto* sliced = dynamic_cast<SlicedWindowJoin*>(op.get())) {
      joins.push_back(JoinRef{.sliced = sliced});
    } else if (auto* sliding = dynamic_cast<SlidingWindowJoin*>(op.get())) {
      joins.push_back(JoinRef{.sliding = sliding});
    }
  }
  return joins;
}

// Unions that are not a query's result merge (multi-level pass-through and
// input merges), in operator insertion order.
std::vector<UnionMerge*> NonQueryUnions(const BuiltPlan& built) {
  std::unordered_set<const Operator*> query_unions;
  for (UnionMerge* merge : built.merges) {
    if (merge != nullptr) query_unions.insert(merge);
  }
  std::vector<UnionMerge*> others;
  for (const std::unique_ptr<Operator>& op : built.plan->operators()) {
    auto* merge = dynamic_cast<UnionMerge*>(op.get());
    if (merge != nullptr && query_unions.count(merge) == 0) {
      others.push_back(merge);
    }
  }
  return others;
}

// ------------------------------------------------ per-plan state sections

// Serializes one plan's operator state: joins (typed, with their range or
// windows for the restore-side cross-check) and buffered union events
// (query unions keyed by record token, the rest by operator name).
bool WritePlanState(const BuiltPlan& built,
                    const std::vector<uint64_t>& qid_token, StateWriter* w,
                    std::string* error) {
  const std::vector<JoinRef> joins = PlanJoins(built);
  w->U32(static_cast<uint32_t>(joins.size()));
  for (const JoinRef& j : joins) {
    if (j.sliced != nullptr) {
      const SliceRange& range = j.sliced->range();
      w->U8(0);
      w->Str(j.sliced->name());
      w->U8(static_cast<uint8_t>(range.kind));
      w->I64(range.start);
      w->I64(range.end);
      WriteState(w, j.sliced->state_a());
      WriteState(w, j.sliced->state_b());
      WriteState(w, j.sliced->composite_state());
    } else {
      const WindowSpec& wa = j.sliding->state_a().window();
      const WindowSpec& wb = j.sliding->state_b().window();
      w->U8(1);
      w->Str(j.sliding->name());
      w->U8(static_cast<uint8_t>(wa.kind));
      w->I64(wa.extent);
      w->U8(static_cast<uint8_t>(wb.kind));
      w->I64(wb.extent);
      WriteState(w, j.sliding->state_a());
      WriteState(w, j.sliding->state_b());
    }
  }

  const auto write_pending = [&](const UnionMerge& merge) -> bool {
    const std::vector<Event> pending = merge.PendingSnapshot();
    w->U32(static_cast<uint32_t>(pending.size()));
    for (const Event& event : pending) {
      if (!WriteEvent(w, event)) {
        *error = "union \"" + merge.name() + "\" buffered a punctuation";
        return false;
      }
    }
    return true;
  };

  std::vector<int> query_union_qids;
  for (size_t qid = 0; qid < built.merges.size(); ++qid) {
    if (built.merges[qid] != nullptr && built.merges[qid]->buffered() > 0) {
      query_union_qids.push_back(static_cast<int>(qid));
    }
  }
  w->U32(static_cast<uint32_t>(query_union_qids.size()));
  for (const int qid : query_union_qids) {
    w->U64(qid_token[static_cast<size_t>(qid)]);
    if (!write_pending(*built.merges[static_cast<size_t>(qid)])) {
      return false;
    }
  }

  std::vector<UnionMerge*> named;
  for (UnionMerge* merge : NonQueryUnions(built)) {
    if (merge->buffered() > 0) named.push_back(merge);
  }
  w->U32(static_cast<uint32_t>(named.size()));
  for (UnionMerge* merge : named) {
    w->Str(merge->name());
    if (!write_pending(*merge)) return false;
  }
  return true;
}

// Decodes one plan's state section into a freshly built plan, cross-
// checking every join's type and range/window against what the builder
// produced. `token_qid` maps record tokens to the restored dense ids.
bool ReadPlanState(StateReader* r, TimePoint watermark,
                   const std::unordered_map<uint64_t, int>& token_qid,
                   BuiltPlan* built, std::string* error) {
  const std::vector<JoinRef> joins = PlanJoins(*built);
  uint32_t join_count = 0;
  if (!ReadCount(r, &join_count)) {
    *error = "truncated join section";
    return false;
  }
  if (join_count != joins.size()) {
    *error = "join count mismatch: snapshot has " +
             std::to_string(join_count) + ", rebuilt plan has " +
             std::to_string(joins.size());
    return false;
  }
  for (const JoinRef& j : joins) {
    uint8_t type = 0;
    std::string name;
    if (!r->U8(&type) || !r->Str(&name)) {
      *error = "truncated join header";
      return false;
    }
    if (type == 0 && j.sliced != nullptr) {
      uint8_t kind = 0;
      int64_t start = 0, end = 0;
      if (!r->U8(&kind) || !r->I64(&start) || !r->I64(&end) || kind > 1) {
        *error = "truncated slice range for join \"" + name + "\"";
        return false;
      }
      const SliceRange expected{static_cast<WindowKind>(kind), start, end};
      if (!(j.sliced->range() == expected)) {
        *error = "slice range mismatch for join \"" + name + "\"";
        return false;
      }
      if (!ReadState(r, watermark, j.sliced->mutable_state_a()) ||
          !ReadState(r, watermark, j.sliced->mutable_state_b()) ||
          !ReadState(r, watermark, j.sliced->mutable_composite_state())) {
        *error = "corrupt state for join \"" + name + "\"";
        return false;
      }
    } else if (type == 1 && j.sliding != nullptr) {
      uint8_t ka = 0, kb = 0;
      int64_t ea = 0, eb = 0;
      if (!r->U8(&ka) || !r->I64(&ea) || !r->U8(&kb) || !r->I64(&eb) ||
          ka > 1 || kb > 1) {
        *error = "truncated windows for join \"" + name + "\"";
        return false;
      }
      const WindowSpec wa{static_cast<WindowKind>(ka), ea};
      const WindowSpec wb{static_cast<WindowKind>(kb), eb};
      if (!(j.sliding->state_a().window() == wa) ||
          !(j.sliding->state_b().window() == wb)) {
        *error = "window mismatch for join \"" + name + "\"";
        return false;
      }
      if (!ReadState(r, watermark, j.sliding->mutable_state_a()) ||
          !ReadState(r, watermark, j.sliding->mutable_state_b())) {
        *error = "corrupt state for join \"" + name + "\"";
        return false;
      }
    } else {
      *error = "join type mismatch for join \"" + name + "\"";
      return false;
    }
  }

  const auto read_pending = [&](UnionMerge* merge) -> bool {
    uint32_t n = 0;
    if (!ReadCount(r, &n)) return false;
    for (uint32_t i = 0; i < n; ++i) {
      Event event;
      if (!ReadEvent(r, watermark, &event)) return false;
      merge->RestorePending(std::move(event));
    }
    return true;
  };

  uint32_t query_unions = 0;
  if (!ReadCount(r, &query_unions)) {
    *error = "truncated union section";
    return false;
  }
  for (uint32_t i = 0; i < query_unions; ++i) {
    uint64_t token = 0;
    if (!r->U64(&token)) {
      *error = "truncated union section";
      return false;
    }
    const auto it = token_qid.find(token);
    if (it == token_qid.end() ||
        static_cast<size_t>(it->second) >= built->merges.size() ||
        built->merges[static_cast<size_t>(it->second)] == nullptr) {
      *error = "union buffer references unknown query token " +
               std::to_string(token);
      return false;
    }
    if (!read_pending(built->merges[static_cast<size_t>(it->second)])) {
      *error = "corrupt union buffer for query token " +
               std::to_string(token);
      return false;
    }
  }

  uint32_t named_unions = 0;
  if (!ReadCount(r, &named_unions)) {
    *error = "truncated union section";
    return false;
  }
  std::unordered_map<std::string, UnionMerge*> by_name;
  for (UnionMerge* merge : NonQueryUnions(*built)) {
    by_name.emplace(merge->name(), merge);
  }
  for (uint32_t i = 0; i < named_unions; ++i) {
    std::string name;
    if (!r->Str(&name)) {
      *error = "truncated union section";
      return false;
    }
    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      *error = "union buffer references unknown union \"" + name + "\"";
      return false;
    }
    if (!read_pending(it->second)) {
      *error = "corrupt union buffer for union \"" + name + "\"";
      return false;
    }
  }
  return true;
}

}  // namespace

// --------------------------------------------------------------- Checkpoint

bool Engine::Checkpoint(std::string* out) {
  SLICE_CHECK(out != nullptr);
  if (poisoned_) {
    last_error_ = "checkpoint rejected: engine poisoned by failed Restore";
    return false;
  }
  STATESLICE_FAULT_POINT("checkpoint.begin");

  // Pre-flight: every active query must round-trip through the CQL text
  // (that is how Restore re-validates and re-registers it). Failing here —
  // before pausing or draining anything — leaves the engine untouched.
  std::vector<std::string> cqls(records_.size());
  for (size_t i = 0; i < records_.size(); ++i) {
    if (!records_[i].active) continue;
    std::optional<std::string> cql = records_[i].query.ToCql();
    if (!cql.has_value()) {
      last_error_ = "checkpoint rejected: query \"" +
                    records_[i].query.name +
                    "\" is outside the CQL dialect (ToCql failed)";
      return false;
    }
    cqls[i] = *std::move(cql);
  }

  // Quiesce: join workers, then drain every queue to empty. The drained
  // work is inevitable — an uninterrupted run performs it anyway — so
  // folding it into the accumulators keeps restored metrics consistent.
  const bool had_workers =
      par_scheduler_ != nullptr || shard_scheduler_ != nullptr;
  if (par_scheduler_ != nullptr) PauseParallel();
  if (shard_scheduler_ != nullptr) PauseSharded();
  // Either the pause above joined the workers, or none existed
  // (deterministic mode / idle): the accumulators are this thread's.
  surgery_cap_.Assert();
  if (running()) {
    if (sharded_ != nullptr) {
      // Drain each replica, relay its exit-tap tail into the merge plan
      // (the relay loop TearDownPlan uses, minus the FinishAll flush),
      // then drain the merge.
      const int nq = sharded_->num_queries();
      EventRun relay;
      for (int s = 0; s < sharded_->num_shards(); ++s) {
        RoundRobinScheduler drain(sharded_->shards[s].plan.get());
        drain.RunUntilQuiescent();
        events_accum_ += drain.total_processed();
        for (int q = 0; q < nq; ++q) {
          while (sharded_->exits[s][q]->DrainRun(&relay, 256) > 0) {
            sharded_->merge_entries[s][q]->PushRun(&relay);
          }
        }
        SLICE_CHECK_EQ(sharded_->shards[s].plan->TotalQueueSize(), 0u);
      }
      RoundRobinScheduler mdrain(sharded_->merge.plan.get());
      mdrain.RunUntilQuiescent();
      events_accum_ += mdrain.total_processed();
      SLICE_CHECK_EQ(sharded_->merge.plan->TotalQueueSize(), 0u);
    } else if (det_scheduler_ != nullptr) {
      det_scheduler_->RunUntilQuiescent();
    } else {
      // Parallel mode: the paused pipeline drained in-flight events, but a
      // paused plan still accepts a defensive sweep.
      RoundRobinScheduler drain(built_.plan.get());
      drain.RunUntilQuiescent();
      events_accum_ += drain.total_processed();
    }
  }

  const auto fail = [&](std::string msg) {
    last_error_ = std::move(msg);
    if (had_workers) ResumeAfterSurgery();
    return false;
  };

  StateWriter w;
  for (const char c : kCheckpointMagic) w.U8(static_cast<uint8_t>(c));
  w.U32(kCheckpointVersion);

  // Fingerprint: the options that shape plan structure. Restore verifies
  // field by field so a snapshot never lands in a mismatched engine.
  w.U8(static_cast<uint8_t>(options_.strategy));
  w.U8(static_cast<uint8_t>(options_.objective));
  w.U8(options_.use_lineage ? 1 : 0);
  w.U8(options_.collect_results ? 1 : 0);
  w.U8(static_cast<uint8_t>(options_.mode));
  w.U32(static_cast<uint32_t>(options_.worker_threads));
  w.U32(options_.mode == ExecutionMode::kSharded
            ? static_cast<uint32_t>(ShardCount())
            : 0);
  w.U64(options_.parallel_edge_capacity);
  w.U8(static_cast<uint8_t>(options_.condition.kind));
  w.I64(options_.condition.mod);
  w.I64(options_.condition.band);
  w.I64(options_.sample_interval);
  w.U8(options_.auto_drain ? 1 : 0);
  w.U32(static_cast<uint32_t>(options_.run_length));
  w.Double(options_.cost_params.lambda_a);
  w.Double(options_.cost_params.lambda_b);
  w.Double(options_.cost_params.s1);
  w.Double(options_.cost_params.c_sys);
  w.Double(options_.cost_params.tuple_kb);

  // Scalars.
  w.U64(next_token_);
  w.I64(watermark_);
  w.I64(next_sample_);
  w.U8(finished_ ? 1 : 0);
  w.U64(input_tuples_);
  w.U64(dropped_tuples_);
  w.U64(rejected_tuples_);
  for (size_t s = 0; s < kMaxStreams; ++s) w.U64(rejected_by_stream_[s]);
  w.U64(migrations_);
  w.U64(rebuilds_);
  w.U32(static_cast<uint32_t>(rebuild_cutoffs_.size()));
  for (const TimePoint cutoff : rebuild_cutoffs_) w.I64(cutoff);
  w.U64(poll_pending_);

  // Accumulators, live counters folded in (the restored plan and scheduler
  // restart theirs at zero, so the fold keeps Snapshot() totals stable
  // across a checkpoint/restore boundary).
  uint64_t events = events_accum_;
  if (det_scheduler_ != nullptr) events += det_scheduler_->total_processed();
  w.U64(events);
  w.U64(parallel_edge_events_accum_);
  w.U64(static_cast<uint64_t>(parallel_edge_hwm_));
  w.U32(static_cast<uint32_t>(parallel_stage_busy_.size()));
  for (const double busy : parallel_stage_busy_) w.Double(busy);
  w.U64(shard_steals_accum_);
  w.U64(shard_spilled_accum_);
  CostCounters cost = cost_accum_;
  if (running()) {
    const auto fold = [&cost](const CostCounters& from) {
      for (int c = 0; c < static_cast<int>(CostCategory::kCategoryCount);
           ++c) {
        cost.Add(static_cast<CostCategory>(c),
                 from.Get(static_cast<CostCategory>(c)));
      }
      for (int c = 0;
           c < static_cast<int>(PhysCategory::kPhysCategoryCount); ++c) {
        cost.AddPhysical(static_cast<PhysCategory>(c),
                         from.GetPhysical(static_cast<PhysCategory>(c)));
      }
    };
    if (sharded_ != nullptr) {
      for (const BuiltPlan& shard : sharded_->shards) {
        fold(shard.plan->cost_counters());
      }
      fold(sharded_->merge.plan->cost_counters());
    } else {
      fold(built_.plan->cost_counters());
    }
  }
  WriteCost(&w, cost);
  w.U32(static_cast<uint32_t>(memory_samples_.size()));
  for (const MemorySample& sample : memory_samples_) {
    w.I64(sample.time);
    w.U64(static_cast<uint64_t>(sample.state_tuples));
    w.U64(static_cast<uint64_t>(sample.queue_events));
  }

  // Records, in registration order. Delivered/collected totals fold the
  // live sink counts in (restored sinks restart at zero; events still
  // buffered in unions were not yet counted by any sink, so nothing is
  // double-counted).
  w.U32(static_cast<uint32_t>(records_.size()));
  for (size_t i = 0; i < records_.size(); ++i) {
    const QueryRecord& rec = records_[i];
    w.U64(rec.token);
    w.Str(rec.query.name);
    w.Str(cqls[i]);
    w.I64(rec.results_from);
    w.U8(rec.active ? 1 : 0);
    uint64_t delivered = rec.delivered;
    std::map<std::string, int> collected = rec.collected;
    if (rec.active && running()) {
      BuiltPlan& rp = result_plan();
      const int qid = rec.query.id;
      if (rp.sinks[qid] != nullptr) {
        delivered += rp.sinks[qid]->result_count();
      }
      if (qid < static_cast<int>(rp.collectors.size()) &&
          rp.collectors[qid] != nullptr) {
        for (const auto& [key, count] :
             rp.collectors[qid]->ResultMultiset()) {
          collected[key] += count;
        }
      }
    }
    w.U64(delivered);
    w.U32(static_cast<uint32_t>(collected.size()));
    for (const auto& [key, count] : collected) {
      w.Str(key);
      w.U32(static_cast<uint32_t>(count));
    }
    // Fresh-start gate cutoff (migration-installed; single-level
    // non-sharded chains only). -1 = no gate.
    int64_t cutoff = -1;
    if (rec.active && running() && sharded_ == nullptr &&
        !built_.slices.empty()) {
      const int qid = rec.query.id;
      if (qid < static_cast<int>(built_.result_gates.size()) &&
          built_.result_gates[qid] != nullptr) {
        auto* gate =
            dynamic_cast<ResultTimeGate*>(built_.result_gates[qid]);
        if (gate == nullptr) {
          return fail("checkpoint rejected: unexpected result gate type");
        }
        cutoff = gate->cutoff();
      }
    }
    w.I64(cutoff);
  }
  STATESLICE_FAULT_POINT("checkpoint.mid_write");

  // Plan section.
  w.U8(running() ? 1 : 0);
  if (running()) {
    const BuiltPlan& proto =
        sharded_ != nullptr ? sharded_->shards[0] : built_;
    w.U8(sharded_ != nullptr ? 1 : 0);
    w.U8(static_cast<uint8_t>(proto.num_levels));
    // Single-level non-sharded chains serialize their live spec/partition:
    // migration leaves boundaries (splits, compaction survivors) that a
    // recompute from the query set would not reproduce. Everything else —
    // multi-level trees, sharded sets, non-state-slice strategies — is
    // never migrated and rebuilds deterministically from the queries.
    const bool has_chain = sharded_ == nullptr && !built_.slices.empty() &&
                           built_.num_levels == 1;
    w.U8(has_chain ? 1 : 0);
    if (has_chain) {
      const ChainSpec& spec = built_.chain.spec;
      w.U8(static_cast<uint8_t>(spec.kind));
      w.U32(static_cast<uint32_t>(spec.boundaries.size()));
      for (const int64_t b : spec.boundaries) w.I64(b);
      const std::vector<int>& ends =
          built_.chain.partition.slice_end_boundaries;
      w.U32(static_cast<uint32_t>(ends.size()));
      for (const int e : ends) w.U32(static_cast<uint32_t>(e));
    }
    // Token map for union sections (dense id -> record token).
    std::vector<uint64_t> qid_token;
    for (const QueryRecord& rec : records_) {
      if (!rec.active) continue;
      if (static_cast<size_t>(rec.query.id) >= qid_token.size()) {
        qid_token.resize(static_cast<size_t>(rec.query.id) + 1, 0);
      }
      qid_token[static_cast<size_t>(rec.query.id)] = rec.token;
    }
    std::string error;
    if (sharded_ != nullptr) {
      w.U32(static_cast<uint32_t>(sharded_->num_shards() + 1));
      for (const BuiltPlan& shard : sharded_->shards) {
        if (!WritePlanState(shard, qid_token, &w, &error)) {
          return fail("checkpoint rejected: " + error);
        }
      }
      if (!WritePlanState(sharded_->merge, qid_token, &w, &error)) {
        return fail("checkpoint rejected: " + error);
      }
    } else {
      w.U32(1);
      if (!WritePlanState(built_, qid_token, &w, &error)) {
        return fail("checkpoint rejected: " + error);
      }
    }
  }

  STATESLICE_FAULT_POINT("checkpoint.commit");
  std::string bytes = w.Take();
  StateWriter trailer;
  trailer.U32(Crc32(bytes));
  bytes.append(trailer.data());
  *out = std::move(bytes);
  if (had_workers) ResumeAfterSurgery();
  return true;
}

// ------------------------------------------------------------------ Restore

bool Engine::Restore(std::string_view snapshot) {
  // Precondition: a freshly constructed engine. Violations fail WITHOUT
  // poisoning — nothing was touched, the engine keeps its valid state.
  if (running() || finished_ || poisoned_ || !records_.empty() ||
      !subscriptions_.empty() || input_tuples_ != 0 ||
      dropped_tuples_ != 0 || rejected_tuples_ != 0) {
    last_error_ =
        "restore rejected: engine is not freshly constructed (restore "
        "targets a new Engine with matching Options)";
    return false;
  }

  // Any failure past this point may leave half-restored records or a
  // half-built plan: destroy the plan outright (no TearDownPlan — a
  // teardown would harvest sinks into the poisoned totals), wipe every
  // counter back to the fresh-engine baseline so no partial restore leaks
  // through Snapshot(), and poison the engine.
  const auto fail = [&](std::string msg) {
    built_ = BuiltPlan{};
    det_scheduler_.reset();
    sharded_.reset();
    records_.clear();
    active_count_ = 0;
    subscriptions_.clear();
    next_token_ = 1;
    watermark_ = 0;
    max_streams_ = 0;
    poll_pending_ = 0;
    next_sample_ = 0;
    finished_ = false;
    input_tuples_ = 0;
    dropped_tuples_ = 0;
    rejected_tuples_ = 0;
    rejected_by_stream_.assign(kMaxStreams, 0);
    migrations_ = 0;
    rebuilds_ = 0;
    rebuild_cutoffs_.clear();
    events_accum_ = 0;
    parallel_edge_events_accum_ = 0;
    parallel_edge_hwm_ = 0;
    parallel_stage_busy_.clear();
    shard_steals_accum_ = 0;
    shard_spilled_accum_ = 0;
    cost_accum_ = CostCounters{};
    memory_samples_.clear();
    poisoned_ = true;
    last_error_ = "restore failed: " + std::move(msg);
    return false;
  };

  // Torn-write detection first: the trailing CRC covers everything.
  if (snapshot.size() < sizeof(kCheckpointMagic) + 2 * sizeof(uint32_t)) {
    return fail("snapshot shorter than header plus checksum (" +
                std::to_string(snapshot.size()) + " bytes)");
  }
  const std::string_view body = snapshot.substr(0, snapshot.size() - 4);
  StateReader crc_reader(snapshot.substr(snapshot.size() - 4));
  uint32_t stored_crc = 0;
  crc_reader.U32(&stored_crc);
  if (stored_crc != Crc32(body)) {
    return fail("checksum mismatch (torn write or corrupt snapshot)");
  }

  StateReader r(body);
  for (const char c : kCheckpointMagic) {
    uint8_t m = 0;
    if (!r.U8(&m) || m != static_cast<uint8_t>(c)) {
      return fail("bad magic (not a stateslice checkpoint)");
    }
  }
  uint32_t version = 0;
  if (!r.U32(&version)) return fail("truncated header");
  if (version != kCheckpointVersion) {
    return fail("unsupported snapshot version " + std::to_string(version) +
                " (this build reads version " +
                std::to_string(kCheckpointVersion) + ")");
  }
  STATESLICE_FAULT_POINT("restore.apply");

  // Fingerprint, verified field by field with a named diagnostic.
  {
    uint8_t u8v = 0;
    uint32_t u32v = 0;
    uint64_t u64v = 0;
    int64_t i64v = 0;
    double dv = 0.0;
    const auto mismatch = [&](const char* field) {
      return fail(std::string("options mismatch: ") + field);
    };
    if (!r.U8(&u8v)) return fail("truncated fingerprint");
    if (u8v != static_cast<uint8_t>(options_.strategy)) {
      return mismatch("strategy");
    }
    if (!r.U8(&u8v)) return fail("truncated fingerprint");
    if (u8v != static_cast<uint8_t>(options_.objective)) {
      return mismatch("objective");
    }
    if (!r.U8(&u8v)) return fail("truncated fingerprint");
    if (u8v != (options_.use_lineage ? 1 : 0)) return mismatch("use_lineage");
    if (!r.U8(&u8v)) return fail("truncated fingerprint");
    if (u8v != (options_.collect_results ? 1 : 0)) {
      return mismatch("collect_results");
    }
    if (!r.U8(&u8v)) return fail("truncated fingerprint");
    if (u8v != static_cast<uint8_t>(options_.mode)) return mismatch("mode");
    if (!r.U32(&u32v)) return fail("truncated fingerprint");
    if (u32v != static_cast<uint32_t>(options_.worker_threads)) {
      return mismatch("worker_threads");
    }
    if (!r.U32(&u32v)) return fail("truncated fingerprint");
    const uint32_t resolved_shards =
        options_.mode == ExecutionMode::kSharded
            ? static_cast<uint32_t>(ShardCount())
            : 0;
    if (u32v != resolved_shards) return mismatch("shard_count (resolved)");
    if (!r.U64(&u64v)) return fail("truncated fingerprint");
    if (u64v != options_.parallel_edge_capacity) {
      return mismatch("parallel_edge_capacity");
    }
    if (!r.U8(&u8v)) return fail("truncated fingerprint");
    if (u8v != static_cast<uint8_t>(options_.condition.kind)) {
      return mismatch("condition.kind");
    }
    if (!r.I64(&i64v)) return fail("truncated fingerprint");
    if (i64v != options_.condition.mod) return mismatch("condition.mod");
    if (!r.I64(&i64v)) return fail("truncated fingerprint");
    if (i64v != options_.condition.band) return mismatch("condition.band");
    if (!r.I64(&i64v)) return fail("truncated fingerprint");
    if (i64v != options_.sample_interval) return mismatch("sample_interval");
    if (!r.U8(&u8v)) return fail("truncated fingerprint");
    if (u8v != (options_.auto_drain ? 1 : 0)) return mismatch("auto_drain");
    if (!r.U32(&u32v)) return fail("truncated fingerprint");
    if (u32v != static_cast<uint32_t>(options_.run_length)) {
      return mismatch("run_length");
    }
    const double* params[] = {
        &options_.cost_params.lambda_a, &options_.cost_params.lambda_b,
        &options_.cost_params.s1, &options_.cost_params.c_sys,
        &options_.cost_params.tuple_kb};
    for (const double* param : params) {
      if (!r.Double(&dv)) return fail("truncated fingerprint");
      if (dv != *param) return mismatch("cost_params");
    }
  }

  // Scalars — decoded into locals and applied *after* the records are
  // re-registered: RegisterQuery consults finished_/input counts/watermark,
  // and must see the fresh-engine values while replaying registrations.
  uint64_t next_token = 0, input_tuples = 0, dropped_tuples = 0,
           rejected_tuples = 0, migrations = 0, rebuilds = 0,
           poll_pending = 0;
  int64_t watermark = 0, next_sample = 0;
  uint8_t finished = 0;
  std::vector<uint64_t> rejected_by_stream(kMaxStreams, 0);
  std::vector<TimePoint> rebuild_cutoffs;
  if (!r.U64(&next_token) || !r.I64(&watermark) || !r.I64(&next_sample) ||
      !r.U8(&finished)) {
    return fail("truncated scalar section");
  }
  if (finished > 1) return fail("corrupt scalar section");
  if (!r.U64(&input_tuples) || !r.U64(&dropped_tuples) ||
      !r.U64(&rejected_tuples)) {
    return fail("truncated scalar section");
  }
  for (size_t s = 0; s < kMaxStreams; ++s) {
    if (!r.U64(&rejected_by_stream[s])) {
      return fail("truncated scalar section");
    }
  }
  uint32_t cutoff_count = 0;
  if (!r.U64(&migrations) || !r.U64(&rebuilds) ||
      !ReadCount(&r, &cutoff_count)) {
    return fail("truncated scalar section");
  }
  rebuild_cutoffs.reserve(cutoff_count);
  for (uint32_t i = 0; i < cutoff_count; ++i) {
    int64_t cutoff = 0;
    if (!r.I64(&cutoff)) return fail("truncated scalar section");
    rebuild_cutoffs.push_back(cutoff);
  }
  if (!r.U64(&poll_pending)) return fail("truncated scalar section");

  // Accumulators. The engine is idle (fresh, no workers), so the caller
  // thread trivially holds the surgery capability the members are guarded
  // by.
  surgery_cap_.Assert();
  uint64_t events = 0, edge_events = 0, edge_hwm = 0, steals = 0,
           spilled = 0;
  uint32_t busy_count = 0;
  if (!r.U64(&events) || !r.U64(&edge_events) || !r.U64(&edge_hwm) ||
      !ReadCount(&r, &busy_count)) {
    return fail("truncated accumulator section");
  }
  std::vector<double> stage_busy(busy_count, 0.0);
  for (uint32_t i = 0; i < busy_count; ++i) {
    if (!r.Double(&stage_busy[i])) {
      return fail("truncated accumulator section");
    }
  }
  if (!r.U64(&steals) || !r.U64(&spilled)) {
    return fail("truncated accumulator section");
  }
  CostCounters cost;
  if (!ReadCost(&r, &cost)) return fail("truncated accumulator section");
  uint32_t sample_count = 0;
  if (!ReadCount(&r, &sample_count)) {
    return fail("truncated accumulator section");
  }
  std::vector<MemorySample> samples;
  samples.reserve(sample_count);
  for (uint32_t i = 0; i < sample_count; ++i) {
    MemorySample sample;
    uint64_t state = 0, queue = 0;
    if (!r.I64(&sample.time) || !r.U64(&state) || !r.U64(&queue)) {
      return fail("truncated accumulator section");
    }
    sample.state_tuples = static_cast<size_t>(state);
    sample.queue_events = static_cast<size_t>(queue);
    samples.push_back(sample);
  }

  // Records: active queries replay through RegisterQuery — the normal
  // validation path, so a corrupt stored query is rejected gracefully
  // instead of tripping builder CHECKs — then the fresh record's token and
  // cutoffs are overridden from the snapshot. Inactive records only carry
  // totals and are appended directly.
  uint32_t record_count = 0;
  if (!ReadCount(&r, &record_count)) return fail("truncated record section");
  std::vector<std::pair<uint64_t, int64_t>> gate_cutoffs;  // token, cutoff
  for (uint32_t i = 0; i < record_count; ++i) {
    uint64_t token = 0, delivered = 0;
    std::string name, cql;
    int64_t results_from = 0, gate_cutoff = -1;
    uint8_t active = 0;
    uint32_t collected_count = 0;
    if (!r.U64(&token) || !r.Str(&name) || !r.Str(&cql) ||
        !r.I64(&results_from) || !r.U8(&active) || active > 1 ||
        !r.U64(&delivered) || !ReadCount(&r, &collected_count)) {
      return fail("truncated record section");
    }
    std::map<std::string, int> collected;
    for (uint32_t c = 0; c < collected_count; ++c) {
      std::string key;
      uint32_t count = 0;
      if (!r.Str(&key) || !r.U32(&count)) {
        return fail("truncated record section");
      }
      collected[key] = static_cast<int>(count);
    }
    if (!r.I64(&gate_cutoff) ||
        (gate_cutoff != -1 && gate_cutoff <= 0)) {
      return fail("truncated record section");
    }
    if (token == 0) return fail("record with invalid token 0");
    if (FindRecord(token) != nullptr) {
      return fail("duplicate record token " + std::to_string(token));
    }
    if (active != 0) {
      const ParseResult parsed = ParseQuery(cql);
      if (!parsed.ok) {
        return fail("stored query \"" + name +
                    "\" failed to parse: " + parsed.error);
      }
      ContinuousQuery query = parsed.query;
      query.name = name;
      const QueryHandle handle = RegisterQuery(query);
      if (!handle.valid()) {
        return fail("stored query \"" + name +
                    "\" was rejected: " + last_error_);
      }
      QueryRecord& rec = records_.back();
      rec.token = token;
      rec.results_from = results_from;
      rec.delivered = delivered;
      rec.collected = std::move(collected);
      if (gate_cutoff > 0) gate_cutoffs.emplace_back(token, gate_cutoff);
    } else {
      if (gate_cutoff != -1) {
        return fail("inactive record " + std::to_string(token) +
                    " carries a gate cutoff");
      }
      QueryRecord rec;
      rec.token = token;
      rec.query.name = name;
      rec.results_from = results_from;
      rec.active = false;
      rec.delivered = delivered;
      rec.collected = std::move(collected);
      records_.push_back(std::move(rec));
    }
  }

  // Apply the scalars and accumulators now that the registrations are
  // replayed (they mutated next_token_ and consulted the watermark).
  next_token_ = next_token;
  watermark_ = watermark;
  next_sample_ = next_sample;
  input_tuples_ = input_tuples;
  dropped_tuples_ = dropped_tuples;
  rejected_tuples_ = rejected_tuples;
  rejected_by_stream_ = std::move(rejected_by_stream);
  migrations_ = migrations;
  rebuilds_ = rebuilds;
  rebuild_cutoffs_ = std::move(rebuild_cutoffs);
  poll_pending_ = poll_pending;
  events_accum_ = events;
  parallel_edge_events_accum_ = edge_events;
  parallel_edge_hwm_ = static_cast<size_t>(edge_hwm);
  parallel_stage_busy_ = std::move(stage_busy);
  shard_steals_accum_ = steals;
  shard_spilled_accum_ = spilled;
  cost_accum_ = cost;
  memory_samples_ = std::move(samples);

  // Plan section.
  uint8_t has_plan = 0;
  if (!r.U8(&has_plan) || has_plan > 1) {
    return fail("truncated plan section");
  }
  if (has_plan != 0) {
    if (finished != 0) return fail("plan present in a finished snapshot");
    uint8_t is_sharded = 0, num_levels = 0, has_chain = 0;
    if (!r.U8(&is_sharded) || !r.U8(&num_levels) || !r.U8(&has_chain) ||
        is_sharded > 1 || has_chain > 1 || num_levels == 0) {
      return fail("truncated plan section");
    }
    if ((is_sharded != 0) !=
        (options_.mode == ExecutionMode::kSharded)) {
      return fail("plan sharding flag contradicts the execution mode");
    }
    if (has_chain != 0 &&
        (is_sharded != 0 ||
         options_.strategy != SharingStrategy::kStateSlice ||
         num_levels != 1)) {
      return fail("chain section present for a plan kind that has none");
    }

    // Dense ids in records order (provably the checkpointed assignment;
    // see the file comment).
    std::vector<ContinuousQuery> queries;
    for (QueryRecord& rec : records_) {
      if (!rec.active) continue;
      rec.query.id = static_cast<int>(queries.size());
      queries.push_back(rec.query);
    }
    if (queries.empty()) return fail("plan section with no active queries");
    std::unordered_map<uint64_t, int> token_qid;
    for (const QueryRecord& rec : records_) {
      if (rec.active) token_qid.emplace(rec.token, rec.query.id);
    }

    // Decode + validate the serialized chain before handing it to the
    // builder (the builder CHECK-crashes on malformed partitions; corrupt
    // snapshots must stay on the graceful path).
    ChainPlan chain;
    if (has_chain != 0) {
      uint8_t kind = 0;
      uint32_t boundary_count = 0;
      if (!r.U8(&kind) || kind > 1 || !ReadCount(&r, &boundary_count) ||
          boundary_count == 0) {
        return fail("corrupt chain spec");
      }
      chain.spec.kind = static_cast<WindowKind>(kind);
      int64_t prev = 0;
      for (uint32_t i = 0; i < boundary_count; ++i) {
        int64_t b = 0;
        if (!r.I64(&b) || b <= prev) return fail("corrupt chain spec");
        chain.spec.boundaries.push_back(b);
        prev = b;
      }
      uint32_t end_count = 0;
      if (!ReadCount(&r, &end_count) || end_count == 0) {
        return fail("corrupt chain partition");
      }
      int prev_end = -1;
      for (uint32_t i = 0; i < end_count; ++i) {
        uint32_t e = 0;
        if (!r.U32(&e) || static_cast<int>(e) <= prev_end ||
            e >= boundary_count) {
          return fail("corrupt chain partition");
        }
        chain.partition.slice_end_boundaries.push_back(static_cast<int>(e));
        prev_end = static_cast<int>(e);
      }
      if (chain.partition.slice_end_boundaries.back() !=
          static_cast<int>(boundary_count) - 1) {
        return fail("corrupt chain partition");
      }
      // Re-derive the query->boundary registration for the *live* query
      // set (removed queries left their boundaries behind; those simply
      // carry no registration).
      chain.spec.query_boundary.assign(queries.size(), -1);
      chain.spec.queries_at_boundary.assign(boundary_count, {});
      for (const ContinuousQuery& q : queries) {
        if (q.num_streams() != 2) {
          return fail("chain snapshot with a multi-way query");
        }
        if (q.window.kind != chain.spec.kind) {
          return fail("query \"" + q.name +
                      "\" window kind contradicts the chain");
        }
        int k = -1;
        for (size_t b = 0; b < chain.spec.boundaries.size(); ++b) {
          if (chain.spec.boundaries[b] == q.window.extent) {
            k = static_cast<int>(b);
            break;
          }
        }
        if (k < 0) {
          return fail("query \"" + q.name +
                      "\" window is not a chain boundary");
        }
        chain.spec.query_boundary[q.id] = k;
        chain.spec.queries_at_boundary[static_cast<size_t>(k)].push_back(
            q.id);
      }
    }

    // Build the plan skeleton — exactly BuildPlan's recipe, except the
    // single-level chain comes from the snapshot and workers stay parked
    // until the states are injected.
    BuildOptions bopt;
    bopt.condition = options_.condition;
    bopt.collect_results = options_.collect_results;
    bopt.use_lineage = options_.use_lineage &&
                       options_.strategy == SharingStrategy::kStateSlice;
    JoinTreePlan tree;
    if (options_.strategy == SharingStrategy::kStateSlice &&
        has_chain == 0) {
      tree = options_.objective == ChainObjective::kMemOpt
                 ? BuildMemOptTree(queries)
                 : BuildCpuOptTree(queries, options_.cost_params);
    }
    const auto build_one = [&](const BuildOptions& opt) -> BuiltPlan {
      switch (options_.strategy) {
        case SharingStrategy::kStateSlice:
          return has_chain != 0 ? BuildStateSlicePlan(queries, chain, opt)
                                : BuildStateSlicePlan(queries, tree, opt);
        case SharingStrategy::kPullUp:
          return BuildPullUpPlan(queries, opt);
        case SharingStrategy::kPushDown:
          return BuildPushDownPlan(queries, opt);
        case SharingStrategy::kUnshared:
          return BuildUnsharedPlans(queries, opt);
      }
      SLICE_CHECK(false);  // unreachable: exhaustive switch
      return BuiltPlan{};
    };
    uint32_t plan_count = 0;
    if (!ReadCount(&r, &plan_count)) return fail("truncated plan section");
    if (is_sharded != 0) {
      BuildOptions shard_opt = bopt;
      shard_opt.collect_results = false;
      const int shards = ShardCount();
      last_shard_count_ = shards;
      if (plan_count != static_cast<uint32_t>(shards) + 1) {
        return fail("plan count mismatch for " + std::to_string(shards) +
                    " shards");
      }
      if (!gate_cutoffs.empty()) {
        return fail("gate cutoff present in a sharded snapshot");
      }
      sharded_ = std::make_unique<ShardedPlanSet>(BuildShardedPlanSet(
          shards, queries, bopt, [&] { return build_one(shard_opt); }));
      for (BuiltPlan& shard : sharded_->shards) {
        std::string error;
        if (!ReadPlanState(&r, watermark_, token_qid, &shard, &error)) {
          return fail(error);
        }
      }
      std::string error;
      if (!ReadPlanState(&r, watermark_, token_qid, &sharded_->merge,
                         &error)) {
        return fail(error);
      }
    } else {
      if (plan_count != 1) return fail("plan count mismatch");
      built_ = build_one(bopt);
      if (built_.num_levels != static_cast<int>(num_levels)) {
        return fail("tree depth mismatch: snapshot has " +
                    std::to_string(num_levels) + " levels, rebuild has " +
                    std::to_string(built_.num_levels));
      }
      std::string error;
      if (!ReadPlanState(&r, watermark_, token_qid, &built_, &error)) {
        return fail(error);
      }
      // Retrofit migration-created fresh-start gates with the migration
      // recipe: move the sink edges behind a new ResultTimeGate fed by the
      // old terminal.
      for (const auto& [token, cutoff] : gate_cutoffs) {
        if (built_.slices.empty() || built_.num_levels != 1) {
          return fail("gate cutoff on a plan kind that cannot carry one");
        }
        const QueryRecord* rec = FindRecord(token);
        SLICE_CHECK(rec != nullptr && rec->active);
        const int qid = rec->query.id;
        QueryPlan* plan = built_.plan.get();
        // Freshly built, workers not yet started: structure is ours.
        plan->AssertSurgeryExclusive();
        SLICE_CHECK(!built_.sink_edges[qid].empty());
        const SinkEdge proto = built_.sink_edges[qid].front();
        auto* gate = plan->InsertOperatorWhileRunning(
            std::make_unique<ResultTimeGate>(rec->query.name + ".fresh",
                                             cutoff));
        for (SinkEdge& edge : built_.sink_edges[qid]) {
          plan->MoveQueueProducer(edge.queue, edge.producer,
                                  edge.producer_port, gate,
                                  ResultTimeGate::kOutPort);
          edge.producer = gate;
          edge.producer_port = ResultTimeGate::kOutPort;
        }
        EventQueue* gq = plan->ConnectWhileRunning(
            proto.producer, proto.producer_port, gate, 0);
        built_.result_gates[qid] = gate;
        if (built_.merges[qid] == nullptr) {
          for (ResultEdge& edge : built_.result_edges) {
            if (edge.query_id == qid && edge.merge == nullptr &&
                edge.queue == nullptr) {
              edge.queue = gq;
              break;
            }
          }
        }
      }
      if (has_chain != 0) ValidateBuiltChain(built_);
      if (options_.mode == ExecutionMode::kDeterministic) {
        det_scheduler_ = std::make_unique<RoundRobinScheduler>(
            built_.plan.get(),
            options_.run_length > 0 ? options_.run_length : 8);
      }
    }
  } else if (!gate_cutoffs.empty()) {
    return fail("gate cutoff present without a plan section");
  }

  if (!r.AtEnd()) {
    return fail("trailing garbage after a complete snapshot (" +
                std::to_string(r.remaining()) + " bytes)");
  }
  finished_ = finished != 0;

  // Workers last: everything above mutated plan structure and operator
  // state, which requires the quiescent, single-thread view.
  if (running() && !finished_) {
    if (options_.mode == ExecutionMode::kParallel) StartParallel();
    if (options_.mode == ExecutionMode::kSharded) StartSharded();
  }
  return true;
}

// ------------------------------------------------------ CheckPlanInvariants

void Engine::CheckPlanInvariants() {
  if (!running()) return;
  const bool had_workers =
      par_scheduler_ != nullptr || shard_scheduler_ != nullptr;
  if (par_scheduler_ != nullptr) PauseParallel();
  if (shard_scheduler_ != nullptr) PauseSharded();
  const auto check_plan = [](const BuiltPlan& built) {
    if (!built.slices.empty() && built.num_levels == 1) {
      // Single-level chain: full metadata + per-state index validation.
      ValidateBuiltChain(built, /*check_indexes=*/true);
      return;
    }
    for (const std::unique_ptr<Operator>& op : built.plan->operators()) {
      if (auto* sliced = dynamic_cast<SlicedWindowJoin*>(op.get())) {
        sliced->state_a().CheckIndexConsistency();
        sliced->state_b().CheckIndexConsistency();
        sliced->composite_state().CheckIndexConsistency();
      } else if (auto* sliding =
                     dynamic_cast<SlidingWindowJoin*>(op.get())) {
        sliding->state_a().CheckIndexConsistency();
        sliding->state_b().CheckIndexConsistency();
      }
    }
  };
  if (sharded_ != nullptr) {
    for (const BuiltPlan& shard : sharded_->shards) check_plan(shard);
    check_plan(sharded_->merge);
  } else {
    check_plan(built_);
  }
  if (had_workers) ResumeAfterSurgery();
}

}  // namespace stateslice
