// Umbrella header: the full public API of the stateslice library.
//
// stateslice is a C++20 reproduction of "State-Slice: New Paradigm of
// Multi-query Optimization of Window-based Stream Queries" (VLDB 2006):
// a deterministic stream-operator runtime, the sliced window join chain,
// the Mem-Opt / CPU-Opt chain builders, the baseline sharing strategies,
// the analytic cost model, and online chain migration — behind a
// long-lived streaming Engine facade.
//
// The API has two layers:
//
//  1. Engine facade (src/api) — the session API most callers want: a
//     stateslice::Engine owns the shared plan, scheduler and metrics for
//     its whole lifetime; queries register and unregister online (routed
//     through ChainMigrator when the chain allows, drain-rebuild
//     otherwise), tuples arrive by Push, and results leave through
//     counting sinks or Subscribe callbacks.
//
//       Engine engine({.strategy = SharingStrategy::kStateSlice});
//       QueryHandle q = engine.RegisterQuery(
//           "SELECT A.* FROM A A, B B WHERE A.key = B.key WINDOW 10 s");
//       engine.Subscribe(q, [](const JoinResult& r) { /* deliver */ });
//       engine.Push(StreamSide::kA, tuple);   // ... keep pushing
//       engine.Finish();
//       RunStats stats = engine.Snapshot();
//
//  2. Low-level builders (src/core, src/runtime) — the batch-shaped
//     layer the Engine is made of, kept public for experiments that wire
//     plans by hand: BuildMemOptChain/BuildCpuOptChain + the
//     Build*Plan() strategy builders + StreamSource/Executor/sinks, and
//     ChainMigrator for manual Section 5.3 surgery.
//
//       ChainPlan chain = BuildMemOptChain(queries);
//       BuiltPlan built = BuildStateSlicePlan(queries, chain, {...});
//       StreamSource a("A", w.stream_a), b("B", w.stream_b);
//       Executor exec(built.plan.get(),
//                     {{&a, built.entry}, {&b, built.entry}});
//       for (auto* sink : built.sinks) exec.AddSink(sink);
//       RunStats stats = exec.Run();
#ifndef STATESLICE_STATESLICE_H_
#define STATESLICE_STATESLICE_H_

// stateslice requires C++20: e.g. operators/window_spec.h uses a defaulted
// `friend operator==`, which C++17 compilers reject with a cascade of
// template errors far from the real cause. Fail fast with a clear message
// instead. MSVC freezes __cplusplus at 199711L unless /Zc:__cplusplus is
// passed, so accept its _MSVC_LANG mirror too.
#if defined(_MSVC_LANG)
#if _MSVC_LANG < 202002L
#error "stateslice requires C++20 or newer; compile with /std:c++20"
#endif
#elif !defined(__cplusplus) || __cplusplus < 202002L
#error "stateslice requires C++20 or newer; compile with -std=c++20"
#endif

#include "src/api/engine.h"
#include "src/api/query_handle.h"
#include "src/api/subscription.h"
#include "src/common/check.h"
#include "src/common/cost_counters.h"
#include "src/common/predicate.h"
#include "src/common/random.h"
#include "src/common/timestamp.h"
#include "src/common/tuple.h"
#include "src/core/chain_builder.h"
#include "src/core/chain_spec.h"
#include "src/core/cost_model.h"
#include "src/core/cpu_opt.h"
#include "src/core/migration.h"
#include "src/core/selection_pushdown.h"
#include "src/core/shared_plan_builder.h"
#include "src/operators/join_condition.h"
#include "src/operators/join_state.h"
#include "src/operators/multiway.h"
#include "src/operators/router.h"
#include "src/operators/selection.h"
#include "src/operators/sliced_window_join.h"
#include "src/operators/sliding_window_join.h"
#include "src/operators/split.h"
#include "src/operators/union_merge.h"
#include "src/operators/window_spec.h"
#include "src/query/parser.h"
#include "src/query/query.h"
#include "src/query/workload.h"
#include "src/runtime/execution_mode.h"
#include "src/runtime/executor.h"
#include "src/runtime/metrics.h"
#include "src/runtime/operator.h"
#include "src/runtime/parallel_scheduler.h"
#include "src/runtime/plan.h"
#include "src/runtime/queue.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/spsc_queue.h"
#include "src/runtime/sink.h"
#include "src/runtime/source.h"

#endif  // STATESLICE_STATESLICE_H_
