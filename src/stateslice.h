// Umbrella header: the full public API of the stateslice library.
//
// stateslice is a C++20 reproduction of "State-Slice: New Paradigm of
// Multi-query Optimization of Window-based Stream Queries" (VLDB 2006):
// a deterministic stream-operator runtime, the sliced window join chain,
// the Mem-Opt / CPU-Opt chain builders, the baseline sharing strategies,
// the analytic cost model, and online chain migration.
//
// Quick start:
//
//   #include "src/stateslice.h"
//   using namespace stateslice;
//
//   std::vector<ContinuousQuery> queries = ...;        // or ParseQuery()
//   ChainPlan chain = BuildMemOptChain(queries);
//   BuildOptions opt{.condition = JoinCondition::EquiKey()};
//   BuiltPlan built = BuildStateSlicePlan(queries, chain, opt);
//
//   Workload w = GenerateWorkload({...});
//   StreamSource a("A", w.stream_a), b("B", w.stream_b);
//   Executor exec(built.plan.get(),
//                 {{&a, built.entry}, {&b, built.entry}});
//   for (auto* sink : built.sinks) exec.AddSink(sink);
//   RunStats stats = exec.Run();
#ifndef STATESLICE_STATESLICE_H_
#define STATESLICE_STATESLICE_H_

// stateslice requires C++20: e.g. operators/window_spec.h uses a defaulted
// `friend operator==`, which C++17 compilers reject with a cascade of
// template errors far from the real cause. Fail fast with a clear message
// instead. MSVC freezes __cplusplus at 199711L unless /Zc:__cplusplus is
// passed, so accept its _MSVC_LANG mirror too.
#if defined(_MSVC_LANG)
#if _MSVC_LANG < 202002L
#error "stateslice requires C++20 or newer; compile with /std:c++20"
#endif
#elif !defined(__cplusplus) || __cplusplus < 202002L
#error "stateslice requires C++20 or newer; compile with -std=c++20"
#endif

#include "src/common/check.h"
#include "src/common/cost_counters.h"
#include "src/common/predicate.h"
#include "src/common/random.h"
#include "src/common/timestamp.h"
#include "src/common/tuple.h"
#include "src/core/chain_builder.h"
#include "src/core/chain_spec.h"
#include "src/core/cost_model.h"
#include "src/core/cpu_opt.h"
#include "src/core/migration.h"
#include "src/core/selection_pushdown.h"
#include "src/core/shared_plan_builder.h"
#include "src/operators/join_condition.h"
#include "src/operators/join_state.h"
#include "src/operators/router.h"
#include "src/operators/selection.h"
#include "src/operators/sliced_window_join.h"
#include "src/operators/sliding_window_join.h"
#include "src/operators/split.h"
#include "src/operators/union_merge.h"
#include "src/operators/window_spec.h"
#include "src/query/parser.h"
#include "src/query/query.h"
#include "src/query/workload.h"
#include "src/runtime/execution_mode.h"
#include "src/runtime/executor.h"
#include "src/runtime/metrics.h"
#include "src/runtime/operator.h"
#include "src/runtime/parallel_scheduler.h"
#include "src/runtime/plan.h"
#include "src/runtime/queue.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/spsc_queue.h"
#include "src/runtime/sink.h"
#include "src/runtime/source.h"

#endif  // STATESLICE_STATESLICE_H_
