#include "src/query/parser.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace stateslice {
namespace {

// ------------------------------------------------------------- tokenizer

struct Token {
  std::string text;   // original spelling
  std::string lower;  // lowercase for keyword matching
};

bool IsSymbolChar(char c) {
  return c == ',' || c == '.' || c == '=' || c == '<' || c == '>' ||
         c == '*';
}

std::vector<Token> Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto push = [&tokens](std::string word) {
    Token t;
    t.lower.resize(word.size());
    std::transform(word.begin(), word.end(), t.lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    t.text = std::move(word);
    tokens.push_back(std::move(t));
  };
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '>' || c == '<') {  // possibly >= / <=
      if (i + 1 < text.size() && text[i + 1] == '=') {
        push(text.substr(i, 2));
        i += 2;
      } else {
        push(std::string(1, c));
        ++i;
      }
      continue;
    }
    // Numeric literals keep their decimal point ("0.7" is one token even
    // though '.' otherwise separates alias from attribute).
    const bool starts_number =
        std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])));
    if (starts_number) {
      size_t j = i + (c == '-' ? 1 : 0);
      while (j < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[j]))) {
        ++j;
      }
      if (j < text.size() && text[j] == '.' && j + 1 < text.size() &&
          std::isdigit(static_cast<unsigned char>(text[j + 1]))) {
        ++j;
        while (j < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[j]))) {
          ++j;
        }
      }
      push(text.substr(i, j - i));
      i = j;
      continue;
    }
    if (IsSymbolChar(c)) {
      push(std::string(1, c));
      ++i;
      continue;
    }
    size_t j = i;
    while (j < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[j])) &&
           !IsSymbolChar(text[j]) && text[j] != '>' && text[j] != '<') {
      ++j;
    }
    push(text.substr(i, j - i));
    i = j;
  }
  return tokens;
}

// --------------------------------------------------------------- parser

class Parser {
 public:
  explicit Parser(const std::string& text) : tokens_(Tokenize(text)) {}

  ParseResult Run() {
    ParseResult result;
    if (!ParseInto(&result.query, &result.error)) {
      result.ok = false;
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  bool ParseInto(ContinuousQuery* query, std::string* error) {
    if (!ExpectKeyword("select", error)) return false;
    // SELECT list: accept anything up to FROM.
    while (!AtEnd() && Peek().lower != "from") Advance();
    if (!ExpectKeyword("from", error)) return false;

    if (!ParseStreamRef(&stream_a_, &alias_a_, error)) return false;
    if (!ExpectSymbol(",", error)) return false;
    if (!ParseStreamRef(&stream_b_, &alias_b_, error)) return false;

    if (!ExpectKeyword("where", error)) return false;
    if (!ParseJoinCondition(error)) return false;
    while (!AtEnd() && Peek().lower == "and") {
      Advance();
      if (!ParseFilter(query, error)) return false;
    }

    if (!ExpectKeyword("window", error)) return false;
    if (!ParseWindow(query, error)) return false;
    if (!AtEnd()) return Fail("trailing input after WINDOW clause", error);
    return true;
  }

  bool ParseStreamRef(std::string* stream, std::string* alias,
                      std::string* error) {
    if (AtEnd()) return Fail("expected stream name", error);
    *stream = Peek().text;
    Advance();
    // Optional alias (an identifier that is not a separator/keyword).
    if (!AtEnd() && Peek().lower != "," && Peek().lower != "where") {
      *alias = Peek().text;
      Advance();
    } else {
      *alias = *stream;
    }
    return true;
  }

  bool ParseJoinCondition(std::string* error) {
    std::string lhs_alias, lhs_attr, rhs_alias, rhs_attr;
    if (!ParseQualified(&lhs_alias, &lhs_attr, error)) return false;
    if (!ExpectSymbol("=", error)) return false;
    if (!ParseQualified(&rhs_alias, &rhs_attr, error)) return false;
    const bool lhs_known = SideOf(lhs_alias) != 0;
    const bool rhs_known = SideOf(rhs_alias) != 0;
    if (!lhs_known || !rhs_known || SideOf(lhs_alias) == SideOf(rhs_alias)) {
      return Fail("join condition must reference both streams", error);
    }
    return true;
  }

  bool ParseFilter(ContinuousQuery* query, std::string* error) {
    std::string alias, attr;
    if (!ParseQualified(&alias, &attr, error)) return false;
    if (AtEnd()) return Fail("expected comparison operator", error);
    const std::string op = Peek().lower;
    if (op != ">" && op != "<" && op != ">=" && op != "<=") {
      return Fail("unsupported comparison '" + Peek().text + "'", error);
    }
    Advance();
    double threshold = 0;
    if (!ParseNumber(&threshold, error)) return false;
    Predicate pred = (op == ">" || op == ">=")
                         ? Predicate::GreaterThan(threshold)
                         : Predicate::LessThan(threshold);
    const int side = SideOf(alias);
    if (side == 0) {
      return Fail("filter references unknown alias '" + alias + "'", error);
    }
    if (side == 1) {
      query->selection_a = Predicate::And(query->selection_a, pred);
    } else {
      query->selection_b = Predicate::And(query->selection_b, pred);
    }
    return true;
  }

  bool ParseWindow(ContinuousQuery* query, std::string* error) {
    double magnitude = 0;
    if (!ParseNumber(&magnitude, error)) return false;
    std::string unit = "s";
    if (!AtEnd()) {
      unit = Peek().lower;
      Advance();
    }
    if (unit == "ms" || unit == "millis" || unit == "milliseconds") {
      query->window = WindowSpec::TimeSeconds(magnitude / 1000.0);
    } else if (unit == "s" || unit == "sec" || unit == "secs" ||
               unit == "second" || unit == "seconds") {
      query->window = WindowSpec::TimeSeconds(magnitude);
    } else if (unit == "min" || unit == "mins" || unit == "minute" ||
               unit == "minutes") {
      query->window = WindowSpec::TimeSeconds(magnitude * 60.0);
    } else if (unit == "h" || unit == "hr" || unit == "hrs" ||
               unit == "hour" || unit == "hours") {
      query->window = WindowSpec::TimeSeconds(magnitude * 3600.0);
    } else if (unit == "rows" || unit == "tuples") {
      query->window = WindowSpec::Count(static_cast<int64_t>(magnitude));
    } else {
      return Fail("unknown window unit '" + unit + "'", error);
    }
    if (query->window.extent <= 0) {
      // Covers literal zero/negative magnitudes and positive magnitudes
      // that round to zero ticks/rows (e.g. "WINDOW 0.4 rows"). A malformed
      // window is a user error, so it surfaces as ok=false, never a CHECK.
      return Fail("window must be positive", error);
    }
    return true;
  }

  bool ParseQualified(std::string* alias, std::string* attr,
                      std::string* error) {
    if (AtEnd()) return Fail("expected qualified attribute", error);
    *alias = Peek().text;
    Advance();
    if (!ExpectSymbol(".", error)) return false;
    if (AtEnd()) return Fail("expected attribute after '.'", error);
    *attr = Peek().text;
    Advance();
    return true;
  }

  bool ParseNumber(double* out, std::string* error) {
    if (AtEnd()) return Fail("expected number", error);
    const std::string& text = Peek().text;
    char* end = nullptr;
    *out = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0') {
      return Fail("expected number, got '" + text + "'", error);
    }
    Advance();
    return true;
  }

  // 1 = stream A, 2 = stream B, 0 = unknown.
  int SideOf(const std::string& alias) const {
    if (alias == alias_a_ || alias == stream_a_) return 1;
    if (alias == alias_b_ || alias == stream_b_) return 2;
    return 0;
  }

  bool ExpectKeyword(const std::string& kw, std::string* error) {
    if (AtEnd() || Peek().lower != kw) {
      return Fail("expected keyword '" + kw + "'", error);
    }
    Advance();
    return true;
  }

  bool ExpectSymbol(const std::string& sym, std::string* error) {
    if (AtEnd() || Peek().lower != sym) {
      return Fail("expected '" + sym + "'", error);
    }
    Advance();
    return true;
  }

  bool Fail(const std::string& message, std::string* error) const {
    std::ostringstream out;
    out << message << " (at token " << pos_ << ")";
    *error = out.str();
    return false;
  }

  bool AtEnd() const { return pos_ >= tokens_.size(); }
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::string stream_a_, alias_a_, stream_b_, alias_b_;
};

}  // namespace

ParseResult ParseQuery(const std::string& text) {
  return Parser(text).Run();
}

}  // namespace stateslice
