#include "src/query/parser.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "src/common/tuple.h"

namespace stateslice {
namespace {

// ------------------------------------------------------------- tokenizer

struct Token {
  std::string text;   // original spelling
  std::string lower;  // lowercase for keyword matching
};

bool IsSymbolChar(char c) {
  return c == ',' || c == '.' || c == '=' || c == '<' || c == '>' ||
         c == '*';
}

std::vector<Token> Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto push = [&tokens](std::string word) {
    Token t;
    t.lower.resize(word.size());
    std::transform(word.begin(), word.end(), t.lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    t.text = std::move(word);
    tokens.push_back(std::move(t));
  };
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '>' || c == '<') {  // possibly >= / <=
      if (i + 1 < text.size() && text[i + 1] == '=') {
        push(text.substr(i, 2));
        i += 2;
      } else {
        push(std::string(1, c));
        ++i;
      }
      continue;
    }
    // Numeric literals keep their decimal point ("0.7" is one token even
    // though '.' otherwise separates alias from attribute).
    const bool starts_number =
        std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])));
    if (starts_number) {
      size_t j = i + (c == '-' ? 1 : 0);
      while (j < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[j]))) {
        ++j;
      }
      if (j < text.size() && text[j] == '.' && j + 1 < text.size() &&
          std::isdigit(static_cast<unsigned char>(text[j + 1]))) {
        ++j;
        while (j < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[j]))) {
          ++j;
        }
      }
      push(text.substr(i, j - i));
      i = j;
      continue;
    }
    if (IsSymbolChar(c)) {
      push(std::string(1, c));
      ++i;
      continue;
    }
    size_t j = i;
    while (j < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[j])) &&
           !IsSymbolChar(text[j]) && text[j] != '>' && text[j] != '<') {
      ++j;
    }
    push(text.substr(i, j - i));
    i = j;
  }
  return tokens;
}

// --------------------------------------------------------------- parser

class Parser {
 public:
  explicit Parser(const std::string& text) : tokens_(Tokenize(text)) {}

  ParseResult Run() {
    ParseResult result;
    if (!ParseInto(&result.query, &result.error)) {
      result.ok = false;
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  struct StreamRef {
    std::string stream;
    std::string alias;
  };

  bool ParseInto(ContinuousQuery* query, std::string* error) {
    if (!ExpectKeyword("select", error)) return false;
    // SELECT list: accept anything up to FROM.
    while (!AtEnd() && Peek().lower != "from") Advance();
    if (!ExpectKeyword("from", error)) return false;

    // FROM list: 2..kMaxStreams comma-separated stream references. The
    // k-th entry binds stream id k (streams are positional).
    StreamRef ref;
    if (!ParseStreamRef(&ref, error)) return false;
    streams_.push_back(ref);
    while (!AtEnd() && Peek().lower == ",") {
      Advance();
      if (!ParseStreamRef(&ref, error)) return false;
      streams_.push_back(ref);
    }
    if (streams_.size() < 2) {
      return Fail("FROM list needs at least two streams", error);
    }
    if (streams_.size() > static_cast<size_t>(kMaxStreams)) {
      return Fail("FROM list exceeds the " + std::to_string(kMaxStreams) +
                      "-stream limit",
                  error);
    }
    for (size_t i = 0; i < streams_.size(); ++i) {
      for (size_t j = 0; j < i; ++j) {
        if (streams_[i].stream == streams_[j].stream) {
          return Fail("duplicate stream name '" + streams_[i].stream +
                          "' in FROM list",
                      error);
        }
        if (streams_[i].alias == streams_[j].alias) {
          return Fail("duplicate stream alias '" + streams_[i].alias +
                          "' in FROM list",
                      error);
        }
        // An alias shadowing another entry's stream name (or vice versa)
        // makes qualified references ambiguous: IndexOf would silently
        // bind them by FROM order.
        if (streams_[i].alias == streams_[j].stream ||
            streams_[i].stream == streams_[j].alias) {
          const std::string& clash = streams_[i].alias == streams_[j].stream
                                         ? streams_[i].alias
                                         : streams_[i].stream;
          return Fail("ambiguous stream reference '" + clash +
                          "' in FROM list (alias shadows a stream name)",
                      error);
        }
      }
    }
    const int n = static_cast<int>(streams_.size());
    anchors_.assign(static_cast<size_t>(n) - 1, -1);

    // WHERE: a conjunction of join conditions (alias.attr = alias.attr)
    // and filters (alias.attr cmp number), in any order. The left-deep
    // tree shape requires every stream after the first to be equi-joined
    // to exactly one earlier stream.
    if (!ExpectKeyword("where", error)) return false;
    if (!ParseConjunct(query, error)) return false;
    while (!AtEnd() && Peek().lower == "and") {
      Advance();
      if (!ParseConjunct(query, error)) return false;
    }
    for (int k = 1; k < n; ++k) {
      if (anchors_[static_cast<size_t>(k) - 1] < 0) {
        return Fail("stream '" + streams_[static_cast<size_t>(k)].stream +
                        "' is not connected by a join condition",
                    error);
      }
    }

    if (!ExpectKeyword("window", error)) return false;
    if (!ParseWindow(query, error)) return false;
    if (!AtEnd()) return Fail("trailing input after WINDOW clause", error);
    if (n > 2 && query->window.kind == WindowKind::kCount) {
      return Fail("count-based windows are binary-only", error);
    }

    if (n > 2) {
      // The binary pair keeps the default empty lists (degenerate case).
      query->stream_names.reserve(streams_.size());
      for (const StreamRef& s : streams_) {
        query->stream_names.push_back(s.stream);
      }
      query->join_anchors = anchors_;
    }
    return true;
  }

  bool ParseStreamRef(StreamRef* ref, std::string* error) {
    if (AtEnd()) return Fail("expected stream name", error);
    ref->stream = Peek().text;
    Advance();
    // Optional alias (an identifier that is not a separator/keyword).
    if (!AtEnd() && Peek().lower != "," && Peek().lower != "where") {
      ref->alias = Peek().text;
      Advance();
    } else {
      ref->alias = ref->stream;
    }
    return true;
  }

  // One WHERE conjunct: a join condition or a filter, told apart by the
  // token after the qualified attribute ('=' + another qualified attribute
  // means join; a comparison operator means filter).
  bool ParseConjunct(ContinuousQuery* query, std::string* error) {
    std::string alias, attr;
    if (!ParseQualified(&alias, &attr, error)) return false;
    if (AtEnd()) return Fail("expected comparison operator", error);
    const std::string op = Peek().lower;
    if (op == "=") {
      Advance();
      return FinishJoinCondition(alias, error);
    }
    if (op == ">" || op == "<" || op == ">=" || op == "<=") {
      Advance();
      return FinishFilter(query, alias, op, error);
    }
    return Fail("unsupported comparison '" + Peek().text + "'", error);
  }

  bool FinishJoinCondition(const std::string& lhs_alias, std::string* error) {
    std::string rhs_alias, rhs_attr;
    if (!ParseQualified(&rhs_alias, &rhs_attr, error)) return false;
    const int lhs = IndexOf(lhs_alias);
    const int rhs = IndexOf(rhs_alias);
    if (lhs < 0 || rhs < 0 || lhs == rhs) {
      return Fail("join condition must reference both streams", error);
    }
    // The later FROM entry anchors to the earlier one (left-deep shape).
    const int later = std::max(lhs, rhs);
    const int earlier = std::min(lhs, rhs);
    if (anchors_[static_cast<size_t>(later) - 1] >= 0) {
      return Fail("stream '" + streams_[static_cast<size_t>(later)].stream +
                      "' has more than one join condition",
                  error);
    }
    anchors_[static_cast<size_t>(later) - 1] = earlier;
    return true;
  }

  bool FinishFilter(ContinuousQuery* query, const std::string& alias,
                    const std::string& op, std::string* error) {
    double threshold = 0;
    if (!ParseNumber(&threshold, error)) return false;
    Predicate pred = (op == ">" || op == ">=")
                         ? Predicate::GreaterThan(threshold)
                         : Predicate::LessThan(threshold);
    const int stream = IndexOf(alias);
    if (stream < 0) {
      return Fail("filter references unknown alias '" + alias + "'", error);
    }
    if (stream == 0) {
      query->selection_a = Predicate::And(query->selection_a, pred);
    } else if (stream == 1) {
      query->selection_b = Predicate::And(query->selection_b, pred);
    } else {
      const size_t k = static_cast<size_t>(stream) - 2;
      if (query->extra_selections.size() <= k) {
        query->extra_selections.resize(k + 1);
      }
      query->extra_selections[k] =
          Predicate::And(query->extra_selections[k], pred);
    }
    return true;
  }

  bool ParseWindow(ContinuousQuery* query, std::string* error) {
    double magnitude = 0;
    if (!ParseNumber(&magnitude, error)) return false;
    std::string unit = "s";
    if (!AtEnd()) {
      unit = Peek().lower;
      Advance();
    }
    // Scale to the extent's native unit (ticks or rows) in double first, so
    // the range check below covers unit multiplication overflow too.
    double scaled = 0;
    bool count_window = false;
    if (unit == "ms" || unit == "millis" || unit == "milliseconds") {
      scaled = (magnitude / 1000.0) * kTicksPerSecond;
    } else if (unit == "s" || unit == "sec" || unit == "secs" ||
               unit == "second" || unit == "seconds") {
      scaled = magnitude * kTicksPerSecond;
    } else if (unit == "min" || unit == "mins" || unit == "minute" ||
               unit == "minutes") {
      scaled = magnitude * 60.0 * kTicksPerSecond;
    } else if (unit == "h" || unit == "hr" || unit == "hrs" ||
               unit == "hour" || unit == "hours") {
      scaled = magnitude * 3600.0 * kTicksPerSecond;
    } else if (unit == "rows" || unit == "tuples") {
      scaled = magnitude;
      count_window = true;
    } else {
      return Fail("unknown window unit '" + unit + "'", error);
    }
    // Casting a NaN or out-of-int64-range double is undefined behavior, so
    // validate BEFORE converting to an extent. 2^62 ticks ≈ 146k years of
    // virtual time — anything past it is a typo, not a window.
    if (!std::isfinite(scaled) ||
        scaled >= 4611686018427387904.0 /* 2^62 */) {
      return Fail("window magnitude out of range", error);
    }
    const auto extent = static_cast<int64_t>(scaled);
    query->window = count_window ? WindowSpec::Count(extent)
                                 : WindowSpec::Time(extent);
    if (query->window.extent <= 0) {
      // Covers literal zero/negative magnitudes and positive magnitudes
      // that round to zero ticks/rows (e.g. "WINDOW 0.4 rows"). A malformed
      // window is a user error, so it surfaces as ok=false, never a CHECK.
      return Fail("window must be positive", error);
    }
    return true;
  }

  bool ParseQualified(std::string* alias, std::string* attr,
                      std::string* error) {
    if (AtEnd()) return Fail("expected qualified attribute", error);
    *alias = Peek().text;
    Advance();
    if (!ExpectSymbol(".", error)) return false;
    if (AtEnd()) return Fail("expected attribute after '.'", error);
    *attr = Peek().text;
    Advance();
    return true;
  }

  bool ParseNumber(double* out, std::string* error) {
    if (AtEnd()) return Fail("expected number", error);
    const std::string& text = Peek().text;
    char* end = nullptr;
    *out = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0') {
      return Fail("expected number, got '" + text + "'", error);
    }
    Advance();
    return true;
  }

  // Stream id (FROM position) of an alias or stream name; -1 if unknown.
  int IndexOf(const std::string& alias) const {
    for (size_t i = 0; i < streams_.size(); ++i) {
      if (alias == streams_[i].alias || alias == streams_[i].stream) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  bool ExpectKeyword(const std::string& kw, std::string* error) {
    if (AtEnd() || Peek().lower != kw) {
      return Fail("expected keyword '" + kw + "'", error);
    }
    Advance();
    return true;
  }

  bool ExpectSymbol(const std::string& sym, std::string* error) {
    if (AtEnd() || Peek().lower != sym) {
      return Fail("expected '" + sym + "'", error);
    }
    Advance();
    return true;
  }

  bool Fail(const std::string& message, std::string* error) const {
    std::ostringstream out;
    out << message << " (at token " << pos_ << ")";
    *error = out.str();
    return false;
  }

  bool AtEnd() const { return pos_ >= tokens_.size(); }
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::vector<StreamRef> streams_;  // FROM order = stream ids
  std::vector<int> anchors_;        // anchors_[k]: stream k+1 joins this
};

}  // namespace

ParseResult ParseQuery(const std::string& text) {
  return Parser(text).Run();
}

}  // namespace stateslice
