// Synthetic workload generation matching the paper's experimental setup
// (Section 7): Poisson tuple arrivals, tunable join selectivity S1 and
// selection selectivity Sσ, and the window distributions of Tables 3 and 4.
#ifndef STATESLICE_QUERY_WORKLOAD_H_
#define STATESLICE_QUERY_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/tuple.h"
#include "src/operators/join_condition.h"
#include "src/query/query.h"

namespace stateslice {

// Parameters of one synthetic two-stream workload.
struct WorkloadSpec {
  double rate_a = 20.0;      // stream A arrival rate (tuples/sec)
  double rate_b = 20.0;      // stream B arrival rate (tuples/sec)
  double duration_s = 90.0;  // generation horizon (paper runs 90 s)
  double join_selectivity = 0.1;  // target S1
  uint64_t seed = 20060912;  // VLDB'06 conference date, why not

  // Arrival pattern: Poisson (exponential inter-arrivals, the paper's
  // setting) or fixed-rate (deterministic spacing; useful in tests).
  bool poisson = true;
};

// A generated two-stream workload plus the join condition and key domain
// that realize the requested S1.
struct Workload {
  std::vector<Tuple> stream_a;  // timestamp-ordered
  std::vector<Tuple> stream_b;  // timestamp-ordered
  JoinCondition condition;
  int64_t key_domain = 0;
  WorkloadSpec spec;
};

// Generates both streams. Values are U(0,1) (so Predicate::WithSelectivity
// hits its target Sσ exactly in expectation); keys are uniform over the
// domain chosen to realize `spec.join_selectivity` through a ModSum
// condition (see JoinCondition).
Workload GenerateWorkload(const WorkloadSpec& spec);

// Both workload streams merged into one globally timestamp-ordered
// arrival feed — what a long-lived Engine session ingests tuple by tuple.
std::vector<Tuple> MergedArrivals(const Workload& workload);

// A generated N-stream workload for multi-way join trees. Stream 0 uses
// spec.rate_a; every further stream uses spec.rate_b.
struct MultiWorkload {
  std::vector<std::vector<Tuple>> streams;  // [stream id], timestamp-ordered
  JoinCondition condition;
  int64_t key_domain = 0;
  WorkloadSpec spec;
};

// Generates `num_streams` (>= 2) independent streams under `spec`, with
// the same key-domain / S1 model as GenerateWorkload.
MultiWorkload GenerateMultiWorkload(const WorkloadSpec& spec, int num_streams);

// All streams merged into one globally timestamp-ordered arrival feed.
std::vector<Tuple> MergedArrivals(const MultiWorkload& workload);

// Chooses (mod, band) with band/mod == s1 for reasonable rational s1; falls
// back to a 1000-denominator approximation. Exposed for tests.
JoinCondition ConditionForSelectivity(double s1);

// Rewrites a generated workload in place into a pure equi-join: keys drawn
// uniformly over [0, key_domain) from `key_seed`, condition kEquiKey
// (S1 = 1/key_domain). Shared by the probe-index bench and its
// equivalence suite so both measure the same key model.
void RekeyForEquiJoin(Workload* workload, int64_t key_domain,
                      uint64_t key_seed);
void RekeyForEquiJoin(MultiWorkload* workload, int64_t key_domain,
                      uint64_t key_seed);

// Like RekeyForEquiJoin, but keys follow a Zipf(s) distribution over
// [0, key_domain): P(key = k) ∝ 1/(k+1)^s. s = 0 degenerates to uniform;
// s ≈ 1 is the classic web-trace skew where the hottest key dominates.
// Used by the sharded runtime's skew benchmarks and equivalence tests —
// hash partitioning sends each hot key to a single shard, so Zipf keys
// are exactly the load imbalance work-stealing has to absorb.
void RekeyForEquiJoinZipf(Workload* workload, int64_t key_domain,
                          double zipf_s, uint64_t key_seed);

// ---------------------------------------------------------------------
// Query-set factories for the paper's experiments.
// ---------------------------------------------------------------------

// The window distributions of Table 3 (three queries, seconds).
enum class WindowDistribution3 {
  kMostlySmall,  // 5, 10, 30
  kUniform,      // 10, 20, 30
  kMostlyLarge,  // 20, 25, 30
};

// Queries for Fig. 17/18: Q1 = A[w1] |x| B[w1] (no selection),
// Q2 = σ(A)[w2] |x| B[w2], Q3 = σ(A)[w3] |x| B[w3], with σ of
// selectivity `s_sigma` on stream A.
std::vector<ContinuousQuery> MakeSection72Queries(WindowDistribution3 dist,
                                                  double s_sigma);

// Window lists (seconds) for the three-query distributions above.
std::vector<double> Section72Windows(WindowDistribution3 dist);

// The window distributions of Table 4 (N queries, seconds). For N = 12
// these are exactly the paper's lists; other N scale the same shapes:
//  - kUniformN:     evenly spaced up to 30 s;
//  - kMostlySmallN: N-2 small windows (1..N-2 s) plus 20 s and 30 s;
//  - kSmallLargeN:  half packed at 1..N/2 s, half at 31-N/2..30 s.
enum class WindowDistributionN {
  kUniformN,
  kMostlySmallN,
  kSmallLargeN,
};

// Window lists (seconds) for N-query distributions; N must be >= 4.
std::vector<double> Section73Windows(WindowDistributionN dist, int n);

// Queries for Fig. 19: N joins without selections over the distribution.
std::vector<ContinuousQuery> MakeSection73Queries(WindowDistributionN dist,
                                                  int n);

// Human-readable names for reports.
std::string ToString(WindowDistribution3 dist);
std::string ToString(WindowDistributionN dist);

}  // namespace stateslice

#endif  // STATESLICE_QUERY_WORKLOAD_H_
