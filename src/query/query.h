// Continuous-query specifications.
//
// A ContinuousQuery describes one registered window-join query over an
// ordered list of 2..kMaxStreams streams:
//    Qi: SELECT * FROM S_0, S_1, ..., S_{n-1}
//        WHERE <join conds> [AND σ_i(S_k) ...] WINDOW w_i
// Streams are positional: stream k of every query in a workload reads the
// k-th input feed, and `stream_names` are labels only. The binary form
// (streams A and B) is the degenerate n = 2 case and keeps its dedicated
// selection_a/selection_b fields; the shared-plan builders (src/core)
// consume a vector of these.
#ifndef STATESLICE_QUERY_QUERY_H_
#define STATESLICE_QUERY_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/predicate.h"
#include "src/common/tuple.h"
#include "src/operators/window_spec.h"

namespace stateslice {

// One registered continuous query.
struct ContinuousQuery {
  int id = 0;                // dense id; also the lineage bit position
  std::string name;          // e.g. "Q1"
  WindowSpec window;         // every join level uses the same window
  Predicate selection_a;     // σ on stream 0 (default: true)
  Predicate selection_b;     // σ on stream 1 (default: true; extension)

  // --- N-way extension (all empty for the binary default) --------------
  // Ordered FROM-list stream names. Empty means the binary pair
  // ("A", "B"); a multi-way query sets one name per stream (>= 3 entries —
  // the stream count is derived from this list).
  std::vector<std::string> stream_names{};
  // σ on streams 2..n-1: extra_selections[k] applies to stream k+2. May be
  // shorter than n-2 (missing entries are unfiltered).
  std::vector<Predicate> extra_selections{};
  // Join shape of the left-deep tree: join_anchors[k] is the index of the
  // *earlier* stream that stream k+1 equi-joins with (0 <= anchor <= k).
  // Empty means chain adjacency (stream k+1 joins stream k).
  std::vector<int> join_anchors{};

  // Number of streams the query reads (2 for the binary default).
  int num_streams() const {
    return stream_names.empty() ? 2 : static_cast<int>(stream_names.size());
  }

  // Label of stream `i` ("A"/"B" for the binary default).
  std::string stream_name(int i) const;

  // σ on stream `i` (the trivial true predicate when absent).
  const Predicate& selection(int i) const;

  // Earlier-stream index that stream `level`+1 joins with.
  int anchor(int level) const {
    return join_anchors.empty() ? level
                                : join_anchors[static_cast<size_t>(level)];
  }

  // True if the query applies no selection on any stream.
  bool Unfiltered() const;

  std::string DebugString() const;

  // Canonical mini-CQL text re-parseable by ParseQuery (round-trip:
  // ParseQuery(*q.ToCql()) yields the same stream count, window, join
  // anchors, and selections). Returns nullopt when the query is outside
  // the parser's dialect — a selection that is not a conjunction of value
  // comparisons, or a time window finer than the parser's millisecond
  // unit.
  std::optional<std::string> ToCql() const;
};

// Validates a workload: non-empty, dense ids 0..N-1, positive windows, all
// windows the same kind, at most kMaxQueries queries (lineage is one bit
// per *query*, so the stream count does not consume lineage bits), and at
// most kMaxStreams streams per query (the router/dispatch fan-out bound).
// Queries sharing a workload must be join-tree-prefix compatible: their
// ordered stream lists nest positionally (every query's stream count is a
// prefix of the longest), their join anchors agree on the shared prefix,
// and multi-way queries use time windows. CHECK-fails on violations
// (programming errors); Engine::RegisterQuery pre-screens the same rules
// with ok=false semantics.
void ValidateQueries(const std::vector<ContinuousQuery>& queries);

// Returns query indices sorted by ascending window extent (stable).
std::vector<int> QueriesByWindow(const std::vector<ContinuousQuery>& queries);

// Largest stream count over the workload (2 for an all-binary workload).
int MaxStreams(const std::vector<ContinuousQuery>& queries);

}  // namespace stateslice

#endif  // STATESLICE_QUERY_QUERY_H_
