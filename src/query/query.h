// Continuous-query specifications.
//
// A ContinuousQuery describes one registered window-join query:
//    Qi: SELECT * FROM A, B WHERE <join cond> [AND σ_i(A)] WINDOW w_i
// The shared-plan builders (src/core) consume a vector of these.
#ifndef STATESLICE_QUERY_QUERY_H_
#define STATESLICE_QUERY_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/predicate.h"
#include "src/operators/window_spec.h"

namespace stateslice {

// One registered continuous query over streams A and B.
struct ContinuousQuery {
  int id = 0;                // dense id; also the lineage bit position
  std::string name;          // e.g. "Q1"
  WindowSpec window;         // both sides use the same window (paper §5)
  Predicate selection_a;     // σ on stream A (default: true)
  Predicate selection_b;     // σ on stream B (default: true; extension)

  // True if the query applies no selection at all.
  bool Unfiltered() const {
    return selection_a.IsTrue() && selection_b.IsTrue();
  }

  std::string DebugString() const;

  // Canonical mini-CQL text re-parseable by ParseQuery (round-trip:
  // ParseQuery(*q.ToCql()) yields the same window and selections). Returns
  // nullopt when the query is outside the parser's dialect — a selection
  // that is not a conjunction of value comparisons, or a time window finer
  // than the parser's millisecond unit.
  std::optional<std::string> ToCql() const;
};

// Validates a workload: non-empty, dense ids 0..N-1, positive windows, all
// windows the same kind, at most kMaxQueries queries. CHECK-fails on
// violations (programming errors).
void ValidateQueries(const std::vector<ContinuousQuery>& queries);

// Returns query indices sorted by ascending window extent (stable).
std::vector<int> QueriesByWindow(const std::vector<ContinuousQuery>& queries);

}  // namespace stateslice

#endif  // STATESLICE_QUERY_QUERY_H_
