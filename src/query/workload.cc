#include "src/query/workload.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/timestamp.h"

namespace stateslice {
namespace {

// Generates one Poisson (or fixed-rate) stream of `side` tuples.
std::vector<Tuple> GenerateStream(StreamId side, double rate,
                                  double duration_s, int64_t key_domain,
                                  bool poisson, Rng* rng) {
  std::vector<Tuple> tuples;
  tuples.reserve(static_cast<size_t>(rate * duration_s * 1.2) + 16);
  const double horizon = duration_s * kTicksPerSecond;
  double t = 0.0;
  uint32_t seq = 1;  // 1-based to match the paper's a1, a2, ... naming
  for (;;) {
    if (poisson) {
      t += rng->NextExponential(rate / kTicksPerSecond);
    } else {
      t += kTicksPerSecond / rate;
    }
    if (t >= horizon) break;
    Tuple tuple;
    tuple.timestamp = static_cast<TimePoint>(t);
    tuple.key = static_cast<int64_t>(rng->NextBounded(key_domain));
    tuple.value = rng->NextDouble();
    tuple.seq = seq++;
    tuple.side = side;
    tuples.push_back(tuple);
  }
  return tuples;
}

}  // namespace

JoinCondition ConditionForSelectivity(double s1) {
  SLICE_CHECK_GT(s1, 0.0);
  SLICE_CHECK_LE(s1, 1.0);
  // Try small denominators first so keys stay in a compact domain; the
  // paper's values (0.025, 0.1, 0.4, 0.5) all resolve exactly.
  for (int64_t mod = 1; mod <= 1000; ++mod) {
    const double band = s1 * static_cast<double>(mod);
    const double rounded = std::round(band);
    if (std::abs(band - rounded) < 1e-9 && rounded >= 1.0) {
      return JoinCondition::ModSum(mod, static_cast<int64_t>(rounded));
    }
  }
  return JoinCondition::ModSum(1000,
                               static_cast<int64_t>(std::round(s1 * 1000)));
}

Workload GenerateWorkload(const WorkloadSpec& spec) {
  Workload workload;
  workload.spec = spec;
  workload.condition = ConditionForSelectivity(spec.join_selectivity);
  workload.key_domain = workload.condition.mod;
  Rng rng(spec.seed);
  Rng rng_a = rng.Fork();
  Rng rng_b = rng.Fork();
  workload.stream_a =
      GenerateStream(StreamSide::kA, spec.rate_a, spec.duration_s,
                     workload.key_domain, spec.poisson, &rng_a);
  workload.stream_b =
      GenerateStream(StreamSide::kB, spec.rate_b, spec.duration_s,
                     workload.key_domain, spec.poisson, &rng_b);
  return workload;
}

std::vector<Tuple> MergedArrivals(const Workload& workload) {
  std::vector<Tuple> merged;
  merged.reserve(workload.stream_a.size() + workload.stream_b.size());
  merged.insert(merged.end(), workload.stream_a.begin(),
                workload.stream_a.end());
  merged.insert(merged.end(), workload.stream_b.begin(),
                workload.stream_b.end());
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Tuple& x, const Tuple& y) {
                     return x.timestamp < y.timestamp;
                   });
  return merged;
}

MultiWorkload GenerateMultiWorkload(const WorkloadSpec& spec,
                                    int num_streams) {
  SLICE_CHECK_GE(num_streams, 2);
  SLICE_CHECK_LE(num_streams, kMaxStreams);
  MultiWorkload workload;
  workload.spec = spec;
  workload.condition = ConditionForSelectivity(spec.join_selectivity);
  workload.key_domain = workload.condition.mod;
  Rng rng(spec.seed);
  workload.streams.reserve(static_cast<size_t>(num_streams));
  for (int s = 0; s < num_streams; ++s) {
    Rng stream_rng = rng.Fork();
    workload.streams.push_back(GenerateStream(
        s, s == 0 ? spec.rate_a : spec.rate_b, spec.duration_s,
        workload.key_domain, spec.poisson, &stream_rng));
  }
  return workload;
}

std::vector<Tuple> MergedArrivals(const MultiWorkload& workload) {
  std::vector<Tuple> merged;
  for (const std::vector<Tuple>& stream : workload.streams) {
    merged.insert(merged.end(), stream.begin(), stream.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Tuple& x, const Tuple& y) {
                     return x.timestamp < y.timestamp;
                   });
  return merged;
}

std::vector<double> Section72Windows(WindowDistribution3 dist) {
  switch (dist) {
    case WindowDistribution3::kMostlySmall:
      return {5, 10, 30};
    case WindowDistribution3::kUniform:
      return {10, 20, 30};
    case WindowDistribution3::kMostlyLarge:
      return {20, 25, 30};
  }
  SLICE_CHECK(false);
  return {};
}

std::vector<ContinuousQuery> MakeSection72Queries(WindowDistribution3 dist,
                                                  double s_sigma) {
  const std::vector<double> windows = Section72Windows(dist);
  std::vector<ContinuousQuery> queries(3);
  for (int i = 0; i < 3; ++i) {
    queries[i].id = i;
    queries[i].name = "Q" + std::to_string(i + 1);
    queries[i].window = WindowSpec::TimeSeconds(windows[i]);
    if (i > 0) {
      // Q2 and Q3 carry the σ on stream A (Section 7.2).
      queries[i].selection_a = Predicate::WithSelectivity(s_sigma);
    }
  }
  return queries;
}

std::vector<double> Section73Windows(WindowDistributionN dist, int n) {
  SLICE_CHECK_GE(n, 4);
  std::vector<double> windows;
  windows.reserve(n);
  switch (dist) {
    case WindowDistributionN::kUniformN: {
      // N = 12 gives the paper's 2.5, 5, ..., 30.
      const double step = 30.0 / n;
      for (int i = 1; i <= n; ++i) windows.push_back(step * i);
      break;
    }
    case WindowDistributionN::kMostlySmallN: {
      // N = 12 gives the paper's 1..10, 20, 30; other N pack n-2 windows
      // evenly into (0, 10] plus the 20 s and 30 s outliers.
      for (int i = 1; i <= n - 2; ++i) {
        windows.push_back(10.0 * i / (n - 2));
      }
      windows.push_back(20);
      windows.push_back(30);
      break;
    }
    case WindowDistributionN::kSmallLargeN: {
      // N = 12 gives the paper's 1..6, 25..30; other N pack half the
      // windows evenly into (0, 6] and half into [25, 30].
      const int half = n / 2;
      for (int i = 1; i <= half; ++i) {
        windows.push_back(6.0 * i / half);
      }
      const int rest = n - half;
      for (int i = 1; i <= rest; ++i) {
        windows.push_back(rest > 1 ? 25.0 + 5.0 * (i - 1) / (rest - 1)
                                   : 30.0);
      }
      break;
    }
  }
  std::sort(windows.begin(), windows.end());
  return windows;
}

std::vector<ContinuousQuery> MakeSection73Queries(WindowDistributionN dist,
                                                  int n) {
  const std::vector<double> windows = Section73Windows(dist, n);
  std::vector<ContinuousQuery> queries(windows.size());
  for (size_t i = 0; i < windows.size(); ++i) {
    queries[i].id = static_cast<int>(i);
    queries[i].name = "Q" + std::to_string(i + 1);
    queries[i].window = WindowSpec::TimeSeconds(windows[i]);
  }
  return queries;
}

std::string ToString(WindowDistribution3 dist) {
  switch (dist) {
    case WindowDistribution3::kMostlySmall:
      return "Mostly-Small";
    case WindowDistribution3::kUniform:
      return "Uniform";
    case WindowDistribution3::kMostlyLarge:
      return "Mostly-Large";
  }
  return "?";
}

std::string ToString(WindowDistributionN dist) {
  switch (dist) {
    case WindowDistributionN::kUniformN:
      return "Uniform";
    case WindowDistributionN::kMostlySmallN:
      return "Mostly-Small";
    case WindowDistributionN::kSmallLargeN:
      return "Small-Large";
  }
  return "?";
}

namespace {

void RekeyStream(std::vector<Tuple>* stream, int64_t key_domain, Rng* rng) {
  for (Tuple& t : *stream) {
    t.key = static_cast<int64_t>(
        rng->NextBounded(static_cast<uint64_t>(key_domain)));
  }
}

}  // namespace

void RekeyForEquiJoin(Workload* workload, int64_t key_domain,
                      uint64_t key_seed) {
  SLICE_CHECK_GT(key_domain, 0);
  Rng rng(key_seed);
  RekeyStream(&workload->stream_a, key_domain, &rng);
  RekeyStream(&workload->stream_b, key_domain, &rng);
  workload->condition = JoinCondition::EquiKey();
  workload->key_domain = key_domain;
}

void RekeyForEquiJoin(MultiWorkload* workload, int64_t key_domain,
                      uint64_t key_seed) {
  SLICE_CHECK_GT(key_domain, 0);
  Rng rng(key_seed);
  for (std::vector<Tuple>& stream : workload->streams) {
    RekeyStream(&stream, key_domain, &rng);
  }
  workload->condition = JoinCondition::EquiKey();
  workload->key_domain = key_domain;
}

void RekeyForEquiJoinZipf(Workload* workload, int64_t key_domain,
                          double zipf_s, uint64_t key_seed) {
  SLICE_CHECK_GT(key_domain, 0);
  SLICE_CHECK_GE(zipf_s, 0.0);
  // Inverse-CDF sampling over the precomputed cumulative weights: exact
  // for the modest key domains the benches use, and reproducible (no
  // dependence on the platform's <random> Zipf approximations).
  std::vector<double> cdf(static_cast<size_t>(key_domain));
  double total = 0.0;
  for (int64_t k = 0; k < key_domain; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), zipf_s);
    cdf[static_cast<size_t>(k)] = total;
  }
  Rng rng(key_seed);
  auto draw = [&]() {
    const double u = rng.NextDouble() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<int64_t>(it - cdf.begin());
  };
  for (Tuple& t : workload->stream_a) t.key = draw();
  for (Tuple& t : workload->stream_b) t.key = draw();
  workload->condition = JoinCondition::EquiKey();
  workload->key_domain = key_domain;
}

}  // namespace stateslice
