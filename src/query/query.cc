#include "src/query/query.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "src/common/check.h"
#include "src/common/tuple.h"

namespace stateslice {

std::string ContinuousQuery::DebugString() const {
  std::ostringstream out;
  out << (name.empty() ? "Q" + std::to_string(id) : name) << ": A"
      << window.DebugString() << " |x| B" << window.DebugString();
  if (!selection_a.IsTrue()) out << " where A " << selection_a.description();
  if (!selection_b.IsTrue()) out << " where B " << selection_b.description();
  return out.str();
}

std::string WindowSpec::DebugString() const {
  std::ostringstream out;
  if (kind == WindowKind::kTime) {
    out << "[" << TicksToSeconds(extent) << "s]";
  } else {
    out << "[#" << extent << "]";
  }
  return out.str();
}

void ValidateQueries(const std::vector<ContinuousQuery>& queries) {
  SLICE_CHECK(!queries.empty());
  SLICE_CHECK_LE(queries.size(), static_cast<size_t>(kMaxQueries));
  for (size_t i = 0; i < queries.size(); ++i) {
    SLICE_CHECK_EQ(queries[i].id, static_cast<int>(i));
    SLICE_CHECK_GT(queries[i].window.extent, 0);
    SLICE_CHECK(queries[i].window.kind == queries[0].window.kind);
  }
}

std::vector<int> QueriesByWindow(const std::vector<ContinuousQuery>& queries) {
  std::vector<int> order(queries.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&queries](int x, int y) {
    return queries[x].window.extent < queries[y].window.extent;
  });
  return order;
}

}  // namespace stateslice
