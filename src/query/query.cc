#include "src/query/query.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "src/common/check.h"
#include "src/common/timestamp.h"
#include "src/common/tuple.h"

namespace stateslice {
namespace {

// Rewrites a predicate description produced by the parser's combinators
// ("(value > 0.5)", "((value > 0.1) AND (value < 0.9))") into mini-CQL
// filter conjuncts ("A.Value > 0.5"). Returns false for predicates outside
// that grammar (Range/Or/Not/Custom), which ToCql cannot express.
bool AppendCqlConjuncts(const std::string& desc, const std::string& alias,
                        std::vector<std::string>* out) {
  if (desc == "true") return true;
  if (desc.size() < 2 || desc.front() != '(' || desc.back() != ')') {
    return false;
  }
  const std::string body = desc.substr(1, desc.size() - 2);
  // Split a conjunction at the top nesting level.
  int depth = 0;
  for (size_t i = 0; i + 5 <= body.size(); ++i) {
    if (body[i] == '(') ++depth;
    if (body[i] == ')') --depth;
    if (depth == 0 && body.compare(i, 5, " AND ") == 0) {
      return AppendCqlConjuncts(body.substr(0, i), alias, out) &&
             AppendCqlConjuncts(body.substr(i + 5), alias, out);
    }
  }
  constexpr const char kGreater[] = "value > ";
  constexpr const char kLess[] = "value < ";
  if (body.rfind(kGreater, 0) == 0) {
    out->push_back(alias + ".Value > " + body.substr(sizeof(kGreater) - 1));
    return true;
  }
  if (body.rfind(kLess, 0) == 0) {
    out->push_back(alias + ".Value < " + body.substr(sizeof(kLess) - 1));
    return true;
  }
  return false;
}

}  // namespace

std::string ContinuousQuery::DebugString() const {
  std::ostringstream out;
  out << (name.empty() ? "Q" + std::to_string(id) : name) << ": A"
      << window.DebugString() << " |x| B" << window.DebugString();
  if (!selection_a.IsTrue()) out << " where A " << selection_a.description();
  if (!selection_b.IsTrue()) out << " where B " << selection_b.description();
  return out.str();
}

std::string WindowSpec::DebugString() const {
  std::ostringstream out;
  if (kind == WindowKind::kTime) {
    out << "[" << TicksToSeconds(extent) << "s]";
  } else {
    out << "[#" << extent << "]";
  }
  return out.str();
}

std::optional<std::string> ContinuousQuery::ToCql() const {
  std::vector<std::string> conjuncts;
  if (!AppendCqlConjuncts(selection_a.description(), "A", &conjuncts) ||
      !AppendCqlConjuncts(selection_b.description(), "B", &conjuncts)) {
    return std::nullopt;
  }
  if (window.extent <= 0) return std::nullopt;
  std::ostringstream out;
  out << "SELECT * FROM A A, B B WHERE A.key = B.key";
  for (const std::string& c : conjuncts) out << " AND " << c;
  out << " WINDOW ";
  if (window.kind == WindowKind::kCount) {
    out << window.extent << " rows";
  } else if (window.extent % kTicksPerSecond == 0) {
    out << window.extent / kTicksPerSecond << " s";
  } else if (window.extent % (kTicksPerSecond / 1000) == 0) {
    out << window.extent / (kTicksPerSecond / 1000) << " ms";
  } else {
    return std::nullopt;  // finer than the parser's millisecond unit
  }
  return out.str();
}

void ValidateQueries(const std::vector<ContinuousQuery>& queries) {
  SLICE_CHECK(!queries.empty());
  SLICE_CHECK_LE(queries.size(), static_cast<size_t>(kMaxQueries));
  for (size_t i = 0; i < queries.size(); ++i) {
    SLICE_CHECK_EQ(queries[i].id, static_cast<int>(i));
    SLICE_CHECK_GT(queries[i].window.extent, 0);
    SLICE_CHECK(queries[i].window.kind == queries[0].window.kind);
  }
}

std::vector<int> QueriesByWindow(const std::vector<ContinuousQuery>& queries) {
  std::vector<int> order(queries.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&queries](int x, int y) {
    return queries[x].window.extent < queries[y].window.extent;
  });
  return order;
}

}  // namespace stateslice
