#include "src/query/query.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "src/common/check.h"
#include "src/common/timestamp.h"
#include "src/common/tuple.h"

namespace stateslice {
namespace {

// Rewrites a predicate description produced by the parser's combinators
// ("(value > 0.5)", "((value > 0.1) AND (value < 0.9))") into mini-CQL
// filter conjuncts ("A.Value > 0.5"). Returns false for predicates outside
// that grammar (Range/Or/Not/Custom), which ToCql cannot express.
bool AppendCqlConjuncts(const std::string& desc, const std::string& alias,
                        std::vector<std::string>* out) {
  if (desc == "true") return true;
  if (desc.size() < 2 || desc.front() != '(' || desc.back() != ')') {
    return false;
  }
  const std::string body = desc.substr(1, desc.size() - 2);
  // Split a conjunction at the top nesting level.
  int depth = 0;
  for (size_t i = 0; i + 5 <= body.size(); ++i) {
    if (body[i] == '(') ++depth;
    if (body[i] == ')') --depth;
    if (depth == 0 && body.compare(i, 5, " AND ") == 0) {
      return AppendCqlConjuncts(body.substr(0, i), alias, out) &&
             AppendCqlConjuncts(body.substr(i + 5), alias, out);
    }
  }
  constexpr const char kGreater[] = "value > ";
  constexpr const char kLess[] = "value < ";
  if (body.rfind(kGreater, 0) == 0) {
    out->push_back(alias + ".Value > " + body.substr(sizeof(kGreater) - 1));
    return true;
  }
  if (body.rfind(kLess, 0) == 0) {
    out->push_back(alias + ".Value < " + body.substr(sizeof(kLess) - 1));
    return true;
  }
  return false;
}

const Predicate& TruePredicate() {
  static const Predicate* kTrue = new Predicate();
  return *kTrue;
}

}  // namespace

std::string ContinuousQuery::stream_name(int i) const {
  if (!stream_names.empty()) return stream_names[static_cast<size_t>(i)];
  return i == 0 ? "A" : "B";
}

const Predicate& ContinuousQuery::selection(int i) const {
  if (i == 0) return selection_a;
  if (i == 1) return selection_b;
  const size_t k = static_cast<size_t>(i) - 2;
  return k < extra_selections.size() ? extra_selections[k] : TruePredicate();
}

bool ContinuousQuery::Unfiltered() const {
  if (!selection_a.IsTrue() || !selection_b.IsTrue()) return false;
  for (const Predicate& p : extra_selections) {
    if (!p.IsTrue()) return false;
  }
  return true;
}

std::string ContinuousQuery::DebugString() const {
  std::ostringstream out;
  out << (name.empty() ? "Q" + std::to_string(id) : name) << ": "
      << stream_name(0) << window.DebugString();
  for (int s = 1; s < num_streams(); ++s) {
    out << " |x| " << stream_name(s) << window.DebugString();
  }
  for (int s = 0; s < num_streams(); ++s) {
    if (!selection(s).IsTrue()) {
      out << " where " << stream_name(s) << " " << selection(s).description();
    }
  }
  return out.str();
}

std::string WindowSpec::DebugString() const {
  std::ostringstream out;
  if (kind == WindowKind::kTime) {
    out << "[" << TicksToSeconds(extent) << "s]";
  } else {
    out << "[#" << extent << "]";
  }
  return out.str();
}

std::optional<std::string> ContinuousQuery::ToCql() const {
  const int n = num_streams();
  std::vector<std::string> conjuncts;
  for (int s = 0; s < n; ++s) {
    if (!AppendCqlConjuncts(selection(s).description(), stream_name(s),
                            &conjuncts)) {
      return std::nullopt;
    }
  }
  if (window.extent <= 0) return std::nullopt;
  std::ostringstream out;
  out << "SELECT * FROM";
  for (int s = 0; s < n; ++s) {
    out << (s == 0 ? " " : ", ") << stream_name(s) << " " << stream_name(s);
  }
  out << " WHERE";
  for (int k = 0; k < n - 1; ++k) {
    if (k > 0) out << " AND";
    out << " " << stream_name(k + 1) << ".key = " << stream_name(anchor(k))
        << ".key";
  }
  for (const std::string& c : conjuncts) out << " AND " << c;
  out << " WINDOW ";
  if (window.kind == WindowKind::kCount) {
    out << window.extent << " rows";
  } else if (window.extent % kTicksPerSecond == 0) {
    out << window.extent / kTicksPerSecond << " s";
  } else if (window.extent % (kTicksPerSecond / 1000) == 0) {
    out << window.extent / (kTicksPerSecond / 1000) << " ms";
  } else {
    return std::nullopt;  // finer than the parser's millisecond unit
  }
  return out.str();
}

void ValidateQueries(const std::vector<ContinuousQuery>& queries) {
  SLICE_CHECK(!queries.empty());
  // Lineage tracks one bit per query: the *query* count is bounded by the
  // bitmask width regardless of how many streams each query reads.
  SLICE_CHECK_LE(queries.size(), static_cast<size_t>(kMaxQueries));
  for (size_t i = 0; i < queries.size(); ++i) {
    const ContinuousQuery& q = queries[i];
    SLICE_CHECK_EQ(q.id, static_cast<int>(i));
    SLICE_CHECK_GT(q.window.extent, 0);
    SLICE_CHECK(q.window.kind == queries[0].window.kind);
    const int n = q.num_streams();
    // Stream count bounds the StreamDispatch/router fan-out of the shared
    // tree: reject workloads that exceed it.
    SLICE_CHECK_GE(n, 2);
    SLICE_CHECK_LE(n, kMaxStreams);
    SLICE_CHECK_LE(q.extra_selections.size(), static_cast<size_t>(n) - 2);
    if (!q.join_anchors.empty()) {
      SLICE_CHECK_EQ(static_cast<int>(q.join_anchors.size()), n - 1);
      for (int k = 0; k < n - 1; ++k) {
        SLICE_CHECK_GE(q.join_anchors[k], 0);
        SLICE_CHECK_LE(q.join_anchors[k], k);
      }
    }
    if (n > 2) {
      // The sliced tree levels purge composite state by timestamp; count
      // windows stay binary-only.
      SLICE_CHECK(q.window.kind == WindowKind::kTime);
    }
  }
  // Join-tree-prefix compatibility: streams are positional, so the
  // workload shares one tree iff every query deep enough to define level
  // k agrees on that level's join anchor.
  const int max_streams = MaxStreams(queries);
  for (int k = 0; k + 1 < max_streams; ++k) {
    int ref = -1;
    for (const ContinuousQuery& q : queries) {
      if (q.num_streams() < k + 2) continue;
      if (ref < 0) {
        ref = q.anchor(k);
      } else {
        SLICE_CHECK_EQ(q.anchor(k), ref);
      }
    }
  }
}

std::vector<int> QueriesByWindow(const std::vector<ContinuousQuery>& queries) {
  std::vector<int> order(queries.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&queries](int x, int y) {
    return queries[x].window.extent < queries[y].window.extent;
  });
  return order;
}

int MaxStreams(const std::vector<ContinuousQuery>& queries) {
  int n = 2;
  for (const ContinuousQuery& q : queries) {
    n = std::max(n, q.num_streams());
  }
  return n;
}

}  // namespace stateslice
