// Mini-CQL parser for the examples and tests.
//
// Parses the SQL-like, window-extended query dialect the paper uses in its
// motivating example:
//
//   SELECT A.* FROM Temperature A, Humidity B
//   WHERE A.LocationId = B.LocationId AND A.Value > 0.5
//   WINDOW 60 min
//
// Grammar (case-insensitive keywords):
//   query     := SELECT select FROM stream alias "," stream alias
//                WHERE join (AND filter)* WINDOW number unit
//   join      := alias "." ident "=" alias "." ident
//   filter    := alias "." ident cmp number
//   cmp       := ">" | "<" | ">=" | "<="
//   unit      := "ms" | "s" | "sec" | "second(s)" | "min" | "minute(s)"
//                | "h" | "hr(s)" | "hour(s)"
//                | "rows" | "tuples"          (count-based windows)
//
// The first FROM entry is bound to stream A, the second to stream B.
// Filters must reference a numeric attribute; they are compiled onto the
// tuple's `value` field.
#ifndef STATESLICE_QUERY_PARSER_H_
#define STATESLICE_QUERY_PARSER_H_

#include <string>

#include "src/query/query.h"

namespace stateslice {

// Outcome of parsing one query string.
struct ParseResult {
  bool ok = false;
  std::string error;        // empty when ok
  ContinuousQuery query;    // valid when ok (id/name left default)
};

// Parses `text` into a ContinuousQuery. Never aborts on bad input; returns
// ok=false with a descriptive error instead.
ParseResult ParseQuery(const std::string& text);

}  // namespace stateslice

#endif  // STATESLICE_QUERY_PARSER_H_
