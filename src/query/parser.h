// Mini-CQL parser for the examples and tests.
//
// Parses the SQL-like, window-extended query dialect the paper uses in its
// motivating example:
//
//   SELECT A.* FROM Temperature A, Humidity B
//   WHERE A.LocationId = B.LocationId AND A.Value > 0.5
//   WINDOW 60 min
//
// Grammar (case-insensitive keywords):
//   query     := SELECT select FROM stream alias ("," stream alias)+
//                WHERE conjunct (AND conjunct)* WINDOW number unit
//   conjunct  := join | filter
//   join      := alias "." ident "=" alias "." ident
//   filter    := alias "." ident cmp number
//   cmp       := ">" | "<" | ">=" | "<="
//   unit      := "ms" | "s" | "sec" | "second(s)" | "min" | "minute(s)"
//                | "h" | "hr(s)" | "hour(s)"
//                | "rows" | "tuples"          (count-based windows)
//
// FROM entries bind stream ids positionally: the k-th entry is stream k
// (the binary pair A, B is the two-entry case). Up to kMaxStreams streams
// are accepted; duplicate stream names or aliases are rejected. Every
// stream after the first must be equi-joined to exactly one earlier stream
// (the left-deep join-tree shape; the conditions may appear in any order
// and interleave with filters). Count-based windows are binary-only.
// Filters must reference a numeric attribute of a declared stream; they
// are compiled onto the tuple's `value` field.
#ifndef STATESLICE_QUERY_PARSER_H_
#define STATESLICE_QUERY_PARSER_H_

#include <string>

#include "src/query/query.h"

namespace stateslice {

// Outcome of parsing one query string.
struct ParseResult {
  bool ok = false;
  std::string error;        // empty when ok
  ContinuousQuery query;    // valid when ok (id/name left default)
};

// Parses `text` into a ContinuousQuery. Never aborts on bad input; returns
// ok=false with a descriptive error instead.
ParseResult ParseQuery(const std::string& text);

}  // namespace stateslice

#endif  // STATESLICE_QUERY_PARSER_H_
