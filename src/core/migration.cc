#include "src/core/migration.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/operators/router.h"
#include "src/operators/selection.h"

namespace stateslice {
namespace {

// Fresh operator names for migrated plan elements.
int g_migration_serial = 0;

// Index of `value` in `boundaries`, or -1.
int BoundaryIndexOf(const std::vector<int64_t>& boundaries, int64_t value) {
  for (size_t k = 0; k < boundaries.size(); ++k) {
    if (boundaries[k] == value) return static_cast<int>(k);
  }
  return -1;
}

}  // namespace

ChainMigrator::ChainMigrator(BuiltPlan* built) : built_(built) {
  SLICE_CHECK(built != nullptr);
  // In-place migration is defined on a single binary chain; multi-level
  // join trees take the Engine's drain-rebuild path instead (the rebuild
  // cutoff is recorded in Engine::rebuild_cutoffs).
  SLICE_CHECK_EQ(built->num_levels, 1);
  SLICE_CHECK(!built->slices.empty());
  for (const ContinuousQuery& q : built->queries) {
    // Section 5.3 presents migration for plain chains; selections would
    // additionally need filter surgery (future work, see DESIGN.md).
    SLICE_CHECK(q.Unfiltered());
  }
  SLICE_CHECK(!built->options.use_lineage);
}

void ChainMigrator::CheckQuiescent() const {
  SLICE_CHECK_EQ(built_->plan->TotalQueueSize(), size_t{0});
}

int ChainMigrator::EnsureBoundaryIndex(int64_t value) {
  ChainSpec& spec = built_->chain.spec;
  const int existing = BoundaryIndexOf(spec.boundaries, value);
  if (existing >= 0) return existing;
  // Insert keeping the ascending order, then shift every stored index at
  // or beyond the insertion point.
  int p = 0;
  while (p < static_cast<int>(spec.boundaries.size()) &&
         spec.boundaries[p] < value) {
    ++p;
  }
  spec.boundaries.insert(spec.boundaries.begin() + p, value);
  spec.queries_at_boundary.insert(spec.queries_at_boundary.begin() + p,
                                  std::vector<int>{});
  for (int& k : spec.query_boundary) {
    if (k >= p) ++k;
  }
  return p;
}

void ChainMigrator::SyncChainMetadata() {
  // Single-level plans keep slice_level parallel to slices (all level 0).
  built_->slice_level.assign(built_->slices.size(), 0);
  // The live join ranges are authoritative; re-derive the boundary indices
  // of every slice and the partition's slice ends from them.
  for (BuiltSlice& slice : built_->slices) {
    EnsureBoundaryIndex(slice.join->range().end);
  }
  const ChainSpec& spec = built_->chain.spec;
  std::vector<int>& ends = built_->chain.partition.slice_end_boundaries;
  ends.clear();
  int prev_end = -1;
  for (BuiltSlice& slice : built_->slices) {
    slice.start_boundary = prev_end;
    slice.end_boundary = BoundaryIndexOf(spec.boundaries,
                                         slice.join->range().end);
    SLICE_CHECK_GE(slice.end_boundary, 0);
    ends.push_back(slice.end_boundary);
    prev_end = slice.end_boundary;
  }
}

int ChainMigrator::SplitSlice(int slice_index, Duration boundary) {
  CheckQuiescent();
  // Quiescent plan + single-caller Engine contract: migration runs on the
  // one driver thread while no scheduler (and no worker) is active, so this
  // thread has the plan structure to itself.
  built_->plan->AssertSurgeryExclusive();
  SLICE_CHECK_GE(slice_index, 0);
  SLICE_CHECK_LT(slice_index, static_cast<int>(built_->slices.size()));
  BuiltSlice& left = built_->slices[slice_index];
  const SliceRange old_range = left.join->range();
  SLICE_CHECK(old_range.kind == WindowKind::kTime);
  SLICE_CHECK_GT(boundary, old_range.start);
  SLICE_CHECK_LT(boundary, old_range.end);
  QueryPlan* plan = built_->plan.get();

  // 1+2: stop is implicit (plan quiescent); shrink the left slice. Its
  // state still holds tuples beyond `boundary` — the next male purge will
  // move them into the new slice through the connecting queue, exactly as
  // Section 5.3 prescribes ("the execution of Ji will purge tuples, due to
  // its new smaller window, into the queue").
  left.join->SetRange(SliceRange{old_range.kind, old_range.start, boundary});

  // 3: insert the right-hand slice.
  SlicedWindowJoin::Options sopt;
  sopt.condition = built_->options.condition;
  sopt.use_key_index = built_->options.use_key_index;
  sopt.punctuate_results = true;
  const std::string name =
      "slice.split" + std::to_string(g_migration_serial++);
  auto* right = plan->InsertOperatorWhileRunning(
      std::make_unique<SlicedWindowJoin>(
          name, SliceRange{old_range.kind, boundary, old_range.end}, sopt));

  // Chain wiring: left.next now feeds `right`; right takes over left's old
  // next queue (toward slice_index+1).
  if (left.next_queue != nullptr) {
    plan->MoveQueueProducer(left.next_queue, left.join,
                            SlicedWindowJoin::kNextPort, right,
                            SlicedWindowJoin::kNextPort);
  }
  EventQueue* connector =
      plan->ConnectWhileRunning(left.join, SlicedWindowJoin::kNextPort,
                                right, 0);

  // Result edges: the right slice serves exactly the queries that read the
  // old slice's full stream *and* whose window reaches past `boundary` —
  // which is all of them, since their windows are >= old_range.end.
  std::vector<ResultEdge> new_edges;
  for (const ResultEdge& edge : built_->result_edges) {
    if (edge.slice_index != slice_index) continue;
    const int qid = edge.query_id;
    UnionMerge* merge = built_->merges[qid];
    if (merge == nullptr) {
      // The query read the old slice alone; it now reads two producers and
      // needs a union inserted in front of its gate (when registered with
      // fresh-start semantics) or its sinks.
      merge = plan->InsertOperatorWhileRunning(std::make_unique<UnionMerge>(
          built_->queries[qid].name + ".union.m" +
              std::to_string(g_migration_serial++),
          /*input_count=*/1));
      if (built_->result_gates[qid] != nullptr) {
        // slice -> gate becomes union -> gate; the old slice edge's queue
        // is exactly the gate's input.
        SLICE_CHECK(edge.queue != nullptr);
        plan->MoveQueueProducer(edge.queue, edge.producer,
                                edge.producer_port, merge,
                                UnionMerge::kOutPort);
      } else {
        for (SinkEdge& se : built_->sink_edges[qid]) {
          plan->MoveQueueProducer(se.queue, se.producer, se.producer_port,
                                  merge, UnionMerge::kOutPort);
          se.producer = merge;
          se.producer_port = UnionMerge::kOutPort;
        }
      }
      // Re-route the old direct edge through port 0 of the new union.
      EventQueue* q0 = plan->ConnectWhileRunning(
          left.join, SlicedWindowJoin::kResultPort, merge, 0);
      built_->merges[qid] = merge;
      // Update the old edge record in place.
      for (ResultEdge& e : built_->result_edges) {
        if (e.query_id == qid && e.slice_index == slice_index) {
          e.queue = q0;
          e.merge = merge;
          e.merge_port = 0;
        }
      }
      // NOTE: the old direct sink queues were produced by the slice and
      // are now produced by the union; results keep flowing in order.
    }
    const int port = merge->AddInputWhileRunning();
    EventQueue* eq = plan->ConnectWhileRunning(
        right, SlicedWindowJoin::kResultPort, merge, port);
    new_edges.push_back(ResultEdge{qid, slice_index + 1, right,
                                   SlicedWindowJoin::kResultPort, eq, merge,
                                   port});
  }

  // Metadata: insert the new slice after the old one; shift edge indices.
  for (ResultEdge& e : built_->result_edges) {
    if (e.slice_index > slice_index) ++e.slice_index;
  }
  built_->result_edges.insert(built_->result_edges.end(), new_edges.begin(),
                              new_edges.end());
  BuiltSlice right_slice;
  right_slice.join = right;
  right_slice.next_queue = left.next_queue;
  right_slice.result_producer = right;
  right_slice.full_port = SlicedWindowJoin::kResultPort;
  left.next_queue = connector;
  built_->slices.insert(built_->slices.begin() + slice_index + 1,
                        right_slice);
  SyncChainMetadata();
  return slice_index + 1;
}

int ChainMigrator::MergeSlices(int slice_index) {
  CheckQuiescent();
  // Quiescent plan + single-caller Engine contract (see SplitSlice).
  built_->plan->AssertSurgeryExclusive();
  SLICE_CHECK_GE(slice_index, 0);
  SLICE_CHECK_LT(slice_index + 1, static_cast<int>(built_->slices.size()));
  BuiltSlice& left = built_->slices[slice_index];
  BuiltSlice& right = built_->slices[slice_index + 1];
  // Merging a slice that already owns a router would need nested-router
  // surgery; compact routers are rebuilt instead (not needed by §5.3).
  SLICE_CHECK(left.result_producer == static_cast<Operator*>(left.join));
  SLICE_CHECK(right.result_producer == static_cast<Operator*>(right.join));
  const SliceRange lr = left.join->range();
  const SliceRange rr = right.join->range();
  SLICE_CHECK(lr.kind == rr.kind);
  SLICE_CHECK_EQ(lr.end, rr.start);
  QueryPlan* plan = built_->plan.get();

  // 1: the queue in between is empty (plan quiescent) — paper's
  // precondition for merging.
  SLICE_CHECK(left.next_queue != nullptr);
  SLICE_CHECK(left.next_queue->empty());

  // 2: build the merged slice and concatenate states (right holds the
  // older tuples).
  SlicedWindowJoin::Options sopt;
  sopt.condition = built_->options.condition;
  sopt.use_key_index = built_->options.use_key_index;
  sopt.punctuate_results = true;
  const std::string name =
      "slice.merged" + std::to_string(g_migration_serial++);
  auto* merged = plan->InsertOperatorWhileRunning(
      std::make_unique<SlicedWindowJoin>(
          name, SliceRange{lr.kind, lr.start, rr.end}, sopt));
  merged->mutable_state_a()->PrependOlder(
      left.join->mutable_state_a()->TakeAll());
  merged->mutable_state_a()->PrependOlder(
      right.join->mutable_state_a()->TakeAll());
  merged->mutable_state_b()->PrependOlder(
      left.join->mutable_state_b()->TakeAll());
  merged->mutable_state_b()->PrependOlder(
      right.join->mutable_state_b()->TakeAll());

  // 3: rewire the chain spine.
  EventQueue* in_queue = left.join->input(0);
  SLICE_CHECK(in_queue != nullptr);
  plan->ReplaceQueueConsumer(in_queue, merged, 0);
  if (right.next_queue != nullptr) {
    plan->MoveQueueProducer(right.next_queue, right.join,
                            SlicedWindowJoin::kNextPort, merged,
                            SlicedWindowJoin::kNextPort);
  }

  // 4: result side. Queries that read only the left slice's stream (their
  // window ends at the interior boundary) move behind a router branch
  // |Ta-Tb| < lr.end; queries reading both keep their left edge (now
  // carrying the merged full stream via the router's all-port) and lose
  // their right edge.
  std::vector<int> left_only, both;
  for (const ResultEdge& e : built_->result_edges) {
    if (e.slice_index == slice_index) {
      bool has_right = false;
      for (const ResultEdge& e2 : built_->result_edges) {
        if (e2.query_id == e.query_id &&
            e2.slice_index == slice_index + 1) {
          has_right = true;
          break;
        }
      }
      (has_right ? both : left_only).push_back(e.query_id);
    }
  }

  std::vector<Router::Branch> branches;
  for (size_t b = 0; b < left_only.size(); ++b) {
    branches.push_back(Router::Branch{lr.end, static_cast<int>(b)});
  }
  const int all_port = static_cast<int>(branches.size());
  auto* router = plan->InsertOperatorWhileRunning(std::make_unique<Router>(
      "router.m" + std::to_string(g_migration_serial++), branches,
      all_port));
  plan->ConnectWhileRunning(merged, SlicedWindowJoin::kResultPort, router,
                            0);

  std::vector<ResultEdge> kept_edges;
  for (ResultEdge& e : built_->result_edges) {
    if (e.slice_index == slice_index) {
      // Move this edge's queue behind the router.
      const auto it =
          std::find(left_only.begin(), left_only.end(), e.query_id);
      const int port = it == left_only.end()
                           ? all_port
                           : static_cast<int>(it - left_only.begin());
      if (e.queue != nullptr) {
        plan->MoveQueueProducer(e.queue, e.producer, e.producer_port, router,
                                port);
      } else {
        // Direct-wired query: move its sink queues behind the router.
        for (SinkEdge& se : built_->sink_edges[e.query_id]) {
          plan->MoveQueueProducer(se.queue, se.producer, se.producer_port,
                                  router, port);
          se.producer = router;
          se.producer_port = port;
        }
      }
      e.producer = router;
      e.producer_port = port;
      kept_edges.push_back(e);
      continue;
    }
    if (e.slice_index == slice_index + 1) {
      // Right edge: retire (its stream is covered by the router all-port).
      SLICE_CHECK(e.merge != nullptr);  // right consumers always have unions
      SLICE_CHECK(e.queue != nullptr);
      SLICE_CHECK(e.queue->empty());
      right.join->DetachOutput(e.producer_port, e.queue);
      plan->RetireQueue(e.queue);
      e.merge->CloseInputWhileRunning(e.merge_port);
      continue;
    }
    if (e.slice_index > slice_index + 1) --e.slice_index;
    kept_edges.push_back(e);
  }
  built_->result_edges = std::move(kept_edges);

  // 5: retire the drained connector queue and remove the old operators.
  plan->RetireQueue(left.next_queue);
  plan->RemoveOperatorWhileRunning(left.join);
  plan->RemoveOperatorWhileRunning(right.join);

  BuiltSlice merged_slice;
  merged_slice.join = merged;
  merged_slice.next_queue = right.next_queue;
  merged_slice.result_producer = router;
  merged_slice.full_port = all_port;
  built_->slices[slice_index] = merged_slice;
  built_->slices.erase(built_->slices.begin() + slice_index + 1);
  SyncChainMetadata();
  return slice_index;
}

int ChainMigrator::AddQuery(WindowSpec window, const std::string& name,
                            TimePoint results_from) {
  CheckQuiescent();
  // Quiescent plan + single-caller Engine contract (see SplitSlice).
  built_->plan->AssertSurgeryExclusive();
  SLICE_CHECK(window.kind == WindowKind::kTime);
  SLICE_CHECK_LT(built_->queries.size(), static_cast<size_t>(kMaxQueries));
  QueryPlan* plan = built_->plan.get();

  // Locate the slice prefix covering [0, window.extent); split if the
  // boundary is interior to a slice.
  int prefix_end = -1;  // index of last covering slice
  for (size_t s = 0; s < built_->slices.size(); ++s) {
    const SliceRange r = built_->slices[s].join->range();
    if (window.extent == r.end) {
      prefix_end = static_cast<int>(s);
      break;
    }
    if (window.extent > r.start && window.extent < r.end) {
      SplitSlice(static_cast<int>(s), window.extent);
      prefix_end = static_cast<int>(s);
      break;
    }
  }
  SLICE_CHECK_GE(prefix_end, 0);  // window must not exceed the chain span

  const int qid = static_cast<int>(built_->queries.size());
  ContinuousQuery query;
  query.id = qid;
  query.name = name;
  query.window = window;
  built_->queries.push_back(query);
  built_->sinks.push_back(nullptr);
  built_->collectors.push_back(nullptr);
  built_->sink_edges.push_back({});
  built_->merges.push_back(nullptr);
  built_->result_gates.push_back(nullptr);

  // Register the query in the chain spec (its boundary exists after the
  // split above).
  ChainSpec& spec = built_->chain.spec;
  const int bidx = BoundaryIndexOf(spec.boundaries, window.extent);
  SLICE_CHECK_GE(bidx, 0);
  spec.query_boundary.push_back(bidx);
  spec.queries_at_boundary[bidx].push_back(qid);

  // Terminal sinks.
  auto* counting = plan->InsertOperatorWhileRunning(
      std::make_unique<CountingSink>(name + ".sink"));
  built_->sinks[qid] = counting;
  CollectingSink* collecting = nullptr;
  if (built_->options.collect_results) {
    collecting = plan->InsertOperatorWhileRunning(
        std::make_unique<CollectingSink>(name + ".collect"));
    built_->collectors[qid] = collecting;
  }

  Operator* terminal;
  int terminal_port;
  if (prefix_end == 0) {
    terminal = built_->slices[0].result_producer;
    terminal_port = built_->slices[0].full_port;
  } else {
    auto* merge = plan->InsertOperatorWhileRunning(
        std::make_unique<UnionMerge>(name + ".union", prefix_end + 1));
    built_->merges[qid] = merge;
    for (int s = 0; s <= prefix_end; ++s) {
      EventQueue* eq = plan->ConnectWhileRunning(
          built_->slices[s].result_producer, built_->slices[s].full_port,
          merge, s);
      built_->result_edges.push_back(
          ResultEdge{qid, s, built_->slices[s].result_producer,
                     built_->slices[s].full_port, eq, merge, s});
    }
    terminal = merge;
    terminal_port = UnionMerge::kOutPort;
  }
  if (results_from > 0) {
    // Fresh-start semantics: suppress results joining pre-registration
    // state so the query delivers exactly the join over tuples with
    // timestamp >= results_from.
    auto* gate = plan->InsertOperatorWhileRunning(
        std::make_unique<ResultTimeGate>(name + ".fresh", results_from));
    built_->result_gates[qid] = gate;
    EventQueue* gq =
        plan->ConnectWhileRunning(terminal, terminal_port, gate, 0);
    if (prefix_end == 0) {
      // Record the slice -> gate edge so split/merge can re-route it.
      built_->result_edges.push_back(ResultEdge{qid, 0, terminal,
                                                terminal_port, gq, nullptr,
                                                0});
    }
    terminal = gate;
    terminal_port = ResultTimeGate::kOutPort;
  } else if (prefix_end == 0) {
    built_->result_edges.push_back(ResultEdge{qid, 0, terminal,
                                              terminal_port, nullptr,
                                              nullptr, 0});
  }
  EventQueue* cq =
      plan->ConnectWhileRunning(terminal, terminal_port, counting, 0);
  built_->sink_edges[qid].push_back(
      SinkEdge{terminal, terminal_port, cq, counting});
  if (collecting != nullptr) {
    EventQueue* xq =
        plan->ConnectWhileRunning(terminal, terminal_port, collecting, 0);
    built_->sink_edges[qid].push_back(
        SinkEdge{terminal, terminal_port, xq, collecting});
  }
  return qid;
}

void ChainMigrator::RemoveQuery(int query_id) {
  CheckQuiescent();
  // Quiescent plan + single-caller Engine contract (see SplitSlice).
  built_->plan->AssertSurgeryExclusive();
  SLICE_CHECK_GE(query_id, 0);
  SLICE_CHECK_LT(query_id, static_cast<int>(built_->queries.size()));
  SLICE_CHECK(built_->sinks[query_id] != nullptr);  // not already removed
  QueryPlan* plan = built_->plan.get();

  // Detach result edges feeding this query's union or gate (if any).
  std::vector<ResultEdge> kept;
  for (const ResultEdge& e : built_->result_edges) {
    if (e.query_id != query_id) {
      kept.push_back(e);
      continue;
    }
    if (e.queue != nullptr) {
      e.producer->DetachOutput(e.producer_port, e.queue);
      plan->RetireQueue(e.queue);
    }
  }
  built_->result_edges = std::move(kept);

  // Detach and remove the sinks (fed by the gate, the union, or a slice).
  for (const SinkEdge& se : built_->sink_edges[query_id]) {
    se.producer->DetachOutput(se.producer_port, se.queue);
    plan->RetireQueue(se.queue);
    plan->RemoveOperatorWhileRunning(se.sink);
  }
  built_->sink_edges[query_id].clear();
  Operator* gate = built_->result_gates[query_id];
  UnionMerge* merge = built_->merges[query_id];
  if (gate != nullptr && merge != nullptr) {
    // The union -> gate queue is recorded nowhere else; detach it here.
    EventQueue* gq = gate->input(0);
    SLICE_CHECK(gq != nullptr);
    merge->DetachOutput(UnionMerge::kOutPort, gq);
    plan->RetireQueue(gq);
  }
  if (gate != nullptr) {
    plan->RemoveOperatorWhileRunning(gate);
    built_->result_gates[query_id] = nullptr;
  }
  if (merge != nullptr) {
    plan->RemoveOperatorWhileRunning(merge);
    built_->merges[query_id] = nullptr;
  }
  built_->sinks[query_id] = nullptr;
  built_->collectors[query_id] = nullptr;

  // Deregister from the chain spec (the boundary itself stays; compact
  // with MergeSlices as Section 5.3 suggests).
  ChainSpec& spec = built_->chain.spec;
  if (query_id < static_cast<int>(spec.query_boundary.size())) {
    std::vector<int>& at = spec.queries_at_boundary[
        spec.query_boundary[query_id]];
    at.erase(std::remove(at.begin(), at.end(), query_id), at.end());
  }
  // The query entry stays (ids are stable); slices keep running and can be
  // compacted with MergeSlices, as Section 5.3 suggests.
}

void ValidateBuiltChain(const BuiltPlan& built, bool check_indexes) {
  SLICE_CHECK_EQ(built.num_levels, 1);  // invariants below are chain-shaped
  const ChainSpec& spec = built.chain.spec;
  const ChainPartition& partition = built.chain.partition;
  SLICE_CHECK(!built.slices.empty());
  SLICE_CHECK_EQ(partition.num_slices(),
                 static_cast<int>(built.slices.size()));
  for (size_t k = 1; k < spec.boundaries.size(); ++k) {
    SLICE_CHECK_LT(spec.boundaries[k - 1], spec.boundaries[k]);
  }
  SLICE_CHECK_EQ(spec.queries_at_boundary.size(), spec.boundaries.size());

  int64_t prev_end = 0;
  int prev_end_index = -1;
  for (size_t s = 0; s < built.slices.size(); ++s) {
    const BuiltSlice& slice = built.slices[s];
    const SliceRange r = slice.join->range();
    // Slices tile [0, w_max) contiguously.
    SLICE_CHECK_EQ(r.start, prev_end);
    SLICE_CHECK_LT(r.start, r.end);
    // Boundary indices agree with the live range.
    SLICE_CHECK_EQ(slice.start_boundary, prev_end_index);
    SLICE_CHECK_GE(slice.end_boundary, 0);
    SLICE_CHECK_LT(slice.end_boundary,
                   static_cast<int>(spec.boundaries.size()));
    SLICE_CHECK_EQ(spec.boundaries[slice.end_boundary], r.end);
    if (slice.start_boundary >= 0) {
      SLICE_CHECK_EQ(spec.boundaries[slice.start_boundary], r.start);
    }
    // The partition mirrors the slice ends.
    SLICE_CHECK_EQ(partition.slice_end_boundaries[s], slice.end_boundary);
    // The per-key probe indexes (when enabled) exactly cover the live
    // state: split/merge/set_window surgery must leave them spliced or
    // rebuilt correctly. O(state) — opt-in (tests), not the Engine path.
    if (check_indexes) {
      slice.join->state_a().CheckIndexConsistency();
      slice.join->state_b().CheckIndexConsistency();
      slice.join->composite_state().CheckIndexConsistency();
    }
    prev_end = r.end;
    prev_end_index = slice.end_boundary;
  }

  // Every live query is registered at the boundary its window names, and
  // that boundary is covered by the chain.
  SLICE_CHECK_EQ(spec.query_boundary.size(), built.queries.size());
  for (size_t qid = 0; qid < built.queries.size(); ++qid) {
    if (qid < built.sinks.size() && built.sinks[qid] == nullptr) {
      continue;  // unregistered
    }
    const int k = spec.query_boundary[qid];
    SLICE_CHECK_GE(k, 0);
    SLICE_CHECK_LT(k, static_cast<int>(spec.boundaries.size()));
    SLICE_CHECK_EQ(spec.boundaries[k], built.queries[qid].window.extent);
    const std::vector<int>& at = spec.queries_at_boundary[k];
    SLICE_CHECK(std::find(at.begin(), at.end(), static_cast<int>(qid)) !=
                at.end());
  }
}

}  // namespace stateslice
