#include "src/core/chain_spec.h"

#include <algorithm>
#include <sstream>

#include "src/common/check.h"

namespace stateslice {

int ChainSpec::QueriesAtOrBeyond(int k) const {
  int count = 0;
  for (int b : query_boundary) {
    if (b >= k) ++count;
  }
  return count;
}

std::string ChainSpec::DebugString() const {
  std::ostringstream out;
  out << "boundaries[";
  for (size_t i = 0; i < boundaries.size(); ++i) {
    if (i > 0) out << ",";
    if (kind == WindowKind::kTime) {
      out << TicksToSeconds(boundaries[i]) << "s";
    } else {
      out << boundaries[i];
    }
  }
  out << "]";
  return out.str();
}

ChainSpec BuildChainSpec(const std::vector<ContinuousQuery>& queries) {
  ValidateQueries(queries);
  ChainSpec spec;
  spec.kind = queries[0].window.kind;
  std::vector<int64_t> extents;
  extents.reserve(queries.size());
  for (const ContinuousQuery& q : queries) extents.push_back(q.window.extent);
  std::sort(extents.begin(), extents.end());
  extents.erase(std::unique(extents.begin(), extents.end()), extents.end());
  spec.boundaries = std::move(extents);

  spec.query_boundary.resize(queries.size());
  spec.queries_at_boundary.assign(spec.boundaries.size(), {});
  for (const ContinuousQuery& q : queries) {
    const auto it = std::lower_bound(spec.boundaries.begin(),
                                     spec.boundaries.end(), q.window.extent);
    SLICE_CHECK(it != spec.boundaries.end());
    SLICE_CHECK_EQ(*it, q.window.extent);
    const int k = static_cast<int>(it - spec.boundaries.begin());
    spec.query_boundary[q.id] = k;
    spec.queries_at_boundary[k].push_back(q.id);
  }
  return spec;
}

std::string ChainPartition::DebugString() const {
  std::ostringstream out;
  out << "slices_end_at[";
  for (size_t i = 0; i < slice_end_boundaries.size(); ++i) {
    if (i > 0) out << ",";
    out << slice_end_boundaries[i];
  }
  out << "]";
  return out.str();
}

ChainPartition MemOptPartition(const ChainSpec& spec) {
  ChainPartition partition;
  partition.slice_end_boundaries.resize(spec.boundaries.size());
  for (size_t i = 0; i < spec.boundaries.size(); ++i) {
    partition.slice_end_boundaries[i] = static_cast<int>(i);
  }
  return partition;
}

std::vector<TreeLevelQueries> TreeLevels(
    const std::vector<ContinuousQuery>& queries) {
  ValidateQueries(queries);
  std::vector<TreeLevelQueries> levels(
      static_cast<size_t>(MaxStreams(queries)) - 1);
  for (size_t l = 0; l < levels.size(); ++l) {
    TreeLevelQueries& level = levels[l];
    const int terminal_streams = static_cast<int>(l) + 2;
    int64_t pass_window = 0;
    for (const ContinuousQuery& q : queries) {
      if (q.num_streams() == terminal_streams) {
        ContinuousQuery local = q;
        local.id = static_cast<int>(level.local.size());
        level.local.push_back(std::move(local));
        level.global_ids.push_back(q.id);
      } else if (q.num_streams() > terminal_streams) {
        pass_window = std::max(pass_window, q.window.extent);
      }
    }
    if (pass_window > 0) {
      ContinuousQuery pass;
      pass.id = static_cast<int>(level.local.size());
      pass.name = "l" + std::to_string(l) + ".pass";
      pass.window = WindowSpec{queries[0].window.kind, pass_window};
      level.pseudo = pass.id;
      level.pass_window = pass_window;
      level.local.push_back(std::move(pass));
      level.global_ids.push_back(-1);
    }
    SLICE_CHECK(!level.local.empty());
  }
  return levels;
}

void ValidatePartition(const ChainSpec& spec,
                       const ChainPartition& partition) {
  SLICE_CHECK(!partition.slice_end_boundaries.empty());
  int prev = -1;
  for (int end : partition.slice_end_boundaries) {
    SLICE_CHECK_GT(end, prev);
    SLICE_CHECK_LT(end, spec.num_boundaries());
    prev = end;
  }
  SLICE_CHECK_EQ(partition.slice_end_boundaries.back(),
                 spec.num_boundaries() - 1);
}

}  // namespace stateslice
