// Selection push-down into a sliced-join chain (Section 6).
//
// Pure decision functions shared by the plan builder:
//  - the disjunctive predicate cond_i OR ... OR cond_N feeding each slice
//    (Fig. 15);
//  - whether a query's output path from a given slice needs a σ'-style
//    result gate (Fig. 10: Q2 gates slice 1's results but not slice 2's,
//    whose inputs were already filtered by exactly Q2's predicate);
//  - the lineage bitmask of queries at or beyond a boundary (Section 6.1).
#ifndef STATESLICE_CORE_SELECTION_PUSHDOWN_H_
#define STATESLICE_CORE_SELECTION_PUSHDOWN_H_

#include <cstdint>
#include <vector>

#include "src/common/predicate.h"
#include "src/core/chain_spec.h"
#include "src/query/query.h"

namespace stateslice {

// Disjunction of σ_A over all queries whose window boundary index is >=
// first_boundary — the filter placed before the slice that starts at
// boundary first_boundary-1. Returns the trivial true predicate when any
// such query has no selection.
Predicate SliceInputPredicate(const std::vector<ContinuousQuery>& queries,
                              const ChainSpec& spec, int first_boundary);

// Bitmask with bit q set for every query with boundary >= first_boundary;
// the LineageFilter form of the same disjunction.
uint64_t LineageMaskAtOrBeyond(const ChainSpec& spec, int first_boundary);

// True if query `query_id`'s output edge from a slice whose *consumers* are
// `consumers` (query ids of every query reading that slice's results) needs
// a result gate for the query's σ_A. No gate is needed when the query has
// no selection, or when the slice is consumed by queries whose σ_A
// disjunction equals the query's own predicate (i.e. the slice's inputs
// were filtered by exactly this predicate, Fig. 10's slice 2).
bool NeedsResultGate(const std::vector<ContinuousQuery>& queries,
                     const std::vector<int>& consumers, int query_id);

// Query ids consuming the results of a slice that ends at boundary
// `end_boundary` (all queries with window boundary >= end_boundary).
std::vector<int> SliceConsumers(const ChainSpec& spec, int end_boundary);

}  // namespace stateslice

#endif  // STATESLICE_CORE_SELECTION_PUSHDOWN_H_
