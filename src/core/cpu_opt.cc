#include "src/core/cpu_opt.h"

#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace stateslice {

ChainOptimizationResult ShortestChainPath(int num_boundaries,
                                          const ChainEdgeCostFn& edge_cost) {
  SLICE_CHECK_GT(num_boundaries, 0);
  // Nodes 0..m map to boundary indices -1..m-1 (node k = boundary k-1).
  const int m = num_boundaries;
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(m + 1, inf);
  std::vector<int> prev(m + 1, -1);
  dist[0] = 0.0;

  using Entry = std::pair<double, int>;  // (distance, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  heap.push({0.0, 0});
  std::vector<bool> done(m + 1, false);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (done[u]) continue;
    done[u] = true;
    if (u == m) break;
    for (int v = u + 1; v <= m; ++v) {
      const double w = edge_cost(u - 1, v - 1);
      SLICE_CHECK_GE(w, 0.0);  // Dijkstra requires non-negative edges
      if (d + w < dist[v]) {
        dist[v] = d + w;
        prev[v] = u;
        heap.push({dist[v], v});
      }
    }
  }
  SLICE_CHECK(dist[m] < inf);

  ChainOptimizationResult result;
  result.total_edge_cost = dist[m];
  std::vector<int> nodes;
  for (int v = m; v != 0; v = prev[v]) {
    SLICE_CHECK_GE(prev[v], 0);
    nodes.push_back(v);
  }
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
    result.partition.slice_end_boundaries.push_back(*it - 1);
  }
  return result;
}

ChainOptimizationResult BruteForceChainPath(int num_boundaries,
                                            const ChainEdgeCostFn& edge_cost) {
  SLICE_CHECK_GT(num_boundaries, 0);
  SLICE_CHECK_LE(num_boundaries, 20);
  const int m = num_boundaries;
  ChainOptimizationResult best;
  best.total_edge_cost = std::numeric_limits<double>::infinity();
  // Every subset of interior boundaries {0..m-2} defines a partition.
  const uint32_t subsets = m >= 1 ? (uint32_t{1} << (m - 1)) : 1;
  for (uint32_t mask = 0; mask < subsets; ++mask) {
    ChainPartition partition;
    for (int k = 0; k < m - 1; ++k) {
      if (mask & (uint32_t{1} << k)) {
        partition.slice_end_boundaries.push_back(k);
      }
    }
    partition.slice_end_boundaries.push_back(m - 1);
    double cost = 0.0;
    int start = -1;
    for (int end : partition.slice_end_boundaries) {
      cost += edge_cost(start, end);
      start = end;
    }
    if (cost < best.total_edge_cost) {
      best.total_edge_cost = cost;
      best.partition = std::move(partition);
    }
  }
  return best;
}

ChainPartition BuildCpuOptPartition(const ChainCostModel& model) {
  const auto result = ShortestChainPath(
      model.spec().num_boundaries(),
      [&model](int i, int j) { return model.EdgeCpuCost(i, j); });
  return result.partition;
}

}  // namespace stateslice
