// CPU-optimal chain construction (Section 5.2).
//
// All possible merge patterns of a sliced-join chain form the paths of a
// DAG over nodes v_0..v_m (v_k = window boundary w_k, Fig. 14); the edge
// (v_i, v_j) is a merged sliced join covering (w_i, w_j] with CPU cost
// l_{i,j} (Lemma 2 makes edge costs independent). The CPU-optimal chain is
// the shortest v_0 -> v_m path; the paper uses Dijkstra's algorithm for an
// O(N^2) optimization including edge-cost evaluation.
#ifndef STATESLICE_CORE_CPU_OPT_H_
#define STATESLICE_CORE_CPU_OPT_H_

#include <functional>

#include "src/core/chain_spec.h"
#include "src/core/cost_model.h"

namespace stateslice {

// Edge-cost callback: cost of a merged slice covering boundaries (i, j]
// where i in [-1, m-2] (-1 is the w_0 = 0 node) and j in (i, m-1].
using ChainEdgeCostFn = std::function<double(int i, int j)>;

// Outcome of a chain optimization.
struct ChainOptimizationResult {
  ChainPartition partition;
  double total_edge_cost = 0.0;
};

// Dijkstra shortest path over the boundary DAG with `num_boundaries` + 1
// nodes. Runs in O(m^2) including edge evaluation.
ChainOptimizationResult ShortestChainPath(int num_boundaries,
                                          const ChainEdgeCostFn& edge_cost);

// Exhaustive enumeration of all 2^(m-1) partitions; used by tests to verify
// Dijkstra's optimality. num_boundaries must be <= 20.
ChainOptimizationResult BruteForceChainPath(int num_boundaries,
                                            const ChainEdgeCostFn& edge_cost);

// Convenience wrapper: CPU-optimal partition for a workload under the
// generalized cost model (Sections 5.2/6.2, including selections).
ChainPartition BuildCpuOptPartition(const ChainCostModel& model);

}  // namespace stateslice

#endif  // STATESLICE_CORE_CPU_OPT_H_
