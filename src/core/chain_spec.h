// ChainSpec: the window-boundary structure shared by all chain builders.
//
// Given N queries sorted by window length (Section 5), the distinct window
// extents w_1 < w_2 < ... < w_m become the candidate slice boundaries. A
// concrete chain is a partition of [0, w_m) into consecutive slices whose
// ends are a subset of the boundaries that must include w_m (the directed
// graph v_0 -> v_m of Fig. 14: every path is a chain variant).
#ifndef STATESLICE_CORE_CHAIN_SPEC_H_
#define STATESLICE_CORE_CHAIN_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/operators/window_spec.h"
#include "src/query/query.h"

namespace stateslice {

// Boundary structure extracted from a query workload.
struct ChainSpec {
  WindowKind kind = WindowKind::kTime;
  // Distinct window extents, ascending. boundaries[k] is the paper's
  // w_{k+1}; the implicit w_0 = 0 is *not* stored.
  std::vector<int64_t> boundaries;
  // query id -> index into `boundaries` of its window.
  std::vector<int> query_boundary;
  // boundary index -> ids of queries registered exactly at that window.
  std::vector<std::vector<int>> queries_at_boundary;

  int num_boundaries() const { return static_cast<int>(boundaries.size()); }

  // Number of queries whose window is >= boundaries[k] (they consume the
  // results of every slice ending at or before that boundary).
  int QueriesAtOrBeyond(int k) const;

  std::string DebugString() const;
};

// Builds the boundary structure. Queries must pass ValidateQueries.
ChainSpec BuildChainSpec(const std::vector<ContinuousQuery>& queries);

// A concrete slicing: the ascending boundary indices where slices end.
// Mem-Opt uses every boundary (Section 5.1); CPU-Opt may skip (merge)
// boundaries (Section 5.2). The last entry is always num_boundaries()-1.
struct ChainPartition {
  std::vector<int> slice_end_boundaries;

  int num_slices() const {
    return static_cast<int>(slice_end_boundaries.size());
  }

  // Start boundary index of slice s (-1 for the first slice, meaning w_0=0).
  int SliceStartBoundary(int s) const {
    return s == 0 ? -1 : slice_end_boundaries[s - 1];
  }

  std::string DebugString() const;
};

// The all-boundaries partition (one slice per distinct window).
ChainPartition MemOptPartition(const ChainSpec& spec);

// Validates that `partition` is a legal path v_0 -> v_m for `spec`.
void ValidatePartition(const ChainSpec& spec, const ChainPartition& partition);

// A fully-resolved chain plan: the boundary structure plus the partition.
struct ChainPlan {
  ChainSpec spec;
  ChainPartition partition;
};

// A fully-resolved N-way join tree: one sliced chain per level of the
// left-deep tree (level k joins the composite results of level k-1 with
// stream k+1). A binary workload has exactly one level — the plain chain.
struct JoinTreePlan {
  std::vector<ChainPlan> levels;

  int num_levels() const { return static_cast<int>(levels.size()); }
};

// The per-level local query set the shared tree builders work with.
// Level l's chain is shared by the *terminal* queries (exactly l+2
// streams, which read their final results at this level) and — when
// deeper levels exist — a synthetic unfiltered "pass-through" query whose
// window is the largest window among deeper queries: its result edges
// carry the composite stream into level l+1. Local ids are dense per
// level; `global_ids` maps them back to workload ids (-1 for the
// pass-through).
struct TreeLevelQueries {
  std::vector<ContinuousQuery> local;  // dense local ids; pseudo last
  std::vector<int> global_ids;         // local id -> workload id; -1 pseudo
  int pseudo = -1;                     // local id of the pass-through, -1
  int64_t pass_window = 0;             // its window extent (0 when absent)
};

// Splits a validated workload into per-level local query sets (one entry
// per tree level; a binary workload yields one level that is the workload
// itself). Queries must pass ValidateQueries.
std::vector<TreeLevelQueries> TreeLevels(
    const std::vector<ContinuousQuery>& queries);

}  // namespace stateslice

#endif  // STATESLICE_CORE_CHAIN_SPEC_H_
