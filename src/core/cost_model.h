// The paper's analytic cost model.
//
// Section 3 derives closed-form state-memory (Cm) and CPU (Cp) costs for the
// two-query running example under the three sharing strategies (Eqs. 1-3)
// and the relative savings of state-slicing (Eq. 4, plotted in Fig. 11).
// Sections 5.2/6.2 generalize the CPU cost to arbitrary chain partitions;
// ChainEdgeCost implements the per-edge cost l_{i,j} of the shortest-path
// formulation (Fig. 14).
//
// Units: memory in KB (Cm) and in tuples; CPU in comparisons per second.
#ifndef STATESLICE_CORE_COST_MODEL_H_
#define STATESLICE_CORE_COST_MODEL_H_

#include <string>
#include <vector>

#include "src/core/chain_spec.h"
#include "src/query/query.h"

namespace stateslice {

// Parameters of the two-query analysis (Table 1).
struct TwoQueryParams {
  double lambda = 20.0;    // per-stream rate λ (λA = λB), tuples/sec
  double w1 = 10.0;        // Q1 window, seconds (0 < w1 < w2)
  double w2 = 60.0;        // Q2 window, seconds
  double s_sigma = 0.5;    // selectivity of σA (Q2's filter)
  double s1 = 0.1;         // join selectivity
  double tuple_kb = 0.1;   // Mt, KB per tuple
};

// One strategy's predicted costs.
struct CostEstimate {
  double memory_kb = 0.0;
  double memory_tuples = 0.0;
  double cpu_per_sec = 0.0;
};

// Eq. 1 — naive sharing with selection pull-up (Fig. 3).
CostEstimate PullUpCost(const TwoQueryParams& p);

// Eq. 2 — stream partition with selection push-down (Fig. 4).
CostEstimate PushDownCost(const TwoQueryParams& p);

// Eq. 3 — state-slice chain (Fig. 10).
CostEstimate StateSliceCost(const TwoQueryParams& p);

// Eq. 4 — relative savings of state-slicing, as plotted in Fig. 11.
// rho = w1/w2 in (0, 1).
struct SliceSavings {
  double memory_vs_pullup = 0.0;    // (Cm1-Cm3)/Cm1
  double memory_vs_pushdown = 0.0;  // (Cm2-Cm3)/Cm2
  double cpu_vs_pullup = 0.0;       // (Cp1-Cp3)/Cp1  (λ terms omitted)
  double cpu_vs_pushdown = 0.0;     // (Cp2-Cp3)/Cp2  (λ terms omitted)
};
SliceSavings ComputeSliceSavings(double rho, double s_sigma, double s1);

// ---------------------------------------------------------------------
// Generalized N-query chain costs (Sections 5.2 and 6.2).
// ---------------------------------------------------------------------

// Environment for chain-cost evaluation.
struct ChainCostParams {
  double lambda_a = 20.0;  // stream A rate, tuples/sec
  double lambda_b = 20.0;  // stream B rate, tuples/sec
  double s1 = 0.1;         // join selectivity
  // Per-operator, per-tuple system overhead in comparison units (queue
  // moves + scheduling context, Section 5.2's C_sys). The default keeps
  // uniform window distributions unmerged at the paper's rates (matching
  // Fig. 19(a)) while letting tightly packed windows merge; calibrate with
  // bench_chain_scaling for other runtimes.
  double c_sys = 2.0;
  double tuple_kb = 0.1;   // Mt for memory estimates
};

// Precomputed per-boundary quantities for a workload.
class ChainCostModel {
 public:
  ChainCostModel(const std::vector<ContinuousQuery>& queries,
                 const ChainSpec& spec, const ChainCostParams& params);

  // CPU cost per second of one merged sliced join covering boundary
  // indices (i, j] — the edge length l_{i,j} of the DAG of Fig. 14.
  // i ranges over -1..m-2 (-1 = the w_0 = 0 node), j over i+1..m-1.
  double EdgeCpuCost(int i, int j) const;

  // State-memory (KB) of that merged slice.
  double EdgeMemoryKb(int i, int j) const;

  // Total CPU (per second) of a chain partition: sum of edge costs plus
  // partition-independent terms (entry filtering).
  double PartitionCpuCost(const ChainPartition& partition) const;

  // Total state memory (KB) of a chain partition.
  double PartitionMemoryKb(const ChainPartition& partition) const;

  // Effective A-tuple rate entering a slice whose start boundary is i
  // (i.e. after the disjunctive filter of queries with boundary > i).
  double EffectiveRateA(int i) const;

  const ChainSpec& spec() const { return spec_; }
  const ChainCostParams& params() const { return params_; }

 private:
  double BoundarySeconds(int k) const;  // w_{k+1} in seconds; k = -1 -> 0

  ChainSpec spec_;  // by value: the model may outlive the caller's spec
  ChainCostParams params_;
  // disjunction_selectivity_[k] = selectivity of OR{cond_q : boundary(q)
  // >= k}; index m means "no queries" (0).
  std::vector<double> disjunction_selectivity_;
};

// ---------------------------------------------------------------------
// N-way join-tree costs (one sliced chain per level; see chain_spec.h).
// ---------------------------------------------------------------------

// Per-level cost-model parameters for the left-deep tree over `queries`:
// entry l describes level l's inputs. Level 0 sees the raw stream rates;
// at level l >= 1 the left input is the composite output of level l-1,
// whose rate is estimated with the paper's windowed-join output-rate model
// (2 * lambda_left * lambda_right * S1 * W_pass seconds within the
// pass-through window). The right input keeps the raw per-stream rate
// (params.lambda_b). One entry per level; binary workloads get exactly
// {params}.
std::vector<ChainCostParams> TreeLevelCostParams(
    const std::vector<ContinuousQuery>& queries,
    const ChainCostParams& params);
// Overload for callers that already computed TreeLevels(queries) — avoids
// re-validating and re-copying the per-level query sets.
std::vector<ChainCostParams> TreeLevelCostParams(
    const std::vector<TreeLevelQueries>& levels,
    const ChainCostParams& params);

// Total predicted cost of a join-tree plan: the per-level partition costs
// (each under its TreeLevelCostParams entry) summed across levels.
struct TreeCostEstimate {
  double cpu_per_sec = 0.0;
  double memory_kb = 0.0;
};
TreeCostEstimate TreeCost(const std::vector<ContinuousQuery>& queries,
                          const JoinTreePlan& tree,
                          const ChainCostParams& params);

}  // namespace stateslice

#endif  // STATESLICE_CORE_COST_MODEL_H_
