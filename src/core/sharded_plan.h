// Shard replication for the key-partitioned execution mode.
//
// The sharded runtime (ExecutionMode::kSharded) runs N independent full
// replicas of the shared sliced chain — each with its own QueryPlan, arena,
// SlotRing states, and CostCounters — plus one small *merge plan* that
// re-establishes global timestamp order across the shard result streams
// before the authoritative sinks. Since every equi-key lands in exactly
// one shard and equi-join results only pair equal keys, the union of the
// per-shard result multisets is exactly the unsharded result multiset;
// the per-query UnionMerge (watermark-driven, the paper's Section 4.3
// machinery) restores the timestamp order the deterministic scheduler
// would have delivered.
//
// This header only builds and wires the plans; the runtime that threads
// them is src/runtime/sharded_scheduler.h.
#ifndef STATESLICE_CORE_SHARDED_PLAN_H_
#define STATESLICE_CORE_SHARDED_PLAN_H_

#include <functional>
#include <vector>

#include "src/core/shared_plan_builder.h"

namespace stateslice {

// The N shard replicas, the merge plan, and the queue endpoints between
// them. Queues are owned by their respective plans; BuiltPlans own the
// plans — the set is movable, heap-free aggregation.
struct ShardedPlanSet {
  // One full chain replica per shard.
  std::vector<BuiltPlan> shards;
  // exits[shard][query]: exit tap on the shard plan carrying a copy of
  // everything the shard's own per-query sink receives (results and
  // punctuations, timestamp-ordered). Drained by the shard's executor.
  std::vector<std::vector<EventQueue*>> exits;
  // The merge plan: per query one UnionMerge with num_shards inputs
  // feeding the authoritative CountingSink/CollectingSink. merge.entry is
  // null — feed through merge_entries.
  BuiltPlan merge;
  // merge_entries[shard][query]: entry queue into the merge plan's
  // UnionMerge input port for that shard.
  std::vector<std::vector<EventQueue*>> merge_entries;

  int num_shards() const { return static_cast<int>(shards.size()); }
  int num_queries() const { return static_cast<int>(merge.queries.size()); }
};

// Builds one shard replica (a started BuiltPlan). Invoked num_shards
// times; the Engine supplies its strategy dispatch here so this layer
// stays strategy-agnostic.
using ShardBuildFn = std::function<BuiltPlan()>;

// Replicates the plan across `num_shards` shards, taps each replica's
// per-query result stream with an exit queue, and builds the started merge
// plan. `merge_options.collect_results` controls whether the merge plan
// (the authoritative result surface) gets CollectingSinks; replicas should
// be built with collect_results=false to avoid duplicating result storage.
ShardedPlanSet BuildShardedPlanSet(int num_shards,
                                   const std::vector<ContinuousQuery>& queries,
                                   const BuildOptions& merge_options,
                                   const ShardBuildFn& build_shard);

}  // namespace stateslice

#endif  // STATESLICE_CORE_SHARDED_PLAN_H_
