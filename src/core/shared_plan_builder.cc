#include "src/core/shared_plan_builder.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/core/selection_pushdown.h"
#include "src/operators/multiway.h"
#include "src/operators/router.h"
#include "src/operators/selection.h"
#include "src/operators/sliding_window_join.h"
#include "src/operators/split.h"

namespace stateslice {
namespace {

// Creates the per-query sinks and returns the operator every result edge of
// query q should ultimately feed. Both sink flavors receive the same edge
// via output-port broadcast.
void AttachSinks(QueryPlan* plan, Operator* producer, int out_port,
                 const ContinuousQuery& q, const BuildOptions& options,
                 BuiltPlan* built) {
  auto* counting =
      plan->AddOperator(std::make_unique<CountingSink>(q.name + ".sink"));
  EventQueue* cq = plan->Connect(producer, out_port, counting, 0);
  built->sinks[q.id] = counting;
  built->sink_edges[q.id].push_back(SinkEdge{producer, out_port, cq,
                                             counting});
  if (options.collect_results) {
    auto* collecting = plan->AddOperator(
        std::make_unique<CollectingSink>(q.name + ".collect"));
    EventQueue* xq = plan->Connect(producer, out_port, collecting, 0);
    built->collectors[q.id] = collecting;
    built->sink_edges[q.id].push_back(SinkEdge{producer, out_port, xq,
                                               collecting});
  }
}

BuiltPlan NewBuiltPlan(const std::vector<ContinuousQuery>& queries,
                       const BuildOptions& options) {
  BuiltPlan built;
  built.plan = std::make_unique<QueryPlan>();
  built.queries = queries;
  built.options = options;
  built.sinks.assign(queries.size(), nullptr);
  built.collectors.assign(queries.size(), nullptr);
  built.sink_edges.assign(queries.size(), {});
  built.merges.assign(queries.size(), nullptr);
  built.result_gates.assign(queries.size(), nullptr);
  return built;
}

}  // namespace

// --------------------------------------------------------------- unshared

BuiltPlan BuildUnsharedPlans(const std::vector<ContinuousQuery>& queries,
                             const BuildOptions& options) {
  ValidateQueries(queries);
  SLICE_CHECK_EQ(MaxStreams(queries), 2);
  BuiltPlan built = NewBuiltPlan(queries, options);
  QueryPlan* plan = built.plan.get();

  auto* fanout = plan->AddOperator(std::make_unique<Fanout>("fanout"));
  built.entry = plan->AddEntryQueue("entry", fanout, 0);

  for (const ContinuousQuery& q : queries) {
    Operator* upstream = fanout;
    int upstream_port = Fanout::kOutPort;
    if (!q.selection_a.IsTrue()) {
      auto* sel = plan->AddOperator(std::make_unique<Selection>(
          q.name + ".sigmaA", q.selection_a, StreamSide::kA));
      plan->Connect(upstream, upstream_port, sel, 0);
      upstream = sel;
      upstream_port = Selection::kOutPort;
    }
    if (!q.selection_b.IsTrue()) {
      auto* sel = plan->AddOperator(std::make_unique<Selection>(
          q.name + ".sigmaB", q.selection_b, StreamSide::kB));
      plan->Connect(upstream, upstream_port, sel, 0);
      upstream = sel;
      upstream_port = Selection::kOutPort;
    }
    SlidingWindowJoin::Options jopt;
    jopt.condition = options.condition;
    jopt.use_key_index = options.use_key_index;
    auto* join = plan->AddOperator(std::make_unique<SlidingWindowJoin>(
        q.name + ".join", q.window, q.window, jopt));
    plan->Connect(upstream, upstream_port, join, 0);
    AttachSinks(plan, join, SlidingWindowJoin::kResultPort, q, options,
                &built);
  }
  plan->Start();
  return built;
}

// ---------------------------------------------------------------- pull-up

BuiltPlan BuildPullUpPlan(const std::vector<ContinuousQuery>& queries,
                          const BuildOptions& options) {
  ValidateQueries(queries);
  SLICE_CHECK_EQ(MaxStreams(queries), 2);
  BuiltPlan built = NewBuiltPlan(queries, options);
  QueryPlan* plan = built.plan.get();
  const ChainSpec spec = BuildChainSpec(queries);
  const int last = spec.num_boundaries() - 1;

  // One join at the largest window; no early filtering (selection pull-up).
  SlidingWindowJoin::Options jopt;
  jopt.condition = options.condition;
  jopt.use_key_index = options.use_key_index;
  auto* join = plan->AddOperator(std::make_unique<SlidingWindowJoin>(
      "join.pullup", WindowSpec{spec.kind, spec.boundaries[last]},
      WindowSpec{spec.kind, spec.boundaries[last]}, jopt));
  built.entry = plan->AddEntryQueue("entry", join, 0);

  // Router: one profile-table branch per query below the largest window;
  // queries at the largest window ride the unconditional "all" edge
  // (Fig. 3). Port numbering: branch ports 0..k-1, all-port k.
  std::vector<Router::Branch> branches;
  std::vector<int> branch_query;  // branch index -> query id
  std::vector<int> all_queries;
  for (const ContinuousQuery& q : queries) {
    if (spec.query_boundary[q.id] == last) {
      all_queries.push_back(q.id);
    } else {
      branches.push_back(Router::Branch{
          .max_distance = q.window.extent,
          .port = static_cast<int>(branches.size()),
      });
      branch_query.push_back(q.id);
    }
  }
  const int all_port = static_cast<int>(branches.size());
  auto* router = plan->AddOperator(
      std::make_unique<Router>("router", branches, all_port));
  plan->Connect(join, SlidingWindowJoin::kResultPort, router, 0);

  auto wire_query = [&](const ContinuousQuery& q, int router_port) {
    Operator* upstream = router;
    int upstream_port = router_port;
    if (!q.selection_a.IsTrue()) {
      auto* gate = plan->AddOperator(std::make_unique<ResultGate>(
          q.name + ".gateA", q.selection_a, StreamSide::kA));
      plan->Connect(upstream, upstream_port, gate, 0);
      upstream = gate;
      upstream_port = ResultGate::kOutPort;
    }
    if (!q.selection_b.IsTrue()) {
      auto* gate = plan->AddOperator(std::make_unique<ResultGate>(
          q.name + ".gateB", q.selection_b, StreamSide::kB));
      plan->Connect(upstream, upstream_port, gate, 0);
      upstream = gate;
      upstream_port = ResultGate::kOutPort;
    }
    AttachSinks(plan, upstream, upstream_port, q, options, &built);
  };
  for (size_t b = 0; b < branch_query.size(); ++b) {
    wire_query(queries[branch_query[b]], static_cast<int>(b));
  }
  for (int q : all_queries) {
    wire_query(queries[q], all_port);
  }
  plan->Start();
  return built;
}

// --------------------------------------------------------------- push-down

BuiltPlan BuildPushDownPlan(const std::vector<ContinuousQuery>& queries,
                            const BuildOptions& options) {
  ValidateQueries(queries);
  SLICE_CHECK_EQ(MaxStreams(queries), 2);
  BuiltPlan built = NewBuiltPlan(queries, options);
  QueryPlan* plan = built.plan.get();

  // Partition queries into selection-free (F) and filtered (S). All
  // filtered queries must share one predicate — the paper's experimental
  // setting for this strategy (heterogeneous predicates would need m*n
  // partitioned joins, which Section 3.2 argues against).
  std::vector<int> plain, filtered;
  for (const ContinuousQuery& q : queries) {
    SLICE_CHECK(q.selection_b.IsTrue());  // strategy models σ on A only
    if (q.selection_a.IsTrue()) {
      plain.push_back(q.id);
    } else {
      filtered.push_back(q.id);
    }
  }
  for (size_t i = 1; i < filtered.size(); ++i) {
    SLICE_CHECK(queries[filtered[i]].selection_a.description() ==
                queries[filtered[0]].selection_a.description());
  }

  if (filtered.empty() || plain.empty()) {
    // Degenerate partitions: a single join suffices. With no selections
    // this equals pull-up; with only filtered queries, push the shared σ
    // below one shared join.
    BuiltPlan single = BuildPullUpPlan(queries, options);
    if (!filtered.empty() && plain.empty()) {
      // Prepend the shared selection by rebuilding with a filter entry.
      // (Cheap construction path; plans are built once per run.)
      BuiltPlan redo = NewBuiltPlan(queries, options);
      QueryPlan* p2 = redo.plan.get();
      auto* sel = p2->AddOperator(std::make_unique<Selection>(
          "sigmaA.shared", queries[filtered[0]].selection_a, StreamSide::kA));
      redo.entry = p2->AddEntryQueue("entry", sel, 0);
      // Strip selections: inputs are pre-filtered.
      std::vector<ContinuousQuery> stripped = queries;
      for (ContinuousQuery& q : stripped) q.selection_a = Predicate();
      const ChainSpec spec = BuildChainSpec(stripped);
      const int last = spec.num_boundaries() - 1;
      SlidingWindowJoin::Options jopt;
      jopt.condition = options.condition;
      jopt.use_key_index = options.use_key_index;
      auto* join = p2->AddOperator(std::make_unique<SlidingWindowJoin>(
          "join.filtered", WindowSpec{spec.kind, spec.boundaries[last]},
          WindowSpec{spec.kind, spec.boundaries[last]}, jopt));
      p2->Connect(sel, Selection::kOutPort, join, 0);
      std::vector<Router::Branch> branches;
      std::vector<int> branch_query;
      std::vector<int> all_queries;
      for (const ContinuousQuery& q : stripped) {
        if (spec.query_boundary[q.id] == last) {
          all_queries.push_back(q.id);
        } else {
          branches.push_back(Router::Branch{
              q.window.extent, static_cast<int>(branches.size())});
          branch_query.push_back(q.id);
        }
      }
      const int all_port = static_cast<int>(branches.size());
      auto* router = p2->AddOperator(
          std::make_unique<Router>("router", branches, all_port));
      p2->Connect(join, SlidingWindowJoin::kResultPort, router, 0);
      for (size_t b = 0; b < branch_query.size(); ++b) {
        AttachSinks(p2, router, static_cast<int>(b),
                    queries[branch_query[b]], options, &redo);
      }
      for (int q : all_queries) {
        AttachSinks(p2, router, all_port, queries[q], options, &redo);
      }
      p2->Start();
      return redo;
    }
    return single;
  }

  const Predicate sigma = queries[filtered[0]].selection_a;
  int64_t w_plain = 0;   // largest window among selection-free queries
  int64_t w_all = 0;     // largest window overall
  for (int q : plain) w_plain = std::max(w_plain, queries[q].window.extent);
  for (const ContinuousQuery& q : queries) {
    w_all = std::max(w_all, q.window.extent);
  }
  const WindowKind kind = queries[0].window.kind;

  // Split stream A on σ; B broadcasts to both partitions (Fig. 4).
  auto* split = plan->AddOperator(
      std::make_unique<Split>("split.sigmaA", sigma, StreamSide::kA));
  built.entry = plan->AddEntryQueue("entry", split, 0);

  SlidingWindowJoin::Options jopt;
  jopt.condition = options.condition;
  jopt.use_key_index = options.use_key_index;
  jopt.punctuate_results = true;  // unions downstream need watermarks

  // join_false serves only the selection-free queries' σ-false tuples.
  auto* join_false = plan->AddOperator(std::make_unique<SlidingWindowJoin>(
      "join.sigma_false", WindowSpec{kind, w_plain},
      WindowSpec{kind, w_plain}, jopt));
  plan->Connect(split, Split::kRestPort, join_false, 0);

  // join_true serves everything that passed σ, at the overall max window.
  auto* join_true = plan->AddOperator(std::make_unique<SlidingWindowJoin>(
      "join.sigma_true", WindowSpec{kind, w_all}, WindowSpec{kind, w_all},
      jopt));
  plan->Connect(split, Split::kMatchPort, join_true, 0);

  // Router over join_true's results: one branch per query below w_all, an
  // "all" edge for queries at w_all.
  std::vector<Router::Branch> branches;
  std::vector<int> branch_query;
  std::vector<int> all_queries;
  for (const ContinuousQuery& q : queries) {
    if (q.window.extent == w_all) {
      all_queries.push_back(q.id);
    } else {
      branches.push_back(Router::Branch{q.window.extent,
                                        static_cast<int>(branches.size())});
      branch_query.push_back(q.id);
    }
  }
  const int all_port = static_cast<int>(branches.size());
  auto* router_true = plan->AddOperator(
      std::make_unique<Router>("router.sigma_true", branches, all_port));
  plan->Connect(join_true, SlidingWindowJoin::kResultPort, router_true, 0);

  // Router over join_false's results for the selection-free queries.
  std::vector<Router::Branch> branches_f;
  std::vector<int> branch_query_f;
  std::vector<int> all_queries_f;
  for (int qid : plain) {
    const ContinuousQuery& q = queries[qid];
    if (q.window.extent == w_plain) {
      all_queries_f.push_back(qid);
    } else {
      branches_f.push_back(Router::Branch{
          q.window.extent, static_cast<int>(branches_f.size())});
      branch_query_f.push_back(qid);
    }
  }
  const int all_port_f = static_cast<int>(branches_f.size());
  auto* router_false = plan->AddOperator(std::make_unique<Router>(
      "router.sigma_false", branches_f, all_port_f));
  plan->Connect(join_false, SlidingWindowJoin::kResultPort, router_false, 0);

  auto true_port_of = [&](int qid) {
    for (size_t b = 0; b < branch_query.size(); ++b) {
      if (branch_query[b] == qid) return static_cast<int>(b);
    }
    return all_port;
  };
  auto false_port_of = [&](int qid) {
    for (size_t b = 0; b < branch_query_f.size(); ++b) {
      if (branch_query_f[b] == qid) return static_cast<int>(b);
    }
    return all_port_f;
  };

  // Filtered queries read join_true only; selection-free queries merge both
  // partitions through an order-preserving union.
  for (int qid : filtered) {
    AttachSinks(plan, router_true, true_port_of(qid), queries[qid], options,
                &built);
  }
  for (int qid : plain) {
    auto* merge = plan->AddOperator(std::make_unique<UnionMerge>(
        queries[qid].name + ".union", /*input_count=*/2));
    plan->Connect(router_false, false_port_of(qid), merge, 0);
    plan->Connect(router_true, true_port_of(qid), merge, 1);
    built.merges[qid] = merge;
    AttachSinks(plan, merge, UnionMerge::kOutPort, queries[qid], options,
                &built);
  }
  plan->Start();
  return built;
}

// ------------------------------------------------------------- state-slice

namespace {

// Wiring handed back by one chain level: the producer/port of the
// pass-through composite stream feeding the next level's input merge
// (null at the tree's last level, which has no pass-through).
struct LevelWiring {
  Operator* pass_producer = nullptr;
  int pass_port = 0;
};

// Builds one sliced-chain level of the (possibly one-level) join tree into
// `built`. `local` is the level's query set with dense local ids
// (`global_ids` maps them to workload ids; `pseudo` is the local id of the
// pass-through consumer, -1 when absent), `chain` its chain plan,
// `upstream` the level's input (nullptr = the plan entry queue), `prefix`
// the operator-name prefix ("" keeps the historical binary names), and
// `gate_floor` the largest pass-through window among earlier levels —
// terminal queries with a smaller window gate their outputs with a
// WindowGate because earlier levels produced composites wider than their
// window.
LevelWiring BuildChainLevel(QueryPlan* plan, BuiltPlan* built,
                            const std::vector<ContinuousQuery>& local,
                            const std::vector<int>& global_ids, int pseudo,
                            const ChainPlan& chain,
                            const BuildOptions& options,
                            const std::string& prefix, int level, int anchor,
                            Operator* level_upstream, int level_upstream_port,
                            int64_t gate_floor) {
  ValidatePartition(chain.spec, chain.partition);
  LevelWiring wiring;
  const ChainSpec& spec = chain.spec;
  const ChainPartition& partition = chain.partition;
  const int num_slices = partition.num_slices();
  // Levels >= 1 join the previous level's composites against stream
  // level+1; level 0 is the plain binary chain over streams 0 and 1.
  const bool composite = level > 0;

  // ---- the chain spine: [stamper] -> [filter_1] -> J_1 -> [filter_2] ->
  // J_2 -> ... (filters are the σ'_i disjunctions of Fig. 15; composite
  // levels have no input filters — their selections are gated at the
  // result side, and the pass-through consumer keeps every input anyway).
  Operator* spine_tail = nullptr;  // last operator on the spine so far
  int spine_port = 0;

  std::vector<Predicate> query_preds;
  for (const ContinuousQuery& q : local) {
    query_preds.push_back(q.selection_a);
    if (!composite) {
      SLICE_CHECK(q.selection_b.IsTrue());  // σ on A; B-side is an extension
    }
  }

  if (options.use_lineage && !composite) {
    auto* stamper = plan->AddOperator(std::make_unique<LineageStamper>(
        "lineage.stamper", query_preds, StreamSide::kA));
    built->entry = plan->AddEntryQueue("entry", stamper, 0);
    spine_tail = stamper;
    spine_port = LineageStamper::kOutPort;
  }

  std::vector<BuiltSlice> slices;
  // Feeds `op` from the spine (or the level input / plan entry when the
  // spine is still empty), recording the previous slice's next-queue.
  auto attach_to_spine = [&](Operator* op) {
    if (spine_tail == nullptr) {
      if (level_upstream == nullptr) {
        built->entry = plan->AddEntryQueue("entry", op, 0);
      } else {
        plan->Connect(level_upstream, level_upstream_port, op, 0);
      }
    } else {
      EventQueue* q = plan->Connect(spine_tail, spine_port, op, 0);
      if (!slices.empty() && slices.back().next_queue == nullptr) {
        slices.back().next_queue = q;
      }
    }
  };

  for (int s = 0; s < num_slices; ++s) {
    const int lo = partition.SliceStartBoundary(s);
    const int hi = partition.slice_end_boundaries[s];
    // σ'_{lo+1}: the disjunction over queries with boundary > lo.
    Operator* filter = nullptr;
    if (!composite) {
      const Predicate disjunction =
          SliceInputPredicate(local, spec, /*first_boundary=*/lo + 1);
      if (options.use_lineage) {
        const uint64_t mask = LineageMaskAtOrBeyond(spec, lo + 1);
        // The stamper already dropped tuples matching no query, so the
        // first filter is redundant in lineage mode.
        if (s > 0 && !disjunction.IsTrue()) {
          filter = plan->AddOperator(std::make_unique<LineageFilter>(
              prefix + "filter.s" + std::to_string(s), mask, StreamSide::kA));
        }
      } else if (!disjunction.IsTrue()) {
        filter = plan->AddOperator(std::make_unique<Selection>(
            prefix + "filter.s" + std::to_string(s), disjunction,
            StreamSide::kA));
      }
    }
    if (filter != nullptr) {
      attach_to_spine(filter);
      spine_tail = filter;
      spine_port = 0;
    }

    SlicedWindowJoin::Options sopt;
    sopt.condition = options.condition;
    sopt.use_key_index = options.use_key_index;
    sopt.punctuate_results = true;
    if (composite) {
      sopt.composite_left = true;
      sopt.right_stream = level + 1;
      sopt.anchor = anchor;
      sopt.left_arity = level + 1;
    }
    const SliceRange range{spec.kind, lo < 0 ? 0 : spec.boundaries[lo],
                           spec.boundaries[hi]};
    auto* join = plan->AddOperator(std::make_unique<SlicedWindowJoin>(
        prefix + "slice." + std::to_string(s), range, sopt));
    attach_to_spine(join);
    spine_tail = join;
    spine_port = SlicedWindowJoin::kNextPort;
    slices.push_back(BuiltSlice{join, lo, hi, nullptr});
  }

  // ---- result side: per query, collect edges from every slice it reads.
  // edge_count[q] = slices fully covered + (1 if q's boundary is interior
  // to some merged slice).
  std::vector<int> edge_count(local.size(), 0);
  for (const ContinuousQuery& q : local) {
    const int k = spec.query_boundary[q.id];
    for (int s = 0; s < num_slices; ++s) {
      const int hi = partition.slice_end_boundaries[s];
      if (hi <= k) ++edge_count[q.id];
      const int lo = partition.SliceStartBoundary(s);
      if (k > lo && k < hi) ++edge_count[q.id];  // interior: router branch
    }
  }

  // Pre-create merges (or mark direct-wired queries). The pass-through's
  // merge is level-local (the next level consumes it); terminal queries
  // register theirs in the BuiltPlan under their workload id.
  UnionMerge* pass_merge = nullptr;
  std::vector<int> next_port(local.size(), 0);
  for (const ContinuousQuery& q : local) {
    SLICE_CHECK_GT(edge_count[q.id], 0);
    if (edge_count[q.id] <= 1) continue;
    if (q.id == pseudo) {
      pass_merge = plan->AddOperator(std::make_unique<UnionMerge>(
          prefix + "pass.union", edge_count[q.id]));
      wiring.pass_producer = pass_merge;
      wiring.pass_port = UnionMerge::kOutPort;
    } else {
      const int gid = global_ids[q.id];
      auto* merge = plan->AddOperator(std::make_unique<UnionMerge>(
          q.name + ".union", edge_count[q.id]));
      built->merges[gid] = merge;
      AttachSinks(plan, merge, UnionMerge::kOutPort, built->queries[gid],
                  options, built);
    }
  }

  // Wires one result edge from `producer` to local query `local_id`,
  // inserting gates as needed; terminates at the query's union, directly
  // at its sinks, or — for the pass-through — at the next level's feed.
  auto wire_result_edge = [&](Operator* producer, int port, int local_id,
                              bool needs_gate, int slice_index) {
    Operator* upstream = producer;
    int upstream_port = port;
    if (local_id == pseudo) {
      // The pass-through never gates: the next level consumes the widest
      // composite stream and each deeper query gates its own output.
      if (pass_merge != nullptr) {
        const int p = next_port[local_id]++;
        plan->Connect(upstream, upstream_port, pass_merge, p);
      } else {
        wiring.pass_producer = upstream;
        wiring.pass_port = upstream_port;
      }
      return;
    }
    const int gid = global_ids[local_id];
    const ContinuousQuery& gq = built->queries[gid];
    if (!composite) {
      // Binary level: selection push-down left exactly σ'_A to re-check
      // (Fig. 10); NeedsResultGate decided it against the slice's input
      // filter.
      if (needs_gate) {
        auto* gate = plan->AddOperator(std::make_unique<ResultGate>(
            gq.name + ".gate.s" + std::to_string(slice_index),
            gq.selection_a, StreamSide::kA));
        plan->Connect(upstream, upstream_port, gate, 0);
        upstream = gate;
        upstream_port = ResultGate::kOutPort;
      }
    } else {
      // Composite level: earlier levels produced composites up to the
      // pass-through window, so a narrower query re-checks the prefix
      // window; selections on any stream were never pushed down and gate
      // here.
      if (gq.window.extent < gate_floor) {
        auto* gate = plan->AddOperator(std::make_unique<WindowGate>(
            gq.name + ".wgate.s" + std::to_string(slice_index),
            gq.window.extent));
        plan->Connect(upstream, upstream_port, gate, 0);
        upstream = gate;
        upstream_port = WindowGate::kOutPort;
      }
      for (int v = 0; v < gq.num_streams(); ++v) {
        if (gq.selection(v).IsTrue()) continue;
        auto* gate = plan->AddOperator(std::make_unique<ResultGate>(
            gq.name + ".gate.s" + std::to_string(slice_index) + ".v" +
                std::to_string(v),
            gq.selection(v), v));
        plan->Connect(upstream, upstream_port, gate, 0);
        upstream = gate;
        upstream_port = ResultGate::kOutPort;
      }
    }
    if (built->merges[gid] != nullptr) {
      const int p = next_port[local_id]++;
      EventQueue* eq =
          plan->Connect(upstream, upstream_port, built->merges[gid], p);
      built->result_edges.push_back(ResultEdge{gid, slice_index, upstream,
                                               upstream_port, eq,
                                               built->merges[gid], p});
    } else {
      AttachSinks(plan, upstream, upstream_port, gq, options, built);
      built->result_edges.push_back(ResultEdge{gid, slice_index, upstream,
                                               upstream_port, nullptr,
                                               nullptr, 0});
    }
  };

  for (int s = 0; s < num_slices; ++s) {
    const int lo = slices[s].start_boundary;
    const int hi = slices[s].end_boundary;
    // Queries whose boundary is interior to this (merged) slice: they need
    // a router over the slice's results (Fig. 13(b)).
    std::vector<int> interior;
    for (const ContinuousQuery& q : local) {
      const int k = spec.query_boundary[q.id];
      if (k > lo && k < hi) interior.push_back(q.id);
    }
    // All queries reading the full result stream of this slice.
    const std::vector<int> full = SliceConsumers(spec, hi);
    // Every query whose tuples feed this slice (for gate decisions).
    std::vector<int> input_consumers = interior;
    input_consumers.insert(input_consumers.end(), full.begin(), full.end());

    Operator* result_producer = slices[s].join;
    int all_port_for_full = SlicedWindowJoin::kResultPort;
    if (!interior.empty()) {
      std::vector<Router::Branch> branches;
      for (size_t b = 0; b < interior.size(); ++b) {
        branches.push_back(Router::Branch{
            local[interior[b]].window.extent, static_cast<int>(b)});
      }
      const int all_port = static_cast<int>(branches.size());
      auto* router = plan->AddOperator(std::make_unique<Router>(
          prefix + "router.s" + std::to_string(s), branches, all_port));
      plan->Connect(slices[s].join, SlicedWindowJoin::kResultPort, router, 0);
      for (size_t b = 0; b < interior.size(); ++b) {
        const int local_id = interior[b];
        wire_result_edge(router, static_cast<int>(b), local_id,
                         NeedsResultGate(local, input_consumers, local_id),
                         s);
      }
      result_producer = router;
      all_port_for_full = all_port;
    }
    slices[s].result_producer = result_producer;
    slices[s].full_port = all_port_for_full;
    for (int qid : full) {
      wire_result_edge(result_producer, all_port_for_full, qid,
                       NeedsResultGate(local, input_consumers, qid), s);
    }
  }

  for (const BuiltSlice& slice : slices) {
    built->slices.push_back(slice);
    built->slice_level.push_back(level);
  }
  return wiring;
}

}  // namespace

BuiltPlan BuildStateSlicePlan(const std::vector<ContinuousQuery>& queries,
                              const ChainPlan& chain,
                              const BuildOptions& options) {
  SLICE_CHECK_EQ(MaxStreams(queries), 2);
  JoinTreePlan tree;
  tree.levels.push_back(chain);
  return BuildStateSlicePlan(queries, tree, options);
}

BuiltPlan BuildStateSlicePlan(const std::vector<ContinuousQuery>& queries,
                              const JoinTreePlan& tree,
                              const BuildOptions& options) {
  ValidateQueries(queries);
  const std::vector<TreeLevelQueries> levels = TreeLevels(queries);
  SLICE_CHECK_EQ(static_cast<size_t>(tree.num_levels()), levels.size());
  BuiltPlan built = NewBuiltPlan(queries, options);
  built.num_levels = tree.num_levels();
  built.chain = tree.levels[0];
  QueryPlan* plan = built.plan.get();

  if (levels.size() == 1) {
    // Binary workload: exactly the historical single-chain plan.
    BuildChainLevel(plan, &built, levels[0].local, levels[0].global_ids,
                    levels[0].pseudo, tree.levels[0], options, "",
                    /*level=*/0, /*anchor=*/0, /*level_upstream=*/nullptr,
                    /*level_upstream_port=*/0, /*gate_floor=*/0);
    plan->Start();
    return built;
  }

  // Lineage masks index chain-local query ids and are only wired through
  // the binary chain spine; the tree keeps them off.
  SLICE_CHECK(!options.use_lineage);
  const int num_streams = static_cast<int>(levels.size()) + 1;
  auto* dispatch = plan->AddOperator(
      std::make_unique<StreamDispatch>("dispatch", num_streams));
  built.entry = plan->AddEntryQueue("entry", dispatch, 0);

  // anchor(l) is identical across queries deep enough to define it
  // (ValidateQueries' prefix compatibility).
  auto anchor_of = [&queries](int level) {
    for (const ContinuousQuery& q : queries) {
      if (q.num_streams() >= level + 2) return q.anchor(level);
    }
    SLICE_CHECK(false);
    return 0;
  };

  Operator* upstream = dispatch;
  int upstream_port = 0;
  LevelWiring prev;
  int64_t gate_floor = 0;
  for (size_t l = 0; l < levels.size(); ++l) {
    if (l > 0) {
      // The level's input: the previous level's composite stream merged
      // with stream l+1's tuples in timestamp order (both sides carry
      // punctuations — per-male from the chains, per-arrival from the
      // dispatch — so the merge never stalls).
      SLICE_CHECK(prev.pass_producer != nullptr);
      auto* in = plan->AddOperator(std::make_unique<UnionMerge>(
          "l" + std::to_string(l) + ".in", /*input_count=*/2));
      plan->Connect(prev.pass_producer, prev.pass_port, in, 0);
      plan->Connect(dispatch, static_cast<int>(l), in, 1);
      upstream = in;
      upstream_port = UnionMerge::kOutPort;
    }
    prev = BuildChainLevel(plan, &built, levels[l].local,
                           levels[l].global_ids, levels[l].pseudo,
                           tree.levels[l], options,
                           "l" + std::to_string(l) + ".",
                           static_cast<int>(l), anchor_of(static_cast<int>(l)),
                           upstream, upstream_port, gate_floor);
    gate_floor = std::max(gate_floor, levels[l].pass_window);
  }
  plan->Start();
  return built;
}

}  // namespace stateslice
