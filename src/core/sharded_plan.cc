#include "src/core/sharded_plan.h"

#include <memory>
#include <string>

#include "src/common/check.h"

namespace stateslice {

ShardedPlanSet BuildShardedPlanSet(int num_shards,
                                   const std::vector<ContinuousQuery>& queries,
                                   const BuildOptions& merge_options,
                                   const ShardBuildFn& build_shard) {
  SLICE_CHECK(num_shards >= 1);
  ShardedPlanSet set;
  const size_t nq = queries.size();

  // Shard replicas plus one exit tap per (shard, query). The tap shares
  // the producer output port of the query's sink edge, so it receives an
  // order-identical copy of the shard's result stream.
  set.shards.reserve(static_cast<size_t>(num_shards));
  set.exits.resize(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    set.shards.push_back(build_shard());
    BuiltPlan& shard = set.shards.back();
    SLICE_CHECK_EQ(shard.sink_edges.size(), nq);
    auto& exits = set.exits[static_cast<size_t>(s)];
    exits.resize(nq, nullptr);
    for (size_t q = 0; q < nq; ++q) {
      SLICE_CHECK(!shard.sink_edges[q].empty());
      const SinkEdge& edge = shard.sink_edges[q].front();
      exits[q] = shard.plan->AddExitQueue(
          "shard" + std::to_string(s) + ".exit.q" + std::to_string(q),
          edge.producer, edge.producer_port);
    }
  }

  // The merge plan: one UnionMerge per query, input port s fed by shard
  // s's result stream, output into the authoritative sinks.
  BuiltPlan& merge = set.merge;
  merge.plan = std::make_unique<QueryPlan>();
  merge.queries = queries;
  merge.options = merge_options;
  merge.sinks.assign(nq, nullptr);
  merge.collectors.assign(nq, nullptr);
  merge.sink_edges.assign(nq, {});
  merge.merges.assign(nq, nullptr);
  merge.result_gates.assign(nq, nullptr);
  set.merge_entries.assign(static_cast<size_t>(num_shards), {});
  for (int s = 0; s < num_shards; ++s) {
    set.merge_entries[static_cast<size_t>(s)].resize(nq, nullptr);
  }
  for (const ContinuousQuery& query : queries) {
    // Queries are indexed by id everywhere downstream (sinks, collectors,
    // subscriptions); the builders guarantee ids are 0..n-1.
    const size_t q = static_cast<size_t>(query.id);
    SLICE_CHECK(q < nq);
    auto* um = merge.plan->AddOperator(std::make_unique<UnionMerge>(
        query.name + ".shard_merge", num_shards));
    merge.merges[q] = um;
    auto* counting = merge.plan->AddOperator(
        std::make_unique<CountingSink>(query.name + ".sink"));
    EventQueue* cq =
        merge.plan->Connect(um, UnionMerge::kOutPort, counting, 0);
    merge.sinks[q] = counting;
    merge.sink_edges[q].push_back(
        SinkEdge{um, UnionMerge::kOutPort, cq, counting});
    if (merge_options.collect_results) {
      auto* collecting = merge.plan->AddOperator(
          std::make_unique<CollectingSink>(query.name + ".collect"));
      EventQueue* xq =
          merge.plan->Connect(um, UnionMerge::kOutPort, collecting, 0);
      merge.collectors[q] = collecting;
      merge.sink_edges[q].push_back(
          SinkEdge{um, UnionMerge::kOutPort, xq, collecting});
    }
    for (int s = 0; s < num_shards; ++s) {
      set.merge_entries[static_cast<size_t>(s)][q] = merge.plan->AddEntryQueue(
          "merge.s" + std::to_string(s) + ".q" + std::to_string(q), um, s);
    }
  }
  merge.plan->Start();
  return set;
}

}  // namespace stateslice
