#include "src/core/selection_pushdown.h"

#include "src/common/check.h"

namespace stateslice {

Predicate SliceInputPredicate(const std::vector<ContinuousQuery>& queries,
                              const ChainSpec& spec, int first_boundary) {
  std::vector<Predicate> parts;
  for (int k = first_boundary; k < spec.num_boundaries(); ++k) {
    for (int q : spec.queries_at_boundary[k]) {
      if (queries[q].selection_a.IsTrue()) {
        // A selection-free query needs every tuple: the disjunction is true.
        return Predicate();
      }
      parts.push_back(queries[q].selection_a);
    }
  }
  SLICE_CHECK(!parts.empty());  // last boundary always has queries
  return Predicate::AnyOf(parts);
}

uint64_t LineageMaskAtOrBeyond(const ChainSpec& spec, int first_boundary) {
  uint64_t mask = 0;
  for (size_t q = 0; q < spec.query_boundary.size(); ++q) {
    if (spec.query_boundary[q] >= first_boundary) {
      mask |= uint64_t{1} << q;
    }
  }
  return mask;
}

bool NeedsResultGate(const std::vector<ContinuousQuery>& queries,
                     const std::vector<int>& consumers, int query_id) {
  if (queries[query_id].selection_a.IsTrue()) return false;
  // If this query is the only consumer, the slice's input filter was its
  // own predicate, so results are pre-filtered (Fig. 10, slice 2 -> Q2).
  if (consumers.size() == 1 && consumers[0] == query_id) return false;
  // Several queries sharing one predicate object also need no gate.
  for (int other : consumers) {
    if (queries[other].selection_a.description() !=
        queries[query_id].selection_a.description()) {
      return true;
    }
  }
  return false;
}

std::vector<int> SliceConsumers(const ChainSpec& spec, int end_boundary) {
  std::vector<int> consumers;
  for (size_t q = 0; q < spec.query_boundary.size(); ++q) {
    if (spec.query_boundary[q] >= end_boundary) {
      consumers.push_back(static_cast<int>(q));
    }
  }
  return consumers;
}

}  // namespace stateslice
