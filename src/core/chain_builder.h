// Chain builders: Mem-Opt (Section 5.1) and CPU-Opt (Section 5.2) slicing
// decisions for a query workload, as partition specs consumed by the shared
// plan builder.
#ifndef STATESLICE_CORE_CHAIN_BUILDER_H_
#define STATESLICE_CORE_CHAIN_BUILDER_H_

#include <vector>

#include "src/core/chain_spec.h"
#include "src/core/cost_model.h"
#include "src/query/query.h"

namespace stateslice {

// A fully-resolved chain plan: the boundary structure plus the partition.
struct ChainPlan {
  ChainSpec spec;
  ChainPartition partition;
};

// One slice per distinct window — provably minimal state memory
// (Theorems 3 and 4).
ChainPlan BuildMemOptChain(const std::vector<ContinuousQuery>& queries);

// Dijkstra-optimal merge pattern under the generalized CPU cost model.
ChainPlan BuildCpuOptChain(const std::vector<ContinuousQuery>& queries,
                           const ChainCostParams& params);

}  // namespace stateslice

#endif  // STATESLICE_CORE_CHAIN_BUILDER_H_
