// Chain builders: Mem-Opt (Section 5.1) and CPU-Opt (Section 5.2) slicing
// decisions for a query workload, as partition specs consumed by the shared
// plan builder — plus their N-way generalizations, which resolve one chain
// per level of the left-deep shared join tree.
#ifndef STATESLICE_CORE_CHAIN_BUILDER_H_
#define STATESLICE_CORE_CHAIN_BUILDER_H_

#include <vector>

#include "src/core/chain_spec.h"
#include "src/core/cost_model.h"
#include "src/query/query.h"

namespace stateslice {

// One slice per distinct window — provably minimal state memory
// (Theorems 3 and 4). Binary workloads only (the N = 1-level case).
ChainPlan BuildMemOptChain(const std::vector<ContinuousQuery>& queries);

// Dijkstra-optimal merge pattern under the generalized CPU cost model.
// Binary workloads only.
ChainPlan BuildCpuOptChain(const std::vector<ContinuousQuery>& queries,
                           const ChainCostParams& params);

// Mem-Opt tree: one slice per distinct window at every level. For a
// binary workload this is exactly {BuildMemOptChain(queries)}.
JoinTreePlan BuildMemOptTree(const std::vector<ContinuousQuery>& queries);

// CPU-Opt tree: each level's merge pattern is Dijkstra-optimized under
// the cost model with that level's estimated input rates (the left input
// of level k is the composite output of level k-1; see
// TreeLevelCostParams). For a binary workload this is exactly
// {BuildCpuOptChain(queries, params)}.
JoinTreePlan BuildCpuOptTree(const std::vector<ContinuousQuery>& queries,
                             const ChainCostParams& params);

}  // namespace stateslice

#endif  // STATESLICE_CORE_CHAIN_BUILDER_H_
