#include "src/core/cost_model.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/timestamp.h"

namespace stateslice {

// ------------------------------------------------- two-query model (Eq. 1-3)

CostEstimate PullUpCost(const TwoQueryParams& p) {
  const double l = p.lambda;
  CostEstimate c;
  c.memory_tuples = 2 * l * p.w2;
  c.memory_kb = c.memory_tuples * p.tuple_kb;
  // Eq. 1: probe + purge + route + filter.
  c.cpu_per_sec = 2 * l * l * p.w2 + 2 * l + 2 * l * l * p.w2 * p.s1 +
                  2 * l * l * p.w2 * p.s1;
  return c;
}

CostEstimate PushDownCost(const TwoQueryParams& p) {
  const double l = p.lambda;
  CostEstimate c;
  c.memory_tuples = (2 - p.s_sigma) * l * p.w1 + (1 + p.s_sigma) * l * p.w2;
  c.memory_kb = c.memory_tuples * p.tuple_kb;
  // Eq. 2: split + probe(join1) + probe(join2) + purge + route + union.
  c.cpu_per_sec = l + 2 * (1 - p.s_sigma) * l * l * p.w1 +
                  2 * p.s_sigma * l * l * p.w2 + 3 * l +
                  2 * p.s_sigma * l * l * p.w2 * p.s1 +
                  2 * l * l * p.w1 * p.s1;
  return c;
}

CostEstimate StateSliceCost(const TwoQueryParams& p) {
  const double l = p.lambda;
  CostEstimate c;
  c.memory_tuples = 2 * l * p.w1 + (1 + p.s_sigma) * l * (p.w2 - p.w1);
  c.memory_kb = c.memory_tuples * p.tuple_kb;
  // Eq. 3: probe(slice1) + filter(σA) + probe(slice2) + purge + union +
  // filter(σ'A).
  c.cpu_per_sec = 2 * l * l * p.w1 + l +
                  2 * l * l * p.s_sigma * (p.w2 - p.w1) + 4 * l + 2 * l +
                  2 * l * l * p.s1 * p.w1;
  return c;
}

SliceSavings ComputeSliceSavings(double rho, double s_sigma, double s1) {
  SLICE_CHECK_GT(rho, 0.0);
  SLICE_CHECK_LT(rho, 1.0);
  SliceSavings s;
  // Eq. 4, exactly as printed in the paper.
  s.memory_vs_pullup = (1 - rho) * (1 - s_sigma) / 2;
  s.memory_vs_pushdown = rho / (1 + 2 * rho + (1 - rho) * s_sigma);
  s.cpu_vs_pullup =
      ((1 - rho) * (1 - s_sigma) + (2 - rho) * s1) / (1 + 2 * s1);
  s.cpu_vs_pushdown =
      s_sigma * s1 /
      (rho * (1 - s_sigma) + s_sigma + s_sigma * s1 + rho * s1);
  return s;
}

// ------------------------------------------------ N-query chain model (§5.2)

ChainCostModel::ChainCostModel(const std::vector<ContinuousQuery>& queries,
                               const ChainSpec& spec,
                               const ChainCostParams& params)
    : spec_(spec), params_(params) {
  const int m = spec_.num_boundaries();
  disjunction_selectivity_.assign(m + 1, 0.0);
  // disjunction_selectivity_[k] = selectivity of OR of σ_A over queries
  // with boundary >= k (the filter feeding a slice that starts at boundary
  // k-1). Computed from the predicates' analytic selectivities under
  // independence — identical to how the paper composes Sσ terms.
  for (int k = m; k >= 0; --k) {
    if (k == m) {
      disjunction_selectivity_[k] = 0.0;
      continue;
    }
    double pass = disjunction_selectivity_[k + 1];
    for (int q : spec_.queries_at_boundary[k]) {
      const double sq = queries[q].selection_a.selectivity();
      // OR under independence: 1 - (1-pass)(1-sq).
      pass = 1.0 - (1.0 - pass) * (1.0 - sq);
    }
    disjunction_selectivity_[k] = pass;
  }
}

double ChainCostModel::BoundarySeconds(int k) const {
  if (k < 0) return 0.0;
  SLICE_CHECK_LT(k, spec_.num_boundaries());
  if (spec_.kind == WindowKind::kTime) {
    return TicksToSeconds(spec_.boundaries[k]);
  }
  // Count windows: express extent in "seconds of arrivals" so rates cancel
  // consistently (extent tuples / per-stream rate).
  return static_cast<double>(spec_.boundaries[k]) / params_.lambda_a;
}

double ChainCostModel::EffectiveRateA(int i) const {
  const double d = disjunction_selectivity_[i + 1];
  // Queries without selections make the disjunction true (selectivity 1).
  return params_.lambda_a * d;
}

double ChainCostModel::EdgeCpuCost(int i, int j) const {
  SLICE_CHECK_LT(i, j);
  SLICE_CHECK_LT(j, spec_.num_boundaries());
  const double span = BoundarySeconds(j) - BoundarySeconds(i);
  const double la = EffectiveRateA(i);
  const double lb = params_.lambda_b;

  // Probe: every arriving B tuple scans the A state (λa·span tuples) and
  // vice versa (nested-loop model of Section 3).
  const double probe = lb * (la * span) + la * (lb * span);
  // Cross-purge: one comparison per arriving tuple at this slice.
  const double purge = la + lb;
  // Routing: a merged slice spanning interior boundaries re-introduces a
  // router whose profile table has one entry per interior boundary
  // (Fig. 13(b)); cost per joined result is proportional to that fanout.
  const double result_rate = 2.0 * la * lb * span * params_.s1;
  const double interior = static_cast<double>(j - i - 1);
  const double route = result_rate * interior;
  // System overhead: queue transfers + scheduling per tuple per operator
  // (the C_sys term of Section 5.2). The paper's edge cost is exactly
  // purge + route + sys (probe is partition-independent without
  // selections); union punctuation handling is excluded from the
  // optimizer's objective, as in the paper.
  const double sys = params_.c_sys * (la + lb);

  return probe + purge + route + sys;
}

double ChainCostModel::EdgeMemoryKb(int i, int j) const {
  SLICE_CHECK_LT(i, j);
  SLICE_CHECK_LT(j, spec_.num_boundaries());
  const double span = BoundarySeconds(j) - BoundarySeconds(i);
  const double la = EffectiveRateA(i);
  const double lb = params_.lambda_b;
  return (la + lb) * span * params_.tuple_kb;
}

double ChainCostModel::PartitionCpuCost(const ChainPartition& p) const {
  double total = 0.0;
  int start = -1;
  for (int end : p.slice_end_boundaries) {
    total += EdgeCpuCost(start, end);
    start = end;
  }
  // Entry filtering (lineage stamping) is partition-independent: one
  // evaluation pass per A tuple.
  total += params_.lambda_a;
  return total;
}

double ChainCostModel::PartitionMemoryKb(const ChainPartition& p) const {
  double total = 0.0;
  int start = -1;
  for (int end : p.slice_end_boundaries) {
    total += EdgeMemoryKb(start, end);
    start = end;
  }
  return total;
}

// ----------------------------------------------------- join-tree costs

std::vector<ChainCostParams> TreeLevelCostParams(
    const std::vector<ContinuousQuery>& queries,
    const ChainCostParams& params) {
  return TreeLevelCostParams(TreeLevels(queries), params);
}

std::vector<ChainCostParams> TreeLevelCostParams(
    const std::vector<TreeLevelQueries>& levels,
    const ChainCostParams& params) {
  std::vector<ChainCostParams> out;
  out.reserve(levels.size());
  double lambda_left = params.lambda_a;
  for (size_t l = 0; l < levels.size(); ++l) {
    ChainCostParams level_params = params;
    level_params.lambda_a = lambda_left;
    out.push_back(level_params);
    // Composite output rate carried into the next level: the windowed-join
    // output-rate model 2 * lambda_L * lambda_R * S1 * W over the level's
    // pass-through window (the widest composite the next level consumes).
    const double pass_seconds =
        static_cast<double>(levels[l].pass_window) / kTicksPerSecond;
    lambda_left =
        2.0 * lambda_left * params.lambda_b * params.s1 * pass_seconds;
  }
  return out;
}

TreeCostEstimate TreeCost(const std::vector<ContinuousQuery>& queries,
                          const JoinTreePlan& tree,
                          const ChainCostParams& params) {
  const std::vector<TreeLevelQueries> levels = TreeLevels(queries);
  const std::vector<ChainCostParams> level_params =
      TreeLevelCostParams(levels, params);
  SLICE_CHECK_EQ(tree.levels.size(), levels.size());
  TreeCostEstimate total;
  for (size_t l = 0; l < levels.size(); ++l) {
    const ChainCostModel model(levels[l].local, tree.levels[l].spec,
                               level_params[l]);
    total.cpu_per_sec +=
        model.PartitionCpuCost(tree.levels[l].partition);
    total.memory_kb += model.PartitionMemoryKb(tree.levels[l].partition);
  }
  return total;
}

}  // namespace stateslice
