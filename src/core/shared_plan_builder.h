// Shared-plan builders: executable operator DAGs for every sharing strategy
// the paper evaluates.
//
//  - BuildUnsharedPlans:   no sharing, one join per query (sanity baseline);
//  - BuildPullUpPlan:      naive sharing with selection pull-up
//                          (Section 3.1, Fig. 3);
//  - BuildPushDownPlan:    stream partition with selection push-down
//                          (Section 3.2, Fig. 4);
//  - BuildStateSlicePlan:  the paper's contribution — a chain of sliced
//                          joins per a Mem-Opt or CPU-Opt ChainPlan with
//                          selections pushed into the chain
//                          (Sections 4-6, Figs. 10/12/13/15).
//
// All plans expose a single globally-ordered entry queue carrying both
// streams, one CountingSink per query, and optional CollectingSinks for
// equivalence tests.
#ifndef STATESLICE_CORE_SHARED_PLAN_BUILDER_H_
#define STATESLICE_CORE_SHARED_PLAN_BUILDER_H_

#include <memory>
#include <vector>

#include "src/core/chain_builder.h"
#include "src/operators/join_condition.h"
#include "src/operators/sliced_window_join.h"
#include "src/operators/union_merge.h"
#include "src/query/query.h"
#include "src/runtime/plan.h"
#include "src/runtime/sink.h"

namespace stateslice {

// Construction knobs shared by all builders.
struct BuildOptions {
  JoinCondition condition = JoinCondition::EquiKey();
  // Attach a CollectingSink per query (tests compare result multisets).
  bool collect_results = false;
  // State-slice only: stamp lineage bitmasks once at entry and filter
  // between slices by mask (Section 6.1) instead of re-evaluating the
  // disjunction predicates.
  bool use_lineage = false;
  // Maintain per-key hash indexes on the join states so kEquiKey probes
  // are O(matches) bucket lookups (join_state.h). Results and paper-unit
  // cost counters are identical either way; benches flip this off for the
  // nested-loop baseline arm.
  bool use_key_index = true;
};

// Metadata about one slice of a built state-slice chain, kept for online
// migration (Section 5.3) and for tests/traces.
struct BuiltSlice {
  SlicedWindowJoin* join = nullptr;
  int start_boundary = -1;  // boundary index before this slice (-1 = 0);
  int end_boundary = 0;     // boundary index where this slice ends.
                            // ChainMigrator keeps both indices (and the
                            // owning BuiltPlan's chain spec/partition) in
                            // sync with join->range() across migrations;
                            // ValidateBuiltChain() asserts the invariant.
  // Queue from this slice's kNextPort toward the next chain element
  // (filter or slice); nullptr at the chain tail.
  EventQueue* next_queue = nullptr;
  // Producer of this slice's *full* result stream: the join itself, or the
  // router's all-port for merged slices (Fig. 13(b)).
  Operator* result_producer = nullptr;
  int full_port = 0;
};

// One result edge from a slice (or its router/gate) to a query's merge
// input or sink fan-in.
struct ResultEdge {
  int query_id = 0;
  int slice_index = 0;
  Operator* producer = nullptr;  // slice join, router, or gate
  int producer_port = 0;
  EventQueue* queue = nullptr;  // null when terminating directly at sinks
  UnionMerge* merge = nullptr;  // null when the edge feeds sinks directly
  int merge_port = 0;
};

// One edge from a result producer into a terminal sink operator.
struct SinkEdge {
  Operator* producer = nullptr;
  int producer_port = 0;
  EventQueue* queue = nullptr;
  Operator* sink = nullptr;
};

// A fully wired, started executable plan.
struct BuiltPlan {
  std::unique_ptr<QueryPlan> plan;
  EventQueue* entry = nullptr;               // feed all streams here
  std::vector<CountingSink*> sinks;          // [query id]
  std::vector<CollectingSink*> collectors;   // [query id]; null w/o collect
  std::vector<std::vector<SinkEdge>> sink_edges;  // [query id]

  // State-slice metadata (empty for other strategies).
  // For an N-way tree, `chain` holds level 0's chain plan, `slices` holds
  // every level's slices in level-major order, and slice_level[i] is the
  // tree level of slices[i] (all zero for a binary chain). Online
  // migration (ChainMigrator) supports single-level plans only.
  int num_levels = 1;
  ChainPlan chain;
  std::vector<BuiltSlice> slices;
  std::vector<int> slice_level;              // parallel to `slices`
  std::vector<UnionMerge*> merges;           // [query id]; null if direct
  std::vector<ResultEdge> result_edges;
  // [query id] fresh-start ResultTimeGate in front of the query's sinks
  // (queries registered on a running chain; see ChainMigrator::AddQuery).
  // Null for queries wired at build time.
  std::vector<Operator*> result_gates;

  // The queries the plan was built for (by value; migration updates it).
  std::vector<ContinuousQuery> queries;
  BuildOptions options;
};

// One join per query behind a fanout; the no-sharing baseline. Binary
// workloads only (an unshared N-way baseline is a per-query single-query
// state-slice tree).
BuiltPlan BuildUnsharedPlans(const std::vector<ContinuousQuery>& queries,
                             const BuildOptions& options = {});

// Selection pull-up (Fig. 3): one join at the largest window, a router
// dispatching by |Ta-Tb|, per-query σ gates after the router. Binary
// workloads only.
BuiltPlan BuildPullUpPlan(const std::vector<ContinuousQuery>& queries,
                          const BuildOptions& options = {});

// Stream partition with selection push-down (Fig. 4). Requires all
// filtered queries to share one predicate (the paper's experimental
// setting); CHECK-fails otherwise. Binary workloads only.
BuiltPlan BuildPushDownPlan(const std::vector<ContinuousQuery>& queries,
                            const BuildOptions& options = {});

// State-slice chain for the given ChainPlan (Mem-Opt or CPU-Opt).
// Binary workloads only — the single-level degenerate case of the tree
// overload below.
BuiltPlan BuildStateSlicePlan(const std::vector<ContinuousQuery>& queries,
                              const ChainPlan& chain,
                              const BuildOptions& options = {});

// State-slice join tree for a (possibly multi-way) workload: one sliced
// chain per tree level (see chain_spec.h TreeLevels). Level 0 is wired
// exactly like the binary chain — with selection push-down and, for
// multi-level trees, an extra unfiltered pass-through consumer whose
// result edges feed level 1 through an order-preserving input merge; a
// StreamDispatch at the entry routes each stream to the level that
// consumes it. Queries terminal at level >= 1 gate their outputs with a
// WindowGate (prefix-window semantics; see operators/multiway.h) and one
// ResultGate per filtered stream. `use_lineage` is binary-only
// (CHECK-enforced for multi-level trees).
BuiltPlan BuildStateSlicePlan(const std::vector<ContinuousQuery>& queries,
                              const JoinTreePlan& tree,
                              const BuildOptions& options = {});

}  // namespace stateslice

#endif  // STATESLICE_CORE_SHARED_PLAN_BUILDER_H_
