#include "src/core/chain_builder.h"

#include "src/common/check.h"
#include "src/core/cpu_opt.h"

namespace stateslice {

ChainPlan BuildMemOptChain(const std::vector<ContinuousQuery>& queries) {
  SLICE_CHECK_EQ(MaxStreams(queries), 2);
  ChainPlan plan;
  plan.spec = BuildChainSpec(queries);
  plan.partition = MemOptPartition(plan.spec);
  return plan;
}

ChainPlan BuildCpuOptChain(const std::vector<ContinuousQuery>& queries,
                           const ChainCostParams& params) {
  SLICE_CHECK_EQ(MaxStreams(queries), 2);
  ChainPlan plan;
  plan.spec = BuildChainSpec(queries);
  const ChainCostModel model(queries, plan.spec, params);
  plan.partition = BuildCpuOptPartition(model);
  ValidatePartition(plan.spec, plan.partition);
  return plan;
}

JoinTreePlan BuildMemOptTree(const std::vector<ContinuousQuery>& queries) {
  JoinTreePlan tree;
  for (const TreeLevelQueries& level : TreeLevels(queries)) {
    ChainPlan plan;
    plan.spec = BuildChainSpec(level.local);
    plan.partition = MemOptPartition(plan.spec);
    tree.levels.push_back(std::move(plan));
  }
  return tree;
}

JoinTreePlan BuildCpuOptTree(const std::vector<ContinuousQuery>& queries,
                             const ChainCostParams& params) {
  JoinTreePlan tree;
  const std::vector<TreeLevelQueries> levels = TreeLevels(queries);
  const std::vector<ChainCostParams> level_params =
      TreeLevelCostParams(levels, params);
  SLICE_CHECK_EQ(levels.size(), level_params.size());
  for (size_t l = 0; l < levels.size(); ++l) {
    ChainPlan plan;
    plan.spec = BuildChainSpec(levels[l].local);
    const ChainCostModel model(levels[l].local, plan.spec, level_params[l]);
    plan.partition = BuildCpuOptPartition(model);
    ValidatePartition(plan.spec, plan.partition);
    tree.levels.push_back(std::move(plan));
  }
  return tree;
}

}  // namespace stateslice
