#include "src/core/chain_builder.h"

#include "src/core/cpu_opt.h"

namespace stateslice {

ChainPlan BuildMemOptChain(const std::vector<ContinuousQuery>& queries) {
  ChainPlan plan;
  plan.spec = BuildChainSpec(queries);
  plan.partition = MemOptPartition(plan.spec);
  return plan;
}

ChainPlan BuildCpuOptChain(const std::vector<ContinuousQuery>& queries,
                           const ChainCostParams& params) {
  ChainPlan plan;
  plan.spec = BuildChainSpec(queries);
  const ChainCostModel model(queries, plan.spec, params);
  plan.partition = BuildCpuOptPartition(model);
  ValidatePartition(plan.spec, plan.partition);
  return plan;
}

}  // namespace stateslice
