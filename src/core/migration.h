// Online migration of a state-slicing chain (Section 5.3).
//
// A running chain needs maintenance when queries enter/leave the system or
// when statistics suggest re-optimizing the merge pattern. The two
// primitives are:
//
//  - SplitSlice: shrink slice J_i's end window to w' and insert a new slice
//    J' = [w', w_i) to its right. No state is moved: J_i's next male purge
//    (with the new, smaller window) migrates tuples into J' through the
//    connecting queue, exactly as the paper describes — the system pause is
//    effectively zero.
//
//  - MergeSlices: concatenate the states of two adjacent slices into one
//    slice [w_{i-1}, w_{i+1}) after the in-between queue has been drained,
//    re-introducing a router for the interior boundary (Fig. 13(b)).
//
// On top of the primitives, AddQuery/RemoveQuery implement query churn for
// chains built without selections (the setting in which Section 5.3
// presents migration). The ChainMigrator operates between executor feed
// steps, when the plan is quiescent.
#ifndef STATESLICE_CORE_MIGRATION_H_
#define STATESLICE_CORE_MIGRATION_H_

#include <vector>

#include "src/core/shared_plan_builder.h"

namespace stateslice {

// Mutates a BuiltPlan produced by BuildStateSlicePlan. All operations
// require: (1) the plan is quiescent (all queues empty — run the scheduler
// to quiescence first), and (2) the chain was built without selections and
// without lineage (CHECK-enforced).
class ChainMigrator {
 public:
  explicit ChainMigrator(BuiltPlan* built);

  // Splits slice `slice_index` at `boundary` (ticks; strictly inside the
  // slice's range). The new right-hand slice serves the same queries as the
  // old slice's downstream consumers. Returns the index of the new slice.
  int SplitSlice(int slice_index, Duration boundary);

  // Merges slice `slice_index` with `slice_index + 1` (both must exist).
  // Result edges of both slices are preserved through a new router with a
  // branch at the interior boundary. Returns the merged slice's index.
  int MergeSlices(int slice_index);

  // Registers a new selection-free query with window `window` while the
  // plan runs: splits a slice if `window` is not an existing slice end,
  // then wires a union over the covering slice prefix to fresh sinks.
  // The query starts receiving results produced from now on. When
  // `results_from` > 0, a ResultTimeGate is inserted in front of the new
  // query's sinks so it delivers exactly the join over tuples with
  // timestamp >= results_from (fresh-start registration semantics; the
  // shared slice states still serve the other queries unchanged). Returns
  // the new query id.
  int AddQuery(WindowSpec window, const std::string& name,
               TimePoint results_from = 0);

  // Unregisters query `query_id`: detaches its result edges, gate, union
  // and sinks. The slices it used remain (call MergeSlices to compact
  // afterwards, as the paper suggests).
  void RemoveQuery(int query_id);

 private:
  void CheckQuiescent() const;
  // Re-derives every BuiltSlice's boundary indices and the partition's
  // slice ends from the live join ranges, inserting new boundary values
  // into the chain spec as needed. Called after every chain mutation so
  // BuiltPlan::chain and BuiltSlice indices never go stale.
  void SyncChainMetadata();
  // Index of `value` in chain.spec.boundaries, inserting it (and shifting
  // existing query-boundary indices) if absent.
  int EnsureBoundaryIndex(int64_t value);

  BuiltPlan* built_;
};

// Asserts (CHECK-fails on violation) that a state-slice BuiltPlan's chain
// metadata is internally consistent — slices contiguous from 0, boundary
// indices matching join->range(), partition matching the slices, and every
// live query registered at the boundary its window names. Holds right after
// BuildStateSlicePlan and after every ChainMigrator operation.
// `check_indexes` additionally walks every slice state's per-key probe
// index (BasicJoinState::CheckIndexConsistency) — an O(total window state)
// scan, so tests opt in while the Engine's production migration path keeps
// the default O(chain wiring) validation.
void ValidateBuiltChain(const BuiltPlan& built, bool check_indexes = false);

}  // namespace stateslice

#endif  // STATESLICE_CORE_MIGRATION_H_
