#include "src/runtime/sink.h"

#include <algorithm>
#include <utility>

namespace stateslice {

void CountingSink::Process(Event event, int /*input_port*/) {
  if (const Punctuation* p = std::get_if<Punctuation>(&event)) {
    if (p->watermark > watermark_) watermark_ = p->watermark;
    return;
  }
  const TimePoint t = EventTime(event);
  if (t < last_time_) ordered_ = false;
  last_time_ = t;
  if (IsJoinResult(event)) {
    ++result_count_;
  } else {
    ++tuple_count_;
  }
}

void CollectingSink::Process(Event event, int /*input_port*/) {
  if (IsPunctuation(event)) return;
  const TimePoint t = EventTime(event);
  if (t < last_time_) ordered_ = false;
  last_time_ = t;
  if (JoinResult* r = std::get_if<JoinResult>(&event)) {
    results_.push_back(std::move(*r));
  }
}

std::map<std::string, int> CollectingSink::ResultMultiset() const {
  std::map<std::string, int> multiset;
  for (const JoinResult& r : results_) {
    ++multiset[JoinPairKey(r)];
  }
  return multiset;
}

std::vector<std::pair<TimePoint, std::string>>
CollectingSink::TimeSortedResults() const {
  std::vector<std::pair<TimePoint, std::string>> sorted;
  sorted.reserve(results_.size());
  for (const JoinResult& r : results_) {
    sorted.emplace_back(r.timestamp(), JoinPairKey(r));
  }
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace stateslice
