// QueryPlan: ownership and wiring of an operator DAG.
//
// A shared query plan capturing multi-queries is a DAG of operators
// (paper Section 2). The plan owns operators and queues, wires them, checks
// acyclicity, and exposes aggregate metrics (state memory, cost counters).
#ifndef STATESLICE_RUNTIME_PLAN_H_
#define STATESLICE_RUNTIME_PLAN_H_

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/arena.h"
#include "src/common/check.h"
#include "src/common/cost_counters.h"
#include "src/common/thread_annotations.h"
#include "src/runtime/execution_mode.h"
#include "src/runtime/operator.h"
#include "src/runtime/queue.h"

namespace stateslice {

// Owns a DAG of operators and the queues between them.
//
// Typical construction:
//   QueryPlan plan;
//   auto* join = plan.AddOperator(std::make_unique<SlidingWindowJoin>(...));
//   EventQueue* in = plan.AddEntryQueue("in", join, /*port=*/0);
//   plan.Connect(join, kResultPort, sink, 0);
//   plan.Start();
class QueryPlan {
 public:
  QueryPlan() = default;

  QueryPlan(const QueryPlan&) = delete;
  QueryPlan& operator=(const QueryPlan&) = delete;

  // Adds `op` to the plan and returns a non-owning pointer (typed for
  // convenience). The plan installs its cost-counter sink on the operator.
  template <typename OpT>
  OpT* AddOperator(std::unique_ptr<OpT> op) {
    OpT* raw = op.get();
    RegisterOperator(std::move(op));
    return raw;
  }

  // Creates a queue feeding `op` at `port` from outside the plan (a source
  // pushes into it). Returned pointer is owned by the plan.
  EventQueue* AddEntryQueue(const std::string& name, Operator* op, int port);

  // Creates a queue from `from`'s output `out_port` to `to`'s input
  // `in_port`. Output ports broadcast: connecting the same output port twice
  // fans out a copy of each event to each queue.
  EventQueue* Connect(Operator* from, int out_port, Operator* to,
                      int in_port);

  // Creates an exit queue fed by `from`'s output `out_port`, to be drained
  // externally (rare; sinks are usually plan operators).
  EventQueue* AddExitQueue(const std::string& name, Operator* from,
                           int out_port);

  // Verifies the DAG (acyclicity over queue edges) and calls Start() on all
  // operators. Must be called exactly once before execution.
  void Start();

  // Calls Finish() on operators in topological order, then drains any
  // events those flushes produced. Used by the executor at end-of-input.
  // (Exposed for tests; most callers use Executor::Run.)
  void FinishAll();

  // Sum of StateSize() over all operators: the paper's state-memory metric.
  size_t TotalStateSize() const;

  // Sum of current queue occupancy (queue memory).
  size_t TotalQueueSize() const;

  // All operators in insertion order.
  const std::vector<std::unique_ptr<Operator>>& operators() const {
    return operators_;
  }
  // All queues in creation order.
  const std::vector<std::unique_ptr<EventQueue>>& queues() const {
    return queues_;
  }
  // Queues that feed operator inputs (entry + internal), i.e. queues the
  // scheduler must drain. Exit queues are excluded.
  const std::vector<std::pair<EventQueue*, std::pair<Operator*, int>>>&
  consumer_edges() const {
    return consumer_edges_;
  }
  // Producer operator -> queue pairs (entry queues have no producer and
  // are absent). The parallel scheduler uses this to classify each queue
  // edge by the pipeline stage of its producer.
  const std::vector<std::pair<Operator*, EventQueue*>>& producer_edges()
      const {
    return producer_edges_;
  }

  // Operators in a topological order following queue edges; CHECK-fails on
  // a cycle. The parallel scheduler partitions this order into contiguous
  // stages so that every cross-stage edge points forward (deadlock-free
  // backpressure).
  std::vector<Operator*> TopologicalOrder() const;

  CostCounters& cost_counters() { return cost_counters_; }
  const CostCounters& cost_counters() const { return cost_counters_; }

  // The plan's epoch arena backing spilled composite-tuple tails.
  // Schedulers install it (ArenaScope) for the duration of a run; its
  // lifetime is the plan's lifetime. Immutable pointer after construction,
  // safe to read from any thread.
  Arena* arena() { return &arena_; }

  bool started() const { return started_; }

  // --- execution-mode bookkeeping --------------------------------------
  // The active scheduler declares its mode for the duration of a run. The
  // deterministic mode is the default; while a parallel execution is
  // active, operators and queues are touched concurrently by worker
  // threads, so plan surgery and whole-plan traversals from other threads
  // are forbidden (the *WhileRunning hooks CHECK against it).
  void BeginExecution(ExecutionMode mode) {
    SLICE_CHECK(active_mode_ == ExecutionMode::kDeterministic);
    active_mode_ = mode;
  }
  void EndExecution() { active_mode_ = ExecutionMode::kDeterministic; }
  ExecutionMode active_mode() const { return active_mode_; }

  // Graphviz DOT rendering of the DAG for docs/debugging.
  std::string ToDot() const;

  // --- runtime plan surgery (Section 5.3 online migration) -------------
  // These are low-level hooks used by core/migration.cc. They bypass the
  // "wire before Start()" rule; callers are responsible for quiescing the
  // affected region as described in the paper.
  //
  // The "no migration while parallel" rule is enforced twice: at runtime by
  // the SLICE_CHECK against active_mode_, and at compile time (Clang
  // -Wthread-safety) by the structure-surgery role below — every hook
  // requires it, and the only way to obtain it is AssertSurgeryExclusive(),
  // whose call sites must justify that the pipeline is quiescent.

  // Declares that the calling thread has exclusive access to plan
  // structure: no parallel execution is active (workers joined, or the
  // plan never left deterministic mode) and no other thread touches the
  // plan. Engine::QuiesceForSurgery establishes exactly this state.
  void AssertSurgeryExclusive() const
      STATESLICE_ASSERT_CAPABILITY(structure_role_) {}

  // Detaches nothing (operators keep their queues); simply registers `op`
  // into the running plan and starts it.
  template <typename OpT>
  OpT* InsertOperatorWhileRunning(std::unique_ptr<OpT> op)
      STATESLICE_REQUIRES(structure_role_) {
    SLICE_CHECK(active_mode_ == ExecutionMode::kDeterministic);
    OpT* raw = op.get();
    RegisterOperator(std::move(op));
    raw->Start();
    return raw;
  }

  // Removes `op` from scheduling. Its queues are kept (they may still be
  // referenced); the operator object is destroyed. All of its input queues
  // must be empty.
  void RemoveOperatorWhileRunning(Operator* op)
      STATESLICE_REQUIRES(structure_role_);

  // Like Connect, but permitted after Start(). The new queue joins the
  // scheduler's round-robin immediately.
  EventQueue* ConnectWhileRunning(Operator* from, int out_port, Operator* to,
                                  int in_port)
      STATESLICE_REQUIRES(structure_role_);

  // Moves `queue` from `old_from`'s output `old_port` to `new_from`'s
  // output `new_port`, keeping the consumer side untouched. The migration
  // primitive for handing a live edge to a new producer.
  void MoveQueueProducer(EventQueue* queue, Operator* old_from, int old_port,
                         Operator* new_from, int new_port)
      STATESLICE_REQUIRES(structure_role_);

  // Rebinds `queue`'s consumer to (`to`, `in_port`). `queue` must currently
  // have a consumer. Used when a merged slice replaces the chain element
  // that a queue used to feed.
  void ReplaceQueueConsumer(EventQueue* queue, Operator* to, int in_port)
      STATESLICE_REQUIRES(structure_role_);

  // Removes `queue` from the consumer/producer edge tables (it stops being
  // scheduled). The queue must be empty; the owning storage is retained so
  // stale pointers stay valid.
  void RetireQueue(EventQueue* queue) STATESLICE_REQUIRES(structure_role_);

 private:
  void RegisterOperator(std::unique_ptr<Operator> op);

  // Declared before operators_/queues_ so it is destroyed *last*: operator
  // state and queued events may hold arena-backed composite tails, and
  // their destructors return blocks to this arena.
  Arena arena_;
  std::vector<std::unique_ptr<Operator>> operators_;
  std::vector<std::unique_ptr<EventQueue>> queues_;
  // queue -> (consumer operator, port)
  std::vector<std::pair<EventQueue*, std::pair<Operator*, int>>>
      consumer_edges_;
  // producer operator -> queue (for DOT and topo-sort)
  std::vector<std::pair<Operator*, EventQueue*>> producer_edges_;
  CostCounters cost_counters_;
  bool started_ = false;
  ExecutionMode active_mode_ = ExecutionMode::kDeterministic;
  // Capability for structural surgery on a running plan (see the surgery
  // section above).
  ThreadRole structure_role_;
};

}  // namespace stateslice

#endif  // STATESLICE_RUNTIME_PLAN_H_
