// Lock-free bounded single-producer/single-consumer ring queue.
//
// The parallel scheduler (src/runtime/parallel_scheduler.h) connects
// pipeline stages with these rings: exactly one thread pushes and exactly
// one thread pops, so a classic head/tail ring with acquire/release
// ordering suffices — no locks, no CAS loops. Capacity is bounded, which is
// what gives the pipeline backpressure: a producer whose downstream ring is
// full must wait (spin/yield) until the consumer catches up.
//
// The queue keeps the same accounting as the deterministic EventQueue
// (high_water_mark / total_pushed) so queue-memory reporting works in both
// execution modes. Both counters are maintained by the producer; the
// high-water mark is computed against the producer's cached view of the
// consumer position, so it can over-estimate occupancy by the consumer's
// lag, but never exceeds the capacity.
#ifndef STATESLICE_RUNTIME_SPSC_QUEUE_H_
#define STATESLICE_RUNTIME_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/common/thread_annotations.h"
#include "src/runtime/sync_point.h"

namespace stateslice {

namespace spsc_internal {

// Publication orders for the ring indices. The release stores are the load-
// bearing half of the SPSC protocol: they order the slot writes before the
// index publication the other side acquires. The STATESLICE_SEEDED_BUG_*
// variants deliberately weaken one of them so the interleave explorer
// (tests/interleave/) can prove it catches the resulting data race — they
// are compiled only by the seeded-violation catch tests, never by
// production targets.
#if defined(STATESLICE_SEEDED_BUG_1)
// lint: allow(atomic-memory-order) -- seeded interleave-catch violation
inline constexpr std::memory_order kTailPublishOrder =
    std::memory_order_relaxed;
#else
inline constexpr std::memory_order kTailPublishOrder =
    std::memory_order_release;
#endif
#if defined(STATESLICE_SEEDED_BUG_2)
// lint: allow(atomic-memory-order) -- seeded interleave-catch violation
inline constexpr std::memory_order kRunPublishOrder =
    std::memory_order_relaxed;
#else
inline constexpr std::memory_order kRunPublishOrder =
    std::memory_order_release;
#endif

}  // namespace spsc_internal

// Bounded SPSC FIFO of default-constructible, movable values.
//
// Thread contract: TryPush (and the producer-side accessors it maintains)
// may be called by one thread at a time; TryPop by one (possibly different)
// thread at a time. empty()/size() are safe from any thread but return a
// snapshot that may be stale by the time the caller acts on it.
//
// The SPSC contract is machine-checked via two thread roles: TryPush
// requires the producer role and TryPop the consumer role. A thread that
// takes on a role (e.g. a pipeline worker designated as the sole consumer
// of a cross-stage ring) declares it with AssertProducer()/AssertConsumer()
// plus a comment justifying the claim; under Clang -Wthread-safety, calling
// TryPush/TryPop — or touching the role-cached indices — without the
// matching assertion in scope is a compile error.
template <typename T>
class SpscQueue {
 public:
  // Rounds `min_capacity` up to the next power of two (>= 2) so the ring
  // index is a mask instead of a modulo.
  explicit SpscQueue(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  // Declares that the calling thread is this ring's single producer
  // (consumer). The claim must hold by construction of the caller's
  // threading design — document why at each call site.
  void AssertProducer() const STATESLICE_ASSERT_CAPABILITY(producer_role_) {}
  void AssertConsumer() const STATESLICE_ASSERT_CAPABILITY(consumer_role_) {}

  // Attempts to append `value`. Returns false (leaving `value` untouched)
  // when the ring is full. Producer thread only.
  bool TryPush(T&& value) STATESLICE_REQUIRES(producer_role_) {
    // lint: allow(atomic-memory-order) -- producer-owned index, self-read
    const uint64_t tail = STATESLICE_ATOMIC_LOAD_OWNER(
        "spsc.push.tail_read", tail_, std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity_) {
      head_cache_ = STATESLICE_ATOMIC_LOAD("spsc.push.head_refresh", head_,
                                           std::memory_order_acquire);
      if (tail - head_cache_ >= capacity_) return false;
    }
    STATESLICE_SYNC_PLAIN_WRITE("spsc.push.slot", &slots_[tail & mask_]);
    slots_[tail & mask_] = std::move(value);
    STATESLICE_ATOMIC_STORE("spsc.push.tail_publish", tail_, tail + 1,
                            spsc_internal::kTailPublishOrder);
    // lint: allow(atomic-memory-order) -- single-writer accounting counter
    STATESLICE_ATOMIC_ACCOUNTING_FETCH_ADD("spsc.push.total", total_pushed_,
                                           1, std::memory_order_relaxed);
    const uint64_t occupancy = tail + 1 - head_cache_;
    // lint: allow(atomic-memory-order) -- single-writer accounting counter
    if (occupancy > STATESLICE_ATOMIC_ACCOUNTING_LOAD(
                        "spsc.push.hwm_read", high_water_mark_,
                        std::memory_order_relaxed)) {
      // lint: allow(atomic-memory-order) -- single-writer accounting counter
      STATESLICE_ATOMIC_ACCOUNTING_STORE("spsc.push.hwm_write",
                                         high_water_mark_, occupancy,
                                         std::memory_order_relaxed);
    }
    return true;
  }

  // Bulk TryPush: appends values of `*run` starting at index `from`, as
  // many as fit, and returns how many were pushed (possibly zero when the
  // ring is full). All pushed values are published with a single release
  // store, amortizing the atomic traffic across the run. `RunT` needs only
  // size() and operator[] (EventRun, std::vector). Producer thread only.
  template <typename RunT>
  size_t TryPushRun(RunT* run, size_t from)
      STATESLICE_REQUIRES(producer_role_) {
    // lint: allow(atomic-memory-order) -- producer-owned index, self-read
    const uint64_t tail = STATESLICE_ATOMIC_LOAD_OWNER(
        "spsc.push_run.tail_read", tail_, std::memory_order_relaxed);
    size_t space = static_cast<size_t>(capacity_ - (tail - head_cache_));
    if (space == 0) {
      head_cache_ = STATESLICE_ATOMIC_LOAD("spsc.push_run.head_refresh",
                                           head_, std::memory_order_acquire);
      space = static_cast<size_t>(capacity_ - (tail - head_cache_));
      if (space == 0) return 0;
    }
    const size_t want = run->size() - from;
    const size_t count = want < space ? want : space;
    for (size_t i = 0; i < count; ++i) {
      STATESLICE_SYNC_PLAIN_WRITE("spsc.push_run.slot",
                                  &slots_[(tail + i) & mask_]);
      slots_[(tail + i) & mask_] = std::move((*run)[from + i]);
    }
    STATESLICE_ATOMIC_STORE("spsc.push_run.tail_publish", tail_,
                            tail + count, spsc_internal::kRunPublishOrder);
    // lint: allow(atomic-memory-order) -- single-writer accounting counter
    STATESLICE_ATOMIC_ACCOUNTING_FETCH_ADD("spsc.push_run.total",
                                           total_pushed_, count,
                                           std::memory_order_relaxed);
    const uint64_t occupancy = tail + count - head_cache_;
    // lint: allow(atomic-memory-order) -- single-writer accounting counter
    if (occupancy > STATESLICE_ATOMIC_ACCOUNTING_LOAD(
                        "spsc.push_run.hwm_read", high_water_mark_,
                        std::memory_order_relaxed)) {
      // lint: allow(atomic-memory-order) -- single-writer accounting counter
      STATESLICE_ATOMIC_ACCOUNTING_STORE("spsc.push_run.hwm_write",
                                         high_water_mark_, occupancy,
                                         std::memory_order_relaxed);
    }
    return count;
  }

  // Attempts to move the front value into `*out`. Returns false when the
  // ring is empty. Consumer thread only.
  bool TryPop(T* out) STATESLICE_REQUIRES(consumer_role_) {
    // lint: allow(atomic-memory-order) -- consumer-owned index, self-read
    const uint64_t head = STATESLICE_ATOMIC_LOAD_OWNER(
        "spsc.pop.head_read", head_, std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = STATESLICE_ATOMIC_LOAD("spsc.pop.tail_refresh", tail_,
                                           std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    STATESLICE_SYNC_PLAIN_READ("spsc.pop.slot", &slots_[head & mask_]);
    *out = std::move(slots_[head & mask_]);
    STATESLICE_ATOMIC_STORE("spsc.pop.head_publish", head_, head + 1,
                            std::memory_order_release);
    return true;
  }

  // Bulk TryPop: moves up to `max_values` front values into *out via
  // push_back, publishing the consumption with a single release store.
  // Returns how many moved (zero when empty). Consumer thread only.
  template <typename RunT>
  size_t TryPopRun(RunT* out, size_t max_values)
      STATESLICE_REQUIRES(consumer_role_) {
    // lint: allow(atomic-memory-order) -- consumer-owned index, self-read
    const uint64_t head = STATESLICE_ATOMIC_LOAD_OWNER(
        "spsc.pop_run.head_read", head_, std::memory_order_relaxed);
    uint64_t available = tail_cache_ - head;
    if (available == 0) {
      tail_cache_ = STATESLICE_ATOMIC_LOAD("spsc.pop_run.tail_refresh",
                                           tail_, std::memory_order_acquire);
      available = tail_cache_ - head;
      if (available == 0) return 0;
    }
    const size_t count = max_values < available
                             ? max_values
                             : static_cast<size_t>(available);
    for (size_t i = 0; i < count; ++i) {
      STATESLICE_SYNC_PLAIN_READ("spsc.pop_run.slot",
                                 &slots_[(head + i) & mask_]);
      out->push_back(std::move(slots_[(head + i) & mask_]));
    }
    STATESLICE_ATOMIC_STORE("spsc.pop_run.head_publish", head_, head + count,
                            std::memory_order_release);
    return count;
  }

  // Snapshot emptiness / occupancy (any thread; may be stale).
  bool empty() const { return size() == 0; }
  size_t size() const {
    const uint64_t tail = STATESLICE_ATOMIC_LOAD("spsc.size.tail", tail_,
                                                 std::memory_order_acquire);
    const uint64_t head = STATESLICE_ATOMIC_LOAD("spsc.size.head", head_,
                                                 std::memory_order_acquire);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

  size_t capacity() const { return capacity_; }

  // Largest producer-observed occupancy (see file comment for precision).
  size_t high_water_mark() const {
    // lint: allow(atomic-memory-order) -- stale-snapshot accounting read
    return STATESLICE_ATOMIC_ACCOUNTING_LOAD("spsc.hwm", high_water_mark_,
                                             std::memory_order_relaxed);
  }

  // Total number of values ever pushed.
  uint64_t total_pushed() const {
    // lint: allow(atomic-memory-order) -- stale-snapshot accounting read
    return STATESLICE_ATOMIC_ACCOUNTING_LOAD("spsc.total", total_pushed_,
                                             std::memory_order_relaxed);
  }

 private:
  // Cache-line layout: the two shared indices get a line each, then one
  // line of producer-written state and one line of consumer-written state,
  // so neither side's per-operation writes invalidate a line the other
  // side touches. The trailing members are written only during
  // construction; read-only sharing of their line is free.
  alignas(64) std::atomic<uint64_t> head_{0};  // next slot to pop
  alignas(64) std::atomic<uint64_t> tail_{0};  // next slot to fill
  // -- producer-written --
  // producer's view of head_
  alignas(64) uint64_t head_cache_ STATESLICE_GUARDED_BY(producer_role_) = 0;
  std::atomic<uint64_t> high_water_mark_{0};
  std::atomic<uint64_t> total_pushed_{0};
  // -- consumer-written --
  // consumer's view of tail_
  alignas(64) uint64_t tail_cache_ STATESLICE_GUARDED_BY(consumer_role_) = 0;
  // -- immutable after construction --
  alignas(64) std::vector<T> slots_;
  size_t capacity_ = 0;
  uint64_t mask_ = 0;
  // The SPSC role capabilities (empty tags; see file comment).
  ThreadRole producer_role_;
  ThreadRole consumer_role_;
};

}  // namespace stateslice

#endif  // STATESLICE_RUNTIME_SPSC_QUEUE_H_
