// Schedule-test instrumentation for the lock-free runtime primitives.
//
// The parallel pipeline's correctness rests on a small memory-ordering
// protocol (SpscQueue's head/tail publication, the per-edge close flags).
// Thread Safety Analysis proves *which thread* may touch what; it cannot
// prove the protocol's memory orders correct — a single misplaced
// memory_order_relaxed passes TSA, clang-tidy, and most TSan runs. The
// macros below mark every cross-thread atomic site so a test-owned
// interleaving explorer (tests/interleave/) can systematically drive the
// schedule *and* the weak-memory visibility at each site, in the style of
// relacy/loom.
//
// In normal builds every macro expands to exactly the raw operation (or to
// nothing, for the pure scheduling hooks): zero overhead, byte-identical
// codegen. Under the STATESLICE_SCHED_TEST CMake option the macros route
// through an installable SchedHooks interface; with no hooks installed
// they fall back to the raw operation, so ordinary tests still pass in a
// sched-test build.
//
// Macro vocabulary (tag is a stable site label used in failure traces):
//   STATESLICE_SYNC_POINT(tag)            scheduling yield (spin loops)
//   STATESLICE_SYNC_FUTILE(tag)           yield, blocked until some modeled
//                                         store lands (failed Try*, idle)
//   STATESLICE_ATOMIC_LOAD(tag,a,o)       modeled cross-thread atomic load;
//                                         the explorer may return any value
//                                         the C++ memory model allows
//   STATESLICE_ATOMIC_STORE(tag,a,v,o)    modeled cross-thread atomic store
//   STATESLICE_ATOMIC_LOAD_OWNER(tag,a,o) single-writer self-read: the
//                                         calling thread is the only writer
//                                         of `a`, so the load can only
//                                         observe its own latest store; not
//                                         a scheduling or branching point
//   STATESLICE_ATOMIC_ACCOUNTING_*        snapshot-only counters (high-water
//                                         marks, totals): single-writer or
//                                         commutative, read cross-thread as
//                                         stale snapshots by design;
//                                         excluded from the model
//   STATESLICE_SYNC_PLAIN_WRITE/READ(tag,addr)
//                                         non-atomic access to shared data
//                                         (ring slots): race-checked against
//                                         the explorer's happens-before
//                                         clocks, not a scheduling point
//   STATESLICE_SYNC_THREAD_SPAWN/BEGIN/END, STATESLICE_SYNC_PARK/UNPARK
//                                         thread lifecycle: creation is
//                                         announced before std::thread spawn
//                                         so the explorer can wait for the
//                                         worker to register; PARK brackets
//                                         real blocking (thread::join) so a
//                                         parked thread does not stall the
//                                         cooperative schedule
#ifndef STATESLICE_RUNTIME_SYNC_POINT_H_
#define STATESLICE_RUNTIME_SYNC_POINT_H_

#include <atomic>
#include <cstdint>

#if defined(STATESLICE_SCHED_TEST)

namespace stateslice::schedtest {

// Test-owned instrumentation callbacks. The interleave explorer implements
// this and installs itself for the duration of an exploration; every
// instrumented site in the runtime then yields scheduling control and
// reports its operation. All callbacks are invoked from the instrumented
// thread at the instrumented site.
class SchedHooks {
 public:
  virtual ~SchedHooks() = default;

  // Pure scheduling yield (spin-loop bodies).
  virtual void SyncPoint(const char* tag) = 0;
  // Yield after a fruitless attempt (ring full/empty, idle stage): the
  // thread makes no progress until another thread performs a modeled store.
  virtual void Futile(const char* tag) = 0;

  // Modeled atomic operations. `var` identifies the atomic by address;
  // `initial` seeds the model's store history on first contact (the value
  // the atomic held at construction). Loads return the value chosen by the
  // explorer's memory model — any store the given memory order permits the
  // calling thread to observe.
  virtual uint64_t AtomicLoad(const char* tag, const void* var,
                              std::memory_order order, uint64_t initial) = 0;
  virtual void AtomicStore(const char* tag, void* var,
                           std::memory_order order, uint64_t value,
                           uint64_t initial) = 0;
  // Modeled compare-and-swap. A CAS is an atomic read-modify-write: it
  // always observes the *newest* store in the variable's modification
  // order (never a stale value), so unlike AtomicLoad the explorer has no
  // value choice to branch on — only the schedule around the operation
  // varies. Returns the observed value; the CAS succeeded iff it equals
  // `expected`. On success the hook records a store of `desired` whose
  // release-ness follows `success_order`; the acquire-ness of the read
  // follows `success_order` on success and `failure_order` on failure.
  virtual uint64_t AtomicCas(const char* tag, void* var, uint64_t expected,
                             uint64_t desired, std::memory_order success_order,
                             std::memory_order failure_order,
                             uint64_t initial) = 0;

  // Non-atomic access to shared payload (ring slots). Race-checked against
  // the happens-before relation implied by the modeled atomics.
  virtual void PlainWrite(const char* tag, const void* addr) = 0;
  virtual void PlainRead(const char* tag, const void* addr) = 0;

  // Thread lifecycle (see macro table above).
  virtual void ThreadSpawn() = 0;
  virtual void ThreadBegin(int stable_id) = 0;
  virtual void ThreadEnd() = 0;
  virtual void Park() = 0;
  virtual void Unpark() = 0;
};

// Installed hooks, or nullptr (passthrough). The explorer installs before
// spawning instrumented threads and uninstalls after joining them, so the
// pointer is stable for the lifetime of any instrumented operation.
SchedHooks* Hooks();
void InstallHooks(SchedHooks* hooks);

template <typename T>
inline T ModelLoad(const char* tag, const std::atomic<T>& a,
                   std::memory_order order) {
  if (SchedHooks* h = Hooks()) {
    return static_cast<T>(h->AtomicLoad(
        tag, &a, order,
        static_cast<uint64_t>(a.load(std::memory_order_relaxed))));
  }
  return a.load(order);
}

template <typename T, typename V>
inline void ModelStore(const char* tag, std::atomic<T>& a, V value,
                       std::memory_order order) {
  if (SchedHooks* h = Hooks()) {
    h->AtomicStore(tag, &a, order, static_cast<uint64_t>(value),
                   static_cast<uint64_t>(a.load(std::memory_order_relaxed)));
  }
  // The real atomic mirrors the model's newest store so passthrough
  // readers (unregistered threads, free-run recovery) stay coherent.
  a.store(static_cast<T>(value), order);
}

template <typename T, typename V>
inline bool ModelCas(const char* tag, std::atomic<T>& a, T& expected,
                     V desired, std::memory_order success_order,
                     std::memory_order failure_order) {
  if (SchedHooks* h = Hooks()) {
    uint64_t observed = h->AtomicCas(
        tag, &a, static_cast<uint64_t>(expected),
        static_cast<uint64_t>(desired), success_order, failure_order,
        static_cast<uint64_t>(a.load(std::memory_order_relaxed)));
    bool success = observed == static_cast<uint64_t>(expected);
    if (success) {
      // Mirror the model's newest store onto the real atomic so
      // passthrough readers (unregistered threads, free-run recovery)
      // stay coherent. The cooperative scheduler serializes modeled
      // operations, so a plain store cannot lose a concurrent update.
      // The CAS success order may carry an acquire half that is invalid
      // on a plain store — keep only the release half for the mirror.
      const std::memory_order mirror_order =
          success_order == std::memory_order_release ||
                  success_order == std::memory_order_acq_rel
              ? std::memory_order_release
              : success_order == std::memory_order_seq_cst
                    ? std::memory_order_seq_cst
                    : std::memory_order_relaxed;
      a.store(static_cast<T>(desired), mirror_order);
    } else {
      expected = static_cast<T>(observed);
    }
    return success;
  }
  return a.compare_exchange_strong(expected, static_cast<T>(desired),
                                   success_order, failure_order);
}

inline void ModelSyncPoint(const char* tag) {
  if (SchedHooks* h = Hooks()) h->SyncPoint(tag);
}
inline void ModelFutile(const char* tag) {
  if (SchedHooks* h = Hooks()) h->Futile(tag);
}
inline void ModelPlainWrite(const char* tag, const void* addr) {
  if (SchedHooks* h = Hooks()) h->PlainWrite(tag, addr);
}
inline void ModelPlainRead(const char* tag, const void* addr) {
  if (SchedHooks* h = Hooks()) h->PlainRead(tag, addr);
}
inline void ModelThreadSpawn() {
  if (SchedHooks* h = Hooks()) h->ThreadSpawn();
}
inline void ModelThreadBegin(int stable_id) {
  if (SchedHooks* h = Hooks()) h->ThreadBegin(stable_id);
}
inline void ModelThreadEnd() {
  if (SchedHooks* h = Hooks()) h->ThreadEnd();
}
inline void ModelPark() {
  if (SchedHooks* h = Hooks()) h->Park();
}
inline void ModelUnpark() {
  if (SchedHooks* h = Hooks()) h->Unpark();
}

}  // namespace stateslice::schedtest

#define STATESLICE_SYNC_POINT(tag) ::stateslice::schedtest::ModelSyncPoint(tag)
#define STATESLICE_SYNC_FUTILE(tag) ::stateslice::schedtest::ModelFutile(tag)
#define STATESLICE_ATOMIC_LOAD(tag, a, order) \
  ::stateslice::schedtest::ModelLoad((tag), (a), (order))
#define STATESLICE_ATOMIC_STORE(tag, a, value, order) \
  ::stateslice::schedtest::ModelStore((tag), (a), (value), (order))
#define STATESLICE_ATOMIC_CAS(tag, a, expected, desired, succ, fail) \
  ::stateslice::schedtest::ModelCas((tag), (a), (expected), (desired), (succ), \
                                    (fail))
// Single-writer self-reads and accounting counters are excluded from the
// interleaving model (see macro table): raw operations even under test.
#define STATESLICE_ATOMIC_LOAD_OWNER(tag, a, order) (a).load(order)
#define STATESLICE_ATOMIC_ACCOUNTING_LOAD(tag, a, order) (a).load(order)
#define STATESLICE_ATOMIC_ACCOUNTING_STORE(tag, a, value, order) \
  (a).store((value), (order))
#define STATESLICE_ATOMIC_ACCOUNTING_FETCH_ADD(tag, a, delta, order) \
  (a).fetch_add((delta), (order))
#define STATESLICE_SYNC_PLAIN_WRITE(tag, addr) \
  ::stateslice::schedtest::ModelPlainWrite((tag), (addr))
#define STATESLICE_SYNC_PLAIN_READ(tag, addr) \
  ::stateslice::schedtest::ModelPlainRead((tag), (addr))
#define STATESLICE_SYNC_THREAD_SPAWN() \
  ::stateslice::schedtest::ModelThreadSpawn()
#define STATESLICE_SYNC_THREAD_BEGIN(stable_id) \
  ::stateslice::schedtest::ModelThreadBegin(stable_id)
#define STATESLICE_SYNC_THREAD_END() ::stateslice::schedtest::ModelThreadEnd()
#define STATESLICE_SYNC_PARK() ::stateslice::schedtest::ModelPark()
#define STATESLICE_SYNC_UNPARK() ::stateslice::schedtest::ModelUnpark()

#else  // !STATESLICE_SCHED_TEST

// Normal builds: the atomic macros expand to exactly the raw operation and
// the scheduling hooks to nothing — zero overhead, identical codegen.
#define STATESLICE_SYNC_POINT(tag) ((void)0)
#define STATESLICE_SYNC_FUTILE(tag) ((void)0)
#define STATESLICE_ATOMIC_LOAD(tag, a, order) (a).load(order)
#define STATESLICE_ATOMIC_STORE(tag, a, value, order) \
  (a).store((value), (order))
#define STATESLICE_ATOMIC_CAS(tag, a, expected, desired, succ, fail) \
  (a).compare_exchange_strong((expected), (desired), (succ), (fail))
#define STATESLICE_ATOMIC_LOAD_OWNER(tag, a, order) (a).load(order)
#define STATESLICE_ATOMIC_ACCOUNTING_LOAD(tag, a, order) (a).load(order)
#define STATESLICE_ATOMIC_ACCOUNTING_STORE(tag, a, value, order) \
  (a).store((value), (order))
#define STATESLICE_ATOMIC_ACCOUNTING_FETCH_ADD(tag, a, delta, order) \
  (a).fetch_add((delta), (order))
#define STATESLICE_SYNC_PLAIN_WRITE(tag, addr) ((void)0)
#define STATESLICE_SYNC_PLAIN_READ(tag, addr) ((void)0)
#define STATESLICE_SYNC_THREAD_SPAWN() ((void)0)
#define STATESLICE_SYNC_THREAD_BEGIN(stable_id) ((void)(stable_id))
#define STATESLICE_SYNC_THREAD_END() ((void)0)
#define STATESLICE_SYNC_PARK() ((void)0)
#define STATESLICE_SYNC_UNPARK() ((void)0)

#endif  // STATESLICE_SCHED_TEST

#endif  // STATESLICE_RUNTIME_SYNC_POINT_H_
