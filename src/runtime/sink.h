// Result sinks: terminal operators that receive a query's output.
//
// Each continuous query registered with a shared plan gets its own sink
// (the paper's "data receivers", Section 7.1). Sinks count results for
// service-rate metrics; the collecting variant additionally stores results
// for equivalence tests.
#ifndef STATESLICE_RUNTIME_SINK_H_
#define STATESLICE_RUNTIME_SINK_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/runtime/operator.h"

namespace stateslice {

// Counts joined results delivered to one query output; drops payloads.
class CountingSink : public Operator {
 public:
  explicit CountingSink(std::string name) : Operator(std::move(name)) {}

  void Process(Event event, int input_port) override;

  // Number of JoinResult events received.
  uint64_t result_count() const { return result_count_; }
  // Number of bare Tuple events received (for selection-only plans).
  uint64_t tuple_count() const { return tuple_count_; }
  // Highest punctuation watermark seen.
  TimePoint watermark() const { return watermark_; }

  // True while every received event's timestamp has been >= all previously
  // received event timestamps (order-preservation check for union outputs).
  bool saw_ordered_stream() const { return ordered_; }

 private:
  uint64_t result_count_ = 0;
  uint64_t tuple_count_ = 0;
  TimePoint watermark_ = kMinTime;
  TimePoint last_time_ = kMinTime;
  bool ordered_ = true;
};

// Stores every JoinResult (identity key + timestamp) for test comparison.
class CollectingSink : public Operator {
 public:
  explicit CollectingSink(std::string name) : Operator(std::move(name)) {}

  void Process(Event event, int input_port) override;

  const std::vector<JoinResult>& results() const { return results_; }

  // Multiset of JoinPairKey() -> count; the canonical form used by the
  // chain-equivalence property tests (Theorems 1-3).
  std::map<std::string, int> ResultMultiset() const;

  // Result identity keys sorted by (timestamp, key): the timestamp-order
  // canonical form for comparing a parallel run against the deterministic
  // reference. Two runs that deliver the same results in the same
  // per-timestamp order compare equal even when same-timestamp ties were
  // released in a different arrival order.
  std::vector<std::pair<TimePoint, std::string>> TimeSortedResults() const;

  // True if result timestamps arrived in non-decreasing order.
  bool saw_ordered_stream() const { return ordered_; }

  uint64_t result_count() const { return results_.size(); }

 private:
  std::vector<JoinResult> results_;
  TimePoint last_time_ = kMinTime;
  bool ordered_ = true;
};

}  // namespace stateslice

#endif  // STATESLICE_RUNTIME_SINK_H_
