// Key-hash router feeding the sharded execution mode.
//
// The sharded scheduler (src/runtime/sharded_scheduler.h) replicates the
// shared sliced chain into N independent shard instances; this router owns
// the per-shard ingress structures and the single-feeder routing
// discipline that keeps every shard's input timestamp-ordered:
//
//  - A Tuple is routed to shard hash(key) % N, so equal keys always meet
//    in the same replica (equi-join results are exactly the union of the
//    per-shard results). Punctuations (and any non-tuple event) broadcast
//    to every shard.
//  - Each shard is fed through a bounded SPSC ring. When the ring is full
//    — a loaded or skewed shard — events spill into the shard's overflow
//    deque as whole EventRuns, the unit of work-stealing.
//  - FIFO across the two lanes: an event goes to the ring only while the
//    overflow is empty (and nothing is staged); once anything spills,
//    every later event for that shard spills too, until the overflow
//    drains. Hence whenever ring and overflow are both non-empty, every
//    ring event is older than every overflow event, and a consumer that
//    drains ring-first-then-overflow-head preserves arrival order —
//    PROVIDED the consumer re-checks the ring after observing the
//    overflow non-empty (an acquire snapshot) and before popping it. A
//    lone ring-empty read may be stale relative to a later overflow
//    read; the non-empty observation synchronizes with the feeder's
//    spill publication, making every older ring event visible to the
//    re-check. (Found by the interleave explorer; invisible on TSO.)
//
// The execution token serializing each shard's consumers also lives here:
// workers (owner or thief) win the token with a CAS and release it with a
// release store, which is the happens-before edge that carries shard-local
// consumer state (ring/deque caches, plan state) between executors.
#ifndef STATESLICE_RUNTIME_SHARD_ROUTER_H_
#define STATESLICE_RUNTIME_SHARD_ROUTER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/common/tuple.h"
#include "src/runtime/queue.h"
#include "src/runtime/spsc_queue.h"
#include "src/runtime/steal_deque.h"
#include "src/runtime/sync_point.h"

namespace stateslice {

namespace shard_internal {

// Order of the token-release store. Releasing the shard execution token
// publishes every shard-local write the holder made (plan state, ring and
// deque consumer caches) to the next holder's acquire CAS; weakening it to
// relaxed is the seeded-violation variant the interleave catch tests prove
// detectable. Compiled only by those tests, never by production targets.
#if defined(STATESLICE_SEEDED_BUG_5)
// lint: allow(atomic-memory-order) -- seeded interleave-catch violation
inline constexpr std::memory_order kTokenReleaseOrder =
    std::memory_order_relaxed;
#else
inline constexpr std::memory_order kTokenReleaseOrder =
    std::memory_order_release;
#endif

}  // namespace shard_internal

struct ShardRouterOptions {
  int num_shards = 2;
  // Per-shard SPSC ring capacity (events).
  size_t ring_capacity = 256;
  // Per-shard overflow deque capacity (whole EventRuns).
  size_t overflow_capacity = 64;
  // Events per spilled run: the granularity of work-stealing.
  size_t spill_run_length = 64;
};

// Per-shard ingress state. The ring/overflow carry their own role
// capabilities; the token and closed flag are lock-free cross-thread sites.
struct ShardCell {
  ShardCell(size_t ring_capacity, size_t overflow_capacity)
      : ring(ring_capacity), overflow(overflow_capacity) {}

  SpscQueue<Event> ring;
  StealDeque<EventRun> overflow;
  // Execution token: 0 = free, else 1 + worker index of the holder. See
  // ShardRouter::TryAcquireToken.
  alignas(64) std::atomic<uint32_t> token{0};
  // Set (release) by the feeder after the final flush: no further input
  // will arrive on this shard.
  std::atomic<uint32_t> closed{0};
};

// Owns the shard cells and the feeder-side routing state. Thread contract:
// Route/FlushPending/CloseAll are feeder-thread-only (machine-checked via
// the feeder role); TryAcquireToken/ReleaseToken/IsClosed are any-thread.
class ShardRouter {
 public:
  explicit ShardRouter(ShardRouterOptions options);

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  int num_shards() const { return options_.num_shards; }
  ShardCell& cell(int shard) { return *cells_[static_cast<size_t>(shard)]; }

  // Shard index for an equi-join key (splitmix64 finalizer: cheap and
  // well-distributed even for dense sequential key domains).
  int ShardOf(int64_t key) const {
    uint64_t x = static_cast<uint64_t>(key) + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<int>(x % static_cast<uint64_t>(options_.num_shards));
  }

  // Declares that the calling thread is the router's single feeder.
  // Document why at each call site.
  void AssertFeeder() const STATESLICE_ASSERT_CAPABILITY(feeder_role_) {}

  // Routes one event (tuples by key; everything else broadcast). May block
  // (spin/backoff) when a shard's overflow deque is full — that is the
  // sharded mode's ingestion backpressure. Feeder thread only.
  void Route(Event event) STATESLICE_REQUIRES(feeder_role_);

  // Pushes every staged partial spill run out to the overflow deques so
  // workers can see all routed input (call at batch boundaries and before
  // polling results). Feeder thread only.
  void FlushPending() STATESLICE_REQUIRES(feeder_role_);

  // Flushes, then publishes the closed flag on every shard (release): no
  // further input. Feeder thread only.
  void CloseAll() STATESLICE_REQUIRES(feeder_role_);

  // True once CloseAll has published this shard's close (acquire).
  bool IsClosed(int shard) {
    return STATESLICE_ATOMIC_LOAD("shard.closed_check",
                                  cell(shard).closed,
                                  std::memory_order_acquire) != 0;
  }

  // Attempts to win `shard`'s execution token for `worker` (any thread).
  // Success makes the caller the shard's sole executor — and the rightful
  // asserter of the scheduler's per-shard exec role — until ReleaseToken.
  // The acquire half of the CAS synchronizes with the previous holder's
  // release, handing over all shard-local state.
  bool TryAcquireToken(int shard, uint32_t worker) {
    uint32_t expected = 0;
    return STATESLICE_ATOMIC_CAS("shard.token_acquire", cell(shard).token,
                                 expected, worker + 1,
                                 std::memory_order_acq_rel,
                                 std::memory_order_acquire);
  }

  // Releases `shard`'s token (holder only): the release store publishes
  // every shard-local write of this hold to the next acquirer.
  void ReleaseToken(int shard) {
    STATESLICE_ATOMIC_STORE("shard.token_release", cell(shard).token, 0,
                            shard_internal::kTokenReleaseOrder);
  }

  // Events routed so far, per shard (feeder-side exact counts; any-thread
  // reads see a stale snapshot).
  uint64_t routed(int shard) const {
    // lint: allow(atomic-memory-order) -- stale-snapshot accounting read
    return STATESLICE_ATOMIC_ACCOUNTING_LOAD(
        "shard.routed", routed_[static_cast<size_t>(shard)],
        std::memory_order_relaxed);
  }
  // Runs spilled to overflow deques so far (stale snapshot).
  uint64_t spilled_runs() const {
    // lint: allow(atomic-memory-order) -- stale-snapshot accounting read
    return STATESLICE_ATOMIC_ACCOUNTING_LOAD("shard.spilled", spilled_runs_,
                                             std::memory_order_relaxed);
  }

 private:
  // Appends to the shard's staged run, flushing it to the overflow deque
  // at spill_run_length (blocking on a full deque).
  void Spill(int shard, Event event) STATESLICE_REQUIRES(feeder_role_);
  void FlushShard(int shard) STATESLICE_REQUIRES(feeder_role_);

  const ShardRouterOptions options_;
  std::vector<std::unique_ptr<ShardCell>> cells_;
  // Staged partial spill run per shard (feeder-owned).
  std::vector<EventRun> pending_ STATESLICE_GUARDED_BY(feeder_role_);
  std::vector<std::atomic<uint64_t>> routed_;
  std::atomic<uint64_t> spilled_runs_{0};
  ThreadRole feeder_role_;
};

}  // namespace stateslice

#endif  // STATESLICE_RUNTIME_SHARD_ROUTER_H_
