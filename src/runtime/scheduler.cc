#include "src/runtime/scheduler.h"

#include "src/common/check.h"

namespace stateslice {

RoundRobinScheduler::RoundRobinScheduler(QueryPlan* plan, int quantum)
    : plan_(plan), quantum_(quantum) {
  SLICE_CHECK(plan != nullptr);
  SLICE_CHECK_GT(quantum, 0);
}

uint64_t RoundRobinScheduler::RunSome(uint64_t max_events) {
  // Composite tails spilled while operators run draw from the plan arena.
  ArenaScope arena_scope(plan_->arena());
  uint64_t processed = 0;
  // One "lap" visits every consumer edge once. We stop after a full lap with
  // no progress (quiescent) or when the budget is exhausted.
  size_t idle_visits = 0;
  while (processed < max_events) {
    const auto& edges = plan_->consumer_edges();
    if (edges.empty()) break;
    if (cursor_ >= edges.size()) cursor_ = 0;
    auto& [queue, consumer] = edges[cursor_];
    auto& [op, port] = consumer;
    const uint64_t budget_left = max_events - processed;
    const size_t budget =
        budget_left < static_cast<uint64_t>(quantum_)
            ? static_cast<size_t>(budget_left)
            : static_cast<size_t>(quantum_);
    run_.clear();
    const size_t consumed = queue->DrainRun(&run_, budget);
    if (consumed == 0) {
      ++idle_visits;
      // A full idle lap means every queue is empty.
      if (idle_visits >= edges.size()) break;
    } else {
      op->OnRun(run_, port);
      run_.clear();
      processed += consumed;
      idle_visits = 0;
    }
    ++cursor_;
  }
  total_processed_ += processed;
  return processed;
}

uint64_t RoundRobinScheduler::RunUntilQuiescent() {
  uint64_t processed = 0;
  for (;;) {
    const uint64_t n = RunSome(UINT64_MAX);
    processed += n;
    if (n == 0) break;
  }
  return processed;
}

}  // namespace stateslice
