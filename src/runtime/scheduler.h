// Round-robin operator scheduler.
//
// The paper's experimental system (CAPE, Section 7.1) employs round-robin
// scheduling for executing operators. We reproduce that policy: the
// scheduler cycles over the plan's consumer queues and lets each consumer
// process up to `quantum` events per visit. Execution is single-threaded and
// deterministic.
//
// Run-at-a-time delivery: each visit drains up to `quantum` events from the
// queue into a reused EventRun and hands the whole run to
// Operator::OnRun. Because the plan is acyclic, an operator never feeds its
// own input queue, so draining a snapshot of n <= quantum events is
// order-identical to n sequential pops — the event order (and hence every
// paper-unit cost total) is byte-identical to the historical
// one-pop-per-iteration loop.
#ifndef STATESLICE_RUNTIME_SCHEDULER_H_
#define STATESLICE_RUNTIME_SCHEDULER_H_

#include <cstdint>

#include "src/runtime/plan.h"

namespace stateslice {

// Drives a started QueryPlan until all consumer queues are empty.
class RoundRobinScheduler {
 public:
  // `quantum` = max events an operator consumes per scheduling visit.
  explicit RoundRobinScheduler(QueryPlan* plan, int quantum = 8);

  // Processes events until every consumer queue in the plan is empty.
  // Returns the number of events processed.
  uint64_t RunUntilQuiescent();

  // Processes at most `max_events` events (useful for interleaving with
  // sources or for step-wise tests). Returns events processed (< max_events
  // implies quiescence).
  uint64_t RunSome(uint64_t max_events);

  uint64_t total_processed() const { return total_processed_; }

 private:
  QueryPlan* plan_;
  int quantum_;
  uint64_t total_processed_ = 0;
  size_t cursor_ = 0;  // round-robin position over consumer edges
  // Reused run buffer (single-threaded scheduler: one buffer suffices, and
  // clear() keeps its capacity so steady state never reallocates).
  EventRun run_;
};

}  // namespace stateslice

#endif  // STATESLICE_RUNTIME_SCHEDULER_H_
