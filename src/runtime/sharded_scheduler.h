// Key-partitioned shard-parallel scheduler with bounded work-stealing.
//
// Where the parallel pipeline scheduler splits the *plan* into stages
// (task parallelism, capped by the heaviest stage), this scheduler splits
// the *data*: a ShardRouter hash-partitions arrivals by equi-join key into
// N independent replicas of the shared sliced chain (ShardedPlanSet), one
// worker thread per shard. Each worker drives its replica with the
// deterministic round-robin scheduler, so all operator code runs exactly
// as in deterministic mode — the parallelism lives entirely in the
// routing, the shard ingress rings, and the result merge.
//
// Skew handling: a loaded shard's input spills from its SPSC ring into an
// overflow deque of whole EventRuns. Any *idle* worker may execute a
// loaded shard — it wins the shard's execution token (a CAS; see
// ShardRouter), becomes the shard's sole executor for a bounded number of
// runs, and releases the token. Work is always consumed ring-first then
// overflow-head, preserving per-shard arrival order; stealing migrates the
// executor, never reorders events. The steal counter reports overflow runs
// executed by non-owner workers.
//
// Results: each (shard, query) result stream is tapped by an exit queue
// (ShardedPlanSet::exits); the shard's current executor relays it into a
// per-(shard, query) SPSC ring, and a dedicated merge worker drains the
// rings into the merge plan, whose per-query UnionMerge re-establishes
// global timestamp order before the authoritative sinks. The shard
// replicas, the rings, and the merge plan form a forward-only DAG, so
// bounded backpressure cannot deadlock.
//
// Thread roles (checked under Clang -Wthread-safety):
//  - caller_role_: one thread constructs, feeds (PushEntry*), finishes,
//    joins, and reads the accounting.
//  - ShardExec::role: the shard's *current token holder*. Unlike a stage
//    role it is claimed dynamically: a worker asserts it immediately after
//    winning the shard's token CAS (the CAS serializes executors, and the
//    token's release/acquire handoff carries the guarded state).
//  - merge_role_: the merge worker thread.
// The SPSC rings and steal deques carry their own producer/consumer roles.
#ifndef STATESLICE_RUNTIME_SHARDED_SCHEDULER_H_
#define STATESLICE_RUNTIME_SHARDED_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/core/sharded_plan.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/shard_router.h"
#include "src/runtime/spsc_queue.h"
#include "src/runtime/sync_point.h"

namespace stateslice {

// Tuning knobs for a sharded execution.
struct ShardedSchedulerOptions {
  // Per-shard ingress ring capacity, in events.
  size_t ring_capacity = 256;
  // Per-shard overflow deque capacity, in runs.
  size_t overflow_capacity = 64;
  // Events per spilled overflow run — the work-stealing granule.
  size_t spill_run_length = 64;
  // Round-robin quantum inside each replica, and the ring pop-run bound.
  int quantum = 64;
  // Max ring pops plus overflow runs one token hold may execute before
  // releasing. Bounds how long a thief (or the owner) monopolizes a shard.
  int runs_per_hold = 4;
  // Per-(shard, query) result ring capacity, in events.
  size_t result_ring_capacity = 1024;
};

// Drives a ShardedPlanSet with one worker per shard plus a merge worker.
//
// Usage (the Engine wraps this; see ExecutionMode::kSharded):
//   ShardedScheduler sched(&plans, options);
//   sched.Start();
//   for (...) sched.PushEntry(event);   // feeder == caller thread
//   sched.FinishInput();
//   sched.Join();
// After Join() all routed input has reached the merge plan's sinks; only
// operator Finish() flushes remain (the Engine performs them on the
// caller thread — see Engine::TearDownPlan).
class ShardedScheduler {
 public:
  ShardedScheduler(ShardedPlanSet* plans, ShardedSchedulerOptions options = {});
  ~ShardedScheduler();

  ShardedScheduler(const ShardedScheduler&) = delete;
  ShardedScheduler& operator=(const ShardedScheduler&) = delete;

  // Launches the shard workers and the merge worker.
  void Start();

  // Routes one event (caller/feeder thread only; blocks on a full
  // overflow deque — ingestion backpressure).
  void PushEntry(Event event);
  // Routes a whole run in order, consuming it (cleared on return).
  void PushEntryRun(EventRun* run);

  // Makes everything routed so far visible to the workers (flushes the
  // router's staged partial spill runs). Call before polling results.
  void FlushInput();

  // Declares end of input: flushes and closes every shard. Workers drain
  // and exit; the merge worker follows once the result rings are empty.
  void FinishInput();

  // Waits for all workers to exit. Idempotent.
  void Join();

  // Events consumed across all shard replicas and the merge plan (same
  // unit as RoundRobinScheduler::total_processed). Exact after Join(); a
  // relaxed snapshot while running.
  uint64_t total_processed() const {
    // lint: allow(atomic-memory-order) -- stale-snapshot accounting read
    return STATESLICE_ATOMIC_ACCOUNTING_LOAD("shard.total", total_processed_,
                                             std::memory_order_relaxed);
  }

  // Overflow runs executed by a worker other than the shard's owner.
  uint64_t steals() const {
    // lint: allow(atomic-memory-order) -- stale-snapshot accounting read
    return STATESLICE_ATOMIC_ACCOUNTING_LOAD("shard.steals", steals_,
                                             std::memory_order_relaxed);
  }

  // Runs spilled into overflow deques (work that was stealable at all).
  uint64_t spilled_runs() const { return router_->spilled_runs(); }

  int num_shards() const { return plans_->num_shards(); }

  // Aggregate lock-free-edge accounting (ingress rings + result rings),
  // for queue-memory reporting parity with the parallel scheduler.
  uint64_t edges_total_pushed() const;
  size_t edges_high_water_mark() const;

 private:
  // Everything a token holder touches on one shard. The container of
  // ShardExecs is structurally frozen before workers spawn; workers only
  // ever index it read-only, and the mutable members are guarded by the
  // dynamically-claimed exec role.
  struct ShardExec {
    // Capability of the shard's current token holder; asserted right
    // after winning the token CAS.
    ThreadRole role;
    BuiltPlan* built = nullptr;  // the shard replica (frozen wiring)
    std::unique_ptr<RoundRobinScheduler> rr STATESLICE_GUARDED_BY(role);
    // Scratch runs: ring drain, overflow pop, exit relay.
    EventRun ring_run STATESLICE_GUARDED_BY(role);
    EventRun overflow_run STATESLICE_GUARDED_BY(role);
    EventRun relay_run STATESLICE_GUARDED_BY(role);
    // rr->total_processed() already folded into total_processed_.
    uint64_t reported STATESLICE_GUARDED_BY(role) = 0;
    // Result rings, one per query (owned here; frozen after construction).
    std::vector<std::unique_ptr<SpscQueue<Event>>> results;
  };

  void RunWorker(int worker);
  void RunMerge();
  // Executes up to runs_per_hold ring/overflow runs on `shard` if its
  // token can be won. Returns true when any events were executed.
  bool TryProcessShard(int shard, int worker);
  // Drains the shard's exit taps into its result rings. Token holder only.
  void RelayExits(ShardExec* ex, int shard) STATESLICE_REQUIRES(ex->role);

  ShardedPlanSet* const plans_;
  const ShardedSchedulerOptions options_;
  std::unique_ptr<ShardRouter> router_;
  // Frozen before Start() spawns workers (see ShardExec comment).
  std::vector<std::unique_ptr<ShardExec>> execs_;

  // Merge-worker state.
  ThreadRole merge_role_;
  std::unique_ptr<RoundRobinScheduler> merge_rr_
      STATESLICE_GUARDED_BY(merge_role_);
  EventRun merge_run_ STATESLICE_GUARDED_BY(merge_role_);
  // Set (release) by Join() after the shard workers exit: no result-ring
  // producer remains, so ring-empty means done.
  std::atomic<uint32_t> merge_close_{0};

  std::atomic<uint64_t> total_processed_{0};
  std::atomic<uint64_t> steals_{0};

  std::vector<std::thread> worker_threads_ STATESLICE_GUARDED_BY(caller_role_);
  std::thread merge_thread_ STATESLICE_GUARDED_BY(caller_role_);
  bool started_ STATESLICE_GUARDED_BY(caller_role_) = false;
  bool input_finished_ STATESLICE_GUARDED_BY(caller_role_) = false;
  bool joined_ STATESLICE_GUARDED_BY(caller_role_) = false;

  // The single thread that owns construction, feeding, and teardown.
  ThreadRole caller_role_;
};

}  // namespace stateslice

#endif  // STATESLICE_RUNTIME_SHARDED_SCHEDULER_H_
