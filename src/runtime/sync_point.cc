#include "src/runtime/sync_point.h"

#if defined(STATESLICE_SCHED_TEST)

namespace stateslice::schedtest {
namespace {

// Plain pointer, not atomic: the explorer installs hooks before spawning
// instrumented threads and uninstalls after joining them, so every access
// from an instrumented thread is ordered by the spawn/join edges.
SchedHooks* g_hooks = nullptr;

}  // namespace

SchedHooks* Hooks() { return g_hooks; }

void InstallHooks(SchedHooks* hooks) { g_hooks = hooks; }

}  // namespace stateslice::schedtest

#endif  // STATESLICE_SCHED_TEST
