// Runtime metrics collection for the experiments.
//
// The paper measures (Section 7.1):
//  - state memory as the number of tuples held in join states, and
//  - CPU via the average service rate (total throughput / running time).
// The Executor samples state memory periodically (the monitor thread of
// CAPE); RunStats aggregates everything a bench needs to print one row.
//
// Threading: MemorySample and RunStats are plain value snapshots with no
// synchronization of their own. They are produced only at quiescent points
// — the Engine's accumulators they are folded from are GUARDED_BY its
// surgery capability (src/api/engine.h), so under Clang -Wthread-safety a
// sample taken while workers run fails to compile rather than tearing.
#ifndef STATESLICE_RUNTIME_METRICS_H_
#define STATESLICE_RUNTIME_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/cost_counters.h"
#include "src/common/timestamp.h"
#include "src/runtime/execution_mode.h"

namespace stateslice {

// One periodic observation of plan memory.
struct MemorySample {
  TimePoint time = 0;       // virtual time of the sample
  size_t state_tuples = 0;  // sum of join-state sizes
  size_t queue_events = 0;  // sum of queue occupancies
};

// Aggregated outcome of one Executor run.
struct RunStats {
  // --- execution --------------------------------------------------------
  ExecutionMode mode = ExecutionMode::kDeterministic;
  int worker_threads = 1;  // pipeline stages actually used (1 if determ.)

  // --- volume -----------------------------------------------------------
  uint64_t input_tuples = 0;    // tuples fed from all sources
  uint64_t events_processed = 0;  // scheduler event count (incl. internal)
  uint64_t results_delivered = 0;  // JoinResults received by all sinks
  // Malformed or unreadable arrivals bounced at ingestion (NaN values,
  // out-of-order or out-of-range timestamps, streams no active query
  // reads); rejected_by_stream[s] attributes them to stream s (pushes with
  // an invalid stream id count in the total only). Distinct from
  // dropped_tuples-style drops: a drop is a well-formed tuple arriving
  // while no query is registered.
  uint64_t rejected_tuples = 0;
  std::vector<uint64_t> rejected_by_stream;
  // kParallel only: events relayed over cross-stage SPSC rings, and the
  // largest ring occupancy observed (queue-memory analogue). kSharded
  // reuses both for its ingress + result rings.
  uint64_t parallel_edge_events = 0;
  size_t parallel_edge_high_water_mark = 0;
  // kParallel only: per-stage fraction of worker wall-clock spent moving
  // events (vs idle-polling input rings), in stage order.
  std::vector<double> stage_busy_fraction;
  // kSharded only: overflow runs executed by a non-owner worker, and runs
  // spilled from ingress rings into the overflow deques (stealable work).
  uint64_t shard_steals = 0;
  uint64_t shard_spilled_runs = 0;

  // --- time -------------------------------------------------------------
  TimePoint virtual_end_time = 0;  // virtual time horizon of the run
  double wall_seconds = 0.0;       // wall-clock processing time

  // --- memory -----------------------------------------------------------
  std::vector<MemorySample> memory_samples;

  // --- cpu --------------------------------------------------------------
  CostCounters cost;  // comparison counts by category (Eqs. 1-3 units)
  // Snapshot of `cost` taken when virtual time first crossed
  // ExecutorOptions::cost_snapshot_time (steady-state accounting); zeroed
  // when no snapshot was requested.
  CostCounters cost_at_snapshot;
  TimePoint cost_snapshot_time = 0;

  // Average state-memory tuples over samples taken at or after `from`
  // (warm-up exclusion). Returns 0 if no samples qualify.
  double AvgStateTuples(TimePoint from = 0) const;

  // Peak state-memory tuples over all samples.
  size_t MaxStateTuples() const;

  // Paper's service rate: results delivered per wall-clock second.
  double ServiceRate() const {
    return wall_seconds > 0 ? static_cast<double>(results_delivered) /
                                  wall_seconds
                            : 0.0;
  }

  // Comparisons per virtual second — the measured analogue of Cp.
  double ComparisonsPerVirtualSecond() const;

  // Comparisons per virtual second after the cost snapshot (steady state);
  // falls back to the full-run rate when no snapshot was taken.
  double SteadyComparisonsPerVirtualSecond() const;

  std::string DebugString() const;
};

}  // namespace stateslice

#endif  // STATESLICE_RUNTIME_METRICS_H_
