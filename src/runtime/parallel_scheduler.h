// Multi-threaded pipeline scheduler.
//
// The deterministic round-robin scheduler (src/runtime/scheduler.h) caps
// throughput at one core. This scheduler executes the same shared plan as a
// parallel pipeline:
//
//  1. The plan's operators are laid out in a topological order and split
//     into up to `num_workers` contiguous *stages*, balanced by
//     Operator::SchedulingWeight() (a minimal-max-weight contiguous
//     partition). Contiguity in topological order guarantees every
//     cross-stage queue edge points from a lower stage to a higher one, so
//     the stage graph is a forward-only pipeline and bounded backpressure
//     cannot deadlock.
//  2. Each stage is driven by one worker thread. Queue edges whose producer
//     and consumer live in the same stage stay ordinary EventQueues,
//     touched only by that stage's thread. Edges that cross stages are
//     relayed through lock-free bounded SPSC rings
//     (src/runtime/spsc_queue.h): the producer stage's thread pops from the
//     EventQueue it alone fills (preserving the queue's accounting) and
//     pushes into the ring, spinning/yielding while the ring is full
//     (backpressure); the consumer stage's thread pops the ring and calls
//     the operator. Transfers are run-at-a-time: both sides move bounded
//     runs (<= quantum events) per ring round-trip — one release store per
//     run instead of per event — and consumers receive them through
//     Operator::OnRun. Run buffers are stage-local (GUARDED_BY the stage
//     role), so per-edge FIFO order is untouched.
//  3. End of input propagates as a per-edge `closed` flag: when every input
//     edge of a stage is closed and drained, the stage calls Finish() on
//     its operators in topological order (flushing end-of-stream
//     punctuations, exactly like QueryPlan::FinishAll), relays the flushed
//     events, closes its own outgoing edges, and exits.
//
// Every operator is only ever executed by its stage's thread and every
// EventQueue is only ever touched by one thread, so operator code needs no
// synchronization. Each queue keeps per-edge FIFO order, which is what the
// operators' correctness arguments (Lemma 1, Theorems 1-3) rely on; the
// only nondeterminism versus the round-robin scheduler is the interleaving
// *across* queues, which the order-preserving union absorbs via
// punctuation watermarks. Parallel runs therefore deliver the same result
// multisets as deterministic runs, in the same per-sink timestamp order.
//
// Plan surgery (online migration) is not supported while this scheduler is
// active: construction flips the plan into ExecutionMode::kParallel, which
// the *WhileRunning hooks CHECK against.
#ifndef STATESLICE_RUNTIME_PARALLEL_SCHEDULER_H_
#define STATESLICE_RUNTIME_PARALLEL_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/runtime/plan.h"
#include "src/runtime/spsc_queue.h"
#include "src/runtime/sync_point.h"

namespace stateslice {

// Tuning knobs for a parallel execution.
struct ParallelSchedulerOptions {
  // Worker threads (= maximum pipeline stages). Values larger than the
  // operator count are clamped; 1 degenerates to a single-threaded drain.
  int num_workers = 2;
  // Capacity of each cross-stage SPSC ring, in events (rounded up to a
  // power of two). Bounds queue memory and provides backpressure. Sized
  // so a saturated ring's live slot array (~capacity * sizeof(Event))
  // stays cache-resident: under backpressure the ring runs full and every
  // transfer streams through the whole array.
  size_t edge_capacity = 256;
  // Max events a stage pops from one input ring before relaying outputs
  // and visiting its next input.
  int quantum = 64;
  // Whether to call Finish() on operators once input is exhausted
  // (mirrors ExecutorOptions::finish_at_end).
  bool finish_at_end = true;
};

// Drives a started QueryPlan with one thread per pipeline stage.
//
// Usage (the Executor wraps this; see ExecutionMode::kParallel):
//   ParallelScheduler sched(plan, {.num_workers = 4});
//   sched.Start();
//   for (...) sched.PushEntry(entry_queue, event);   // feeder thread
//   sched.FinishInput();
//   sched.Join();
//
// Thread roles (checked under Clang -Wthread-safety):
//  - caller_role_: exactly one thread constructs the scheduler and calls
//    the public API (Start/PushEntry/FinishInput/Join and the accessors).
//    The lifecycle flags and stage/edge containers are GUARDED_BY it, so a
//    worker-side code path that reaches for them fails to compile.
//  - Stage::role: each stage's operators, local queues, and `processed`
//    counter belong to the one worker thread driving that stage; RunStage
//    asserts the role at thread entry.
//  - The SPSC rings carry their own producer/consumer roles: the relaying
//    stage (or the feeder, for entry edges) asserts the producer side, the
//    consuming stage the consumer side.
// CrossEdge::closed and total_processed_ are atomics and deliberately
// role-free (release/acquire close protocol; relaxed counter).
class ParallelScheduler {
 public:
  ParallelScheduler(QueryPlan* plan, ParallelSchedulerOptions options = {});
  ~ParallelScheduler();

  ParallelScheduler(const ParallelScheduler&) = delete;
  ParallelScheduler& operator=(const ParallelScheduler&) = delete;

  // Builds the stage partition and launches the worker threads.
  void Start();

  // Feeds one event into `entry` (a plan entry queue). Called by the
  // feeder thread only; blocks (spin/yield) while the entry ring is full.
  void PushEntry(EventQueue* entry, Event event);

  // Feeds a whole run into `entry` in order, consuming the run (cleared on
  // return, capacity retained). Same feeder-thread/backpressure contract as
  // PushEntry, but amortizes the ring traffic across the run.
  void PushEntryRun(EventQueue* entry, EventRun* run);

  // Declares end of input: closes all entry edges. Workers drain, flush
  // Finish() punctuations stage by stage, and exit.
  void FinishInput();

  // Waits for all workers to exit. Idempotent. After Join() the plan is
  // back in deterministic mode and all queues are drained (except exit
  // queues, which the caller owns).
  void Join();

  // Total events consumed across all stages (ring pops + intra-stage queue
  // pops — the same unit as RoundRobinScheduler::total_processed). Exact
  // after Join(); a relaxed snapshot while running.
  uint64_t total_processed() const {
    // lint: allow(atomic-memory-order) -- stale-snapshot accounting read
    return STATESLICE_ATOMIC_ACCOUNTING_LOAD("psched.total", total_processed_,
                                             std::memory_order_relaxed);
  }

  // Stage layout (valid after Start): operators per stage, topological
  // order within each stage.
  const std::vector<std::vector<Operator*>>& stage_operators() const {
    // Single-caller contract: only the owning thread queries the layout.
    caller_role_.Assert();
    return stage_ops_;
  }
  int num_stages() const {
    caller_role_.Assert();  // single-caller contract (see class comment)
    return static_cast<int>(stage_ops_.size());
  }

  // Aggregate SPSC accounting over all cross-stage edges (queue-memory
  // reporting parity with EventQueue).
  uint64_t edges_total_pushed() const;
  size_t edges_high_water_mark() const;

  // Per-stage occupancy: fraction of each worker's loop wall-clock spent
  // moving events (vs idle-polling its input rings). One entry per stage,
  // in stage order. Valid only after Join().
  std::vector<double> stage_busy_fractions() const;

 private:
  // A queue edge crossing stages (or entering the pipeline): the producer
  // thread relays `queue` into `ring`; the consumer thread pops `ring` and
  // feeds (`consumer`, `port`).
  struct CrossEdge {
    explicit CrossEdge(size_t capacity) : ring(capacity) {}
    SpscQueue<Event> ring;
    std::atomic<bool> closed{false};
    EventQueue* queue = nullptr;  // producer-side EventQueue (accounting)
    Operator* consumer = nullptr;
    int port = 0;
  };
  // An intra-stage edge, drained by the owning stage's thread.
  struct LocalEdge {
    EventQueue* queue = nullptr;
    Operator* consumer = nullptr;
    int port = 0;
  };
  struct Stage {
    // The worker thread driving this stage; RunStage asserts it at entry.
    ThreadRole role;
    std::vector<Operator*> ops;        // topological order within the stage
    std::vector<CrossEdge*> inputs;    // rings feeding this stage
    std::vector<LocalEdge> locals;     // intra-stage queues to drain
    std::vector<CrossEdge*> outputs;   // rings this stage relays into
    // events consumed by this stage
    uint64_t processed STATESLICE_GUARDED_BY(role) = 0;
    // Wall-clock occupancy split of the worker loop: iterations that moved
    // events accrue busy_ns, futile polls accrue idle_ns (the scaling
    // bench reports busy / (busy + idle) per stage).
    int64_t busy_ns STATESLICE_GUARDED_BY(role) = 0;
    int64_t idle_ns STATESLICE_GUARDED_BY(role) = 0;
    // Reused run buffers, one per drain site so runs never interleave
    // (ring input, local-queue drain, output relay). Stage-local: only the
    // stage's worker touches them; clear() keeps their capacity.
    EventRun input_run STATESLICE_GUARDED_BY(role);
    EventRun local_run STATESLICE_GUARDED_BY(role);
    EventRun relay_run STATESLICE_GUARDED_BY(role);
    std::thread thread;
  };

  void BuildStages() STATESLICE_REQUIRES(caller_role_);
  // Worker entry point; `stage_index` is the stable thread id reported to a
  // schedule-test explorer (stages are created in deterministic order).
  void RunStage(Stage* stage, int stage_index);
  // Drains intra-stage queues to quiescence, relaying cross-stage output
  // queues into their rings as events appear. Worker-side: runs on the
  // stage's own thread only.
  void DrainLocal(Stage* stage) STATESLICE_REQUIRES(stage->role);
  void RelayOutputs(Stage* stage) STATESLICE_REQUIRES(stage->role);
  void BlockingPush(CrossEdge* edge, Event event);
  // Pushes all of `run` into the edge's ring (spin/yield on full), then
  // clears the run. Producer thread of the edge only.
  void BlockingPushRun(CrossEdge* edge, EventRun* run);

  QueryPlan* plan_;
  ParallelSchedulerOptions options_;  // immutable after construction

  // Built by BuildStages, then structurally frozen: workers reach their
  // stage through the Stage* they were handed, never through these
  // containers, so the containers stay caller-owned.
  std::vector<std::unique_ptr<CrossEdge>> edges_
      STATESLICE_GUARDED_BY(caller_role_);
  std::vector<std::unique_ptr<Stage>> stages_
      STATESLICE_GUARDED_BY(caller_role_);
  std::vector<std::vector<Operator*>> stage_ops_
      STATESLICE_GUARDED_BY(caller_role_);
  // Entry edges (no producer operator): fed by PushEntry.
  std::vector<CrossEdge*> entry_edges_ STATESLICE_GUARDED_BY(caller_role_);
  // Feeder-side scratch run for PushEntryRun's queue round-trip.
  EventRun feeder_run_ STATESLICE_GUARDED_BY(caller_role_);

  std::atomic<uint64_t> total_processed_{0};
  bool started_ STATESLICE_GUARDED_BY(caller_role_) = false;
  bool input_finished_ STATESLICE_GUARDED_BY(caller_role_) = false;
  bool joined_ STATESLICE_GUARDED_BY(caller_role_) = false;

  // The single thread that owns construction, feeding, and teardown.
  ThreadRole caller_role_;
};

}  // namespace stateslice

#endif  // STATESLICE_RUNTIME_PARALLEL_SCHEDULER_H_
