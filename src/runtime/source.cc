#include "src/runtime/source.h"

#include <utility>

#include "src/common/check.h"

namespace stateslice {

StreamSource::StreamSource(std::string name, std::vector<Tuple> tuples)
    : name_(std::move(name)), tuples_(std::move(tuples)) {
  for (size_t i = 1; i < tuples_.size(); ++i) {
    SLICE_CHECK_LE(tuples_[i - 1].timestamp, tuples_[i].timestamp);
  }
}

TimePoint StreamSource::NextTime() const {
  return Exhausted() ? kMaxTime : tuples_[next_].timestamp;
}

Tuple StreamSource::PopNext() {
  SLICE_CHECK(!Exhausted());
  return tuples_[next_++];
}

}  // namespace stateslice
