#include "src/runtime/operator.h"

#include <algorithm>

#include "src/common/check.h"

namespace stateslice {

void Operator::OnRun(EventRun& run, int input_port) {
  for (Event& event : run) Process(std::move(event), input_port);
}

void Operator::AttachInput(int port, EventQueue* queue) {
  SLICE_CHECK_GE(port, 0);
  SLICE_CHECK(queue != nullptr);
  if (port >= static_cast<int>(inputs_.size())) {
    inputs_.resize(port + 1, nullptr);
  }
  SLICE_CHECK(inputs_[port] == nullptr);
  inputs_[port] = queue;
}

void Operator::AttachOutput(int port, EventQueue* queue) {
  SLICE_CHECK_GE(port, 0);
  SLICE_CHECK(queue != nullptr);
  if (port >= static_cast<int>(outputs_.size())) {
    outputs_.resize(port + 1);
  }
  outputs_[port].push_back(queue);
}

void Operator::DetachOutput(int port, EventQueue* queue) {
  SLICE_CHECK_GE(port, 0);
  SLICE_CHECK_LT(port, static_cast<int>(outputs_.size()));
  auto& fanout = outputs_[port];
  auto it = std::find(fanout.begin(), fanout.end(), queue);
  SLICE_CHECK(it != fanout.end());
  fanout.erase(it);
}

void Operator::ReplaceInput(int port, EventQueue* queue) {
  SLICE_CHECK_GE(port, 0);
  SLICE_CHECK(queue != nullptr);
  if (port >= static_cast<int>(inputs_.size())) {
    inputs_.resize(port + 1, nullptr);
  }
  inputs_[port] = queue;
}

void Operator::Emit(int port, const Event& event) {
  if (port >= static_cast<int>(outputs_.size())) return;
  for (EventQueue* queue : outputs_[port]) {
    queue->Push(event);
  }
}

void Operator::EmitMove(int port, Event&& event) {
  if (port >= static_cast<int>(outputs_.size())) return;
  auto& fanout = outputs_[port];
  if (fanout.empty()) return;
  for (size_t i = 0; i + 1 < fanout.size(); ++i) {
    fanout[i]->Push(event);
  }
  fanout.back()->Push(std::move(event));
}

}  // namespace stateslice
