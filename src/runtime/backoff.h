// Capped exponential backoff for bounded busy-wait loops.
//
// The runtime's backpressure loops (a producer blocked on a full SPSC
// ring, a worker waiting for a contended shard token) previously spun a
// fixed 16 iterations between yields; under a stalled consumer that burns
// a full core at the highest possible cache-line ping-pong rate, forever.
// SpinBackoff escalates instead: a few cheap spin rounds (the latency of
// an almost-free ring slot is unchanged), then prompt yields (so a
// same-core peer — the only thread that can unblock us on an
// oversubscribed machine — runs immediately), then exponentially growing
// sleeps capped at kSleepCapUs so a genuinely stalled peer costs
// microseconds of latency instead of a pinned core.
#ifndef STATESLICE_RUNTIME_BACKOFF_H_
#define STATESLICE_RUNTIME_BACKOFF_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace stateslice {

// One backoff progression: construct before a retry loop, call Pause()
// after each failed attempt, Reset() (or reconstruct) once the awaited
// condition holds.
class SpinBackoff {
 public:
  // Pause() calls spent in each phase before escalating to the next.
  static constexpr uint32_t kSpinRounds = 4;    // 1+2+4+8 relax iterations
  static constexpr uint32_t kYieldRounds = 8;   // prompt timeslice handoff
  // Sleep phase: doubling from 4us, capped. A backpressured ring holds a
  // full capacity of events, so the peer needs far longer than this to
  // drain it — the cap bounds wakeup latency, not throughput.
  static constexpr uint32_t kSleepCapUs = 128;

  void Pause() {
    if (round_ < kSpinRounds) {
      const uint32_t spins = 1u << round_;
      for (uint32_t i = 0; i < spins; ++i) {
        // Portable CPU-relax: a dependent volatile read keeps the loop
        // from being optimized away while staying cheap.
        volatile uint32_t sink = i;
        (void)sink;
      }
      ++round_;
    } else if (round_ < kSpinRounds + kYieldRounds) {
      std::this_thread::yield();
      ++round_;
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
      if (sleep_us_ < kSleepCapUs) sleep_us_ *= 2;
    }
  }

  void Reset() {
    round_ = 0;
    sleep_us_ = 4;
  }

 private:
  uint32_t round_ = 0;
  uint32_t sleep_us_ = 4;
};

}  // namespace stateslice

#endif  // STATESLICE_RUNTIME_BACKOFF_H_
