#include "src/runtime/plan.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "src/common/check.h"

namespace stateslice {

void QueryPlan::RegisterOperator(std::unique_ptr<Operator> op) {
  op->set_cost_counters(&cost_counters_);
  operators_.push_back(std::move(op));
}

EventQueue* QueryPlan::AddEntryQueue(const std::string& name, Operator* op,
                                     int port) {
  queues_.push_back(std::make_unique<EventQueue>(name));
  EventQueue* queue = queues_.back().get();
  op->AttachInput(port, queue);
  consumer_edges_.push_back({queue, {op, port}});
  return queue;
}

EventQueue* QueryPlan::Connect(Operator* from, int out_port, Operator* to,
                               int in_port) {
  std::ostringstream name;
  name << from->name() << ":" << out_port << "->" << to->name() << ":"
       << in_port;
  queues_.push_back(std::make_unique<EventQueue>(name.str()));
  EventQueue* queue = queues_.back().get();
  from->AttachOutput(out_port, queue);
  to->AttachInput(in_port, queue);
  consumer_edges_.push_back({queue, {to, in_port}});
  producer_edges_.push_back({from, queue});
  return queue;
}

EventQueue* QueryPlan::AddExitQueue(const std::string& name, Operator* from,
                                    int out_port) {
  queues_.push_back(std::make_unique<EventQueue>(name));
  EventQueue* queue = queues_.back().get();
  from->AttachOutput(out_port, queue);
  producer_edges_.push_back({from, queue});
  return queue;
}

std::vector<Operator*> QueryPlan::TopologicalOrder() const {
  // Build operator -> operator adjacency via queues.
  std::map<const EventQueue*, Operator*> consumer_of;
  for (const auto& [queue, consumer] : consumer_edges_) {
    consumer_of[queue] = consumer.first;
  }
  std::map<Operator*, std::vector<Operator*>> adj;
  std::map<Operator*, int> indegree;
  for (const auto& op : operators_) indegree[op.get()] = 0;
  for (const auto& [producer, queue] : producer_edges_) {
    auto it = consumer_of.find(queue);
    if (it == consumer_of.end()) continue;  // exit queue
    adj[producer].push_back(it->second);
    ++indegree[it->second];
  }
  std::vector<Operator*> order;
  std::vector<Operator*> ready;
  for (const auto& op : operators_) {
    if (indegree[op.get()] == 0) ready.push_back(op.get());
  }
  while (!ready.empty()) {
    Operator* op = ready.back();
    ready.pop_back();
    order.push_back(op);
    for (Operator* next : adj[op]) {
      if (--indegree[next] == 0) ready.push_back(next);
    }
  }
  SLICE_CHECK_EQ(order.size(), operators_.size());  // acyclic
  return order;
}

void QueryPlan::Start() {
  SLICE_CHECK(!started_);
  started_ = true;
  // Topological-order check doubles as the acyclicity validation.
  const std::vector<Operator*> order = TopologicalOrder();
  for (Operator* op : order) op->Start();
}

void QueryPlan::FinishAll() {
  // Flush-time composites draw tail storage from the plan arena like
  // scheduled ones do.
  ArenaScope arena_scope(&arena_);
  // Finish in topological order; a Finish() may emit flush events that the
  // executor drains between calls, but calling in topo order guarantees a
  // single pass suffices when drains happen outside.
  for (Operator* op : TopologicalOrder()) op->Finish();
}

size_t QueryPlan::TotalStateSize() const {
  size_t total = 0;
  for (const auto& op : operators_) total += op->StateSize();
  return total;
}

size_t QueryPlan::TotalQueueSize() const {
  size_t total = 0;
  for (const auto& queue : queues_) total += queue->size();
  return total;
}

void QueryPlan::RemoveOperatorWhileRunning(Operator* op) {
  SLICE_CHECK(active_mode_ == ExecutionMode::kDeterministic);
  for (const auto& [queue, consumer] : consumer_edges_) {
    if (consumer.first == op) {
      SLICE_CHECK(queue->empty());
    }
  }
  consumer_edges_.erase(
      std::remove_if(consumer_edges_.begin(), consumer_edges_.end(),
                     [op](const auto& e) { return e.second.first == op; }),
      consumer_edges_.end());
  producer_edges_.erase(
      std::remove_if(producer_edges_.begin(), producer_edges_.end(),
                     [op](const auto& e) { return e.first == op; }),
      producer_edges_.end());
  auto it = std::find_if(operators_.begin(), operators_.end(),
                         [op](const auto& p) { return p.get() == op; });
  SLICE_CHECK(it != operators_.end());
  operators_.erase(it);
}

EventQueue* QueryPlan::ConnectWhileRunning(Operator* from, int out_port,
                                           Operator* to, int in_port) {
  SLICE_CHECK(active_mode_ == ExecutionMode::kDeterministic);
  std::ostringstream name;
  name << from->name() << ":" << out_port << "->" << to->name() << ":"
       << in_port << " (live)";
  queues_.push_back(std::make_unique<EventQueue>(name.str()));
  EventQueue* queue = queues_.back().get();
  from->AttachOutput(out_port, queue);
  to->ReplaceInput(in_port, queue);
  consumer_edges_.push_back({queue, {to, in_port}});
  producer_edges_.push_back({from, queue});
  return queue;
}

void QueryPlan::MoveQueueProducer(EventQueue* queue, Operator* old_from,
                                  int old_port, Operator* new_from,
                                  int new_port) {
  SLICE_CHECK(active_mode_ == ExecutionMode::kDeterministic);
  old_from->DetachOutput(old_port, queue);
  new_from->AttachOutput(new_port, queue);
  for (auto& [producer, q] : producer_edges_) {
    if (q == queue && producer == old_from) {
      producer = new_from;
      return;
    }
  }
  SLICE_CHECK(false);  // queue was not an edge of old_from
}

void QueryPlan::RetireQueue(EventQueue* queue) {
  SLICE_CHECK(active_mode_ == ExecutionMode::kDeterministic);
  SLICE_CHECK(queue->empty());
  consumer_edges_.erase(
      std::remove_if(consumer_edges_.begin(), consumer_edges_.end(),
                     [queue](const auto& e) { return e.first == queue; }),
      consumer_edges_.end());
  producer_edges_.erase(
      std::remove_if(producer_edges_.begin(), producer_edges_.end(),
                     [queue](const auto& e) { return e.second == queue; }),
      producer_edges_.end());
}

void QueryPlan::ReplaceQueueConsumer(EventQueue* queue, Operator* to,
                                     int in_port) {
  SLICE_CHECK(active_mode_ == ExecutionMode::kDeterministic);
  for (auto& [q, consumer] : consumer_edges_) {
    if (q == queue) {
      consumer = {to, in_port};
      to->ReplaceInput(in_port, queue);
      return;
    }
  }
  SLICE_CHECK(false);  // queue had no consumer
}

std::string QueryPlan::ToDot() const {
  std::map<const EventQueue*, Operator*> consumer_of;
  for (const auto& [queue, consumer] : consumer_edges_) {
    consumer_of[queue] = consumer.first;
  }
  std::ostringstream out;
  out << "digraph plan {\n  rankdir=LR;\n";
  for (const auto& op : operators_) {
    out << "  \"" << op->name() << "\" [shape=box];\n";
  }
  for (const auto& [producer, queue] : producer_edges_) {
    auto it = consumer_of.find(queue);
    if (it == consumer_of.end()) {
      out << "  \"" << producer->name() << "\" -> \"(exit:" << queue->name()
          << ")\";\n";
    } else {
      out << "  \"" << producer->name() << "\" -> \"" << it->second->name()
          << "\";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace stateslice
