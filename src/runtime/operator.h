// Base class for stream operators.
//
// An operator consumes events from zero or more input queues and pushes
// events into zero or more output queues. The scheduler drives execution by
// repeatedly asking operators to process the front event of one of their
// inputs. Operators never block; all state lives inside the operator.
#ifndef STATESLICE_RUNTIME_OPERATOR_H_
#define STATESLICE_RUNTIME_OPERATOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/cost_counters.h"
#include "src/common/tuple.h"
#include "src/runtime/queue.h"

namespace stateslice {

// Abstract stream operator node in a query plan DAG.
//
// Subclasses implement Process(). Input/output queues are attached by the
// QueryPlan during wiring; an operator addresses them by port index. Port
// meanings are subclass-specific (e.g. the binary join has one logical input
// port; the union has one port per producer).
class Operator {
 public:
  explicit Operator(std::string name) : name_(std::move(name)) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  // Handles one event arriving on `input_port`. Called by the scheduler.
  virtual void Process(Event event, int input_port) = 0;

  // Batch entry point: handles a run of events drained from input
  // `input_port`'s queue, in order. Schedulers deliver runs (bounded by
  // their quantum / run length); the scalar Process path is the degenerate
  // run of one. The base implementation loops Process over the run, so
  // overriding is an optimization, never a semantic change — overriders
  // must preserve exact per-event ordering. Events in `run` are consumed
  // (moved from); the caller clears the run afterwards.
  virtual void OnRun(EventRun& run, int input_port);

  // Number of tuples currently held in operator state (join windows). The
  // paper's memory metric (Figures 17a-f) sums this over all operators.
  virtual size_t StateSize() const { return 0; }

  // Called once after wiring, before the first event. Subclasses verify
  // their port configuration here.
  virtual void Start() {}

  // Called when all sources are exhausted and all queues drained; lets
  // operators flush end-of-stream punctuations.
  virtual void Finish() {}

  // Relative per-event processing cost, used by the parallel scheduler to
  // balance operators across pipeline stages. The unit is arbitrary; only
  // ratios matter. Join operators (probe/purge loops over window state)
  // override this to a heavier weight than pass-through operators.
  virtual double SchedulingWeight() const { return 1.0; }

  // --- wiring (used by QueryPlan) -------------------------------------

  // Attaches `queue` as input port `port`. Growing the port vector as
  // needed; a port may be attached only once.
  void AttachInput(int port, EventQueue* queue);

  // Attaches `queue` as one of the fan-out destinations of output `port`.
  // Pushing to an output port broadcasts to all attached queues.
  void AttachOutput(int port, EventQueue* queue);

  // Removes `queue` from output `port`'s fan-out set. Used by online chain
  // migration (Section 5.3) when a queue's producer changes. The queue must
  // currently be attached.
  void DetachOutput(int port, EventQueue* queue);

  // Rebinds input `port` to `queue` (migration: a queue's consumer moved).
  void ReplaceInput(int port, EventQueue* queue);

  // Charges comparison costs here; set by the plan (may be null in tests).
  void set_cost_counters(CostCounters* counters) { cost_ = counters; }

  int input_port_count() const { return static_cast<int>(inputs_.size()); }
  int output_port_count() const { return static_cast<int>(outputs_.size()); }

  EventQueue* input(int port) const { return inputs_[port]; }

  const std::string& name() const { return name_; }

 protected:
  // Sends `event` to every queue attached to output `port`. Unattached
  // ports silently drop (paper: optional Purged-A-Tuple queues "if exists").
  void Emit(int port, const Event& event);

  // Emit with move semantics: the event is moved into the last attached
  // queue and copied into any earlier fan-out queues. Worth using for
  // composite events, whose constituent-tail vector a copy would clone.
  void EmitMove(int port, Event&& event);

  // True if at least one queue is attached to output `port`.
  bool HasOutput(int port) const {
    return port < static_cast<int>(outputs_.size()) &&
           !outputs_[port].empty();
  }

  // Charges `n` comparisons to `category` (no-op without a counter sink).
  void Charge(CostCategory category, uint64_t n) {
    if (cost_ != nullptr) cost_->Add(category, n);
  }

  // Charges `n` units of physical probe/index work (kept on a separate
  // axis from the paper-unit categories; see PhysCategory).
  void ChargePhysical(PhysCategory category, uint64_t n) {
    if (cost_ != nullptr && n > 0) cost_->AddPhysical(category, n);
  }

  // Charges one probe's outcome: the logical comparisons (paper unit) plus
  // the physical lookup/visit work, and drains the probed state's pending
  // index-upkeep counter. Duck-typed over ProbeStats/BasicJoinState so the
  // runtime layer needs no operator-level includes.
  template <typename StatsT, typename StateT>
  void ChargeProbe(const StatsT& stats, StateT* state) {
    Charge(CostCategory::kProbe, stats.comparisons);
    ChargePhysical(PhysCategory::kKeyLookup, stats.key_lookups);
    ChargePhysical(PhysCategory::kEntryVisit, stats.entries_visited);
    ChargePhysical(PhysCategory::kIndexUpkeep, state->TakeIndexUpkeep());
  }

 private:
  std::string name_;
  std::vector<EventQueue*> inputs_;
  std::vector<std::vector<EventQueue*>> outputs_;
  CostCounters* cost_ = nullptr;
};

}  // namespace stateslice

#endif  // STATESLICE_RUNTIME_OPERATOR_H_
