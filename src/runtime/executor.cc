#include "src/runtime/executor.h"

#include <chrono>
#include <utility>

#include "src/common/check.h"

namespace stateslice {

Executor::Executor(QueryPlan* plan, std::vector<SourceBinding> sources,
                   ExecutorOptions options)
    : plan_(plan), sources_(std::move(sources)), options_(options) {
  SLICE_CHECK(plan != nullptr);
  for (const SourceBinding& b : sources_) {
    SLICE_CHECK(b.source != nullptr);
    SLICE_CHECK(b.entry != nullptr);
  }
}

RunStats Executor::Run() {
  SLICE_CHECK(plan_->started());
  RunStats stats;
  RoundRobinScheduler scheduler(plan_);

  TimePoint next_sample = 0;
  TimePoint now = 0;
  bool cost_snapshotted = false;

  const auto wall_start = std::chrono::steady_clock::now();

  int fed_since_drain = 0;
  for (;;) {
    // Pick the source with the smallest next timestamp (global ordering).
    StreamSource* best = nullptr;
    EventQueue* best_entry = nullptr;
    TimePoint best_time = kMaxTime;
    for (const SourceBinding& b : sources_) {
      const TimePoint t = b.source->NextTime();
      if (t < best_time) {
        best_time = t;
        best = b.source;
        best_entry = b.entry;
      }
    }
    if (best == nullptr || best_time == kMaxTime) break;  // all exhausted

    // Take memory samples for every interval boundary we are crossing.
    while (best_time >= next_sample) {
      stats.memory_samples.push_back(MemorySample{
          .time = next_sample,
          .state_tuples = plan_->TotalStateSize(),
          .queue_events = plan_->TotalQueueSize(),
      });
      next_sample += options_.sample_interval;
    }
    if (options_.cost_snapshot_time > 0 && !cost_snapshotted &&
        best_time >= options_.cost_snapshot_time) {
      stats.cost_at_snapshot = plan_->cost_counters();
      stats.cost_snapshot_time = options_.cost_snapshot_time;
      cost_snapshotted = true;
    }

    now = best_time;
    best_entry->Push(best->PopNext());
    ++stats.input_tuples;

    if (++fed_since_drain >= options_.feed_batch) {
      scheduler.RunUntilQuiescent();
      fed_since_drain = 0;
    }
    if (options_.max_events > 0 &&
        scheduler.total_processed() >= options_.max_events) {
      break;
    }
  }
  scheduler.RunUntilQuiescent();
  if (options_.finish_at_end) {
    plan_->FinishAll();
    scheduler.RunUntilQuiescent();
  }

  const auto wall_end = std::chrono::steady_clock::now();
  stats.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  stats.virtual_end_time = now;
  stats.events_processed = scheduler.total_processed();
  stats.cost = plan_->cost_counters();

  for (const CountingSink* sink : counting_sinks_) {
    stats.results_delivered += sink->result_count();
  }
  for (const CollectingSink* sink : collecting_sinks_) {
    stats.results_delivered += sink->result_count();
  }
  return stats;
}

}  // namespace stateslice
