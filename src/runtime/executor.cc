#include "src/runtime/executor.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "src/common/check.h"

namespace stateslice {

Executor::Executor(QueryPlan* plan, std::vector<SourceBinding> sources,
                   ExecutorOptions options)
    : plan_(plan), sources_(std::move(sources)), options_(options) {
  SLICE_CHECK(plan != nullptr);
  for (const SourceBinding& b : sources_) {
    SLICE_CHECK(b.source != nullptr);
    SLICE_CHECK(b.entry != nullptr);
  }
}

const SourceBinding* Executor::NextSource() const {
  const SourceBinding* best = nullptr;
  TimePoint best_time = kMaxTime;
  for (const SourceBinding& b : sources_) {
    const TimePoint t = b.source->NextTime();
    if (t < best_time) {
      best_time = t;
      best = &b;
    }
  }
  return best;
}

void Executor::CollectSinkCounts(RunStats* stats) const {
  for (const CountingSink* sink : counting_sinks_) {
    stats->results_delivered += sink->result_count();
  }
  for (const CollectingSink* sink : collecting_sinks_) {
    stats->results_delivered += sink->result_count();
  }
}

RunStats Executor::Run() {
  SLICE_CHECK(plan_->started());
  return options_.mode == ExecutionMode::kParallel ? RunParallel()
                                                   : RunDeterministic();
}

RunStats Executor::RunDeterministic() {
  RunStats stats;
  stats.mode = ExecutionMode::kDeterministic;
  stats.worker_threads = 1;
  RoundRobinScheduler scheduler(plan_);

  TimePoint next_sample = 0;
  TimePoint now = 0;
  bool cost_snapshotted = false;

  const auto wall_start = std::chrono::steady_clock::now();

  int fed_since_drain = 0;
  for (;;) {
    // Pick the source with the smallest next timestamp (global ordering).
    const SourceBinding* best = NextSource();
    if (best == nullptr) break;  // all exhausted
    const TimePoint best_time = best->source->NextTime();

    // Take memory samples for every interval boundary we are crossing.
    while (best_time >= next_sample) {
      stats.memory_samples.push_back(MemorySample{
          .time = next_sample,
          .state_tuples = plan_->TotalStateSize(),
          .queue_events = plan_->TotalQueueSize(),
      });
      next_sample += options_.sample_interval;
    }
    if (options_.cost_snapshot_time > 0 && !cost_snapshotted &&
        best_time >= options_.cost_snapshot_time) {
      stats.cost_at_snapshot = plan_->cost_counters();
      stats.cost_snapshot_time = options_.cost_snapshot_time;
      cost_snapshotted = true;
    }

    now = best_time;
    best->entry->Push(best->source->PopNext());
    ++stats.input_tuples;

    if (++fed_since_drain >= options_.feed_batch) {
      scheduler.RunUntilQuiescent();
      fed_since_drain = 0;
    }
    if (options_.max_events > 0 &&
        scheduler.total_processed() >= options_.max_events) {
      break;
    }
  }
  scheduler.RunUntilQuiescent();
  if (options_.finish_at_end) {
    plan_->FinishAll();
    scheduler.RunUntilQuiescent();
  }

  const auto wall_end = std::chrono::steady_clock::now();
  stats.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  stats.virtual_end_time = now;
  stats.events_processed = scheduler.total_processed();
  stats.cost = plan_->cost_counters();

  CollectSinkCounts(&stats);
  return stats;
}

RunStats Executor::RunParallel() {
  RunStats stats;
  stats.mode = ExecutionMode::kParallel;

  ParallelSchedulerOptions sched_options;
  // Default stage count leaves one core for this feeder thread, which
  // busy-polls (spin/yield) whenever the entry ring is full; taking every
  // core for stages would oversubscribe the machine by one thread.
  const unsigned hw = std::thread::hardware_concurrency();  // may be 0
  sched_options.num_workers =
      options_.worker_threads > 0 ? options_.worker_threads
                                  : static_cast<int>(hw > 1 ? hw - 1 : 1);
  sched_options.edge_capacity = options_.parallel_edge_capacity;
  sched_options.finish_at_end = options_.finish_at_end;
  ParallelScheduler scheduler(plan_, sched_options);

  const auto wall_start = std::chrono::steady_clock::now();
  scheduler.Start();
  stats.worker_threads = scheduler.num_stages();

  TimePoint now = 0;
  bool cost_snapshotted = false;
  for (;;) {
    const SourceBinding* best = NextSource();
    if (best == nullptr) break;  // all exhausted
    const TimePoint best_time = best->source->NextTime();

    // No periodic memory sampling here: walking operator state would race
    // with the worker threads. The cost counters are atomic, so the
    // steady-state snapshot still works (approximate: workers may lag the
    // feed by the bounded queue capacities).
    if (options_.cost_snapshot_time > 0 && !cost_snapshotted &&
        best_time >= options_.cost_snapshot_time) {
      stats.cost_at_snapshot = plan_->cost_counters();
      stats.cost_snapshot_time = options_.cost_snapshot_time;
      cost_snapshotted = true;
    }

    now = best_time;
    scheduler.PushEntry(best->entry, best->source->PopNext());
    ++stats.input_tuples;

    if (options_.max_events > 0 &&
        scheduler.total_processed() >= options_.max_events) {
      break;
    }
  }
  scheduler.FinishInput();
  scheduler.Join();

  const auto wall_end = std::chrono::steady_clock::now();
  stats.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  stats.virtual_end_time = now;
  stats.events_processed = scheduler.total_processed();
  stats.parallel_edge_events = scheduler.edges_total_pushed();
  stats.parallel_edge_high_water_mark = scheduler.edges_high_water_mark();
  stats.stage_busy_fraction = scheduler.stage_busy_fractions();
  stats.cost = plan_->cost_counters();

  // One end-of-run sample so memory reporting is not entirely empty.
  stats.memory_samples.push_back(MemorySample{
      .time = now,
      .state_tuples = plan_->TotalStateSize(),
      .queue_events = plan_->TotalQueueSize(),
  });

  CollectSinkCounts(&stats);
  return stats;
}

}  // namespace stateslice
