#include "src/runtime/metrics.h"

#include <algorithm>
#include <sstream>

namespace stateslice {

double RunStats::AvgStateTuples(TimePoint from) const {
  double sum = 0.0;
  int n = 0;
  for (const MemorySample& s : memory_samples) {
    if (s.time < from) continue;
    sum += static_cast<double>(s.state_tuples);
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

size_t RunStats::MaxStateTuples() const {
  size_t max = 0;
  for (const MemorySample& s : memory_samples) {
    max = std::max(max, s.state_tuples);
  }
  return max;
}

double RunStats::ComparisonsPerVirtualSecond() const {
  const double secs = TicksToSeconds(virtual_end_time);
  return secs > 0 ? static_cast<double>(cost.Total()) / secs : 0.0;
}

double RunStats::SteadyComparisonsPerVirtualSecond() const {
  if (cost_snapshot_time <= 0 || virtual_end_time <= cost_snapshot_time) {
    return ComparisonsPerVirtualSecond();
  }
  const double secs =
      TicksToSeconds(virtual_end_time - cost_snapshot_time);
  const double steady = static_cast<double>(cost.Total()) -
                        static_cast<double>(cost_at_snapshot.Total());
  return steady / secs;
}

std::string RunStats::DebugString() const {
  std::ostringstream out;
  out << (mode == ExecutionMode::kParallel ? "parallel" : "deterministic")
      << " workers=" << worker_threads << " inputs=" << input_tuples
      << " events=" << events_processed
      << " results=" << results_delivered
      << " rejected=" << rejected_tuples
      << " wall_s=" << wall_seconds
      << " avg_state=" << AvgStateTuples()
      << " max_state=" << MaxStateTuples() << " cost{" << cost.DebugString()
      << "}";
  return out.str();
}

}  // namespace stateslice
