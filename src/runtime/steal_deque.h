// Bounded overflow deque of event runs for the sharded runtime.
//
// Each shard of the sharded scheduler (src/runtime/sharded_scheduler.h) is
// fed through a small SPSC ring; when the ring fills — a loaded or skewed
// shard — the router spills whole `EventRun`s into this deque instead. The
// deque is the unit of work-stealing: an idle worker that wins the shard's
// execution token drains it on the owner's behalf. Because shard-local
// join state must see events in timestamp order, work is always taken from
// the FIFO head (the oldest run); "stealing" migrates the *executor*, not
// the order.
//
// Thread contract: exactly one producer (the routing/feeder thread) pushes
// at the back. The pop side is serialized by the shard's execution token:
// whichever thread holds the token is the deque's single consumer for the
// duration, and the token's release/acquire handoff
// (src/runtime/shard_router.h) carries the consumer-side cache between
// successive holders. Both claims are machine-checked with thread roles,
// same discipline as SpscQueue.
#ifndef STATESLICE_RUNTIME_STEAL_DEQUE_H_
#define STATESLICE_RUNTIME_STEAL_DEQUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/runtime/sync_point.h"

namespace stateslice {

namespace steal_internal {

// Publication orders for the deque indices. The release stores order the
// slot writes (reads) before the index publication the other side
// acquires. The STATESLICE_SEEDED_BUG_* variants deliberately weaken one
// of them so the interleave explorer (tests/interleave/) can prove it
// catches the resulting data race — they are compiled only by the
// seeded-violation catch tests, never by production targets.
#if defined(STATESLICE_SEEDED_BUG_4)
// lint: allow(atomic-memory-order) -- seeded interleave-catch violation
inline constexpr std::memory_order kBottomPublishOrder =
    std::memory_order_relaxed;
#else
inline constexpr std::memory_order kBottomPublishOrder =
    std::memory_order_release;
#endif
#if defined(STATESLICE_SEEDED_BUG_6)
// lint: allow(atomic-memory-order) -- seeded interleave-catch violation
inline constexpr std::memory_order kTopPublishOrder =
    std::memory_order_relaxed;
#else
inline constexpr std::memory_order kTopPublishOrder =
    std::memory_order_release;
#endif

}  // namespace steal_internal

// Bounded FIFO of default-constructible, movable values (EventRun in
// production). PushBack requires the producer role; PopFront the consumer
// role, which in the sharded runtime is claimed by asserting after winning
// the shard's execution token.
template <typename T>
class StealDeque {
 public:
  // Rounds `min_capacity` up to the next power of two (>= 2) so the
  // index is a mask instead of a modulo.
  explicit StealDeque(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  // Declares that the calling thread is the deque's single producer, or
  // its current serialized consumer (token holder). Document why at each
  // call site.
  void AssertProducer() const STATESLICE_ASSERT_CAPABILITY(producer_role_) {}
  void AssertConsumer() const STATESLICE_ASSERT_CAPABILITY(consumer_role_) {}

  // Attempts to append `value` at the back. Returns false (leaving `value`
  // untouched) when the deque is full. Producer thread only.
  bool TryPushBack(T&& value) STATESLICE_REQUIRES(producer_role_) {
    // lint: allow(atomic-memory-order) -- producer-owned index, self-read
    const uint64_t bottom = STATESLICE_ATOMIC_LOAD_OWNER(
        "sdq.push.bottom_read", bottom_, std::memory_order_relaxed);
    if (bottom - top_cache_ >= capacity_) {
      top_cache_ = STATESLICE_ATOMIC_LOAD("sdq.push.top_refresh", top_,
                                          std::memory_order_acquire);
      if (bottom - top_cache_ >= capacity_) return false;
    }
    STATESLICE_SYNC_PLAIN_WRITE("sdq.push.slot", &slots_[bottom & mask_]);
    slots_[bottom & mask_] = std::move(value);
    STATESLICE_ATOMIC_STORE("sdq.push.bottom_publish", bottom_, bottom + 1,
                            steal_internal::kBottomPublishOrder);
    // lint: allow(atomic-memory-order) -- single-writer accounting counter
    STATESLICE_ATOMIC_ACCOUNTING_FETCH_ADD("sdq.push.total", total_pushed_, 1,
                                           std::memory_order_relaxed);
    const uint64_t occupancy = bottom + 1 - top_cache_;
    // lint: allow(atomic-memory-order) -- single-writer accounting counter
    if (occupancy > STATESLICE_ATOMIC_ACCOUNTING_LOAD(
                        "sdq.push.hwm_read", high_water_mark_,
                        std::memory_order_relaxed)) {
      // lint: allow(atomic-memory-order) -- single-writer accounting counter
      STATESLICE_ATOMIC_ACCOUNTING_STORE("sdq.push.hwm_write",
                                         high_water_mark_, occupancy,
                                         std::memory_order_relaxed);
    }
    return true;
  }

  // Attempts to move the oldest value into `*out`. Returns false when the
  // deque is empty. Current consumer (token holder) only. The top_ read is
  // a modeled acquire, not an owner self-read: successive token holders
  // are different threads, and the token handoff is what makes the newest
  // published top_ visible here.
  bool TryPopFront(T* out) STATESLICE_REQUIRES(consumer_role_) {
    const uint64_t top = STATESLICE_ATOMIC_LOAD("sdq.pop.top_read", top_,
                                                std::memory_order_acquire);
    if (top == bottom_cache_) {
      bottom_cache_ = STATESLICE_ATOMIC_LOAD("sdq.pop.bottom_refresh", bottom_,
                                             std::memory_order_acquire);
      if (top == bottom_cache_) return false;
    }
    STATESLICE_SYNC_PLAIN_READ("sdq.pop.slot", &slots_[top & mask_]);
    *out = std::move(slots_[top & mask_]);
    STATESLICE_ATOMIC_STORE("sdq.pop.top_publish", top_, top + 1,
                            steal_internal::kTopPublishOrder);
    return true;
  }

  // Producer-side emptiness check for the router's spill discipline: may
  // report non-empty for a just-drained deque (top_cache_ lags), never
  // empty for a non-empty one (bottom_ is producer-owned, top_ only
  // advances). Producer thread only.
  bool ProducerEmpty() STATESLICE_REQUIRES(producer_role_) {
    // lint: allow(atomic-memory-order) -- producer-owned index, self-read
    const uint64_t bottom = STATESLICE_ATOMIC_LOAD_OWNER(
        "sdq.empty.bottom_read", bottom_, std::memory_order_relaxed);
    if (bottom == top_cache_) return true;
    top_cache_ = STATESLICE_ATOMIC_LOAD("sdq.empty.top_refresh", top_,
                                        std::memory_order_acquire);
    return bottom == top_cache_;
  }

  // Snapshot emptiness / occupancy (any thread; may be stale).
  bool empty() const { return size() == 0; }
  size_t size() const {
    const uint64_t bottom = STATESLICE_ATOMIC_LOAD(
        "sdq.size.bottom", bottom_, std::memory_order_acquire);
    const uint64_t top = STATESLICE_ATOMIC_LOAD("sdq.size.top", top_,
                                                std::memory_order_acquire);
    return bottom >= top ? static_cast<size_t>(bottom - top) : 0;
  }

  size_t capacity() const { return capacity_; }

  // Largest producer-observed occupancy (may over-estimate by the
  // consumer's lag, never exceeds capacity).
  size_t high_water_mark() const {
    // lint: allow(atomic-memory-order) -- stale-snapshot accounting read
    return STATESLICE_ATOMIC_ACCOUNTING_LOAD("sdq.hwm", high_water_mark_,
                                             std::memory_order_relaxed);
  }

  // Total number of values ever pushed.
  uint64_t total_pushed() const {
    // lint: allow(atomic-memory-order) -- stale-snapshot accounting read
    return STATESLICE_ATOMIC_ACCOUNTING_LOAD("sdq.total", total_pushed_,
                                             std::memory_order_relaxed);
  }

 private:
  // Cache-line layout mirrors SpscQueue: one line per shared index, one
  // line of producer-written state, one of consumer-written state.
  alignas(64) std::atomic<uint64_t> top_{0};     // next slot to pop (oldest)
  alignas(64) std::atomic<uint64_t> bottom_{0};  // next slot to fill
  // -- producer-written --
  // producer's view of top_
  alignas(64) uint64_t top_cache_ STATESLICE_GUARDED_BY(producer_role_) = 0;
  std::atomic<uint64_t> high_water_mark_{0};
  std::atomic<uint64_t> total_pushed_{0};
  // -- consumer-written (handed between token holders) --
  // consumer's view of bottom_
  alignas(64) uint64_t bottom_cache_ STATESLICE_GUARDED_BY(consumer_role_) = 0;
  // -- immutable after construction --
  alignas(64) std::vector<T> slots_;
  size_t capacity_ = 0;
  uint64_t mask_ = 0;
  // The producer/consumer role capabilities (empty tags; see file comment).
  ThreadRole producer_role_;
  ThreadRole consumer_role_;
};

}  // namespace stateslice

#endif  // STATESLICE_RUNTIME_STEAL_DEQUE_H_
