// Executor: feeds sources into a plan and collects RunStats.
//
// The executor merges all stream sources into global timestamp order,
// pushes each tuple into its entry queue, and lets a scheduler drain the
// plan. Two execution modes exist (see ExecutionMode in plan.h):
//
//  - kDeterministic (default): the single-threaded round-robin scheduler.
//    Memory is sampled every `sample_interval` of virtual time, which
//    emulates CAPE's statistics monitor thread (paper Section 7.1) while
//    remaining deterministic.
//  - kParallel: the multi-threaded pipeline scheduler
//    (src/runtime/parallel_scheduler.h). The feeder thread pushes tuples
//    under SPSC backpressure while worker threads drain the stages.
//    Periodic memory sampling is skipped (walking live operator state
//    would race with the workers); a single end-of-run sample is recorded
//    instead, and the cost snapshot remains available because the cost
//    counters are atomic.
#ifndef STATESLICE_RUNTIME_EXECUTOR_H_
#define STATESLICE_RUNTIME_EXECUTOR_H_

#include <cstddef>
#include <vector>

#include "src/runtime/metrics.h"
#include "src/runtime/parallel_scheduler.h"
#include "src/runtime/plan.h"
#include "src/runtime/queue.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/sink.h"
#include "src/runtime/source.h"

namespace stateslice {

// Binds one source to one plan entry queue.
struct SourceBinding {
  StreamSource* source = nullptr;
  EventQueue* entry = nullptr;
};

// Options controlling a run.
struct ExecutorOptions {
  // Virtual-time spacing between memory samples. Default: 1 second.
  Duration sample_interval = kTicksPerSecond;
  // How many tuples to feed before letting the scheduler catch up. A batch
  // of 1 processes each arrival to quiescence (max determinism); larger
  // batches model queueing under bursts. The paper's analysis assumes
  // tuple-at-a-time processing, so 1 is the default.
  int feed_batch = 1;
  // Optional cap on total scheduler events (guards runaway tests); 0 = off.
  // This is a *feed cutoff*, not a hard processing stop: once crossed, no
  // further tuples are fed, but work already in flight still drains. In
  // deterministic mode the overshoot is bounded by feed_batch; in parallel
  // mode by the contents of the bounded SPSC rings (the pipeline finishes
  // what it has rather than dropping events mid-flight), so parallel
  // events_processed can exceed the cap by up to the in-flight volume.
  uint64_t max_events = 0;
  // Virtual time at which to snapshot the cost counters for steady-state
  // CPU accounting (0 = no snapshot). See RunStats::cost_at_snapshot.
  TimePoint cost_snapshot_time = 0;
  // If true, call plan->FinishAll() after sources drain so operators can
  // flush final punctuations, then drain again.
  bool finish_at_end = true;
  // Scheduling mode: deterministic single-threaded round-robin (default)
  // or the multi-threaded pipeline scheduler.
  ExecutionMode mode = ExecutionMode::kDeterministic;
  // kParallel only: worker threads (pipeline stages). 0 means
  // std::thread::hardware_concurrency().
  int worker_threads = 0;
  // kParallel only: per-edge SPSC ring capacity, in events.
  size_t parallel_edge_capacity = 256;
};

// Runs a started plan to completion over the given sources.
class Executor {
 public:
  Executor(QueryPlan* plan, std::vector<SourceBinding> sources,
           ExecutorOptions options = {});

  // Registers a sink whose result counts are added to RunStats.
  void AddSink(const CountingSink* sink) { counting_sinks_.push_back(sink); }
  void AddSink(const CollectingSink* sink) {
    collecting_sinks_.push_back(sink);
  }

  // Feeds everything, drains the plan and returns the collected stats.
  RunStats Run();

 private:
  RunStats RunDeterministic();
  RunStats RunParallel();
  // Picks the source with the smallest next timestamp; nullptr when all
  // are exhausted.
  const SourceBinding* NextSource() const;
  void CollectSinkCounts(RunStats* stats) const;

  QueryPlan* plan_;
  std::vector<SourceBinding> sources_;
  ExecutorOptions options_;
  std::vector<const CountingSink*> counting_sinks_;
  std::vector<const CollectingSink*> collecting_sinks_;
};

}  // namespace stateslice

#endif  // STATESLICE_RUNTIME_EXECUTOR_H_
