#include "src/runtime/shard_router.h"

#include <utility>
#include <variant>

#include "src/common/check.h"
#include "src/runtime/backoff.h"

namespace stateslice {

ShardRouter::ShardRouter(ShardRouterOptions options)
    : options_(options),
      pending_(static_cast<size_t>(options.num_shards)),
      routed_(static_cast<size_t>(options.num_shards)) {
  SLICE_CHECK(options_.num_shards >= 1);
  SLICE_CHECK(options_.spill_run_length >= 1);
  cells_.reserve(static_cast<size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) {
    // lint: allow(hot-path-alloc) -- constructor-time cell setup
    cells_.push_back(std::make_unique<ShardCell>(options_.ring_capacity,
                                                 options_.overflow_capacity));
  }
}

void ShardRouter::Route(Event event) {
  if (IsTuple(event)) {
    const int shard = ShardOf(std::get<Tuple>(event).key);
    ShardCell& c = cell(shard);
    // lint: allow(atomic-memory-order) -- single-writer accounting counter
    STATESLICE_ATOMIC_ACCOUNTING_FETCH_ADD(
        "shard.routed_add", routed_[static_cast<size_t>(shard)], 1,
        std::memory_order_relaxed);
    // FIFO spill discipline: the ring is only eligible while nothing is
    // staged and the overflow is empty — otherwise this event would
    // overtake older spilled ones.
    if (!pending_[static_cast<size_t>(shard)].empty() ||
        !c.overflow.ProducerEmpty()) {
      Spill(shard, std::move(event));
      return;
    }
    // The router has a single feeder thread (machine-checked via
    // feeder_role_), and that feeder is every shard ring's one producer.
    c.ring.AssertProducer();
    if (!c.ring.TryPush(std::move(event))) Spill(shard, std::move(event));
    return;
  }
  // Non-tuple events (punctuations) carry stream-wide assertions: every
  // shard replica needs them to purge state and advance its merges.
  for (int s = 0; s < options_.num_shards; ++s) {
    ShardCell& c = cell(s);
    // lint: allow(atomic-memory-order) -- single-writer accounting counter
    STATESLICE_ATOMIC_ACCOUNTING_FETCH_ADD(
        "shard.routed_add", routed_[static_cast<size_t>(s)], 1,
        std::memory_order_relaxed);
    Event copy = s + 1 == options_.num_shards ? std::move(event) : event;
    if (!pending_[static_cast<size_t>(s)].empty() ||
        !c.overflow.ProducerEmpty()) {
      Spill(s, std::move(copy));
      continue;
    }
    // Same single-feeder justification as the tuple path above.
    c.ring.AssertProducer();
    if (!c.ring.TryPush(std::move(copy))) Spill(s, std::move(copy));
  }
}

void ShardRouter::Spill(int shard, Event event) {
  EventRun& run = pending_[static_cast<size_t>(shard)];
  run.push_back(std::move(event));
  if (run.size() >= options_.spill_run_length) FlushShard(shard);
}

void ShardRouter::FlushShard(int shard) {
  EventRun& run = pending_[static_cast<size_t>(shard)];
  if (run.empty()) return;
  ShardCell& c = cell(shard);
  // The single feeder thread is every overflow deque's one producer.
  c.overflow.AssertProducer();
  SpinBackoff backoff;
  while (!c.overflow.TryPushBack(std::move(run))) {
    // Futile until some token holder pops a run: a full overflow deque is
    // the sharded mode's ingestion backpressure.
    STATESLICE_SYNC_FUTILE("shard.route_backpressure");
    backoff.Pause();
  }
  run.clear();  // moved-from: restore a defined empty state
  // lint: allow(atomic-memory-order) -- single-writer accounting counter
  STATESLICE_ATOMIC_ACCOUNTING_FETCH_ADD("shard.spilled_add", spilled_runs_, 1,
                                         std::memory_order_relaxed);
}

void ShardRouter::FlushPending() {
  for (int s = 0; s < options_.num_shards; ++s) FlushShard(s);
}

void ShardRouter::CloseAll() {
  FlushPending();
  for (int s = 0; s < options_.num_shards; ++s) {
    STATESLICE_ATOMIC_STORE("shard.close", cell(s).closed, 1,
                            std::memory_order_release);
  }
}

}  // namespace stateslice
