#include "src/runtime/queue.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace stateslice {

void EventQueue::Grow() {
  const size_t old_size = size();
  const size_t new_capacity =
      slots_.empty() ? kInitialCapacity : slots_.size() * 2;
  std::vector<Event> fresh(new_capacity);
  for (size_t i = 0; i < old_size; ++i) {
    fresh[i] = std::move(slots_[(head_ + i) & mask_]);
  }
  slots_ = std::move(fresh);
  mask_ = new_capacity - 1;
  head_ = 0;
  tail_ = old_size;
}

void EventQueue::Push(Event event) {
  if (size() == slots_.size()) Grow();
  slots_[tail_ & mask_] = std::move(event);
  ++tail_;
  ++total_pushed_;
  if (size() > high_water_mark_) high_water_mark_ = size();
}

void EventQueue::PushRun(EventRun* run) {
  for (Event& event : *run) Push(std::move(event));
  run->clear();
}

Event EventQueue::Pop() {
  SLICE_CHECK(!empty());
  Event event = std::move(slots_[head_ & mask_]);
  ++head_;
  return event;
}

const Event& EventQueue::Front() const {
  SLICE_CHECK(!empty());
  return slots_[head_ & mask_];
}

size_t EventQueue::DrainRun(EventRun* run, size_t max_events) {
  const size_t count = std::min(max_events, size());
  for (size_t i = 0; i < count; ++i) {
    run->push_back(std::move(slots_[head_ & mask_]));
    ++head_;
  }
  return count;
}

}  // namespace stateslice
