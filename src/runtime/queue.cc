#include "src/runtime/queue.h"

#include <utility>

#include "src/common/check.h"

namespace stateslice {

void EventQueue::Push(Event event) {
  events_.push_back(std::move(event));
  ++total_pushed_;
  if (events_.size() > high_water_mark_) high_water_mark_ = events_.size();
}

Event EventQueue::Pop() {
  SLICE_CHECK(!events_.empty());
  Event event = std::move(events_.front());
  events_.pop_front();
  return event;
}

const Event& EventQueue::Front() const {
  SLICE_CHECK(!events_.empty());
  return events_.front();
}

}  // namespace stateslice
