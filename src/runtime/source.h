// Synthetic stream sources.
//
// A StreamSource holds a pre-generated, timestamp-ordered buffer of tuples
// for one stream (A or B). The workload generator (src/query/workload)
// produces these buffers with Poisson arrivals; the Executor merges multiple
// sources into one globally ordered feed, matching the paper's assumption of
// globally ordered timestamps (Section 2).
#ifndef STATESLICE_RUNTIME_SOURCE_H_
#define STATESLICE_RUNTIME_SOURCE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/tuple.h"
#include "src/runtime/queue.h"

namespace stateslice {

// A replayable buffer of tuples for one input stream.
class StreamSource {
 public:
  StreamSource(std::string name, std::vector<Tuple> tuples);

  // True when all tuples have been emitted.
  bool Exhausted() const { return next_ >= tuples_.size(); }

  // Timestamp of the next tuple; kMaxTime when exhausted.
  TimePoint NextTime() const;

  // Emits the next tuple into `queue` and advances. Must not be exhausted.
  Tuple PopNext();

  // Restarts from the beginning (benches replay the same buffer).
  void Reset() { next_ = 0; }

  size_t size() const { return tuples_.size(); }
  const std::string& name() const { return name_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

 private:
  std::string name_;
  std::vector<Tuple> tuples_;
  size_t next_ = 0;
};

}  // namespace stateslice

#endif  // STATESLICE_RUNTIME_SOURCE_H_
