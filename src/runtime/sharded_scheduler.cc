#include "src/runtime/sharded_scheduler.h"

#include <utility>

#include "src/common/check.h"
#include "src/common/fault_point.h"
#include "src/runtime/backoff.h"
#include "src/runtime/execution_mode.h"

namespace stateslice {

ShardedScheduler::ShardedScheduler(ShardedPlanSet* plans,
                                   ShardedSchedulerOptions options)
    : plans_(plans), options_(options) {
  // Construction runs on the one owning caller thread; no worker exists
  // yet, so the constructing thread trivially holds every exec role (the
  // later thread spawns give happens-before for everything built here).
  caller_role_.Assert();
  SLICE_CHECK(plans_ != nullptr);
  SLICE_CHECK(plans_->num_shards() >= 1);
  SLICE_CHECK(options_.runs_per_hold >= 1);

  ShardRouterOptions ropts;
  ropts.num_shards = plans_->num_shards();
  ropts.ring_capacity = options_.ring_capacity;
  ropts.overflow_capacity = options_.overflow_capacity;
  ropts.spill_run_length = options_.spill_run_length;
  // lint: allow(hot-path-alloc) -- constructor-time setup
  router_ = std::make_unique<ShardRouter>(ropts);

  const int nq = plans_->num_queries();
  execs_.reserve(static_cast<size_t>(plans_->num_shards()));
  for (int s = 0; s < plans_->num_shards(); ++s) {
    // lint: allow(hot-path-alloc) -- constructor-time shard setup
    auto ex = std::make_unique<ShardExec>();
    ex->built = &plans_->shards[static_cast<size_t>(s)];
    SLICE_CHECK(ex->built->entry != nullptr);
    ex->role.Assert();  // pre-spawn construction (see above)
    // lint: allow(hot-path-alloc) -- constructor-time shard setup
    ex->rr = std::make_unique<RoundRobinScheduler>(ex->built->plan.get(),
                                                   options_.quantum);
    ex->results.reserve(static_cast<size_t>(nq));
    for (int q = 0; q < nq; ++q) {
      // lint: allow(hot-path-alloc) -- constructor-time result rings
      auto ring = std::make_unique<SpscQueue<Event>>(
          options_.result_ring_capacity);
      ex->results.push_back(std::move(ring));
    }
    execs_.push_back(std::move(ex));
  }

  merge_role_.Assert();  // pre-spawn construction (see above)
  // lint: allow(hot-path-alloc) -- constructor-time merge setup
  merge_rr_ = std::make_unique<RoundRobinScheduler>(plans_->merge.plan.get(),
                                                    options_.quantum);
}

ShardedScheduler::~ShardedScheduler() {
  caller_role_.Assert();  // lifecycle: owning caller thread only
  if (started_ && !joined_) {
    FinishInput();
    Join();
  }
}

void ShardedScheduler::Start() {
  caller_role_.Assert();  // lifecycle: owning caller thread only
  SLICE_CHECK(!started_);
  started_ = true;
  for (BuiltPlan& shard : plans_->shards) {
    SLICE_CHECK(shard.plan->started());
    shard.plan->BeginExecution(ExecutionMode::kSharded);
  }
  SLICE_CHECK(plans_->merge.plan->started());
  plans_->merge.plan->BeginExecution(ExecutionMode::kSharded);
  worker_threads_.reserve(static_cast<size_t>(plans_->num_shards()));
  for (int w = 0; w < plans_->num_shards(); ++w) {
    // Announce the spawn before the thread exists so a schedule-test
    // explorer knows to wait for the worker's registration.
    STATESLICE_SYNC_THREAD_SPAWN();
    worker_threads_.emplace_back(&ShardedScheduler::RunWorker, this, w);
  }
  STATESLICE_SYNC_THREAD_SPAWN();
  merge_thread_ = std::thread(&ShardedScheduler::RunMerge, this);
}

void ShardedScheduler::PushEntry(Event event) {
  caller_role_.Assert();  // feeder == owning caller (single-caller contract)
  // Crash seam: fires before any state mutates, so an injected failure
  // models the feeder dying between batches (fault_point.h).
  STATESLICE_FAULT_POINT("shard.push_entry");
  SLICE_CHECK(started_);
  SLICE_CHECK(!input_finished_);
  // The owning caller thread is the router's single feeder.
  router_->AssertFeeder();
  router_->Route(std::move(event));
}

void ShardedScheduler::PushEntryRun(EventRun* run) {
  caller_role_.Assert();  // feeder == owning caller (single-caller contract)
  // Crash seam: fires before any state mutates (see PushEntry).
  STATESLICE_FAULT_POINT("shard.push_entry");
  SLICE_CHECK(started_);
  SLICE_CHECK(!input_finished_);
  // The owning caller thread is the router's single feeder.
  router_->AssertFeeder();
  for (Event& event : *run) router_->Route(std::move(event));
  run->clear();
}

void ShardedScheduler::FlushInput() {
  caller_role_.Assert();  // feeder == owning caller (single-caller contract)
  SLICE_CHECK(started_);
  if (input_finished_) return;
  router_->AssertFeeder();
  router_->FlushPending();
}

void ShardedScheduler::FinishInput() {
  caller_role_.Assert();  // lifecycle: owning caller thread only
  SLICE_CHECK(started_);
  if (input_finished_) return;
  input_finished_ = true;
  // The owning caller thread is the router's single feeder.
  router_->AssertFeeder();
  router_->CloseAll();
}

void ShardedScheduler::Join() {
  caller_role_.Assert();  // lifecycle: owning caller thread only
  if (joined_) return;
  SLICE_CHECK(started_);
  SLICE_CHECK(input_finished_);  // FinishInput() must precede Join()
  // Park brackets the real blocking joins so a schedule-test explorer does
  // not wait on this thread while it waits on the workers.
  STATESLICE_SYNC_PARK();
  for (std::thread& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
  STATESLICE_SYNC_UNPARK();
  // Every result-ring producer has exited (and every relay it published
  // happened-before its exit), so once the rings drain the merge worker is
  // done. Release pairs with the acquire in RunMerge's done check.
  STATESLICE_ATOMIC_STORE("shard.merge_close", merge_close_, 1,
                          std::memory_order_release);
  STATESLICE_SYNC_PARK();
  if (merge_thread_.joinable()) merge_thread_.join();
  STATESLICE_SYNC_UNPARK();
  joined_ = true;
  // Return the plans to deterministic mode: the Engine finishes operators
  // (flush) and rewires subscriptions on the caller thread after Join().
  for (BuiltPlan& shard : plans_->shards) shard.plan->EndExecution();
  plans_->merge.plan->EndExecution();
}

bool ShardedScheduler::TryProcessShard(int shard, int worker) {
  ShardCell& cell = router_->cell(shard);
  // Cheap tokenless pre-check. Both snapshots may be stale; a false empty
  // is retried by the caller's loop and a false non-empty just wastes one
  // token round-trip.
  if (cell.ring.empty() && cell.overflow.empty()) return false;
  if (!router_->TryAcquireToken(shard, static_cast<uint32_t>(worker))) {
    return false;
  }
  // Observation seam: token handoffs are countable under fault testing
  // (worker threads reach this — count-only, never throws).
  STATESLICE_FAULT_POINT("shard.token_handoff");
  ShardExec& ex = *execs_[static_cast<size_t>(shard)];
  // Winning the token CAS makes this thread the shard's sole executor
  // until ReleaseToken below; its acquire half synchronizes with the
  // previous holder's release store, handing over every role-guarded
  // member (scratch runs, scheduler, plan state) and the ring/deque
  // consumer caches.
  ex.role.Assert();
  cell.ring.AssertConsumer();      // token holder = sole ring consumer
  cell.overflow.AssertConsumer();  // token holder = sole overflow consumer
  bool progress = false;
  // Bounded hold: ring first (older events), then the overflow head, so
  // per-shard arrival order is preserved no matter who executes.
  for (int hold = 0; hold < options_.runs_per_hold; ++hold) {
    ex.ring_run.clear();
    if (cell.ring.TryPopRun(&ex.ring_run,
                            static_cast<size_t>(options_.quantum)) > 0) {
      ex.built->entry->PushRun(&ex.ring_run);
      ex.rr->RunUntilQuiescent();
      progress = true;
      continue;
    }
    // The ring-empty read above may be stale: the feeder pushes ring
    // events BEFORE spilling, but nothing orders this thread's ring read
    // after its view of the spill. Popping the overflow on a stale ring
    // view would feed a newer spilled run ahead of older ring events.
    // The acquire occupancy snapshot below synchronizes with the spill
    // publication, so after observing a non-empty overflow a ring
    // re-check is guaranteed to see every event routed before the
    // overflow head — drain those first.
    if (cell.overflow.empty()) break;  // stale-true just ends the hold
    ex.ring_run.clear();
    if (cell.ring.TryPopRun(&ex.ring_run,
                            static_cast<size_t>(options_.quantum)) > 0) {
      ex.built->entry->PushRun(&ex.ring_run);
      ex.rr->RunUntilQuiescent();
      progress = true;
      continue;
    }
    ex.overflow_run.clear();
    if (cell.overflow.TryPopFront(&ex.overflow_run)) {
      if (worker != shard) {
        // lint: allow(atomic-memory-order) -- commutative accounting counter
        STATESLICE_ATOMIC_ACCOUNTING_FETCH_ADD("shard.steal_add", steals_, 1,
                                               std::memory_order_relaxed);
      }
      ex.built->entry->PushRun(&ex.overflow_run);
      ex.rr->RunUntilQuiescent();
      progress = true;
      continue;
    }
    break;  // shard drained (for now)
  }
  if (progress) {
    RelayExits(&ex, shard);
    const uint64_t processed = ex.rr->total_processed();
    // lint: allow(atomic-memory-order) -- commutative accounting counter
    STATESLICE_ATOMIC_ACCOUNTING_FETCH_ADD("shard.total_add",
                                           total_processed_,
                                           processed - ex.reported,
                                           std::memory_order_relaxed);
    ex.reported = processed;
  }
  router_->ReleaseToken(shard);
  return progress;
}

void ShardedScheduler::RelayExits(ShardExec* ex, int shard) {
  const auto& exits = plans_->exits[static_cast<size_t>(shard)];
  for (size_t q = 0; q < exits.size(); ++q) {
    EventQueue* exit = exits[q];
    SpscQueue<Event>& ring = *ex->results[q];
    // The shard's token holder is the only thread touching the shard plan's
    // exit taps — and hence the only producer of its result rings.
    ring.AssertProducer();
    while (!exit->empty()) {
      ex->relay_run.clear();
      exit->DrainRun(&ex->relay_run, static_cast<size_t>(options_.quantum));
      size_t pushed = 0;
      SpinBackoff backoff;
      while (pushed < ex->relay_run.size()) {
        const size_t n = ring.TryPushRun(&ex->relay_run, pushed);
        if (n == 0) {
          // Futile until the merge worker pops: result backpressure.
          STATESLICE_SYNC_FUTILE("shard.result_backpressure");
          backoff.Pause();
        } else {
          pushed += n;
          backoff.Reset();
        }
      }
      ex->relay_run.clear();
    }
  }
}

void ShardedScheduler::RunWorker(int worker) {
  STATESLICE_SYNC_THREAD_BEGIN(worker);
  const int n = plans_->num_shards();
  SpinBackoff backoff;
  for (;;) {
    // Home shard first; steal scan only when home yields nothing.
    bool progress = TryProcessShard(worker, worker);
    for (int off = 1; off < n && !progress; ++off) {
      const int victim = (worker + off) % n;
      ShardCell& cell = router_->cell(victim);
      // Steal only when stealable work is visible. Stale snapshots are
      // fine: a false empty retries next round, a false non-empty loses
      // the token race or finds the shard drained.
      if (cell.overflow.empty() && cell.ring.empty()) continue;
      progress = TryProcessShard(victim, worker);
    }
    if (progress) {
      backoff.Reset();
      continue;
    }
    // Exit once every shard is closed and drained. A shard observed empty
    // here may still be mid-execution under another worker's token — but
    // that holder relays its results before releasing, so leaving early
    // never strands events.
    bool done = true;
    for (int s = 0; s < n; ++s) {
      ShardCell& cell = router_->cell(s);
      if (!router_->IsClosed(s) || !cell.ring.empty() ||
          !cell.overflow.empty()) {
        done = false;
        break;
      }
    }
    if (done) break;
    // Futile until the feeder pushes/closes or a token holder drains.
    STATESLICE_SYNC_FUTILE("shard.worker_idle");
    backoff.Pause();
  }
  STATESLICE_SYNC_THREAD_END();
}

void ShardedScheduler::RunMerge() {
  STATESLICE_SYNC_THREAD_BEGIN(plans_->num_shards());
  // This function is the merge thread's entry point: by construction the
  // executing thread is the one merge worker.
  merge_role_.Assert();
  const int n = plans_->num_shards();
  const int nq = plans_->num_queries();
  SpinBackoff backoff;
  for (;;) {
    uint64_t moved = 0;
    for (int s = 0; s < n; ++s) {
      ShardExec& ex = *execs_[static_cast<size_t>(s)];
      for (int q = 0; q < nq; ++q) {
        SpscQueue<Event>& ring = *ex.results[static_cast<size_t>(q)];
        // The merge worker is every result ring's single consumer.
        ring.AssertConsumer();
        for (;;) {
          merge_run_.clear();
          if (ring.TryPopRun(&merge_run_,
                             static_cast<size_t>(options_.quantum)) == 0) {
            break;
          }
          moved += merge_run_.size();
          plans_->merge_entries[static_cast<size_t>(s)][static_cast<size_t>(q)]
              ->PushRun(&merge_run_);
        }
      }
    }
    if (moved > 0) {
      backoff.Reset();
      const uint64_t before = merge_rr_->total_processed();
      merge_rr_->RunUntilQuiescent();
      // lint: allow(atomic-memory-order) -- commutative accounting counter
      STATESLICE_ATOMIC_ACCOUNTING_FETCH_ADD(
          "shard.merge_total_add", total_processed_,
          merge_rr_->total_processed() - before, std::memory_order_relaxed);
      continue;
    }
    // Close is published only after every producer exited, so close
    // observed + rings empty means no result will ever arrive again.
    if (STATESLICE_ATOMIC_LOAD("shard.merge_close_check", merge_close_,
                               std::memory_order_acquire) != 0) {
      bool drained = true;
      for (int s = 0; s < n && drained; ++s) {
        ShardExec& ex = *execs_[static_cast<size_t>(s)];
        for (int q = 0; q < nq; ++q) {
          if (!ex.results[static_cast<size_t>(q)]->empty()) {
            drained = false;
            break;
          }
        }
      }
      if (drained) break;
    }
    // Futile until a token holder relays results or Join publishes close.
    STATESLICE_SYNC_FUTILE("shard.merge_idle");
    backoff.Pause();
  }
  STATESLICE_SYNC_THREAD_END();
}

uint64_t ShardedScheduler::edges_total_pushed() const {
  caller_role_.Assert();  // accounting reads: owning caller thread only
  uint64_t total = 0;
  for (int s = 0; s < plans_->num_shards(); ++s) {
    const ShardCell& cell = router_->cell(s);
    total += cell.ring.total_pushed();
    for (const auto& ring : execs_[static_cast<size_t>(s)]->results) {
      total += ring->total_pushed();
    }
  }
  return total;
}

size_t ShardedScheduler::edges_high_water_mark() const {
  caller_role_.Assert();  // accounting reads: owning caller thread only
  size_t hwm = 0;
  for (int s = 0; s < plans_->num_shards(); ++s) {
    const ShardCell& cell = router_->cell(s);
    if (cell.ring.high_water_mark() > hwm) hwm = cell.ring.high_water_mark();
    for (const auto& ring : execs_[static_cast<size_t>(s)]->results) {
      if (ring->high_water_mark() > hwm) hwm = ring->high_water_mark();
    }
  }
  return hwm;
}

}  // namespace stateslice
