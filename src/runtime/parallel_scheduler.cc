#include "src/runtime/parallel_scheduler.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "src/common/check.h"
#include "src/common/fault_point.h"
#include "src/runtime/backoff.h"
#include "src/runtime/sync_point.h"

namespace stateslice {

namespace {

// Order of the consumer-side close-flag load in RunStage's done check. The
// acquire is load-bearing: reading closed==true must also make the
// producer's final ring publication visible, or the emptiness probe that
// follows can see a stale tail and exit with events still in flight. The
// STATESLICE_SEEDED_BUG_3 variant drops the acquire so the interleave
// explorer (tests/interleave/) can prove it catches the resulting lost
// events — compiled only by the seeded-violation catch test.
#if defined(STATESLICE_SEEDED_BUG_3)
// lint: allow(atomic-memory-order) -- seeded interleave-catch violation
constexpr std::memory_order kClosedLoadOrder = std::memory_order_relaxed;
#else
constexpr std::memory_order kClosedLoadOrder = std::memory_order_acquire;
#endif

// Number of contiguous blocks a greedy packing needs when no block may
// exceed `capacity` total weight.
int BlocksNeeded(const std::vector<double>& weights, double capacity) {
  int blocks = 1;
  double current = 0;
  for (const double w : weights) {
    if (current > 0 && current + w > capacity) {
      ++blocks;
      current = 0;
    }
    current += w;
  }
  return blocks;
}

}  // namespace

ParallelScheduler::ParallelScheduler(QueryPlan* plan,
                                     ParallelSchedulerOptions options)
    : plan_(plan), options_(options) {
  SLICE_CHECK(plan != nullptr);
  SLICE_CHECK_GT(options_.quantum, 0);
  SLICE_CHECK_GT(options_.edge_capacity, 0u);
  if (options_.num_workers < 1) options_.num_workers = 1;
}

ParallelScheduler::~ParallelScheduler() {
  if (started_ && !joined_) {
    FinishInput();
    Join();
  }
}

void ParallelScheduler::BuildStages() {
  const std::vector<Operator*> order = plan_->TopologicalOrder();
  const int k = std::min<int>(options_.num_workers,
                              std::max<size_t>(order.size(), 1));

  // Minimal-max-weight contiguous partition of the topological order into
  // at most k blocks: bisect on the block capacity, then pack greedily.
  std::vector<double> weights(order.size());
  double heaviest = 0;
  double total = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    weights[i] = order[i]->SchedulingWeight();
    heaviest = std::max(heaviest, weights[i]);
    total += weights[i];
  }
  double lo = heaviest;
  double hi = std::max(total, heaviest);
  for (int iter = 0; iter < 48; ++iter) {
    const double mid = (lo + hi) / 2;
    if (BlocksNeeded(weights, mid) <= k) {
      hi = mid;
    } else {
      lo = mid;
    }
  }

  std::map<const Operator*, int> stage_of;
  double current = 0;
  int stage_index = order.empty() ? -1 : 0;
  // lint: allow(hot-path-alloc) -- setup-time stage construction
  stages_.emplace_back(std::make_unique<Stage>());
  for (size_t i = 0; i < order.size(); ++i) {
    if (current > 0 && current + weights[i] > hi &&
        stage_index + 1 < k) {
      // lint: allow(hot-path-alloc) -- setup-time stage construction
      stages_.emplace_back(std::make_unique<Stage>());
      ++stage_index;
      current = 0;
    }
    current += weights[i];
    stages_.back()->ops.push_back(order[i]);
    stage_of[order[i]] = stage_index;
  }
  stage_ops_.clear();
  for (const auto& stage : stages_) stage_ops_.push_back(stage->ops);

  // Classify every consumer edge by the stages of its endpoints.
  std::map<const EventQueue*, Operator*> producer_of;
  for (const auto& [producer, queue] : plan_->producer_edges()) {
    producer_of[queue] = producer;
  }
  for (const auto& [queue, consumer] : plan_->consumer_edges()) {
    auto [op, port] = consumer;
    const int cs = stage_of.at(op);
    const auto it = producer_of.find(queue);
    if (it == producer_of.end()) {
      // Entry queue: produced by the feeder thread.
      // lint: allow(hot-path-alloc) -- setup-time edge construction
      auto edge = std::make_unique<CrossEdge>(options_.edge_capacity);
      edge->queue = queue;
      edge->consumer = op;
      edge->port = port;
      entry_edges_.push_back(edge.get());
      stages_[cs]->inputs.push_back(edge.get());
      edges_.push_back(std::move(edge));
      continue;
    }
    const int ps = stage_of.at(it->second);
    if (ps == cs) {
      stages_[cs]->locals.push_back(LocalEdge{queue, op, port});
    } else {
      // Contiguity of the topological partition guarantees forward edges.
      SLICE_CHECK_LT(ps, cs);
      // lint: allow(hot-path-alloc) -- setup-time edge construction
      auto edge = std::make_unique<CrossEdge>(options_.edge_capacity);
      edge->queue = queue;
      edge->consumer = op;
      edge->port = port;
      stages_[ps]->outputs.push_back(edge.get());
      stages_[cs]->inputs.push_back(edge.get());
      edges_.push_back(std::move(edge));
    }
  }
}

void ParallelScheduler::Start() {
  // Lifecycle methods run on the one thread that owns this scheduler (the
  // Engine/Executor driver); workers are not launched yet.
  caller_role_.Assert();
  SLICE_CHECK(!started_);
  SLICE_CHECK(plan_->started());
  started_ = true;
  plan_->BeginExecution(ExecutionMode::kParallel);
  BuildStages();
  for (size_t i = 0; i < stages_.size(); ++i) {
    // Announce the spawn before the thread exists so a schedule-test
    // explorer knows to wait for the worker's registration.
    STATESLICE_SYNC_THREAD_SPAWN();
    stages_[i]->thread = std::thread(&ParallelScheduler::RunStage, this,
                                     stages_[i].get(), static_cast<int>(i));
  }
}

void ParallelScheduler::PushEntry(EventQueue* entry, Event event) {
  // The feeder is the owning caller thread (single-caller contract).
  caller_role_.Assert();
  // Crash seam: fires before any state mutates, so an injected failure
  // models the feeder dying between batches (fault_point.h).
  STATESLICE_FAULT_POINT("psched.push_entry");
  SLICE_CHECK(started_);
  SLICE_CHECK(!input_finished_);
  CrossEdge* edge = nullptr;
  for (CrossEdge* e : entry_edges_) {
    if (e->queue == entry) {
      edge = e;
      break;
    }
  }
  SLICE_CHECK(edge != nullptr);  // not an entry queue of this plan
  // Round-trip through the EventQueue so its total-pushed accounting keeps
  // working in parallel mode (only the feeder thread touches it).
  entry->Push(std::move(event));
  BlockingPush(edge, entry->Pop());
}

void ParallelScheduler::PushEntryRun(EventQueue* entry, EventRun* run) {
  // The feeder is the owning caller thread (single-caller contract).
  caller_role_.Assert();
  // Crash seam: fires before any state mutates (see PushEntry).
  STATESLICE_FAULT_POINT("psched.push_entry");
  SLICE_CHECK(started_);
  SLICE_CHECK(!input_finished_);
  CrossEdge* edge = nullptr;
  for (CrossEdge* e : entry_edges_) {
    if (e->queue == entry) {
      edge = e;
      break;
    }
  }
  SLICE_CHECK(edge != nullptr);  // not an entry queue of this plan
  // Same EventQueue round-trip as PushEntry, run-sized: accounting stays on
  // the queue, and the drain bound keeps the scratch run's footprint at one
  // quantum even for huge batches.
  entry->PushRun(run);
  for (;;) {
    feeder_run_.clear();
    if (entry->DrainRun(&feeder_run_,
                        static_cast<size_t>(options_.quantum)) == 0) {
      break;
    }
    BlockingPushRun(edge, &feeder_run_);
  }
}

void ParallelScheduler::FinishInput() {
  caller_role_.Assert();  // lifecycle: owning caller thread only
  SLICE_CHECK(started_);
  if (input_finished_) return;
  input_finished_ = true;
  for (CrossEdge* e : entry_edges_) {
    // Release pairs with the acquire in RunStage's done check: a consumer
    // that observes closed==true also observes every prior entry push.
    STATESLICE_ATOMIC_STORE("psched.entry_close", e->closed, true,
                            std::memory_order_release);
  }
}

void ParallelScheduler::Join() {
  caller_role_.Assert();  // lifecycle: owning caller thread only
  if (joined_) return;
  SLICE_CHECK(started_);
  SLICE_CHECK(input_finished_);  // FinishInput() must precede Join()
  // Park brackets the real blocking joins so a schedule-test explorer does
  // not wait on this thread while it waits on the workers.
  STATESLICE_SYNC_PARK();
  for (const auto& stage : stages_) {
    if (stage->thread.joinable()) stage->thread.join();
  }
  STATESLICE_SYNC_UNPARK();
  joined_ = true;
  plan_->EndExecution();
}

void ParallelScheduler::BlockingPush(CrossEdge* edge, Event event) {
  // Each cross-stage ring has exactly one pushing thread by construction:
  // the worker of the producer stage (RelayOutputs), or the feeder for
  // entry edges (PushEntry). Whichever thread reaches this call *is* that
  // producer.
  edge->ring.AssertProducer();
  // A full ring is backpressure: the consumer stage is behind. Back off
  // exponentially (capped), then yield so a stalled consumer does not pin
  // a producer core and oversubscribed machines still make progress.
  SpinBackoff backoff;
  while (!edge->ring.TryPush(std::move(event))) {
    // Observation seam: backpressure iterations are countable under fault
    // testing (worker threads may reach this — count-only, never throws).
    STATESLICE_FAULT_POINT("psched.ring_full");
    // Futile until the consumer pops: no store of ours can unblock us.
    STATESLICE_SYNC_FUTILE("psched.push_backpressure");
    backoff.Pause();
  }
}

void ParallelScheduler::BlockingPushRun(CrossEdge* edge, EventRun* run) {
  // Same single-producer justification as BlockingPush: the thread that
  // reaches this call is the edge's one producer by construction.
  edge->ring.AssertProducer();
  size_t pushed = 0;
  SpinBackoff backoff;
  while (pushed < run->size()) {
    const size_t n = edge->ring.TryPushRun(run, pushed);
    pushed += n;
    if (n == 0) {
      // Observation seam: see BlockingPush (count-only, never throws).
      STATESLICE_FAULT_POINT("psched.ring_full");
      // Futile until the consumer pops: no store of ours can unblock us.
      STATESLICE_SYNC_FUTILE("psched.push_run_backpressure");
      backoff.Pause();
    } else {
      backoff.Reset();
    }
  }
  run->clear();
}

void ParallelScheduler::RelayOutputs(Stage* stage) {
  for (CrossEdge* e : stage->outputs) {
    while (!e->queue->empty()) {
      stage->relay_run.clear();
      e->queue->DrainRun(&stage->relay_run,
                         static_cast<size_t>(options_.quantum));
      BlockingPushRun(e, &stage->relay_run);
    }
  }
}

void ParallelScheduler::DrainLocal(Stage* stage) {
  uint64_t delta = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (const LocalEdge& edge : stage->locals) {
      for (;;) {
        stage->local_run.clear();
        const size_t n = edge.queue->DrainRun(
            &stage->local_run, static_cast<size_t>(options_.quantum));
        if (n == 0) break;
        edge.consumer->OnRun(stage->local_run, edge.port);
        delta += n;
        progress = true;
      }
    }
    // Ship whatever the local work emitted downstream before looping: the
    // relay keeps later stages busy while this one keeps draining.
    RelayOutputs(stage);
  }
  if (delta > 0) {
    stage->processed += delta;
    // lint: allow(atomic-memory-order) -- commutative accounting counter
    STATESLICE_ATOMIC_ACCOUNTING_FETCH_ADD("psched.local.total",
                                           total_processed_, delta,
                                           std::memory_order_relaxed);
  }
}

void ParallelScheduler::RunStage(Stage* stage, int stage_index) {
  // This function is the worker thread's entry point: by construction the
  // executing thread is the one worker driving `stage`.
  STATESLICE_SYNC_THREAD_BEGIN(stage_index);
  stage->role.Assert();
  // Composite tails this stage's operators spill draw from the plan arena
  // (the arena pointer is immutable after plan construction; the arena
  // itself is internally synchronized).
  ArenaScope arena_scope(plan_->arena());
  auto tick = std::chrono::steady_clock::now();
  for (;;) {
    uint64_t round = 0;
    for (CrossEdge* e : stage->inputs) {
      // Every input ring of this stage is consumed by this worker alone
      // (BuildStages wires each ring into exactly one stage's inputs).
      e->ring.AssertConsumer();
      stage->input_run.clear();
      const size_t popped = e->ring.TryPopRun(
          &stage->input_run, static_cast<size_t>(options_.quantum));
      if (popped > 0) {
        e->consumer->OnRun(stage->input_run, e->port);
        stage->input_run.clear();
        round += popped;
        stage->processed += popped;
        // lint: allow(atomic-memory-order) -- commutative accounting counter
        STATESLICE_ATOMIC_ACCOUNTING_FETCH_ADD("psched.drain.total",
                                               total_processed_, popped,
                                               std::memory_order_relaxed);
        DrainLocal(stage);
      }
    }
    // Attribute this iteration's wall time: a sweep that moved events is
    // busy, a futile poll (plus the yield below, charged to the next
    // stamp) is idle. One clock read per sweep — noise next to the up-to-
    // quantum-events-per-ring work a productive sweep does.
    {
      const auto now = std::chrono::steady_clock::now();
      const int64_t ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(now - tick)
              .count();
      tick = now;
      if (round > 0) {
        stage->busy_ns += ns;
      } else {
        stage->idle_ns += ns;
      }
    }
    if (round == 0) {
      // No input progress: either upstream is slow or it is done. An edge
      // is exhausted only if it was closed *before* we observed it empty
      // (the producer publishes all pushes before the closed flag).
      bool done = true;
      for (CrossEdge* e : stage->inputs) {
        if (!STATESLICE_ATOMIC_LOAD("psched.closed_check", e->closed,
                                    kClosedLoadOrder) ||
            !e->ring.empty()) {
          done = false;
          break;
        }
      }
      if (done) break;
      // Futile until an upstream push or close lands.
      STATESLICE_SYNC_FUTILE("psched.idle");
      std::this_thread::yield();
    }
  }
  if (options_.finish_at_end) {
    // Mirror QueryPlan::FinishAll: Finish in topological order, draining
    // (and relaying) the flush output between calls.
    for (Operator* op : stage->ops) {
      op->Finish();
      DrainLocal(stage);
    }
  }
  RelayOutputs(stage);
  for (CrossEdge* e : stage->outputs) {
    // Release pairs with the downstream done check's acquire: observing
    // closed==true implies observing every relay this stage published.
    STATESLICE_ATOMIC_STORE("psched.stage_close", e->closed, true,
                            std::memory_order_release);
  }
  STATESLICE_SYNC_THREAD_END();
}

uint64_t ParallelScheduler::edges_total_pushed() const {
  caller_role_.Assert();  // accounting reads: owning caller thread only
  uint64_t total = 0;
  for (const auto& edge : edges_) total += edge->ring.total_pushed();
  return total;
}

size_t ParallelScheduler::edges_high_water_mark() const {
  caller_role_.Assert();  // accounting reads: owning caller thread only
  size_t max_hwm = 0;
  for (const auto& edge : edges_) {
    max_hwm = std::max(max_hwm, edge->ring.high_water_mark());
  }
  return max_hwm;
}

std::vector<double> ParallelScheduler::stage_busy_fractions() const {
  caller_role_.Assert();  // accounting reads: owning caller thread only
  SLICE_CHECK(joined_);   // exact only once the workers have exited
  std::vector<double> fractions;
  fractions.reserve(stages_.size());
  for (const auto& stage : stages_) {
    // Join() synchronized with the worker's exit, so this thread is the
    // only one left touching the stage's loop counters.
    stage->role.Assert();
    const int64_t total = stage->busy_ns + stage->idle_ns;
    fractions.push_back(total > 0 ? static_cast<double>(stage->busy_ns) /
                                        static_cast<double>(total)
                                  : 0.0);
  }
  return fractions;
}

}  // namespace stateslice
