// Execution modes of the stream runtime.
//
// Kept in its own small header so low-level consumers (metrics) can name
// the mode without depending on the full plan/operator graph.
#ifndef STATESLICE_RUNTIME_EXECUTION_MODE_H_
#define STATESLICE_RUNTIME_EXECUTION_MODE_H_

namespace stateslice {

// How a plan is driven at runtime.
//
//  - kDeterministic: the single-threaded round-robin scheduler of
//    src/runtime/scheduler.h (CAPE's policy, paper Section 7.1). The
//    reference for correctness; supports online migration.
//  - kParallel: the multi-threaded pipeline scheduler of
//    src/runtime/parallel_scheduler.h. Operators are partitioned into
//    stages, one worker thread per stage, SPSC ring queues between stages.
//    Plan surgery (the *WhileRunning hooks) is not allowed while a parallel
//    execution is active.
//  - kSharded: the key-partitioned scheduler of
//    src/runtime/sharded_scheduler.h. Arrivals are hash-partitioned by the
//    plan's equi-join key into N independent replicas of the sliced chain
//    (data parallelism), one worker per shard plus bounded work-stealing
//    for skewed key domains; a merge plan re-establishes timestamp order
//    through UnionMerge before the authoritative sinks. Requires an
//    equi-key join condition; plan surgery takes the drain-rebuild path.
enum class ExecutionMode {
  kDeterministic = 0,
  kParallel = 1,
  kSharded = 2,
};

}  // namespace stateslice

#endif  // STATESLICE_RUNTIME_EXECUTION_MODE_H_
