// FIFO event queues connecting operators in a shared query plan.
//
// The paper distinguishes state memory from queue memory (Section 2); queues
// here track their high-water mark so experiments can report both.
//
// Thread contract: an EventQueue is unsynchronized and must only ever be
// touched by one thread at a time. The deterministic round-robin scheduler
// (as in CAPE) trivially satisfies this; the parallel pipeline scheduler
// satisfies it by assigning each queue to exactly one stage thread and
// relaying cross-stage edges through SpscQueue rings
// (src/runtime/spsc_queue.h). Pop()/Front() CHECK-fail on an empty queue.
#ifndef STATESLICE_RUNTIME_QUEUE_H_
#define STATESLICE_RUNTIME_QUEUE_H_

#include <cstddef>
#include <deque>
#include <string>

#include "src/common/tuple.h"

namespace stateslice {

// A named FIFO of events between two operators (or a source/sink edge).
class EventQueue {
 public:
  explicit EventQueue(std::string name) : name_(std::move(name)) {}

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Appends an event.
  void Push(Event event);

  // Removes and returns the front event. Queue must be non-empty.
  Event Pop();

  // Front event without removing it. Queue must be non-empty.
  const Event& Front() const;

  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }

  // Largest size ever observed (queue-memory reporting).
  size_t high_water_mark() const { return high_water_mark_; }

  // Total number of events ever pushed.
  uint64_t total_pushed() const { return total_pushed_; }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::deque<Event> events_;
  size_t high_water_mark_ = 0;
  uint64_t total_pushed_ = 0;
};

}  // namespace stateslice

#endif  // STATESLICE_RUNTIME_QUEUE_H_
