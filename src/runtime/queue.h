// FIFO event queues connecting operators in a shared query plan, and the
// EventRun buffer the run-at-a-time schedulers drain them into.
//
// The paper distinguishes state memory from queue memory (Section 2); queues
// here track their high-water mark so experiments can report both.
//
// Storage is a power-of-two ring over a flat vector (not a deque): the
// zero-allocation steady-state contract (ISSUE 7) forbids the per-block
// churn a deque performs every few events. The ring grows geometrically and
// then never shrinks, so after warm-up Push/Pop/DrainRun touch no allocator.
//
// Thread contract: an EventQueue is unsynchronized and must only ever be
// touched by one thread at a time. The deterministic round-robin scheduler
// (as in CAPE) trivially satisfies this; the parallel pipeline scheduler
// satisfies it by assigning each queue to exactly one stage thread and
// relaying cross-stage edges through SpscQueue rings
// (src/runtime/spsc_queue.h). Pop()/Front() CHECK-fail on an empty queue.
#ifndef STATESLICE_RUNTIME_QUEUE_H_
#define STATESLICE_RUNTIME_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/tuple.h"

namespace stateslice {

// A bounded run of events drained from one queue in FIFO order — the unit
// of work a scheduler hands an operator per visit (Operator::OnRun).
// Reused across visits: clear() keeps the grown capacity, so a warm run
// buffer never reallocates.
class EventRun {
 public:
  void push_back(Event&& event) { events_.push_back(std::move(event)); }

  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  Event& operator[](size_t i) { return events_[i]; }
  const Event& operator[](size_t i) const { return events_[i]; }

  std::vector<Event>::iterator begin() { return events_.begin(); }
  std::vector<Event>::iterator end() { return events_.end(); }
  std::vector<Event>::const_iterator begin() const { return events_.begin(); }
  std::vector<Event>::const_iterator end() const { return events_.end(); }

  void reserve(size_t n) { events_.reserve(n); }
  size_t capacity() const { return events_.capacity(); }
  // Keeps capacity for the next run.
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

// A named FIFO of events between two operators (or a source/sink edge).
class EventQueue {
 public:
  explicit EventQueue(std::string name) : name_(std::move(name)) {}

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Appends an event.
  void Push(Event event);

  // Appends every event of `run` in order and clears the run (capacity
  // retained). Equivalent to pushing each event individually.
  void PushRun(EventRun* run);

  // Removes and returns the front event. Queue must be non-empty.
  Event Pop();

  // Front event without removing it. Queue must be non-empty.
  const Event& Front() const;

  // Moves up to `max_events` front events into *run (appended in FIFO
  // order) and returns how many moved. Zero when empty. Equivalent to that
  // many Pop()s, amortized over one call.
  size_t DrainRun(EventRun* run, size_t max_events);

  bool empty() const { return head_ == tail_; }
  size_t size() const { return static_cast<size_t>(tail_ - head_); }

  // Largest size ever observed (queue-memory reporting).
  size_t high_water_mark() const { return high_water_mark_; }

  // Total number of events ever pushed.
  uint64_t total_pushed() const { return total_pushed_; }

  const std::string& name() const { return name_; }

 private:
  // Doubles the ring (first growth allocates kInitialCapacity slots).
  void Grow();

  static constexpr size_t kInitialCapacity = 8;

  std::string name_;
  std::vector<Event> slots_;  // power-of-two ring; empty until first push
  uint64_t mask_ = 0;         // slots_.size() - 1
  uint64_t head_ = 0;         // monotone pop index
  uint64_t tail_ = 0;         // monotone push index
  size_t high_water_mark_ = 0;
  uint64_t total_pushed_ = 0;
};

}  // namespace stateslice

#endif  // STATESLICE_RUNTIME_QUEUE_H_
