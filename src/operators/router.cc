#include "src/operators/router.h"

#include <cstdlib>
#include <utility>

#include "src/common/check.h"

namespace stateslice {

Router::Router(std::string name, std::vector<Branch> branches, int all_port)
    : Operator(std::move(name)),
      branches_(std::move(branches)),
      all_port_(all_port) {}

void Router::Process(Event event, int input_port) {
  SLICE_CHECK_EQ(input_port, 0);
  if (IsPunctuation(event)) {
    for (const Branch& b : branches_) Emit(b.port, event);
    if (all_port_ >= 0) Emit(all_port_, event);
    return;
  }
  SLICE_CHECK(IsJoinResult(event));
  const JoinResult& r = std::get<JoinResult>(event);
  // The routing distance is the timestamp gap the producing join level
  // introduced: |Ta - Tb| for a binary result, and in an N-way tree the
  // gap between the prefix composite and the appended stream's tuple.
  const Duration distance = r.LastGap();
  for (const Branch& b : branches_) {
    // One profile-table comparison per branch per result (Section 3.1).
    Charge(CostCategory::kRoute, 1);
    if (distance < b.max_distance) Emit(b.port, event);
  }
  if (all_port_ >= 0) EmitMove(all_port_, std::move(event));
}

void Router::Finish() {
  for (const Branch& b : branches_) {
    Emit(b.port, Punctuation{.watermark = kMaxTime});
  }
  if (all_port_ >= 0) Emit(all_port_, Punctuation{.watermark = kMaxTime});
}

void Router::OnRun(EventRun& run, int input_port) {
  for (Event& event : run) Router::Process(std::move(event), input_port);
}

}  // namespace stateslice
