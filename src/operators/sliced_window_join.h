// Sliced window join — the paper's core operator (Definitions 1-3).
//
// A sliced join holds only the portion of a sliding window whose event
// timestamp distance falls in [W_start, W_end). Slices are pipelined into a
// chain (Definition 2): entries purged from slice i's state, plus the
// probing "male" copies, feed slice i+1 through a single FIFO queue, which
// yields the complete join answer with a *linear* number of operators and
// pairwise disjoint states (Lemma 1 / Theorems 1-2).
//
// Binary mode implements the male/female reference-copy discipline of
// Fig. 9:
//  - a male event cross-purges the opposite state (expired entries move
//    down the chain), probes it, emits results, then propagates itself;
//  - a female event inserts into its own side's state and moves down the
//    chain only when purged.
// A raw event (role kBoth) entering the first slice is processed as both
// copies, per the paper's footnote "the copies can be made by the first
// binary sliced join".
//
// One-way mode (A[Ws,We] s|>< B) stores only stream A; A tuples act as
// females and B tuples as males, which is exactly the execution of Fig. 6 /
// Table 2.
//
// N-way trees (composite-left mode): a chain at level k >= 1 of a left-deep
// join tree joins the previous level's composite results (its "left"
// input, stored in a CompositeJoinState) against the tuples of stream k+1
// (its "right" input). Composites follow exactly the binary male/female
// discipline — the binary chain is the degenerate case where the left
// entries have a single constituent. A probe matches the composite's
// `anchor` constituent against the right tuple, and each match emits the
// composite extended by the right tuple.
//
// After each male's probe the operator emits a punctuation carrying the
// male's timestamp on the result port: this is the paper's observation
// (Section 4.3) that male tuples act as punctuations [26] that let the
// downstream union merge slice outputs in timestamp order.
#ifndef STATESLICE_OPERATORS_SLICED_WINDOW_JOIN_H_
#define STATESLICE_OPERATORS_SLICED_WINDOW_JOIN_H_

#include <string>
#include <vector>

#include "src/operators/join_condition.h"
#include "src/operators/join_state.h"
#include "src/runtime/operator.h"

namespace stateslice {

// Half-open window slice [start, end) in ticks (kTime) or tuple ranks
// (kCount). A slice with start == 0 and end == W is equivalent to a regular
// window W (Definition 1: A[W] |>< B = A[0,W] s|>< B).
struct SliceRange {
  WindowKind kind = WindowKind::kTime;
  int64_t start = 0;
  int64_t end = 0;

  static SliceRange Time(Duration start, Duration end) {
    return SliceRange{WindowKind::kTime, start, end};
  }
  static SliceRange TimeSeconds(double start_s, double end_s) {
    return SliceRange{WindowKind::kTime, SecondsToTicks(start_s),
                      SecondsToTicks(end_s)};
  }
  static SliceRange Count(int64_t start, int64_t end) {
    return SliceRange{WindowKind::kCount, start, end};
  }

  int64_t extent() const { return end - start; }
  std::string DebugString() const;

  friend bool operator==(const SliceRange&, const SliceRange&) = default;
};

// Execution flavor of a sliced join.
enum class SlicedJoinMode {
  kBinary,   // Definition 3: both inputs sliced
  kOneWayA,  // Definition 1: A sliced, B probes-and-propagates
};

// Construction options for SlicedWindowJoin (namespace scope so `= {}`
// default arguments work within the class definition).
struct SlicedJoinOptions {
  SlicedJoinMode mode = SlicedJoinMode::kBinary;
  JoinCondition condition = JoinCondition::EquiKey();
  // Emit a punctuation after each male's probe (Section 4.3). On for
  // chain slices feeding unions; off for standalone uses.
  bool punctuate_results = true;
  // Verify W_start <= T_male - T_female < W_end during probes. A slice
  // inside a chain never needs this (Lemma 1 guarantees it); standalone
  // slices (e.g. Definition 1 unit tests) turn it on. Binary mode only.
  bool strict_bounds = false;
  // N-way tree level >= 1: the left input carries CompositeTuple events
  // (the previous level's results). kTime windows only.
  bool composite_left = false;
  // Stream ids of this level's two inputs. `left_stream` classifies plain
  // tuples in binary/one-way mode (composite events are always left);
  // `right_stream` is the stream whose tuples this level appends.
  StreamId left_stream = StreamSide::kA;
  StreamId right_stream = StreamSide::kB;
  // composite_left: constituent index of the left entries that the right
  // stream's join condition anchors to (the earlier stream it joins with).
  int anchor = 0;
  // Constituents per left entry (StateSize metric: state memory counts
  // stored tuples, and one composite holds `left_arity` of them).
  int left_arity = 1;
  // Maintain a per-key hash index on the states so kEquiKey probes are
  // O(matches) bucket lookups (see join_state.h). No effect on results or
  // on the paper-unit cost counters; off forces the nested-loop probe
  // (bench_probe_index's baseline arm).
  bool use_key_index = true;
};

// One slice of a (possibly shared) window join.
//
// Ports:
//   input 0            — chain events: raw events (kBoth) at the chain head,
//                        male/female tagged events further down; events must
//                        arrive in global timestamp order
//   output kResultPort — JoinResult events + per-male punctuations
//   output kNextPort   — purged females + propagated males toward the next
//                        slice (unattached at the chain tail, where events
//                        are discarded per Fig. 6 "if exists")
class SlicedWindowJoin : public Operator {
 public:
  static constexpr int kResultPort = 0;
  static constexpr int kNextPort = 1;

  using Mode = SlicedJoinMode;
  using Options = SlicedJoinOptions;

  SlicedWindowJoin(std::string name, SliceRange range, Options options = {});

  void Process(Event event, int input_port) override;
  // Run path: the devirtualized per-event loop (one virtual hop per run).
  void OnRun(EventRun& run, int input_port) override;
  void Finish() override;

  // Stored tuples across both states; composite entries count one per
  // constituent (the paper's state-memory metric counts tuples).
  size_t StateSize() const override {
    return state_a_.size() + state_b_.size() +
           state_c_.size() * static_cast<size_t>(options_.left_arity);
  }

  // Joins dominate per-event cost (cross-purge + probe over window state);
  // weigh them heavily so stage partitioning splits the chain evenly.
  double SchedulingWeight() const override { return 8.0; }

  const SliceRange& range() const { return range_; }
  const JoinState& state_a() const { return state_a_; }
  const JoinState& state_b() const { return state_b_; }
  const CompositeJoinState& composite_state() const { return state_c_; }
  const Options& options() const { return options_; }

  // --- online migration hooks (Section 5.3) ---------------------------
  // Shrinks or widens this slice's range in place. States adapt lazily:
  // a narrowed end purges extra tuples into the next queue on the next
  // male arrival, exactly as the paper describes for online splitting.
  void SetRange(SliceRange range);

  // Mutable state access for merge migration (concatenating states).
  JoinState* mutable_state_a() { return &state_a_; }
  JoinState* mutable_state_b() { return &state_b_; }
  CompositeJoinState* mutable_composite_state() { return &state_c_; }

 private:
  void ProcessMale(const Tuple& t);
  void ProcessFemale(const Tuple& t);
  void ProcessMaleComposite(const CompositeTuple& c);
  void ProcessFemaleComposite(const CompositeTuple& c);
  bool IsLeft(const Tuple& t) const {
    return t.side == options_.left_stream;
  }
  JoinState* StateOf(StreamId side) {
    return side == options_.left_stream ? &state_a_ : &state_b_;
  }

  SliceRange range_;
  Options options_;
  JoinState state_a_;           // left singles (binary / one-way modes)
  JoinState state_b_;           // right singles
  CompositeJoinState state_c_;  // left composites (composite_left mode)
  // Per-arrival scratch buffers, cleared and reused so the hot path never
  // reallocates (purge hands expired entries back through these).
  std::vector<Tuple> purged_scratch_;
  std::vector<Tuple> evicted_scratch_;
  std::vector<CompositeTuple> purged_composites_scratch_;
};

}  // namespace stateslice

#endif  // STATESLICE_OPERATORS_SLICED_WINDOW_JOIN_H_
