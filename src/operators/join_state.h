// JoinState: the window state of one side of a (sliced) window join.
//
// Holds entries of one input in arrival order (oldest first). Supports the
// three primitive steps of the paper's join execution (Fig. 1 / Fig. 6):
// insert, cross-purge (with expired entries optionally handed back so a
// sliced join can propagate them down the chain), and probe.
//
// The state is a template over its entry type:
//  - BasicJoinState<Tuple>          (alias JoinState) — a plain stream
//    side, the binary-join case;
//  - BasicJoinState<CompositeTuple> (alias CompositeJoinState) — the left
//    input of a sliced chain at level >= 1 of an N-way join tree, whose
//    entries are the composite results of the previous level. An entry's
//    event time is its max-constituent timestamp, so the purge discipline
//    is unchanged.
//
// Window kinds:
//  - kTime:  an entry expires when now - ts >= extent; purging happens on
//    opposite-stream arrivals (cross-purge, footnote 1 of the paper).
//  - kCount: the state keeps the `extent` most recent entries; "purging" is
//    eviction on insert, which is how count-based slices propagate tuples
//    down a chain (the rank of a tuple only changes when its own stream
//    receives a new tuple).
//
// Probe execution (the hash index):
//
// Storage is a SlotRing — a ring buffer with stable monotone slot ids —
// plus an optional per-key hash index (join key -> ascending slot ids).
// With the index enabled (EnableKeyIndex; operators turn it on when their
// join condition is kEquiKey), an equi probe is a single bucket lookup that
// touches only the matching entries: O(matches) instead of the O(window)
// nested-loop scan. Because purge removes entries strictly oldest-first, an
// indexed slot id is live iff id >= first live id — so cross-purge never
// touches the index (O(expired)); stale ids are pruned lazily from the
// front of a bucket on probe and the whole index is rebuilt (amortized
// O(1) per purged entry) when stale ids exceed twice the live-entry
// count. Non-equi
// conditions (kModSum) keep the nested-loop path behind the condition-kind
// dispatch in Probe().
//
// Cost accounting is two-axis (see src/common/cost_counters.h): every probe
// reports the paper's *logical* comparison count (= state size, Section 3)
// unchanged, plus the *physical* key lookups / entries visited that the
// index actually performed.
#ifndef STATESLICE_OPERATORS_JOIN_STATE_H_
#define STATESLICE_OPERATORS_JOIN_STATE_H_

#include <cstddef>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/slot_ring.h"
#include "src/common/tuple.h"
#include "src/operators/join_condition.h"
#include "src/operators/window_spec.h"

namespace stateslice {

// Event time of a state entry: arrival timestamp for a stream tuple, the
// max-constituent timestamp for a composite.
inline TimePoint EntryTime(const Tuple& t) { return t.timestamp; }
inline TimePoint EntryTime(const CompositeTuple& c) { return c.timestamp(); }

// What one probe cost. `comparisons` is the paper's logical unit (one per
// stored entry, the Section 3 cost model); the other fields are the
// physical work the chosen execution path performed.
struct ProbeStats {
  uint64_t comparisons = 0;      // logical: state size scanned (paper unit)
  uint64_t key_lookups = 0;      // physical: hash-bucket lookups
  uint64_t entries_visited = 0;  // physical: entries actually examined
};

// Ordered window state for one input of a join.
template <typename EntryT>
class BasicJoinState {
 public:
  explicit BasicJoinState(WindowSpec window) : window_(window) {}

  // Turns on the per-key hash index. For composite entries, `anchor` names
  // the constituent whose key the index (and every indexed probe) uses —
  // the earlier stream this state's right input joins with. Rebuilds from
  // current contents, so it may be enabled at any point.
  void EnableKeyIndex(int anchor = 0) {
    indexed_ = true;
    index_anchor_ = anchor;
    RebuildIndex();
  }

  bool key_index_enabled() const { return indexed_; }
  int index_anchor() const { return index_anchor_; }

  // Appends `e` (arrival order; event times must be non-decreasing). For
  // count windows, evicts overflow into `evicted` (oldest first) when
  // non-null, else discards it. Time windows never evict on insert.
  void Insert(const EntryT& e, std::vector<EntryT>* evicted = nullptr) {
    if (!entries_.empty()) {
      SLICE_CHECK_LE(EntryTime(entries_.back()), EntryTime(e));
    }
    const int64_t id = entries_.push_back(e);
    if (indexed_) {
      index_[KeyOf(e)].push_back(id);
      ++upkeep_;
    }
    if (window_.kind == WindowKind::kCount) {
      // Count windows purge on insertion: keep the newest `extent` entries.
      while (static_cast<int64_t>(entries_.size()) > window_.extent) {
        if (evicted != nullptr) evicted->push_back(entries_.front());
        PopOldest();
      }
      MaybeCompactIndex();
    }
  }

  // Cross-purge against an arriving opposite-input event at time `now`
  // (paper Fig. 1 step 1 / Fig. 6 step 1). Only meaningful for kTime
  // windows (kCount purges on insert and returns 0 here). Expired entries
  // are appended to `purged` (oldest first) when non-null. Returns the
  // number of timestamp comparisons performed (cost-model unit). O(expired)
  // regardless of the index: expired slot ids go stale in place and are
  // pruned lazily.
  uint64_t Purge(TimePoint now, std::vector<EntryT>* purged) {
    if (window_.kind == WindowKind::kCount) return 0;  // purge-on-insert
    uint64_t comparisons = 0;
    while (!entries_.empty()) {
      ++comparisons;
      // Window semantics (Section 2): entry is alive iff now - ts < extent.
      if (now - EntryTime(entries_.front()) < window_.extent) break;
      if (purged != nullptr) purged->push_back(entries_.front());
      PopOldest();
    }
    MaybeCompactIndex();
    return comparisons;
  }

  // Nested-loop probe with an arbitrary match functor: calls
  // `emit(entry)` for every stored entry for which `match(entry)` holds
  // (oldest first). The logical comparison count equals the state size —
  // the unit the paper's cost model charges per probe (Section 3).
  template <typename MatchFn, typename EmitFn>
  ProbeStats ProbeWith(MatchFn&& match, EmitFn&& emit) const {
    entries_.ForEach([&](int64_t, const EntryT& e) {
      if (match(e)) emit(e);
    });
    ProbeStats stats;
    stats.comparisons = entries_.size();
    stats.entries_visited = entries_.size();
    return stats;
  }

  // Probe against a stream tuple under `cond`, dispatching on the
  // condition kind: kEquiKey with the index enabled takes the O(matches)
  // bucket path, everything else the nested loop. For composite entries
  // the condition is evaluated on the constituent at `anchor` (the earlier
  // stream the probing stream joins with; ignored for plain tuple
  // entries). Matches are emitted oldest-first on both paths, so results
  // are byte-identical. Non-const: the indexed path prunes stale slot ids.
  template <typename EmitFn>
  ProbeStats Probe(const Tuple& probe, const JoinCondition& cond,
                   EmitFn&& emit, int anchor = 0) {
    if (indexed_ && cond.kind == JoinCondition::Kind::kEquiKey) {
      if constexpr (!std::is_same_v<EntryT, Tuple>) {
        // The index was built over one fixed anchor constituent.
        SLICE_CHECK_EQ(anchor, index_anchor_);
      }
      return ProbeIndexed(probe.key, emit);
    }
    if constexpr (std::is_same_v<EntryT, Tuple>) {
      (void)anchor;
      return ProbeWith([&](const Tuple& e) { return cond.Match(e, probe); },
                       emit);
    } else {
      return ProbeWith(
          [&](const EntryT& e) { return cond.Match(e.part(anchor), probe); },
          emit);
    }
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const WindowSpec& window() const { return window_; }

  // Oldest and newest stored entries; state must be non-empty.
  const EntryT& Oldest() const { return entries_.front(); }
  const EntryT& Newest() const { return entries_.back(); }

  // Snapshot for tests/traces (oldest first).
  std::vector<EntryT> tuples() const {
    std::vector<EntryT> all;
    all.reserve(entries_.size());
    entries_.ForEach(
        [&](int64_t, const EntryT& e) { all.push_back(e); });
    return all;
  }

  // Removes and returns all entries (oldest first); used by online chain
  // migration when merging two adjacent slices (Section 5.3). Clears the
  // index (nothing left to point at).
  std::vector<EntryT> TakeAll() {
    std::vector<EntryT> all = tuples();
    entries_.clear();
    index_.clear();
    stale_ids_ = 0;
    return all;
  }

  // Prepends `older` (which must be entirely older than current contents);
  // the other half of slice-merge migration. Splices the prepended entries
  // into the index by rebuilding it (migration is rare and O(state)
  // already).
  void PrependOlder(const std::vector<EntryT>& older) {
    if (!older.empty() && !entries_.empty()) {
      SLICE_CHECK_LE(EntryTime(older.back()), EntryTime(entries_.front()));
    }
    for (auto it = older.rbegin(); it != older.rend(); ++it) {
      entries_.push_front(*it);
    }
    if (indexed_ && !older.empty()) RebuildIndex();
  }

  // Mutates the window extent; online migration uses this to widen or
  // shrink a slice in place. The new extent takes effect on the next
  // purge/insert. The index is untouched: entries (and their slot ids)
  // don't move, so it stays valid.
  void set_window(WindowSpec window) { window_ = window; }

  // Asserts (CHECK-fails on violation) that the index exactly covers the
  // live entries: every live entry's id appears in the bucket of its key,
  // every indexed id is either live with a matching key or stale, buckets
  // are ascending, and the stale count matches. Migration validation and
  // the fuzz suites call this after every mutation burst.
  void CheckIndexConsistency() const {
    if (!indexed_) return;
    uint64_t live = 0, stale = 0;
    for (const auto& [key, ids] : index_) {
      SLICE_CHECK(!ids.empty());
      for (size_t i = 0; i < ids.size(); ++i) {
        if (i > 0) SLICE_CHECK_LT(ids[i - 1], ids[i]);
        if (ids[i] < entries_.first_id()) {
          ++stale;
          continue;
        }
        SLICE_CHECK_LT(ids[i], entries_.end_id());
        SLICE_CHECK_EQ(KeyOf(entries_.at_id(ids[i])), key);
        ++live;
      }
    }
    SLICE_CHECK_EQ(live, static_cast<uint64_t>(entries_.size()));
    SLICE_CHECK_EQ(stale, stale_ids_);
  }

  // Physical work spent maintaining the index since the last call (index
  // appends + stale prunes + rebuild visits); the owning operator drains
  // this into PhysCategory::kIndexUpkeep.
  uint64_t TakeIndexUpkeep() { return std::exchange(upkeep_, uint64_t{0}); }

 private:
  // The key one entry is indexed under.
  int64_t KeyOf(const EntryT& e) const {
    if constexpr (std::is_same_v<EntryT, Tuple>) {
      return e.key;
    } else {
      return e.part(index_anchor_).key;
    }
  }

  void PopOldest() {
    entries_.pop_front();
    if (indexed_) ++stale_ids_;  // its bucket id is pruned lazily
  }

  // Rebuilds the index when stale ids exceed twice the live entries (plus
  // a floor so tiny states don't rebuild constantly). Amortized O(1) per
  // purged entry: a rebuild visits size() entries and needs
  // > 2 * size() + 64 purges since the last rebuild to trigger.
  void MaybeCompactIndex() {
    if (!indexed_ || stale_ids_ <= 64 + 2 * entries_.size()) return;
    RebuildIndex();
  }

  void RebuildIndex() {
    index_.clear();
    stale_ids_ = 0;
    entries_.ForEach([&](int64_t id, const EntryT& e) {
      index_[KeyOf(e)].push_back(id);
    });
    upkeep_ += entries_.size();
  }

  // O(matches) equi probe: one bucket lookup, stale ids pruned off the
  // bucket front (ids are ascending and staleness is id < first live id).
  template <typename EmitFn>
  ProbeStats ProbeIndexed(int64_t key, EmitFn&& emit) {
    ProbeStats stats;
    stats.comparisons = entries_.size();  // paper-unit logical charge
    stats.key_lookups = 1;
    const auto it = index_.find(key);
    if (it == index_.end()) return stats;
    std::vector<int64_t>& ids = it->second;
    size_t drop = 0;
    while (drop < ids.size() && ids[drop] < entries_.first_id()) ++drop;
    if (drop > 0) {
      ids.erase(ids.begin(), ids.begin() + static_cast<ptrdiff_t>(drop));
      stale_ids_ -= drop;
      upkeep_ += drop;
    }
    if (ids.empty()) {
      index_.erase(it);
      return stats;
    }
    for (const int64_t id : ids) {
      emit(entries_.at_id(id));
    }
    stats.entries_visited = ids.size();
    return stats;
  }

  WindowSpec window_;
  SlotRing<EntryT> entries_;
  bool indexed_ = false;
  int index_anchor_ = 0;  // composite entries: constituent the key is from
  // Join key -> ascending slot ids of (mostly) live entries holding it.
  std::unordered_map<int64_t, std::vector<int64_t>> index_;
  uint64_t stale_ids_ = 0;  // indexed ids below entries_.first_id()
  uint64_t upkeep_ = 0;     // physical index-maintenance work, undrained
};

// The binary-join window state (one stream side).
using JoinState = BasicJoinState<Tuple>;
// Left-input state of a sliced chain at tree level >= 1.
using CompositeJoinState = BasicJoinState<CompositeTuple>;

}  // namespace stateslice

#endif  // STATESLICE_OPERATORS_JOIN_STATE_H_
