// JoinState: the window state of one side of a (sliced) window join.
//
// Holds tuples of one stream in arrival order (oldest first). Supports the
// three primitive steps of the paper's join execution (Fig. 1 / Fig. 6):
// insert, cross-purge (with expired tuples optionally handed back so a
// sliced join can propagate them down the chain), and probe.
//
// Window kinds:
//  - kTime:  a tuple expires when now - ts >= extent; purging happens on
//    opposite-stream arrivals (cross-purge, footnote 1 of the paper).
//  - kCount: the state keeps the `extent` most recent tuples; "purging" is
//    eviction on insert, which is how count-based slices propagate tuples
//    down a chain (the rank of a tuple only changes when its own stream
//    receives a new tuple).
#ifndef STATESLICE_OPERATORS_JOIN_STATE_H_
#define STATESLICE_OPERATORS_JOIN_STATE_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "src/common/tuple.h"
#include "src/operators/join_condition.h"
#include "src/operators/window_spec.h"

namespace stateslice {

// Ordered window state for one stream side of a join.
class JoinState {
 public:
  explicit JoinState(WindowSpec window) : window_(window) {}

  // Appends `t` (arrival order; timestamps must be non-decreasing). For
  // count windows, evicts overflow into `evicted` (oldest first) when
  // non-null, else discards it. Time windows never evict on insert.
  void Insert(const Tuple& t, std::vector<Tuple>* evicted = nullptr);

  // Cross-purge against an arriving opposite-stream tuple at time `now`
  // (paper Fig. 1 step 1 / Fig. 6 step 1). Only meaningful for kTime
  // windows (kCount purges on insert and returns 0 here). Expired tuples
  // are appended to `purged` (oldest first) when non-null. Returns the
  // number of timestamp comparisons performed (cost-model unit).
  uint64_t Purge(TimePoint now, std::vector<Tuple>* purged);

  // Nested-loop probe: appends all stored tuples matching `probe` under
  // `cond` to `matches` (oldest first). Returns the number of comparisons,
  // which equals the state size — the unit the paper's cost model charges
  // per probe (Section 3).
  uint64_t Probe(const Tuple& probe, const JoinCondition& cond,
                 std::vector<Tuple>* matches) const;

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const WindowSpec& window() const { return window_; }

  // Oldest and newest stored tuples; state must be non-empty.
  const Tuple& Oldest() const { return tuples_.front(); }
  const Tuple& Newest() const { return tuples_.back(); }

  // Read-only view for tests/traces (oldest first).
  const std::deque<Tuple>& tuples() const { return tuples_; }

  // Removes and returns all tuples (oldest first); used by online chain
  // migration when merging two adjacent slices (Section 5.3).
  std::vector<Tuple> TakeAll();

  // Prepends `older` (which must be entirely older than current contents);
  // the other half of slice-merge migration.
  void PrependOlder(const std::vector<Tuple>& older);

  // Mutates the window extent; online migration uses this to widen or
  // shrink a slice in place. The new extent takes effect on the next
  // purge/insert.
  void set_window(WindowSpec window) { window_ = window; }

 private:
  WindowSpec window_;
  std::deque<Tuple> tuples_;
};

}  // namespace stateslice

#endif  // STATESLICE_OPERATORS_JOIN_STATE_H_
