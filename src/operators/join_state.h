// JoinState: the window state of one side of a (sliced) window join.
//
// Holds entries of one input in arrival order (oldest first). Supports the
// three primitive steps of the paper's join execution (Fig. 1 / Fig. 6):
// insert, cross-purge (with expired entries optionally handed back so a
// sliced join can propagate them down the chain), and probe.
//
// The state is a template over its entry type:
//  - BasicJoinState<Tuple>          (alias JoinState) — a plain stream
//    side, the binary-join case;
//  - BasicJoinState<CompositeTuple> (alias CompositeJoinState) — the left
//    input of a sliced chain at level >= 1 of an N-way join tree, whose
//    entries are the composite results of the previous level. An entry's
//    event time is its max-constituent timestamp, so the purge discipline
//    is unchanged.
//
// Window kinds:
//  - kTime:  an entry expires when now - ts >= extent; purging happens on
//    opposite-stream arrivals (cross-purge, footnote 1 of the paper).
//  - kCount: the state keeps the `extent` most recent entries; "purging" is
//    eviction on insert, which is how count-based slices propagate tuples
//    down a chain (the rank of a tuple only changes when its own stream
//    receives a new tuple).
#ifndef STATESLICE_OPERATORS_JOIN_STATE_H_
#define STATESLICE_OPERATORS_JOIN_STATE_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "src/common/check.h"
#include "src/common/tuple.h"
#include "src/operators/join_condition.h"
#include "src/operators/window_spec.h"

namespace stateslice {

// Event time of a state entry: arrival timestamp for a stream tuple, the
// max-constituent timestamp for a composite.
inline TimePoint EntryTime(const Tuple& t) { return t.timestamp; }
inline TimePoint EntryTime(const CompositeTuple& c) { return c.timestamp(); }

// Ordered window state for one input of a join.
template <typename EntryT>
class BasicJoinState {
 public:
  explicit BasicJoinState(WindowSpec window) : window_(window) {}

  // Appends `e` (arrival order; event times must be non-decreasing). For
  // count windows, evicts overflow into `evicted` (oldest first) when
  // non-null, else discards it. Time windows never evict on insert.
  void Insert(const EntryT& e, std::vector<EntryT>* evicted = nullptr) {
    if (!entries_.empty()) {
      SLICE_CHECK_LE(EntryTime(entries_.back()), EntryTime(e));
    }
    entries_.push_back(e);
    if (window_.kind == WindowKind::kCount) {
      // Count windows purge on insertion: keep the newest `extent` entries.
      while (static_cast<int64_t>(entries_.size()) > window_.extent) {
        if (evicted != nullptr) evicted->push_back(entries_.front());
        entries_.pop_front();
      }
    }
  }

  // Cross-purge against an arriving opposite-input event at time `now`
  // (paper Fig. 1 step 1 / Fig. 6 step 1). Only meaningful for kTime
  // windows (kCount purges on insert and returns 0 here). Expired entries
  // are appended to `purged` (oldest first) when non-null. Returns the
  // number of timestamp comparisons performed (cost-model unit).
  uint64_t Purge(TimePoint now, std::vector<EntryT>* purged) {
    if (window_.kind == WindowKind::kCount) return 0;  // purge-on-insert
    uint64_t comparisons = 0;
    while (!entries_.empty()) {
      ++comparisons;
      // Window semantics (Section 2): entry is alive iff now - ts < extent.
      if (now - EntryTime(entries_.front()) < window_.extent) break;
      if (purged != nullptr) purged->push_back(entries_.front());
      entries_.pop_front();
    }
    return comparisons;
  }

  // Nested-loop probe with an arbitrary match functor: appends all stored
  // entries for which `match(entry)` holds to `matches` (oldest first).
  // Returns the number of comparisons, which equals the state size — the
  // unit the paper's cost model charges per probe (Section 3).
  template <typename MatchFn>
  uint64_t ProbeWith(MatchFn&& match, std::vector<EntryT>* matches) const {
    for (const EntryT& e : entries_) {
      if (match(e)) matches->push_back(e);
    }
    return entries_.size();
  }

  // Convenience probe against a stream tuple under `cond`. For composite
  // entries the condition is evaluated on the constituent at `anchor`
  // (the earlier stream the probing stream joins with; ignored for plain
  // tuple entries).
  uint64_t Probe(const Tuple& probe, const JoinCondition& cond,
                 std::vector<EntryT>* matches, int anchor = 0) const {
    if constexpr (std::is_same_v<EntryT, Tuple>) {
      (void)anchor;
      return ProbeWith(
          [&](const Tuple& e) { return cond.Match(e, probe); }, matches);
    } else {
      return ProbeWith(
          [&](const EntryT& e) { return cond.Match(e.part(anchor), probe); },
          matches);
    }
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const WindowSpec& window() const { return window_; }

  // Oldest and newest stored entries; state must be non-empty.
  const EntryT& Oldest() const { return entries_.front(); }
  const EntryT& Newest() const { return entries_.back(); }

  // Read-only view for tests/traces (oldest first).
  const std::deque<EntryT>& tuples() const { return entries_; }

  // Removes and returns all entries (oldest first); used by online chain
  // migration when merging two adjacent slices (Section 5.3).
  std::vector<EntryT> TakeAll() {
    std::vector<EntryT> all(entries_.begin(), entries_.end());
    entries_.clear();
    return all;
  }

  // Prepends `older` (which must be entirely older than current contents);
  // the other half of slice-merge migration.
  void PrependOlder(const std::vector<EntryT>& older) {
    if (!older.empty() && !entries_.empty()) {
      SLICE_CHECK_LE(EntryTime(older.back()), EntryTime(entries_.front()));
    }
    entries_.insert(entries_.begin(), older.begin(), older.end());
  }

  // Mutates the window extent; online migration uses this to widen or
  // shrink a slice in place. The new extent takes effect on the next
  // purge/insert.
  void set_window(WindowSpec window) { window_ = window; }

 private:
  WindowSpec window_;
  std::deque<EntryT> entries_;
};

// The binary-join window state (one stream side).
using JoinState = BasicJoinState<Tuple>;
// Left-input state of a sliced chain at tree level >= 1.
using CompositeJoinState = BasicJoinState<CompositeTuple>;

}  // namespace stateslice

#endif  // STATESLICE_OPERATORS_JOIN_STATE_H_
