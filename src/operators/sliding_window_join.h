// Regular (non-sliced) sliding-window join.
//
// Implements the paper's baseline join semantics (Section 2): the output of
// A[W1] |x| B[W2] is every pair (a, b) satisfying the join condition such
// that Tb - Ta < W1 or Ta - Tb < W2. Execution per arriving tuple is
// cross-purge, probe, insert (Fig. 1). The operator also runs in one-way
// mode (A[W] |>< B), where B tuples probe but are never stored (Section
// 4.1), and supports count-based windows.
#ifndef STATESLICE_OPERATORS_SLIDING_WINDOW_JOIN_H_
#define STATESLICE_OPERATORS_SLIDING_WINDOW_JOIN_H_

#include <string>

#include "src/operators/join_condition.h"
#include "src/operators/join_state.h"
#include "src/runtime/operator.h"

namespace stateslice {

// Binary or one-way sliding-window join.
//
// Ports:
//   input 0            — tuples of both streams in global timestamp order
//                        (the `side` field distinguishes A from B)
//   output kResultPort — JoinResult events (+ punctuations)
//
// When `punctuate_results` is set, the operator emits a punctuation with the
// processed tuple's timestamp after each arrival, so downstream
// order-preserving unions can merge without unbounded buffering. Incoming
// punctuations are forwarded.
// Execution flavor of a regular window join.
enum class SlidingJoinMode {
  kBinary,   // both sides keep state
  kOneWayA,  // only A keeps state; B tuples probe-and-forget
};

// Construction options for SlidingWindowJoin (namespace scope so `= {}`
// default arguments work within the class definition).
struct SlidingJoinOptions {
  SlidingJoinMode mode = SlidingJoinMode::kBinary;
  JoinCondition condition = JoinCondition::EquiKey();
  bool punctuate_results = false;
  // Maintain per-key hash indexes so kEquiKey probes are O(matches); see
  // join_state.h. Off forces the nested-loop probe path.
  bool use_key_index = true;
};

class SlidingWindowJoin : public Operator {
 public:
  static constexpr int kResultPort = 0;

  using Mode = SlidingJoinMode;
  using Options = SlidingJoinOptions;

  SlidingWindowJoin(std::string name, WindowSpec window_a, WindowSpec window_b,
                    Options options = {});

  void Process(Event event, int input_port) override;
  // Run path: the devirtualized per-event loop (one virtual hop per run).
  void OnRun(EventRun& run, int input_port) override;
  void Finish() override;

  size_t StateSize() const override {
    return state_a_.size() + state_b_.size();
  }

  // See SlicedWindowJoin::SchedulingWeight.
  double SchedulingWeight() const override { return 8.0; }

  const JoinState& state_a() const { return state_a_; }
  const JoinState& state_b() const { return state_b_; }

  // Checkpoint support (Engine::Restore): mutable state access so a
  // restored plan can be re-seeded with serialized window contents.
  JoinState* mutable_state_a() { return &state_a_; }
  JoinState* mutable_state_b() { return &state_b_; }

 private:
  void ProcessTuple(const Tuple& t);

  Options options_;
  JoinState state_a_;
  JoinState state_b_;
};

}  // namespace stateslice

#endif  // STATESLICE_OPERATORS_SLIDING_WINDOW_JOIN_H_
