#include "src/operators/sliced_window_join.h"

#include <sstream>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace stateslice {
namespace {

// The per-side JoinState of a slice purges by the slice's *end* window for
// time slices (a tuple leaves when its distance reaches W_end); count slices
// hold at most extent() tuples (ranks [start, end) relative to their own
// stream).
WindowSpec StateWindowFor(const SliceRange& range) {
  if (range.kind == WindowKind::kTime) {
    return WindowSpec::Time(range.end);
  }
  return WindowSpec::Count(range.extent());
}

}  // namespace

std::string SliceRange::DebugString() const {
  std::ostringstream out;
  out << (kind == WindowKind::kTime ? "time" : "count") << "[" << start << ","
      << end << ")";
  return out.str();
}

SlicedWindowJoin::SlicedWindowJoin(std::string name, SliceRange range,
                                   Options options)
    : Operator(std::move(name)),
      range_(range),
      options_(options),
      state_a_(StateWindowFor(range)),
      state_b_(StateWindowFor(range)),
      state_c_(StateWindowFor(range)) {
  SLICE_CHECK_GE(range.start, 0);
  SLICE_CHECK_GT(range.end, range.start);
  if (options_.composite_left) {
    // Composite chains exist only at levels >= 1 of a time-windowed tree.
    SLICE_CHECK(range.kind == WindowKind::kTime);
    SLICE_CHECK(options_.mode == Mode::kBinary);
    SLICE_CHECK_GE(options_.anchor, 0);
    SLICE_CHECK_LT(options_.anchor, options_.left_arity);
  }
  if (options_.use_key_index &&
      options_.condition.kind == JoinCondition::Kind::kEquiKey) {
    state_a_.EnableKeyIndex();
    state_b_.EnableKeyIndex();
    state_c_.EnableKeyIndex(options_.anchor);
  }
}

void SlicedWindowJoin::SetRange(SliceRange range) {
  SLICE_CHECK(range.kind == range_.kind);
  range_ = range;
  state_a_.set_window(StateWindowFor(range));
  state_b_.set_window(StateWindowFor(range));
  state_c_.set_window(StateWindowFor(range));
}

void SlicedWindowJoin::Process(Event event, int input_port) {
  SLICE_CHECK_EQ(input_port, 0);
  if (IsPunctuation(event)) {
    // Watermarks travel both to the union (results) and down the chain.
    Emit(kResultPort, event);
    Emit(kNextPort, event);
    return;
  }
  if (const CompositeTuple* c = std::get_if<CompositeTuple>(&event)) {
    // Composite events are this level's left input (previous tree level's
    // results) and follow the same role discipline as raw tuples.
    SLICE_CHECK(options_.composite_left);
    switch (c->role) {
      case TupleRole::kBoth:
        ProcessFemaleComposite(*c);
        ProcessMaleComposite(*c);
        break;
      case TupleRole::kMale:
        ProcessMaleComposite(*c);
        break;
      case TupleRole::kFemale:
        ProcessFemaleComposite(*c);
        break;
    }
    return;
  }
  SLICE_CHECK(IsTuple(event));
  const Tuple& t = std::get<Tuple>(event);

  if (options_.mode == Mode::kOneWayA) {
    // One-way execution (Fig. 6): left tuples fill the state (female role),
    // right tuples purge + probe + propagate (male role).
    if (IsLeft(t)) {
      ProcessFemale(t);
    } else {
      ProcessMale(t);
    }
    return;
  }

  switch (t.role) {
    case TupleRole::kBoth: {
      // Chain head: capture the raw tuple as its two reference copies
      // (female fills state, male probes the opposite state), per the
      // footnote to Section 4.2.
      ProcessFemale(t);
      ProcessMale(t);
      break;
    }
    case TupleRole::kMale:
      ProcessMale(t);
      break;
    case TupleRole::kFemale:
      ProcessFemale(t);
      break;
  }
}

void SlicedWindowJoin::ProcessMale(const Tuple& t) {
  if (options_.composite_left) {
    // A right-stream male purges + probes the composite (left) state; each
    // match extends a stored composite by this tuple.
    SLICE_CHECK_EQ(t.side, options_.right_stream);
    purged_composites_scratch_.clear();
    Charge(CostCategory::kPurge,
           state_c_.Purge(t.timestamp, &purged_composites_scratch_));
    for (const CompositeTuple& f : purged_composites_scratch_) {
      Emit(kNextPort, f);
    }
    const ProbeStats stats = state_c_.Probe(
        t, options_.condition,
        [&](const CompositeTuple& f) {
          EmitMove(kResultPort, f.WithAppended(t));
        },
        options_.anchor);
    ChargeProbe(stats, &state_c_);
    Tuple male = t;
    male.role = TupleRole::kMale;
    Emit(kNextPort, male);
    if (options_.punctuate_results) {
      Emit(kResultPort, Punctuation{.watermark = t.timestamp});
    }
    return;
  }

  JoinState* opposite = IsLeft(t) ? &state_b_ : &state_a_;

  // 1. Cross-purge (Fig. 9): expired opposite-side females move into the
  //    queue toward the next slice *ahead of* this male, preserving queue
  //    timestamp order and Lemma 1's insertion-before-probe guarantee.
  purged_scratch_.clear();
  Charge(CostCategory::kPurge, opposite->Purge(t.timestamp,
                                               &purged_scratch_));
  for (const Tuple& f : purged_scratch_) {
    Emit(kNextPort, f);
  }

  // 2. Probe and emit joined results (oldest match first, same order on
  //    the indexed and nested-loop paths). State contents are within the
  //    slice range by Lemma 1, so no bound checks are needed in a chain;
  //    strict mode re-verifies for standalone use.
  const bool check_bounds =
      options_.strict_bounds && range_.kind == WindowKind::kTime;
  const bool probe_is_left = IsLeft(t);
  const ProbeStats stats =
      opposite->Probe(t, options_.condition, [&](const Tuple& f) {
        if (check_bounds) {
          const Duration d = t.timestamp - f.timestamp;
          if (d < range_.start || d >= range_.end) return;
        }
        // Result constituents are ordered left-then-right (FROM order).
        if (probe_is_left) {
          EmitMove(kResultPort, JoinResult{.a = t, .b = f});
        } else {
          EmitMove(kResultPort, JoinResult{.a = f, .b = t});
        }
      });
  ChargeProbe(stats, opposite);

  // 3. Propagate the male copy down the chain.
  Tuple male = t;
  male.role = TupleRole::kMale;
  Emit(kNextPort, male);

  if (options_.punctuate_results) {
    // The male acts as a punctuation (Section 4.3): all results of this
    // slice with timestamp <= T_male have been emitted above, and any
    // future male is newer.
    Emit(kResultPort, Punctuation{.watermark = t.timestamp});
  }
}

void SlicedWindowJoin::ProcessMaleComposite(const CompositeTuple& c) {
  // A composite male purges + probes the right-singles state; each match
  // extends this composite by the stored tuple. The anchor constituent
  // stands in as the probe tuple: every join condition is symmetric, so
  // Match(e, anchor) == Match(anchor, e) and the equi path can use the
  // right-singles key index.
  const TimePoint now = c.timestamp();
  purged_scratch_.clear();
  Charge(CostCategory::kPurge, state_b_.Purge(now, &purged_scratch_));
  for (const Tuple& f : purged_scratch_) {
    Emit(kNextPort, f);
  }
  const ProbeStats stats =
      state_b_.Probe(c.part(options_.anchor), options_.condition,
                     [&](const Tuple& f) {
                       EmitMove(kResultPort, c.WithAppended(f));
                     });
  ChargeProbe(stats, &state_b_);
  CompositeTuple male = c;
  male.role = TupleRole::kMale;
  EmitMove(kNextPort, std::move(male));
  if (options_.punctuate_results) {
    Emit(kResultPort, Punctuation{.watermark = now});
  }
}

void SlicedWindowJoin::ProcessFemale(const Tuple& t) {
  Tuple female = t;
  female.role = TupleRole::kFemale;
  if (options_.composite_left) {
    SLICE_CHECK_EQ(t.side, options_.right_stream);
    state_b_.Insert(female, nullptr);  // kTime: never evicts on insert
    ChargePhysical(PhysCategory::kIndexUpkeep, state_b_.TakeIndexUpkeep());
    return;
  }
  // Count-based slices purge on insert: the evicted tuple's rank crossed
  // the slice end, so it moves to the next slice.
  JoinState* state = StateOf(t.side);
  evicted_scratch_.clear();
  state->Insert(female, &evicted_scratch_);
  ChargePhysical(PhysCategory::kIndexUpkeep, state->TakeIndexUpkeep());
  for (const Tuple& e : evicted_scratch_) {
    Emit(kNextPort, e);
  }
}

void SlicedWindowJoin::ProcessFemaleComposite(const CompositeTuple& c) {
  CompositeTuple female = c;
  female.role = TupleRole::kFemale;
  state_c_.Insert(female, nullptr);  // kTime: never evicts on insert
  ChargePhysical(PhysCategory::kIndexUpkeep, state_c_.TakeIndexUpkeep());
}

void SlicedWindowJoin::Finish() {
  // End of all inputs: no further results from this slice.
  Emit(kResultPort, Punctuation{.watermark = kMaxTime});
}

void SlicedWindowJoin::OnRun(EventRun& run, int input_port) {
  for (Event& event : run) SlicedWindowJoin::Process(std::move(event), input_port);
}

}  // namespace stateslice
