#include "src/operators/sliced_window_join.h"

#include <sstream>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace stateslice {
namespace {

// The per-side JoinState of a slice purges by the slice's *end* window for
// time slices (a tuple leaves when its distance reaches W_end); count slices
// hold at most extent() tuples (ranks [start, end) relative to their own
// stream).
WindowSpec StateWindowFor(const SliceRange& range) {
  if (range.kind == WindowKind::kTime) {
    return WindowSpec::Time(range.end);
  }
  return WindowSpec::Count(range.extent());
}

}  // namespace

std::string SliceRange::DebugString() const {
  std::ostringstream out;
  out << (kind == WindowKind::kTime ? "time" : "count") << "[" << start << ","
      << end << ")";
  return out.str();
}

SlicedWindowJoin::SlicedWindowJoin(std::string name, SliceRange range,
                                   Options options)
    : Operator(std::move(name)),
      range_(range),
      options_(options),
      state_a_(StateWindowFor(range)),
      state_b_(StateWindowFor(range)) {
  SLICE_CHECK_GE(range.start, 0);
  SLICE_CHECK_GT(range.end, range.start);
}

void SlicedWindowJoin::SetRange(SliceRange range) {
  SLICE_CHECK(range.kind == range_.kind);
  range_ = range;
  state_a_.set_window(StateWindowFor(range));
  state_b_.set_window(StateWindowFor(range));
}

void SlicedWindowJoin::Process(Event event, int input_port) {
  SLICE_CHECK_EQ(input_port, 0);
  if (IsPunctuation(event)) {
    // Watermarks travel both to the union (results) and down the chain.
    Emit(kResultPort, event);
    Emit(kNextPort, event);
    return;
  }
  SLICE_CHECK(IsTuple(event));
  const Tuple& t = std::get<Tuple>(event);

  if (options_.mode == Mode::kOneWayA) {
    // One-way execution (Fig. 6): A tuples fill the state (female role),
    // B tuples purge + probe + propagate (male role).
    if (t.side == StreamSide::kA) {
      ProcessFemale(t);
    } else {
      ProcessMale(t);
    }
    return;
  }

  switch (t.role) {
    case TupleRole::kBoth: {
      // Chain head: capture the raw tuple as its two reference copies
      // (female fills state, male probes the opposite state), per the
      // footnote to Section 4.2.
      ProcessFemale(t);
      ProcessMale(t);
      break;
    }
    case TupleRole::kMale:
      ProcessMale(t);
      break;
    case TupleRole::kFemale:
      ProcessFemale(t);
      break;
  }
}

void SlicedWindowJoin::ProcessMale(const Tuple& t) {
  JoinState* opposite = StateOf(Opposite(t.side));

  // 1. Cross-purge (Fig. 9): expired opposite-side females move into the
  //    queue toward the next slice *ahead of* this male, preserving queue
  //    timestamp order and Lemma 1's insertion-before-probe guarantee.
  std::vector<Tuple> purged;
  Charge(CostCategory::kPurge, opposite->Purge(t.timestamp, &purged));
  for (const Tuple& f : purged) {
    Emit(kNextPort, f);
  }

  // 2. Probe and emit joined results. State contents are within the slice
  //    range by Lemma 1, so no bound checks are needed in a chain; strict
  //    mode re-verifies for standalone use.
  std::vector<Tuple> matches;
  Charge(CostCategory::kProbe, opposite->Probe(t, options_.condition,
                                               &matches));
  for (const Tuple& f : matches) {
    if (options_.strict_bounds && range_.kind == WindowKind::kTime) {
      const Duration d = t.timestamp - f.timestamp;
      if (d < range_.start || d >= range_.end) continue;
    }
    if (t.side == StreamSide::kA) {
      Emit(kResultPort, JoinResult{.a = t, .b = f});
    } else {
      Emit(kResultPort, JoinResult{.a = f, .b = t});
    }
  }

  // 3. Propagate the male copy down the chain.
  Tuple male = t;
  male.role = TupleRole::kMale;
  Emit(kNextPort, male);

  if (options_.punctuate_results) {
    // The male acts as a punctuation (Section 4.3): all results of this
    // slice with timestamp <= T_male have been emitted above, and any
    // future male is newer.
    Emit(kResultPort, Punctuation{.watermark = t.timestamp});
  }
}

void SlicedWindowJoin::ProcessFemale(const Tuple& t) {
  Tuple female = t;
  female.role = TupleRole::kFemale;
  // Count-based slices purge on insert: the evicted tuple's rank crossed
  // the slice end, so it moves to the next slice.
  std::vector<Tuple> evicted;
  StateOf(t.side)->Insert(female, &evicted);
  for (const Tuple& e : evicted) {
    Emit(kNextPort, e);
  }
}

void SlicedWindowJoin::Finish() {
  // End of all inputs: no further results from this slice.
  Emit(kResultPort, Punctuation{.watermark = kMaxTime});
}

}  // namespace stateslice
