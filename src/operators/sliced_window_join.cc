#include "src/operators/sliced_window_join.h"

#include <sstream>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace stateslice {
namespace {

// The per-side JoinState of a slice purges by the slice's *end* window for
// time slices (a tuple leaves when its distance reaches W_end); count slices
// hold at most extent() tuples (ranks [start, end) relative to their own
// stream).
WindowSpec StateWindowFor(const SliceRange& range) {
  if (range.kind == WindowKind::kTime) {
    return WindowSpec::Time(range.end);
  }
  return WindowSpec::Count(range.extent());
}

}  // namespace

std::string SliceRange::DebugString() const {
  std::ostringstream out;
  out << (kind == WindowKind::kTime ? "time" : "count") << "[" << start << ","
      << end << ")";
  return out.str();
}

SlicedWindowJoin::SlicedWindowJoin(std::string name, SliceRange range,
                                   Options options)
    : Operator(std::move(name)),
      range_(range),
      options_(options),
      state_a_(StateWindowFor(range)),
      state_b_(StateWindowFor(range)),
      state_c_(StateWindowFor(range)) {
  SLICE_CHECK_GE(range.start, 0);
  SLICE_CHECK_GT(range.end, range.start);
  if (options_.composite_left) {
    // Composite chains exist only at levels >= 1 of a time-windowed tree.
    SLICE_CHECK(range.kind == WindowKind::kTime);
    SLICE_CHECK(options_.mode == Mode::kBinary);
    SLICE_CHECK_GE(options_.anchor, 0);
    SLICE_CHECK_LT(options_.anchor, options_.left_arity);
  }
}

void SlicedWindowJoin::SetRange(SliceRange range) {
  SLICE_CHECK(range.kind == range_.kind);
  range_ = range;
  state_a_.set_window(StateWindowFor(range));
  state_b_.set_window(StateWindowFor(range));
  state_c_.set_window(StateWindowFor(range));
}

void SlicedWindowJoin::Process(Event event, int input_port) {
  SLICE_CHECK_EQ(input_port, 0);
  if (IsPunctuation(event)) {
    // Watermarks travel both to the union (results) and down the chain.
    Emit(kResultPort, event);
    Emit(kNextPort, event);
    return;
  }
  if (const CompositeTuple* c = std::get_if<CompositeTuple>(&event)) {
    // Composite events are this level's left input (previous tree level's
    // results) and follow the same role discipline as raw tuples.
    SLICE_CHECK(options_.composite_left);
    switch (c->role) {
      case TupleRole::kBoth:
        ProcessFemaleComposite(*c);
        ProcessMaleComposite(*c);
        break;
      case TupleRole::kMale:
        ProcessMaleComposite(*c);
        break;
      case TupleRole::kFemale:
        ProcessFemaleComposite(*c);
        break;
    }
    return;
  }
  SLICE_CHECK(IsTuple(event));
  const Tuple& t = std::get<Tuple>(event);

  if (options_.mode == Mode::kOneWayA) {
    // One-way execution (Fig. 6): left tuples fill the state (female role),
    // right tuples purge + probe + propagate (male role).
    if (IsLeft(t)) {
      ProcessFemale(t);
    } else {
      ProcessMale(t);
    }
    return;
  }

  switch (t.role) {
    case TupleRole::kBoth: {
      // Chain head: capture the raw tuple as its two reference copies
      // (female fills state, male probes the opposite state), per the
      // footnote to Section 4.2.
      ProcessFemale(t);
      ProcessMale(t);
      break;
    }
    case TupleRole::kMale:
      ProcessMale(t);
      break;
    case TupleRole::kFemale:
      ProcessFemale(t);
      break;
  }
}

void SlicedWindowJoin::ProcessMale(const Tuple& t) {
  if (options_.composite_left) {
    // A right-stream male purges + probes the composite (left) state; each
    // match extends a stored composite by this tuple.
    SLICE_CHECK_EQ(t.side, options_.right_stream);
    std::vector<CompositeTuple> purged;
    Charge(CostCategory::kPurge, state_c_.Purge(t.timestamp, &purged));
    for (const CompositeTuple& f : purged) {
      Emit(kNextPort, f);
    }
    std::vector<CompositeTuple> matches;
    Charge(CostCategory::kProbe,
           state_c_.Probe(t, options_.condition, &matches, options_.anchor));
    for (const CompositeTuple& f : matches) {
      Emit(kResultPort, f.WithAppended(t));
    }
    Tuple male = t;
    male.role = TupleRole::kMale;
    Emit(kNextPort, male);
    if (options_.punctuate_results) {
      Emit(kResultPort, Punctuation{.watermark = t.timestamp});
    }
    return;
  }

  JoinState* opposite = IsLeft(t) ? &state_b_ : &state_a_;

  // 1. Cross-purge (Fig. 9): expired opposite-side females move into the
  //    queue toward the next slice *ahead of* this male, preserving queue
  //    timestamp order and Lemma 1's insertion-before-probe guarantee.
  std::vector<Tuple> purged;
  Charge(CostCategory::kPurge, opposite->Purge(t.timestamp, &purged));
  for (const Tuple& f : purged) {
    Emit(kNextPort, f);
  }

  // 2. Probe and emit joined results. State contents are within the slice
  //    range by Lemma 1, so no bound checks are needed in a chain; strict
  //    mode re-verifies for standalone use.
  std::vector<Tuple> matches;
  Charge(CostCategory::kProbe, opposite->Probe(t, options_.condition,
                                               &matches));
  for (const Tuple& f : matches) {
    if (options_.strict_bounds && range_.kind == WindowKind::kTime) {
      const Duration d = t.timestamp - f.timestamp;
      if (d < range_.start || d >= range_.end) continue;
    }
    // Result constituents are ordered left-then-right (FROM order).
    if (IsLeft(t)) {
      Emit(kResultPort, JoinResult{.a = t, .b = f});
    } else {
      Emit(kResultPort, JoinResult{.a = f, .b = t});
    }
  }

  // 3. Propagate the male copy down the chain.
  Tuple male = t;
  male.role = TupleRole::kMale;
  Emit(kNextPort, male);

  if (options_.punctuate_results) {
    // The male acts as a punctuation (Section 4.3): all results of this
    // slice with timestamp <= T_male have been emitted above, and any
    // future male is newer.
    Emit(kResultPort, Punctuation{.watermark = t.timestamp});
  }
}

void SlicedWindowJoin::ProcessMaleComposite(const CompositeTuple& c) {
  // A composite male purges + probes the right-singles state; each match
  // extends this composite by the stored tuple.
  const TimePoint now = c.timestamp();
  std::vector<Tuple> purged;
  Charge(CostCategory::kPurge, state_b_.Purge(now, &purged));
  for (const Tuple& f : purged) {
    Emit(kNextPort, f);
  }
  std::vector<Tuple> matches;
  const JoinCondition& cond = options_.condition;
  const Tuple& anchor_part = c.part(options_.anchor);
  Charge(CostCategory::kProbe,
         state_b_.ProbeWith(
             [&](const Tuple& e) { return cond.Match(anchor_part, e); },
             &matches));
  for (const Tuple& f : matches) {
    Emit(kResultPort, c.WithAppended(f));
  }
  CompositeTuple male = c;
  male.role = TupleRole::kMale;
  Emit(kNextPort, male);
  if (options_.punctuate_results) {
    Emit(kResultPort, Punctuation{.watermark = now});
  }
}

void SlicedWindowJoin::ProcessFemale(const Tuple& t) {
  Tuple female = t;
  female.role = TupleRole::kFemale;
  if (options_.composite_left) {
    SLICE_CHECK_EQ(t.side, options_.right_stream);
    state_b_.Insert(female, nullptr);  // kTime: never evicts on insert
    return;
  }
  // Count-based slices purge on insert: the evicted tuple's rank crossed
  // the slice end, so it moves to the next slice.
  std::vector<Tuple> evicted;
  StateOf(t.side)->Insert(female, &evicted);
  for (const Tuple& e : evicted) {
    Emit(kNextPort, e);
  }
}

void SlicedWindowJoin::ProcessFemaleComposite(const CompositeTuple& c) {
  CompositeTuple female = c;
  female.role = TupleRole::kFemale;
  state_c_.Insert(female, nullptr);  // kTime: never evicts on insert
}

void SlicedWindowJoin::Finish() {
  // End of all inputs: no further results from this slice.
  Emit(kResultPort, Punctuation{.watermark = kMaxTime});
}

}  // namespace stateslice
