// Operators specific to N-way (multi-stream) join trees.
//
// An N-way window query over streams S_0..S_{n-1} executes as a left-deep
// tree of sliced binary chains: level 0 joins S_0 with S_1, and each level
// k >= 1 joins the composite results of level k-1 with stream S_{k+1}
// (paper Section 7 sketches this composition; see also Dossinger & Michel,
// "Optimizing Multiple Multi-Way Stream Joins"). Two support operators make
// the tree work on the single globally-ordered arrival feed:
//
//  - StreamDispatch routes each raw arrival to the tree level that consumes
//    its stream (streams 0 and 1 feed the level-0 chain spine; stream k+1
//    feeds level k's input merge), and broadcasts a punctuation carrying
//    the arrival's timestamp to every port. Global arrival order means no
//    later event on *any* stream can be older, so the punctuations keep all
//    per-level input merges advancing even when some stream goes idle.
//
//  - WindowGate enforces the tree's window semantics on a query's output
//    path. A result (t_0, ..., t_{n-1}) satisfies window w iff every level's
//    gap |max(t_0..t_k) - t_{k+1}| is < w (the left-deep prefix window:
//    each new stream's tuple must be within w of the composite it joined).
//    The shared chains produce composites up to the *largest* consumer
//    window, so a query with a smaller window gates its results — the
//    slice routing of its terminal level constrains only the final gap.
#ifndef STATESLICE_OPERATORS_MULTIWAY_H_
#define STATESLICE_OPERATORS_MULTIWAY_H_

#include <string>
#include <vector>

#include "src/common/timestamp.h"
#include "src/runtime/operator.h"

namespace stateslice {

// Routes raw stream tuples to join-tree levels.
//
// Ports: input 0 (the globally ordered multi-stream feed). Output port p
// serves tree level p: port 0 carries streams 0 and 1 (the level-0 chain
// spine), port p >= 1 carries stream p+1 (level p's side input). Every
// arrival at time T additionally emits Punctuation{T} on *all* ports after
// the tuple, which advances the per-level input merges (and, through the
// chains' punctuation forwarding, the pass-through unions of earlier
// levels). Tuples of streams >= num_streams CHECK-fail: the plan builder
// sizes the dispatch from the workload, and ValidateQueries bounds
// num_streams by kMaxStreams.
class StreamDispatch : public Operator {
 public:
  StreamDispatch(std::string name, int num_streams);

  void Process(Event event, int input_port) override;
  // Run path: the devirtualized per-event loop (one virtual hop per run).
  void OnRun(EventRun& run, int input_port) override;
  void Finish() override;

  int num_streams() const { return num_streams_; }
  // Output port feeding the level that consumes `stream`.
  static int PortOf(StreamId stream) { return stream <= 1 ? 0 : stream - 1; }

 private:
  int num_streams_;  // in [3, kMaxStreams]
  int num_ports_;    // num_streams - 1 tree levels
};

// Passes composites whose every level gap is < `window` (MaxGap() check);
// punctuations are forwarded. One kGate comparison per constituent beyond
// the first, mirroring the per-level comparisons a fully partitioned tree
// would have charged.
class WindowGate : public Operator {
 public:
  static constexpr int kOutPort = 0;

  WindowGate(std::string name, Duration window);

  void Process(Event event, int input_port) override;
  // Run path: the devirtualized per-event loop (one virtual hop per run).
  void OnRun(EventRun& run, int input_port) override;
  void Finish() override;

  Duration window() const { return window_; }

 private:
  Duration window_;
};

}  // namespace stateslice

#endif  // STATESLICE_OPERATORS_MULTIWAY_H_
