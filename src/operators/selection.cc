#include "src/operators/selection.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace stateslice {

// ---------------------------------------------------------------- Selection

Selection::Selection(std::string name, Predicate predicate,
                     StreamId target_side)
    : Operator(std::move(name)),
      predicate_(std::move(predicate)),
      target_side_(target_side) {}

void Selection::Process(Event event, int input_port) {
  SLICE_CHECK_EQ(input_port, 0);
  if (IsPunctuation(event)) {
    Emit(kOutPort, event);
    return;
  }
  SLICE_CHECK(IsTuple(event));
  const Tuple& t = std::get<Tuple>(event);
  if (t.side != target_side_) {
    Emit(kOutPort, event);
    return;
  }
  // Disjunction filters (σ'_i of Fig. 15) charge the short-circuit OR
  // evaluation count; simple predicates charge 1.
  uint64_t evaluations = 0;
  const bool pass = predicate_.EvalCounted(t, &evaluations);
  Charge(CostCategory::kFilter, evaluations);
  if (pass) {
    Emit(kOutPort, event);
  }
}

void Selection::Finish() { Emit(kOutPort, Punctuation{.watermark = kMaxTime}); }

// ----------------------------------------------------------- LineageStamper

LineageStamper::LineageStamper(std::string name,
                               std::vector<Predicate> query_predicates,
                               StreamId target_side)
    : Operator(std::move(name)),
      predicates_(std::move(query_predicates)),
      target_side_(target_side) {
  SLICE_CHECK_LE(predicates_.size(), static_cast<size_t>(kMaxQueries));
}

void LineageStamper::Process(Event event, int input_port) {
  SLICE_CHECK_EQ(input_port, 0);
  if (IsPunctuation(event)) {
    Emit(kOutPort, event);
    return;
  }
  SLICE_CHECK(IsTuple(event));
  Tuple t = std::get<Tuple>(event);
  if (t.side != target_side_) {
    Emit(kOutPort, t);
    return;
  }
  uint64_t mask = 0;
  // Charge with the paper's early-stop discipline: evaluate in decreasing
  // query order, stop charging at the first satisfied predicate (the tuple
  // then "survives until the k-th slice", Section 6.1). We still compute
  // the full mask so downstream routing is exact.
  uint64_t charged = 0;
  bool stopped = false;
  for (int q = static_cast<int>(predicates_.size()) - 1; q >= 0; --q) {
    const bool hit = predicates_[q].Eval(t);
    if (!stopped) {
      ++charged;
      if (hit) stopped = true;
    }
    if (hit) mask |= uint64_t{1} << q;
  }
  Charge(CostCategory::kFilter, charged);
  if (mask == 0) return;  // useful to no query
  t.lineage = mask;
  Emit(kOutPort, t);
}

void LineageStamper::Finish() {
  Emit(kOutPort, Punctuation{.watermark = kMaxTime});
}

// ------------------------------------------------------------ LineageFilter

LineageFilter::LineageFilter(std::string name, uint64_t mask,
                             StreamId target_side)
    : Operator(std::move(name)), mask_(mask), target_side_(target_side) {}

void LineageFilter::Process(Event event, int input_port) {
  SLICE_CHECK_EQ(input_port, 0);
  if (IsPunctuation(event)) {
    Emit(kOutPort, event);
    return;
  }
  SLICE_CHECK(IsTuple(event));
  const Tuple& t = std::get<Tuple>(event);
  if (t.side != target_side_) {
    Emit(kOutPort, event);
    return;
  }
  Charge(CostCategory::kFilter, 1);
  if ((t.lineage & mask_) != 0) {
    Emit(kOutPort, event);
  }
}

void LineageFilter::Finish() {
  Emit(kOutPort, Punctuation{.watermark = kMaxTime});
}

// --------------------------------------------------------------- ResultGate

ResultGate::ResultGate(std::string name, Predicate predicate,
                       StreamId target_side)
    : Operator(std::move(name)),
      predicate_(std::move(predicate)),
      target_side_(target_side) {}

void ResultGate::Process(Event event, int input_port) {
  SLICE_CHECK_EQ(input_port, 0);
  if (IsPunctuation(event)) {
    Emit(kOutPort, event);
    return;
  }
  SLICE_CHECK(IsJoinResult(event));
  const JoinResult& r = std::get<JoinResult>(event);
  SLICE_CHECK_LT(target_side_, r.size());
  const Tuple& component = r.part(target_side_);
  Charge(CostCategory::kGate, 1);
  if (predicate_.Eval(component)) {
    EmitMove(kOutPort, std::move(event));
  }
}

void ResultGate::Finish() {
  Emit(kOutPort, Punctuation{.watermark = kMaxTime});
}

// ----------------------------------------------------------- ResultTimeGate

ResultTimeGate::ResultTimeGate(std::string name, TimePoint cutoff)
    : Operator(std::move(name)), cutoff_(cutoff) {}

void ResultTimeGate::Process(Event event, int input_port) {
  SLICE_CHECK_EQ(input_port, 0);
  if (IsPunctuation(event)) {
    Emit(kOutPort, event);
    return;
  }
  SLICE_CHECK(IsJoinResult(event));
  const JoinResult& r = std::get<JoinResult>(event);
  // Fresh-start semantics require *every* constituent at or after the
  // cutoff, so gate on the oldest across all N parts.
  TimePoint older = r.a.timestamp;
  for (int i = 1; i < r.size(); ++i) {
    older = std::min(older, r.part(i).timestamp);
  }
  Charge(CostCategory::kGate, 1);
  if (older >= cutoff_) {
    EmitMove(kOutPort, std::move(event));
  }
}

void ResultTimeGate::Finish() {
  Emit(kOutPort, Punctuation{.watermark = kMaxTime});
}

void ResultTimeGate::OnRun(EventRun& run, int input_port) {
  for (Event& event : run) ResultTimeGate::Process(std::move(event), input_port);
}

}  // namespace stateslice
