#include "src/operators/multiway.h"

#include <utility>

#include "src/common/check.h"
#include "src/common/tuple.h"

namespace stateslice {

StreamDispatch::StreamDispatch(std::string name, int num_streams)
    : Operator(std::move(name)),
      num_streams_(num_streams),
      num_ports_(num_streams - 1) {
  // A 2-stream plan needs no dispatch (the chain spine carries both
  // streams directly), so the builder only instantiates one for >= 3.
  SLICE_CHECK_GE(num_streams, 3);
  SLICE_CHECK_LE(num_streams, kMaxStreams);
}

void StreamDispatch::Process(Event event, int input_port) {
  SLICE_CHECK_EQ(input_port, 0);
  if (IsPunctuation(event)) {
    for (int p = 0; p < num_ports_; ++p) Emit(p, event);
    return;
  }
  SLICE_CHECK(IsTuple(event));
  const Tuple& t = std::get<Tuple>(event);
  SLICE_CHECK_GE(t.side, 0);
  SLICE_CHECK_LT(t.side, num_streams_);
  const int port = PortOf(t.side);
  // Global order: nothing older than T can follow on any stream, so T is a
  // watermark for every level.
  const Punctuation mark{.watermark = t.timestamp};
  EmitMove(port, std::move(event));
  for (int p = 0; p < num_ports_; ++p) Emit(p, mark);
}

void StreamDispatch::Finish() {
  for (int p = 0; p < num_ports_; ++p) {
    Emit(p, Punctuation{.watermark = kMaxTime});
  }
}

WindowGate::WindowGate(std::string name, Duration window)
    : Operator(std::move(name)), window_(window) {
  SLICE_CHECK_GT(window, 0);
}

void WindowGate::Process(Event event, int input_port) {
  SLICE_CHECK_EQ(input_port, 0);
  if (IsPunctuation(event)) {
    Emit(kOutPort, event);
    return;
  }
  SLICE_CHECK(IsJoinResult(event));
  const JoinResult& r = std::get<JoinResult>(event);
  Charge(CostCategory::kGate, static_cast<uint64_t>(r.size()) - 1);
  if (r.MaxGap() < window_) {
    EmitMove(kOutPort, std::move(event));
  }
}

void WindowGate::Finish() {
  Emit(kOutPort, Punctuation{.watermark = kMaxTime});
}

void StreamDispatch::OnRun(EventRun& run, int input_port) {
  for (Event& event : run) StreamDispatch::Process(std::move(event), input_port);
}

void WindowGate::OnRun(EventRun& run, int input_port) {
  for (Event& event : run) WindowGate::Process(std::move(event), input_port);
}

}  // namespace stateslice
