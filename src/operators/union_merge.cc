#include "src/operators/union_merge.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace stateslice {

UnionMerge::UnionMerge(std::string name, int input_count)
    : Operator(std::move(name)) {
  SLICE_CHECK_GT(input_count, 0);
  watermarks_.assign(input_count, kMinTime);
}

int UnionMerge::AddInputWhileRunning() {
  // The fresh input starts at the union's already-emitted watermark: the
  // new producer (a just-split slice) only ever generates results newer
  // than the migration point, so this cannot reorder output.
  watermarks_.push_back(emitted_watermark_);
  return static_cast<int>(watermarks_.size()) - 1;
}

void UnionMerge::CloseInputWhileRunning(int port) {
  SLICE_CHECK_GE(port, 0);
  SLICE_CHECK_LT(port, static_cast<int>(watermarks_.size()));
  watermarks_[port] = kMaxTime;
  Drain();
}

TimePoint UnionMerge::MinWatermark() const {
  TimePoint min = kMaxTime;
  for (TimePoint w : watermarks_) min = std::min(min, w);
  return min;
}

void UnionMerge::Process(Event event, int input_port) {
  SLICE_CHECK_GE(input_port, 0);
  SLICE_CHECK_LT(input_port, static_cast<int>(watermarks_.size()));
  if (const Punctuation* p = std::get_if<Punctuation>(&event)) {
    if (p->watermark > watermarks_[input_port]) {
      watermarks_[input_port] = p->watermark;
      Drain();
    }
    return;
  }
  // Per-input streams are ordered; a data event also implies its input's
  // watermark (no older event can follow it on a FIFO).
  const TimePoint t = EventTime(event);
  SLICE_CHECK_GE(t, watermarks_[input_port]);
  if (t > watermarks_[input_port]) watermarks_[input_port] = t;
  ++arrivals_;
  // Fast path: an event at or below every input's watermark with nothing
  // buffered is already in merge order — emit without touching the heap
  // (the common case when male punctuations keep all inputs aligned,
  // Section 4.3).
  if (buffer_.empty() && t <= MinWatermark()) {
    EmitMove(kOutPort, std::move(event));
    if (t > emitted_watermark_) {
      emitted_watermark_ = t;
      Charge(CostCategory::kUnion, 1);
      Emit(kOutPort, Punctuation{.watermark = t});
    }
    return;
  }
  buffer_.push(Pending{t, arrivals_, std::move(event)});
  Drain();
}

void UnionMerge::Drain() {
  const TimePoint safe = MinWatermark();
  while (!buffer_.empty() && buffer_.top().time <= safe) {
    Emit(kOutPort, buffer_.top().event);
    buffer_.pop();
  }
  if (safe > emitted_watermark_) {
    emitted_watermark_ = safe;
    // The union's charged cost is punctuation handling only — one
    // comparison per watermark advance. Male punctuations deliver each
    // slice's results in contiguous pre-sorted segments (Section 4.3), so
    // releasing data is concatenation, matching Eq. 3's 2λ union term.
    Charge(CostCategory::kUnion, 1);
    Emit(kOutPort, Punctuation{.watermark = safe});
  }
}

void UnionMerge::Finish() {
  // Upstream operators flush kMaxTime punctuations through the queues when
  // they finish, which drains this buffer naturally. If some input is a
  // stub that never punctuates (not produced by this library), force-flush
  // here so no result is lost at end of stream.
  bool all_final = true;
  for (TimePoint w : watermarks_) all_final &= (w == kMaxTime);
  if (!all_final) return;
  SLICE_CHECK(buffer_.empty());
}

std::vector<Event> UnionMerge::PendingSnapshot() const {
  // std::priority_queue hides its container; popping a copy yields the
  // exact (time, arrival) release order. Checkpoints run quiesced, so the
  // copy's cost is off any hot path.
  std::vector<Event> events;
  events.reserve(buffer_.size());
  auto heap = buffer_;
  while (!heap.empty()) {
    events.push_back(heap.top().event);
    heap.pop();
  }
  return events;
}

void UnionMerge::RestorePending(Event event) {
  buffer_.push(Pending{EventTime(event), ++arrivals_, std::move(event)});
}

void UnionMerge::OnRun(EventRun& run, int input_port) {
  for (Event& event : run) UnionMerge::Process(std::move(event), input_port);
}

}  // namespace stateslice
