#include "src/operators/join_state.h"

#include "src/common/check.h"

namespace stateslice {

void JoinState::Insert(const Tuple& t, std::vector<Tuple>* evicted) {
  if (!tuples_.empty()) {
    SLICE_CHECK_LE(tuples_.back().timestamp, t.timestamp);
  }
  tuples_.push_back(t);
  if (window_.kind == WindowKind::kCount) {
    // Count windows purge on insertion: keep the newest `extent` tuples.
    while (static_cast<int64_t>(tuples_.size()) > window_.extent) {
      if (evicted != nullptr) evicted->push_back(tuples_.front());
      tuples_.pop_front();
    }
  }
}

uint64_t JoinState::Purge(TimePoint now, std::vector<Tuple>* purged) {
  if (window_.kind == WindowKind::kCount) return 0;  // purge-on-insert
  uint64_t comparisons = 0;
  while (!tuples_.empty()) {
    ++comparisons;
    // Window semantics (Section 2): tuple is alive iff now - ts < extent.
    if (now - tuples_.front().timestamp < window_.extent) break;
    if (purged != nullptr) purged->push_back(tuples_.front());
    tuples_.pop_front();
  }
  return comparisons;
}

uint64_t JoinState::Probe(const Tuple& probe, const JoinCondition& cond,
                          std::vector<Tuple>* matches) const {
  for (const Tuple& t : tuples_) {
    if (cond.Match(t, probe)) matches->push_back(t);
  }
  // Nested-loop probing compares against every stored tuple (Section 3).
  return tuples_.size();
}

std::vector<Tuple> JoinState::TakeAll() {
  std::vector<Tuple> all(tuples_.begin(), tuples_.end());
  tuples_.clear();
  return all;
}

void JoinState::PrependOlder(const std::vector<Tuple>& older) {
  if (!older.empty() && !tuples_.empty()) {
    SLICE_CHECK_LE(older.back().timestamp, tuples_.front().timestamp);
  }
  tuples_.insert(tuples_.begin(), older.begin(), older.end());
}

}  // namespace stateslice
