#include "src/operators/join_state.h"

namespace stateslice {

// Anchor the template instantiations used across the library in one
// translation unit (the header stays usable for other entry types).
template class BasicJoinState<Tuple>;
template class BasicJoinState<CompositeTuple>;

}  // namespace stateslice
