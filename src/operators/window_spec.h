// Window specifications for stateful operators.
//
// The paper presents the sharing paradigm with time-based sliding windows and
// notes the techniques apply unchanged to count-based windows (Section 2).
// We support both kinds.
#ifndef STATESLICE_OPERATORS_WINDOW_SPEC_H_
#define STATESLICE_OPERATORS_WINDOW_SPEC_H_

#include <cstdint>
#include <string>

#include "src/common/timestamp.h"

namespace stateslice {

// Discriminates how a window's extent is measured.
enum class WindowKind : uint8_t {
  kTime,   // extent in ticks of virtual time
  kCount,  // extent in number of most recent tuples
};

// A sliding-window extent.
struct WindowSpec {
  WindowKind kind = WindowKind::kTime;
  // Ticks for kTime; tuple count for kCount.
  int64_t extent = 0;

  static WindowSpec Time(Duration ticks) {
    return WindowSpec{WindowKind::kTime, ticks};
  }
  static WindowSpec TimeSeconds(double seconds) {
    return WindowSpec{WindowKind::kTime, SecondsToTicks(seconds)};
  }
  static WindowSpec Count(int64_t tuples) {
    return WindowSpec{WindowKind::kCount, tuples};
  }

  std::string DebugString() const;

  friend bool operator==(const WindowSpec&, const WindowSpec&) = default;
};

}  // namespace stateslice

#endif  // STATESLICE_OPERATORS_WINDOW_SPEC_H_
