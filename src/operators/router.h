// Router: dispatches joined results to query outputs by timestamp distance.
//
// The selection pull-up strategy (Section 3.1, Fig. 3) and merged sliced
// joins (Section 5.2, Fig. 13) need a router that checks each joined tuple's
// |Ta - Tb| against the registered window constraints and forwards it to
// every query whose window contains it. Following the paper, the router is
// "a range join between the joined tuple stream and a static profile table,
// with each entry holding a window size": the routing cost charged is one
// comparison per profile entry per result, i.e. proportional to the fanout.
#ifndef STATESLICE_OPERATORS_ROUTER_H_
#define STATESLICE_OPERATORS_ROUTER_H_

#include <string>
#include <vector>

#include "src/common/timestamp.h"
#include "src/runtime/operator.h"

namespace stateslice {

// Routes JoinResults by window distance.
//
// Ports: input 0. Output ports are declared via the branch list:
//  - a Branch{max_distance, port} forwards results with |Ta-Tb| <
//    max_distance to `port` (one comparison charged per result);
//  - `all_port` (if >= 0) receives every result unconditionally and
//    uncharged — the "all" edge of Fig. 3 serving the largest-window query.
// Punctuations are forwarded to all branch ports and the all-port.
class Router : public Operator {
 public:
  struct Branch {
    Duration max_distance = 0;  // route iff |Ta - Tb| < max_distance
    int port = 0;
  };

  Router(std::string name, std::vector<Branch> branches, int all_port = -1);

  void Process(Event event, int input_port) override;
  // Run path: the devirtualized per-event loop (one virtual hop per run).
  void OnRun(EventRun& run, int input_port) override;
  void Finish() override;

  const std::vector<Branch>& branches() const { return branches_; }

 private:
  std::vector<Branch> branches_;
  int all_port_;
};

}  // namespace stateslice

#endif  // STATESLICE_OPERATORS_ROUTER_H_
