// Order-preserving union (merge) of joined-result streams.
//
// Each query whose window spans k > 1 slices collects their outputs through
// a union operator that restores global timestamp order (Section 4.1,
// Fig. 7). Inputs are individually timestamp-ordered; the union buffers
// events and releases them once every input's watermark has passed, using
// the punctuations that male tuples generate at each slice (Section 4.3 /
// [26]). The merge is safe under any operator scheduling because
// watermarks are per input queue.
#ifndef STATESLICE_OPERATORS_UNION_MERGE_H_
#define STATESLICE_OPERATORS_UNION_MERGE_H_

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "src/runtime/operator.h"

namespace stateslice {

// K-way watermark-driven merge.
//
// Ports: inputs 0..k-1 (declare k via `input_count`, or grow at runtime
// with AddInputWhileRunning for online chain migration); output 0.
// Emits merged data events in non-decreasing timestamp order, followed by
// punctuations carrying the emitted watermark so unions can cascade.
class UnionMerge : public Operator {
 public:
  static constexpr int kOutPort = 0;

  UnionMerge(std::string name, int input_count);

  void Process(Event event, int input_port) override;
  // Run path: the devirtualized per-event loop (one virtual hop per run).
  void OnRun(EventRun& run, int input_port) override;
  void Finish() override;

  // Registers one more input port on a live plan (Section 5.3 splitting
  // inserts a new slice whose results join an existing union). Returns the
  // new port index. The caller wires a queue to it via
  // QueryPlan::ConnectWhileRunning.
  int AddInputWhileRunning();

  // Permanently closes an input port (its producer went away during a
  // slice merge): the port stops gating the merge watermark.
  void CloseInputWhileRunning(int port);

  // Number of buffered (not yet releasable) events.
  size_t buffered() const { return buffer_.size(); }

  // Checkpoint support (Engine::Checkpoint): the buffered events in
  // release order — (time, arrival) heap order, i.e. exactly the order
  // Drain() would emit them once every watermark passes.
  std::vector<Event> PendingSnapshot() const;

  // Checkpoint support (Engine::Restore): re-buffers one snapshotted event
  // into a fresh union. Call in snapshot order before any live input so
  // the re-assigned arrival tie-breaks preserve the release order. Input
  // watermarks stay at their initial kMinTime: the events park in the
  // buffer until post-restore punctuations release them.
  void RestorePending(Event event);

  // StateSize intentionally excludes the merge buffer: the paper counts
  // join states only. Buffer occupancy is reported via buffered().
  size_t StateSize() const override { return 0; }

 private:
  struct Pending {
    TimePoint time;
    uint64_t arrival;  // tie-break: arrival order for determinism
    Event event;
  };
  struct PendingAfter {
    bool operator()(const Pending& x, const Pending& y) const {
      if (x.time != y.time) return x.time > y.time;
      return x.arrival > y.arrival;
    }
  };

  // Releases all buffered events at or before the minimum input watermark.
  void Drain();
  TimePoint MinWatermark() const;

  std::vector<TimePoint> watermarks_;  // per input port
  std::priority_queue<Pending, std::vector<Pending>, PendingAfter> buffer_;
  uint64_t arrivals_ = 0;
  TimePoint emitted_watermark_ = kMinTime;
};

}  // namespace stateslice

#endif  // STATESLICE_OPERATORS_UNION_MERGE_H_
