// Split and Fanout operators.
//
// Split partitions the target stream by a predicate (the stream-partition
// sharing strategy of Section 3.2, Fig. 4): matching tuples exit one port,
// non-matching tuples the other. Tuples of the *other* stream are broadcast
// to both ports so each downstream join still receives a single,
// globally-ordered queue carrying both streams.
//
// Fanout simply replicates its input to every attached queue of port 0;
// the unshared baseline uses it to feed N independent query plans from one
// source spine.
#ifndef STATESLICE_OPERATORS_SPLIT_H_
#define STATESLICE_OPERATORS_SPLIT_H_

#include <string>

#include "src/common/predicate.h"
#include "src/runtime/operator.h"

namespace stateslice {

// Predicate-based stream partitioner.
//
// Ports: input 0; output kMatchPort (predicate true), output kRestPort
// (predicate false). Other-side tuples and punctuations go to both.
class Split : public Operator {
 public:
  static constexpr int kMatchPort = 0;
  static constexpr int kRestPort = 1;

  Split(std::string name, Predicate predicate,
        StreamId target_side = StreamSide::kA);

  void Process(Event event, int input_port) override;
  void Finish() override;

  const Predicate& predicate() const { return predicate_; }

 private:
  Predicate predicate_;
  StreamId target_side_;
};

// Broadcast replicator: every event on input 0 is emitted on output 0,
// which may have many attached queues.
class Fanout : public Operator {
 public:
  static constexpr int kOutPort = 0;

  explicit Fanout(std::string name) : Operator(std::move(name)) {}

  void Process(Event event, int input_port) override;
  void Finish() override;
};

}  // namespace stateslice

#endif  // STATESLICE_OPERATORS_SPLIT_H_
