#include "src/operators/split.h"

#include <utility>

#include "src/common/check.h"

namespace stateslice {

Split::Split(std::string name, Predicate predicate, StreamId target_side)
    : Operator(std::move(name)),
      predicate_(std::move(predicate)),
      target_side_(target_side) {}

void Split::Process(Event event, int input_port) {
  SLICE_CHECK_EQ(input_port, 0);
  if (IsPunctuation(event)) {
    Emit(kMatchPort, event);
    Emit(kRestPort, event);
    return;
  }
  SLICE_CHECK(IsTuple(event));
  const Tuple& t = std::get<Tuple>(event);
  if (t.side != target_side_) {
    // The non-partitioned stream feeds every partition's join (Fig. 4: B
    // flows into both joins), keeping each downstream queue fully ordered.
    Emit(kMatchPort, event);
    Emit(kRestPort, event);
    return;
  }
  // One comparison per partitioned tuple (the "splitting cost" λ of Eq. 2).
  Charge(CostCategory::kSplit, 1);
  Emit(predicate_.Eval(t) ? kMatchPort : kRestPort, event);
}

void Split::Finish() {
  Emit(kMatchPort, Punctuation{.watermark = kMaxTime});
  Emit(kRestPort, Punctuation{.watermark = kMaxTime});
}

void Fanout::Process(Event event, int input_port) {
  SLICE_CHECK_EQ(input_port, 0);
  Emit(kOutPort, event);
}

void Fanout::Finish() { Emit(kOutPort, Punctuation{.watermark = kMaxTime}); }

}  // namespace stateslice
