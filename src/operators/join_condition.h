// Join-match conditions.
//
// The paper presents its techniques with an equi-join "for simplicity of
// discussion" and notes they apply to any join condition (Section 2). Its
// cost model instead works with a join selectivity S1 = |output| / |cross
// product|. We support both views:
//   - kEquiKey: classic equi-join on the tuple key;
//   - kModSum:  matches iff (a.key + b.key) mod m < t. With keys drawn
//     uniformly from [0, m) this yields an exact pairwise match probability
//     t/m *independently of either key*, so the workload generator can dial
//     in any rational S1 (e.g. 1/40, 1/10, 2/5 for the paper's 0.025 / 0.1 /
//     0.4) without correlation artifacts.
#ifndef STATESLICE_OPERATORS_JOIN_CONDITION_H_
#define STATESLICE_OPERATORS_JOIN_CONDITION_H_

#include <cstdint>
#include <string>

#include "src/common/check.h"
#include "src/common/tuple.h"

namespace stateslice {

// A cheap, copyable join-match condition evaluated per candidate pair.
struct JoinCondition {
  enum class Kind : uint8_t { kEquiKey, kModSum };

  Kind kind = Kind::kEquiKey;
  int64_t mod = 1;    // kModSum: modulus m
  int64_t band = 1;   // kModSum: threshold t (match iff (ka+kb)%m < t)

  // Equi-join on `key`. Selectivity = 1/|key domain| for uniform keys.
  static JoinCondition EquiKey() { return JoinCondition{}; }

  // Pseudo-random pairwise condition with match probability band/mod when
  // keys are uniform over [0, mod).
  static JoinCondition ModSum(int64_t mod, int64_t band) {
    SLICE_CHECK_GT(mod, 0);
    SLICE_CHECK_GE(band, 0);
    SLICE_CHECK_LE(band, mod);
    return JoinCondition{Kind::kModSum, mod, band};
  }

  // True iff the pair (x, y) satisfies the condition. Symmetric.
  bool Match(const Tuple& x, const Tuple& y) const {
    if (kind == Kind::kEquiKey) return x.key == y.key;
    return (x.key + y.key) % mod < band;
  }

  // Match probability under the generator's uniform key model.
  double Selectivity(int64_t key_domain) const {
    if (kind == Kind::kEquiKey) {
      return key_domain > 0 ? 1.0 / static_cast<double>(key_domain) : 1.0;
    }
    return static_cast<double>(band) / static_cast<double>(mod);
  }

  std::string DebugString() const {
    if (kind == Kind::kEquiKey) return "equi(key)";
    return "(ka+kb)%" + std::to_string(mod) + "<" + std::to_string(band);
  }
};

}  // namespace stateslice

#endif  // STATESLICE_OPERATORS_JOIN_CONDITION_H_
