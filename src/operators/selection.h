// Filter operators: tuple selections, lineage stamping, and result gates.
//
// Three flavors are used by the sharing strategies of the paper:
//  - Selection:      σ on raw stream tuples (σ_A in the running example, and
//                    the inter-slice disjunction filters σ'_i of Fig. 15);
//  - LineageStamper: optional Section-6.1 optimization — evaluates all query
//                    predicates once per tuple at chain entry and stores the
//                    outcome in the tuple's lineage bitmask (cost charged
//                    with the paper's early-stop discipline);
//  - LineageFilter:  drops tuples whose lineage has no bit in a mask, which
//                    realizes σ'_i without re-evaluating predicates;
//  - ResultGate:     σ'_A-style filter on joined results for one query's
//                    output path (Fig. 10).
#ifndef STATESLICE_OPERATORS_SELECTION_H_
#define STATESLICE_OPERATORS_SELECTION_H_

#include <string>
#include <vector>

#include "src/common/predicate.h"
#include "src/runtime/operator.h"

namespace stateslice {

// σ on stream tuples. Tuples of `target_side` are tested against the
// predicate (one kFilter comparison each); tuples of the other stream pass
// through untouched and uncharged, which lets a single-queue plan spine
// carry both streams through A-only filters. Punctuations are forwarded.
//
// Ports: input 0; output 0 (pass). Dropped tuples simply vanish.
class Selection : public Operator {
 public:
  static constexpr int kOutPort = 0;

  Selection(std::string name, Predicate predicate,
            StreamId target_side = StreamSide::kA);

  void Process(Event event, int input_port) override;
  void Finish() override;

  const Predicate& predicate() const { return predicate_; }

 private:
  Predicate predicate_;
  StreamId target_side_;
};

// Evaluates the per-query predicates once per target-side tuple and records
// satisfaction bit q for query q in the tuple's lineage mask. The cost
// charged follows the paper's early-stop rule (Section 6.1): predicates are
// conceptually evaluated in decreasing query order until one is satisfied.
// Tuples satisfying no predicate are dropped. Other-side tuples keep a full
// mask and pass free.
class LineageStamper : public Operator {
 public:
  static constexpr int kOutPort = 0;

  LineageStamper(std::string name, std::vector<Predicate> query_predicates,
                 StreamId target_side = StreamSide::kA);

  void Process(Event event, int input_port) override;
  void Finish() override;

 private:
  std::vector<Predicate> predicates_;  // index = query id (bit position)
  StreamId target_side_;
};

// Passes target-side tuples iff (lineage & mask) != 0, charging one kFilter
// comparison — the σ'_i inter-slice filter realized over stamped lineage.
class LineageFilter : public Operator {
 public:
  static constexpr int kOutPort = 0;

  LineageFilter(std::string name, uint64_t mask,
                StreamId target_side = StreamSide::kA);

  void Process(Event event, int input_port) override;
  void Finish() override;

  uint64_t mask() const { return mask_; }

 private:
  uint64_t mask_;
  StreamId target_side_;
};

// Filters JoinResults on one query's output path: a result passes iff the
// query's predicate holds on the result's constituent at `target_side`
// (index into the FROM order: 0 = A, 1 = B, >= 2 for the appended streams
// of an N-way tree). One kFilter comparison per result, matching the σ'_A
// cost item of Eq. 3. Punctuations are forwarded.
class ResultGate : public Operator {
 public:
  static constexpr int kOutPort = 0;

  ResultGate(std::string name, Predicate predicate,
             StreamId target_side = StreamSide::kA);

  void Process(Event event, int input_port) override;
  void Finish() override;

 private:
  Predicate predicate_;
  StreamId target_side_;
};

// Passes JoinResults whose *older* constituent arrived at or after a cutoff
// timestamp. A query registered on a running chain (Section 5.3) inherits
// the shared slice states, so the chain also produces pairs joining new
// arrivals with pre-registration state; gating on min(Ta, Tb) >= cutoff
// gives the registration fresh-start semantics — the query observes exactly
// the tuples pushed after it registered — independent of sharing strategy.
// One kGate comparison per result; punctuations are forwarded.
class ResultTimeGate : public Operator {
 public:
  static constexpr int kOutPort = 0;

  ResultTimeGate(std::string name, TimePoint cutoff);

  void Process(Event event, int input_port) override;
  // Run path: the devirtualized per-event loop (one virtual hop per run).
  void OnRun(EventRun& run, int input_port) override;
  void Finish() override;

  TimePoint cutoff() const { return cutoff_; }

 private:
  TimePoint cutoff_;
};

}  // namespace stateslice

#endif  // STATESLICE_OPERATORS_SELECTION_H_
