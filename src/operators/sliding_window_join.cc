#include "src/operators/sliding_window_join.h"

#include <utility>
#include <vector>

#include "src/common/check.h"

namespace stateslice {

SlidingWindowJoin::SlidingWindowJoin(std::string name, WindowSpec window_a,
                                     WindowSpec window_b, Options options)
    : Operator(std::move(name)),
      options_(options),
      state_a_(window_a),
      state_b_(window_b) {}

void SlidingWindowJoin::Process(Event event, int input_port) {
  SLICE_CHECK_EQ(input_port, 0);
  if (IsPunctuation(event)) {
    Emit(kResultPort, event);
    return;
  }
  SLICE_CHECK(IsTuple(event));
  ProcessTuple(std::get<Tuple>(event));
}

void SlidingWindowJoin::ProcessTuple(const Tuple& t) {
  // Regular join execution (Fig. 1): cross-purge the opposite state, probe
  // it, then insert (unless running one-way and this is the probe-only
  // stream).
  std::vector<Tuple> matches;
  if (t.side == StreamSide::kA) {
    Charge(CostCategory::kPurge, state_b_.Purge(t.timestamp, nullptr));
    Charge(CostCategory::kProbe,
           state_b_.Probe(t, options_.condition, &matches));
    for (const Tuple& b : matches) {
      Emit(kResultPort, JoinResult{.a = t, .b = b});
    }
    state_a_.Insert(t);
  } else {
    Charge(CostCategory::kPurge, state_a_.Purge(t.timestamp, nullptr));
    Charge(CostCategory::kProbe,
           state_a_.Probe(t, options_.condition, &matches));
    for (const Tuple& a : matches) {
      Emit(kResultPort, JoinResult{.a = a, .b = t});
    }
    if (options_.mode == Mode::kBinary) {
      state_b_.Insert(t);
    }
  }
  if (options_.punctuate_results) {
    // Inputs are globally ordered, so no later arrival can produce a result
    // older than `t`; results of `t` itself were emitted above.
    Emit(kResultPort, Punctuation{.watermark = t.timestamp});
  }
}

void SlidingWindowJoin::Finish() {
  // No more inputs: everything that could be produced has been produced.
  Emit(kResultPort, Punctuation{.watermark = kMaxTime});
}

}  // namespace stateslice
