#include "src/operators/sliding_window_join.h"

#include <utility>
#include <vector>

#include "src/common/check.h"

namespace stateslice {

SlidingWindowJoin::SlidingWindowJoin(std::string name, WindowSpec window_a,
                                     WindowSpec window_b, Options options)
    : Operator(std::move(name)),
      options_(options),
      state_a_(window_a),
      state_b_(window_b) {
  if (options_.use_key_index &&
      options_.condition.kind == JoinCondition::Kind::kEquiKey) {
    state_a_.EnableKeyIndex();
    state_b_.EnableKeyIndex();
  }
}

void SlidingWindowJoin::Process(Event event, int input_port) {
  SLICE_CHECK_EQ(input_port, 0);
  if (IsPunctuation(event)) {
    Emit(kResultPort, event);
    return;
  }
  SLICE_CHECK(IsTuple(event));
  ProcessTuple(std::get<Tuple>(event));
}

void SlidingWindowJoin::ProcessTuple(const Tuple& t) {
  // Regular join execution (Fig. 1): cross-purge the opposite state, probe
  // it (matches emitted oldest-first, identical on the indexed and
  // nested-loop paths), then insert (unless running one-way and this is
  // the probe-only stream).
  if (t.side == StreamSide::kA) {
    Charge(CostCategory::kPurge, state_b_.Purge(t.timestamp, nullptr));
    ChargeProbe(state_b_.Probe(t, options_.condition,
                               [&](const Tuple& b) {
                                 EmitMove(kResultPort,
                                          JoinResult{.a = t, .b = b});
                               }),
                &state_b_);
    state_a_.Insert(t);
    ChargePhysical(PhysCategory::kIndexUpkeep, state_a_.TakeIndexUpkeep());
  } else {
    Charge(CostCategory::kPurge, state_a_.Purge(t.timestamp, nullptr));
    ChargeProbe(state_a_.Probe(t, options_.condition,
                               [&](const Tuple& a) {
                                 EmitMove(kResultPort,
                                          JoinResult{.a = a, .b = t});
                               }),
                &state_a_);
    if (options_.mode == Mode::kBinary) {
      state_b_.Insert(t);
      ChargePhysical(PhysCategory::kIndexUpkeep, state_b_.TakeIndexUpkeep());
    }
  }
  if (options_.punctuate_results) {
    // Inputs are globally ordered, so no later arrival can produce a result
    // older than `t`; results of `t` itself were emitted above.
    Emit(kResultPort, Punctuation{.watermark = t.timestamp});
  }
}

void SlidingWindowJoin::Finish() {
  // No more inputs: everything that could be produced has been produced.
  Emit(kResultPort, Punctuation{.watermark = kMaxTime});
}

void SlidingWindowJoin::OnRun(EventRun& run, int input_port) {
  for (Event& event : run) SlidingWindowJoin::Process(std::move(event), input_port);
}

}  // namespace stateslice
