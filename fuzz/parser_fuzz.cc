// libFuzzer harness for the mini-CQL parser.
//
// Contract under test (src/query/parser.h): ParseQuery never aborts on bad
// input — malformed queries must come back as ok=false with a diagnostic,
// not trip a SLICE_CHECK or invoke UB downstream. The harness additionally
// round-trips accepted queries through their parsed WindowSpec to catch
// accepted-but-poisonous values (non-finite extents, count windows that
// overflow int64) that would only abort later, inside the runtime.
//
// Two build modes share this file:
//  - STATESLICE_FUZZ_STANDALONE: a plain main() that replays every file
//    passed on the command line (the seed corpus) once. Portable to any
//    compiler; registered as the parser_fuzz_corpus CTest so the corpus is
//    a permanent regression suite even on GCC-only toolchains.
//  - otherwise: the usual LLVMFuzzerTestOneInput entry point, linked with
//    -fsanitize=fuzzer by the Clang-only `fuzz` preset.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

#include "src/operators/window_spec.h"
#include "src/query/parser.h"

namespace {

int RunOne(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  const stateslice::ParseResult result = stateslice::ParseQuery(text);
  if (!result.ok) {
    // Rejection must come with a diagnostic (callers print it verbatim).
    if (result.error.empty()) {
      std::fprintf(stderr, "parser_fuzz: ok=false with empty error\n");
      __builtin_trap();
    }
    return 0;
  }
  // Accepted queries must carry a usable window: finite, positive extent
  // (time) or a positive in-range row count. A NaN or overflowed window
  // parses "successfully" but aborts later inside the runtime, which is
  // exactly the class of deferred crash this harness exists to surface.
  const stateslice::WindowSpec& w = result.query.window;
  if (w.extent <= 0) {
    std::fprintf(stderr, "parser_fuzz: accepted query with unusable window\n");
    __builtin_trap();
  }
  return 0;
}

}  // namespace

#if defined(STATESLICE_FUZZ_STANDALONE)

#include <fstream>
#include <iterator>

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "parser_fuzz: cannot open %s\n", argv[i]);
      return 2;
    }
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    RunOne(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
    ++replayed;
  }
  std::printf("parser_fuzz: replayed %d corpus file(s)\n", replayed);
  return 0;
}

#else  // libFuzzer build

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return RunOne(data, size);
}

#endif  // STATESLICE_FUZZ_STANDALONE
