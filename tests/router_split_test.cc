#include <gtest/gtest.h>

#include "src/operators/router.h"
#include "src/operators/split.h"
#include "tests/test_util.h"

namespace stateslice {
namespace {

using ::stateslice::testing::A;
using ::stateslice::testing::B;
using ::stateslice::testing::DrainQueue;

JoinResult R(double ta, double tb) {
  return JoinResult{A(1, ta, 0), B(1, tb, 0)};
}

TEST(RouterTest, RoutesByWindowDistance) {
  Router router("r",
                {Router::Branch{SecondsToTicks(2.0), 0},
                 Router::Branch{SecondsToTicks(5.0), 1}},
                /*all_port=*/2);
  EventQueue q0("q0"), q1("q1"), q2("q2");
  router.AttachOutput(0, &q0);
  router.AttachOutput(1, &q1);
  router.AttachOutput(2, &q2);

  router.Process(R(0.0, 1.0), 0);  // d=1: both branches + all
  router.Process(R(0.0, 3.0), 0);  // d=3: branch 1 + all
  router.Process(R(0.0, 7.0), 0);  // d=7: all only
  EXPECT_EQ(q0.size(), 1u);
  EXPECT_EQ(q1.size(), 2u);
  EXPECT_EQ(q2.size(), 3u);
}

TEST(RouterTest, DistanceIsSymmetric) {
  Router router("r", {Router::Branch{SecondsToTicks(2.0), 0}}, -1);
  EventQueue q0("q0");
  router.AttachOutput(0, &q0);
  router.Process(R(5.0, 4.0), 0);  // a newer than b, d=1
  EXPECT_EQ(q0.size(), 1u);
}

TEST(RouterTest, ChargesOneComparisonPerBranchPerResult) {
  CostCounters counters;
  Router router("r",
                {Router::Branch{10, 0}, Router::Branch{20, 1},
                 Router::Branch{30, 2}},
                /*all_port=*/3);
  router.set_cost_counters(&counters);
  EventQueue q("q");
  router.AttachOutput(3, &q);
  router.Process(R(0.0, 1.0), 0);
  // Fanout-proportional routing cost (Section 3.1); the all-edge is free.
  EXPECT_EQ(counters.Get(CostCategory::kRoute), 3u);
}

TEST(RouterTest, ForwardsPunctuationsEverywhere) {
  Router router("r", {Router::Branch{10, 0}}, /*all_port=*/1);
  EventQueue q0("q0"), q1("q1");
  router.AttachOutput(0, &q0);
  router.AttachOutput(1, &q1);
  router.Process(Punctuation{.watermark = 5}, 0);
  EXPECT_EQ(q0.size(), 1u);
  EXPECT_EQ(q1.size(), 1u);
}

TEST(RouterTest, FinishFlushesMaxWatermark) {
  Router router("r", {Router::Branch{10, 0}}, -1);
  EventQueue q0("q0");
  router.AttachOutput(0, &q0);
  router.Finish();
  const auto events = DrainQueue(&q0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::get<Punctuation>(events[0]).watermark, kMaxTime);
}

TEST(SplitTest, PartitionsTargetSideByPredicate) {
  Split split("s", Predicate::GreaterThan(0.5), StreamSide::kA);
  EventQueue match("m"), rest("r");
  split.AttachOutput(Split::kMatchPort, &match);
  split.AttachOutput(Split::kRestPort, &rest);
  split.Process(A(1, 1.0, 0, 0.9), 0);
  split.Process(A(2, 2.0, 0, 0.1), 0);
  EXPECT_EQ(match.size(), 1u);
  EXPECT_EQ(rest.size(), 1u);
  EXPECT_EQ(std::get<Tuple>(match.Pop()).seq, 1u);
  EXPECT_EQ(std::get<Tuple>(rest.Pop()).seq, 2u);
}

TEST(SplitTest, BroadcastsOtherSideToBothPartitions) {
  // Fig. 4: stream B feeds both partitioned joins.
  Split split("s", Predicate::GreaterThan(0.5), StreamSide::kA);
  EventQueue match("m"), rest("r");
  split.AttachOutput(Split::kMatchPort, &match);
  split.AttachOutput(Split::kRestPort, &rest);
  split.Process(B(1, 1.0), 0);
  EXPECT_EQ(match.size(), 1u);
  EXPECT_EQ(rest.size(), 1u);
}

TEST(SplitTest, ChargesSplitCostOnlyForTargetSide) {
  CostCounters counters;
  Split split("s", Predicate::GreaterThan(0.5), StreamSide::kA);
  split.set_cost_counters(&counters);
  split.Process(A(1, 1.0, 0, 0.9), 0);
  split.Process(B(1, 2.0), 0);
  EXPECT_EQ(counters.Get(CostCategory::kSplit), 1u);
}

TEST(SplitTest, PunctuationsGoBothWays) {
  Split split("s", Predicate::GreaterThan(0.5), StreamSide::kA);
  EventQueue match("m"), rest("r");
  split.AttachOutput(Split::kMatchPort, &match);
  split.AttachOutput(Split::kRestPort, &rest);
  split.Process(Punctuation{.watermark = 3}, 0);
  EXPECT_EQ(match.size(), 1u);
  EXPECT_EQ(rest.size(), 1u);
}

TEST(FanoutTest, BroadcastsToAllAttachedQueues) {
  Fanout fanout("f");
  EventQueue q1("q1"), q2("q2"), q3("q3");
  fanout.AttachOutput(Fanout::kOutPort, &q1);
  fanout.AttachOutput(Fanout::kOutPort, &q2);
  fanout.AttachOutput(Fanout::kOutPort, &q3);
  fanout.Process(A(1, 1.0), 0);
  EXPECT_EQ(q1.size(), 1u);
  EXPECT_EQ(q2.size(), 1u);
  EXPECT_EQ(q3.size(), 1u);
}

}  // namespace
}  // namespace stateslice
