#include "src/common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace stateslice {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, DoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RngTest, BoundedStaysInBound) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NextBounded(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(RngTest, BoundedRoughlyUniform) {
  Rng rng(17);
  int counts[8] = {};
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(8)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.125, 0.01);
  }
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(19);
  const double rate = 0.25;  // mean 4
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(rate);
  EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(RngTest, ExponentialAlwaysPositive) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.NextExponential(10.0), 0.0);
  }
}

TEST(RngTest, ForkIsIndependentOfLaterParentUse) {
  Rng parent1(31);
  Rng child1 = parent1.Fork();
  Rng parent2(31);
  Rng child2 = parent2.Fork();
  // Children from identically-seeded parents agree...
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(child1.NextU64(), child2.NextU64());
  }
  // ...and differ from the parent stream.
  Rng parent3(31);
  Rng child3 = parent3.Fork();
  EXPECT_NE(child3.NextU64(), parent3.NextU64());
}

}  // namespace
}  // namespace stateslice
