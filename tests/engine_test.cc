// Engine facade: long-lived sessions, push-based ingestion, online query
// registration, subscriptions and unified metrics — validated against the
// brute-force oracle join.
#include "src/api/engine.h"

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <string>
#include <vector>

#include "src/stateslice.h"
#include "tests/test_util.h"

namespace stateslice {
namespace {

using ::stateslice::testing::A;
using ::stateslice::testing::OracleJoin;
using ::stateslice::testing::SegmentedOracle;
using ::stateslice::testing::StrictIncreaseAt;

Workload SmallWorkload(uint64_t seed = 3, double duration_s = 12) {
  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = 25;
  spec.duration_s = duration_s;
  spec.seed = seed;
  return GenerateWorkload(spec);
}

Engine::Options BaseOptions(const Workload& workload) {
  Engine::Options options;
  options.condition = workload.condition;
  options.collect_results = true;
  return options;
}

void PushRange(Engine* engine, const std::vector<Tuple>& merged, size_t from,
               size_t to) {
  for (size_t i = from; i < to && i < merged.size(); ++i) {
    engine->Push(merged[i].side, merged[i]);
  }
}

ContinuousQuery PlainQuery(double window_s, const std::string& name = "") {
  ContinuousQuery q;
  q.name = name;
  q.window = WindowSpec::TimeSeconds(window_s);
  return q;
}

TEST(EngineTest, LifecycleMatchesOracle) {
  const Workload workload = SmallWorkload(3);
  Engine engine(BaseOptions(workload));

  ContinuousQuery q1 = PlainQuery(2, "Q1");
  ContinuousQuery q2 = PlainQuery(6, "Q2");
  q2.selection_a = Predicate::GreaterThan(0.4);
  const QueryHandle h1 = engine.RegisterQuery(q1);
  const QueryHandle h2 = engine.RegisterQuery(q2);
  ASSERT_TRUE(h1.valid());
  ASSERT_TRUE(h2.valid());
  EXPECT_NE(h1, h2);
  EXPECT_EQ(engine.active_queries(), 2u);

  const std::vector<Tuple> merged = MergedArrivals(workload);
  PushRange(&engine, merged, 0, merged.size());
  engine.Finish();

  EXPECT_EQ(engine.CollectedResults(h1),
            OracleJoin(workload.stream_a, workload.stream_b,
                       workload.condition, q1));
  EXPECT_EQ(engine.CollectedResults(h2),
            OracleJoin(workload.stream_a, workload.stream_b,
                       workload.condition, q2));
  EXPECT_EQ(engine.ResultsFrom(h1), 0);

  const RunStats stats = engine.Snapshot();
  EXPECT_EQ(stats.input_tuples, merged.size());
  EXPECT_EQ(stats.results_delivered,
            engine.ResultCount(h1) + engine.ResultCount(h2));
  EXPECT_GT(stats.events_processed, stats.input_tuples);
  EXPECT_GT(stats.cost.Total(), 0u);
  EXPECT_FALSE(stats.memory_samples.empty());
  EXPECT_EQ(engine.rebuilds(), 0u);
}

TEST(EngineTest, CqlRegistrationAndErrors) {
  Engine engine;
  EXPECT_FALSE(engine.RegisterQuery("SELECT nonsense").valid());
  EXPECT_FALSE(engine.last_error().empty());
  EXPECT_FALSE(
      engine
          .RegisterQuery(
              "SELECT * FROM A A, B B WHERE A.key = B.key WINDOW 0 s")
          .valid());
  EXPECT_NE(engine.last_error().find("window"), std::string::npos);

  const QueryHandle h = engine.RegisterQuery(
      "SELECT A.* FROM Temp A, Hum B WHERE A.LocationId = B.LocationId "
      "AND A.Value > 0.5 WINDOW 10 s");
  ASSERT_TRUE(h.valid());
  EXPECT_TRUE(engine.IsActive(h));

  // Mixed window kinds are rejected.
  EXPECT_FALSE(
      engine
          .RegisterQuery(
              "SELECT * FROM A A, B B WHERE A.key = B.key WINDOW 100 rows")
          .valid());
  EXPECT_NE(engine.last_error().find("count-based windows"),
            std::string::npos);

  // Unknown handles are rejected without aborting.
  EXPECT_FALSE(engine.UnregisterQuery(QueryHandle{9999}));
  EXPECT_TRUE(engine.UnregisterQuery(h));
  EXPECT_FALSE(engine.IsActive(h));
  EXPECT_FALSE(engine.UnregisterQuery(h));  // already gone
}

TEST(EngineTest, PushDownRequiresSharedPredicate) {
  Engine::Options options;
  options.strategy = SharingStrategy::kPushDown;
  Engine engine(options);
  ContinuousQuery q1 = PlainQuery(2);
  q1.selection_a = Predicate::GreaterThan(0.5);
  ContinuousQuery q2 = PlainQuery(4);
  q2.selection_a = Predicate::GreaterThan(0.9);
  ASSERT_TRUE(engine.RegisterQuery(q1).valid());
  EXPECT_FALSE(engine.RegisterQuery(q2).valid());
  EXPECT_NE(engine.last_error().find("shared selection"), std::string::npos);
  ContinuousQuery q3 = PlainQuery(4);
  q3.selection_a = Predicate::GreaterThan(0.5);
  EXPECT_TRUE(engine.RegisterQuery(q3).valid());
}

// The PR's acceptance criterion: a query registered on an already-running
// engine (tuples pushed before and after) delivers exactly the oracle
// results over the post-registration suffix — for the state-slice chain
// (in-place migration) and the pull-up/push-down baselines (drain-rebuild),
// in deterministic and parallel execution modes.
class EngineMidStreamTest
    : public ::testing::TestWithParam<
          std::tuple<SharingStrategy, ExecutionMode>> {};

TEST_P(EngineMidStreamTest, RegisterMidStreamDeliversSuffixOracle) {
  const auto [strategy, mode] = GetParam();
  const Workload workload = SmallWorkload(17);
  Engine::Options options = BaseOptions(workload);
  options.strategy = strategy;
  options.mode = mode;
  options.worker_threads = 3;
  Engine engine(options);

  const QueryHandle h1 = engine.RegisterQuery(PlainQuery(2, "Q1"));
  const QueryHandle h2 = engine.RegisterQuery(PlainQuery(6, "Q2"));
  ASSERT_TRUE(h1.valid());
  ASSERT_TRUE(h2.valid());

  const std::vector<Tuple> merged = MergedArrivals(workload);
  const size_t split = StrictIncreaseAt(merged, merged.size() / 2);
  ASSERT_LT(split, merged.size());
  PushRange(&engine, merged, 0, split);

  // Online registration: window 4 s is interior to the [2, 6) slice.
  const QueryHandle h3 = engine.RegisterQuery(PlainQuery(4, "Q3"));
  ASSERT_TRUE(h3.valid()) << engine.last_error();
  const TimePoint cutoff = engine.ResultsFrom(h3);
  EXPECT_GT(cutoff, 0);
  EXPECT_LE(cutoff, merged[split].timestamp);

  PushRange(&engine, merged, split, merged.size());
  engine.Finish();

  if (strategy == SharingStrategy::kStateSlice) {
    // Served in place by ChainMigrator: zero rebuilds, existing queries
    // keep full continuity.
    EXPECT_EQ(engine.rebuilds(), 0u);
    EXPECT_EQ(engine.migrations(), 1u);
  } else {
    EXPECT_EQ(engine.rebuilds(), 1u);
  }

  // The newcomer sees exactly the join over the post-registration suffix.
  EXPECT_EQ(engine.CollectedResults(h3),
            SegmentedOracle(workload.stream_a, workload.stream_b,
                            workload.condition, PlainQuery(4), cutoff,
                            engine.rebuild_cutoffs()))
      << "strategy=" << static_cast<int>(strategy)
      << " mode=" << static_cast<int>(mode);

  // Survivors: full oracle under migration; segmented by the rebuild
  // cutoff otherwise.
  EXPECT_EQ(engine.CollectedResults(h1),
            SegmentedOracle(workload.stream_a, workload.stream_b,
                            workload.condition, PlainQuery(2), 0,
                            engine.rebuild_cutoffs()));
  EXPECT_EQ(engine.CollectedResults(h2),
            SegmentedOracle(workload.stream_a, workload.stream_b,
                            workload.condition, PlainQuery(6), 0,
                            engine.rebuild_cutoffs()));
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndModes, EngineMidStreamTest,
    ::testing::Combine(::testing::Values(SharingStrategy::kStateSlice,
                                         SharingStrategy::kPullUp,
                                         SharingStrategy::kPushDown),
                       ::testing::Values(ExecutionMode::kDeterministic,
                                         ExecutionMode::kParallel)));

TEST(EngineTest, RegisterMidStreamWithSelectionFallsBackToRebuild) {
  // Selections make the chain ineligible for ChainMigrator, so the engine
  // must take the drain-rebuild path even for state-slice.
  const Workload workload = SmallWorkload(23);
  Engine engine(BaseOptions(workload));
  ContinuousQuery q1 = PlainQuery(2, "Q1");
  q1.selection_a = Predicate::GreaterThan(0.3);
  const QueryHandle h1 = engine.RegisterQuery(q1);
  ASSERT_TRUE(h1.valid());

  const std::vector<Tuple> merged = MergedArrivals(workload);
  const size_t split = StrictIncreaseAt(merged, merged.size() / 3);
  PushRange(&engine, merged, 0, split);
  ContinuousQuery q2 = PlainQuery(5, "Q2");
  q2.selection_a = Predicate::GreaterThan(0.7);
  const QueryHandle h2 = engine.RegisterQuery(q2);
  ASSERT_TRUE(h2.valid()) << engine.last_error();
  PushRange(&engine, merged, split, merged.size());
  engine.Finish();

  EXPECT_EQ(engine.rebuilds(), 1u);
  EXPECT_EQ(engine.migrations(), 0u);
  for (const auto& [handle, query] :
       {std::pair{h1, q1}, std::pair{h2, q2}}) {
    EXPECT_EQ(engine.CollectedResults(handle),
              SegmentedOracle(workload.stream_a, workload.stream_b,
                              workload.condition, query,
                              engine.ResultsFrom(handle),
                              engine.rebuild_cutoffs()))
        << query.DebugString();
  }
}

TEST(EngineTest, UnregisterOnChainKeepsSurvivorsExact) {
  const Workload workload = SmallWorkload(29);
  Engine engine(BaseOptions(workload));
  const QueryHandle h1 = engine.RegisterQuery(PlainQuery(2, "Q1"));
  const QueryHandle h2 = engine.RegisterQuery(PlainQuery(4, "Q2"));
  const QueryHandle h3 = engine.RegisterQuery(PlainQuery(8, "Q3"));
  ASSERT_EQ(engine.active_queries(), 3u);

  const std::vector<Tuple> merged = MergedArrivals(workload);
  const size_t split = StrictIncreaseAt(merged, merged.size() / 2);
  PushRange(&engine, merged, 0, split);
  ASSERT_EQ(engine.ChainSlices().size(), 3u);

  const uint64_t q2_at_removal = engine.ResultCount(h2);
  ASSERT_TRUE(engine.UnregisterQuery(h2));
  EXPECT_EQ(engine.rebuilds(), 0u);  // in-place removal
  EXPECT_FALSE(engine.IsActive(h2));

  // Compaction merges the now-unused 4 s boundary (Section 5.3).
  EXPECT_EQ(engine.CompactChain(), 1);
  EXPECT_EQ(engine.ChainSlices().size(), 2u);

  PushRange(&engine, merged, split, merged.size());
  engine.Finish();

  // The removed query's totals froze at removal; survivors stay exact.
  EXPECT_EQ(engine.ResultCount(h2), q2_at_removal);
  EXPECT_EQ(engine.CollectedResults(h1),
            OracleJoin(workload.stream_a, workload.stream_b,
                       workload.condition, PlainQuery(2)));
  EXPECT_EQ(engine.CollectedResults(h3),
            OracleJoin(workload.stream_a, workload.stream_b,
                       workload.condition, PlainQuery(8)));
}

TEST(EngineTest, UnregisterLastQueryIdlesEngineAndDropsTuples) {
  const Workload workload = SmallWorkload(31, 6);
  Engine engine(BaseOptions(workload));
  const QueryHandle h1 = engine.RegisterQuery(PlainQuery(2, "Q1"));
  const std::vector<Tuple> merged = MergedArrivals(workload);
  const size_t split = StrictIncreaseAt(merged, merged.size() / 2);
  PushRange(&engine, merged, 0, split);
  ASSERT_TRUE(engine.UnregisterQuery(h1));
  EXPECT_FALSE(engine.running());

  PushRange(&engine, merged, split, merged.size());
  EXPECT_EQ(engine.dropped_tuples(), merged.size() - split);
  engine.Finish();
  // All pre-removal results were flushed and kept; the dropped suffix
  // contributed nothing.
  auto prefix_of = [&](const std::vector<Tuple>& stream) {
    std::vector<Tuple> prefix;
    for (const Tuple& t : stream) {
      if (t.timestamp < merged[split].timestamp) prefix.push_back(t);
    }
    return prefix;
  };
  EXPECT_EQ(engine.CollectedResults(h1),
            OracleJoin(prefix_of(workload.stream_a),
                       prefix_of(workload.stream_b), workload.condition,
                       PlainQuery(2)));
}

TEST(EngineTest, TuplesBeforeFirstQueryAreDropped) {
  const Workload workload = SmallWorkload(37, 8);
  Engine engine(BaseOptions(workload));
  const std::vector<Tuple> merged = MergedArrivals(workload);
  const size_t split = StrictIncreaseAt(merged, merged.size() / 2);
  PushRange(&engine, merged, 0, split);
  EXPECT_EQ(engine.dropped_tuples(), split);
  EXPECT_FALSE(engine.running());

  const QueryHandle h = engine.RegisterQuery(PlainQuery(3, "Q1"));
  ASSERT_TRUE(h.valid());
  EXPECT_GT(engine.ResultsFrom(h), 0);
  PushRange(&engine, merged, split, merged.size());
  engine.Finish();
  EXPECT_EQ(engine.CollectedResults(h),
            SegmentedOracle(workload.stream_a, workload.stream_b,
                            workload.condition, PlainQuery(3),
                            engine.ResultsFrom(h),
                            engine.rebuild_cutoffs()));
}

TEST(EngineTest, MalformedArrivalsAreRejectedWithReasons) {
  // Ingestion-hardening pins: NaN values, out-of-range or out-of-order
  // timestamps, and negative stream ids bounce with a counted rejection
  // and a one-line reason — never ingested, never a crash, watermark
  // unmoved.
  Engine::Options options;
  options.collect_results = true;
  Engine engine(options);
  ASSERT_TRUE(engine.RegisterQuery(PlainQuery(2, "Q1")).valid());

  Tuple ok = A(0, 1.0);
  engine.Push(StreamSide::kA, ok);
  ASSERT_EQ(engine.input_tuples(), 1u);
  const TimePoint at = engine.watermark();

  Tuple nan = A(1, 2.0);
  nan.value = std::numeric_limits<double>::quiet_NaN();
  engine.Push(StreamSide::kA, nan);
  EXPECT_EQ(engine.rejected_tuples(), 1u);
  EXPECT_NE(engine.last_error().find("NaN"), std::string::npos);

  Tuple sentinel = A(2, 2.0);
  sentinel.timestamp = kMaxTime;
  engine.Push(StreamSide::kA, sentinel);
  EXPECT_EQ(engine.rejected_tuples(), 2u);
  EXPECT_NE(engine.last_error().find("out-of-order or out-of-range"),
            std::string::npos);

  Tuple negative = A(3, 2.0);
  engine.Push(/*stream=*/-3, negative);
  EXPECT_EQ(engine.rejected_tuples(), 3u);
  EXPECT_NE(engine.last_error().find("negative stream id"),
            std::string::npos);

  // Per-stream counts index by stream id; the negative id counted only in
  // the total.
  EXPECT_EQ(engine.rejected_by_stream()[static_cast<size_t>(StreamSide::kA)],
            2u);
  EXPECT_EQ(engine.watermark(), at);
  EXPECT_EQ(engine.input_tuples(), 1u);

  // Rejections feed the unified metrics.
  const RunStats stats = engine.Snapshot();
  EXPECT_EQ(stats.rejected_tuples, 3u);
  EXPECT_NE(stats.DebugString().find("rejected=3"), std::string::npos);
}

TEST(EngineTest, MalformedBatchBouncesAsAUnit) {
  // A batch with one bad tuple is rejected whole — no half-ingested
  // prefix — naming the first offending index.
  Engine engine;
  ASSERT_TRUE(engine.RegisterQuery(PlainQuery(2, "Q1")).valid());
  std::vector<Tuple> batch = {A(0, 1.0), A(1, 2.0), A(2, 1.5)};  // disorder
  engine.PushBatch(StreamSide::kA, batch);
  EXPECT_EQ(engine.input_tuples(), 0u);
  EXPECT_EQ(engine.rejected_tuples(), batch.size());
  EXPECT_NE(engine.last_error().find("index 2"), std::string::npos);
  EXPECT_EQ(engine.watermark(), 0);

  batch[2].timestamp = batch[1].timestamp;  // repaired: ties are fine
  engine.PushBatch(StreamSide::kA, batch);
  EXPECT_EQ(engine.input_tuples(), batch.size());
  EXPECT_EQ(engine.rejected_tuples(), 3u);
}

TEST(EngineTest, SubscriptionsDeliverEveryResultAcrossChurn) {
  const Workload workload = SmallWorkload(41);
  Engine engine(BaseOptions(workload));
  const QueryHandle h1 = engine.RegisterQuery(PlainQuery(2, "Q1"));
  uint64_t q1_callbacks = 0;
  const SubscriptionId sub =
      engine.Subscribe(h1, [&q1_callbacks](const JoinResult&) {
        ++q1_callbacks;
      });
  ASSERT_TRUE(sub.valid());
  EXPECT_FALSE(engine.Subscribe(QueryHandle{424242}, nullptr).valid());

  const std::vector<Tuple> merged = MergedArrivals(workload);
  const size_t split = StrictIncreaseAt(merged, merged.size() / 2);
  PushRange(&engine, merged, 0, split);

  // A mid-stream subscription on a freshly registered query.
  const QueryHandle h2 = engine.RegisterQuery(PlainQuery(5, "Q2"));
  std::map<std::string, int> q2_multiset;
  const SubscriptionId sub2 =
      engine.Subscribe(h2, [&q2_multiset](const JoinResult& r) {
        ++q2_multiset[JoinPairKey(r)];
      });
  ASSERT_TRUE(sub2.valid());

  PushRange(&engine, merged, split, merged.size());
  engine.Finish();

  // The callback sink saw exactly what the counting sink counted, through
  // the Q2 registration (which splits the chain in place).
  EXPECT_EQ(q1_callbacks, engine.ResultCount(h1));
  EXPECT_EQ(q2_multiset, engine.CollectedResults(h2));
}

TEST(EngineTest, UnsubscribeStopsDelivery) {
  const Workload workload = SmallWorkload(43, 8);
  Engine engine(BaseOptions(workload));
  const QueryHandle h = engine.RegisterQuery(PlainQuery(2, "Q1"));
  uint64_t callbacks = 0;
  const SubscriptionId sub =
      engine.Subscribe(h, [&callbacks](const JoinResult&) { ++callbacks; });

  const std::vector<Tuple> merged = MergedArrivals(workload);
  const size_t split = StrictIncreaseAt(merged, merged.size() / 2);
  PushRange(&engine, merged, 0, split);
  const uint64_t at_unsubscribe = callbacks;
  EXPECT_TRUE(engine.Unsubscribe(sub));
  EXPECT_FALSE(engine.Unsubscribe(sub));  // already gone
  PushRange(&engine, merged, split, merged.size());
  engine.Finish();
  EXPECT_EQ(callbacks, at_unsubscribe);
  EXPECT_GT(engine.ResultCount(h), at_unsubscribe);  // query kept running
}

TEST(EngineTest, ManualPollMode) {
  const Workload workload = SmallWorkload(47, 8);
  Engine::Options options = BaseOptions(workload);
  options.auto_drain = false;
  Engine engine(options);
  const QueryHandle h = engine.RegisterQuery(PlainQuery(4, "Q1"));

  const std::vector<Tuple> merged = MergedArrivals(workload);
  PushRange(&engine, merged, 0, merged.size());
  // Nothing processed yet: results appear only as the caller polls.
  EXPECT_EQ(engine.ResultCount(h), 0u);
  uint64_t polled = 0;
  while (engine.Poll(64) > 0) ++polled;
  EXPECT_GT(polled, 0u);
  engine.Drain();
  engine.Finish();
  EXPECT_EQ(engine.CollectedResults(h),
            OracleJoin(workload.stream_a, workload.stream_b,
                       workload.condition, PlainQuery(4)));
}

TEST(EngineTest, ParallelMatchesDeterministic) {
  const Workload workload = SmallWorkload(53);
  const std::vector<Tuple> merged = MergedArrivals(workload);
  std::map<std::string, int> results[2];
  for (int parallel = 0; parallel < 2; ++parallel) {
    Engine::Options options = BaseOptions(workload);
    options.mode = parallel == 1 ? ExecutionMode::kParallel
                                 : ExecutionMode::kDeterministic;
    options.worker_threads = 3;
    Engine engine(options);
    ContinuousQuery q = PlainQuery(4, "Q1");
    q.selection_a = Predicate::GreaterThan(0.2);
    const QueryHandle h = engine.RegisterQuery(q);
    PushRange(&engine, merged, 0, merged.size());
    engine.Finish();
    results[parallel] = engine.CollectedResults(h);
    EXPECT_FALSE(results[parallel].empty());
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST(EngineTest, SnapshotAggregatesAcrossRebuilds) {
  const Workload workload = SmallWorkload(59);
  Engine::Options options = BaseOptions(workload);
  options.strategy = SharingStrategy::kPullUp;  // every churn op rebuilds
  Engine engine(options);
  const QueryHandle h1 = engine.RegisterQuery(PlainQuery(2, "Q1"));

  const std::vector<Tuple> merged = MergedArrivals(workload);
  const size_t s1 = StrictIncreaseAt(merged, merged.size() / 3);
  const size_t s2 = StrictIncreaseAt(merged, 2 * merged.size() / 3);
  PushRange(&engine, merged, 0, s1);
  const RunStats before = engine.Snapshot();
  const QueryHandle h2 = engine.RegisterQuery(PlainQuery(6, "Q2"));
  PushRange(&engine, merged, s1, s2);
  ASSERT_TRUE(engine.UnregisterQuery(h2));
  PushRange(&engine, merged, s2, merged.size());
  engine.Finish();

  EXPECT_EQ(engine.rebuilds(), 2u);
  ASSERT_EQ(engine.rebuild_cutoffs().size(), 2u);
  const RunStats after = engine.Snapshot();
  EXPECT_EQ(after.input_tuples, merged.size());
  EXPECT_GE(after.events_processed, before.events_processed);
  EXPECT_GE(after.cost.Total(), before.cost.Total());
  EXPECT_EQ(after.results_delivered,
            engine.ResultCount(h1) + engine.ResultCount(h2));
  // Q1's cumulative delivery is the segment-split oracle.
  EXPECT_EQ(engine.CollectedResults(h1),
            SegmentedOracle(workload.stream_a, workload.stream_b,
                            workload.condition, PlainQuery(2), 0,
                            engine.rebuild_cutoffs()));
}

TEST(EngineTest, RegistrationAdvancesWatermarkPastTies) {
  // Registering mid-stream advances the session watermark to the cutoff,
  // so a later arrival can never tie with pre-registration tuples — both
  // churn paths then deliver exactly the post-cutoff join (a tie would
  // otherwise leak a pre-cutoff pair into the rebuilt plan).
  const Workload workload = SmallWorkload(67, 6);
  Engine::Options options = BaseOptions(workload);
  options.strategy = SharingStrategy::kPullUp;  // rebuild path
  Engine engine(options);
  const QueryHandle h1 = engine.RegisterQuery(PlainQuery(2, "Q1"));
  ASSERT_TRUE(h1.valid());
  Tuple a = workload.stream_a.front();
  a.timestamp = SecondsToTicks(1.0);
  engine.Push(StreamSide::kA, a);
  const TimePoint before = engine.watermark();
  const QueryHandle h2 = engine.RegisterQuery(PlainQuery(4, "Q2"));
  ASSERT_TRUE(h2.valid());
  EXPECT_EQ(engine.watermark(), before + 1);
  EXPECT_EQ(engine.ResultsFrom(h2), engine.watermark());
  // A tuple tying with the pre-registration arrival is now out of order:
  // rejected (counted, reasoned), never ingested, watermark unmoved.
  Tuple b = workload.stream_b.front();
  b.timestamp = before;
  const TimePoint at = engine.watermark();
  engine.Push(StreamSide::kB, b);
  EXPECT_EQ(engine.rejected_tuples(), 1u);
  EXPECT_EQ(engine.rejected_by_stream()[static_cast<size_t>(StreamSide::kB)],
            1u);
  EXPECT_NE(engine.last_error().find("out-of-order"), std::string::npos);
  EXPECT_EQ(engine.watermark(), at);
}

TEST(EngineTest, LazyBuildDoesNotFakeACutoff) {
  // A plan built lazily (PlanDot) without any pushed tuple must not make
  // the next registration look mid-stream: results_from stays 0 and the
  // query sees pairs involving timestamp-0 tuples.
  const Workload workload = SmallWorkload(71, 6);
  Engine engine(BaseOptions(workload));
  const QueryHandle h1 = engine.RegisterQuery(PlainQuery(2, "Q1"));
  ASSERT_TRUE(h1.valid());
  EXPECT_NE(engine.PlanDot(), "");  // builds the plan, nothing pushed
  const QueryHandle h2 = engine.RegisterQuery(PlainQuery(4, "Q2"));
  ASSERT_TRUE(h2.valid());
  EXPECT_EQ(engine.ResultsFrom(h2), 0);
  EXPECT_TRUE(engine.rebuild_cutoffs().empty());

  const std::vector<Tuple> merged = MergedArrivals(workload);
  PushRange(&engine, merged, 0, merged.size());
  engine.Finish();
  EXPECT_EQ(engine.CollectedResults(h2),
            OracleJoin(workload.stream_a, workload.stream_b,
                       workload.condition, PlainQuery(4)));
}

TEST(EngineTest, PlanDotAndChainSlices) {
  const Workload workload = SmallWorkload(61, 6);
  Engine engine(BaseOptions(workload));
  EXPECT_EQ(engine.PlanDot(), "");  // idle
  engine.RegisterQuery(PlainQuery(2, "Q1"));
  engine.RegisterQuery(PlainQuery(4, "Q2"));
  const std::string dot = engine.PlanDot();  // builds lazily
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("slice"), std::string::npos);
  const auto slices = engine.ChainSlices();
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].range.start, 0);
  EXPECT_EQ(slices[0].range.end, SecondsToTicks(2));
  EXPECT_EQ(slices[1].range.end, SecondsToTicks(4));
}

}  // namespace
}  // namespace stateslice
