#include "src/runtime/scheduler.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/operators/split.h"
#include "src/runtime/sink.h"
#include "tests/test_util.h"

namespace stateslice {
namespace {

using ::stateslice::testing::A;

// A pass-through operator that counts how many events it handled.
class CountingPass : public Operator {
 public:
  explicit CountingPass(std::string name) : Operator(std::move(name)) {}
  void Process(Event event, int) override {
    ++processed;
    Emit(0, event);
  }
  int processed = 0;
};

struct PipelinePlan {
  QueryPlan plan;
  EventQueue* entry = nullptr;
  CountingPass* first = nullptr;
  CountingPass* second = nullptr;
  CountingSink* sink = nullptr;
};

std::unique_ptr<PipelinePlan> MakePipeline() {
  auto p = std::make_unique<PipelinePlan>();
  p->first = p->plan.AddOperator(std::make_unique<CountingPass>("p1"));
  p->second = p->plan.AddOperator(std::make_unique<CountingPass>("p2"));
  p->sink = p->plan.AddOperator(std::make_unique<CountingSink>("sink"));
  p->entry = p->plan.AddEntryQueue("entry", p->first, 0);
  p->plan.Connect(p->first, 0, p->second, 0);
  p->plan.Connect(p->second, 0, p->sink, 0);
  p->plan.Start();
  return p;
}

TEST(SchedulerTest, DrainsPipelineToQuiescence) {
  auto p = MakePipeline();
  for (int i = 0; i < 10; ++i) p->entry->Push(A(i, i));
  RoundRobinScheduler scheduler(&p->plan);
  const uint64_t events = scheduler.RunUntilQuiescent();
  // 10 events through 3 consumer edges.
  EXPECT_EQ(events, 30u);
  EXPECT_EQ(p->sink->tuple_count(), 10u);
  EXPECT_EQ(p->plan.TotalQueueSize(), 0u);
}

TEST(SchedulerTest, RunSomeRespectsBudget) {
  auto p = MakePipeline();
  for (int i = 0; i < 10; ++i) p->entry->Push(A(i, i));
  RoundRobinScheduler scheduler(&p->plan, /*quantum=*/2);
  const uint64_t n = scheduler.RunSome(5);
  EXPECT_EQ(n, 5u);
  EXPECT_EQ(scheduler.total_processed(), 5u);
  scheduler.RunUntilQuiescent();
  EXPECT_EQ(p->sink->tuple_count(), 10u);
}

TEST(SchedulerTest, QuiescentReturnsZeroWithoutInput) {
  auto p = MakePipeline();
  RoundRobinScheduler scheduler(&p->plan);
  EXPECT_EQ(scheduler.RunUntilQuiescent(), 0u);
}

TEST(SchedulerTest, QuantumLimitsPerVisitConsumption) {
  auto p = MakePipeline();
  for (int i = 0; i < 8; ++i) p->entry->Push(A(i, i));
  RoundRobinScheduler scheduler(&p->plan, /*quantum=*/3);
  // First visit takes at most 3 events from the entry edge.
  scheduler.RunSome(3);
  EXPECT_EQ(p->first->processed, 3);
  scheduler.RunUntilQuiescent();
  EXPECT_EQ(p->first->processed, 8);
  EXPECT_EQ(p->second->processed, 8);
}

TEST(SchedulerTest, TotalProcessedAccumulatesAcrossCalls) {
  auto p = MakePipeline();
  RoundRobinScheduler scheduler(&p->plan);
  p->entry->Push(A(1, 1.0));
  scheduler.RunUntilQuiescent();
  p->entry->Push(A(2, 2.0));
  scheduler.RunUntilQuiescent();
  EXPECT_EQ(scheduler.total_processed(), 6u);
}

}  // namespace
}  // namespace stateslice
