// Randomized (fuzz-style) equivalence testing.
//
// For dozens of seeded random configurations — random window sets, random
// per-query selections, random chain partitions, random join selectivities
// and rates — every query's delivered result multiset must equal the
// oracle nested-loop evaluation over the raw streams. These runs exercise
// interactions the hand-written cases may miss: duplicate windows, slices
// with extreme spans, selective and vacuous predicates, merged slices with
// several interior boundaries, and tie-heavy timestamp patterns.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/stateslice.h"
#include "tests/test_util.h"

namespace stateslice {
namespace {

using ::stateslice::testing::DrawFuzzConfig;
using ::stateslice::testing::FuzzConfig;
using ::stateslice::testing::OracleJoin;
using ::stateslice::testing::RunPlan;

class FuzzEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzEquivalenceTest, RandomConfigMatchesOracle) {
  const FuzzConfig config = DrawFuzzConfig(GetParam());
  SCOPED_TRACE(config.DebugString());

  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = config.rate;
  spec.duration_s = 10;
  spec.join_selectivity = config.s1;
  spec.seed = config.workload_seed;
  const Workload workload = GenerateWorkload(spec);

  BuildOptions options;
  options.condition = workload.condition;
  options.collect_results = true;
  options.use_lineage = config.use_lineage;
  BuiltPlan built =
      BuildStateSlicePlan(config.queries, config.chain, options);
  RunPlan(&built, workload);

  for (const ContinuousQuery& q : config.queries) {
    EXPECT_EQ(built.collectors[q.id]->ResultMultiset(),
              OracleJoin(workload.stream_a, workload.stream_b,
                         workload.condition, q))
        << q.DebugString();
    EXPECT_TRUE(built.collectors[q.id]->saw_ordered_stream())
        << q.DebugString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalenceTest,
                         ::testing::Range(uint64_t{1}, uint64_t{33}));

// Same idea against the baselines: random shared-predicate workloads must
// agree across pull-up and push-down too.
class FuzzBaselineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzBaselineTest, BaselinesMatchOracle) {
  Rng rng(GetParam() * 7919);
  const int num_queries = 2 + static_cast<int>(rng.NextBounded(4));
  const Predicate shared =
      Predicate::WithSelectivity(0.2 + 0.1 * rng.NextBounded(7));
  std::vector<ContinuousQuery> queries(num_queries);
  for (int q = 0; q < num_queries; ++q) {
    queries[q].id = q;
    queries[q].name = "Q" + std::to_string(q + 1);
    queries[q].window = WindowSpec::TimeSeconds(
        0.5 * (1 + static_cast<double>(rng.NextBounded(12))));
    if (rng.NextBounded(2) == 1) queries[q].selection_a = shared;
  }

  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = 20;
  spec.duration_s = 8;
  spec.join_selectivity = 0.1;
  spec.seed = rng.NextU64();
  const Workload workload = GenerateWorkload(spec);
  BuildOptions options;
  options.condition = workload.condition;
  options.collect_results = true;

  BuiltPlan pullup = BuildPullUpPlan(queries, options);
  RunPlan(&pullup, workload);
  BuiltPlan pushdown = BuildPushDownPlan(queries, options);
  RunPlan(&pushdown, workload);

  for (const ContinuousQuery& q : queries) {
    const auto expected = OracleJoin(workload.stream_a, workload.stream_b,
                                     workload.condition, q);
    EXPECT_EQ(pullup.collectors[q.id]->ResultMultiset(), expected)
        << "pullup " << q.DebugString();
    EXPECT_EQ(pushdown.collectors[q.id]->ResultMultiset(), expected)
        << "pushdown " << q.DebugString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzBaselineTest,
                         ::testing::Range(uint64_t{1}, uint64_t{17}));

// Random migration schedules: split/merge at random times, random surviving
// query set must still match the oracle.
class FuzzMigrationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzMigrationTest, RandomSplitMergeScheduleKeepsResults) {
  Rng rng(GetParam() * 104729);
  std::vector<ContinuousQuery> queries(3);
  const double w1 = 1.0 + static_cast<double>(rng.NextBounded(3));
  const double w2 = w1 + 1.0 + static_cast<double>(rng.NextBounded(3));
  const double w3 = w2 + 1.0 + static_cast<double>(rng.NextBounded(3));
  queries[0] = {0, "Q1", WindowSpec::TimeSeconds(w1), {}, {}};
  queries[1] = {1, "Q2", WindowSpec::TimeSeconds(w2), {}, {}};
  queries[2] = {2, "Q3", WindowSpec::TimeSeconds(w3), {}, {}};

  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = 20;
  spec.duration_s = 12;
  spec.seed = rng.NextU64();
  const Workload workload = GenerateWorkload(spec);
  BuildOptions options;
  options.condition = workload.condition;
  options.collect_results = true;
  BuiltPlan built =
      BuildStateSlicePlan(queries, BuildMemOptChain(queries), options);

  std::vector<Tuple> merged;
  merged.insert(merged.end(), workload.stream_a.begin(),
                workload.stream_a.end());
  merged.insert(merged.end(), workload.stream_b.begin(),
                workload.stream_b.end());
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Tuple& x, const Tuple& y) {
                     return x.timestamp < y.timestamp;
                   });

  RoundRobinScheduler scheduler(built.plan.get());
  const size_t mutate_at = merged.size() / 3;
  const size_t mutate_at2 = 2 * merged.size() / 3;
  for (size_t i = 0; i < merged.size(); ++i) {
    built.entry->Push(merged[i]);
    scheduler.RunUntilQuiescent();
    if (i == mutate_at) {
      ChainMigrator migrator(&built);
      // Split the middle slice somewhere random inside its range.
      const SliceRange r = built.slices[1].join->range();
      const Duration boundary =
          r.start + 1 +
          static_cast<Duration>(rng.NextBounded(
              static_cast<uint64_t>(r.end - r.start - 1)));
      migrator.SplitSlice(1, boundary);
    }
    if (i == mutate_at2) {
      ChainMigrator migrator(&built);
      migrator.MergeSlices(1);  // undo the split
    }
  }
  built.plan->FinishAll();
  scheduler.RunUntilQuiescent();

  for (const ContinuousQuery& q : queries) {
    EXPECT_EQ(built.collectors[q.id]->ResultMultiset(),
              OracleJoin(workload.stream_a, workload.stream_b,
                         workload.condition, q))
        << q.DebugString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzMigrationTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

// Sharded-vs-deterministic equivalence over the same random config space,
// crossed with shard counts {1, 2, 8}, uniform and Zipf-skewed key
// domains, and both run-length settings. The deterministic Engine is the
// reference; both must equal the oracle. Key partitioning requires
// equi-key predicates, so every workload is rekeyed (the uniform-key
// model of RekeyForEquiJoin, or Zipf(1.1) skew on odd seeds — skew drives
// one shard's ring into overflow, exercising the spill/steal path).
class ShardedFuzzEquivalenceTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardedFuzzEquivalenceTest, ShardedMatchesDeterministicAndOracle) {
  const uint64_t seed = GetParam();
  const FuzzConfig config = DrawFuzzConfig(seed);
  SCOPED_TRACE(config.DebugString());

  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = config.rate;
  spec.duration_s = 10;
  spec.join_selectivity = config.s1;
  spec.seed = config.workload_seed;
  Workload workload = GenerateWorkload(spec);
  const int64_t key_domains[] = {4, 16, 64};
  const int64_t key_domain = key_domains[seed % 3];
  if (seed % 2 == 1) {
    RekeyForEquiJoinZipf(&workload, key_domain, 1.1, seed * 131);
  } else {
    RekeyForEquiJoin(&workload, key_domain, seed * 131);
  }

  Engine::Options options;
  options.condition = workload.condition;
  options.collect_results = true;
  options.use_lineage = config.use_lineage;

  Engine reference(options);
  std::vector<QueryHandle> ref_handles;
  for (const ContinuousQuery& q : config.queries) {
    ref_handles.push_back(reference.RegisterQuery(q));
    ASSERT_TRUE(ref_handles.back().valid()) << reference.last_error();
  }

  options.mode = ExecutionMode::kSharded;
  const int shard_counts[] = {1, 2, 8};
  options.shard_count = shard_counts[(seed / 3) % 3];
  options.run_length = seed % 2 == 0 ? 0 : 16;
  // Small rings on some seeds so spill (and possibly steal) paths run.
  options.parallel_edge_capacity = seed % 4 == 0 ? 16 : 256;
  Engine sharded(options);
  std::vector<QueryHandle> shard_handles;
  for (const ContinuousQuery& q : config.queries) {
    shard_handles.push_back(sharded.RegisterQuery(q));
    ASSERT_TRUE(shard_handles.back().valid()) << sharded.last_error();
  }

  for (const Tuple& t : MergedArrivals(workload)) {
    reference.Push(t.side, t);
    sharded.Push(t.side, t);
  }
  reference.Finish();
  sharded.Finish();

  for (size_t q = 0; q < config.queries.size(); ++q) {
    const auto expected = OracleJoin(workload.stream_a, workload.stream_b,
                                     workload.condition, config.queries[q]);
    EXPECT_EQ(reference.CollectedResults(ref_handles[q]), expected)
        << "deterministic " << config.queries[q].DebugString();
    EXPECT_EQ(sharded.CollectedResults(shard_handles[q]), expected)
        << "sharded " << config.queries[q].DebugString();
    EXPECT_EQ(sharded.ResultCount(shard_handles[q]),
              reference.ResultCount(ref_handles[q]))
        << config.queries[q].DebugString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedFuzzEquivalenceTest,
                         ::testing::Range(uint64_t{1}, uint64_t{19}));

}  // namespace
}  // namespace stateslice
