// Randomized (fuzz-style) equivalence testing.
//
// For dozens of seeded random configurations — random window sets, random
// per-query selections, random chain partitions, random join selectivities
// and rates — every query's delivered result multiset must equal the
// oracle nested-loop evaluation over the raw streams. These runs exercise
// interactions the hand-written cases may miss: duplicate windows, slices
// with extreme spans, selective and vacuous predicates, merged slices with
// several interior boundaries, and tie-heavy timestamp patterns.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/stateslice.h"
#include "tests/test_util.h"

namespace stateslice {
namespace {

using ::stateslice::testing::OracleJoin;
using ::stateslice::testing::RunPlan;

// Draws a random query workload + chain partition from `rng`.
struct FuzzConfig {
  std::vector<ContinuousQuery> queries;
  ChainPlan chain;
  double s1 = 0.1;
  double rate = 25.0;
  uint64_t workload_seed = 0;
  bool use_lineage = false;
  std::string DebugString() const {
    std::string s = "queries:";
    for (const auto& q : queries) s += " " + q.DebugString();
    s += " partition " + chain.partition.DebugString();
    return s;
  }
};

FuzzConfig DrawConfig(uint64_t seed) {
  Rng rng(seed);
  FuzzConfig config;
  const int num_queries = 1 + static_cast<int>(rng.NextBounded(6));
  config.queries.resize(num_queries);
  for (int q = 0; q < num_queries; ++q) {
    config.queries[q].id = q;
    config.queries[q].name = "Q" + std::to_string(q + 1);
    // Windows 0.5 .. 8.0 s in half-second steps; duplicates allowed.
    const double w = 0.5 * (1 + static_cast<double>(rng.NextBounded(16)));
    config.queries[q].window = WindowSpec::TimeSeconds(w);
    // 50%: no selection; else selectivity in {0.2 .. 0.9}.
    if (rng.NextBounded(2) == 1) {
      config.queries[q].selection_a =
          Predicate::WithSelectivity(0.2 + 0.1 * rng.NextBounded(8));
    }
  }
  config.chain.spec = BuildChainSpec(config.queries);
  // Random partition: keep each interior boundary with probability 1/2.
  const int m = config.chain.spec.num_boundaries();
  for (int k = 0; k + 1 < m; ++k) {
    if (rng.NextBounded(2) == 0) {
      config.chain.partition.slice_end_boundaries.push_back(k);
    }
  }
  config.chain.partition.slice_end_boundaries.push_back(m - 1);
  const double s1_choices[] = {0.025, 0.1, 0.25, 0.5};
  config.s1 = s1_choices[rng.NextBounded(4)];
  config.rate = 15.0 + static_cast<double>(rng.NextBounded(20));
  config.workload_seed = rng.NextU64();
  config.use_lineage = rng.NextBounded(4) == 0;
  return config;
}

class FuzzEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzEquivalenceTest, RandomConfigMatchesOracle) {
  const FuzzConfig config = DrawConfig(GetParam());
  SCOPED_TRACE(config.DebugString());

  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = config.rate;
  spec.duration_s = 10;
  spec.join_selectivity = config.s1;
  spec.seed = config.workload_seed;
  const Workload workload = GenerateWorkload(spec);

  BuildOptions options;
  options.condition = workload.condition;
  options.collect_results = true;
  options.use_lineage = config.use_lineage;
  BuiltPlan built =
      BuildStateSlicePlan(config.queries, config.chain, options);
  RunPlan(&built, workload);

  for (const ContinuousQuery& q : config.queries) {
    EXPECT_EQ(built.collectors[q.id]->ResultMultiset(),
              OracleJoin(workload.stream_a, workload.stream_b,
                         workload.condition, q))
        << q.DebugString();
    EXPECT_TRUE(built.collectors[q.id]->saw_ordered_stream())
        << q.DebugString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalenceTest,
                         ::testing::Range(uint64_t{1}, uint64_t{33}));

// Same idea against the baselines: random shared-predicate workloads must
// agree across pull-up and push-down too.
class FuzzBaselineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzBaselineTest, BaselinesMatchOracle) {
  Rng rng(GetParam() * 7919);
  const int num_queries = 2 + static_cast<int>(rng.NextBounded(4));
  const Predicate shared =
      Predicate::WithSelectivity(0.2 + 0.1 * rng.NextBounded(7));
  std::vector<ContinuousQuery> queries(num_queries);
  for (int q = 0; q < num_queries; ++q) {
    queries[q].id = q;
    queries[q].name = "Q" + std::to_string(q + 1);
    queries[q].window = WindowSpec::TimeSeconds(
        0.5 * (1 + static_cast<double>(rng.NextBounded(12))));
    if (rng.NextBounded(2) == 1) queries[q].selection_a = shared;
  }

  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = 20;
  spec.duration_s = 8;
  spec.join_selectivity = 0.1;
  spec.seed = rng.NextU64();
  const Workload workload = GenerateWorkload(spec);
  BuildOptions options;
  options.condition = workload.condition;
  options.collect_results = true;

  BuiltPlan pullup = BuildPullUpPlan(queries, options);
  RunPlan(&pullup, workload);
  BuiltPlan pushdown = BuildPushDownPlan(queries, options);
  RunPlan(&pushdown, workload);

  for (const ContinuousQuery& q : queries) {
    const auto expected = OracleJoin(workload.stream_a, workload.stream_b,
                                     workload.condition, q);
    EXPECT_EQ(pullup.collectors[q.id]->ResultMultiset(), expected)
        << "pullup " << q.DebugString();
    EXPECT_EQ(pushdown.collectors[q.id]->ResultMultiset(), expected)
        << "pushdown " << q.DebugString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzBaselineTest,
                         ::testing::Range(uint64_t{1}, uint64_t{17}));

// Random migration schedules: split/merge at random times, random surviving
// query set must still match the oracle.
class FuzzMigrationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzMigrationTest, RandomSplitMergeScheduleKeepsResults) {
  Rng rng(GetParam() * 104729);
  std::vector<ContinuousQuery> queries(3);
  const double w1 = 1.0 + static_cast<double>(rng.NextBounded(3));
  const double w2 = w1 + 1.0 + static_cast<double>(rng.NextBounded(3));
  const double w3 = w2 + 1.0 + static_cast<double>(rng.NextBounded(3));
  queries[0] = {0, "Q1", WindowSpec::TimeSeconds(w1), {}, {}};
  queries[1] = {1, "Q2", WindowSpec::TimeSeconds(w2), {}, {}};
  queries[2] = {2, "Q3", WindowSpec::TimeSeconds(w3), {}, {}};

  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = 20;
  spec.duration_s = 12;
  spec.seed = rng.NextU64();
  const Workload workload = GenerateWorkload(spec);
  BuildOptions options;
  options.condition = workload.condition;
  options.collect_results = true;
  BuiltPlan built =
      BuildStateSlicePlan(queries, BuildMemOptChain(queries), options);

  std::vector<Tuple> merged;
  merged.insert(merged.end(), workload.stream_a.begin(),
                workload.stream_a.end());
  merged.insert(merged.end(), workload.stream_b.begin(),
                workload.stream_b.end());
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Tuple& x, const Tuple& y) {
                     return x.timestamp < y.timestamp;
                   });

  RoundRobinScheduler scheduler(built.plan.get());
  const size_t mutate_at = merged.size() / 3;
  const size_t mutate_at2 = 2 * merged.size() / 3;
  for (size_t i = 0; i < merged.size(); ++i) {
    built.entry->Push(merged[i]);
    scheduler.RunUntilQuiescent();
    if (i == mutate_at) {
      ChainMigrator migrator(&built);
      // Split the middle slice somewhere random inside its range.
      const SliceRange r = built.slices[1].join->range();
      const Duration boundary =
          r.start + 1 +
          static_cast<Duration>(rng.NextBounded(
              static_cast<uint64_t>(r.end - r.start - 1)));
      migrator.SplitSlice(1, boundary);
    }
    if (i == mutate_at2) {
      ChainMigrator migrator(&built);
      migrator.MergeSlices(1);  // undo the split
    }
  }
  built.plan->FinishAll();
  scheduler.RunUntilQuiescent();

  for (const ContinuousQuery& q : queries) {
    EXPECT_EQ(built.collectors[q.id]->ResultMultiset(),
              OracleJoin(workload.stream_a, workload.stream_b,
                         workload.condition, q))
        << q.DebugString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzMigrationTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace stateslice
