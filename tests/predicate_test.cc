#include "src/common/predicate.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace stateslice {
namespace {

using ::stateslice::testing::A;

TEST(PredicateTest, DefaultIsTrue) {
  Predicate p;
  EXPECT_TRUE(p.IsTrue());
  EXPECT_DOUBLE_EQ(p.selectivity(), 1.0);
  EXPECT_TRUE(p.Eval(A(1, 0.0, 0, -123.0)));
}

TEST(PredicateTest, GreaterThan) {
  Predicate p = Predicate::GreaterThan(0.7);
  EXPECT_FALSE(p.IsTrue());
  EXPECT_TRUE(p.Eval(A(1, 0.0, 0, 0.71)));
  EXPECT_FALSE(p.Eval(A(1, 0.0, 0, 0.7)));
  EXPECT_FALSE(p.Eval(A(1, 0.0, 0, 0.69)));
  EXPECT_NEAR(p.selectivity(), 0.3, 1e-12);
}

TEST(PredicateTest, LessThan) {
  Predicate p = Predicate::LessThan(0.2);
  EXPECT_TRUE(p.Eval(A(1, 0.0, 0, 0.19)));
  EXPECT_FALSE(p.Eval(A(1, 0.0, 0, 0.2)));
  EXPECT_NEAR(p.selectivity(), 0.2, 1e-12);
}

TEST(PredicateTest, RangeHalfOpen) {
  Predicate p = Predicate::Range(0.25, 0.75);
  EXPECT_FALSE(p.Eval(A(1, 0.0, 0, 0.2)));
  EXPECT_TRUE(p.Eval(A(1, 0.0, 0, 0.25)));
  EXPECT_TRUE(p.Eval(A(1, 0.0, 0, 0.74)));
  EXPECT_FALSE(p.Eval(A(1, 0.0, 0, 0.75)));
  EXPECT_NEAR(p.selectivity(), 0.5, 1e-12);
}

TEST(PredicateTest, WithSelectivityHitsTargetUnderUniformValues) {
  Predicate p = Predicate::WithSelectivity(0.3);
  Rng rng(7);
  int pass = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (p.Eval(A(1, 0.0, 0, rng.NextDouble()))) ++pass;
  }
  EXPECT_NEAR(static_cast<double>(pass) / n, 0.3, 0.01);
}

TEST(PredicateTest, AndOrNotSemantics) {
  Predicate gt = Predicate::GreaterThan(0.3);
  Predicate lt = Predicate::LessThan(0.6);
  Predicate band = Predicate::And(gt, lt);
  EXPECT_TRUE(band.Eval(A(1, 0.0, 0, 0.5)));
  EXPECT_FALSE(band.Eval(A(1, 0.0, 0, 0.7)));
  EXPECT_FALSE(band.Eval(A(1, 0.0, 0, 0.2)));

  Predicate either = Predicate::Or(Predicate::LessThan(0.2),
                                   Predicate::GreaterThan(0.8));
  EXPECT_TRUE(either.Eval(A(1, 0.0, 0, 0.1)));
  EXPECT_TRUE(either.Eval(A(1, 0.0, 0, 0.9)));
  EXPECT_FALSE(either.Eval(A(1, 0.0, 0, 0.5)));

  Predicate no = Predicate::Not(gt);
  EXPECT_TRUE(no.Eval(A(1, 0.0, 0, 0.2)));
  EXPECT_FALSE(no.Eval(A(1, 0.0, 0, 0.4)));
  EXPECT_NEAR(no.selectivity(), 0.3, 1e-12);
}

TEST(PredicateTest, AndWithTrueShortCircuitsToOther) {
  Predicate gt = Predicate::GreaterThan(0.3);
  Predicate combined = Predicate::And(Predicate(), gt);
  EXPECT_EQ(combined.description(), gt.description());
}

TEST(PredicateTest, OrSelectivityInclusionExclusion) {
  Predicate x = Predicate::WithSelectivity(0.5);
  Predicate y = Predicate::WithSelectivity(0.5);
  // 0.5 + 0.5 - 0.25 under independence.
  EXPECT_NEAR(Predicate::Or(x, y).selectivity(), 0.75, 1e-12);
}

TEST(PredicateTest, AnyOfEmptyIsFalse) {
  Predicate p = Predicate::AnyOf({});
  EXPECT_FALSE(p.Eval(A(1, 0.0, 0, 0.5)));
  EXPECT_DOUBLE_EQ(p.selectivity(), 0.0);
}

TEST(PredicateTest, AnyOfWithTrueMemberIsTrue) {
  Predicate p = Predicate::AnyOf({Predicate::LessThan(0.1), Predicate()});
  EXPECT_TRUE(p.IsTrue());
}

TEST(PredicateTest, AnyOfDisjunction) {
  // The σ'_i form of Section 6.1: cond_i OR cond_{i+1} OR ... OR cond_N.
  Predicate p = Predicate::AnyOf({Predicate::LessThan(0.2),
                                  Predicate::GreaterThan(0.9),
                                  Predicate::Range(0.4, 0.5)});
  EXPECT_TRUE(p.Eval(A(1, 0.0, 0, 0.45)));
  EXPECT_TRUE(p.Eval(A(1, 0.0, 0, 0.95)));
  EXPECT_TRUE(p.Eval(A(1, 0.0, 0, 0.1)));
  EXPECT_FALSE(p.Eval(A(1, 0.0, 0, 0.3)));
}

TEST(PredicateTest, CustomCarriesSelectivityAndDescription) {
  Predicate p = Predicate::Custom(
      [](const Tuple& t) { return t.key % 2 == 0; }, 0.5, "(key even)");
  EXPECT_TRUE(p.Eval(A(1, 0.0, 2)));
  EXPECT_FALSE(p.Eval(A(1, 0.0, 3)));
  EXPECT_EQ(p.description(), "(key even)");
  EXPECT_DOUBLE_EQ(p.selectivity(), 0.5);
}

TEST(PredicateTest, CopiesShareImplementation) {
  Predicate p = Predicate::GreaterThan(0.5);
  Predicate q = p;  // cheap copy
  EXPECT_TRUE(q.Eval(A(1, 0.0, 0, 0.6)));
  EXPECT_EQ(q.description(), p.description());
}

}  // namespace
}  // namespace stateslice
