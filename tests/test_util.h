// Shared helpers for the stateslice test suite.
#ifndef STATESLICE_TESTS_TEST_UTIL_H_
#define STATESLICE_TESTS_TEST_UTIL_H_

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "src/stateslice.h"

namespace stateslice::testing {

// Builds a tuple with the given fields (seconds-based timestamp).
inline Tuple MakeTuple(StreamSide side, uint32_t seq, double t_seconds,
                       int64_t key = 0, double value = 0.5) {
  Tuple t;
  t.side = side;
  t.seq = seq;
  t.timestamp = SecondsToTicks(t_seconds);
  t.key = key;
  t.value = value;
  return t;
}

inline Tuple A(uint32_t seq, double t_seconds, int64_t key = 0,
               double value = 0.5) {
  return MakeTuple(StreamSide::kA, seq, t_seconds, key, value);
}

inline Tuple B(uint32_t seq, double t_seconds, int64_t key = 0,
               double value = 0.5) {
  return MakeTuple(StreamSide::kB, seq, t_seconds, key, value);
}

// Reference (oracle) evaluation of one continuous query directly over the
// generated tuple buffers: all pairs matching the join condition, the
// window constraint |Ta - Tb| < w, and the selections. Returns the result
// multiset keyed by JoinPairKey.
inline std::map<std::string, int> OracleJoin(
    const std::vector<Tuple>& stream_a, const std::vector<Tuple>& stream_b,
    const JoinCondition& cond, const ContinuousQuery& q) {
  std::map<std::string, int> expected;
  for (const Tuple& a : stream_a) {
    if (!q.selection_a.Eval(a)) continue;
    for (const Tuple& b : stream_b) {
      if (!q.selection_b.Eval(b)) continue;
      if (!cond.Match(a, b)) continue;
      const Duration d = std::llabs(a.timestamp - b.timestamp);
      if (d >= q.window.extent) continue;
      ++expected[JoinPairKey(JoinResult{a, b})];
    }
  }
  return expected;
}

// Runs a built plan over the workload and returns the stats. Sinks are
// registered automatically.
inline RunStats RunPlan(BuiltPlan* built, const Workload& workload,
                        ExecutorOptions options = {}) {
  StreamSource source_a("A", workload.stream_a);
  StreamSource source_b("B", workload.stream_b);
  Executor exec(built->plan.get(),
                {{&source_a, built->entry}, {&source_b, built->entry}},
                options);
  for (CountingSink* sink : built->sinks) {
    if (sink != nullptr) exec.AddSink(sink);
  }
  return exec.Run();
}

// Drains `queue` into a vector (test inspection).
inline std::vector<Event> DrainQueue(EventQueue* queue) {
  std::vector<Event> events;
  while (!queue->empty()) events.push_back(queue->Pop());
  return events;
}

// Extracts the JoinResults from an event list, dropping punctuations.
inline std::vector<JoinResult> ResultsOf(const std::vector<Event>& events) {
  std::vector<JoinResult> results;
  for (const Event& e : events) {
    if (IsJoinResult(e)) results.push_back(std::get<JoinResult>(e));
  }
  return results;
}

}  // namespace stateslice::testing

#endif  // STATESLICE_TESTS_TEST_UTIL_H_
