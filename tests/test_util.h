// Shared helpers for the stateslice test suite.
#ifndef STATESLICE_TESTS_TEST_UTIL_H_
#define STATESLICE_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "src/stateslice.h"

namespace stateslice::testing {

// Builds a tuple with the given fields (seconds-based timestamp).
inline Tuple MakeTuple(StreamSide side, uint32_t seq, double t_seconds,
                       int64_t key = 0, double value = 0.5) {
  Tuple t;
  t.side = side;
  t.seq = seq;
  t.timestamp = SecondsToTicks(t_seconds);
  t.key = key;
  t.value = value;
  return t;
}

inline Tuple A(uint32_t seq, double t_seconds, int64_t key = 0,
               double value = 0.5) {
  return MakeTuple(StreamSide::kA, seq, t_seconds, key, value);
}

inline Tuple B(uint32_t seq, double t_seconds, int64_t key = 0,
               double value = 0.5) {
  return MakeTuple(StreamSide::kB, seq, t_seconds, key, value);
}

// Reference (oracle) evaluation of one continuous query directly over the
// generated tuple buffers: all pairs matching the join condition, the
// window constraint |Ta - Tb| < w, and the selections. Returns the result
// multiset keyed by JoinPairKey.
inline std::map<std::string, int> OracleJoin(
    const std::vector<Tuple>& stream_a, const std::vector<Tuple>& stream_b,
    const JoinCondition& cond, const ContinuousQuery& q) {
  std::map<std::string, int> expected;
  for (const Tuple& a : stream_a) {
    if (!q.selection_a.Eval(a)) continue;
    for (const Tuple& b : stream_b) {
      if (!q.selection_b.Eval(b)) continue;
      if (!cond.Match(a, b)) continue;
      const Duration d = std::llabs(a.timestamp - b.timestamp);
      if (d >= q.window.extent) continue;
      ++expected[JoinPairKey(JoinResult{a, b})];
    }
  }
  return expected;
}

// Runs a built plan over the workload and returns the stats. Sinks are
// registered automatically.
inline RunStats RunPlan(BuiltPlan* built, const Workload& workload,
                        ExecutorOptions options = {}) {
  StreamSource source_a("A", workload.stream_a);
  StreamSource source_b("B", workload.stream_b);
  Executor exec(built->plan.get(),
                {{&source_a, built->entry}, {&source_b, built->entry}},
                options);
  for (CountingSink* sink : built->sinks) {
    if (sink != nullptr) exec.AddSink(sink);
  }
  return exec.Run();
}

// A random query workload + chain partition drawn from a seed. Shared by
// the fuzz equivalence tests and the parallel-vs-deterministic equivalence
// tests so both explore the same configuration space.
struct FuzzConfig {
  std::vector<ContinuousQuery> queries;
  ChainPlan chain;
  double s1 = 0.1;
  double rate = 25.0;
  uint64_t workload_seed = 0;
  bool use_lineage = false;
  std::string DebugString() const {
    std::string s = "queries:";
    for (const auto& q : queries) s += " " + q.DebugString();
    s += " partition " + chain.partition.DebugString();
    return s;
  }
};

inline FuzzConfig DrawFuzzConfig(uint64_t seed) {
  Rng rng(seed);
  FuzzConfig config;
  const int num_queries = 1 + static_cast<int>(rng.NextBounded(6));
  config.queries.resize(num_queries);
  for (int q = 0; q < num_queries; ++q) {
    config.queries[q].id = q;
    config.queries[q].name = "Q" + std::to_string(q + 1);
    // Windows 0.5 .. 8.0 s in half-second steps; duplicates allowed.
    const double w = 0.5 * (1 + static_cast<double>(rng.NextBounded(16)));
    config.queries[q].window = WindowSpec::TimeSeconds(w);
    // 50%: no selection; else selectivity in {0.2 .. 0.9}.
    if (rng.NextBounded(2) == 1) {
      config.queries[q].selection_a =
          Predicate::WithSelectivity(0.2 + 0.1 * rng.NextBounded(8));
    }
  }
  config.chain.spec = BuildChainSpec(config.queries);
  // Random partition: keep each interior boundary with probability 1/2.
  const int m = config.chain.spec.num_boundaries();
  for (int k = 0; k + 1 < m; ++k) {
    if (rng.NextBounded(2) == 0) {
      config.chain.partition.slice_end_boundaries.push_back(k);
    }
  }
  config.chain.partition.slice_end_boundaries.push_back(m - 1);
  const double s1_choices[] = {0.025, 0.1, 0.25, 0.5};
  config.s1 = s1_choices[rng.NextBounded(4)];
  config.rate = 15.0 + static_cast<double>(rng.NextBounded(20));
  config.workload_seed = rng.NextU64();
  config.use_lineage = rng.NextBounded(4) == 0;
  return config;
}

// First index k >= target where merged[k] strictly increases the arrival
// timestamp — a clean churn point: everything before has timestamp
// <= merged[k-1] and everything after has timestamp >= merged[k] >
// merged[k-1], so an Engine cutoff (watermark + 1) splits the stream
// exactly there. Returns merged.size() when no such index exists.
inline size_t StrictIncreaseAt(const std::vector<Tuple>& merged,
                               size_t target) {
  for (size_t k = std::max<size_t>(target, 1); k < merged.size(); ++k) {
    if (merged[k].timestamp > merged[k - 1].timestamp) return k;
  }
  return merged.size();
}

// Expected cumulative delivery of an Engine query: the oracle join
// restricted to pairs whose constituents both arrive at or after
// `results_from` (Engine::ResultsFrom) and do not straddle any rebuild
// cutoff (Engine::rebuild_cutoffs — operator state resets there, so pairs
// across a cutoff are never produced).
inline std::map<std::string, int> SegmentedOracle(
    const std::vector<Tuple>& stream_a, const std::vector<Tuple>& stream_b,
    const JoinCondition& cond, const ContinuousQuery& q,
    TimePoint results_from, const std::vector<TimePoint>& cutoffs) {
  auto segment = [&cutoffs](TimePoint t) {
    size_t s = 0;
    for (const TimePoint c : cutoffs) {
      if (t >= c) ++s;
    }
    return s;
  };
  std::map<std::string, int> expected;
  for (const Tuple& a : stream_a) {
    if (a.timestamp < results_from || !q.selection_a.Eval(a)) continue;
    for (const Tuple& b : stream_b) {
      if (b.timestamp < results_from || !q.selection_b.Eval(b)) continue;
      if (!cond.Match(a, b)) continue;
      if (std::llabs(a.timestamp - b.timestamp) >= q.window.extent) continue;
      if (segment(a.timestamp) != segment(b.timestamp)) continue;
      ++expected[JoinPairKey(JoinResult{a, b})];
    }
  }
  return expected;
}

// Drains `queue` into a vector (test inspection).
inline std::vector<Event> DrainQueue(EventQueue* queue) {
  std::vector<Event> events;
  while (!queue->empty()) events.push_back(queue->Pop());
  return events;
}

// Extracts the JoinResults from an event list, dropping punctuations.
inline std::vector<JoinResult> ResultsOf(const std::vector<Event>& events) {
  std::vector<JoinResult> results;
  for (const Event& e : events) {
    if (IsJoinResult(e)) results.push_back(std::get<JoinResult>(e));
  }
  return results;
}

}  // namespace stateslice::testing

#endif  // STATESLICE_TESTS_TEST_UTIL_H_
