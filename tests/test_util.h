// Shared helpers for the stateslice test suite.
#ifndef STATESLICE_TESTS_TEST_UTIL_H_
#define STATESLICE_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "src/stateslice.h"

namespace stateslice::testing {

// Builds a tuple with the given fields (seconds-based timestamp).
inline Tuple MakeTuple(StreamId side, uint32_t seq, double t_seconds,
                       int64_t key = 0, double value = 0.5) {
  Tuple t;
  t.side = side;
  t.seq = seq;
  t.timestamp = SecondsToTicks(t_seconds);
  t.key = key;
  t.value = value;
  return t;
}

inline Tuple A(uint32_t seq, double t_seconds, int64_t key = 0,
               double value = 0.5) {
  return MakeTuple(StreamSide::kA, seq, t_seconds, key, value);
}

inline Tuple B(uint32_t seq, double t_seconds, int64_t key = 0,
               double value = 0.5) {
  return MakeTuple(StreamSide::kB, seq, t_seconds, key, value);
}

// Brute-force (oracle) evaluation of one N-way continuous query directly
// over the generated tuple buffers: a naive nested windowed join over the
// full history. A result (t_0, ..., t_{n-1}) qualifies iff
//  - every constituent passes its stream's selection,
//  - each stream k >= 1 matches its anchor constituent under `cond`,
//  - each level's prefix-window constraint holds:
//    |max(t_0..t_{k-1}) - t_k| < w (the left-deep tree semantics),
//  - every constituent arrives at or after `results_from`, and no two
//    constituents straddle a rebuild cutoff (operator state resets there).
// Returns the result multiset keyed by JoinPairKey. The binary oracle is
// the n = 2 degenerate case.
inline std::map<std::string, int> MultiwayOracle(
    const std::vector<const std::vector<Tuple>*>& streams,
    const JoinCondition& cond, const ContinuousQuery& q,
    TimePoint results_from = 0,
    const std::vector<TimePoint>& cutoffs = {}) {
  const int n = q.num_streams();
  auto segment = [&cutoffs](TimePoint t) {
    size_t s = 0;
    for (const TimePoint c : cutoffs) {
      if (t >= c) ++s;
    }
    return s;
  };
  std::map<std::string, int> expected;
  std::vector<const Tuple*> parts(static_cast<size_t>(n), nullptr);
  // Depth-first over streams in FROM order, pruning on the prefix-window,
  // anchor-match, selection, suffix, and segment constraints.
  auto recurse = [&](auto&& self, int k, TimePoint prefix_max) -> void {
    if (k == n) {
      JoinResult r{*parts[0], *parts[1]};
      for (int i = 2; i < n; ++i) r.tail.push_back(*parts[i]);
      ++expected[JoinPairKey(r)];
      return;
    }
    const std::vector<Tuple>& stream = *streams[static_cast<size_t>(k)];
    auto begin = stream.begin();
    auto end = stream.end();
    if (k > 0) {
      // Streams are timestamp-ordered: only (prefix_max - w, prefix_max + w)
      // can satisfy the prefix-window constraint.
      begin = std::lower_bound(begin, end,
                               prefix_max - q.window.extent + 1,
                               [](const Tuple& t, TimePoint v) {
                                 return t.timestamp < v;
                               });
      end = std::lower_bound(begin, end, prefix_max + q.window.extent,
                             [](const Tuple& t, TimePoint v) {
                               return t.timestamp < v;
                             });
    }
    for (auto it = begin; it != end; ++it) {
      const Tuple& t = *it;
      if (t.timestamp < results_from) continue;
      if (!q.selection(k).Eval(t)) continue;
      if (k > 0) {
        if (std::llabs(prefix_max - t.timestamp) >= q.window.extent) continue;
        if (!cond.Match(*parts[static_cast<size_t>(q.anchor(k - 1))], t)) {
          continue;
        }
        if (segment(t.timestamp) != segment(parts[0]->timestamp)) continue;
      }
      parts[static_cast<size_t>(k)] = &t;
      self(self, k + 1, std::max(prefix_max, t.timestamp));
    }
  };
  recurse(recurse, 0, kMinTime);
  return expected;
}

// Binary spelling of the oracle (the n = 2 degenerate case).
inline std::map<std::string, int> OracleJoin(
    const std::vector<Tuple>& stream_a, const std::vector<Tuple>& stream_b,
    const JoinCondition& cond, const ContinuousQuery& q) {
  return MultiwayOracle({&stream_a, &stream_b}, cond, q);
}

// Runs a built plan over the workload and returns the stats. Sinks are
// registered automatically.
inline RunStats RunPlan(BuiltPlan* built, const Workload& workload,
                        ExecutorOptions options = {}) {
  StreamSource source_a("A", workload.stream_a);
  StreamSource source_b("B", workload.stream_b);
  Executor exec(built->plan.get(),
                {{&source_a, built->entry}, {&source_b, built->entry}},
                options);
  for (CountingSink* sink : built->sinks) {
    if (sink != nullptr) exec.AddSink(sink);
  }
  return exec.Run();
}

// A random query workload + chain partition drawn from a seed. Shared by
// the fuzz equivalence tests and the parallel-vs-deterministic equivalence
// tests so both explore the same configuration space. The multiway variant
// (DrawMultiwayFuzzConfig) additionally fills `num_streams` and the
// per-level `tree`.
struct FuzzConfig {
  std::vector<ContinuousQuery> queries;
  ChainPlan chain;
  int num_streams = 2;
  JoinTreePlan tree;
  double s1 = 0.1;
  double rate = 25.0;
  uint64_t workload_seed = 0;
  bool use_lineage = false;
  std::string DebugString() const {
    std::string s = "queries:";
    for (const auto& q : queries) s += " " + q.DebugString();
    if (num_streams > 2) {
      s += " levels:";
      for (const auto& level : tree.levels) {
        s += " " + level.partition.DebugString();
      }
    } else {
      s += " partition " + chain.partition.DebugString();
    }
    return s;
  }
};

// A random partition of `spec`: every interior boundary kept with
// probability 1/2 (the draw DrawFuzzConfig has always used).
inline ChainPartition DrawPartition(const ChainSpec& spec, Rng* rng) {
  ChainPartition partition;
  const int m = spec.num_boundaries();
  for (int k = 0; k + 1 < m; ++k) {
    if (rng->NextBounded(2) == 0) {
      partition.slice_end_boundaries.push_back(k);
    }
  }
  partition.slice_end_boundaries.push_back(m - 1);
  return partition;
}

inline FuzzConfig DrawFuzzConfig(uint64_t seed) {
  Rng rng(seed);
  FuzzConfig config;
  const int num_queries = 1 + static_cast<int>(rng.NextBounded(6));
  config.queries.resize(num_queries);
  for (int q = 0; q < num_queries; ++q) {
    config.queries[q].id = q;
    config.queries[q].name = "Q" + std::to_string(q + 1);
    // Windows 0.5 .. 8.0 s in half-second steps; duplicates allowed.
    const double w = 0.5 * (1 + static_cast<double>(rng.NextBounded(16)));
    config.queries[q].window = WindowSpec::TimeSeconds(w);
    // 50%: no selection; else selectivity in {0.2 .. 0.9}.
    if (rng.NextBounded(2) == 1) {
      config.queries[q].selection_a =
          Predicate::WithSelectivity(0.2 + 0.1 * rng.NextBounded(8));
    }
  }
  config.chain.spec = BuildChainSpec(config.queries);
  // Random partition: keep each interior boundary with probability 1/2
  // (DrawPartition consumes the identical RNG sequence, preserving the
  // configs every existing fuzz seed has always drawn).
  config.chain.partition = DrawPartition(config.chain.spec, &rng);
  const double s1_choices[] = {0.025, 0.1, 0.25, 0.5};
  config.s1 = s1_choices[rng.NextBounded(4)];
  config.rate = 15.0 + static_cast<double>(rng.NextBounded(20));
  config.workload_seed = rng.NextU64();
  config.use_lineage = rng.NextBounded(4) == 0;
  return config;
}

// A random N-way workload (queries of 2..max_streams streams sharing one
// join-tree prefix, at least one at full depth) plus a random per-level
// slicing. Used by the 3- and 4-way equivalence fuzz suites.
inline FuzzConfig DrawMultiwayFuzzConfig(uint64_t seed, int max_streams) {
  Rng rng(seed);
  FuzzConfig config;
  config.num_streams = max_streams;
  // One shared anchor vector: query k+1 joins a random earlier stream.
  std::vector<int> anchors(static_cast<size_t>(max_streams) - 1);
  for (size_t k = 0; k < anchors.size(); ++k) {
    anchors[k] = static_cast<int>(rng.NextBounded(k + 1));
  }
  const int num_queries = 1 + static_cast<int>(rng.NextBounded(4));
  config.queries.resize(static_cast<size_t>(num_queries));
  for (int q = 0; q < num_queries; ++q) {
    ContinuousQuery& query = config.queries[static_cast<size_t>(q)];
    query.id = q;
    query.name = "Q" + std::to_string(q + 1);
    // Windows 0.5 .. 4.0 s in half-second steps; duplicates allowed.
    // (Kept modest: each tree level multiplies the intermediate result
    // volume by ~2*lambda*S1*w, so wide windows blow up run time.)
    const double w = 0.5 * (1 + static_cast<double>(rng.NextBounded(8)));
    query.window = WindowSpec::TimeSeconds(w);
    // The last query always reaches full depth so the tree has
    // max_streams levels; earlier queries draw 2..max_streams.
    const int n = q + 1 == num_queries
                      ? max_streams
                      : 2 + static_cast<int>(rng.NextBounded(
                                static_cast<uint64_t>(max_streams) - 1));
    if (n > 2) {
      for (int s = 0; s < n; ++s) {
        query.stream_names.push_back("S" + std::to_string(s));
      }
      query.join_anchors.assign(anchors.begin(),
                                anchors.begin() + (n - 1));
      // Multi-way terminals gate σ on any stream: draw one per stream
      // with probability 1/4.
      for (int s = 0; s < n; ++s) {
        if (rng.NextBounded(4) != 0) continue;
        const Predicate pred =
            Predicate::WithSelectivity(0.3 + 0.1 * rng.NextBounded(6));
        if (s == 0) {
          query.selection_a = pred;
        } else if (s == 1) {
          query.selection_b = pred;
        } else {
          query.extra_selections.resize(static_cast<size_t>(n) - 2);
          query.extra_selections[static_cast<size_t>(s) - 2] = pred;
        }
      }
    } else if (rng.NextBounded(2) == 1) {
      // Binary queries keep the chain restriction: σ on stream 0 only.
      query.selection_a =
          Predicate::WithSelectivity(0.2 + 0.1 * rng.NextBounded(8));
    }
  }
  // Anchor prefix compatibility requires the binary queries to share the
  // tree's level-0 anchor, which is always 0 — nothing to fix up.
  for (const TreeLevelQueries& level : TreeLevels(config.queries)) {
    ChainPlan plan;
    plan.spec = BuildChainSpec(level.local);
    plan.partition = DrawPartition(plan.spec, &rng);
    config.tree.levels.push_back(std::move(plan));
  }
  const double s1_choices[] = {0.05, 0.1, 0.25};
  config.s1 = s1_choices[rng.NextBounded(3)];
  config.rate = 8.0 + static_cast<double>(rng.NextBounded(8));
  config.workload_seed = rng.NextU64();
  return config;
}

// First index k >= target where merged[k] strictly increases the arrival
// timestamp — a clean churn point: everything before has timestamp
// <= merged[k-1] and everything after has timestamp >= merged[k] >
// merged[k-1], so an Engine cutoff (watermark + 1) splits the stream
// exactly there. Returns merged.size() when no such index exists.
inline size_t StrictIncreaseAt(const std::vector<Tuple>& merged,
                               size_t target) {
  for (size_t k = std::max<size_t>(target, 1); k < merged.size(); ++k) {
    if (merged[k].timestamp > merged[k - 1].timestamp) return k;
  }
  return merged.size();
}

// Expected cumulative delivery of an Engine query: the oracle join
// restricted to results whose constituents all arrive at or after
// `results_from` (Engine::ResultsFrom) and do not straddle any rebuild
// cutoff (Engine::rebuild_cutoffs — operator state resets there, so
// results across a cutoff are never produced). Works for any stream count
// via MultiwayOracle; this binary spelling serves the pre-existing suites.
inline std::map<std::string, int> SegmentedOracle(
    const std::vector<Tuple>& stream_a, const std::vector<Tuple>& stream_b,
    const JoinCondition& cond, const ContinuousQuery& q,
    TimePoint results_from, const std::vector<TimePoint>& cutoffs) {
  return MultiwayOracle({&stream_a, &stream_b}, cond, q, results_from,
                        cutoffs);
}

// Drains `queue` into a vector (test inspection).
inline std::vector<Event> DrainQueue(EventQueue* queue) {
  std::vector<Event> events;
  while (!queue->empty()) events.push_back(queue->Pop());
  return events;
}

// Extracts the JoinResults from an event list, dropping punctuations.
inline std::vector<JoinResult> ResultsOf(const std::vector<Event>& events) {
  std::vector<JoinResult> results;
  for (const Event& e : events) {
    if (IsJoinResult(e)) results.push_back(std::get<JoinResult>(e));
  }
  return results;
}

}  // namespace stateslice::testing

#endif  // STATESLICE_TESTS_TEST_UTIL_H_
