// Engine::Checkpoint / Engine::Restore: snapshot round-trips across
// execution modes, window kinds and churn histories, and the rejection
// surface for torn/truncated/mismatched snapshots (which must poison the
// engine with a diagnostic, never crash or half-restore).
//
// The core equivalence harness exploits that Checkpoint keeps the source
// engine running: push a prefix, snapshot, restore into a fresh engine,
// then feed BOTH engines the identical tail and compare their delivered
// results — the original engine doubles as the uninterrupted oracle.
#include "src/api/engine.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/serde.h"
#include "src/stateslice.h"
#include "tests/test_util.h"

namespace stateslice {
namespace {

using ::stateslice::testing::StrictIncreaseAt;

Workload SmallWorkload(uint64_t seed = 5, double duration_s = 12) {
  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = 25;
  spec.duration_s = duration_s;
  spec.seed = seed;
  return GenerateWorkload(spec);
}

Engine::Options BaseOptions(const Workload& workload) {
  Engine::Options options;
  options.condition = workload.condition;
  options.collect_results = true;
  return options;
}

ContinuousQuery PlainQuery(double window_s, const std::string& name = "") {
  ContinuousQuery q;
  q.name = name;
  q.window = WindowSpec::TimeSeconds(window_s);
  return q;
}

void PushRange(Engine* engine, const std::vector<Tuple>& merged, size_t from,
               size_t to) {
  for (size_t i = from; i < to && i < merged.size(); ++i) {
    engine->Push(merged[i].side, merged[i]);
  }
}

// Re-seals a tampered snapshot body with a fresh CRC so the corruption
// under test is the one the decoder sees (not just "checksum mismatch").
std::string Resealed(std::string body) {
  StateWriter w;
  w.U32(Crc32(body));
  return body + w.data();
}

// Full equality of the externally observable per-query surface plus the
// session counters both engines agree on deterministically.
void ExpectSameResults(Engine* restored, Engine* oracle,
                       const std::vector<QueryHandle>& handles) {
  for (const QueryHandle h : handles) {
    EXPECT_EQ(restored->IsActive(h), oracle->IsActive(h));
    EXPECT_EQ(restored->ResultsFrom(h), oracle->ResultsFrom(h));
    EXPECT_EQ(restored->ResultCount(h), oracle->ResultCount(h));
    EXPECT_EQ(restored->CollectedResults(h), oracle->CollectedResults(h));
  }
  EXPECT_EQ(restored->watermark(), oracle->watermark());
  EXPECT_EQ(restored->input_tuples(), oracle->input_tuples());
  EXPECT_EQ(restored->dropped_tuples(), oracle->dropped_tuples());
  EXPECT_EQ(restored->rejected_tuples(), oracle->rejected_tuples());
  const RunStats rs = restored->Snapshot();
  const RunStats os = oracle->Snapshot();
  EXPECT_EQ(rs.input_tuples, os.input_tuples);
  EXPECT_EQ(rs.results_delivered, os.results_delivered);
}

// Prefix / snapshot / tail-into-both harness shared by the mode and
// window-kind round-trip tests.
void RoundTrip(Engine::Options options, std::vector<ContinuousQuery> queries,
               const std::vector<Tuple>& merged, bool strict_order) {
  Engine original(options);
  std::vector<QueryHandle> handles;
  for (const ContinuousQuery& q : queries) {
    const QueryHandle h = original.RegisterQuery(q);
    ASSERT_TRUE(h.valid()) << original.last_error();
    handles.push_back(h);
  }
  const size_t split = StrictIncreaseAt(merged, merged.size() / 2);
  PushRange(&original, merged, 0, split);

  std::string snapshot;
  ASSERT_TRUE(original.Checkpoint(&snapshot)) << original.last_error();
  EXPECT_FALSE(original.finished());  // checkpoint keeps the engine live

  Engine restored(options);
  ASSERT_TRUE(restored.Restore(snapshot)) << restored.last_error();
  EXPECT_FALSE(restored.poisoned());
  EXPECT_EQ(restored.watermark(), original.watermark());
  EXPECT_EQ(restored.active_queries(), original.active_queries());

  // Deterministic mode delivers an identical result *sequence*; record it
  // via subscriptions on both engines (not part of the snapshot, so both
  // attach fresh ones here).
  std::vector<std::string> restored_seq, original_seq;
  if (strict_order) {
    for (const QueryHandle h : handles) {
      ASSERT_TRUE(restored
                      .Subscribe(h,
                                 [&restored_seq](const JoinResult& r) {
                                   restored_seq.push_back(JoinPairKey(r));
                                 })
                      .valid());
      ASSERT_TRUE(original
                      .Subscribe(h,
                                 [&original_seq](const JoinResult& r) {
                                   original_seq.push_back(JoinPairKey(r));
                                 })
                      .valid());
    }
  }

  PushRange(&restored, merged, split, merged.size());
  PushRange(&original, merged, split, merged.size());
  restored.Finish();
  original.Finish();

  if (strict_order) {
    EXPECT_EQ(restored_seq, original_seq);
  }
  ExpectSameResults(&restored, &original, handles);
  EXPECT_TRUE(restored.finished());
}

TEST(CheckpointTest, RoundTripDeterministicMidStream) {
  const Workload workload = SmallWorkload(5);
  RoundTrip(BaseOptions(workload),
            {PlainQuery(2, "Q1"), PlainQuery(4, "Q2"), PlainQuery(6, "Q3")},
            MergedArrivals(workload), /*strict_order=*/true);
}

TEST(CheckpointTest, RoundTripCpuOptChain) {
  const Workload workload = SmallWorkload(7);
  Engine::Options options = BaseOptions(workload);
  options.objective = ChainObjective::kCpuOpt;
  RoundTrip(options, {PlainQuery(2, "Q1"), PlainQuery(5, "Q2")},
            MergedArrivals(workload), /*strict_order=*/true);
}

TEST(CheckpointTest, RoundTripWithLineage) {
  const Workload workload = SmallWorkload(9);
  Engine::Options options = BaseOptions(workload);
  options.use_lineage = true;
  std::vector<ContinuousQuery> queries = {PlainQuery(2, "Q1"),
                                          PlainQuery(4, "Q2")};
  queries[1].selection_a = Predicate::GreaterThan(0.3);
  RoundTrip(options, std::move(queries), MergedArrivals(workload),
            /*strict_order=*/true);
}

TEST(CheckpointTest, RoundTripCountWindows) {
  const Workload workload = SmallWorkload(11);
  std::vector<ContinuousQuery> queries(2);
  queries[0].name = "C1";
  queries[0].window = WindowSpec::Count(40);
  queries[1].name = "C2";
  queries[1].window = WindowSpec::Count(90);
  RoundTrip(BaseOptions(workload), std::move(queries),
            MergedArrivals(workload), /*strict_order=*/true);
}

TEST(CheckpointTest, RoundTripParallel) {
  const Workload workload = SmallWorkload(13);
  Engine::Options options = BaseOptions(workload);
  options.mode = ExecutionMode::kParallel;
  options.worker_threads = 2;
  // Parallel delivery interleaves across queries but each query's own
  // stream stays ordered; the multiset/count comparison is the invariant.
  RoundTrip(options, {PlainQuery(2, "Q1"), PlainQuery(4, "Q2")},
            MergedArrivals(workload), /*strict_order=*/false);
}

TEST(CheckpointTest, RoundTripSharded) {
  // Sharded mode serves equi-key time-window workloads only.
  Workload workload = SmallWorkload(17);
  RekeyForEquiJoin(&workload, /*key_domain=*/16, /*seed=*/17 * 31 + 7);
  Engine::Options options = BaseOptions(workload);
  options.mode = ExecutionMode::kSharded;
  options.shard_count = 2;
  RoundTrip(options, {PlainQuery(2, "Q1"), PlainQuery(4, "Q2")},
            MergedArrivals(workload), /*strict_order=*/false);
}

TEST(CheckpointTest, RoundTripNonStateSliceStrategies) {
  const Workload workload = SmallWorkload(19, 8);
  for (const SharingStrategy strategy :
       {SharingStrategy::kPullUp, SharingStrategy::kPushDown,
        SharingStrategy::kUnshared}) {
    Engine::Options options = BaseOptions(workload);
    options.strategy = strategy;
    std::vector<ContinuousQuery> queries = {PlainQuery(2, "Q1"),
                                            PlainQuery(4, "Q2")};
    if (strategy == SharingStrategy::kPushDown) {
      // Push-down wants a shared selection to push below the join.
      queries[0].selection_a = Predicate::GreaterThan(0.2);
      queries[1].selection_a = Predicate::GreaterThan(0.2);
    }
    RoundTrip(options, std::move(queries), MergedArrivals(workload),
              /*strict_order=*/true);
  }
}

TEST(CheckpointTest, RoundTripMultiwayTree) {
  // Three-stream left-deep tree (num_levels > 1): the snapshot carries no
  // chain section and the restore recomputes the tree.
  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = 20;
  spec.duration_s = 8;
  spec.seed = 23;
  const MultiWorkload workload = GenerateMultiWorkload(spec, 3);
  Engine::Options options;
  options.condition = workload.condition;
  options.collect_results = true;
  ContinuousQuery q;
  q.name = "M1";
  q.window = WindowSpec::TimeSeconds(2);
  q.stream_names = {"S0", "S1", "S2"};
  RoundTrip(options, {q}, MergedArrivals(workload), /*strict_order=*/true);
}

TEST(CheckpointTest, RoundTripAfterChurnKeepsGatesAndTotals) {
  // Mid-stream registration (migration installs a fresh-start gate),
  // removal (inactive record keeps its totals) and compaction all survive
  // the snapshot.
  const Workload workload = SmallWorkload(29);
  const std::vector<Tuple> merged = MergedArrivals(workload);
  Engine::Options options = BaseOptions(workload);
  Engine original(options);
  const QueryHandle h1 = original.RegisterQuery(PlainQuery(2, "Q1"));
  const QueryHandle h2 = original.RegisterQuery(PlainQuery(6, "Q2"));
  ASSERT_TRUE(h1.valid() && h2.valid());

  const size_t third = StrictIncreaseAt(merged, merged.size() / 3);
  PushRange(&original, merged, 0, third);
  const QueryHandle h3 = original.RegisterQuery(PlainQuery(4, "Q3"));
  ASSERT_TRUE(h3.valid()) << original.last_error();
  EXPECT_GT(original.ResultsFrom(h3), 0);

  const size_t half = StrictIncreaseAt(merged, merged.size() / 2);
  PushRange(&original, merged, third, half);
  ASSERT_TRUE(original.UnregisterQuery(h1));
  original.CompactChain();
  const uint64_t q1_final = original.ResultCount(h1);
  EXPECT_GT(q1_final, 0u);

  std::string snapshot;
  ASSERT_TRUE(original.Checkpoint(&snapshot)) << original.last_error();

  Engine restored(options);
  ASSERT_TRUE(restored.Restore(snapshot)) << restored.last_error();
  // The removed query's totals survive as an inactive record.
  EXPECT_FALSE(restored.IsActive(h1));
  EXPECT_EQ(restored.ResultCount(h1), q1_final);
  EXPECT_EQ(restored.CollectedResults(h1), original.CollectedResults(h1));
  EXPECT_EQ(restored.migrations(), original.migrations());
  EXPECT_EQ(restored.rebuilds(), original.rebuilds());
  EXPECT_EQ(restored.rebuild_cutoffs(), original.rebuild_cutoffs());
  restored.CheckPlanInvariants();

  PushRange(&restored, merged, half, merged.size());
  PushRange(&original, merged, half, merged.size());
  restored.Finish();
  original.Finish();
  ExpectSameResults(&restored, &original, {h1, h2, h3});
}

TEST(CheckpointTest, RestoredChainMatchesOriginalStructure) {
  const Workload workload = SmallWorkload(31);
  const std::vector<Tuple> merged = MergedArrivals(workload);
  Engine::Options options = BaseOptions(workload);
  Engine original(options);
  ASSERT_TRUE(original.RegisterQuery(PlainQuery(2, "Q1")).valid());
  ASSERT_TRUE(original.RegisterQuery(PlainQuery(5, "Q2")).valid());
  const size_t split = StrictIncreaseAt(merged, merged.size() / 2);
  PushRange(&original, merged, 0, split);
  // Mid-stream registration leaves a migration-split boundary behind.
  ASSERT_TRUE(original.RegisterQuery(PlainQuery(3, "Q3")).valid());

  std::string snapshot;
  ASSERT_TRUE(original.Checkpoint(&snapshot)) << original.last_error();
  Engine restored(options);
  ASSERT_TRUE(restored.Restore(snapshot)) << restored.last_error();

  const std::vector<Engine::SliceInfo> original_slices =
      original.ChainSlices();
  const std::vector<Engine::SliceInfo> restored_slices =
      restored.ChainSlices();
  ASSERT_EQ(original_slices.size(), restored_slices.size());
  for (size_t i = 0; i < original_slices.size(); ++i) {
    EXPECT_TRUE(original_slices[i].range == restored_slices[i].range);
    EXPECT_EQ(original_slices[i].state_tuples,
              restored_slices[i].state_tuples);
  }
  restored.CheckPlanInvariants();
}

TEST(CheckpointTest, IdleAndFinishedEnginesRoundTrip) {
  // Empty engine.
  {
    Engine original;
    std::string snapshot;
    ASSERT_TRUE(original.Checkpoint(&snapshot));
    Engine restored;
    ASSERT_TRUE(restored.Restore(snapshot)) << restored.last_error();
    EXPECT_EQ(restored.active_queries(), 0u);
    EXPECT_FALSE(restored.running());
  }
  // Registered but never pushed: no plan section; the restored engine
  // builds lazily on first push, exactly like the original would.
  {
    Engine original;
    const QueryHandle h = original.RegisterQuery(PlainQuery(2, "Q1"));
    ASSERT_TRUE(h.valid());
    std::string snapshot;
    ASSERT_TRUE(original.Checkpoint(&snapshot));
    Engine restored;
    ASSERT_TRUE(restored.Restore(snapshot)) << restored.last_error();
    EXPECT_TRUE(restored.IsActive(h));
    EXPECT_FALSE(restored.running());
    Tuple t;
    t.timestamp = SecondsToTicks(1.0);
    restored.Push(StreamSide::kA, t);
    EXPECT_EQ(restored.input_tuples(), 1u);
  }
  // Finished engine: terminal state round-trips, counts stay readable.
  {
    const Workload workload = SmallWorkload(37, 6);
    Engine original(BaseOptions(workload));
    const QueryHandle h = original.RegisterQuery(PlainQuery(2, "Q1"));
    ASSERT_TRUE(h.valid());
    const std::vector<Tuple> merged = MergedArrivals(workload);
    PushRange(&original, merged, 0, merged.size());
    original.Finish();
    std::string snapshot;
    ASSERT_TRUE(original.Checkpoint(&snapshot)) << original.last_error();
    Engine restored(BaseOptions(workload));
    ASSERT_TRUE(restored.Restore(snapshot)) << restored.last_error();
    EXPECT_TRUE(restored.finished());
    EXPECT_EQ(restored.ResultCount(h), original.ResultCount(h));
    EXPECT_EQ(restored.CollectedResults(h), original.CollectedResults(h));
    restored.Finish();  // idempotent on a restored-finished engine
  }
}

TEST(CheckpointTest, CorruptSnapshotsRejectWithDiagnosticsAndPoison) {
  const Workload workload = SmallWorkload(41, 6);
  Engine original(BaseOptions(workload));
  ASSERT_TRUE(original.RegisterQuery(PlainQuery(2, "Q1")).valid());
  const std::vector<Tuple> merged = MergedArrivals(workload);
  PushRange(&original, merged, 0, merged.size() / 2);
  std::string snapshot;
  ASSERT_TRUE(original.Checkpoint(&snapshot));
  const std::string body = snapshot.substr(0, snapshot.size() - 4);

  struct Case {
    std::string name;
    std::string bytes;
    std::string diagnostic;
  };
  std::string flipped_magic = body;
  flipped_magic[0] = 'X';
  std::string flipped_version = body;
  flipped_version[5] = '\x7f';
  std::string bitflip = snapshot;
  bitflip[snapshot.size() / 2] =
      static_cast<char>(bitflip[snapshot.size() / 2] ^ 0x40);
  const std::vector<Case> cases = {
      {"empty", "", "shorter"},
      {"truncated", snapshot.substr(0, snapshot.size() - 10), "checksum"},
      {"torn-tail", snapshot.substr(0, snapshot.size() / 3), "checksum"},
      {"bitflip", bitflip, "checksum"},
      {"bad-magic", Resealed(flipped_magic), "magic"},
      {"bad-version", Resealed(flipped_version), "version"},
      {"trailing-garbage", Resealed(body + std::string(8, '\0')),
       "trailing garbage"},
  };
  for (const Case& c : cases) {
    Engine restored(BaseOptions(workload));
    EXPECT_FALSE(restored.Restore(c.bytes)) << c.name;
    EXPECT_TRUE(restored.poisoned()) << c.name;
    EXPECT_NE(restored.last_error().find(c.diagnostic), std::string::npos)
        << c.name << ": " << restored.last_error();
    // A poisoned engine rejects ingestion and churn but keeps answering.
    Tuple t;
    t.timestamp = SecondsToTicks(1.0);
    restored.Push(StreamSide::kA, t);
    EXPECT_EQ(restored.input_tuples(), 0u) << c.name;
    EXPECT_EQ(restored.rejected_tuples(), 1u) << c.name;
    EXPECT_FALSE(restored.RegisterQuery(PlainQuery(2)).valid()) << c.name;
    std::string out;
    EXPECT_FALSE(restored.Checkpoint(&out)) << c.name;
    const RunStats stats = restored.Snapshot();
    EXPECT_EQ(stats.input_tuples, 0u) << c.name;
    // Poll/Drain/Finish are safe and idempotent on the poisoned shell.
    EXPECT_EQ(restored.Poll(), 0u) << c.name;
    restored.Drain();
    restored.Finish();
    restored.Finish();
  }
}

TEST(CheckpointTest, OptionsFingerprintMismatchIsNamed) {
  const Workload workload = SmallWorkload(43, 6);
  Engine original(BaseOptions(workload));
  ASSERT_TRUE(original.RegisterQuery(PlainQuery(2, "Q1")).valid());
  std::string snapshot;
  ASSERT_TRUE(original.Checkpoint(&snapshot));

  Engine::Options wrong_objective = BaseOptions(workload);
  wrong_objective.objective = ChainObjective::kCpuOpt;
  Engine e1(wrong_objective);
  EXPECT_FALSE(e1.Restore(snapshot));
  EXPECT_NE(e1.last_error().find("objective"), std::string::npos)
      << e1.last_error();

  Engine::Options wrong_mode = BaseOptions(workload);
  wrong_mode.mode = ExecutionMode::kParallel;
  wrong_mode.worker_threads = 2;
  Engine e2(wrong_mode);
  EXPECT_FALSE(e2.Restore(snapshot));
  EXPECT_NE(e2.last_error().find("mode"), std::string::npos)
      << e2.last_error();

  Engine::Options wrong_condition = BaseOptions(workload);
  wrong_condition.condition = JoinCondition::ModSum(97, 13);
  Engine e3(wrong_condition);
  EXPECT_FALSE(e3.Restore(snapshot));
  EXPECT_NE(e3.last_error().find("condition"), std::string::npos)
      << e3.last_error();
}

TEST(CheckpointTest, RestoreRequiresFreshEngineWithoutPoisoning) {
  const Workload workload = SmallWorkload(47, 6);
  Engine original(BaseOptions(workload));
  const QueryHandle h = original.RegisterQuery(PlainQuery(2, "Q1"));
  ASSERT_TRUE(h.valid());
  std::string snapshot;
  ASSERT_TRUE(original.Checkpoint(&snapshot));

  // The original engine itself is no longer fresh: Restore refuses but
  // does NOT poison — the engine keeps serving.
  EXPECT_FALSE(original.Restore(snapshot));
  EXPECT_FALSE(original.poisoned());
  EXPECT_NE(original.last_error().find("freshly constructed"),
            std::string::npos);
  const std::vector<Tuple> merged = MergedArrivals(workload);
  PushRange(&original, merged, 0, merged.size());
  original.Finish();
  EXPECT_GT(original.ResultCount(h), 0u);
}

TEST(CheckpointTest, HandlesFromTheCheckpointedEngineStayValid) {
  const Workload workload = SmallWorkload(53, 8);
  Engine original(BaseOptions(workload));
  const QueryHandle h1 = original.RegisterQuery(PlainQuery(2, "Q1"));
  const QueryHandle h2 = original.RegisterQuery(PlainQuery(4, "Q2"));
  ASSERT_TRUE(h1.valid() && h2.valid());
  const std::vector<Tuple> merged = MergedArrivals(workload);
  const size_t split = StrictIncreaseAt(merged, merged.size() / 2);
  PushRange(&original, merged, 0, split);
  std::string snapshot;
  ASSERT_TRUE(original.Checkpoint(&snapshot));

  Engine restored(BaseOptions(workload));
  ASSERT_TRUE(restored.Restore(snapshot)) << restored.last_error();
  // Handles minted by the original resolve identically in the restored
  // engine: churn through them works.
  EXPECT_TRUE(restored.IsActive(h1));
  uint64_t tail_results = 0;
  ASSERT_TRUE(restored
                  .Subscribe(h2,
                             [&tail_results](const JoinResult&) {
                               ++tail_results;
                             })
                  .valid());
  ASSERT_TRUE(restored.UnregisterQuery(h1));
  EXPECT_FALSE(restored.IsActive(h1));
  PushRange(&restored, merged, split, merged.size());
  restored.Finish();
  EXPECT_GT(tail_results, 0u);
  EXPECT_EQ(restored.ResultCount(h2), tail_results + [&] {
    // Results delivered before the snapshot were folded into the record.
    Engine replay(BaseOptions(workload));
    const QueryHandle rh1 = replay.RegisterQuery(PlainQuery(2, "Q1"));
    const QueryHandle rh2 = replay.RegisterQuery(PlainQuery(4, "Q2"));
    EXPECT_EQ(rh1, h1);
    EXPECT_EQ(rh2, h2);
    PushRange(&replay, merged, 0, split);
    return replay.ResultCount(h2);
  }());
}

TEST(CheckpointTest, CheckpointingAPoisonedEngineFails) {
  Engine engine;
  EXPECT_FALSE(engine.Restore("garbage-that-is-not-a-snapshot"));
  ASSERT_TRUE(engine.poisoned());
  std::string out = "sentinel";
  EXPECT_FALSE(engine.Checkpoint(&out));
  EXPECT_EQ(out, "sentinel");  // failed checkpoint writes nothing
  EXPECT_NE(engine.last_error().find("poisoned"), std::string::npos);
}

TEST(CheckpointTest, DoubleFinishIsIdempotent) {
  const Workload workload = SmallWorkload(59, 6);
  Engine engine(BaseOptions(workload));
  const QueryHandle h = engine.RegisterQuery(PlainQuery(2, "Q1"));
  ASSERT_TRUE(h.valid());
  const std::vector<Tuple> merged = MergedArrivals(workload);
  PushRange(&engine, merged, 0, merged.size());
  engine.Finish();
  const uint64_t delivered = engine.ResultCount(h);
  engine.Finish();  // second Finish is a no-op
  engine.Drain();
  EXPECT_EQ(engine.Poll(), 0u);
  EXPECT_EQ(engine.ResultCount(h), delivered);
}

TEST(CheckpointDeathTest, PushAfterFinishDies) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterQuery(PlainQuery(2, "Q1")).valid());
  engine.Finish();
  Tuple t;
  t.timestamp = SecondsToTicks(1.0);
  EXPECT_DEATH(engine.Push(StreamSide::kA, t), "CHECK failed");
}

}  // namespace
}  // namespace stateslice
