// Unit tests for the pure chain-structure and selection-push-down decision
// functions (ChainSpec, ChainPartition, SliceInputPredicate, gate rules).
#include <gtest/gtest.h>

#include "src/core/chain_spec.h"
#include "src/core/selection_pushdown.h"
#include "tests/test_util.h"

namespace stateslice {
namespace {

using ::stateslice::testing::A;

std::vector<ContinuousQuery> Queries(
    std::vector<std::pair<double, double>> window_and_selectivity) {
  std::vector<ContinuousQuery> queries(window_and_selectivity.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    queries[i].id = static_cast<int>(i);
    queries[i].name = "Q" + std::to_string(i + 1);
    queries[i].window =
        WindowSpec::TimeSeconds(window_and_selectivity[i].first);
    if (window_and_selectivity[i].second < 1.0) {
      queries[i].selection_a =
          Predicate::WithSelectivity(window_and_selectivity[i].second);
    }
  }
  return queries;
}

TEST(ChainSpecTest, DeduplicatesAndSortsBoundaries) {
  const auto queries = Queries({{4, 1}, {2, 1}, {4, 1}, {8, 1}});
  const ChainSpec spec = BuildChainSpec(queries);
  ASSERT_EQ(spec.num_boundaries(), 3);
  EXPECT_EQ(spec.boundaries[0], SecondsToTicks(2));
  EXPECT_EQ(spec.boundaries[1], SecondsToTicks(4));
  EXPECT_EQ(spec.boundaries[2], SecondsToTicks(8));
  // Query -> boundary mapping.
  EXPECT_EQ(spec.query_boundary[0], 1);
  EXPECT_EQ(spec.query_boundary[1], 0);
  EXPECT_EQ(spec.query_boundary[2], 1);
  EXPECT_EQ(spec.query_boundary[3], 2);
  // Two queries registered at the 4 s boundary.
  EXPECT_EQ(spec.queries_at_boundary[1].size(), 2u);
}

TEST(ChainSpecTest, QueriesAtOrBeyondCounts) {
  const auto queries = Queries({{2, 1}, {4, 1}, {4, 1}, {8, 1}});
  const ChainSpec spec = BuildChainSpec(queries);
  EXPECT_EQ(spec.QueriesAtOrBeyond(0), 4);
  EXPECT_EQ(spec.QueriesAtOrBeyond(1), 3);
  EXPECT_EQ(spec.QueriesAtOrBeyond(2), 1);
}

TEST(ChainPartitionTest, MemOptUsesEveryBoundary) {
  const auto queries = Queries({{2, 1}, {4, 1}, {8, 1}});
  const ChainSpec spec = BuildChainSpec(queries);
  const ChainPartition p = MemOptPartition(spec);
  EXPECT_EQ(p.num_slices(), 3);
  EXPECT_EQ(p.SliceStartBoundary(0), -1);
  EXPECT_EQ(p.SliceStartBoundary(1), 0);
  EXPECT_EQ(p.SliceStartBoundary(2), 1);
  ValidatePartition(spec, p);
}

TEST(ChainPartitionDeathTest, InvalidPartitionsRejected) {
  const auto queries = Queries({{2, 1}, {4, 1}, {8, 1}});
  const ChainSpec spec = BuildChainSpec(queries);
  ChainPartition missing_last;
  missing_last.slice_end_boundaries = {0, 1};
  EXPECT_DEATH(ValidatePartition(spec, missing_last), "CHECK failed");
  ChainPartition unsorted;
  unsorted.slice_end_boundaries = {1, 0, 2};
  EXPECT_DEATH(ValidatePartition(spec, unsorted), "CHECK failed");
}

TEST(SliceInputPredicateTest, DisjunctionOverDownstreamQueries) {
  // Q1 unfiltered at 2 s, Q2 (sel .2) at 4 s, Q3 (sel .4) at 8 s.
  const auto queries = Queries({{2, 1}, {4, 0.2}, {8, 0.4}});
  const ChainSpec spec = BuildChainSpec(queries);
  // Slice 1 serves everyone including unfiltered Q1: filter is true.
  EXPECT_TRUE(SliceInputPredicate(queries, spec, 0).IsTrue());
  // Slice starting past Q1: cond_2 OR cond_3.
  const Predicate d1 = SliceInputPredicate(queries, spec, 1);
  EXPECT_FALSE(d1.IsTrue());
  EXPECT_TRUE(d1.Eval(A(1, 0.0, 0, 0.1)));   // passes cond_2
  EXPECT_TRUE(d1.Eval(A(1, 0.0, 0, 0.35)));  // passes cond_3 only
  EXPECT_FALSE(d1.Eval(A(1, 0.0, 0, 0.9)));  // passes neither
  // Last slice: cond_3 only.
  const Predicate d2 = SliceInputPredicate(queries, spec, 2);
  EXPECT_FALSE(d2.Eval(A(1, 0.0, 0, 0.35)) == false);
  EXPECT_FALSE(d2.Eval(A(1, 0.0, 0, 0.5)));
}

TEST(SliceInputPredicateTest, SelectivityComposesByInclusionExclusion) {
  const auto queries = Queries({{2, 0.5}, {4, 0.5}});
  const ChainSpec spec = BuildChainSpec(queries);
  const Predicate d = SliceInputPredicate(queries, spec, 0);
  // Both predicates are value < 0.5 (identical ranges): the disjunction
  // passes exactly values < 0.5. Estimated selectivity assumes
  // independence (documented upper bound).
  EXPECT_TRUE(d.Eval(A(1, 0.0, 0, 0.4)));
  EXPECT_FALSE(d.Eval(A(1, 0.0, 0, 0.6)));
}

TEST(LineageMaskTest, MatchesBoundaryThreshold) {
  const auto queries = Queries({{2, 0.5}, {4, 0.5}, {8, 0.5}});
  const ChainSpec spec = BuildChainSpec(queries);
  EXPECT_EQ(LineageMaskAtOrBeyond(spec, 0), uint64_t{0b111});
  EXPECT_EQ(LineageMaskAtOrBeyond(spec, 1), uint64_t{0b110});
  EXPECT_EQ(LineageMaskAtOrBeyond(spec, 2), uint64_t{0b100});
  EXPECT_EQ(LineageMaskAtOrBeyond(spec, 3), uint64_t{0});
}

TEST(SliceConsumersTest, QueriesWithBoundaryAtOrPastSliceEnd) {
  const auto queries = Queries({{2, 1}, {4, 1}, {4, 1}, {8, 1}});
  const ChainSpec spec = BuildChainSpec(queries);
  EXPECT_EQ(SliceConsumers(spec, 0), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(SliceConsumers(spec, 1), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(SliceConsumers(spec, 2), (std::vector<int>{3}));
}

TEST(NeedsResultGateTest, PaperFigure10Rules) {
  // Fig. 10: Q1 (no σ) never gates; Q2 gates slice 1 (shared with Q1) but
  // not slice 2 (sole consumer).
  const auto queries = Queries({{2, 1}, {8, 0.5}});
  EXPECT_FALSE(NeedsResultGate(queries, /*consumers=*/{0, 1}, 0));
  EXPECT_TRUE(NeedsResultGate(queries, /*consumers=*/{0, 1}, 1));
  EXPECT_FALSE(NeedsResultGate(queries, /*consumers=*/{1}, 1));
}

TEST(NeedsResultGateTest, SharedPredicateNeedsNoGate) {
  // Two queries with the same predicate consuming one slice: the slice's
  // input filter is exactly that predicate, so results are pre-filtered.
  const auto queries = Queries({{2, 0.5}, {8, 0.5}});
  EXPECT_FALSE(NeedsResultGate(queries, {0, 1}, 0));
  EXPECT_FALSE(NeedsResultGate(queries, {0, 1}, 1));
}

TEST(NeedsResultGateTest, DifferentPredicatesGateEachOther) {
  std::vector<ContinuousQuery> queries(2);
  queries[0] = {0, "Q1", WindowSpec::TimeSeconds(2),
                Predicate::LessThan(0.3), {}};
  queries[1] = {1, "Q2", WindowSpec::TimeSeconds(8),
                Predicate::LessThan(0.7), {}};
  EXPECT_TRUE(NeedsResultGate(queries, {0, 1}, 0));
  EXPECT_TRUE(NeedsResultGate(queries, {0, 1}, 1));
}

}  // namespace
}  // namespace stateslice
