// StealDeque: the bounded FIFO of spilled EventRuns behind the sharded
// runtime's work-stealing. Single-threaded contract checks plus a
// producer/consumer stress and a serialized consumer-handoff sequence
// (the token discipline, modeled sequentially).
#include "src/runtime/steal_deque.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace stateslice {
namespace {

TEST(StealDequeTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(StealDeque<int>(1).capacity(), 2u);
  EXPECT_EQ(StealDeque<int>(2).capacity(), 2u);
  EXPECT_EQ(StealDeque<int>(3).capacity(), 4u);
  EXPECT_EQ(StealDeque<int>(64).capacity(), 64u);
  EXPECT_EQ(StealDeque<int>(65).capacity(), 128u);
}

TEST(StealDequeTest, FifoOrderAndBoundedness) {
  StealDeque<int> deque(4);
  deque.AssertProducer();  // single-threaded test: trivially the producer
  deque.AssertConsumer();  // ... and the sole (token-holding) consumer
  EXPECT_TRUE(deque.empty());
  EXPECT_TRUE(deque.ProducerEmpty());

  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(deque.TryPushBack(int{i})) << i;
  }
  int rejected = 99;
  EXPECT_FALSE(deque.TryPushBack(std::move(rejected)));
  EXPECT_EQ(rejected, 99);  // full push leaves the value untouched
  EXPECT_EQ(deque.size(), 4u);
  EXPECT_EQ(deque.high_water_mark(), 4u);

  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(deque.TryPopFront(&out));
    EXPECT_EQ(out, i);  // oldest first: stealing never reorders
  }
  EXPECT_FALSE(deque.TryPopFront(&out));
  EXPECT_TRUE(deque.ProducerEmpty());
  EXPECT_EQ(deque.total_pushed(), 4u);

  // Wrap-around keeps FIFO order.
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(deque.TryPushBack(10 + round));
    EXPECT_TRUE(deque.TryPushBack(20 + round));
    ASSERT_TRUE(deque.TryPopFront(&out));
    EXPECT_EQ(out, 10 + round);
    ASSERT_TRUE(deque.TryPopFront(&out));
    EXPECT_EQ(out, 20 + round);
  }
}

TEST(StealDequeTest, SerializedConsumerHandoffPreservesOrder) {
  // The sharded runtime hands the consumer side between token holders.
  // Model the handoff sequentially: thread A pops a prefix, exits (its
  // join is the release/acquire edge the token provides), thread B pops
  // the rest. Order must be seamless across the handoff.
  StealDeque<int> deque(8);
  deque.AssertProducer();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(deque.TryPushBack(int{i}));
  }

  std::vector<int> seen;
  std::thread holder_a([&] {
    deque.AssertConsumer();  // holds the (modeled) token
    int out;
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(deque.TryPopFront(&out));
      seen.push_back(out);
    }
  });
  holder_a.join();
  std::thread holder_b([&] {
    deque.AssertConsumer();  // next token holder, after the handoff
    int out;
    while (deque.TryPopFront(&out)) seen.push_back(out);
  });
  holder_b.join();

  ASSERT_EQ(seen.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
}

TEST(StealDequeTest, ConcurrentProducerConsumerStress) {
  constexpr int kTotal = 20000;
  StealDeque<int> deque(16);
  std::thread producer([&] {
    deque.AssertProducer();
    for (int i = 0; i < kTotal;) {
      if (deque.TryPushBack(int{i})) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::vector<int> seen;
  seen.reserve(kTotal);
  std::thread consumer([&] {
    deque.AssertConsumer();
    int out;
    while (static_cast<int>(seen.size()) < kTotal) {
      if (deque.TryPopFront(&out)) {
        seen.push_back(out);
      } else {
        std::this_thread::yield();
      }
    }
  });
  producer.join();
  consumer.join();

  ASSERT_EQ(seen.size(), static_cast<size_t>(kTotal));
  for (int i = 0; i < kTotal; ++i) {
    ASSERT_EQ(seen[static_cast<size_t>(i)], i);
  }
  EXPECT_EQ(deque.total_pushed(), static_cast<uint64_t>(kTotal));
  EXPECT_LE(deque.high_water_mark(), deque.capacity());
}

}  // namespace
}  // namespace stateslice
