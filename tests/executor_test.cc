#include "src/runtime/executor.h"

#include <gtest/gtest.h>

#include "src/stateslice.h"
#include "tests/test_util.h"

namespace stateslice {
namespace {

using ::stateslice::testing::RunPlan;

std::vector<ContinuousQuery> OneQuery(double window_s) {
  std::vector<ContinuousQuery> queries(1);
  queries[0].id = 0;
  queries[0].name = "Q1";
  queries[0].window = WindowSpec::TimeSeconds(window_s);
  return queries;
}

TEST(ExecutorTest, FeedsBothStreamsInGlobalOrder) {
  const auto queries = OneQuery(3);
  WorkloadSpec spec;
  spec.duration_s = 6;
  const Workload workload = GenerateWorkload(spec);
  BuildOptions options;
  options.condition = workload.condition;
  options.collect_results = true;
  BuiltPlan built = BuildPullUpPlan(queries, options);
  const RunStats stats = RunPlan(&built, workload);
  EXPECT_EQ(stats.input_tuples,
            workload.stream_a.size() + workload.stream_b.size());
  EXPECT_EQ(built.collectors[0]->ResultMultiset(),
            testing::OracleJoin(workload.stream_a, workload.stream_b,
                                workload.condition, queries[0]));
}

TEST(ExecutorTest, CollectsMemorySamplesAtInterval) {
  const auto queries = OneQuery(2);
  WorkloadSpec spec;
  spec.duration_s = 10;
  const Workload workload = GenerateWorkload(spec);
  BuildOptions options;
  options.condition = workload.condition;
  BuiltPlan built = BuildPullUpPlan(queries, options);
  const RunStats stats = RunPlan(&built, workload);
  // One sample per virtual second (roughly; sampling stops at last tuple).
  EXPECT_GE(stats.memory_samples.size(), 8u);
  EXPECT_LE(stats.memory_samples.size(), 11u);
  // After warm-up the join holds about 2 windows * 20 t/s * 2 s tuples.
  const double avg = stats.AvgStateTuples(SecondsToTicks(4.0));
  EXPECT_GT(avg, 30.0);
  EXPECT_LT(avg, 130.0);
}

TEST(ExecutorTest, ServiceRateAndComparisonsPopulated) {
  const auto queries = OneQuery(2);
  WorkloadSpec spec;
  spec.duration_s = 8;
  const Workload workload = GenerateWorkload(spec);
  BuildOptions options;
  options.condition = workload.condition;
  BuiltPlan built = BuildPullUpPlan(queries, options);
  const RunStats stats = RunPlan(&built, workload);
  EXPECT_GT(stats.results_delivered, 0u);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.ServiceRate(), 0.0);
  EXPECT_GT(stats.cost.Get(CostCategory::kProbe), 0u);
  EXPECT_GT(stats.ComparisonsPerVirtualSecond(), 0.0);
  EXPECT_NE(stats.DebugString().find("results="), std::string::npos);
}

TEST(ExecutorTest, MaxEventsCapStopsEarly) {
  const auto queries = OneQuery(2);
  WorkloadSpec spec;
  spec.duration_s = 10;
  const Workload workload = GenerateWorkload(spec);
  BuildOptions options;
  options.condition = workload.condition;
  BuiltPlan built = BuildPullUpPlan(queries, options);
  ExecutorOptions exec_options;
  exec_options.max_events = 50;
  exec_options.finish_at_end = false;
  const RunStats stats = RunPlan(&built, workload, exec_options);
  EXPECT_LT(stats.input_tuples,
            workload.stream_a.size() + workload.stream_b.size());
}

TEST(ExecutorTest, FeedBatchLargerThanOneStillCorrectOnSingleSpine) {
  // State-slice plans keep a single FIFO spine, so batched feeding (queued
  // arrivals) must not change any query's results.
  std::vector<ContinuousQuery> queries(2);
  queries[0] = {0, "Q1", WindowSpec::TimeSeconds(2), {}, {}};
  queries[1] = {1, "Q2", WindowSpec::TimeSeconds(5), {}, {}};
  WorkloadSpec spec;
  spec.duration_s = 10;
  const Workload workload = GenerateWorkload(spec);
  BuildOptions options;
  options.condition = workload.condition;
  options.collect_results = true;

  BuiltPlan batched =
      BuildStateSlicePlan(queries, BuildMemOptChain(queries), options);
  ExecutorOptions exec_options;
  exec_options.feed_batch = 16;
  RunPlan(&batched, workload, exec_options);

  for (const ContinuousQuery& q : queries) {
    EXPECT_EQ(batched.collectors[q.id]->ResultMultiset(),
              testing::OracleJoin(workload.stream_a, workload.stream_b,
                                  workload.condition, q))
        << q.DebugString();
  }
}

TEST(RunStatsTest, AvgAndMaxStateHelpers) {
  RunStats stats;
  stats.memory_samples = {{0, 10, 0}, {kTicksPerSecond, 20, 0},
                          {2 * kTicksPerSecond, 30, 0}};
  EXPECT_DOUBLE_EQ(stats.AvgStateTuples(), 20.0);
  EXPECT_DOUBLE_EQ(stats.AvgStateTuples(kTicksPerSecond), 25.0);
  EXPECT_EQ(stats.MaxStateTuples(), 30u);
  EXPECT_DOUBLE_EQ(RunStats{}.AvgStateTuples(), 0.0);
}

}  // namespace
}  // namespace stateslice
