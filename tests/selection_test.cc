#include "src/operators/selection.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace stateslice {
namespace {

using ::stateslice::testing::A;
using ::stateslice::testing::B;
using ::stateslice::testing::DrainQueue;

TEST(SelectionTest, FiltersTargetSide) {
  Selection sel("s", Predicate::GreaterThan(0.5), StreamSide::kA);
  EventQueue out("out");
  sel.AttachOutput(Selection::kOutPort, &out);
  sel.Process(A(1, 1.0, 0, 0.9), 0);
  sel.Process(A(2, 2.0, 0, 0.1), 0);
  const auto events = DrainQueue(&out);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::get<Tuple>(events[0]).seq, 1u);
}

TEST(SelectionTest, OtherSidePassesFreeOfCharge) {
  CostCounters counters;
  Selection sel("s", Predicate::GreaterThan(0.5), StreamSide::kA);
  sel.set_cost_counters(&counters);
  EventQueue out("out");
  sel.AttachOutput(Selection::kOutPort, &out);
  sel.Process(B(1, 1.0, 0, 0.1), 0);  // fails predicate but is stream B
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(counters.Get(CostCategory::kFilter), 0u);
  sel.Process(A(1, 2.0, 0, 0.1), 0);
  EXPECT_EQ(counters.Get(CostCategory::kFilter), 1u);
}

TEST(SelectionTest, ForwardsPunctuations) {
  Selection sel("s", Predicate::GreaterThan(0.5), StreamSide::kA);
  EventQueue out("out");
  sel.AttachOutput(Selection::kOutPort, &out);
  sel.Process(Punctuation{.watermark = 3}, 0);
  EXPECT_EQ(out.size(), 1u);
}

TEST(LineageStamperTest, StampsSatisfactionBits) {
  // Three queries: q0 value<0.3, q1 value<0.6, q2 value<0.9.
  LineageStamper stamper("ls",
                         {Predicate::LessThan(0.3), Predicate::LessThan(0.6),
                          Predicate::LessThan(0.9)},
                         StreamSide::kA);
  EventQueue out("out");
  stamper.AttachOutput(LineageStamper::kOutPort, &out);
  stamper.Process(A(1, 1.0, 0, 0.5), 0);  // passes q1, q2 only
  const auto events = DrainQueue(&out);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::get<Tuple>(events[0]).lineage, uint64_t{0b110});
}

TEST(LineageStamperTest, DropsTuplesMatchingNoQuery) {
  LineageStamper stamper("ls", {Predicate::LessThan(0.1)}, StreamSide::kA);
  EventQueue out("out");
  stamper.AttachOutput(LineageStamper::kOutPort, &out);
  stamper.Process(A(1, 1.0, 0, 0.5), 0);
  EXPECT_TRUE(out.empty());
}

TEST(LineageStamperTest, EarlyStopChargingFromHighestQuery) {
  CostCounters counters;
  LineageStamper stamper("ls",
                         {Predicate::LessThan(0.3), Predicate::LessThan(0.6),
                          Predicate::LessThan(0.9)},
                         StreamSide::kA);
  stamper.set_cost_counters(&counters);
  EventQueue out("out");
  stamper.AttachOutput(LineageStamper::kOutPort, &out);
  // value=0.8 satisfies q2 immediately: 1 charged evaluation (Section 6.1).
  stamper.Process(A(1, 1.0, 0, 0.8), 0);
  EXPECT_EQ(counters.Get(CostCategory::kFilter), 1u);
  // value=0.95 satisfies nothing: all 3 charged.
  // Single-threaded test: nothing charges concurrently.
  counters.AssertQuiescent();
  counters.Reset();
  stamper.Process(A(2, 2.0, 0, 0.95), 0);
  EXPECT_EQ(counters.Get(CostCategory::kFilter), 3u);
}

TEST(LineageStamperTest, OtherSideKeepsFullMask) {
  LineageStamper stamper("ls", {Predicate::LessThan(0.1)}, StreamSide::kA);
  EventQueue out("out");
  stamper.AttachOutput(LineageStamper::kOutPort, &out);
  stamper.Process(B(1, 1.0, 0, 0.9), 0);
  const auto events = DrainQueue(&out);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::get<Tuple>(events[0]).lineage, ~uint64_t{0});
}

TEST(LineageFilterTest, PassesByMaskIntersection) {
  LineageFilter filter("lf", /*mask=*/0b100, StreamSide::kA);
  EventQueue out("out");
  filter.AttachOutput(LineageFilter::kOutPort, &out);
  Tuple pass = A(1, 1.0);
  pass.lineage = 0b110;
  Tuple drop = A(2, 2.0);
  drop.lineage = 0b011;
  filter.Process(pass, 0);
  filter.Process(drop, 0);
  const auto events = DrainQueue(&out);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::get<Tuple>(events[0]).seq, 1u);
}

TEST(ResultGateTest, FiltersJoinResultsByComponent) {
  ResultGate gate("g", Predicate::GreaterThan(0.5), StreamSide::kA);
  EventQueue out("out");
  gate.AttachOutput(ResultGate::kOutPort, &out);
  gate.Process(JoinResult{A(1, 1.0, 0, 0.9), B(1, 1.0, 0, 0.1)}, 0);
  gate.Process(JoinResult{A(2, 2.0, 0, 0.1), B(2, 2.0, 0, 0.9)}, 0);
  const auto events = DrainQueue(&out);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(JoinPairKey(std::get<JoinResult>(events[0])), "a1|b1");
}

TEST(ResultGateTest, TargetSideBSelectsBComponent) {
  ResultGate gate("g", Predicate::GreaterThan(0.5), StreamSide::kB);
  EventQueue out("out");
  gate.AttachOutput(ResultGate::kOutPort, &out);
  gate.Process(JoinResult{A(1, 1.0, 0, 0.1), B(1, 1.0, 0, 0.9)}, 0);
  EXPECT_EQ(out.size(), 1u);
}

TEST(ResultGateTest, ChargesOneGateComparisonPerResult) {
  CostCounters counters;
  ResultGate gate("g", Predicate::GreaterThan(0.5), StreamSide::kA);
  gate.set_cost_counters(&counters);
  EventQueue out("out");
  gate.AttachOutput(ResultGate::kOutPort, &out);
  gate.Process(JoinResult{A(1, 1.0, 0, 0.9), B(1, 1.0, 0, 0.5)}, 0);
  gate.Process(JoinResult{A(2, 2.0, 0, 0.2), B(2, 2.0, 0, 0.5)}, 0);
  EXPECT_EQ(counters.Get(CostCategory::kGate), 2u);
  EXPECT_EQ(counters.Get(CostCategory::kFilter), 0u);
}

TEST(ResultGateTest, ForwardsPunctuations) {
  ResultGate gate("g", Predicate::GreaterThan(0.5), StreamSide::kA);
  EventQueue out("out");
  gate.AttachOutput(ResultGate::kOutPort, &out);
  gate.Process(Punctuation{.watermark = 4}, 0);
  EXPECT_EQ(out.size(), 1u);
}

}  // namespace
}  // namespace stateslice
