#include "src/runtime/spsc_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/common/tuple.h"
#include "src/runtime/queue.h"
#include "tests/test_util.h"

namespace stateslice {
namespace {

using ::stateslice::testing::A;

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscQueue<int>(1024).capacity(), 1024u);
}

TEST(SpscQueueTest, FifoOrderSingleThread) {
  SpscQueue<int> q(8);
  // Single-threaded test: this thread plays both SPSC roles.
  q.AssertProducer();
  q.AssertConsumer();
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.TryPush(int{i}));
  for (int i = 0; i < 5; ++i) {
    int v = -1;
    EXPECT_TRUE(q.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  int v;
  EXPECT_FALSE(q.TryPop(&v));
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueueTest, PushFailsWhenFullAndPreservesValue) {
  SpscQueue<int> q(2);
  // Single-threaded test: this thread plays both SPSC roles.
  q.AssertProducer();
  q.AssertConsumer();
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  int v = 42;
  EXPECT_FALSE(q.TryPush(std::move(v)));
  EXPECT_EQ(v, 42);  // failed push must not consume the value
  EXPECT_EQ(q.size(), 2u);
  int out;
  EXPECT_TRUE(q.TryPop(&out));
  EXPECT_TRUE(q.TryPush(3));  // slot freed
}

TEST(SpscQueueTest, WrapAroundKeepsFifo) {
  SpscQueue<int> q(4);
  // Single-threaded test: this thread plays both SPSC roles.
  q.AssertProducer();
  q.AssertConsumer();
  int out;
  // Push/pop more than the capacity so head and tail wrap several times.
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 10; ++round) {
    while (q.TryPush(int{next_push})) ++next_push;
    while (q.TryPop(&out)) {
      EXPECT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_push, next_pop);
  EXPECT_GT(next_push, static_cast<int>(q.capacity()));
}

TEST(SpscQueueTest, AccountingMatchesEventQueueSemantics) {
  SpscQueue<int> q(8);
  // Single-threaded test: this thread plays both SPSC roles.
  q.AssertProducer();
  q.AssertConsumer();
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.TryPush(int{i}));
  int out;
  ASSERT_TRUE(q.TryPop(&out));
  ASSERT_TRUE(q.TryPop(&out));
  ASSERT_TRUE(q.TryPush(9));
  EXPECT_EQ(q.total_pushed(), 6u);
  // Producer-side HWM: at least the true peak of 5, never above capacity.
  EXPECT_GE(q.high_water_mark(), 5u);
  EXPECT_LE(q.high_water_mark(), q.capacity());
}

TEST(SpscQueueTest, CarriesEvents) {
  SpscQueue<Event> q(4);
  // Single-threaded test: this thread plays both SPSC roles.
  q.AssertProducer();
  q.AssertConsumer();
  ASSERT_TRUE(q.TryPush(A(7, 1.5)));
  ASSERT_TRUE(q.TryPush(Punctuation{.watermark = 5}));
  Event e;
  ASSERT_TRUE(q.TryPop(&e));
  EXPECT_TRUE(IsTuple(e));
  EXPECT_EQ(std::get<Tuple>(e).seq, 7u);
  ASSERT_TRUE(q.TryPop(&e));
  EXPECT_TRUE(IsPunctuation(e));
}

TEST(SpscQueueTest, PushRunMovesWhatFitsAndReportsCount) {
  SpscQueue<Event> q(4);
  // Single-threaded test: this thread plays both SPSC roles.
  q.AssertProducer();
  q.AssertConsumer();
  EventRun run;
  for (int i = 0; i < 6; ++i) run.push_back(A(i + 1, 1.0 * i));
  // Capacity 4, so only the first 4 events fit; the caller retries the
  // tail from the returned offset.
  EXPECT_EQ(q.TryPushRun(&run, 0), 4u);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.TryPushRun(&run, 4), 0u);  // full: nothing moves
  Event e;
  ASSERT_TRUE(q.TryPop(&e));
  ASSERT_TRUE(q.TryPop(&e));
  EXPECT_EQ(q.TryPushRun(&run, 4), 2u);
  EXPECT_EQ(q.total_pushed(), 6u);
  // FIFO across the split push: seq 3..6 remain.
  for (uint32_t want = 3; want <= 6; ++want) {
    ASSERT_TRUE(q.TryPop(&e));
    EXPECT_EQ(std::get<Tuple>(e).seq, want);
  }
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueueTest, PopRunDrainsBoundedAndAppends) {
  SpscQueue<Event> q(8);
  // Single-threaded test: this thread plays both SPSC roles.
  q.AssertProducer();
  q.AssertConsumer();
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(q.TryPush(A(i + 1, 1.0 * i)));
  EventRun run;
  EXPECT_EQ(q.TryPopRun(&run, 4), 4u);
  ASSERT_EQ(run.size(), 4u);
  EXPECT_EQ(std::get<Tuple>(run[0]).seq, 1u);
  EXPECT_EQ(std::get<Tuple>(run[3]).seq, 4u);
  // Appends after existing contents, drains only what's there.
  EXPECT_EQ(q.TryPopRun(&run, 4), 2u);
  ASSERT_EQ(run.size(), 6u);
  EXPECT_EQ(std::get<Tuple>(run[5]).seq, 6u);
  EXPECT_EQ(q.TryPopRun(&run, 4), 0u);  // empty: no-op
  EXPECT_TRUE(q.empty());
}

// Run-based producer/consumer across threads: batched pushes and pops must
// preserve exactly the per-event FIFO contract. Run under TSan in CI (tsan
// preset) to certify the single release-store publication per run.
TEST(SpscQueueStressTest, RunTransfersAcrossThreads) {
  constexpr uint32_t kCount = 100000;
  SpscQueue<Event> q(64);

  std::thread producer([&q] {
    q.AssertProducer();  // this thread is the only pusher
    Rng rng(3);
    EventRun run;
    uint32_t next = 0;
    while (next < kCount) {
      run.clear();
      const uint64_t batch = 1 + rng.NextBounded(96);
      for (uint64_t i = 0; i < batch && next < kCount; ++i) {
        run.push_back(A(next++, 1.0));
      }
      size_t pushed = 0;
      while (pushed < run.size()) {
        const size_t n = q.TryPushRun(&run, pushed);
        pushed += n;
        if (n == 0) std::this_thread::yield();
      }
    }
  });

  q.AssertConsumer();  // the main thread is the only popper
  Rng rng(4);
  EventRun run;
  uint32_t expected = 0;
  while (expected < kCount) {
    run.clear();
    const size_t n = q.TryPopRun(&run, 1 + rng.NextBounded(96));
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (const Event& e : run) {
      ASSERT_EQ(std::get<Tuple>(e).seq, expected);  // FIFO, no loss
      ++expected;
    }
  }
  producer.join();
  EXPECT_EQ(q.total_pushed(), kCount);
  EXPECT_TRUE(q.empty());
}

// Producer/consumer threads with randomized batch sizes: every value must
// come out exactly once, in order, and the accounting must add up. Run
// under TSan in CI (tsan preset) to certify the memory ordering.
TEST(SpscQueueStressTest, TwoThreadsRandomBatches) {
  constexpr uint64_t kCount = 200000;
  SpscQueue<uint64_t> q(64);

  std::thread producer([&q] {
    q.AssertProducer();  // this thread is the only pusher
    Rng rng(1);
    uint64_t next = 0;
    while (next < kCount) {
      const uint64_t batch = 1 + rng.NextBounded(97);
      for (uint64_t i = 0; i < batch && next < kCount; ++i) {
        uint64_t value = next;
        if (q.TryPush(std::move(value))) {
          ++next;
        } else {
          std::this_thread::yield();
        }
      }
    }
  });

  q.AssertConsumer();  // the main thread is the only popper
  Rng rng(2);
  uint64_t expected = 0;
  while (expected < kCount) {
    const uint64_t batch = 1 + rng.NextBounded(97);
    for (uint64_t i = 0; i < batch && expected < kCount; ++i) {
      uint64_t value = 0;
      if (q.TryPop(&value)) {
        ASSERT_EQ(value, expected);  // FIFO, no loss, no duplication
        ++expected;
      } else {
        std::this_thread::yield();
      }
    }
  }
  producer.join();

  EXPECT_EQ(q.total_pushed(), kCount);
  EXPECT_TRUE(q.empty());
  EXPECT_GE(q.high_water_mark(), 1u);
  EXPECT_LE(q.high_water_mark(), q.capacity());
}

// Same stress but with Event payloads (the type the scheduler ships).
TEST(SpscQueueStressTest, EventPayloadsAcrossThreads) {
  constexpr uint32_t kCount = 50000;
  SpscQueue<Event> q(32);

  std::thread producer([&q] {
    q.AssertProducer();  // this thread is the only pusher
    for (uint32_t i = 0; i < kCount;) {
      Event e = A(i, static_cast<double>(i));
      if (q.TryPush(std::move(e))) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });

  q.AssertConsumer();  // the main thread is the only popper
  uint32_t expected = 0;
  while (expected < kCount) {
    Event e;
    if (q.TryPop(&e)) {
      ASSERT_TRUE(IsTuple(e));
      ASSERT_EQ(std::get<Tuple>(e).seq, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(q.total_pushed(), kCount);
}

}  // namespace
}  // namespace stateslice
