// Round-trip and schema tests for the bench JSON reporter
// (bench/bench_report.h): every BENCH_*.json in the perf trajectory is
// produced by this emitter, so its shape is load-bearing for tooling.
#include "bench/bench_report.h"

#include <cmath>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "gtest/gtest.h"

namespace stateslice::bench {
namespace {

BenchReport MakeSample() {
  BenchReport report;
  report.bench = "fig17_memory";
  report.SetConfig("quick", JsonScalar::Bool(true));
  report.SetConfig("duration_s", JsonScalar::Num(45));
  report.SetConfig("label", JsonScalar::Str("panel \"a\"\nline2"));

  JsonObject& row = report.AddRow();
  Set(&row, "strategy", JsonScalar::Str("State-Slice-Chain"));
  Set(&row, "rate", JsonScalar::Num(20));
  Set(&row, "avg_state_tuples", JsonScalar::Num(1234.5678901234567));
  Set(&row, "max_state_tuples", JsonScalar::Num(2048));
  Set(&row, "comparisons_per_vsec", JsonScalar::Num(1.25e7));
  Set(&row, "throughput_tuples_per_wall_sec", JsonScalar::Num(3.5e6));

  JsonObject& row2 = report.AddRow();
  Set(&row2, "strategy", JsonScalar::Str("Selection-PullUp"));
  Set(&row2, "rate", JsonScalar::Num(0.017999999999999999));
  return report;
}

TEST(BenchReportTest, RoundTripsThroughJson) {
  const BenchReport original = MakeSample();
  const std::optional<BenchReport> parsed = ParseReport(original.ToJson());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, original);
}

TEST(BenchReportTest, RoundTripPreservesExactDoubles) {
  BenchReport report;
  report.bench = "b";
  JsonObject& row = report.AddRow();
  // Values chosen to expose lossy formatting (%.17g must round-trip).
  const double values[] = {0.1, 1.0 / 3.0, 6.02214076e23, -0.0, 1e-300};
  for (size_t i = 0; i < std::size(values); ++i) {
    Set(&row, "v" + std::to_string(i), JsonScalar::Num(values[i]));
  }
  const std::optional<BenchReport> parsed = ParseReport(report.ToJson());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->rows.size(), 1u);
  for (size_t i = 0; i < std::size(values); ++i) {
    const JsonScalar* v = Find(parsed->rows[0], "v" + std::to_string(i));
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->num, values[i]) << "index " << i;
  }
}

TEST(BenchReportTest, EmitsRequiredTopLevelKeys) {
  const std::string json = MakeSample().ToJson();
  for (const char* key : {"\"bench\"", "\"schema_version\"", "\"config\"",
                          "\"rows\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing key " << key;
  }
  const std::optional<BenchReport> parsed = ParseReport(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->bench, "fig17_memory");
  EXPECT_EQ(parsed->schema_version, 1);
}

TEST(BenchReportTest, RowsCarryTheMetricVocabulary) {
  // The trajectory tooling keys on these row fields; renaming one in
  // AddRunMetrics is a schema change and must bump schema_version. Build
  // the row through the real flattener so a rename here fails the test.
  BenchRun run;
  run.stats.input_tuples = 100;
  run.stats.wall_seconds = 0.5;
  JsonObject row;
  AddRunMetrics(&row, run);
  for (const char* key :
       {"input_tuples", "events_processed", "results_delivered",
        "wall_seconds", "throughput_tuples_per_wall_sec",
        "service_rate_modeled", "service_rate_wall", "comparisons_per_vsec",
        "steady_comparisons_per_vsec", "total_comparisons",
        "avg_state_tuples", "max_state_tuples"}) {
    EXPECT_NE(Find(row, key), nullptr) << "missing metric " << key;
  }
  EXPECT_EQ(Find(row, "input_tuples")->num, 100);
  EXPECT_EQ(Find(row, "throughput_tuples_per_wall_sec")->num, 200);
  // The vocabulary must survive a serialize/parse cycle unchanged.
  BenchReport report;
  report.bench = "vocab";
  report.rows.push_back(row);
  const std::optional<BenchReport> parsed = ParseReport(report.ToJson());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->rows[0], row);
}

TEST(BenchReportTest, EscapesAndUnescapesStrings) {
  BenchReport report;
  report.bench = "quotes\"and\\slashes";
  report.SetConfig("text", JsonScalar::Str("tab\there\nnewline\rret"));
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("quotes\\\"and\\\\slashes"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  const std::optional<BenchReport> parsed = ParseReport(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->bench, "quotes\"and\\slashes");
  EXPECT_EQ(Find(parsed->config, "text")->str, "tab\there\nnewline\rret");
}

TEST(BenchReportTest, NonFiniteNumbersSerializeAsNull) {
  BenchReport report;
  report.bench = "b";
  JsonObject& row = report.AddRow();
  Set(&row, "bad", JsonScalar::Num(std::nan("")));
  Set(&row, "big", JsonScalar::Num(HUGE_VAL));
  const std::string json = report.ToJson();
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  const std::optional<BenchReport> parsed = ParseReport(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(std::isnan(Find(parsed->rows[0], "bad")->num));
}

TEST(BenchReportTest, SetOverwritesExistingKeyInPlace) {
  JsonObject obj;
  Set(&obj, "k", JsonScalar::Num(1));
  Set(&obj, "other", JsonScalar::Num(2));
  Set(&obj, "k", JsonScalar::Num(3));
  ASSERT_EQ(obj.size(), 2u);
  EXPECT_EQ(obj[0].first, "k");
  EXPECT_EQ(obj[0].second.num, 3);
}

TEST(BenchReportTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(ParseReport("").has_value());
  EXPECT_FALSE(ParseReport("[]").has_value());
  EXPECT_FALSE(ParseReport("{\"bench\": \"x\"").has_value());  // truncated
  EXPECT_FALSE(ParseReport("{\"rows\": []}").has_value());  // missing header
  EXPECT_FALSE(
      ParseReport("{\"bench\": 3, \"schema_version\": 1}").has_value());
  EXPECT_FALSE(ParseReport("{\"bench\": \"x\", \"schema_version\": 1} junk")
                   .has_value());
}

TEST(BenchReportTest, EmptyReportIsValid) {
  BenchReport report;
  report.bench = "empty";
  const std::optional<BenchReport> parsed = ParseReport(report.ToJson());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->config.empty());
  EXPECT_TRUE(parsed->rows.empty());
}

TEST(BenchReportTest, WriteFileRoundTrips) {
  const BenchReport original = MakeSample();
  const std::string path =
      ::testing::TempDir() + "/BENCH_report_roundtrip.json";
  ASSERT_TRUE(original.WriteFile(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  const std::optional<BenchReport> parsed = ParseReport(contents);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, original);
}

TEST(BenchReportTest, ParseBenchArgsHandlesBothJsonForms) {
  {
    const char* argv[] = {"bench", "--quick", "--json", "out.json"};
    const BenchArgs args = ParseBenchArgs(4, const_cast<char**>(argv));
    EXPECT_TRUE(args.ok);
    EXPECT_TRUE(args.quick);
    EXPECT_EQ(args.json_path, "out.json");
  }
  {
    const char* argv[] = {"bench", "--json=o.json"};
    const BenchArgs args = ParseBenchArgs(2, const_cast<char**>(argv));
    EXPECT_TRUE(args.ok);
    EXPECT_FALSE(args.quick);
    EXPECT_EQ(args.json_path, "o.json");
  }
  {
    const char* argv[] = {"bench", "--bogus"};
    const BenchArgs args = ParseBenchArgs(2, const_cast<char**>(argv));
    EXPECT_FALSE(args.ok);
  }
}

}  // namespace
}  // namespace stateslice::bench
