#include "src/query/parser.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace stateslice {
namespace {

using ::stateslice::testing::A;
using ::stateslice::testing::B;

TEST(ParserTest, PaperMotivatingExampleQ1) {
  const ParseResult r = ParseQuery(
      "SELECT A.* FROM Temperature A, Humidity B "
      "WHERE A.LocationId = B.LocationId WINDOW 1 min");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.window.kind, WindowKind::kTime);
  EXPECT_EQ(r.query.window.extent, SecondsToTicks(60));
  EXPECT_TRUE(r.query.Unfiltered());
}

TEST(ParserTest, PaperMotivatingExampleQ2) {
  const ParseResult r = ParseQuery(
      "SELECT A.* FROM Temperature A, Humidity B "
      "WHERE A.LocationId = B.LocationId AND A.Value > 0.7 WINDOW 60 min");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.window.extent, SecondsToTicks(3600));
  ASSERT_FALSE(r.query.selection_a.IsTrue());
  EXPECT_TRUE(r.query.selection_a.Eval(A(1, 0.0, 0, 0.8)));
  EXPECT_FALSE(r.query.selection_a.Eval(A(1, 0.0, 0, 0.6)));
  EXPECT_TRUE(r.query.selection_b.IsTrue());
}

TEST(ParserTest, SecondsAreDefaultUnit) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k WINDOW 5");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.window.extent, SecondsToTicks(5));
}

TEST(ParserTest, MillisecondsUnit) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k WINDOW 250 ms");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.window.extent, SecondsToTicks(0.25));
}

TEST(ParserTest, CountWindows) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k WINDOW 100 rows");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.window.kind, WindowKind::kCount);
  EXPECT_EQ(r.query.window.extent, 100);
}

TEST(ParserTest, FilterOnStreamB) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k AND B.Value < 0.5 "
      "WINDOW 10 s");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.query.selection_a.IsTrue());
  EXPECT_FALSE(r.query.selection_b.IsTrue());
  EXPECT_TRUE(r.query.selection_b.Eval(B(1, 0.0, 0, 0.4)));
}

TEST(ParserTest, MultipleFiltersAndTogether) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k AND A.v > 0.2 "
      "AND A.v < 0.8 WINDOW 10 s");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.query.selection_a.Eval(A(1, 0.0, 0, 0.5)));
  EXPECT_FALSE(r.query.selection_a.Eval(A(1, 0.0, 0, 0.9)));
  EXPECT_FALSE(r.query.selection_a.Eval(A(1, 0.0, 0, 0.1)));
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  const ParseResult r = ParseQuery(
      "select * from S1 a, S2 b where a.k = b.k window 3 sec");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.window.extent, SecondsToTicks(3));
}

TEST(ParserTest, ReversedJoinOrderAccepted) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE B.k = A.k WINDOW 3 s");
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(ParserTest, StreamNamesUsableWithoutAliases) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM Temp, Hum WHERE Temp.k = Hum.k AND Temp.v > 0.5 "
      "WINDOW 2 s");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.query.selection_a.IsTrue());
}

TEST(ParserTest, ErrorMissingWindow) {
  const ParseResult r =
      ParseQuery("SELECT * FROM S1 A, S2 B WHERE A.k = B.k");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("window"), std::string::npos);
}

TEST(ParserTest, ErrorJoinOnSameStream) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE A.k = A.k WINDOW 2 s");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("both streams"), std::string::npos);
}

TEST(ParserTest, ErrorUnknownAliasInFilter) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k AND C.v > 1 WINDOW 2 s");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown alias"), std::string::npos);
}

TEST(ParserTest, ErrorBadNumber) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k WINDOW abc s");
  EXPECT_FALSE(r.ok);
}

TEST(ParserTest, HourUnits) {
  for (const char* unit : {"h", "hr", "hrs", "hour", "hours"}) {
    const ParseResult r = ParseQuery(
        std::string("SELECT * FROM S1 A, S2 B WHERE A.k = B.k WINDOW 2 ") +
        unit);
    ASSERT_TRUE(r.ok) << unit << ": " << r.error;
    EXPECT_EQ(r.query.window.extent, SecondsToTicks(2 * 3600)) << unit;
  }
}

TEST(ParserTest, ErrorNonPositiveWindow) {
  // Zero, negative, and rounds-to-zero windows all surface as ok=false
  // with a message — never a CHECK abort.
  for (const char* window : {"0 s", "-5 min", "0 rows", "-3 hours",
                             "0.4 rows"}) {
    const ParseResult r = ParseQuery(
        std::string("SELECT * FROM S1 A, S2 B WHERE A.k = B.k WINDOW ") +
        window);
    EXPECT_FALSE(r.ok) << window;
    EXPECT_NE(r.error.find("window must be positive"), std::string::npos)
        << window << ": " << r.error;
  }
}

TEST(ParserTest, ToCqlRoundTrip) {
  // Parse -> ToCql -> parse reproduces window and selections exactly.
  const char* texts[] = {
      "SELECT A.* FROM Temperature A, Humidity B "
      "WHERE A.LocationId = B.LocationId WINDOW 1 min",
      "SELECT A.* FROM T A, H B WHERE A.loc = B.loc AND A.Value > 0.7 "
      "WINDOW 60 min",
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k AND A.v > 0.25 "
      "AND A.v < 0.75 AND B.w < 0.5 WINDOW 250 ms",
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k WINDOW 100 rows",
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k WINDOW 3 hours",
  };
  for (const char* text : texts) {
    const ParseResult first = ParseQuery(text);
    ASSERT_TRUE(first.ok) << text << ": " << first.error;
    const std::optional<std::string> cql = first.query.ToCql();
    ASSERT_TRUE(cql.has_value()) << text;
    const ParseResult second = ParseQuery(*cql);
    ASSERT_TRUE(second.ok) << *cql << ": " << second.error;
    EXPECT_EQ(second.query.window, first.query.window) << *cql;
    EXPECT_EQ(second.query.selection_a.description(),
              first.query.selection_a.description())
        << *cql;
    EXPECT_EQ(second.query.selection_b.description(),
              first.query.selection_b.description())
        << *cql;
  }
}

TEST(ParserTest, ToCqlRejectsNonDialectQueries) {
  ContinuousQuery q;
  q.window = WindowSpec::TimeSeconds(10);
  q.selection_a = Predicate::Range(0.2, 0.8);  // not a parser conjunct
  EXPECT_FALSE(q.ToCql().has_value());
  q.selection_a = Predicate();
  q.window.extent = 1;  // one tick: finer than the millisecond unit
  EXPECT_FALSE(q.ToCql().has_value());
}

TEST(ParserTest, ErrorUnknownUnit) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k WINDOW 5 lightyears");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unit"), std::string::npos);
}

TEST(ParserTest, ErrorTrailingGarbage) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k WINDOW 5 s GROUP BY x");
  EXPECT_FALSE(r.ok);
}

TEST(ParserTest, ParsedQueryRunsEndToEnd) {
  // Full integration: parse two queries, share them with a state-slice
  // chain, run a workload, verify against the oracle.
  ParseResult r1 = ParseQuery(
      "SELECT * FROM T A, H B WHERE A.loc = B.loc WINDOW 2 s");
  ParseResult r2 = ParseQuery(
      "SELECT * FROM T A, H B WHERE A.loc = B.loc AND A.Value > 0.5 "
      "WINDOW 6 s");
  ASSERT_TRUE(r1.ok && r2.ok);
  std::vector<ContinuousQuery> queries = {r1.query, r2.query};
  queries[0].id = 0;
  queries[0].name = "Q1";
  queries[1].id = 1;
  queries[1].name = "Q2";

  WorkloadSpec spec;
  spec.duration_s = 8;
  const Workload workload = GenerateWorkload(spec);
  BuildOptions options;
  options.condition = workload.condition;
  options.collect_results = true;
  BuiltPlan built =
      BuildStateSlicePlan(queries, BuildMemOptChain(queries), options);
  testing::RunPlan(&built, workload);
  for (const ContinuousQuery& q : queries) {
    EXPECT_EQ(built.collectors[q.id]->ResultMultiset(),
              testing::OracleJoin(workload.stream_a, workload.stream_b,
                                  workload.condition, q));
  }
}

}  // namespace
}  // namespace stateslice
