#include "src/query/parser.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace stateslice {
namespace {

using ::stateslice::testing::A;
using ::stateslice::testing::B;

TEST(ParserTest, PaperMotivatingExampleQ1) {
  const ParseResult r = ParseQuery(
      "SELECT A.* FROM Temperature A, Humidity B "
      "WHERE A.LocationId = B.LocationId WINDOW 1 min");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.window.kind, WindowKind::kTime);
  EXPECT_EQ(r.query.window.extent, SecondsToTicks(60));
  EXPECT_TRUE(r.query.Unfiltered());
}

TEST(ParserTest, PaperMotivatingExampleQ2) {
  const ParseResult r = ParseQuery(
      "SELECT A.* FROM Temperature A, Humidity B "
      "WHERE A.LocationId = B.LocationId AND A.Value > 0.7 WINDOW 60 min");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.window.extent, SecondsToTicks(3600));
  ASSERT_FALSE(r.query.selection_a.IsTrue());
  EXPECT_TRUE(r.query.selection_a.Eval(A(1, 0.0, 0, 0.8)));
  EXPECT_FALSE(r.query.selection_a.Eval(A(1, 0.0, 0, 0.6)));
  EXPECT_TRUE(r.query.selection_b.IsTrue());
}

TEST(ParserTest, SecondsAreDefaultUnit) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k WINDOW 5");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.window.extent, SecondsToTicks(5));
}

TEST(ParserTest, MillisecondsUnit) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k WINDOW 250 ms");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.window.extent, SecondsToTicks(0.25));
}

TEST(ParserTest, CountWindows) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k WINDOW 100 rows");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.window.kind, WindowKind::kCount);
  EXPECT_EQ(r.query.window.extent, 100);
}

TEST(ParserTest, FilterOnStreamB) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k AND B.Value < 0.5 "
      "WINDOW 10 s");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.query.selection_a.IsTrue());
  EXPECT_FALSE(r.query.selection_b.IsTrue());
  EXPECT_TRUE(r.query.selection_b.Eval(B(1, 0.0, 0, 0.4)));
}

TEST(ParserTest, MultipleFiltersAndTogether) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k AND A.v > 0.2 "
      "AND A.v < 0.8 WINDOW 10 s");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.query.selection_a.Eval(A(1, 0.0, 0, 0.5)));
  EXPECT_FALSE(r.query.selection_a.Eval(A(1, 0.0, 0, 0.9)));
  EXPECT_FALSE(r.query.selection_a.Eval(A(1, 0.0, 0, 0.1)));
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  const ParseResult r = ParseQuery(
      "select * from S1 a, S2 b where a.k = b.k window 3 sec");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.window.extent, SecondsToTicks(3));
}

TEST(ParserTest, ReversedJoinOrderAccepted) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE B.k = A.k WINDOW 3 s");
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(ParserTest, StreamNamesUsableWithoutAliases) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM Temp, Hum WHERE Temp.k = Hum.k AND Temp.v > 0.5 "
      "WINDOW 2 s");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.query.selection_a.IsTrue());
}

TEST(ParserTest, ErrorMissingWindow) {
  const ParseResult r =
      ParseQuery("SELECT * FROM S1 A, S2 B WHERE A.k = B.k");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("window"), std::string::npos);
}

TEST(ParserTest, ErrorJoinOnSameStream) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE A.k = A.k WINDOW 2 s");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("both streams"), std::string::npos);
}

TEST(ParserTest, ErrorUnknownAliasInFilter) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k AND C.v > 1 WINDOW 2 s");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown alias"), std::string::npos);
}

TEST(ParserTest, ErrorBadNumber) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k WINDOW abc s");
  EXPECT_FALSE(r.ok);
}

TEST(ParserTest, HourUnits) {
  for (const char* unit : {"h", "hr", "hrs", "hour", "hours"}) {
    const ParseResult r = ParseQuery(
        std::string("SELECT * FROM S1 A, S2 B WHERE A.k = B.k WINDOW 2 ") +
        unit);
    ASSERT_TRUE(r.ok) << unit << ": " << r.error;
    EXPECT_EQ(r.query.window.extent, SecondsToTicks(2 * 3600)) << unit;
  }
}

TEST(ParserTest, ErrorNonPositiveWindow) {
  // Zero, negative, and rounds-to-zero windows all surface as ok=false
  // with a message — never a CHECK abort.
  for (const char* window : {"0 s", "-5 min", "0 rows", "-3 hours",
                             "0.4 rows"}) {
    const ParseResult r = ParseQuery(
        std::string("SELECT * FROM S1 A, S2 B WHERE A.k = B.k WINDOW ") +
        window);
    EXPECT_FALSE(r.ok) << window;
    EXPECT_NE(r.error.find("window must be positive"), std::string::npos)
        << window << ": " << r.error;
  }
}

TEST(ParserTest, ErrorNonFiniteOrOverflowingWindow) {
  // Regression pin for a fuzz finding: NaN/inf magnitudes and magnitudes
  // whose tick/row conversion overflows int64 used to reach the
  // static_cast in SecondsToTicks/Count — undefined behavior that only
  // looked rejected because x86 happens to produce INT64_MIN. They must be
  // rejected by validation, with ok=false and a message.
  // (Exponent forms like "1e300" tokenize as two tokens and are rejected
  // earlier as an unknown unit, so the overflow pins use digit strings.)
  for (const char* window :
       {"nan s", "inf s", "-inf min",
        "1000000000000000000000000000 s",        // 1e27 s  -> 1e33 ticks
        "9000000000000000000000000000000 rows",  // 9e30 rows
        "100000000000000000 hours"}) {           // 1e17 h  -> 3.6e26 ticks
    const ParseResult r = ParseQuery(
        std::string("SELECT * FROM S1 A, S2 B WHERE A.k = B.k WINDOW ") +
        window);
    EXPECT_FALSE(r.ok) << window;
    EXPECT_NE(r.error.find("window magnitude out of range"),
              std::string::npos)
        << window << ": " << r.error;
  }
}

TEST(ParserTest, LargeButRepresentableWindowStillParses) {
  // Just inside the validation bound: a century-scale window is absurd but
  // representable, and must not be caught by the overflow rejection.
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k WINDOW 1000000000 s");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.window.extent, SecondsToTicks(1e9));
}

TEST(ParserTest, ToCqlRoundTrip) {
  // Parse -> ToCql -> parse reproduces window and selections exactly.
  const char* texts[] = {
      "SELECT A.* FROM Temperature A, Humidity B "
      "WHERE A.LocationId = B.LocationId WINDOW 1 min",
      "SELECT A.* FROM T A, H B WHERE A.loc = B.loc AND A.Value > 0.7 "
      "WINDOW 60 min",
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k AND A.v > 0.25 "
      "AND A.v < 0.75 AND B.w < 0.5 WINDOW 250 ms",
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k WINDOW 100 rows",
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k WINDOW 3 hours",
  };
  for (const char* text : texts) {
    const ParseResult first = ParseQuery(text);
    ASSERT_TRUE(first.ok) << text << ": " << first.error;
    const std::optional<std::string> cql = first.query.ToCql();
    ASSERT_TRUE(cql.has_value()) << text;
    const ParseResult second = ParseQuery(*cql);
    ASSERT_TRUE(second.ok) << *cql << ": " << second.error;
    EXPECT_EQ(second.query.window, first.query.window) << *cql;
    EXPECT_EQ(second.query.selection_a.description(),
              first.query.selection_a.description())
        << *cql;
    EXPECT_EQ(second.query.selection_b.description(),
              first.query.selection_b.description())
        << *cql;
  }
}

TEST(ParserTest, ToCqlRejectsNonDialectQueries) {
  ContinuousQuery q;
  q.window = WindowSpec::TimeSeconds(10);
  q.selection_a = Predicate::Range(0.2, 0.8);  // not a parser conjunct
  EXPECT_FALSE(q.ToCql().has_value());
  q.selection_a = Predicate();
  q.window.extent = 1;  // one tick: finer than the millisecond unit
  EXPECT_FALSE(q.ToCql().has_value());
}

TEST(ParserTest, ErrorUnknownUnit) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k WINDOW 5 lightyears");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unit"), std::string::npos);
}

TEST(ParserTest, ErrorTrailingGarbage) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k WINDOW 5 s GROUP BY x");
  EXPECT_FALSE(r.ok);
}

TEST(ParserTest, ThreeWayFromList) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM Routes R, Trains T, Buses U "
      "WHERE R.k = T.k AND T.k = U.k AND U.Value > 0.5 WINDOW 10 s");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.num_streams(), 3);
  EXPECT_EQ(r.query.stream_names,
            (std::vector<std::string>{"Routes", "Trains", "Buses"}));
  EXPECT_EQ(r.query.join_anchors, (std::vector<int>{0, 1}));
  EXPECT_TRUE(r.query.selection_a.IsTrue());
  EXPECT_TRUE(r.query.selection_b.IsTrue());
  ASSERT_EQ(r.query.extra_selections.size(), 1u);
  EXPECT_FALSE(r.query.extra_selections[0].IsTrue());
}

TEST(ParserTest, FourWayNonAdjacentAnchors) {
  // D joins B (not C): the left-deep tree anchors stream 3 to stream 1.
  const ParseResult r = ParseQuery(
      "SELECT * FROM A A, B B, C C, D D "
      "WHERE A.k = B.k AND B.k = C.k AND D.k = B.k WINDOW 5 s");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.num_streams(), 4);
  EXPECT_EQ(r.query.join_anchors, (std::vector<int>{0, 1, 1}));
}

TEST(ParserTest, JoinConditionsInterleaveWithFilters) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM A A, B B, C C "
      "WHERE A.v > 0.1 AND C.k = A.k AND B.k = A.k AND C.v < 0.9 "
      "WINDOW 10 s");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.join_anchors, (std::vector<int>{0, 0}));
  EXPECT_FALSE(r.query.selection_a.IsTrue());
  ASSERT_EQ(r.query.extra_selections.size(), 1u);
  EXPECT_FALSE(r.query.extra_selections[0].IsTrue());
}

TEST(ParserTest, ErrorDuplicateStreamName) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S1 B WHERE A.k = B.k WINDOW 2 s");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("duplicate stream name 'S1'"), std::string::npos)
      << r.error;
}

TEST(ParserTest, ErrorDuplicateStreamAlias) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 X, S2 X WHERE X.k = X.k WINDOW 2 s");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("duplicate stream alias 'X'"), std::string::npos)
      << r.error;
}

TEST(ParserTest, ErrorAliasShadowsStreamName) {
  // An alias equal to another entry's stream name would make qualified
  // references ambiguous (IndexOf binds by FROM order); both directions
  // are rejected.
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 S2, S2 S3 WHERE S3.k = S1.k WINDOW 2 s");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("ambiguous stream reference 'S2'"),
            std::string::npos)
      << r.error;
  const ParseResult rev = ParseQuery(
      "SELECT * FROM S1 A, A B WHERE B.k = A.k WINDOW 2 s");
  EXPECT_FALSE(rev.ok);
  EXPECT_NE(rev.error.find("ambiguous stream reference 'A'"),
            std::string::npos)
      << rev.error;
}

TEST(ParserTest, ErrorFilterOnStreamOutsideFromList) {
  // A selection referencing a stream that is not in the FROM list is a
  // user error surfaced as ok=false, for binary and N-way lists alike.
  const ParseResult binary = ParseQuery(
      "SELECT * FROM S1 A, S2 B WHERE A.k = B.k AND Z.v > 1 WINDOW 2 s");
  EXPECT_FALSE(binary.ok);
  EXPECT_NE(binary.error.find("unknown alias 'Z'"), std::string::npos)
      << binary.error;
  const ParseResult three = ParseQuery(
      "SELECT * FROM S1 A, S2 B, S3 C "
      "WHERE A.k = B.k AND B.k = C.k AND Q.v > 1 WINDOW 2 s");
  EXPECT_FALSE(three.ok);
  EXPECT_NE(three.error.find("unknown alias 'Q'"), std::string::npos)
      << three.error;
}

TEST(ParserTest, ErrorDisconnectedStream) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B, S3 C WHERE A.k = B.k WINDOW 2 s");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("'S3' is not connected"), std::string::npos)
      << r.error;
}

TEST(ParserTest, ErrorDoublyJoinedStream) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B, S3 C "
      "WHERE A.k = C.k AND B.k = C.k AND A.k = B.k WINDOW 2 s");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("more than one join condition"), std::string::npos)
      << r.error;
}

TEST(ParserTest, ErrorCountWindowBeyondTwoStreams) {
  const ParseResult r = ParseQuery(
      "SELECT * FROM S1 A, S2 B, S3 C "
      "WHERE A.k = B.k AND B.k = C.k WINDOW 10 rows");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("binary-only"), std::string::npos) << r.error;
}

TEST(ParserTest, ErrorTooManyStreams) {
  std::string text = "SELECT * FROM S0 S0";
  for (int s = 1; s <= kMaxStreams; ++s) {
    text += ", S" + std::to_string(s) + " S" + std::to_string(s);
  }
  text += " WHERE S0.k = S1.k WINDOW 2 s";
  const ParseResult r = ParseQuery(text);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("stream limit"), std::string::npos) << r.error;
}

TEST(ParserTest, MultiwayToCqlRoundTrip) {
  const char* texts[] = {
      "SELECT * FROM R R, T T, U U WHERE R.k = T.k AND T.k = U.k "
      "AND U.Value > 0.5 WINDOW 10 s",
      "SELECT * FROM A A, B B, C C, D D WHERE A.k = B.k AND B.k = C.k "
      "AND D.k = B.k AND A.Value < 0.25 WINDOW 1500 ms",
  };
  for (const char* text : texts) {
    const ParseResult first = ParseQuery(text);
    ASSERT_TRUE(first.ok) << text << ": " << first.error;
    const std::optional<std::string> cql = first.query.ToCql();
    ASSERT_TRUE(cql.has_value()) << text;
    const ParseResult second = ParseQuery(*cql);
    ASSERT_TRUE(second.ok) << *cql << ": " << second.error;
    EXPECT_EQ(second.query.window, first.query.window) << *cql;
    EXPECT_EQ(second.query.stream_names, first.query.stream_names) << *cql;
    EXPECT_EQ(second.query.join_anchors, first.query.join_anchors) << *cql;
    ASSERT_EQ(second.query.num_streams(), first.query.num_streams());
    for (int s = 0; s < first.query.num_streams(); ++s) {
      EXPECT_EQ(second.query.selection(s).description(),
                first.query.selection(s).description())
          << *cql << " stream " << s;
    }
  }
}

TEST(ParserTest, ParsedMultiwayQueryRunsEndToEnd) {
  // Full integration: parse a 3-way query, build its tree, run a 3-stream
  // workload, verify against the brute-force oracle.
  ParseResult r = ParseQuery(
      "SELECT * FROM A A, B B, C C WHERE A.loc = B.loc AND B.loc = C.loc "
      "AND C.Value > 0.3 WINDOW 3 s");
  ASSERT_TRUE(r.ok) << r.error;
  std::vector<ContinuousQuery> queries = {r.query};
  queries[0].id = 0;
  queries[0].name = "Q1";

  WorkloadSpec spec;
  spec.duration_s = 10;
  const MultiWorkload workload = GenerateMultiWorkload(spec, 3);
  BuildOptions options;
  options.condition = workload.condition;
  options.collect_results = true;
  BuiltPlan built =
      BuildStateSlicePlan(queries, BuildMemOptTree(queries), options);
  StreamSource sa("A", workload.streams[0]);
  StreamSource sb("B", workload.streams[1]);
  StreamSource sc("C", workload.streams[2]);
  Executor exec(built.plan.get(), {{&sa, built.entry},
                                   {&sb, built.entry},
                                   {&sc, built.entry}});
  exec.Run();
  EXPECT_EQ(built.collectors[0]->ResultMultiset(),
            testing::MultiwayOracle(
                {&workload.streams[0], &workload.streams[1],
                 &workload.streams[2]},
                workload.condition, queries[0]));
}

TEST(ParserTest, ParsedQueryRunsEndToEnd) {
  // Full integration: parse two queries, share them with a state-slice
  // chain, run a workload, verify against the oracle.
  ParseResult r1 = ParseQuery(
      "SELECT * FROM T A, H B WHERE A.loc = B.loc WINDOW 2 s");
  ParseResult r2 = ParseQuery(
      "SELECT * FROM T A, H B WHERE A.loc = B.loc AND A.Value > 0.5 "
      "WINDOW 6 s");
  ASSERT_TRUE(r1.ok && r2.ok);
  std::vector<ContinuousQuery> queries = {r1.query, r2.query};
  queries[0].id = 0;
  queries[0].name = "Q1";
  queries[1].id = 1;
  queries[1].name = "Q2";

  WorkloadSpec spec;
  spec.duration_s = 8;
  const Workload workload = GenerateWorkload(spec);
  BuildOptions options;
  options.condition = workload.condition;
  options.collect_results = true;
  BuiltPlan built =
      BuildStateSlicePlan(queries, BuildMemOptChain(queries), options);
  testing::RunPlan(&built, workload);
  for (const ContinuousQuery& q : queries) {
    EXPECT_EQ(built.collectors[q.id]->ResultMultiset(),
              testing::OracleJoin(workload.stream_a, workload.stream_b,
                                  workload.condition, q));
  }
}

}  // namespace
}  // namespace stateslice
