// Equivalence and consistency suite for the hash-indexed probe path
// (src/operators/join_state.h).
//
// The index is a pure execution-strategy change: with it on (the default
// for kEquiKey operators) or forced off (BuildOptions::use_key_index =
// false, the nested-loop baseline), every delivered result multiset — and
// every paper-unit cost counter — must be identical, across equi/modsum
// conditions, time/count windows, deterministic/parallel modes, plan
// migration churn, and N-way trees. State-level fuzz additionally pins the
// index's internal invariants (CheckIndexConsistency) under random
// insert/purge/probe/migration op sequences.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "src/stateslice.h"
#include "tests/test_util.h"

namespace stateslice {
namespace {

using ::stateslice::testing::A;
using ::stateslice::testing::DrawFuzzConfig;
using ::stateslice::testing::FuzzConfig;
using ::stateslice::testing::MultiwayOracle;
using ::stateslice::testing::OracleJoin;
using ::stateslice::testing::RunPlan;

// Generates a workload and rewrites it into an equi join (shared
// RekeyForEquiJoin key model: uniform keys over [0, key_domain),
// condition kEquiKey, S1 = 1/key_domain).
Workload EquiWorkload(const WorkloadSpec& spec, int64_t key_domain,
                      uint64_t key_seed) {
  Workload w = GenerateWorkload(spec);
  RekeyForEquiJoin(&w, key_domain, key_seed);
  return w;
}

// ---------------------------------------------------------------------
// State-level fuzz: an indexed state and a plain one fed the identical
// random op sequence must emit identical probe matches, and the index must
// stay internally consistent through purges, evictions, and migration
// splices.
// ---------------------------------------------------------------------

class StateFuzzTest : public ::testing::TestWithParam<uint64_t> {};

// Emission callback that appends each match to *out (the callback-form
// replacement for the removed copy-out Probe overloads).
template <typename EntryT>
auto Collect(std::vector<EntryT>* out) {
  return [out](const EntryT& e) { out->push_back(e); };
}

TEST_P(StateFuzzTest, IndexedMatchesPlainUnderRandomOps) {
  Rng rng(GetParam() * 2654435761u);
  const bool count_window = rng.NextBounded(2) == 1;
  const WindowSpec window =
      count_window
          ? WindowSpec::Count(1 + static_cast<int64_t>(rng.NextBounded(40)))
          : WindowSpec::TimeSeconds(
                0.5 + 0.5 * static_cast<double>(rng.NextBounded(8)));
  const int64_t key_domain = 1 + static_cast<int64_t>(rng.NextBounded(32));
  const JoinCondition equi = JoinCondition::EquiKey();

  JoinState indexed(window);
  indexed.EnableKeyIndex();
  JoinState plain(window);

  double now_s = 0.0;
  uint32_t seq = 0;
  for (int op = 0; op < 800; ++op) {
    const uint64_t pick = rng.NextBounded(100);
    now_s += 0.001 * static_cast<double>(rng.NextBounded(200));
    const int64_t key =
        static_cast<int64_t>(rng.NextBounded(
            static_cast<uint64_t>(key_domain)));
    if (pick < 55) {
      const Tuple t = A(++seq, now_s, key);
      std::vector<Tuple> ev_i, ev_p;
      indexed.Insert(t, &ev_i);
      plain.Insert(t, &ev_p);
      ASSERT_EQ(ev_i.size(), ev_p.size());
    } else if (pick < 75) {
      std::vector<Tuple> p_i, p_p;
      const uint64_t c_i = indexed.Purge(SecondsToTicks(now_s), &p_i);
      const uint64_t c_p = plain.Purge(SecondsToTicks(now_s), &p_p);
      ASSERT_EQ(c_i, c_p);
      ASSERT_EQ(p_i.size(), p_p.size());
    } else if (pick < 95) {
      const Tuple probe = testing::B(++seq, now_s, key);
      std::vector<Tuple> m_i, m_p;
      const ProbeStats s_i = indexed.Probe(probe, equi, Collect(&m_i));
      const ProbeStats s_p = plain.Probe(probe, equi, Collect(&m_p));
      ASSERT_EQ(s_i.comparisons, s_p.comparisons);  // logical unit equal
      ASSERT_EQ(m_i.size(), m_p.size());
      for (size_t k = 0; k < m_i.size(); ++k) {
        ASSERT_TRUE(SameTuple(m_i[k], m_p[k])) << "order diverged at " << k;
      }
    } else {
      // Migration splice: TakeAll + PrependOlder round-trip (what
      // MergeSlices does), which must rebuild the index.
      const std::vector<Tuple> all = indexed.TakeAll();
      indexed.PrependOlder(all);
      ASSERT_EQ(indexed.size(), plain.size());
    }
    if (op % 97 == 0) indexed.CheckIndexConsistency();
  }
  indexed.CheckIndexConsistency();
}

INSTANTIATE_TEST_SUITE_P(Seeds, StateFuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{25}));

TEST(StateFuzzTest, CompositeIndexAnchorsCorrectConstituent) {
  // Composite entries are indexed by their anchor constituent's key.
  CompositeJoinState indexed(WindowSpec::TimeSeconds(10));
  indexed.EnableKeyIndex(/*anchor=*/1);
  CompositeJoinState plain(WindowSpec::TimeSeconds(10));
  Rng rng(99);
  for (uint32_t i = 0; i < 200; ++i) {
    CompositeTuple c{A(i, 0.01 * i, static_cast<int64_t>(rng.NextBounded(8))),
                     testing::B(i, 0.01 * i,
                                static_cast<int64_t>(rng.NextBounded(8)))};
    indexed.Insert(c);
    plain.Insert(c);
  }
  for (int64_t key = 0; key < 8; ++key) {
    const Tuple probe = testing::MakeTuple(2, 1000, 2.5, key);
    std::vector<CompositeTuple> m_i, m_p;
    indexed.Probe(probe, JoinCondition::EquiKey(), Collect(&m_i), /*anchor=*/1);
    plain.Probe(probe, JoinCondition::EquiKey(), Collect(&m_p), /*anchor=*/1);
    ASSERT_EQ(m_i.size(), m_p.size()) << "key " << key;
    for (size_t k = 0; k < m_i.size(); ++k) {
      ASSERT_EQ(m_i[k].b.seq, m_p[k].b.seq);
      ASSERT_EQ(m_i[k].b.key, key);
    }
  }
  indexed.CheckIndexConsistency();
}

// ---------------------------------------------------------------------
// Plan-level fuzz: indexed == nested-loop == oracle for random shared
// chains, under equi and modsum conditions, both execution modes.
// ---------------------------------------------------------------------

class PlanEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanEquivalenceTest, IndexedMatchesNestedLoopAndOracle) {
  const uint64_t seed = GetParam();
  const FuzzConfig config = DrawFuzzConfig(seed);
  SCOPED_TRACE(config.DebugString());

  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = config.rate;
  spec.duration_s = 8;
  spec.join_selectivity = config.s1;
  spec.seed = config.workload_seed;
  // Odd seeds: equi-join over a random key domain (the indexed fast path);
  // even seeds: the generator's modsum condition (dispatch must fall back).
  const int64_t domains[] = {4, 64, 1024};
  const Workload workload =
      seed % 2 == 1 ? EquiWorkload(spec, domains[seed % 3], seed * 31)
                    : GenerateWorkload(spec);

  BuildOptions options;
  options.condition = workload.condition;
  options.collect_results = true;
  options.use_lineage = config.use_lineage;

  BuiltPlan indexed = BuildStateSlicePlan(config.queries, config.chain,
                                          options);
  const RunStats indexed_stats = RunPlan(&indexed, workload);

  options.use_key_index = false;
  BuiltPlan nested = BuildStateSlicePlan(config.queries, config.chain,
                                         options);
  const RunStats nested_stats = RunPlan(&nested, workload);

  options.use_key_index = true;
  BuiltPlan parallel = BuildStateSlicePlan(config.queries, config.chain,
                                           options);
  ExecutorOptions exec_options;
  exec_options.mode = ExecutionMode::kParallel;
  exec_options.worker_threads = 2 + static_cast<int>(seed % 3);
  RunPlan(&parallel, workload, exec_options);

  // The paper-unit cost counters must not notice the index at all.
  for (const CostCategory cat :
       {CostCategory::kProbe, CostCategory::kPurge, CostCategory::kUnion}) {
    EXPECT_EQ(indexed_stats.cost.Get(cat), nested_stats.cost.Get(cat))
        << CostCounters::Name(cat);
  }
  EXPECT_EQ(indexed_stats.cost.Total(), nested_stats.cost.Total());

  for (const ContinuousQuery& q : config.queries) {
    const auto expected = OracleJoin(workload.stream_a, workload.stream_b,
                                     workload.condition, q);
    EXPECT_EQ(indexed.collectors[q.id]->ResultMultiset(), expected)
        << "indexed " << q.DebugString();
    EXPECT_EQ(nested.collectors[q.id]->ResultMultiset(), expected)
        << "nested-loop " << q.DebugString();
    EXPECT_EQ(parallel.collectors[q.id]->ResultMultiset(), expected)
        << "parallel+indexed " << q.DebugString();
    EXPECT_EQ(indexed.collectors[q.id]->TimeSortedResults(),
              nested.collectors[q.id]->TimeSortedResults())
        << q.DebugString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanEquivalenceTest,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

TEST(PlanEquivalenceTest, CountWindowChainsAgree) {
  std::vector<ContinuousQuery> queries(2);
  queries[0].id = 0;
  queries[0].name = "Q1";
  queries[0].window = WindowSpec::Count(5);
  queries[1].id = 1;
  queries[1].name = "Q2";
  queries[1].window = WindowSpec::Count(12);

  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = 25;
  spec.duration_s = 10;
  spec.seed = 21;
  const Workload workload = EquiWorkload(spec, /*key_domain=*/8, 77);

  BuildOptions options;
  options.condition = workload.condition;
  options.collect_results = true;
  BuiltPlan indexed =
      BuildStateSlicePlan(queries, BuildMemOptChain(queries), options);
  RunPlan(&indexed, workload);

  options.use_key_index = false;
  BuiltPlan nested =
      BuildStateSlicePlan(queries, BuildMemOptChain(queries), options);
  RunPlan(&nested, workload);

  for (const ContinuousQuery& q : queries) {
    EXPECT_EQ(indexed.collectors[q.id]->ResultMultiset(),
              nested.collectors[q.id]->ResultMultiset())
        << q.DebugString();
  }
  for (const BuiltSlice& slice : indexed.slices) {
    slice.join->state_a().CheckIndexConsistency();
    slice.join->state_b().CheckIndexConsistency();
  }
}

// ---------------------------------------------------------------------
// Migration churn: random split/merge/add/remove schedules on an indexed
// equi chain keep results exact and the per-slice indexes consistent
// (ValidateBuiltChain checks them after every operation).
// ---------------------------------------------------------------------

class MigrationChurnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MigrationChurnTest, SplitMergeAddRemoveKeepsIndexesConsistent) {
  Rng rng(GetParam() * 104729);
  std::vector<ContinuousQuery> queries(3);
  const double w1 = 1.0 + static_cast<double>(rng.NextBounded(3));
  const double w2 = w1 + 1.0 + static_cast<double>(rng.NextBounded(3));
  const double w3 = w2 + 1.0 + static_cast<double>(rng.NextBounded(3));
  queries[0] = {0, "Q1", WindowSpec::TimeSeconds(w1), {}, {}};
  queries[1] = {1, "Q2", WindowSpec::TimeSeconds(w2), {}, {}};
  queries[2] = {2, "Q3", WindowSpec::TimeSeconds(w3), {}, {}};

  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = 20;
  spec.duration_s = 12;
  spec.seed = rng.NextU64();
  const Workload workload =
      EquiWorkload(spec, /*key_domain=*/1 + rng.NextBounded(24),
                   rng.NextU64());
  BuildOptions options;
  options.condition = workload.condition;
  options.collect_results = true;
  BuiltPlan built =
      BuildStateSlicePlan(queries, BuildMemOptChain(queries), options);

  std::vector<Tuple> merged = MergedArrivals(workload);
  RoundRobinScheduler scheduler(built.plan.get());
  const size_t step = std::max<size_t>(merged.size() / 6, 1);
  int added_query = -1;
  for (size_t i = 0; i < merged.size(); ++i) {
    built.entry->Push(merged[i]);
    scheduler.RunUntilQuiescent();
    if (i % step != step - 1) continue;
    ChainMigrator migrator(&built);
    switch ((i / step) % 4) {
      case 0: {
        const SliceRange r = built.slices[0].join->range();
        if (r.end - r.start > 1) {
          migrator.SplitSlice(
              0, r.start + 1 +
                     static_cast<Duration>(rng.NextBounded(
                         static_cast<uint64_t>(r.end - r.start - 1))));
        }
        break;
      }
      case 1:
        // MergeSlices requires plain-join producers (merging a slice that
        // already owns a router would need nested-router surgery).
        if (built.slices.size() > 1 &&
            built.slices[0].result_producer ==
                static_cast<Operator*>(built.slices[0].join) &&
            built.slices[1].result_producer ==
                static_cast<Operator*>(built.slices[1].join)) {
          migrator.MergeSlices(0);
        }
        break;
      case 2:
        if (added_query < 0) {
          // A window interior to the chain span, so registration splits a
          // slice on a populated, indexed chain.
          added_query = migrator.AddQuery(
              WindowSpec::TimeSeconds((w1 + w2) / 2), "Qlate",
              /*results_from=*/merged[i].timestamp + 1);
        }
        break;
      default:
        if (added_query >= 0) {
          migrator.RemoveQuery(added_query);
          added_query = -1;
        }
        break;
    }
    // ValidateBuiltChain checks chain metadata *and* per-slice index
    // consistency after every mutation.
    ValidateBuiltChain(built, /*check_indexes=*/true);
  }
  built.plan->FinishAll();
  scheduler.RunUntilQuiescent();
  ValidateBuiltChain(built, /*check_indexes=*/true);

  for (const ContinuousQuery& q : queries) {
    EXPECT_EQ(built.collectors[q.id]->ResultMultiset(),
              OracleJoin(workload.stream_a, workload.stream_b,
                         workload.condition, q))
        << q.DebugString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationChurnTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

// ---------------------------------------------------------------------
// N-way trees: equi-join composite probes (anchored key index) agree with
// the nested-loop build and the brute-force oracle.
// ---------------------------------------------------------------------

TEST(MultiwayIndexTest, ThreeWayEquiTreeMatchesNestedLoopAndOracle) {
  std::vector<ContinuousQuery> queries(2);
  queries[0].id = 0;
  queries[0].name = "Q1";
  queries[0].window = WindowSpec::TimeSeconds(2);
  queries[1].id = 1;
  queries[1].name = "Q2";
  queries[1].window = WindowSpec::TimeSeconds(4);
  queries[1].stream_names = {"A", "B", "C"};

  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = 20;
  spec.duration_s = 20;
  spec.seed = 20060912;
  MultiWorkload workload = GenerateMultiWorkload(spec, 3);
  RekeyForEquiJoin(&workload, /*key_domain=*/12, /*key_seed=*/4242);

  auto run_tree = [&](bool use_key_index) {
    BuildOptions options;
    options.condition = workload.condition;
    options.collect_results = true;
    options.use_key_index = use_key_index;
    JoinTreePlan tree;
    for (const TreeLevelQueries& level : TreeLevels(queries)) {
      ChainPlan plan;
      plan.spec = BuildChainSpec(level.local);
      plan.partition.slice_end_boundaries.resize(
          static_cast<size_t>(plan.spec.num_boundaries()));
      for (int k = 0; k < plan.spec.num_boundaries(); ++k) {
        plan.partition.slice_end_boundaries[static_cast<size_t>(k)] = k;
      }
      tree.levels.push_back(std::move(plan));
    }
    BuiltPlan built = BuildStateSlicePlan(queries, tree, options);
    std::vector<StreamSource> sources;
    sources.reserve(workload.streams.size());
    for (size_t s = 0; s < workload.streams.size(); ++s) {
      sources.emplace_back("S" + std::to_string(s), workload.streams[s]);
    }
    std::vector<SourceBinding> bindings;
    for (StreamSource& source : sources) {
      bindings.push_back(SourceBinding{&source, built.entry});
    }
    Executor exec(built.plan.get(), bindings);
    for (CountingSink* sink : built.sinks) exec.AddSink(sink);
    exec.Run();
    return built;
  };

  BuiltPlan indexed = run_tree(true);
  BuiltPlan nested = run_tree(false);
  for (const ContinuousQuery& q : queries) {
    std::vector<const std::vector<Tuple>*> ptrs;
    for (int s = 0; s < q.num_streams(); ++s) {
      ptrs.push_back(&workload.streams[static_cast<size_t>(s)]);
    }
    const auto expected = MultiwayOracle(ptrs, workload.condition, q);
    EXPECT_EQ(indexed.collectors[q.id]->ResultMultiset(), expected)
        << "indexed " << q.DebugString();
    EXPECT_EQ(nested.collectors[q.id]->ResultMultiset(), expected)
        << "nested " << q.DebugString();
  }
  for (const BuiltSlice& slice : indexed.slices) {
    slice.join->state_a().CheckIndexConsistency();
    slice.join->state_b().CheckIndexConsistency();
    slice.join->composite_state().CheckIndexConsistency();
  }
}

}  // namespace
}  // namespace stateslice
