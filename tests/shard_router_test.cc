// ShardRouter: key-affinity routing, punctuation broadcast, the
// ring-then-overflow FIFO spill discipline, the execution token, and the
// close protocol of the sharded execution mode.
#include "src/runtime/shard_router.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/tuple.h"

namespace stateslice {
namespace {

Tuple KeyedTuple(int64_t key, TimePoint ts) {
  Tuple t;
  t.key = key;
  t.timestamp = ts;
  return t;
}

// Drains one shard ring-first-then-overflow-head — the consumer
// discipline every worker follows — returning the event timestamps.
std::vector<TimePoint> DrainShard(ShardRouter* router, int shard) {
  ShardCell& cell = router->cell(shard);
  std::vector<TimePoint> times;
  cell.ring.AssertConsumer();      // single-threaded test: sole consumer
  cell.overflow.AssertConsumer();  // ... and (modeled) token holder
  Event event;
  while (cell.ring.TryPop(&event)) times.push_back(EventTime(event));
  EventRun run;
  while (cell.overflow.TryPopFront(&run)) {
    for (Event& e : run) times.push_back(EventTime(e));
  }
  return times;
}

TEST(ShardRouterTest, KeyAffinityAndCounts) {
  ShardRouterOptions options;
  options.num_shards = 4;
  ShardRouter router(options);
  router.AssertFeeder();  // single-threaded test: trivially the feeder

  // Same key must always land on the same shard.
  for (int64_t key = 0; key < 64; ++key) {
    const int shard = router.ShardOf(key);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    EXPECT_EQ(router.ShardOf(key), shard);
  }

  for (TimePoint t = 0; t < 100; ++t) {
    router.Route(Event(KeyedTuple(t % 16, t)));
  }
  router.FlushPending();
  uint64_t routed = 0;
  for (int s = 0; s < 4; ++s) routed += router.routed(s);
  EXPECT_EQ(routed, 100u);

  // Every shard's drain is timestamp-ordered and the union is complete.
  size_t total = 0;
  for (int s = 0; s < 4; ++s) {
    const std::vector<TimePoint> times = DrainShard(&router, s);
    total += times.size();
    for (size_t i = 1; i < times.size(); ++i) {
      ASSERT_LE(times[i - 1], times[i]) << "shard " << s;
    }
  }
  EXPECT_EQ(total, 100u);
}

TEST(ShardRouterTest, PunctuationsBroadcastToEveryShard) {
  ShardRouterOptions options;
  options.num_shards = 3;
  ShardRouter router(options);
  router.AssertFeeder();

  router.Route(Event(KeyedTuple(7, 1)));
  router.Route(Event(Punctuation{.watermark = 5}));
  router.FlushPending();

  int punctuations = 0;
  for (int s = 0; s < 3; ++s) {
    ShardCell& cell = router.cell(s);
    cell.ring.AssertConsumer();
    Event event;
    while (cell.ring.TryPop(&event)) {
      if (IsPunctuation(event)) ++punctuations;
    }
  }
  EXPECT_EQ(punctuations, 3);
}

TEST(ShardRouterTest, SpillKeepsFifoAcrossRingAndOverflow) {
  // One shard, a 4-event ring, 2-event spill runs: events 0..3 fill the
  // ring, 4.. spill. The drain discipline must see 0,1,2,...,N-1 exactly.
  ShardRouterOptions options;
  options.num_shards = 1;
  options.ring_capacity = 4;
  options.overflow_capacity = 16;
  options.spill_run_length = 2;
  ShardRouter router(options);
  router.AssertFeeder();

  constexpr TimePoint kEvents = 20;
  for (TimePoint t = 0; t < kEvents; ++t) {
    router.Route(Event(KeyedTuple(0, t)));
  }
  router.FlushPending();
  EXPECT_GT(router.spilled_runs(), 0u);

  const std::vector<TimePoint> times = DrainShard(&router, 0);
  ASSERT_EQ(times.size(), static_cast<size_t>(kEvents));
  for (TimePoint t = 0; t < kEvents; ++t) {
    EXPECT_EQ(times[static_cast<size_t>(t)], t);
  }

  // Once the overflow drained, routing returns to the ring lane.
  router.Route(Event(KeyedTuple(0, kEvents)));
  router.FlushPending();
  ShardCell& cell = router.cell(0);
  EXPECT_EQ(cell.ring.size(), 1u);
  EXPECT_TRUE(cell.overflow.empty());
}

TEST(ShardRouterTest, ExecutionTokenSerializesHolders) {
  ShardRouterOptions options;
  options.num_shards = 2;
  ShardRouter router(options);

  EXPECT_TRUE(router.TryAcquireToken(0, /*worker=*/0));
  EXPECT_FALSE(router.TryAcquireToken(0, /*worker=*/1));  // held
  EXPECT_TRUE(router.TryAcquireToken(1, /*worker=*/1));   // other shard free
  router.ReleaseToken(0);
  EXPECT_TRUE(router.TryAcquireToken(0, /*worker=*/1));  // released
  router.ReleaseToken(0);
  router.ReleaseToken(1);
}

TEST(ShardRouterTest, CloseAllFlushesAndCloses) {
  ShardRouterOptions options;
  options.num_shards = 2;
  options.ring_capacity = 2;
  options.spill_run_length = 8;
  ShardRouter router(options);
  router.AssertFeeder();

  // Leave a partial staged run behind, then close: the close must flush it.
  for (TimePoint t = 0; t < 5; ++t) {
    router.Route(Event(KeyedTuple(router.ShardOf(0) == 0 ? 0 : 1, t)));
  }
  EXPECT_FALSE(router.IsClosed(0));
  EXPECT_FALSE(router.IsClosed(1));
  router.CloseAll();
  EXPECT_TRUE(router.IsClosed(0));
  EXPECT_TRUE(router.IsClosed(1));

  size_t drained = 0;
  for (int s = 0; s < 2; ++s) drained += DrainShard(&router, s).size();
  EXPECT_EQ(drained, 5u);
}

}  // namespace
}  // namespace stateslice
