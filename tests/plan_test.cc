#include "src/runtime/plan.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/operators/split.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/sink.h"
#include "tests/test_util.h"

namespace stateslice {
namespace {

using ::stateslice::testing::A;

TEST(QueryPlanTest, WiresEntryToSink) {
  QueryPlan plan;
  auto* fanout = plan.AddOperator(std::make_unique<Fanout>("f"));
  auto* sink = plan.AddOperator(std::make_unique<CountingSink>("s"));
  EventQueue* entry = plan.AddEntryQueue("entry", fanout, 0);
  plan.Connect(fanout, Fanout::kOutPort, sink, 0);
  plan.Start();

  entry->Push(A(1, 1.0));
  RoundRobinScheduler scheduler(&plan);
  scheduler.RunUntilQuiescent();
  EXPECT_EQ(sink->tuple_count(), 1u);
}

TEST(QueryPlanTest, OutputPortBroadcasts) {
  QueryPlan plan;
  auto* fanout = plan.AddOperator(std::make_unique<Fanout>("f"));
  auto* s1 = plan.AddOperator(std::make_unique<CountingSink>("s1"));
  auto* s2 = plan.AddOperator(std::make_unique<CountingSink>("s2"));
  EventQueue* entry = plan.AddEntryQueue("entry", fanout, 0);
  plan.Connect(fanout, Fanout::kOutPort, s1, 0);
  plan.Connect(fanout, Fanout::kOutPort, s2, 0);
  plan.Start();

  entry->Push(A(1, 1.0));
  entry->Push(A(2, 2.0));
  RoundRobinScheduler scheduler(&plan);
  scheduler.RunUntilQuiescent();
  EXPECT_EQ(s1->tuple_count(), 2u);
  EXPECT_EQ(s2->tuple_count(), 2u);
}

TEST(QueryPlanTest, TotalStateAndQueueSizes) {
  QueryPlan plan;
  auto* fanout = plan.AddOperator(std::make_unique<Fanout>("f"));
  auto* sink = plan.AddOperator(std::make_unique<CountingSink>("s"));
  EventQueue* entry = plan.AddEntryQueue("entry", fanout, 0);
  plan.Connect(fanout, Fanout::kOutPort, sink, 0);
  plan.Start();
  entry->Push(A(1, 1.0));
  EXPECT_EQ(plan.TotalQueueSize(), 1u);
  EXPECT_EQ(plan.TotalStateSize(), 0u);  // sinks/fanouts are stateless
}

TEST(QueryPlanTest, ToDotMentionsOperatorsAndEdges) {
  QueryPlan plan;
  auto* fanout = plan.AddOperator(std::make_unique<Fanout>("fan"));
  auto* sink = plan.AddOperator(std::make_unique<CountingSink>("snk"));
  plan.AddEntryQueue("entry", fanout, 0);
  plan.Connect(fanout, Fanout::kOutPort, sink, 0);
  const std::string dot = plan.ToDot();
  EXPECT_NE(dot.find("\"fan\""), std::string::npos);
  EXPECT_NE(dot.find("\"snk\""), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(QueryPlanDeathTest, DoubleStartAborts) {
  QueryPlan plan;
  plan.AddOperator(std::make_unique<Fanout>("f"));
  plan.Start();
  EXPECT_DEATH(plan.Start(), "CHECK failed");
}

TEST(QueryPlanTest, ExitQueueReceivesEvents) {
  QueryPlan plan;
  auto* fanout = plan.AddOperator(std::make_unique<Fanout>("f"));
  EventQueue* entry = plan.AddEntryQueue("entry", fanout, 0);
  EventQueue* exit = plan.AddExitQueue("exit", fanout, Fanout::kOutPort);
  plan.Start();
  entry->Push(A(1, 1.0));
  RoundRobinScheduler scheduler(&plan);
  scheduler.RunUntilQuiescent();
  EXPECT_EQ(exit->size(), 1u);  // exit queues are not drained by scheduler
}

TEST(QueryPlanTest, RemoveOperatorWhileRunning) {
  QueryPlan plan;
  auto* fanout = plan.AddOperator(std::make_unique<Fanout>("f"));
  auto* sink = plan.AddOperator(std::make_unique<CountingSink>("s"));
  EventQueue* entry = plan.AddEntryQueue("entry", fanout, 0);
  EventQueue* mid = plan.Connect(fanout, Fanout::kOutPort, sink, 0);
  plan.Start();
  entry->Push(A(1, 1.0));
  RoundRobinScheduler scheduler(&plan);
  scheduler.RunUntilQuiescent();
  // Quiescent: remove the sink; its input queue must be drained first.
  EXPECT_TRUE(mid->empty());
  // Single-threaded test, deterministic scheduler quiescent: this thread
  // owns the plan structure.
  plan.AssertSurgeryExclusive();
  fanout->DetachOutput(Fanout::kOutPort, mid);
  plan.RetireQueue(mid);
  plan.RemoveOperatorWhileRunning(sink);
  EXPECT_EQ(plan.operators().size(), 1u);
  // Further traffic just flows to nowhere.
  entry->Push(A(2, 2.0));
  scheduler.RunUntilQuiescent();
}

}  // namespace
}  // namespace stateslice
