// Batch-vs-scalar execution equivalence. Three claims, matching the
// run-at-a-time refactor's order argument (draining a bounded FIFO
// snapshot is the same as popping the events one by one):
//
//  1. The deterministic run-at-a-time machinery is deterministic: any
//     config replayed over the same feed is byte-identical to itself,
//     and single-event PushBatch spans are byte-identical to per-event
//     Push (the two ingestion spellings share one code path). At the
//     default run length the per-event scalar feed is itself the oracle.
//  2. Across run lengths, ingestion batch sizes, and in parallel mode,
//     per-query result *multisets* are identical to the oracle's.
//  3. Nothing more: a scalar Push drains the plan to quiescence before
//     the next event enters, while a batch leaves an entry backlog the
//     round-robin scheduler interleaves with downstream work — so
//     delivery order between *independent* results shifts with both the
//     quantum and the ingestion batch size. Result sets never do.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "tests/test_util.h"

namespace stateslice {
namespace {

// One engine run's observable output: the per-query delivery sequence seen
// by a subscription callback plus the collected result multisets.
struct RunOutput {
  std::vector<std::vector<std::string>> sequences;  // [query] -> keys
  std::vector<std::map<std::string, int>> collected;
};

enum class IngestMode {
  kScalar,          // per-event Push
  kSpans,           // PushBatch over maximal same-stream spans
  kSingletonSpans,  // PushBatch over one-event spans (must match kScalar)
};

struct FeedConfig {
  ExecutionMode mode = ExecutionMode::kDeterministic;
  int run_length = 0;  // Engine::Options::run_length (0 = defaults)
  IngestMode ingest = IngestMode::kScalar;
};

RunOutput RunEngine(const std::vector<ContinuousQuery>& queries,
                    const JoinCondition& condition,
                    const std::vector<Tuple>& merged,
                    const FeedConfig& config) {
  Engine::Options eopt;
  eopt.strategy = SharingStrategy::kStateSlice;
  eopt.collect_results = true;
  eopt.condition = condition;
  eopt.mode = config.mode;
  eopt.run_length = config.run_length;
  if (config.mode == ExecutionMode::kParallel) eopt.worker_threads = 3;
  if (config.mode == ExecutionMode::kSharded) eopt.shard_count = 3;
  Engine engine(eopt);

  RunOutput out;
  out.sequences.resize(queries.size());
  // Parallel-mode callbacks fire on worker threads; one lock serializes
  // the recorders (different queries' sinks may live in different stages).
  std::mutex mu;
  std::vector<QueryHandle> handles;
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryHandle h = engine.RegisterQuery(queries[i]);
    EXPECT_TRUE(h.valid()) << engine.last_error();
    engine.Subscribe(h, [&out, &mu, i](const JoinResult& r) {
      std::lock_guard<std::mutex> lock(mu);
      out.sequences[i].push_back(JoinPairKey(r));
    });
    handles.push_back(h);
  }

  switch (config.ingest) {
    case IngestMode::kScalar:
      for (const Tuple& t : merged) engine.Push(t.side, t);
      break;
    case IngestMode::kSpans: {
      size_t i = 0;
      while (i < merged.size()) {
        size_t j = i + 1;
        while (j < merged.size() && merged[j].side == merged[i].side) ++j;
        engine.PushBatch(merged[i].side,
                         std::span(merged).subspan(i, j - i));
        i = j;
      }
      break;
    }
    case IngestMode::kSingletonSpans:
      for (size_t i = 0; i < merged.size(); ++i) {
        engine.PushBatch(merged[i].side, std::span(merged).subspan(i, 1));
      }
      break;
  }
  engine.Finish();

  for (const QueryHandle& h : handles) {
    out.collected.push_back(engine.CollectedResults(h));
  }
  return out;
}

std::map<std::string, int> AsMultiset(const std::vector<std::string>& seq) {
  std::map<std::string, int> counts;
  for (const std::string& k : seq) ++counts[k];
  return counts;
}

// Run lengths the matrix sweeps: scalar-degenerate, small, the
// deterministic default (8 — must reproduce the oracle exactly), the
// batched parallel default, and effectively unbounded (one run per
// scheduler visit).
constexpr int kRunLengths[] = {1, 4, 8, 64, 1 << 20};

void CheckMatrix(const std::vector<ContinuousQuery>& queries,
                 const JoinCondition& condition,
                 const std::vector<Tuple>& merged) {
  // Oracle: scalar per-event feed, deterministic mode, default run length.
  const RunOutput oracle = RunEngine(queries, condition, merged, FeedConfig{});

  // Claim 1a: replaying the oracle config is byte-identical — the
  // run-at-a-time machinery (DrainRun/OnRun) is deterministic.
  const RunOutput replay = RunEngine(queries, condition, merged, FeedConfig{});
  EXPECT_EQ(replay.sequences, oracle.sequences);
  EXPECT_EQ(replay.collected, oracle.collected);

  // Claim 1b: one-event PushBatch spans are byte-identical to per-event
  // Push — the two ingestion spellings share one code path.
  const RunOutput singleton =
      RunEngine(queries, condition, merged,
                {ExecutionMode::kDeterministic, 0, IngestMode::kSingletonSpans});
  EXPECT_EQ(singleton.sequences, oracle.sequences);
  EXPECT_EQ(singleton.collected, oracle.collected);

  for (const int run_length : kRunLengths) {
    SCOPED_TRACE(::testing::Message() << "run_length=" << run_length);
    const RunOutput scalar =
        RunEngine(queries, condition, merged,
                  {ExecutionMode::kDeterministic, run_length,
                   IngestMode::kScalar});
    const RunOutput batched =
        RunEngine(queries, condition, merged,
                  {ExecutionMode::kDeterministic, run_length,
                   IngestMode::kSpans});
    // At the deterministic default quantum the scalar feed *is* the
    // oracle, so there the sequences must also match it byte for byte.
    if (run_length == 8) {
      EXPECT_EQ(scalar.sequences, oracle.sequences);
    }
    // Claim 2: result multisets are invariant across the run length and
    // the ingestion batch size.
    EXPECT_EQ(scalar.collected, oracle.collected);
    EXPECT_EQ(batched.collected, oracle.collected);
    for (size_t q = 0; q < oracle.sequences.size(); ++q) {
      EXPECT_EQ(AsMultiset(scalar.sequences[q]),
                AsMultiset(oracle.sequences[q]))
          << "scalar query " << q;
      EXPECT_EQ(AsMultiset(batched.sequences[q]),
                AsMultiset(oracle.sequences[q]))
          << "batched query " << q;
    }

    const RunOutput par =
        RunEngine(queries, condition, merged,
                  {ExecutionMode::kParallel, run_length, IngestMode::kSpans});
    // Parallel: same multisets (delivery interleaving may differ).
    EXPECT_EQ(par.collected, oracle.collected);
    for (size_t q = 0; q < oracle.sequences.size(); ++q) {
      EXPECT_EQ(AsMultiset(par.sequences[q]),
                AsMultiset(oracle.sequences[q]))
          << "parallel query " << q;
    }

    // Sharded: key partitioning needs an equi-key predicate, so the arm
    // runs only on rekeyed matrices. Same multiset claim as parallel
    // (delivery order across shards depends on merge timing).
    if (condition.kind == JoinCondition::Kind::kEquiKey) {
      const RunOutput sharded =
          RunEngine(queries, condition, merged,
                    {ExecutionMode::kSharded, run_length, IngestMode::kSpans});
      EXPECT_EQ(sharded.collected, oracle.collected);
      for (size_t q = 0; q < oracle.sequences.size(); ++q) {
        EXPECT_EQ(AsMultiset(sharded.sequences[q]),
                  AsMultiset(oracle.sequences[q]))
            << "sharded query " << q;
      }
    }
  }
}

TEST(BatchEquivalenceTest, BinaryChainMatrix) {
  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = 40;
  spec.duration_s = 18;
  spec.join_selectivity = 0.1;
  const Workload workload = GenerateWorkload(spec);

  std::vector<ContinuousQuery> queries(2);
  queries[0].name = "Q1";
  queries[0].window = WindowSpec::TimeSeconds(2);
  queries[1].name = "Q2";
  queries[1].window = WindowSpec::TimeSeconds(5);
  queries[1].selection_a = Predicate::WithSelectivity(0.7);

  CheckMatrix(queries, workload.condition, MergedArrivals(workload));
}

// Equi-key rekeys of both matrices: identical claims, plus the sharded
// arm (key partitioning requires equi-key). Zipf skew on the binary one
// pushes the hot shard through its overflow/steal machinery.
TEST(BatchEquivalenceTest, BinaryChainEquiKeyMatrix) {
  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = 40;
  spec.duration_s = 14;
  spec.join_selectivity = 0.1;
  Workload workload = GenerateWorkload(spec);
  RekeyForEquiJoinZipf(&workload, 12, 1.1, 99);

  std::vector<ContinuousQuery> queries(2);
  queries[0].name = "Q1";
  queries[0].window = WindowSpec::TimeSeconds(2);
  queries[1].name = "Q2";
  queries[1].window = WindowSpec::TimeSeconds(5);
  queries[1].selection_a = Predicate::WithSelectivity(0.7);

  CheckMatrix(queries, workload.condition, MergedArrivals(workload));
}

TEST(BatchEquivalenceTest, ThreeWayTreeEquiKeyMatrix) {
  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = 22;
  spec.duration_s = 8;
  spec.join_selectivity = 0.25;
  MultiWorkload workload = GenerateMultiWorkload(spec, 3);
  RekeyForEquiJoin(&workload, 6, 42);

  std::vector<ContinuousQuery> queries(2);
  queries[0].name = "Q1";
  queries[0].window = WindowSpec::TimeSeconds(2);
  queries[1].name = "Q2";
  queries[1].window = WindowSpec::TimeSeconds(4);
  queries[1].stream_names = {"A", "B", "C"};

  CheckMatrix(queries, workload.condition, MergedArrivals(workload));
}

TEST(BatchEquivalenceTest, ThreeWayTreeMatrix) {
  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = 22;
  spec.duration_s = 10;
  spec.join_selectivity = 0.25;
  const MultiWorkload workload = GenerateMultiWorkload(spec, 3);

  std::vector<ContinuousQuery> queries(2);
  queries[0].name = "Q1";
  queries[0].window = WindowSpec::TimeSeconds(2);
  queries[1].name = "Q2";
  queries[1].window = WindowSpec::TimeSeconds(4);
  queries[1].stream_names = {"A", "B", "C"};

  CheckMatrix(queries, workload.condition, MergedArrivals(workload));
}

}  // namespace
}  // namespace stateslice
