// Fuzzed query churn on a live Engine: random register/unregister
// operations mid-stream, across sharing strategies and execution modes,
// with every query's cumulative delivery checked against a fresh oracle
// over its post-registration suffix (segmented by rebuild cutoffs).
//
// Roughly half the churn points additionally checkpoint the engine and
// swap in a freshly-restored replacement, so both churn paths (in-place
// migration and drain-rebuild) are exercised on plans that have crossed a
// serialization boundary; CheckPlanInvariants() pins chain-spec and
// key-index consistency on every restored plan.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/api/engine.h"
#include "src/stateslice.h"
#include "tests/test_util.h"

namespace stateslice {
namespace {

using ::stateslice::testing::SegmentedOracle;
using ::stateslice::testing::StrictIncreaseAt;

// One registered query's ground truth, tracked by the test harness.
struct TrackedQuery {
  QueryHandle handle;
  ContinuousQuery query;
  TimePoint removed_before = kMaxTime;  // delivery stops at this cutoff
};

struct ChurnConfig {
  SharingStrategy strategy = SharingStrategy::kStateSlice;
  ChainObjective objective = ChainObjective::kMemOpt;
  bool use_lineage = false;
  bool filtered = false;  // some queries carry the shared predicate
  std::string DebugString() const {
    std::string s = "strategy=";
    switch (strategy) {
      case SharingStrategy::kStateSlice: s += "slice"; break;
      case SharingStrategy::kPullUp: s += "pullup"; break;
      case SharingStrategy::kPushDown: s += "pushdown"; break;
      case SharingStrategy::kUnshared: s += "unshared"; break;
    }
    s += objective == ChainObjective::kCpuOpt ? " cpu-opt" : " mem-opt";
    if (use_lineage) s += " lineage";
    if (filtered) s += " filtered";
    return s;
  }
};

ChurnConfig DrawChurnConfig(Rng* rng) {
  ChurnConfig config;
  const SharingStrategy strategies[] = {
      SharingStrategy::kStateSlice, SharingStrategy::kStateSlice,
      SharingStrategy::kPullUp, SharingStrategy::kPushDown,
      SharingStrategy::kUnshared};
  config.strategy = strategies[rng->NextBounded(5)];
  config.objective = rng->NextBounded(4) == 0 ? ChainObjective::kCpuOpt
                                              : ChainObjective::kMemOpt;
  config.filtered = rng->NextBounded(2) == 0;
  config.use_lineage = config.strategy == SharingStrategy::kStateSlice &&
                       config.filtered && rng->NextBounded(2) == 0;
  return config;
}

ContinuousQuery DrawQuery(Rng* rng, const ChurnConfig& config, int serial) {
  ContinuousQuery q;
  q.name = "F" + std::to_string(serial);
  // Windows 0.5 .. 6.0 s in half-second steps; duplicates allowed.
  q.window =
      WindowSpec::TimeSeconds(0.5 * (1 + static_cast<double>(
                                             rng->NextBounded(12))));
  // All filtered queries share one predicate so push-down stays eligible.
  if (config.filtered && rng->NextBounded(2) == 0) {
    q.selection_a = Predicate::GreaterThan(0.4);
  }
  return q;
}

void RunChurnFuzz(uint64_t seed, ExecutionMode mode) {
  Rng rng(seed);
  const ChurnConfig config = DrawChurnConfig(&rng);

  WorkloadSpec wspec;
  wspec.rate_a = wspec.rate_b = 15.0 + static_cast<double>(
                                           rng.NextBounded(15));
  wspec.duration_s = 10;
  wspec.join_selectivity = 0.1;
  wspec.seed = rng.NextU64();
  Workload workload = GenerateWorkload(wspec);
  if (mode == ExecutionMode::kSharded) {
    // Key partitioning needs an equi-key predicate; alternate uniform and
    // Zipf-skewed key draws so shard churn also runs under imbalance.
    if (seed % 2 == 0) {
      RekeyForEquiJoin(&workload, 10, seed * 17);
    } else {
      RekeyForEquiJoinZipf(&workload, 10, 1.1, seed * 17);
    }
  }
  const std::vector<Tuple> merged = MergedArrivals(workload);

  Engine::Options options;
  options.strategy = config.strategy;
  options.objective = config.objective;
  options.use_lineage = config.use_lineage;
  options.collect_results = true;
  options.condition = workload.condition;
  options.mode = mode;
  options.worker_threads = 3;
  options.shard_count = 1 + static_cast<int>(seed % 3);
  auto engine = std::make_unique<Engine>(options);

  SCOPED_TRACE("seed=" + std::to_string(seed) + " " +
               config.DebugString() + " mode=" +
               (mode == ExecutionMode::kParallel
                    ? "parallel"
                    : (mode == ExecutionMode::kSharded ? "sharded"
                                                       : "determ.")));

  std::vector<TrackedQuery> tracked;
  int serial = 0;
  const int initial = 1 + static_cast<int>(rng.NextBounded(3));
  for (int i = 0; i < initial; ++i) {
    TrackedQuery t;
    t.query = DrawQuery(&rng, config, ++serial);
    t.handle = engine->RegisterQuery(t.query);
    ASSERT_TRUE(t.handle.valid()) << engine->last_error();
    tracked.push_back(t);
  }

  // Churn points: 2-4 clean (strictly increasing timestamp) positions.
  const int num_ops = 2 + static_cast<int>(rng.NextBounded(3));
  std::vector<size_t> positions;
  for (int k = 1; k <= num_ops; ++k) {
    positions.push_back(StrictIncreaseAt(
        merged, merged.size() * static_cast<size_t>(k) / (num_ops + 1)));
  }

  size_t fed = 0;
  for (const size_t pos : positions) {
    for (; fed < pos && fed < merged.size(); ++fed) {
      engine->Push(merged[fed].side, merged[fed]);
    }
    if (pos >= merged.size()) break;
    size_t live = 0;
    for (const TrackedQuery& t : tracked) {
      live += engine->IsActive(t.handle) ? 1 : 0;
    }
    const bool unregister = live >= 2 && rng.NextBounded(3) == 0;
    if (unregister) {
      // Remove a random live query; its delivery freezes at the cutoff.
      size_t pick = rng.NextBounded(live);
      for (TrackedQuery& t : tracked) {
        if (!engine->IsActive(t.handle)) continue;
        if (pick-- > 0) continue;
        ASSERT_TRUE(engine->UnregisterQuery(t.handle))
            << engine->last_error();
        t.removed_before = merged[pos].timestamp;
        break;
      }
    } else {
      TrackedQuery t;
      t.query = DrawQuery(&rng, config, ++serial);
      t.handle = engine->RegisterQuery(t.query);
      ASSERT_TRUE(t.handle.valid()) << engine->last_error();
      // The cutoff falls in the tuple-free gap before merged[pos].
      EXPECT_GT(engine->ResultsFrom(t.handle), merged[pos - 1].timestamp);
      EXPECT_LE(engine->ResultsFrom(t.handle), merged[pos].timestamp);
      tracked.push_back(t);
    }
    // Half the churn points round-trip the engine through a checkpoint:
    // the restored replacement (same handles — tokens survive restore)
    // carries the rest of the run, so churned plans must serialize,
    // deserialize, and keep their structural invariants.
    if (rng.NextBounded(2) == 0) {
      std::string snapshot;
      ASSERT_TRUE(engine->Checkpoint(&snapshot)) << engine->last_error();
      auto restored = std::make_unique<Engine>(options);
      ASSERT_TRUE(restored->Restore(snapshot)) << restored->last_error();
      restored->CheckPlanInvariants();
      ASSERT_EQ(restored->input_tuples(), engine->input_tuples());
      ASSERT_EQ(restored->watermark(), engine->watermark());
      ASSERT_EQ(restored->rebuild_cutoffs(), engine->rebuild_cutoffs());
      engine = std::move(restored);
    }
  }
  for (; fed < merged.size(); ++fed) {
    engine->Push(merged[fed].side, merged[fed]);
  }
  engine->Finish();

  // Every query — live or removed — delivered exactly its oracle suffix,
  // segmented by the rebuild cutoffs and truncated at its removal.
  const std::vector<TimePoint>& cutoffs = engine->rebuild_cutoffs();
  for (const TrackedQuery& t : tracked) {
    auto until = [&](const std::vector<Tuple>& stream) {
      std::vector<Tuple> head;
      for (const Tuple& tu : stream) {
        if (tu.timestamp < t.removed_before) head.push_back(tu);
      }
      return head;
    };
    const auto expected = SegmentedOracle(
        until(workload.stream_a), until(workload.stream_b),
        workload.condition, t.query, engine->ResultsFrom(t.handle), cutoffs);
    EXPECT_EQ(engine->CollectedResults(t.handle), expected)
        << t.query.DebugString() << " results_from="
        << engine->ResultsFrom(t.handle);
    uint64_t total = 0;
    for (const auto& [key, count] : expected) total += count;
    EXPECT_EQ(engine->ResultCount(t.handle), total);
  }

  const RunStats stats = engine->Snapshot();
  EXPECT_EQ(stats.input_tuples + engine->dropped_tuples(), merged.size());
}

TEST(EngineChurnFuzzTest, Deterministic) {
  for (uint64_t seed = 1; seed <= 14; ++seed) {
    RunChurnFuzz(seed, ExecutionMode::kDeterministic);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(EngineChurnFuzzTest, Parallel) {
  for (uint64_t seed = 101; seed <= 108; ++seed) {
    RunChurnFuzz(seed, ExecutionMode::kParallel);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Sharded churn always takes the drain-rebuild path (ChainMigrator would
// have to mutate every replica in lock-step), so every register and
// unregister exercises shard teardown + rebuild + restart.
TEST(EngineChurnFuzzTest, Sharded) {
  for (uint64_t seed = 201; seed <= 208; ++seed) {
    RunChurnFuzz(seed, ExecutionMode::kSharded);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace stateslice
