#include "src/operators/sliced_window_join.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace stateslice {
namespace {

using ::stateslice::testing::A;
using ::stateslice::testing::B;
using ::stateslice::testing::DrainQueue;
using ::stateslice::testing::ResultsOf;

// Standalone harness for one sliced join with collected result/next queues.
struct SliceHarness {
  explicit SliceHarness(SliceRange range,
                        SlicedWindowJoin::Options options = {})
      : join("slice", range, options), results("results"), next("next") {
    join.AttachOutput(SlicedWindowJoin::kResultPort, &results);
    join.AttachOutput(SlicedWindowJoin::kNextPort, &next);
  }
  void Feed(const Tuple& t) { join.Process(t, 0); }
  std::vector<JoinResult> Results() {
    return ResultsOf(DrainQueue(&results));
  }
  SlicedWindowJoin join;
  EventQueue results;
  EventQueue next;
};

SlicedWindowJoin::Options NoPunct() {
  SlicedWindowJoin::Options o;
  o.punctuate_results = false;
  return o;
}

TEST(SlicedWindowJoinTest, FirstSliceEqualsRegularJoin) {
  // Definition 1: A[W] |>< B == A[0, W] s|>< B.
  SliceHarness h(SliceRange::TimeSeconds(0, 5), NoPunct());
  h.Feed(A(1, 0.0, 1));
  h.Feed(B(1, 3.0, 1));
  const auto results = h.Results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(JoinPairKey(results[0]), "a1|b1");
}

TEST(SlicedWindowJoinTest, MaleProbesAndPropagates) {
  SliceHarness h(SliceRange::TimeSeconds(0, 5), NoPunct());
  h.Feed(A(1, 0.0, 1));
  h.Feed(B(1, 1.0, 1));
  const auto next = DrainQueue(&h.next);
  // a1's male copy and b1's male copy propagate; females stay in state.
  ASSERT_EQ(next.size(), 2u);
  const Tuple& am = std::get<Tuple>(next[0]);
  EXPECT_EQ(am.DebugId(), "a1");
  EXPECT_EQ(am.role, TupleRole::kMale);
  const Tuple& bm = std::get<Tuple>(next[1]);
  EXPECT_EQ(bm.DebugId(), "b1");
  EXPECT_EQ(bm.role, TupleRole::kMale);
  EXPECT_EQ(h.join.state_a().size(), 1u);
  EXPECT_EQ(h.join.state_b().size(), 1u);
}

TEST(SlicedWindowJoinTest, PurgedFemalesGoToNextQueueBeforeTheMale) {
  SliceHarness h(SliceRange::TimeSeconds(0, 2), NoPunct());
  h.Feed(A(1, 0.0, 1));  // a1's male copy propagates immediately
  h.Feed(B(1, 3.0, 1));  // purges a1 (d=3 >= 2), then probes, propagates
  const auto next = DrainQueue(&h.next);
  ASSERT_EQ(next.size(), 3u);
  EXPECT_EQ(std::get<Tuple>(next[0]).DebugId(), "a1");
  EXPECT_EQ(std::get<Tuple>(next[0]).role, TupleRole::kMale);
  // The purged female travels ahead of the male that purged it, keeping
  // the chain queue timestamp-ordered (Lemma 1's handoff discipline).
  EXPECT_EQ(std::get<Tuple>(next[1]).DebugId(), "a1");
  EXPECT_EQ(std::get<Tuple>(next[1]).role, TupleRole::kFemale);
  EXPECT_EQ(std::get<Tuple>(next[2]).DebugId(), "b1");
  EXPECT_EQ(std::get<Tuple>(next[2]).role, TupleRole::kMale);
  EXPECT_TRUE(h.Results().empty());  // a1 expired before the probe
}

TEST(SlicedWindowJoinTest, FemaleRoleOnlyInserts) {
  SliceHarness h(SliceRange::TimeSeconds(2, 5), NoPunct());
  Tuple af = A(1, 0.0, 1);
  af.role = TupleRole::kFemale;
  h.Feed(af);
  EXPECT_EQ(h.join.state_a().size(), 1u);
  EXPECT_TRUE(DrainQueue(&h.next).empty());
  EXPECT_TRUE(h.Results().empty());
}

TEST(SlicedWindowJoinTest, MaleRoleDoesNotInsert) {
  SliceHarness h(SliceRange::TimeSeconds(2, 5), NoPunct());
  Tuple am = A(1, 0.0, 1);
  am.role = TupleRole::kMale;
  h.Feed(am);
  EXPECT_EQ(h.join.StateSize(), 0u);
  const auto next = DrainQueue(&h.next);
  ASSERT_EQ(next.size(), 1u);  // male propagates
}

TEST(SlicedWindowJoinTest, MiddleSliceJoinsAtItsRange) {
  // Simulate the chain handoff into slice [2, 5): the female arrives first
  // (purged from the previous slice), then the probing male.
  SliceHarness h(SliceRange::TimeSeconds(2, 5), NoPunct());
  Tuple af = A(1, 0.0, 1);
  af.role = TupleRole::kFemale;
  h.Feed(af);
  Tuple bm = B(1, 3.0, 1);
  bm.role = TupleRole::kMale;
  h.Feed(bm);  // d = 3 in [2, 5): joins
  const auto results = h.Results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(JoinPairKey(results[0]), "a1|b1");
}

TEST(SlicedWindowJoinTest, SliceEndPurgesBeforeProbe) {
  SliceHarness h(SliceRange::TimeSeconds(2, 5), NoPunct());
  Tuple af = A(1, 0.0, 1);
  af.role = TupleRole::kFemale;
  h.Feed(af);
  Tuple bm = B(1, 5.0, 1);
  bm.role = TupleRole::kMale;
  h.Feed(bm);  // d = 5 >= 5: a1 purged into next, no join
  EXPECT_TRUE(h.Results().empty());
  const auto next = DrainQueue(&h.next);
  ASSERT_EQ(next.size(), 2u);
  EXPECT_EQ(std::get<Tuple>(next[0]).DebugId(), "a1");
}

TEST(SlicedWindowJoinTest, StrictBoundsFiltersBelowRange) {
  // A standalone slice fed raw tuples would wrongly join pairs closer than
  // W_start without strict bounds (in a chain, Lemma 1 rules them out).
  SlicedWindowJoin::Options o = NoPunct();
  o.strict_bounds = true;
  SliceHarness h(SliceRange::TimeSeconds(2, 5), o);
  Tuple af = A(1, 0.0, 1);
  af.role = TupleRole::kFemale;
  h.Feed(af);
  Tuple bm = B(1, 1.0, 1);
  bm.role = TupleRole::kMale;
  h.Feed(bm);  // d = 1 < W_start = 2: excluded by Definition 1
  EXPECT_TRUE(h.Results().empty());
}

TEST(SlicedWindowJoinTest, PunctuationEmittedPerMale) {
  SlicedWindowJoin::Options o;  // punctuate_results = true
  SliceHarness h(SliceRange::TimeSeconds(0, 5), o);
  h.Feed(A(1, 1.0, 1));
  const auto events = DrainQueue(&h.results);
  ASSERT_EQ(events.size(), 1u);
  ASSERT_TRUE(IsPunctuation(events[0]));
  EXPECT_EQ(std::get<Punctuation>(events[0]).watermark, SecondsToTicks(1.0));
}

TEST(SlicedWindowJoinTest, IncomingPunctuationForwardsBothWays) {
  SliceHarness h(SliceRange::TimeSeconds(0, 5), NoPunct());
  h.join.Process(Punctuation{.watermark = 9}, 0);
  EXPECT_EQ(DrainQueue(&h.results).size(), 1u);
  EXPECT_EQ(DrainQueue(&h.next).size(), 1u);
}

TEST(SlicedWindowJoinTest, OneWayModeFollowsTable2Discipline) {
  SlicedWindowJoin::Options o = NoPunct();
  o.mode = SlicedWindowJoin::Mode::kOneWayA;
  o.condition = JoinCondition::ModSum(1, 1);  // Cartesian
  SliceHarness h(SliceRange::TimeSeconds(0, 2), o);
  h.Feed(A(1, 1.0));
  h.Feed(A(2, 2.0));
  h.Feed(B(1, 3.0));  // purges a1 (d=2 >= 2), joins a2, propagates b1
  const auto results = h.Results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(JoinPairKey(results[0]), "a2|b1");
  const auto next = DrainQueue(&h.next);
  ASSERT_EQ(next.size(), 2u);
  EXPECT_EQ(std::get<Tuple>(next[0]).DebugId(), "a1");
  EXPECT_EQ(std::get<Tuple>(next[1]).DebugId(), "b1");
  EXPECT_EQ(h.join.state_b().size(), 0u);  // one-way: B never stored
}

TEST(SlicedWindowJoinTest, CountBasedSliceEvictsByRank) {
  SlicedWindowJoin::Options o = NoPunct();
  SliceHarness h(SliceRange::Count(0, 2), o);
  h.Feed(A(1, 0.0, 1));
  h.Feed(A(2, 1.0, 1));
  h.Feed(A(3, 2.0, 1));  // a1's rank crosses 2: evicted to next slice
  const auto next = DrainQueue(&h.next);
  // a1 male, a2 male, a1 female eviction, a3 male (in feed order).
  std::vector<std::string> ids;
  for (const Event& e : next) ids.push_back(std::get<Tuple>(e).DebugId());
  std::vector<std::string> roles;
  for (const Event& e : next) {
    roles.push_back(std::get<Tuple>(e).role == TupleRole::kMale ? "m" : "f");
  }
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(ids[0], "a1");
  EXPECT_EQ(roles[0], "m");
  EXPECT_EQ(ids[2], "a1");  // evicted female before a3's male
  EXPECT_EQ(roles[2], "f");
  EXPECT_EQ(h.join.state_a().size(), 2u);
}

TEST(SlicedWindowJoinTest, SetRangeShrinksOnNextPurge) {
  SliceHarness h(SliceRange::TimeSeconds(0, 10), NoPunct());
  h.Feed(A(1, 0.0, 1));
  h.Feed(A(2, 4.0, 1));
  h.join.SetRange(SliceRange::TimeSeconds(0, 2));
  h.Feed(B(1, 5.0, 1));  // purge with new end=2: a1 (d=5) and a2 (d=1 stays)
  const auto next = DrainQueue(&h.next);
  ASSERT_GE(next.size(), 2u);
  EXPECT_EQ(std::get<Tuple>(next[0]).DebugId(), "a1");
  const auto results = h.Results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(JoinPairKey(results[0]), "a2|b1");
}

TEST(SlicedWindowJoinDeathTest, InvalidRangeAborts) {
  EXPECT_DEATH(SlicedWindowJoin("bad", SliceRange::TimeSeconds(5, 5)),
               "CHECK failed");
  EXPECT_DEATH(SlicedWindowJoin("bad", SliceRange::TimeSeconds(5, 2)),
               "CHECK failed");
}

}  // namespace
}  // namespace stateslice
