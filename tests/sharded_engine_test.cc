// Engine-level coverage for ExecutionMode::kSharded: key-partitioned
// replicas with work-stealing must deliver exactly the deterministic
// result multisets (the oracle), reject configurations key partitioning
// cannot serve, keep subscriptions timestamp-ordered (the merge plan's
// UnionMerge guarantee), and surface the steal/spill accounting.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/stateslice.h"
#include "tests/test_util.h"

namespace stateslice {
namespace {

using ::stateslice::testing::OracleJoin;

// Equi-key workload (uniform keys unless a Zipf skew is requested).
Workload EquiWorkload(uint64_t seed, double duration_s = 10,
                      int64_t key_domain = 16, double zipf_s = 0.0) {
  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = 25;
  spec.duration_s = duration_s;
  spec.seed = seed;
  Workload workload = GenerateWorkload(spec);
  if (zipf_s > 0.0) {
    RekeyForEquiJoinZipf(&workload, key_domain, zipf_s, seed * 31 + 7);
  } else {
    RekeyForEquiJoin(&workload, key_domain, seed * 31 + 7);
  }
  return workload;
}

Engine::Options ShardedOptions(const Workload& workload, int shards) {
  Engine::Options options;
  options.condition = workload.condition;
  options.collect_results = true;
  options.mode = ExecutionMode::kSharded;
  options.shard_count = shards;
  return options;
}

ContinuousQuery PlainQuery(double window_s, const std::string& name) {
  ContinuousQuery q;
  q.name = name;
  q.window = WindowSpec::TimeSeconds(window_s);
  return q;
}

class ShardCountTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardCountTest, MatchesOracleAcrossShardCounts) {
  const Workload workload = EquiWorkload(11);
  Engine engine(ShardedOptions(workload, GetParam()));

  ContinuousQuery q1 = PlainQuery(2, "Q1");
  ContinuousQuery q2 = PlainQuery(6, "Q2");
  q2.selection_a = Predicate::GreaterThan(0.4);
  const QueryHandle h1 = engine.RegisterQuery(q1);
  const QueryHandle h2 = engine.RegisterQuery(q2);
  ASSERT_TRUE(h1.valid());
  ASSERT_TRUE(h2.valid());

  for (const Tuple& t : MergedArrivals(workload)) {
    engine.Push(t.side, t);
  }
  engine.Finish();

  EXPECT_EQ(engine.CollectedResults(h1),
            OracleJoin(workload.stream_a, workload.stream_b,
                       workload.condition, q1));
  EXPECT_EQ(engine.CollectedResults(h2),
            OracleJoin(workload.stream_a, workload.stream_b,
                       workload.condition, q2));
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardCountTest, ::testing::Values(1, 2, 8));

TEST(ShardedEngineTest, SkewedKeysMatchOracleAndSpill) {
  // Zipf(1.2) over 8 keys: the hottest key draws roughly half the
  // arrivals, so its shard saturates while siblings idle — the exact
  // imbalance the overflow/steal path exists for. Small rings force
  // spills deterministically.
  const Workload workload = EquiWorkload(5, 10, 8, 1.2);
  Engine::Options options = ShardedOptions(workload, 4);
  options.parallel_edge_capacity = 16;
  Engine engine(options);

  const QueryHandle h = engine.RegisterQuery(PlainQuery(4, "Q1"));
  ASSERT_TRUE(h.valid());
  for (const Tuple& t : MergedArrivals(workload)) {
    engine.Push(t.side, t);
  }
  engine.Finish();
  EXPECT_EQ(engine.CollectedResults(h),
            OracleJoin(workload.stream_a, workload.stream_b,
                       workload.condition, PlainQuery(4, "Q1")));

  const RunStats stats = engine.Snapshot();
  EXPECT_EQ(stats.mode, ExecutionMode::kSharded);
  EXPECT_EQ(stats.worker_threads, 4);
  // Skew + tiny rings must overflow at least once; steals depend on
  // scheduling luck, so only the spill floor is asserted.
  EXPECT_GT(stats.shard_spilled_runs, 0u);
}

TEST(ShardedEngineTest, RejectsNonEquiAndCountWindows) {
  const Workload workload = EquiWorkload(7);
  {
    Engine::Options options = ShardedOptions(workload, 2);
    options.condition = JoinCondition::ModSum(10, 3);
    Engine engine(options);
    EXPECT_FALSE(engine.RegisterQuery(PlainQuery(2, "Q1")).valid());
    EXPECT_NE(engine.last_error().find("equi-key"), std::string::npos);
  }
  {
    Engine engine(ShardedOptions(workload, 2));
    ContinuousQuery q;
    q.name = "Q1";
    q.window = WindowSpec::Count(32);
    EXPECT_FALSE(engine.RegisterQuery(q).valid());
    EXPECT_NE(engine.last_error().find("time-based"), std::string::npos);
  }
}

TEST(ShardedEngineTest, PollDrainAndMidStreamCounts) {
  const Workload workload = EquiWorkload(13);
  Engine engine(ShardedOptions(workload, 2));
  const QueryHandle h = engine.RegisterQuery(PlainQuery(3, "Q1"));
  ASSERT_TRUE(h.valid());

  const std::vector<Tuple> merged = MergedArrivals(workload);
  const size_t half = merged.size() / 2;
  uint64_t polled = 0;
  for (size_t i = 0; i < half; ++i) {
    engine.Push(merged[i].side, merged[i]);
    if (i % 64 == 0) polled += engine.Poll();
  }
  engine.Drain();
  polled += engine.Poll();
  EXPECT_GT(polled, 0u);
  // Mid-stream counts trail the deterministic point (UnionMerge holds
  // results until the slowest shard's watermark passes) but never exceed
  // the final total.
  const uint64_t mid = engine.ResultCount(h);
  for (size_t i = half; i < merged.size(); ++i) {
    engine.Push(merged[i].side, merged[i]);
  }
  engine.Finish();
  const uint64_t total = engine.ResultCount(h);
  EXPECT_LE(mid, total);
  EXPECT_EQ(engine.CollectedResults(h),
            OracleJoin(workload.stream_a, workload.stream_b,
                       workload.condition, PlainQuery(3, "Q1")));
}

TEST(ShardedEngineTest, SubscriptionStreamIsTimestampOrdered) {
  const Workload workload = EquiWorkload(17, 8);
  Engine engine(ShardedOptions(workload, 3));
  const QueryHandle h = engine.RegisterQuery(PlainQuery(2, "Q1"));
  ASSERT_TRUE(h.valid());

  // The callback fires on the merge worker; the vector is safe to read
  // after Finish() joined the workers (thread-join happens-before).
  std::vector<TimePoint> stamps;
  uint64_t callback_results = 0;
  const SubscriptionId sub = engine.Subscribe(h, [&](const JoinResult& r) {
    stamps.push_back(r.timestamp());
    ++callback_results;
  });
  ASSERT_TRUE(sub.valid());

  for (const Tuple& t : MergedArrivals(workload)) {
    engine.Push(t.side, t);
  }
  engine.Finish();

  EXPECT_EQ(callback_results, engine.ResultCount(h));
  for (size_t i = 1; i < stamps.size(); ++i) {
    ASSERT_LE(stamps[i - 1], stamps[i]) << "at " << i;
  }
}

TEST(ShardedEngineTest, SnapshotAggregatesShardPlans) {
  const Workload workload = EquiWorkload(19, 6);
  Engine engine(ShardedOptions(workload, 2));
  const QueryHandle h = engine.RegisterQuery(PlainQuery(2, "Q1"));
  ASSERT_TRUE(h.valid());

  const std::vector<Tuple> merged = MergedArrivals(workload);
  for (const Tuple& t : merged) engine.Push(t.side, t);
  engine.Drain();

  // Mid-session snapshot: pauses the shard workers, reads, resumes.
  const RunStats mid = engine.Snapshot();
  EXPECT_EQ(mid.input_tuples, merged.size());
  EXPECT_GT(mid.events_processed, 0u);
  EXPECT_GT(mid.cost.Get(CostCategory::kProbe), 0u);
  ASSERT_FALSE(mid.memory_samples.empty());

  // The engine must still accept input after the snapshot resume.
  engine.Finish();
  const RunStats fin = engine.Snapshot();
  EXPECT_EQ(fin.results_delivered, engine.ResultCount(h));
  EXPECT_GE(fin.events_processed, mid.events_processed);
}

}  // namespace
}  // namespace stateslice
