// Counting-allocator proof of the zero-allocation steady state (ISSUE 7
// acceptance): once an N-way deterministic engine has warmed up — queue
// rings grown, scratch vectors at capacity, windows full — continuing to
// push events performs ZERO global heap allocations per event. Composite
// tails either stay inline (<= 4 constituents) or recycle plan-arena
// blocks through the size-class freelists; nothing else on the hot path
// may allocate (the hot-path-alloc lint rule enforces the same contract
// statically).
//
// Warmup replays the measured feed itself: the warm phase is the same
// generated event pattern (same seed, rate, and duration) and the steady
// phase is that pattern shifted to follow contiguously. The deterministic
// engine reproduces the same per-visit match bursts on the replay, so
// every ring/scratch capacity maximum is reached during warmup and the
// measured region can't trigger a fresh geometric doubling.
//
// The workload uses the generator's default ModSum condition, so the
// equi-key hash index — whose amortized stale-id compaction legitimately
// reallocates its buckets — is out of the picture: the nested-loop probe
// path is the one the zero-allocation claim covers.
//
// This test overrides the global operator new/delete for the whole binary
// (each test file links into its own executable), counting every
// allocation; the measured region must not allocate at all.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "tests/test_util.h"

// Sanitizer builds interpose the allocator themselves: replacing only the
// throwing operators while the sanitizer serves the nothrow/aligned ones
// trips alloc-dealloc-mismatch, and the sanitizer runtime's own
// allocations would skew the counts anyway. There the tests still run the
// full workload (worth it for the instrumentation) but count nothing, so
// the zero-allocation assertions pass vacuously; the plain Release build
// is the binding one.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define STATESLICE_COUNTING_ALLOCATOR 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define STATESLICE_COUNTING_ALLOCATOR 0
#endif
#endif
#ifndef STATESLICE_COUNTING_ALLOCATOR
#define STATESLICE_COUNTING_ALLOCATOR 1
#endif

namespace {
std::atomic<uint64_t> g_heap_allocs{0};
}  // namespace

#if STATESLICE_COUNTING_ALLOCATOR

// The replacement operator new forwards to malloc, so the replacement
// delete forwards to free. When GCC inlines a caller's new-expression it
// pairs that caller's `new` with the `free` inside our delete and misfires
// -Wmismatched-new-delete (seen under -O2 -g RelWithDebInfo inlining).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // STATESLICE_COUNTING_ALLOCATOR

namespace stateslice {
namespace {

// Maximal same-stream segments of a merged feed, precomputed so the
// measured loop performs no work besides PushBatch calls.
struct Segment {
  size_t start = 0;
  size_t length = 0;
  StreamId side = 0;
};

std::vector<Segment> Segments(const std::vector<Tuple>& merged) {
  std::vector<Segment> segments;
  size_t i = 0;
  while (i < merged.size()) {
    size_t j = i + 1;
    while (j < merged.size() && merged[j].side == merged[i].side) ++j;
    segments.push_back({i, j - i, merged[i].side});
    i = j;
  }
  return segments;
}

// A warmup pass followed by a time-shifted replay of the same pattern,
// globally ordered. Both phases share the selectivity (hence ModSum
// condition and key domain).
struct TwoPhaseFeed {
  std::vector<Tuple> warm;
  std::vector<Tuple> steady;
  JoinCondition condition;
};

TwoPhaseFeed MakeFeed(int num_streams, double rate, double s1) {
  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = rate;
  spec.duration_s = 20;
  spec.join_selectivity = s1;
  MultiWorkload warm = GenerateMultiWorkload(spec, num_streams);
  // The steady phase is the SAME pattern (same seed) shifted to follow the
  // warm phase contiguously: a gap would mass-expire the whole window in
  // one purge, and a different pattern could out-burst the warmup's peaks.
  MultiWorkload steady = GenerateMultiWorkload(spec, num_streams);
  const TimePoint shift = SecondsToTicks(spec.duration_s);
  for (std::vector<Tuple>& stream : steady.streams) {
    for (Tuple& t : stream) t.timestamp += shift;
  }

  return {MergedArrivals(warm), MergedArrivals(steady), warm.condition};
}

void FeedBatched(Engine& engine, const std::vector<Tuple>& merged,
                 const std::vector<Segment>& segments) {
  for (const Segment& s : segments) {
    engine.PushBatch(s.side, std::span(merged).subspan(s.start, s.length));
  }
}

void CheckSteadyStateZeroAlloc(int num_streams) {
  const double s1 = num_streams > 3 ? 0.08 : 0.15;
  const TwoPhaseFeed feed = MakeFeed(num_streams, /*rate=*/20, s1);
  const std::vector<Segment> warm_segments = Segments(feed.warm);
  const std::vector<Segment> steady_segments = Segments(feed.steady);

  Engine::Options eopt;
  eopt.condition = feed.condition;  // ModSum: no equi-key index
  eopt.collect_results = false;
  // Push virtual-time sampling far past the feed so the measured region
  // takes no memory samples (sample storage is not per-event cost).
  eopt.sample_interval = SecondsToTicks(1000);
  Engine engine(eopt);

  ContinuousQuery q;
  q.name = "Qn";
  q.window = WindowSpec::TimeSeconds(1);
  std::vector<std::string> names = {"A", "B", "C", "D", "E"};
  names.resize(static_cast<size_t>(num_streams));
  q.stream_names = names;
  ASSERT_TRUE(engine.RegisterQuery(q).valid()) << engine.last_error();

  FeedBatched(engine, feed.warm, warm_segments);

  // Steady state: the whole lower-rate feed must not touch the heap.
  const uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  FeedBatched(engine, feed.steady, steady_segments);
  const uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations across "
      << feed.steady.size() << " steady-state events (" << num_streams
      << "-way)";
  EXPECT_GT(feed.steady.size(), 100u);  // the region actually measured work
  engine.Finish();
  EXPECT_GT(engine.Snapshot().results_delivered, 0u);
}

TEST(HotPathAllocTest, ThreeWaySteadyStateIsAllocationFree) {
  // 3-way: composite tails stay inline (3 constituents <= 4).
  CheckSteadyStateZeroAlloc(3);
}

TEST(HotPathAllocTest, FiveWaySteadyStateRecyclesArenaBlocks) {
  // 5-way: every composite tail spills past the inline capacity, so this
  // run proves spills recycle arena freelist blocks instead of reaching
  // the global heap.
  CheckSteadyStateZeroAlloc(5);
}

TEST(HotPathAllocTest, PerEventPushIsAllocationFreeToo) {
  // The scalar Push path shares the batched machinery (a push is a
  // degenerate one-event run); spot-check it stays allocation-free.
  const TwoPhaseFeed feed = MakeFeed(/*num_streams=*/2, /*rate=*/30, 0.1);

  Engine::Options eopt;
  eopt.condition = feed.condition;
  eopt.sample_interval = SecondsToTicks(1000);
  Engine engine(eopt);
  ContinuousQuery q;
  q.window = WindowSpec::TimeSeconds(1);
  ASSERT_TRUE(engine.RegisterQuery(q).valid()) << engine.last_error();

  for (const Tuple& t : feed.warm) engine.Push(t.side, t);
  const uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (const Tuple& t : feed.steady) engine.Push(t.side, t);
  const uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations across "
      << feed.steady.size() << " per-event pushes";
  engine.Finish();
}

}  // namespace
}  // namespace stateslice
