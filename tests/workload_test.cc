#include "src/query/workload.h"

#include <gtest/gtest.h>

#include <cmath>

namespace stateslice {
namespace {

TEST(ConditionForSelectivityTest, ResolvesPaperValuesExactly) {
  const JoinCondition c025 = ConditionForSelectivity(0.025);
  EXPECT_EQ(c025.mod, 40);
  EXPECT_EQ(c025.band, 1);
  const JoinCondition c1 = ConditionForSelectivity(0.1);
  EXPECT_EQ(c1.mod, 10);
  EXPECT_EQ(c1.band, 1);
  const JoinCondition c4 = ConditionForSelectivity(0.4);
  EXPECT_EQ(c4.mod, 5);
  EXPECT_EQ(c4.band, 2);
  const JoinCondition c5 = ConditionForSelectivity(0.5);
  EXPECT_EQ(c5.mod, 2);
  EXPECT_EQ(c5.band, 1);
}

TEST(ConditionForSelectivityTest, SelectivityMatchesRequest) {
  for (double s1 : {0.025, 0.1, 0.4, 0.5, 1.0}) {
    const JoinCondition c = ConditionForSelectivity(s1);
    EXPECT_NEAR(c.Selectivity(c.mod), s1, 1e-9);
  }
}

TEST(GenerateWorkloadTest, StreamsAreOrderedAndSided) {
  WorkloadSpec spec;
  spec.duration_s = 10;
  const Workload w = GenerateWorkload(spec);
  ASSERT_FALSE(w.stream_a.empty());
  ASSERT_FALSE(w.stream_b.empty());
  for (size_t i = 1; i < w.stream_a.size(); ++i) {
    EXPECT_LE(w.stream_a[i - 1].timestamp, w.stream_a[i].timestamp);
    EXPECT_EQ(w.stream_a[i].side, StreamSide::kA);
  }
  for (const Tuple& t : w.stream_b) {
    EXPECT_EQ(t.side, StreamSide::kB);
    EXPECT_LT(t.timestamp, SecondsToTicks(10.0));
  }
}

TEST(GenerateWorkloadTest, RateIsApproximatelyHonored) {
  WorkloadSpec spec;
  spec.rate_a = 50;
  spec.rate_b = 20;
  spec.duration_s = 100;
  spec.seed = 5;
  const Workload w = GenerateWorkload(spec);
  EXPECT_NEAR(static_cast<double>(w.stream_a.size()), 5000, 300);
  EXPECT_NEAR(static_cast<double>(w.stream_b.size()), 2000, 200);
}

TEST(GenerateWorkloadTest, DeterministicForSeed) {
  WorkloadSpec spec;
  spec.duration_s = 5;
  spec.seed = 42;
  const Workload w1 = GenerateWorkload(spec);
  const Workload w2 = GenerateWorkload(spec);
  ASSERT_EQ(w1.stream_a.size(), w2.stream_a.size());
  for (size_t i = 0; i < w1.stream_a.size(); ++i) {
    EXPECT_EQ(w1.stream_a[i].timestamp, w2.stream_a[i].timestamp);
    EXPECT_EQ(w1.stream_a[i].key, w2.stream_a[i].key);
  }
}

TEST(GenerateWorkloadTest, EmpiricalJoinSelectivityMatchesS1) {
  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = 40;
  spec.duration_s = 50;
  spec.join_selectivity = 0.1;
  spec.seed = 11;
  const Workload w = GenerateWorkload(spec);
  uint64_t matches = 0;
  uint64_t pairs = 0;
  for (size_t i = 0; i < w.stream_a.size(); i += 3) {
    for (size_t j = 0; j < w.stream_b.size(); j += 3) {
      ++pairs;
      if (w.condition.Match(w.stream_a[i], w.stream_b[j])) ++matches;
    }
  }
  EXPECT_NEAR(static_cast<double>(matches) / pairs, 0.1, 0.01);
}

TEST(GenerateWorkloadTest, FixedRateModeIsEvenlySpaced) {
  WorkloadSpec spec;
  spec.poisson = false;
  spec.rate_a = 10;
  spec.duration_s = 2;
  const Workload w = GenerateWorkload(spec);
  ASSERT_GE(w.stream_a.size(), 19u);
  const Duration gap = w.stream_a[1].timestamp - w.stream_a[0].timestamp;
  for (size_t i = 2; i < w.stream_a.size(); ++i) {
    EXPECT_EQ(w.stream_a[i].timestamp - w.stream_a[i - 1].timestamp, gap);
  }
}

TEST(Section72WindowsTest, MatchesTable3) {
  EXPECT_EQ(Section72Windows(WindowDistribution3::kMostlySmall),
            (std::vector<double>{5, 10, 30}));
  EXPECT_EQ(Section72Windows(WindowDistribution3::kUniform),
            (std::vector<double>{10, 20, 30}));
  EXPECT_EQ(Section72Windows(WindowDistribution3::kMostlyLarge),
            (std::vector<double>{20, 25, 30}));
}

TEST(Section72QueriesTest, OnlyQ2AndQ3Filtered) {
  const auto queries =
      MakeSection72Queries(WindowDistribution3::kUniform, 0.5);
  ASSERT_EQ(queries.size(), 3u);
  EXPECT_TRUE(queries[0].selection_a.IsTrue());
  EXPECT_FALSE(queries[1].selection_a.IsTrue());
  EXPECT_FALSE(queries[2].selection_a.IsTrue());
  EXPECT_NEAR(queries[1].selection_a.selectivity(), 0.5, 1e-12);
}

TEST(Section73WindowsTest, MatchesTable4At12Queries) {
  EXPECT_EQ(Section73Windows(WindowDistributionN::kUniformN, 12),
            (std::vector<double>{2.5, 5, 7.5, 10, 12.5, 15, 17.5, 20, 22.5,
                                 25, 27.5, 30}));
  EXPECT_EQ(Section73Windows(WindowDistributionN::kMostlySmallN, 12),
            (std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 30}));
  EXPECT_EQ(Section73Windows(WindowDistributionN::kSmallLargeN, 12),
            (std::vector<double>{1, 2, 3, 4, 5, 6, 25, 26, 27, 28, 29, 30}));
}

TEST(Section73WindowsTest, ScalesToOtherQueryCounts) {
  for (int n : {4, 24, 36}) {
    for (auto dist : {WindowDistributionN::kUniformN,
                      WindowDistributionN::kMostlySmallN,
                      WindowDistributionN::kSmallLargeN}) {
      const auto windows = Section73Windows(dist, n);
      EXPECT_EQ(windows.size(), static_cast<size_t>(n)) << ToString(dist);
      for (size_t i = 1; i < windows.size(); ++i) {
        EXPECT_LE(windows[i - 1], windows[i]);
      }
      EXPECT_LE(windows.back(), 30.0);
    }
  }
}

TEST(Section73QueriesTest, AllUnfiltered) {
  const auto queries =
      MakeSection73Queries(WindowDistributionN::kSmallLargeN, 12);
  for (const auto& q : queries) {
    EXPECT_TRUE(q.Unfiltered());
  }
}

}  // namespace
}  // namespace stateslice
