#include "src/operators/join_state.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace stateslice {
namespace {

using ::stateslice::testing::A;

// Emission callback that appends each match to *out (the callback-form
// replacement for the removed copy-out Probe overloads).
auto Collect(std::vector<Tuple>* out) {
  return [out](const Tuple& e) { out->push_back(e); };
}

TEST(JoinStateTest, InsertKeepsArrivalOrder) {
  JoinState s(WindowSpec::TimeSeconds(10));
  s.Insert(A(1, 1.0));
  s.Insert(A(2, 2.0));
  s.Insert(A(3, 2.0));  // ties allowed
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.Oldest().seq, 1u);
  EXPECT_EQ(s.Newest().seq, 3u);
}

TEST(JoinStateDeathTest, OutOfOrderInsertAborts) {
  JoinState s(WindowSpec::TimeSeconds(10));
  s.Insert(A(1, 5.0));
  EXPECT_DEATH(s.Insert(A(2, 4.0)), "CHECK failed");
}

TEST(JoinStateTest, TimePurgeIsHalfOpen) {
  // Section 2 semantics: alive iff now - ts < extent. A tuple exactly at
  // the window edge is purged.
  JoinState s(WindowSpec::TimeSeconds(2));
  s.Insert(A(1, 0.0));
  s.Insert(A(2, 1.0));
  std::vector<Tuple> purged;
  s.Purge(SecondsToTicks(2.0), &purged);
  ASSERT_EQ(purged.size(), 1u);
  EXPECT_EQ(purged[0].seq, 1u);  // distance 2 >= 2 -> purged
  EXPECT_EQ(s.size(), 1u);       // distance 1 < 2 -> alive
}

TEST(JoinStateTest, PurgeReturnsComparisonCount) {
  JoinState s(WindowSpec::TimeSeconds(2));
  s.Insert(A(1, 0.0));
  s.Insert(A(2, 0.5));
  s.Insert(A(3, 5.0));
  // Two expired pops + one comparison that found a live tuple.
  EXPECT_EQ(s.Purge(SecondsToTicks(6.0), nullptr), 3u);
  EXPECT_EQ(s.size(), 1u);
}

TEST(JoinStateTest, PurgeOnEmptyCostsNothing) {
  JoinState s(WindowSpec::TimeSeconds(2));
  EXPECT_EQ(s.Purge(SecondsToTicks(10.0), nullptr), 0u);
}

TEST(JoinStateTest, PurgeCollectsOldestFirst) {
  JoinState s(WindowSpec::TimeSeconds(1));
  s.Insert(A(1, 0.0));
  s.Insert(A(2, 0.1));
  s.Insert(A(3, 0.2));
  std::vector<Tuple> purged;
  s.Purge(SecondsToTicks(5.0), &purged);
  ASSERT_EQ(purged.size(), 3u);
  EXPECT_EQ(purged[0].seq, 1u);
  EXPECT_EQ(purged[1].seq, 2u);
  EXPECT_EQ(purged[2].seq, 3u);
}

TEST(JoinStateTest, CountWindowEvictsOnInsert) {
  JoinState s(WindowSpec::Count(2));
  std::vector<Tuple> evicted;
  s.Insert(A(1, 1.0), &evicted);
  s.Insert(A(2, 2.0), &evicted);
  EXPECT_TRUE(evicted.empty());
  s.Insert(A(3, 3.0), &evicted);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].seq, 1u);
  EXPECT_EQ(s.size(), 2u);
}

TEST(JoinStateTest, CountWindowIgnoresTimePurge) {
  JoinState s(WindowSpec::Count(3));
  s.Insert(A(1, 0.0));
  EXPECT_EQ(s.Purge(SecondsToTicks(100.0), nullptr), 0u);
  EXPECT_EQ(s.size(), 1u);
}

TEST(JoinStateTest, ProbeEquiKeyMatchesAndCharges) {
  JoinState s(WindowSpec::TimeSeconds(10));
  s.Insert(A(1, 1.0, /*key=*/5));
  s.Insert(A(2, 2.0, /*key=*/7));
  s.Insert(A(3, 3.0, /*key=*/5));
  std::vector<Tuple> matches;
  const Tuple probe = testing::B(1, 4.0, /*key=*/5);
  const ProbeStats stats = s.Probe(probe, JoinCondition::EquiKey(), Collect(&matches));
  // The logical charge is the whole state size (Section 3 cost model),
  // however the probe executes.
  EXPECT_EQ(stats.comparisons, 3u);
  EXPECT_EQ(stats.entries_visited, 3u);  // nested loop: no index enabled
  EXPECT_EQ(stats.key_lookups, 0u);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].seq, 1u);  // oldest first
  EXPECT_EQ(matches[1].seq, 3u);
}

TEST(JoinStateTest, IndexedProbeMatchesAndCharges) {
  JoinState s(WindowSpec::TimeSeconds(10));
  s.EnableKeyIndex();
  s.Insert(A(1, 1.0, /*key=*/5));
  s.Insert(A(2, 2.0, /*key=*/7));
  s.Insert(A(3, 3.0, /*key=*/5));
  std::vector<Tuple> matches;
  const Tuple probe = testing::B(1, 4.0, /*key=*/5);
  const ProbeStats stats = s.Probe(probe, JoinCondition::EquiKey(), Collect(&matches));
  // Logical charge unchanged; physical work is one bucket lookup plus the
  // two matching entries.
  EXPECT_EQ(stats.comparisons, 3u);
  EXPECT_EQ(stats.key_lookups, 1u);
  EXPECT_EQ(stats.entries_visited, 2u);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].seq, 1u);  // oldest first, same as nested loop
  EXPECT_EQ(matches[1].seq, 3u);
  s.CheckIndexConsistency();
}

TEST(JoinStateTest, IndexedProbeMissesCheaply) {
  JoinState s(WindowSpec::TimeSeconds(10));
  s.EnableKeyIndex();
  for (int i = 0; i < 100; ++i) {
    s.Insert(A(static_cast<uint32_t>(i + 1), 0.01 * i, /*key=*/i));
  }
  std::vector<Tuple> matches;
  const ProbeStats stats =
      s.Probe(testing::B(1, 2.0, /*key=*/1234), JoinCondition::EquiKey(),
              Collect(&matches));
  EXPECT_EQ(stats.comparisons, 100u);  // logical unit: full state
  EXPECT_EQ(stats.key_lookups, 1u);
  EXPECT_EQ(stats.entries_visited, 0u);  // physical: empty bucket
  EXPECT_TRUE(matches.empty());
}

TEST(JoinStateTest, IndexSurvivesPurgeLazily) {
  JoinState s(WindowSpec::TimeSeconds(2));
  s.EnableKeyIndex();
  s.Insert(A(1, 0.0, /*key=*/5));
  s.Insert(A(2, 1.0, /*key=*/5));
  s.Insert(A(3, 2.5, /*key=*/5));
  std::vector<Tuple> purged;
  s.Purge(SecondsToTicks(3.0), &purged);  // expires seq 1 and 2
  ASSERT_EQ(purged.size(), 2u);
  std::vector<Tuple> matches;
  s.Probe(testing::B(1, 3.0, /*key=*/5), JoinCondition::EquiKey(), Collect(&matches));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].seq, 3u);
  s.CheckIndexConsistency();  // the probe pruned the stale bucket ids
}

TEST(JoinStateTest, IndexedModSumFallsBackToNestedLoop) {
  JoinState s(WindowSpec::TimeSeconds(10));
  s.EnableKeyIndex();
  s.Insert(A(1, 1.0, /*key=*/0));
  s.Insert(A(2, 2.0, /*key=*/1));
  std::vector<Tuple> matches;
  const ProbeStats stats = s.Probe(testing::B(1, 3.0, /*key=*/1),
                                   JoinCondition::ModSum(2, 1), Collect(&matches));
  EXPECT_EQ(stats.key_lookups, 0u);      // condition-kind dispatch
  EXPECT_EQ(stats.entries_visited, 2u);  // scanned the whole state
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].seq, 2u);
}

TEST(JoinStateTest, IndexFollowsCountEviction) {
  JoinState s(WindowSpec::Count(2));
  s.EnableKeyIndex();
  std::vector<Tuple> evicted;
  for (int i = 0; i < 10; ++i) {
    s.Insert(A(static_cast<uint32_t>(i + 1), 1.0 * i, /*key=*/i % 2),
             &evicted);
  }
  EXPECT_EQ(s.size(), 2u);
  s.CheckIndexConsistency();
  std::vector<Tuple> matches;
  s.Probe(testing::B(1, 20.0, /*key=*/1), JoinCondition::EquiKey(), Collect(&matches));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].seq, 10u);  // only the live key=1 entry
}

TEST(JoinStateTest, IndexRebuildsAfterHeavyChurn) {
  // Push enough entries through a tiny window that the lazy stale-id pile
  // crosses the compaction threshold repeatedly.
  JoinState s(WindowSpec::TimeSeconds(1));
  s.EnableKeyIndex();
  for (int i = 0; i < 2000; ++i) {
    s.Insert(A(static_cast<uint32_t>(i + 1), 0.1 * i, /*key=*/i % 8));
    s.Purge(SecondsToTicks(0.1 * i), nullptr);
  }
  s.CheckIndexConsistency();
  std::vector<Tuple> matches;
  const Tuple probe = testing::B(1, 0.1 * 1999, /*key=*/1999 % 8);
  s.Probe(probe, JoinCondition::EquiKey(), Collect(&matches));
  EXPECT_FALSE(matches.empty());
  s.CheckIndexConsistency();
}

TEST(JoinStateTest, ProbeModSumCondition) {
  JoinState s(WindowSpec::TimeSeconds(10));
  s.Insert(A(1, 1.0, /*key=*/0));
  s.Insert(A(2, 2.0, /*key=*/1));
  std::vector<Tuple> matches;
  // (ka + kb) % 2 < 1: with kb = 1, matches only ka = 1.
  s.Probe(testing::B(1, 3.0, /*key=*/1), JoinCondition::ModSum(2, 1),
          Collect(&matches));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].seq, 2u);
}

TEST(JoinStateTest, TakeAllEmptiesState) {
  JoinState s(WindowSpec::TimeSeconds(10));
  s.Insert(A(1, 1.0));
  s.Insert(A(2, 2.0));
  const std::vector<Tuple> all = s.TakeAll();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].seq, 1u);
  EXPECT_TRUE(s.empty());
}

TEST(JoinStateTest, PrependOlderRestoresOrder) {
  // Slice-merge migration: the right (older) slice's tuples go in front.
  JoinState s(WindowSpec::TimeSeconds(10));
  s.Insert(A(3, 5.0));
  s.PrependOlder({A(1, 1.0), A(2, 2.0)});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.Oldest().seq, 1u);
  EXPECT_EQ(s.Newest().seq, 3u);
}

TEST(JoinStateDeathTest, PrependNewerAborts) {
  JoinState s(WindowSpec::TimeSeconds(10));
  s.Insert(A(1, 1.0));
  EXPECT_DEATH(s.PrependOlder({A(2, 5.0)}), "CHECK failed");
}

TEST(JoinStateTest, SetWindowTakesEffectOnNextPurge) {
  JoinState s(WindowSpec::TimeSeconds(10));
  s.Insert(A(1, 0.0));
  s.Insert(A(2, 4.0));
  // Shrink the window (online split migration): next purge applies it.
  s.set_window(WindowSpec::TimeSeconds(2));
  std::vector<Tuple> purged;
  s.Purge(SecondsToTicks(5.0), &purged);
  ASSERT_EQ(purged.size(), 1u);
  EXPECT_EQ(purged[0].seq, 1u);
  EXPECT_EQ(s.size(), 1u);
}

}  // namespace
}  // namespace stateslice
