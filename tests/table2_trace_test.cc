// Reproduction of Table 2: step-by-step execution of a chain of two one-way
// sliced window joins, J1 = A[0,w1] s|>< B and J2 = A[w1,w2] s|>< B with
// w1 = 2 s, w2 = 4 s, one tuple arriving per second, and Cartesian match
// semantics ("every a tuple will match every b tuple").
//
// Boundary semantics note: the paper's formal definitions use half-open
// windows (join iff Tb - Ta < W), but the Table 2 trace treats the window
// edge inclusively (a2 with Tb1 - Ta2 = 2 s = w1 still joins b1). We keep
// the definitions' half-open semantics in the operator and reproduce the
// trace exactly by using window extents of w + 1 tick, which makes distance
// == w fall inside the slice — the trace below is then identical to the
// paper's, including every output row.
//
// Known inconsistency in the paper's table: at T=8 the paper shows a3 still
// in J1's state yet at T=9/T=10 a3 appears in the queue although only J2
// ran and no B tuple arrived. With the paper's stated cross-purge-only
// discipline (footnote 1), a3 must remain in J1 until a B male arrives; our
// trace asserts that behavior. All Output-column entries match the paper.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/operators/sliced_window_join.h"
#include "tests/test_util.h"

namespace stateslice {
namespace {

using ::stateslice::testing::A;
using ::stateslice::testing::B;

// Window extents: w + 1 tick to emulate the trace's inclusive boundaries.
constexpr Duration kW1 = 2 * kTicksPerSecond + 1;
constexpr Duration kW2 = 4 * kTicksPerSecond + 1;

class Table2Trace : public ::testing::Test {
 protected:
  Table2Trace()
      : j1_("J1", SliceRange{WindowKind::kTime, 0, kW1}, Options()),
        j2_("J2", SliceRange{WindowKind::kTime, kW1, kW2}, Options()),
        queue_("J1->J2"),
        out1_("J1.results"),
        out2_("J2.results") {
    j1_.AttachOutput(SlicedWindowJoin::kResultPort, &out1_);
    j1_.AttachOutput(SlicedWindowJoin::kNextPort, &queue_);
    j2_.AttachOutput(SlicedWindowJoin::kResultPort, &out2_);
    // J2 is the chain tail: its next-port is unattached (tuples discarded).
  }

  static SlicedWindowJoin::Options Options() {
    SlicedWindowJoin::Options o;
    o.mode = SlicedWindowJoin::Mode::kOneWayA;
    o.condition = JoinCondition::ModSum(1, 1);  // Cartesian semantics
    o.punctuate_results = false;
    return o;
  }

  // Runs J1 on one externally arriving tuple.
  void RunJ1(const Tuple& t) { j1_.Process(t, 0); }

  // Runs J2 on the next queued event (the paper's "J2 selected to run").
  void RunJ2() {
    ASSERT_FALSE(queue_.empty());
    j2_.Process(queue_.Pop(), 0);
  }

  // State of a stream-A slice as "[a3,a2,a1]" (newest first, as printed in
  // Table 2).
  static std::string StateString(const SlicedWindowJoin& j) {
    std::string s = "[";
    const auto& tuples = j.state_a().tuples();
    for (auto it = tuples.rbegin(); it != tuples.rend(); ++it) {
      if (it != tuples.rbegin()) s += ",";
      s += it->DebugId();
    }
    return s + "]";
  }

  // Queue contents as "[b2,a2,b1,a1]" (newest first).
  std::string QueueString() const {
    std::vector<std::string> ids;
    EventQueue& q = const_cast<EventQueue&>(queue_);
    std::vector<Event> events;
    while (!q.empty()) events.push_back(q.Pop());
    for (const Event& e : events) q.Push(e);
    std::string s = "[";
    for (auto it = events.rbegin(); it != events.rend(); ++it) {
      if (it != events.rbegin()) s += ",";
      s += std::get<Tuple>(*it).DebugId();
    }
    return s + "]";
  }

  // Drains new results from a queue as "(a2,b1)(a3,b1)".
  static std::string TakeOutputs(EventQueue* q) {
    std::string s;
    while (!q->empty()) {
      const Event e = q->Pop();
      if (!IsJoinResult(e)) continue;
      const JoinResult& r = std::get<JoinResult>(e);
      s += "(" + r.a.DebugId() + "," + r.b.DebugId() + ")";
    }
    return s;
  }

  SlicedWindowJoin j1_;
  SlicedWindowJoin j2_;
  EventQueue queue_;
  EventQueue out1_;
  EventQueue out2_;
};

TEST_F(Table2Trace, ReproducesThePaperRowByRow) {
  // T=1: a1 arrives, J1 runs.
  RunJ1(A(1, 1.0));
  EXPECT_EQ(StateString(j1_), "[a1]");
  EXPECT_EQ(QueueString(), "[]");
  EXPECT_EQ(StateString(j2_), "[]");
  EXPECT_EQ(TakeOutputs(&out1_), "");

  // T=2: a2 arrives.
  RunJ1(A(2, 2.0));
  EXPECT_EQ(StateString(j1_), "[a2,a1]");

  // T=3: a3 arrives.
  RunJ1(A(3, 3.0));
  EXPECT_EQ(StateString(j1_), "[a3,a2,a1]");

  // T=4: b1 arrives. a1 is purged (distance 3 s > w1), then b1 joins the
  // remaining state and propagates: Output (a2,b1), (a3,b1).
  RunJ1(B(1, 4.0));
  EXPECT_EQ(StateString(j1_), "[a3,a2]");
  EXPECT_EQ(QueueString(), "[b1,a1]");
  EXPECT_EQ(TakeOutputs(&out1_), "(a2,b1)(a3,b1)");

  // T=5: b2 arrives. a2 purged (distance 3 s), join with a3.
  RunJ1(B(2, 5.0));
  EXPECT_EQ(StateString(j1_), "[a3]");
  EXPECT_EQ(QueueString(), "[b2,a2,b1,a1]");
  EXPECT_EQ(TakeOutputs(&out1_), "(a3,b2)");

  // T=6: J2 runs, consuming a1 into its state.
  RunJ2();
  EXPECT_EQ(StateString(j2_), "[a1]");
  EXPECT_EQ(QueueString(), "[b2,a2,b1]");

  // T=7: J2 runs, consuming b1: joins a1 (distance 3 s in (2,4]).
  RunJ2();
  EXPECT_EQ(QueueString(), "[b2,a2]");
  EXPECT_EQ(TakeOutputs(&out2_), "(a1,b1)");

  // T=8: a4 arrives at J1. Cross-purge only (footnote 1): a3 stays until a
  // B male passes, matching the paper's T=8 row.
  RunJ1(A(4, 8.0));
  EXPECT_EQ(StateString(j1_), "[a4,a3]");
  EXPECT_EQ(QueueString(), "[b2,a2]");

  // T=9: J2 runs, consuming a2.
  RunJ2();
  EXPECT_EQ(StateString(j2_), "[a2,a1]");
  EXPECT_EQ(QueueString(), "[b2]");

  // T=10: J2 runs, consuming b2: a1 (distance 4 s) and a2 (3 s) both join —
  // the paper's final output row.
  RunJ2();
  EXPECT_EQ(TakeOutputs(&out2_), "(a1,b2)(a2,b2)");
  EXPECT_EQ(QueueString(), "[]");
}

TEST_F(Table2Trace, ChainUnionEqualsRegularJoinOutputs) {
  // Theorem 1 on this tiny trace: J1 ∪ J2 outputs = A[w2] |>< B outputs.
  std::vector<Tuple> arrivals = {A(1, 1.0), A(2, 2.0), A(3, 3.0),
                                 B(1, 4.0), B(2, 5.0), A(4, 8.0)};
  for (const Tuple& t : arrivals) {
    RunJ1(t);
    // Drain the chain completely after each arrival (pipelining order does
    // not affect the union of outputs).
    while (!queue_.empty()) RunJ2();
  }
  std::string chain_outputs = TakeOutputs(&out1_) + TakeOutputs(&out2_);

  // Reference: regular one-way join with window w2 (+1 tick, inclusive).
  SlidingWindowJoin::Options ropt;
  ropt.mode = SlidingWindowJoin::Mode::kOneWayA;
  ropt.condition = JoinCondition::ModSum(1, 1);
  SlidingWindowJoin regular("ref", WindowSpec{WindowKind::kTime, kW2},
                            WindowSpec{WindowKind::kTime, kW2}, ropt);
  EventQueue ref_out("ref.out");
  regular.AttachOutput(SlidingWindowJoin::kResultPort, &ref_out);
  for (const Tuple& t : arrivals) regular.Process(t, 0);

  // Compare as multisets of pair keys.
  std::multiset<std::string> ref_set;
  for (const Event& e : testing::DrainQueue(&ref_out)) {
    if (IsJoinResult(e)) ref_set.insert(JoinPairKey(std::get<JoinResult>(e)));
  }
  std::string expected = "(a2,b1)(a3,b1)(a3,b2)(a1,b1)(a1,b2)(a2,b2)";
  EXPECT_EQ(chain_outputs, expected);
  EXPECT_EQ(ref_set.size(), 6u);
}

}  // namespace
}  // namespace stateslice
