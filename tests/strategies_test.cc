// Cross-strategy integration property: every sharing strategy — unshared,
// selection pull-up, stream partition with selection push-down, and the
// state-slice chain (Mem-Opt and CPU-Opt) — must deliver exactly the same
// result multiset to every query, and that multiset must equal the oracle.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/stateslice.h"
#include "tests/test_util.h"

namespace stateslice {
namespace {

using ::stateslice::testing::OracleJoin;
using ::stateslice::testing::RunPlan;

struct StrategyCase {
  std::string name;
  WindowDistribution3 dist = WindowDistribution3::kUniform;
  double s_sigma = 0.5;
  double s1 = 0.1;
  double rate = 25.0;
  double duration_s = 10.0;
  uint64_t seed = 1;
};

class StrategiesTest : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(StrategiesTest, AllStrategiesAgreeWithOracle) {
  const StrategyCase& c = GetParam();
  // Scaled-down Section 7.2 workload: Q1 unfiltered, Q2/Q3 with σ.
  auto queries = MakeSection72Queries(c.dist, c.s_sigma);
  // Shrink windows 5x so short test runs still exercise full purging.
  for (auto& q : queries) q.window.extent /= 5;

  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = c.rate;
  spec.duration_s = c.duration_s;
  spec.join_selectivity = c.s1;
  spec.seed = c.seed;
  const Workload workload = GenerateWorkload(spec);

  BuildOptions options;
  options.condition = workload.condition;
  options.collect_results = true;

  ChainCostParams params;
  params.lambda_a = params.lambda_b = c.rate;
  params.s1 = c.s1;

  BuiltPlan unshared = BuildUnsharedPlans(queries, options);
  BuiltPlan pullup = BuildPullUpPlan(queries, options);
  BuiltPlan pushdown = BuildPushDownPlan(queries, options);
  BuiltPlan mem_opt =
      BuildStateSlicePlan(queries, BuildMemOptChain(queries), options);
  BuiltPlan cpu_opt = BuildStateSlicePlan(
      queries, BuildCpuOptChain(queries, params), options);

  RunPlan(&unshared, workload);
  RunPlan(&pullup, workload);
  RunPlan(&pushdown, workload);
  RunPlan(&mem_opt, workload);
  RunPlan(&cpu_opt, workload);

  for (const ContinuousQuery& q : queries) {
    const auto expected = OracleJoin(workload.stream_a, workload.stream_b,
                                     workload.condition, q);
    EXPECT_EQ(unshared.collectors[q.id]->ResultMultiset(), expected)
        << "unshared " << q.DebugString();
    EXPECT_EQ(pullup.collectors[q.id]->ResultMultiset(), expected)
        << "pullup " << q.DebugString();
    EXPECT_EQ(pushdown.collectors[q.id]->ResultMultiset(), expected)
        << "pushdown " << q.DebugString();
    EXPECT_EQ(mem_opt.collectors[q.id]->ResultMultiset(), expected)
        << "mem_opt " << q.DebugString();
    EXPECT_EQ(cpu_opt.collectors[q.id]->ResultMultiset(), expected)
        << "cpu_opt " << q.DebugString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StrategiesTest,
    ::testing::Values(
        StrategyCase{"uniform_mid", WindowDistribution3::kUniform, 0.5, 0.1},
        StrategyCase{"mostly_small", WindowDistribution3::kMostlySmall, 0.5,
                     0.1},
        StrategyCase{"mostly_large", WindowDistribution3::kMostlyLarge, 0.5,
                     0.1},
        StrategyCase{"low_sigma", WindowDistribution3::kUniform, 0.2, 0.1},
        StrategyCase{"high_sigma", WindowDistribution3::kUniform, 0.8, 0.1},
        StrategyCase{"low_s1", WindowDistribution3::kUniform, 0.5, 0.025},
        StrategyCase{"high_s1", WindowDistribution3::kUniform, 0.5, 0.4,
                     /*rate=*/20.0},
        StrategyCase{"other_seed", WindowDistribution3::kUniform, 0.5, 0.1,
                     25.0, 10.0, /*seed=*/99}),
    [](const ::testing::TestParamInfo<StrategyCase>& info) {
      return info.param.name;
    });

TEST(StrategySinksTest, OrderedDeliveryEverywhere) {
  auto queries = MakeSection72Queries(WindowDistribution3::kUniform, 0.5);
  for (auto& q : queries) q.window.extent /= 5;
  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = 25;
  spec.duration_s = 10;
  const Workload workload = GenerateWorkload(spec);
  BuildOptions options;
  options.condition = workload.condition;
  options.collect_results = true;

  BuiltPlan mem_opt =
      BuildStateSlicePlan(queries, BuildMemOptChain(queries), options);
  RunPlan(&mem_opt, workload);
  for (const ContinuousQuery& q : queries) {
    EXPECT_TRUE(mem_opt.collectors[q.id]->saw_ordered_stream())
        << q.DebugString();
  }

  BuiltPlan pushdown = BuildPushDownPlan(queries, options);
  RunPlan(&pushdown, workload);
  for (const ContinuousQuery& q : queries) {
    EXPECT_TRUE(pushdown.collectors[q.id]->saw_ordered_stream())
        << q.DebugString();
  }
}

TEST(PushDownDegenerateTest, NoSelectionsFallsBackToSharedJoin) {
  std::vector<ContinuousQuery> queries(2);
  queries[0] = {0, "Q1", WindowSpec::TimeSeconds(2), {}, {}};
  queries[1] = {1, "Q2", WindowSpec::TimeSeconds(4), {}, {}};
  WorkloadSpec spec;
  spec.duration_s = 8;
  const Workload workload = GenerateWorkload(spec);
  BuildOptions options;
  options.condition = workload.condition;
  options.collect_results = true;
  BuiltPlan plan = BuildPushDownPlan(queries, options);
  RunPlan(&plan, workload);
  for (const ContinuousQuery& q : queries) {
    EXPECT_EQ(plan.collectors[q.id]->ResultMultiset(),
              OracleJoin(workload.stream_a, workload.stream_b,
                         workload.condition, q))
        << q.DebugString();
  }
}

TEST(PushDownDegenerateTest, AllFilteredSharesSelectionBelowJoin) {
  std::vector<ContinuousQuery> queries(2);
  queries[0] = {0, "Q1", WindowSpec::TimeSeconds(2),
                Predicate::WithSelectivity(0.4), {}};
  queries[1] = {1, "Q2", WindowSpec::TimeSeconds(4),
                Predicate::WithSelectivity(0.4), {}};
  WorkloadSpec spec;
  spec.duration_s = 8;
  const Workload workload = GenerateWorkload(spec);
  BuildOptions options;
  options.condition = workload.condition;
  options.collect_results = true;
  BuiltPlan plan = BuildPushDownPlan(queries, options);
  RunPlan(&plan, workload);
  for (const ContinuousQuery& q : queries) {
    EXPECT_EQ(plan.collectors[q.id]->ResultMultiset(),
              OracleJoin(workload.stream_a, workload.stream_b,
                         workload.condition, q))
        << q.DebugString();
  }
}

TEST(StrategyCostTest, StateSliceUsesNoMoreMemoryThanAlternatives) {
  // The measured analogue of Fig. 17: average state tuples of the chain
  // must not exceed pull-up or push-down on the same workload.
  auto queries = MakeSection72Queries(WindowDistribution3::kUniform, 0.5);
  for (auto& q : queries) q.window.extent /= 5;
  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = 40;
  spec.duration_s = 15;
  const Workload workload = GenerateWorkload(spec);
  BuildOptions options;
  options.condition = workload.condition;

  BuiltPlan pullup = BuildPullUpPlan(queries, options);
  BuiltPlan pushdown = BuildPushDownPlan(queries, options);
  BuiltPlan sliced =
      BuildStateSlicePlan(queries, BuildMemOptChain(queries), options);
  const double warmup = SecondsToTicks(6.0);
  const double m1 = RunPlan(&pullup, workload).AvgStateTuples(warmup);
  const double m2 = RunPlan(&pushdown, workload).AvgStateTuples(warmup);
  const double m3 = RunPlan(&sliced, workload).AvgStateTuples(warmup);
  EXPECT_LE(m3, m1 + 1e-9);
  EXPECT_LE(m3, m2 + 1e-9);
}

}  // namespace
}  // namespace stateslice
