// Positive side of the compile-time stream bound: StreamCountBound<N>
// passes N through unchanged for every legal N and is usable in constant
// expressions. The negative side (N > kMaxStreams fails to compile) lives
// in tests/compile_fail/stream_bound_exceeded_fail.cc.
#include <gtest/gtest.h>

#include "src/common/tuple.h"

namespace stateslice {
namespace {

TEST(StaticBoundsTest, StreamCountBoundPassesLegalCountsThrough) {
  EXPECT_EQ(StreamCountBound<2>::value, 2);
  EXPECT_EQ(StreamCountBound<3>::value, 3);
  EXPECT_EQ(StreamCountBound<kMaxStreams>::value, kMaxStreams);
}

TEST(StaticBoundsTest, StreamCountBoundIsAConstantExpression) {
  // Usable as an array extent — the whole point of a compile-time bound.
  int per_stream[StreamCountBound<kMaxStreams>::value] = {};
  per_stream[kMaxStreams - 1] = 1;
  EXPECT_EQ(per_stream[kMaxStreams - 1], 1);
  static_assert(StreamCountBound<4>::value == 4);
}

TEST(StaticBoundsTest, QueryBoundCoversStreamBound) {
  // Lineage bitmaps are per-query; every stream can host at least one
  // query, so the query bound must not be the tighter of the two.
  static_assert(kMaxQueries >= kMaxStreams);
  EXPECT_GE(kMaxQueries, kMaxStreams);
}

}  // namespace
}  // namespace stateslice
