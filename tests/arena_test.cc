// Arena + TailVec unit coverage and the arena epoch contract end to end:
// spilled composite tails draw from the ambient plan arena, recycled blocks
// are reused, callback-side copies are suspended onto the global heap so
// they may outlive the plan, and engine churn (ChainMigrator splits and
// drain-flush rebuilds) never leaves a result pointing into a dead arena.
#include "src/common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "tests/test_util.h"

namespace stateslice {
namespace {

using ::stateslice::testing::A;

TEST(ArenaTest, AllocatesAlignedBlocksAndCounts) {
  Arena arena;
  void* p = arena.Allocate(40);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
  EXPECT_EQ(arena.blocks_outstanding(), 1u);
  EXPECT_EQ(arena.total_allocations(), 1u);
  EXPECT_GT(arena.bytes_reserved(), 0u);
  std::memset(p, 0xab, 40);  // the block must be writable end to end
  arena.Deallocate(p, 40);
  EXPECT_EQ(arena.blocks_outstanding(), 0u);
}

TEST(ArenaTest, RecyclesFreedBlocksBySizeClass) {
  Arena arena;
  void* small = arena.Allocate(40);    // class 64
  void* large = arena.Allocate(200);   // class 256
  arena.Deallocate(small, 40);
  arena.Deallocate(large, 200);
  const size_t reserved = arena.bytes_reserved();
  // Same-class requests pop the freelist (LIFO) instead of bumping the
  // chunk: the exact blocks come back and no new chunk bytes are reserved.
  EXPECT_EQ(arena.Allocate(60), small);   // any size in class 64
  EXPECT_EQ(arena.Allocate(129), large);  // any size in class 256
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.total_allocations(), 4u);
}

TEST(ArenaTest, ChunksGrowUntilRequestsFit) {
  Arena arena;
  std::vector<void*> blocks;
  for (int i = 0; i < 1000; ++i) blocks.push_back(arena.Allocate(256));
  EXPECT_GE(arena.bytes_reserved(), 1000u * 256u);
  EXPECT_EQ(arena.blocks_outstanding(), 1000u);
  for (void* b : blocks) arena.Deallocate(b, 256);
  EXPECT_EQ(arena.blocks_outstanding(), 0u);
  // Epoch reclamation: chunk bytes stay reserved until the arena dies.
  EXPECT_GE(arena.bytes_reserved(), 1000u * 256u);
}

TEST(ArenaScopeTest, NestsAndSuspends) {
  EXPECT_EQ(CurrentArena(), nullptr);
  Arena outer_arena, inner_arena;
  {
    ArenaScope outer(&outer_arena);
    EXPECT_EQ(CurrentArena(), &outer_arena);
    {
      ArenaScope inner(&inner_arena);
      EXPECT_EQ(CurrentArena(), &inner_arena);
      {
        // nullptr suspends: copies fall back to the global heap.
        ArenaScope suspend(nullptr);
        EXPECT_EQ(CurrentArena(), nullptr);
      }
      EXPECT_EQ(CurrentArena(), &inner_arena);
    }
    EXPECT_EQ(CurrentArena(), &outer_arena);
  }
  EXPECT_EQ(CurrentArena(), nullptr);
}

TEST(TailVecTest, SpillDrawsFromAmbientArenaAndReturnsBlock) {
  Arena arena;
  {
    ArenaScope scope(&arena);
    TailVec v;
    for (uint32_t i = 0; i < TailVec::kInlineCapacity; ++i) {
      v.push_back(A(i, 1.0));
    }
    EXPECT_FALSE(v.spilled());
    EXPECT_EQ(arena.blocks_outstanding(), 0u);  // inline: no arena traffic
    v.push_back(A(99, 2.0));
    EXPECT_TRUE(v.spilled());
    EXPECT_EQ(arena.blocks_outstanding(), 1u);
    EXPECT_EQ(v[2].seq, 99u);
  }
  // Destruction returned the spill block to the arena's freelist.
  EXPECT_EQ(arena.blocks_outstanding(), 0u);
}

TEST(TailVecTest, CopyUnderSuspendedScopeGoesToGlobalHeap) {
  Arena arena;
  ArenaScope scope(&arena);
  TailVec source;
  for (uint32_t i = 0; i < 5; ++i) source.push_back(A(i, 1.0));
  ASSERT_TRUE(source.spilled());
  const size_t arena_blocks = arena.blocks_outstanding();
  {
    ArenaScope suspend(nullptr);
    TailVec copy(source);  // heap-backed: must not touch the arena
    EXPECT_EQ(arena.blocks_outstanding(), arena_blocks);
    ASSERT_EQ(copy.size(), 5u);
    EXPECT_EQ(copy[4].seq, 4u);
  }
  EXPECT_EQ(arena.blocks_outstanding(), arena_blocks);
}

TEST(TailVecTest, CrossThreadDestructionReturnsToOwningArena) {
  Arena arena;
  TailVec v;
  {
    ArenaScope scope(&arena);
    for (uint32_t i = 0; i < 5; ++i) v.push_back(A(i, 1.0));
  }
  ASSERT_TRUE(v.spilled());
  ASSERT_EQ(arena.blocks_outstanding(), 1u);
  // A TailVec remembers its owning arena: destroying it on another thread
  // (with no ambient scope there) must return the block to `arena`.
  std::thread t([moved = std::move(v)]() mutable { moved.clear(); });
  t.join();
  EXPECT_EQ(arena.blocks_outstanding(), 0u);
}

TEST(TailVecTest, MoveTransfersSpilledBlockWithoutArenaTraffic) {
  Arena arena;
  ArenaScope scope(&arena);
  TailVec v;
  for (uint32_t i = 0; i < 5; ++i) v.push_back(A(i, 1.0));
  const Tuple* block = v.data();
  TailVec moved(std::move(v));
  EXPECT_EQ(moved.data(), block);  // block ownership transferred
  EXPECT_TRUE(v.empty());          // NOLINT(bugprone-use-after-move)
  EXPECT_FALSE(v.spilled());       // moved-from: safe to reuse or drop
  EXPECT_EQ(arena.blocks_outstanding(), 1u);
}

// Subscription callbacks copy composite results out of the engine. Those
// copies must stay valid across mid-stream churn (drain-flush rebuilds on
// a multi-level tree replace the plan *and its arena*) and after the
// engine itself is gone — CallbackSink suspends the arena scope, so
// callback-side copies are heap-backed.
TEST(ArenaLifetimeTest, CallbackCopiesSurviveChurnRebuildsAndEngineDeath) {
  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = 10;
  spec.duration_s = 10;
  spec.join_selectivity = 0.12;  // keeps the 4-level result fan-out modest
  const MultiWorkload workload = GenerateMultiWorkload(spec, 5);
  const std::vector<Tuple> merged = MergedArrivals(workload);

  std::vector<JoinResult> copies;  // outlives the engine
  uint64_t delivered = 0;
  {
    Engine::Options eopt;
    eopt.condition = workload.condition;
    Engine engine(eopt);

    ContinuousQuery five;
    five.name = "Q5way";
    five.window = WindowSpec::TimeSeconds(1);
    five.stream_names = {"A", "B", "C", "D", "E"};  // tails spill (3 > 2)
    const QueryHandle q = engine.RegisterQuery(five);
    ASSERT_TRUE(q.valid()) << engine.last_error();
    engine.Subscribe(q, [&copies](const JoinResult& r) {
      copies.push_back(r);  // deep copy under the suspended scope
    });

    // Feed with churn pulses: registering/unregistering a binary query on
    // a multi-level tree forces the drain-flush-rebuild path, destroying
    // the old plan (and its arena) mid-stream.
    QueryHandle extra;
    const size_t third = merged.size() / 3;
    for (size_t i = 0; i < merged.size(); ++i) {
      if (i == third) {
        ContinuousQuery binary;
        binary.name = "Qbin";
        binary.window = WindowSpec::TimeSeconds(1);
        extra = engine.RegisterQuery(binary);
        ASSERT_TRUE(extra.valid()) << engine.last_error();
      } else if (i == 2 * third) {
        ASSERT_TRUE(engine.UnregisterQuery(extra));
      }
      engine.Push(merged[i].side, merged[i]);
    }
    engine.Finish();
    delivered = engine.ResultCount(q);
  }  // engine (and every plan arena it owned) destroyed here

  EXPECT_EQ(copies.size(), delivered);
  EXPECT_GT(copies.size(), 0u) << "workload produced no 5-way results; "
                                  "raise rates or the window";
  for (const JoinResult& r : copies) {
    ASSERT_EQ(r.size(), 5);
    ASSERT_EQ(r.tail.size(), 3u);
    for (int part = 0; part < 5; ++part) {
      // Constituents are FROM-list ordered; reading them exercises the
      // (heap-backed) tail storage after every arena is gone.
      EXPECT_EQ(r.part(part).side, static_cast<StreamId>(part));
    }
  }
}

// The in-place ChainMigrator path (binary selection-free state-slice
// chains) mutates the live plan without replacing it. Callback copies and
// the collected multisets must agree across those splices too.
TEST(ArenaLifetimeTest, CallbackDeliveryConsistentAcrossMigratorChurn) {
  WorkloadSpec spec;
  spec.rate_a = spec.rate_b = 40;
  spec.duration_s = 15;
  spec.join_selectivity = 0.1;
  const Workload workload = GenerateWorkload(spec);
  const std::vector<Tuple> merged = MergedArrivals(workload);

  Engine::Options eopt;
  eopt.condition = workload.condition;
  Engine engine(eopt);

  ContinuousQuery base;
  base.name = "Qbase";
  base.window = WindowSpec::TimeSeconds(4);
  const QueryHandle q = engine.RegisterQuery(base);
  ASSERT_TRUE(q.valid()) << engine.last_error();
  uint64_t callbacks = 0;
  engine.Subscribe(q, [&callbacks](const JoinResult& r) {
    callbacks += static_cast<uint64_t>(r.size() == 2);
  });

  QueryHandle extra;
  const size_t third = merged.size() / 3;
  for (size_t i = 0; i < merged.size(); ++i) {
    if (i == third) {
      ContinuousQuery mid;  // splits a slice in place via ChainMigrator
      mid.name = "Qmid";
      mid.window = WindowSpec::TimeSeconds(2);
      extra = engine.RegisterQuery(mid);
      ASSERT_TRUE(extra.valid()) << engine.last_error();
    } else if (i == 2 * third) {
      ASSERT_TRUE(engine.UnregisterQuery(extra));
      engine.CompactChain();
    }
    engine.Push(merged[i].side, merged[i]);
  }
  engine.Finish();
  EXPECT_EQ(callbacks, engine.ResultCount(q));
  EXPECT_GT(callbacks, 0u);
}

}  // namespace
}  // namespace stateslice
