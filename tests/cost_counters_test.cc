#include "src/common/cost_counters.h"

#include <gtest/gtest.h>

namespace stateslice {
namespace {

TEST(CostCountersTest, StartsAtZero) {
  CostCounters c;
  EXPECT_EQ(c.Total(), 0u);
  EXPECT_EQ(c.Get(CostCategory::kProbe), 0u);
}

TEST(CostCountersTest, AddAccumulatesPerCategory) {
  CostCounters c;
  c.Add(CostCategory::kProbe, 10);
  c.Add(CostCategory::kProbe, 5);
  c.Add(CostCategory::kPurge, 2);
  EXPECT_EQ(c.Get(CostCategory::kProbe), 15u);
  EXPECT_EQ(c.Get(CostCategory::kPurge), 2u);
  EXPECT_EQ(c.Get(CostCategory::kRoute), 0u);
  EXPECT_EQ(c.Total(), 17u);
}

TEST(CostCountersTest, ResetClearsEverything) {
  CostCounters c;
  c.Add(CostCategory::kUnion, 9);
  c.Add(CostCategory::kFilter, 1);
  // Single-threaded test: nothing charges concurrently.
  c.AssertQuiescent();
  c.Reset();
  EXPECT_EQ(c.Total(), 0u);
}

TEST(CostCountersTest, NamesAreStable) {
  EXPECT_STREQ(CostCounters::Name(CostCategory::kProbe), "probe");
  EXPECT_STREQ(CostCounters::Name(CostCategory::kPurge), "purge");
  EXPECT_STREQ(CostCounters::Name(CostCategory::kRoute), "route");
  EXPECT_STREQ(CostCounters::Name(CostCategory::kFilter), "filter");
  EXPECT_STREQ(CostCounters::Name(CostCategory::kUnion), "union");
  EXPECT_STREQ(CostCounters::Name(CostCategory::kSplit), "split");
  EXPECT_STREQ(CostCounters::Name(CostCategory::kGate), "gate");
}

TEST(CostCountersTest, DebugStringMentionsTotals) {
  CostCounters c;
  c.Add(CostCategory::kProbe, 3);
  const std::string s = c.DebugString();
  EXPECT_NE(s.find("probe=3"), std::string::npos);
  EXPECT_NE(s.find("total=3"), std::string::npos);
}

}  // namespace
}  // namespace stateslice
