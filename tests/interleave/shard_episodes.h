// Sharded-runtime episodes for the interleave explorer: the router's
// ring-then-overflow spill discipline (feeder vs one worker, exhaustive
// DFS) and the execution-token handoff between competing workers
// (feeder vs two thieves, PCT).
//
// Episode 1 (spill): the feeder routes keyed events into a one-shard
// router with a tiny ring and a tiny overflow deque, so events spill as
// single-event runs and the deque wraps around. The worker repeatedly
// wins the shard token and drains ring-first-then-overflow-head. The
// post-invariant is the FIFO claim from shard_router.h: the worker must
// consume exactly timestamps 0..items-1 in order, across every schedule.
// This drives the StealDeque index publications (seeded bugs 4 and 6).
//
// Episode 2 (token): two workers contend for the single shard's token.
// The holder drains the shard and advances a shared consumption cursor
// whose accesses are modeled plain reads/writes — exactly the shard-local
// state (plan state, consumer caches) the token handoff must carry. A
// weakened token release (seeded bug 5) severs the happens-before edge
// and surfaces as a modeled data race on the cursor.
#ifndef STATESLICE_TESTS_INTERLEAVE_SHARD_EPISODES_H_
#define STATESLICE_TESTS_INTERLEAVE_SHARD_EPISODES_H_

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/common/tuple.h"
#include "src/runtime/shard_router.h"
#include "tests/interleave/interleave_scheduler.h"

namespace stateslice::interleave {

inline Tuple ShardEpisodeTuple(TimePoint ts) {
  Tuple t;
  t.key = 0;  // one shard: every key lands on it anyway
  t.timestamp = ts;
  return t;
}

struct ShardSpillEpisodeConfig {
  int items = 5;
  size_t ring_capacity = 2;
  // Two-run deque + single-event runs: pushing items beyond the ring
  // wraps the deque indices, so a reused slot races a stale top_ read if
  // the publication orders are weakened.
  size_t overflow_capacity = 2;
  size_t spill_run_length = 1;
};

// Feeder (t0) routes + closes; worker (t1) wins the token per hold and
// drains ring-first-then-overflow-head. Returns "" or the violated
// post-invariant.
inline std::string RunShardSpillEpisode(InterleaveScheduler* sched,
                                        const ShardSpillEpisodeConfig& cfg) {
  ShardRouterOptions options;
  options.num_shards = 1;
  options.ring_capacity = cfg.ring_capacity;
  options.overflow_capacity = cfg.overflow_capacity;
  options.spill_run_length = cfg.spill_run_length;
  ShardRouter router(options);
  std::vector<TimePoint> consumed;
  sched->ExpectThreads(2);

  std::thread feeder([&] {
    sched->ThreadBegin(0);
    // By construction this thread is the router's single feeder.
    router.AssertFeeder();
    for (int i = 0; i < cfg.items; ++i) {
      router.Route(Event(ShardEpisodeTuple(i)));
    }
    router.CloseAll();
    sched->ThreadEnd();
  });

  std::thread worker([&] {
    sched->ThreadBegin(1);
    ShardCell& cell = router.cell(0);
    // Single worker: win the token once and hold it for the whole drain
    // (production holds it across a processing quantum). Crucially the
    // no-progress path below performs only loads before going futile —
    // a store there would re-wake every futile thread and the
    // exploration would never converge.
    if (!router.TryAcquireToken(0, /*worker=*/0)) {
      sched->ReportExternalViolation("sole worker lost the token CAS");
      sched->ThreadEnd();
      return;
    }
    // The token makes this thread the shard's sole consumer.
    cell.ring.AssertConsumer();
    cell.overflow.AssertConsumer();
    for (;;) {
      bool progress = false;
      Event event;
      while (cell.ring.TryPop(&event)) {
        consumed.push_back(EventTime(event));
        progress = true;
      }
      // Consumer discipline (shard_router.h): a lone ring-empty read may
      // be stale, so pop the overflow only after a non-empty acquire
      // snapshot AND a ring re-check — the snapshot synchronizes with
      // the spill publication, making older ring events visible.
      while (!cell.overflow.empty()) {
        if (cell.ring.TryPop(&event)) {
          consumed.push_back(EventTime(event));
          progress = true;
          continue;
        }
        EventRun run;
        if (cell.overflow.TryPopFront(&run)) {
          for (Event& e : run) consumed.push_back(EventTime(e));
          progress = true;
        }
      }
      if (progress) continue;
      if (router.IsClosed(0) && cell.ring.empty() &&
          cell.overflow.empty()) {
        break;
      }
      sched->Futile("shard_ep.drain_idle");
    }
    router.ReleaseToken(0);
    sched->ThreadEnd();
  });

  feeder.join();
  worker.join();

  if (consumed.size() != static_cast<size_t>(cfg.items)) {
    return "lost events: consumed " + std::to_string(consumed.size()) +
           " of " + std::to_string(cfg.items);
  }
  for (size_t i = 0; i < consumed.size(); ++i) {
    if (consumed[i] != static_cast<TimePoint>(i)) {
      return "FIFO violation across ring/overflow: consumed[" +
             std::to_string(i) + "] = " + std::to_string(consumed[i]) +
             ", expected " + std::to_string(i);
    }
  }
  return "";
}

struct ShardTokenEpisodeConfig {
  int items = 4;
  size_t ring_capacity = 2;
  size_t overflow_capacity = 2;
  size_t spill_run_length = 1;
};

// Stable id for the feeder (the two workers take 0 and 1).
inline constexpr int kShardFeederTid = 100;

// Feeder (t100) routes + closes; workers 0 and 1 contend for the single
// shard's token. The holder drains the shard and advances `cursor`, the
// modeled stand-in for every piece of shard-local state (plan state,
// consumer-side caches) the token's release/acquire handoff must carry
// between successive holders.
inline std::string RunShardTokenEpisode(InterleaveScheduler* sched,
                                        const ShardTokenEpisodeConfig& cfg) {
  ShardRouterOptions options;
  options.num_shards = 1;
  options.ring_capacity = cfg.ring_capacity;
  options.overflow_capacity = cfg.overflow_capacity;
  options.spill_run_length = cfg.spill_run_length;
  ShardRouter router(options);
  // Token-guarded shared state: next expected timestamp + order flag.
  uint64_t cursor = 0;
  bool out_of_order = false;
  sched->ExpectThreads(3);

  std::thread feeder([&] {
    sched->ThreadBegin(kShardFeederTid);
    router.AssertFeeder();
    for (int i = 0; i < cfg.items; ++i) {
      router.Route(Event(ShardEpisodeTuple(i)));
    }
    router.CloseAll();
    sched->ThreadEnd();
  });

  auto worker_body = [&](uint32_t me) {
    sched->ThreadBegin(static_cast<int>(me));
    ShardCell& cell = router.cell(0);
    for (;;) {
      // Load-only guard before touching the token: acquiring (a store)
      // on an idle shard would re-wake every futile thread and the
      // exploration would never converge. Work visible -> contend. The
      // closed flag is read FIRST (production's exit check does the same
      // via && short-circuit): the close-acquire makes the subsequent
      // emptiness reads authoritative — the other order can pair a stale
      // ring-empty view with a fresh close and strand the last event.
      const bool closed = router.IsClosed(0);
      if (cell.ring.empty() && cell.overflow.empty()) {
        if (closed) break;
        sched->Futile("shard_ep.idle");
        continue;
      }
      if (!router.TryAcquireToken(0, me)) {
        // Lost the CAS: the other worker is executing this shard.
        sched->Futile("shard_ep.token_wait");
        continue;
      }
      // Sole executor for this hold: consumer of both lanes and the
      // rightful reader/writer of the token-guarded cursor. Hold until
      // progress (or done): releasing on a stale no-progress view and
      // re-acquiring would store-loop the same way.
      cell.ring.AssertConsumer();
      cell.overflow.AssertConsumer();
      for (;;) {
        bool progress = false;
        auto consume = [&](TimePoint ts) {
          STATESLICE_SYNC_PLAIN_READ("shard_ep.cursor", &cursor);
          if (static_cast<uint64_t>(ts) != cursor) out_of_order = true;
          STATESLICE_SYNC_PLAIN_WRITE("shard_ep.cursor", &cursor);
          ++cursor;
          progress = true;
        };
        Event event;
        while (cell.ring.TryPop(&event)) consume(EventTime(event));
        // Same ring re-check discipline as production (shard_router.h):
        // pop the overflow only behind a non-empty acquire snapshot.
        while (!cell.overflow.empty()) {
          if (cell.ring.TryPop(&event)) {
            consume(EventTime(event));
            continue;
          }
          EventRun run;
          if (cell.overflow.TryPopFront(&run)) {
            for (Event& e : run) consume(EventTime(e));
          }
        }
        if (progress) break;
        if (router.IsClosed(0) && cell.ring.empty() &&
            cell.overflow.empty()) {
          break;
        }
        sched->Futile("shard_ep.hold_idle");
      }
      router.ReleaseToken(0);
    }
    sched->ThreadEnd();
  };
  std::thread worker_a([&] { worker_body(0); });
  std::thread worker_b([&] { worker_body(1); });

  feeder.join();
  worker_a.join();
  worker_b.join();

  if (out_of_order) {
    return "token handoff lost order: a holder observed a timestamp "
           "ahead of the shared cursor";
  }
  if (cursor != static_cast<uint64_t>(cfg.items)) {
    return "lost events: cursor " + std::to_string(cursor) + " of " +
           std::to_string(cfg.items);
  }
  return "";
}

}  // namespace stateslice::interleave

#endif  // STATESLICE_TESTS_INTERLEAVE_SHARD_EPISODES_H_
