// ParallelScheduler pipeline episode for the PCT explorer.
//
// One episode = a fresh 3-operator pipeline (pass -> pass -> sink) driven
// by a ParallelScheduler with 3 workers over tiny rings, fed by the
// registered main thread. With the feeder that is 4 modeled threads —
// exhaustive DFS is infeasible, so these episodes run under PctStrategy.
// Post-invariants: every event reaches the sink in order and the processed
// accounting matches; the close protocol (entry_close / stage_close /
// closed_check sync points) is exercised on every exit path.
#ifndef STATESLICE_TESTS_INTERLEAVE_PSCHED_EPISODE_H_
#define STATESLICE_TESTS_INTERLEAVE_PSCHED_EPISODE_H_

#include <memory>
#include <string>
#include <utility>

#include "src/common/tuple.h"
#include "src/runtime/parallel_scheduler.h"
#include "src/runtime/plan.h"
#include "src/runtime/sink.h"
#include "tests/interleave/interleave_scheduler.h"

namespace stateslice::interleave {

// Pass-through operator (local definition: tests/test_util.h pulls in more
// than the interleave binaries need).
class PassThrough : public Operator {
 public:
  explicit PassThrough(std::string name) : Operator(std::move(name)) {}
  void Process(Event event, int) override { Emit(0, event); }
};

struct PschedEpisodeConfig {
  int events = 6;
  size_t edge_capacity = 2;  // tiny ring: constant backpressure
  int quantum = 2;           // small runs: many partial segments
};

// Stable id for the feeder (worker stages take 0..num_stages-1).
inline constexpr int kFeederTid = 100;

inline std::string RunPschedEpisode(InterleaveScheduler* sched,
                                    const PschedEpisodeConfig& cfg) {
  QueryPlan plan;
  auto* first = plan.AddOperator(std::make_unique<PassThrough>("p1"));
  auto* second = plan.AddOperator(std::make_unique<PassThrough>("p2"));
  auto* sink = plan.AddOperator(std::make_unique<CountingSink>("sink"));
  EventQueue* entry = plan.AddEntryQueue("entry", first, 0);
  plan.Connect(first, 0, second, 0);
  plan.Connect(second, 0, sink, 0);
  plan.Start();

  sched->ExpectThreads(1);
  sched->ThreadBegin(kFeederTid);
  {
    ParallelScheduler scheduler(&plan,
                                {.num_workers = 3,
                                 .edge_capacity = cfg.edge_capacity,
                                 .quantum = cfg.quantum});
    scheduler.Start();
    for (int i = 0; i < cfg.events; ++i) {
      Tuple t;
      t.timestamp = i;
      t.key = i;
      t.value = 1.0;
      t.seq = static_cast<uint32_t>(i);
      scheduler.PushEntry(entry, Event(t));
    }
    scheduler.FinishInput();
    scheduler.Join();
    if (scheduler.total_processed() !=
        static_cast<uint64_t>(cfg.events) * 3) {
      sched->ThreadEnd();
      return "lost events: total_processed " +
             std::to_string(scheduler.total_processed()) + ", expected " +
             std::to_string(cfg.events * 3);
    }
  }
  sched->ThreadEnd();

  if (sink->tuple_count() != static_cast<uint64_t>(cfg.events)) {
    return "lost events: sink saw " + std::to_string(sink->tuple_count()) +
           " of " + std::to_string(cfg.events);
  }
  if (!sink->saw_ordered_stream()) {
    return "sink observed out-of-order timestamps";
  }
  return "";
}

}  // namespace stateslice::interleave

#endif  // STATESLICE_TESTS_INTERLEAVE_PSCHED_EPISODE_H_
