// PCT exploration of the 4-thread ParallelScheduler pipeline.
//
// Exhaustive DFS is infeasible at this thread count, so these tests sweep
// PCT schedules (randomized priorities + d-1 change points) across many
// seeds. A failure prints the seed; replay it alone with
//   STATESLICE_INTERLEAVE_SEED=<seed> ./psched_interleave_test
// Nightly builds multiply the seed count via STATESLICE_INTERLEAVE_NIGHTLY.
#include "tests/interleave/psched_episode.h"

#include <gtest/gtest.h>

#include "tests/interleave/interleave_scheduler.h"

namespace stateslice::interleave {
namespace {

void ExpectCleanPct(const PschedEpisodeConfig& cfg, uint64_t base_seed,
                    uint64_t num_seeds, int depth) {
  bool has_override = false;
  const uint64_t override_seed = EnvSeedOverride(&has_override);
  if (has_override) {
    base_seed = override_seed;
    num_seeds = 1;
  } else {
    num_seeds *= EnvNightlyScale();
  }
  const PctResult result = ExplorePct(
      [&cfg](InterleaveScheduler* sched) {
        return RunPschedEpisode(sched, cfg);
      },
      base_seed, num_seeds, depth);
  ASSERT_TRUE(result.violations.empty())
      << "seed " << result.failing_seed
      << " (replay: STATESLICE_INTERLEAVE_SEED=" << result.failing_seed
      << "): " << result.violations[0].reason << "\n"
      << result.violations[0].trace;
  EXPECT_EQ(result.episodes, num_seeds);
}

TEST(PschedInterleavePctTest, TinyRingsManySeeds) {
  // Capacity-2 rings + quantum 2: backpressure and partial run segments on
  // every edge, priority inversions injected at depth 3.
  ExpectCleanPct({.events = 6, .edge_capacity = 2, .quantum = 2},
                 /*base_seed=*/1000, /*num_seeds=*/60, /*depth=*/3);
}

TEST(PschedInterleavePctTest, LargerRunsDeeperSchedules) {
  ExpectCleanPct({.events = 8, .edge_capacity = 4, .quantum = 3},
                 /*base_seed=*/2000, /*num_seeds=*/40, /*depth=*/4);
}

}  // namespace
}  // namespace stateslice::interleave
