// Seeded-violation catch test for the ParallelScheduler close protocol.
//
// Built with STATESLICE_SEEDED_BUG_3: parallel_scheduler.cc is recompiled
// into this binary with the done-check's close-flag load weakened from
// acquire to relaxed (see kClosedLoadOrder there). Without the acquire, a
// worker that reads closed==true gets no happens-before edge to the
// producer's final ring publication, so the emptiness probe can read a
// stale tail and the stage exits with events still in flight. The PCT
// explorer MUST observe that as lost events (or a slot race) within the
// seed budget — if it stops catching this, the verification layer is
// broken, not the scheduler.
#if !defined(STATESLICE_SEEDED_BUG_3)
#error "psched_seeded_catch_test.cc requires STATESLICE_SEEDED_BUG_3"
#endif

#include "tests/interleave/psched_episode.h"

#include <gtest/gtest.h>

#include "tests/interleave/interleave_scheduler.h"

namespace stateslice::interleave {
namespace {

TEST(PschedSeededBugCatchTest, DroppedCloseAcquireIsCaught) {
  const PschedEpisodeConfig cfg{
      .events = 6, .edge_capacity = 2, .quantum = 2};
  const uint64_t num_seeds = 300 * EnvNightlyScale();
  const PctResult result = ExplorePct(
      [&cfg](InterleaveScheduler* sched) {
        return RunPschedEpisode(sched, cfg);
      },
      /*base_seed=*/5000, num_seeds, /*depth=*/3);
  ASSERT_FALSE(result.violations.empty())
      << "seeded close-flag bug survived " << result.episodes
      << " PCT seeds: the explorer has lost its teeth";
}

}  // namespace
}  // namespace stateslice::interleave
