// Deterministic interleaving explorer for the lock-free runtime, in the
// style of relacy/loom.
//
// Why not just stress threads? The host is x86 (TSO): a relaxed store is
// indistinguishable from a release store at hardware level, so no amount of
// real-execution scheduling can surface a weakened memory order. This
// explorer therefore *virtualizes* the instrumented atomics
// (src/runtime/sync_point.h): every modeled store is appended to a
// per-variable modification-order history stamped with the storing
// thread's vector clock, and every modeled load BRANCHES over the set of
// stores the C++ memory model allows the loading thread to observe —
// per-thread coherence floors plus happens-before forcing, with acquire
// loads of release stores joining clocks. Plain (non-atomic) accesses to
// shared payload are race-checked FastTrack-style against those clocks.
// A weakened release/acquire then shows up on ANY host as a modeled stale
// read or a detected data race.
//
// Scheduling is cooperative and sequentialized: at most one registered
// thread runs between sync points, every preemption decision and every
// load-value decision is delegated to a Strategy, so a schedule is fully
// determined by the strategy's decision sequence:
//  - DfsStrategy + ExploreDfs: exhaustive bounded-depth DFS over the
//    decision tree (2-thread SpscQueue histories).
//  - PctStrategy + ExplorePct: PCT-style randomized priorities with d-1
//    priority-change points for 3+-thread ParallelScheduler pipelines,
//    replayable from the printed seed.
//
// Threads that fail a Try* op or idle-spin declare themselves *futile*:
// they are not rescheduled until some modeled store lands (finitely many
// stores per episode, so exploration terminates). If every live thread is
// futile the scheduler performs a recovery wake with loads pinned to the
// newest allowed store — real deadlocks (threads that stay futile even on
// the freshest values) are still reported.
#ifndef STATESLICE_TESTS_INTERLEAVE_INTERLEAVE_SCHEDULER_H_
#define STATESLICE_TESTS_INTERLEAVE_INTERLEAVE_SCHEDULER_H_

#if !defined(STATESLICE_SCHED_TEST)
#error "tests/interleave requires the STATESLICE_SCHED_TEST build"
#endif

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/runtime/sync_point.h"

namespace stateslice::interleave {

using Tid = int;

// A detected property violation: a data race, a stale-read-induced
// invariant failure, a deadlock, or a step-limit livelock.
struct Violation {
  std::string reason;
  std::string trace;  // tail of the event log at detection time
};

// Decision source for one episode. Both callbacks run under the scheduler
// lock and must be pure (no blocking, no calls back into the scheduler).
class Strategy {
 public:
  virtual ~Strategy() = default;
  // Pick the next thread to run: returns an index into `tids` (sorted,
  // size >= 2; singleton choices are not delegated).
  virtual int ChooseThread(const std::vector<Tid>& tids) = 0;
  // Pick which of `n` >= 2 allowed stores a modeled load observes
  // (0 = oldest allowed, n-1 = newest).
  virtual int ChooseValue(int n) = 0;
};

// The cooperative scheduler + weak-memory model. One instance drives one
// episode: Install() it, run registered threads to completion, Uninstall().
class InterleaveScheduler final : public schedtest::SchedHooks {
 public:
  struct Options {
    // Scheduling decisions per episode before declaring a livelock.
    uint64_t max_steps = 20000;
    // Event-log entries retained for failure traces.
    size_t max_trace = 256;
    // CHESS-style preemption bound: maximum number of times the scheduler
    // may switch away from a thread that could have continued. Forced
    // switches (the running thread went futile, parked, or done) are free.
    // Bounds the DFS tree polynomially while — per the CHESS result —
    // retaining detection power for small-preemption-count bugs (all three
    // seeded bugs here need zero or one). Negative: unbounded.
    int preemption_bound = -1;
  };

  // Two overloads rather than a defaulted Options argument: GCC rejects
  // using a nested aggregate's member initializers in a default argument
  // before the enclosing class is complete.
  explicit InterleaveScheduler(Strategy* strategy);
  InterleaveScheduler(Strategy* strategy, Options options);
  ~InterleaveScheduler() override;

  InterleaveScheduler(const InterleaveScheduler&) = delete;
  InterleaveScheduler& operator=(const InterleaveScheduler&) = delete;

  void Install() { schedtest::InstallHooks(this); }
  void Uninstall() { schedtest::InstallHooks(nullptr); }

  // Announce `n` threads that will register via ThreadBegin. No scheduling
  // decision is taken until all announced threads have arrived.
  void ExpectThreads(int n);

  bool HasViolations() const;
  std::vector<Violation> violations() const;
  // Records an invariant failure detected by the test harness after the
  // episode (wrong pop order, lost events) with the schedule trace.
  void ReportExternalViolation(const std::string& reason);

  // SchedHooks interface (called from instrumented runtime code and from
  // test episode bodies; unregistered threads pass through).
  void SyncPoint(const char* tag) override;
  void Futile(const char* tag) override;
  uint64_t AtomicLoad(const char* tag, const void* var,
                      std::memory_order order, uint64_t initial) override;
  void AtomicStore(const char* tag, void* var, std::memory_order order,
                   uint64_t value, uint64_t initial) override;
  uint64_t AtomicCas(const char* tag, void* var, uint64_t expected,
                     uint64_t desired, std::memory_order success_order,
                     std::memory_order failure_order,
                     uint64_t initial) override;
  void PlainWrite(const char* tag, const void* addr) override;
  void PlainRead(const char* tag, const void* addr) override;
  void ThreadSpawn() override;
  void ThreadBegin(int stable_id) override;
  void ThreadEnd() override;
  void Park() override;
  void Unpark() override;

 private:
  struct VectorClock {
    std::map<Tid, uint64_t> c;
    uint64_t Get(Tid t) const {
      auto it = c.find(t);
      return it == c.end() ? 0 : it->second;
    }
    void Join(const VectorClock& o) {
      for (const auto& [t, v] : o.c) {
        uint64_t& mine = c[t];
        if (v > mine) mine = v;
      }
    }
  };
  struct StoreRecord {
    uint64_t value = 0;
    Tid tid = -1;             // -1: the initial value (visible to all)
    uint64_t tid_clock = 0;   // storer's own clock at the store
    VectorClock clock;        // storer's full clock at the store
    bool release = false;
    const char* tag = "<init>";
  };
  struct AtomicVar {
    std::vector<StoreRecord> history;  // modification order
    std::map<Tid, size_t> floor;       // per-thread coherence floor
  };
  struct PlainVar {
    Tid writer = -1;
    uint64_t writer_clock = 0;
    const char* writer_tag = nullptr;
    // Readers since the last write: thread -> (clock at read, tag).
    std::map<Tid, std::pair<uint64_t, const char*>> readers;
  };
  enum class TState { kAtPoint, kRunning, kFutile, kParked, kDone };
  struct ThreadRec {
    TState state = TState::kRunning;
    VectorClock clock;
    bool force_latest = false;  // recovery wake: read newest allowed only
    bool granted = false;
  };

  // Blocks the calling registered thread until the strategy schedules it.
  void YieldLocked(std::unique_lock<std::mutex>& lk, Tid tid);
  // Takes a scheduling decision iff all threads are quiescent.
  void EvaluateLocked();
  void ReportViolationLocked(const std::string& reason);
  void TraceLocked(Tid tid, std::string line);
  std::string TraceTailLocked() const;
  AtomicVar& GetAtomicLocked(const void* var, uint64_t initial);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Strategy* const strategy_;
  const Options options_;

  int expected_ = 0;  // announced threads not yet registered
  int running_ = 0;   // threads currently between sync points
  std::map<Tid, ThreadRec> threads_;
  std::map<const void*, AtomicVar> atomics_;
  std::map<const void*, PlainVar> plains_;
  std::vector<Violation> violations_;
  std::vector<std::string> trace_;
  uint64_t steps_ = 0;
  Tid last_granted_ = -1;
  int preemptions_used_ = 0;
  // After a violation the model stands down: hooks pass through and every
  // blocked thread is released so the episode can terminate naturally.
  bool free_run_ = false;
};

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

// Exhaustive DFS over the decision tree via lexicographic backtracking:
// each episode replays a decision prefix, takes first-alternative (0) for
// everything beyond it, and Advance() increments the last incrementable
// decision.
class DfsStrategy final : public Strategy {
 public:
  int ChooseThread(const std::vector<Tid>& tids) override {
    return Choose(static_cast<int>(tids.size()));
  }
  int ChooseValue(int n) override { return Choose(n); }

  void BeginEpisode() { taken_.clear(); }
  // Moves to the next unexplored schedule; false when the tree is done.
  bool Advance();
  // The decision prefix identifying the current schedule (for replay).
  std::string ScheduleString() const;

 private:
  int Choose(int n);
  std::vector<int> prefix_;
  std::vector<std::pair<int, int>> taken_;  // (choice, alternatives)
};

// PCT-style randomized priorities (Burckhardt et al.): each thread gets a
// deterministic seed-derived priority, the highest-priority runnable
// thread always runs, and `depth - 1` pre-drawn change points demote the
// running thread to the lowest priority so far. Load-value choices are
// uniform from the same seeded PRNG. Fully replayable from the seed.
class PctStrategy final : public Strategy {
 public:
  PctStrategy(uint64_t seed, int depth, uint64_t expected_steps);
  int ChooseThread(const std::vector<Tid>& tids) override;
  int ChooseValue(int n) override;

 private:
  uint64_t Mix(uint64_t x) const;
  uint64_t seed_;
  uint64_t rng_state_;
  uint64_t steps_ = 0;
  int64_t next_demotion_ = -1;  // decreasing: later demotions sink lower
  std::set<uint64_t> change_points_;
  std::map<Tid, int64_t> demoted_;
};

// ---------------------------------------------------------------------
// Exploration drivers
// ---------------------------------------------------------------------

// One episode: runs the scenario under the installed scheduler and returns
// an empty string, or a description of a violated post-invariant.
using EpisodeFn = std::function<std::string(InterleaveScheduler*)>;

struct DfsResult {
  uint64_t episodes = 0;
  bool exhausted = false;  // full tree explored within max_episodes
  std::vector<Violation> violations;
  std::string failing_schedule;  // decision prefix of the failing episode
};

DfsResult ExploreDfs(
    const EpisodeFn& episode, uint64_t max_episodes,
    InterleaveScheduler::Options options = InterleaveScheduler::Options());

struct PctResult {
  uint64_t episodes = 0;
  std::vector<Violation> violations;
  uint64_t failing_seed = 0;  // valid iff violations is non-empty
};

PctResult ExplorePct(
    const EpisodeFn& episode, uint64_t base_seed, uint64_t num_seeds,
    int depth, uint64_t expected_steps = 2000,
    InterleaveScheduler::Options options = InterleaveScheduler::Options());

// Environment overrides shared by the interleave tests:
//   STATESLICE_INTERLEAVE_SEED     replay exactly this PCT seed
//   STATESLICE_INTERLEAVE_NIGHTLY  scale factor for seeds/depth (>=1)
uint64_t EnvSeedOverride(bool* has_override);
uint64_t EnvNightlyScale();

}  // namespace stateslice::interleave

#endif  // STATESLICE_TESTS_INTERLEAVE_INTERLEAVE_SCHEDULER_H_
